package prism

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"prism/internal/abd"
	"prism/internal/tx"
)

func TestPublicKVRoundTrip(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 1})
	srv := c.NewServer("kv", SoftwarePRISM)
	store, err := NewKVServer(srv, KVOptions(128, 256))
	if err != nil {
		t.Fatal(err)
	}
	cli := NewKVClient(c.NewClientMachine("m").Connect(srv), store.Meta(), 1)
	c.Go("t", func(p *Proc) {
		if err := cli.Put(p, 1, []byte("public api")); err != nil {
			t.Error(err)
			return
		}
		v, err := cli.Get(p, 1)
		if err != nil || string(v) != "public api" {
			t.Errorf("get: %q %v", v, err)
		}
		if _, err := cli.Get(p, 99); !errors.Is(err, ErrKVNotFound) {
			t.Errorf("missing: %v", err)
		}
	})
	c.Run()
}

func TestPublicRSQuorum(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 2})
	var reps []*RSReplica
	for i := 0; i < 3; i++ {
		srv := c.NewServer("rep", SoftwarePRISM)
		r, err := NewRSReplica(srv, RSOptions{NBlocks: 8, BlockSize: 32, ExtraBuffers: 32})
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r)
	}
	m := c.NewClientMachine("m")
	conns := make([]*Conn, 3)
	metas := make([]abd.Meta, 3)
	for i, r := range reps {
		conns[i] = m.Connect(r.NIC())
		metas[i] = r.Meta()
	}
	cli := NewRSClient(1, conns, metas)
	c.Go("t", func(p *Proc) {
		val := bytes.Repeat([]byte{0xAB}, 32)
		if err := cli.Put(p, 5, val); err != nil {
			t.Error(err)
			return
		}
		got, err := cli.Get(p, 5)
		if err != nil || !bytes.Equal(got, val) {
			t.Errorf("get: %v %v", got, err)
		}
	})
	c.Run()
}

func TestPublicTXCommitAbort(t *testing.T) {
	c := NewCluster(ClusterConfig{Seed: 3})
	srv := c.NewServer("shard", SoftwarePRISM)
	shard, err := NewTXShard(srv, TXOptions{NSlots: 8, MaxValue: 32, ExtraBuffers: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := shard.Load(0, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	m := c.NewClientMachine("m")
	a := c.NewTXClient(1, []*Conn{m.Connect(srv)}, []tx.Meta{shard.Meta()})
	b := c.NewTXClient(2, []*Conn{m.Connect(srv)}, []tx.Meta{shard.Meta()})
	c.Go("t", func(p *Proc) {
		// Interleaved RMWs: exactly one commits.
		t1, t2 := a.Begin(), b.Begin()
		t1.Read(p, 0)
		t2.Read(p, 0)
		t1.Write(0, make([]byte, 16))
		t2.Write(0, make([]byte, 16))
		_, err1 := t1.Commit(p)
		_, err2 := t2.Commit(p)
		committed := 0
		for _, e := range []error{err1, err2} {
			if e == nil {
				committed++
			} else if !errors.Is(e, ErrTxAborted) {
				t.Errorf("unexpected error: %v", e)
			}
		}
		if committed != 1 {
			t.Errorf("%d committed, want 1", committed)
		}
	})
	c.Run()
}

func TestPublicDeploymentAndNetworkOptions(t *testing.T) {
	// Latency scales with the network profile and deployment choice
	// through the public configuration surface.
	lat := func(net SwitchProfile, d Deployment) time.Duration {
		c := NewCluster(ClusterConfig{Seed: 4, Network: &net})
		srv := c.NewServer("kv", d)
		store, err := NewKVServer(srv, KVOptions(16, 64))
		if err != nil {
			t.Fatal(err)
		}
		store.Load(1, []byte("x"))
		cli := NewKVClient(c.NewClientMachine("m").Connect(srv), store.Meta(), 1)
		var rtt time.Duration
		c.Go("t", func(p *Proc) {
			start := p.Now()
			if _, err := cli.Get(p, 1); err != nil {
				t.Error(err)
			}
			rtt = time.Duration(p.Now().Sub(start))
		})
		c.Run()
		return rtt
	}
	rack := lat(Rack, SoftwarePRISM)
	dc := lat(Datacenter, SoftwarePRISM)
	if dc <= rack {
		t.Fatalf("datacenter GET %v not slower than rack %v", dc, rack)
	}
	hw := lat(Rack, ProjectedHardwarePRISM)
	if hw >= rack {
		t.Fatalf("projected-hardware GET %v not faster than software %v", hw, rack)
	}
}

func TestPublicCustomParams(t *testing.T) {
	p := NewCluster(ClusterConfig{}).ParamsInEffect()
	p.RDMABaseRTT = 10 * time.Microsecond
	c := NewCluster(ClusterConfig{Seed: 5, Params: &p})
	if c.ParamsInEffect().RDMABaseRTT != 10*time.Microsecond {
		t.Fatal("params override not applied")
	}
}
