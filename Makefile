GO ?= go

.PHONY: all check fmt vet build test race bench

all: check

# The full gate: formatting, vet, build, tests, and the race detector over
# the packages with cross-goroutine code (the parallel figure runner).
check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench ./internal/sim ./internal/fabric ./internal/rdma \
		./internal/transport ./internal/kv

# Allocation microbenchmarks for the simulator hot path.
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim ./internal/memory ./internal/bench
