// Deployments example: the same PRISM-KV workload run across the paper's
// data-path options (§4) and network scales (Fig. 2), showing how the
// deployment choice shifts latency — the software stack pays dedicated-
// core overhead, the projected hardware NIC pays only PCIe indirection,
// and the BlueField pays slow off-path host-memory access — and how every
// PRISM option's advantage over two-round-trip RDMA grows with network
// latency.
//
// Run: go run ./examples/deployments
package main

import (
	"fmt"
	"log"
	"time"

	"prism"
	"prism/internal/sim"
)

const (
	nKeys     = 512
	valueSize = 512
	nOps      = 200
)

func measureKV(deploy prism.Deployment, network prism.SwitchProfile) (get, put time.Duration) {
	c := prism.NewCluster(prism.ClusterConfig{Seed: 9, Network: &network})
	srv := c.NewServer("kv", deploy)
	store, err := prism.NewKVServer(srv, prism.KVOptions(nKeys, valueSize))
	if err != nil {
		log.Fatal(err)
	}
	for k := int64(0); k < nKeys; k++ {
		if err := store.Load(k, make([]byte, valueSize)); err != nil {
			log.Fatal(err)
		}
	}
	cli := prism.NewKVClient(c.NewClientMachine("m").Connect(srv), store.Meta(), 1)
	var getNS, putNS sim.Duration
	c.Go("probe", func(p *prism.Proc) {
		for i := 0; i < nOps; i++ {
			k := int64(i % nKeys)
			start := p.Now()
			if _, err := cli.Get(p, k); err != nil {
				log.Fatal(err)
			}
			getNS += p.Now().Sub(start)
			start = p.Now()
			if err := cli.Put(p, k, make([]byte, valueSize)); err != nil {
				log.Fatal(err)
			}
			putNS += p.Now().Sub(start)
		}
	})
	c.Run()
	return getNS / nOps, putNS / nOps
}

func main() {
	deployments := []prism.Deployment{
		prism.SoftwarePRISM,
		prism.ProjectedHardwarePRISM,
		prism.BlueFieldPRISM,
	}
	networks := []prism.SwitchProfile{prism.Rack, prism.Cluster, prism.Datacenter}

	fmt.Println("PRISM-KV mean latency by deployment and network scale (simulated):")
	fmt.Printf("%-22s", "")
	for _, nw := range networks {
		fmt.Printf("  %-24s", nw.Name)
	}
	fmt.Println()
	fmt.Printf("%-22s", "")
	for range networks {
		fmt.Printf("  %-11s %-11s", "GET", "PUT")
	}
	fmt.Println()
	for _, d := range deployments {
		fmt.Printf("%-22s", d.String())
		for _, nw := range networks {
			get, put := measureKV(d, nw)
			fmt.Printf("  %-11s %-11s", get.Round(10*time.Nanosecond), put.Round(10*time.Nanosecond))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The projected hardware NIC wins everywhere; the BlueField's host-memory")
	fmt.Println("penalty shrinks in relative terms as network latency dominates (Fig. 2).")
}
