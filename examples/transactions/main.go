// Transactions example: a bank running serializable transfers on PRISM-TX
// (the paper's §8 timestamp-OCC protocol committing in two one-sided round
// trips), sharded over two servers, with concurrent clients racing on the
// same accounts. The invariant — total balance is conserved — holds no
// matter how transfers interleave, and conflicting transactions abort and
// retry.
//
// Run: go run ./examples/transactions
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"prism"
	"prism/internal/tx"
)

const (
	nAccounts      = 32
	initialBalance = 1000
	nShards        = 2
	nTellers       = 4
	transfersEach  = 50
)

func encodeBalance(v int64) []byte {
	b := make([]byte, 64)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func decodeBalance(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}

func main() {
	c := prism.NewCluster(prism.ClusterConfig{Seed: 23})

	shards := make([]*prism.TXShard, nShards)
	metas := make([]tx.Meta, nShards)
	for i := range shards {
		srv := c.NewServer(fmt.Sprintf("shard-%d", i), prism.SoftwarePRISM)
		s, err := prism.NewTXShard(srv, prism.TXOptions{
			NSlots: nAccounts, MaxValue: 64, ExtraBuffers: 4096,
		})
		if err != nil {
			log.Fatal(err)
		}
		shards[i] = s
		metas[i] = s.Meta()
	}
	// Accounts shard by account number modulo nShards.
	for acct := int64(0); acct < nAccounts; acct++ {
		if err := shards[acct%nShards].Load(acct, encodeBalance(initialBalance)); err != nil {
			log.Fatal(err)
		}
	}

	var totalCommits, totalAborts int64
	for t := 0; t < nTellers; t++ {
		teller := uint16(t + 1)
		machine := c.NewClientMachine(fmt.Sprintf("teller-%d", teller))
		conns := make([]*prism.Conn, nShards)
		for i, s := range shards {
			conns[i] = machine.Connect(s.NIC())
		}
		client := c.NewTXClient(teller, conns, metas)

		c.Go(fmt.Sprintf("teller-%d", teller), func(p *prism.Proc) {
			rng := c.Engine().Rand()
			for n := 0; n < transfersEach; n++ {
				from := rng.Int63n(nAccounts)
				to := rng.Int63n(nAccounts)
				for to == from {
					to = rng.Int63n(nAccounts)
				}
				amount := int64(1 + rng.Intn(50))
				// Retry the transfer until it commits.
				for {
					t := client.Begin()
					fb, err := t.Read(p, from)
					if err != nil {
						log.Fatal(err)
					}
					tb, err := t.Read(p, to)
					if err != nil {
						log.Fatal(err)
					}
					fromBal, toBal := decodeBalance(fb), decodeBalance(tb)
					if fromBal < amount {
						break // insufficient funds: give up this transfer
					}
					t.Write(from, encodeBalance(fromBal-amount))
					t.Write(to, encodeBalance(toBal+amount))
					if _, err := t.Commit(p); err == nil {
						totalCommits++
						break
					} else if errors.Is(err, prism.ErrTxAborted) {
						totalAborts++
						continue
					} else {
						log.Fatal(err)
					}
				}
			}
		})
	}
	c.Run()

	// Audit: one read-only transaction summing every balance.
	auditor := c.NewClientMachine("auditor")
	conns := make([]*prism.Conn, nShards)
	for i, s := range shards {
		conns[i] = auditor.Connect(s.NIC())
	}
	audit := c.NewTXClient(uint16(nTellers+1), conns, metas)
	c.Go("audit", func(p *prism.Proc) {
		for {
			t := audit.Begin()
			var total int64
			okRead := true
			for acct := int64(0); acct < nAccounts; acct++ {
				b, err := t.Read(p, acct)
				if err != nil {
					log.Fatal(err)
				}
				total += decodeBalance(b)
			}
			if _, err := t.Commit(p); err != nil {
				continue // validation raced a straggler; retry
			}
			if !okRead {
				continue
			}
			want := int64(nAccounts * initialBalance)
			fmt.Printf("committed transfers: %d (plus %d aborted+retried)\n", totalCommits, totalAborts)
			fmt.Printf("audit (read-only serializable txn over %d accounts): total=%d want=%d\n",
				nAccounts, total, want)
			if total != want {
				log.Fatal("INVARIANT VIOLATED: money created or destroyed")
			}
			fmt.Println("invariant holds: serializable transfers conserved the total balance")
			return
		}
	})
	c.Run()
}
