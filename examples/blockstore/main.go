// Block store example: a 3-replica PRISM-RS deployment (the paper's §7
// ABD register protocol built from PRISM operations) serving concurrent
// readers and writers, then surviving the failure of one replica — the
// f=1 fault tolerance the quorum protocol guarantees — with zero
// server-side CPU involvement in the data path.
//
// Run: go run ./examples/blockstore
package main

import (
	"bytes"
	"fmt"
	"log"

	"prism"
	"prism/internal/abd"
	"prism/internal/fabric"
)

const (
	nBlocks   = 64
	blockSize = 512
	nReplicas = 3
)

func main() {
	c := prism.NewCluster(prism.ClusterConfig{Seed: 11})

	replicas := make([]*prism.RSReplica, nReplicas)
	for i := range replicas {
		srv := c.NewServer(fmt.Sprintf("replica-%d", i), prism.SoftwarePRISM)
		r, err := prism.NewRSReplica(srv, prism.RSOptions{
			NBlocks: nBlocks, BlockSize: blockSize, ExtraBuffers: 1024,
		})
		if err != nil {
			log.Fatal(err)
		}
		replicas[i] = r
	}

	mkClient := func(id uint16, machine *prism.ClientMachine) *prism.RSClient {
		conns := make([]*prism.Conn, nReplicas)
		metas := make([]abd.Meta, nReplicas)
		for i, r := range replicas {
			conns[i] = machine.Connect(r.NIC())
			metas[i] = r.Meta()
		}
		return prism.NewRSClient(id, conns, metas)
	}

	m1 := c.NewClientMachine("machine-1")
	m2 := c.NewClientMachine("machine-2")

	// Phase 1: concurrent writers and a reader on the healthy cluster.
	writer1 := mkClient(1, m1)
	writer2 := mkClient(2, m2)
	reader := mkClient(3, m1)

	pattern := func(gen byte) []byte {
		return bytes.Repeat([]byte{gen}, blockSize)
	}

	c.Go("writer-1", func(p *prism.Proc) {
		for i := 0; i < 50; i++ {
			if err := writer1.Put(p, int64(i%nBlocks), pattern(byte(i))); err != nil {
				log.Fatal(err)
			}
		}
	})
	c.Go("writer-2", func(p *prism.Proc) {
		for i := 0; i < 50; i++ {
			if err := writer2.Put(p, int64((i+32)%nBlocks), pattern(byte(100+i))); err != nil {
				log.Fatal(err)
			}
		}
	})
	c.Go("reader", func(p *prism.Proc) {
		reads := 0
		for i := 0; i < 60; i++ {
			if _, err := reader.Get(p, int64(i%nBlocks)); err != nil {
				log.Fatal(err)
			}
			reads++
		}
		fmt.Printf("healthy cluster: reader completed %d linearizable GETs concurrent with 100 PUTs\n", reads)
	})
	c.Run()

	// Phase 2: kill replica 2 (its NIC swallows all traffic) and keep
	// operating — the quorum protocol needs only f+1 = 2 of 3 replicas.
	fmt.Println("killing replica-2 ...")
	replicas[2].NIC().Node().SetHandler(func(fabric.Message) {})

	survivor := mkClient(4, m2)
	c.Go("post-failure", func(p *prism.Proc) {
		if err := survivor.Put(p, 7, pattern(0xEE)); err != nil {
			log.Fatalf("PUT after failure: %v", err)
		}
		tag, val, err := survivor.GetT(p, 7)
		if err != nil {
			log.Fatalf("GET after failure: %v", err)
		}
		if !bytes.Equal(val, pattern(0xEE)) {
			log.Fatal("read wrong value after failure")
		}
		fmt.Printf("with 1 of 3 replicas down: PUT+GET still linearizable, version tag %v\n", tag)
	})
	c.Run()

	fmt.Println("done: the ABD write chains ran entirely in the replicas' NIC data path")
}
