// KV store example: PRISM-KV and Pilaf side by side on the same YCSB-style
// workload, showing the paper's §6 comparison — PRISM-KV's GETs are one
// indirect bounded READ and its PUTs are chained one-sided updates with no
// server CPU, while Pilaf needs two READs plus CRC checks per GET and an
// RPC per PUT.
//
// Run: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"prism"
	"prism/internal/sim"
	"prism/internal/workload"
)

const (
	nKeys     = 2048
	valueSize = 512
	nOps      = 2000
)

func main() {
	fmt.Println("Loading both stores with", nKeys, "objects of", valueSize, "bytes...")

	// --- PRISM-KV cluster ---
	c1 := prism.NewCluster(prism.ClusterConfig{Seed: 7})
	srv1 := c1.NewServer("prism-kv", prism.SoftwarePRISM)
	kvSrv, err := prism.NewKVServer(srv1, prism.KVOptions(nKeys, valueSize))
	if err != nil {
		log.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Mix{Keys: nKeys, ReadFrac: 0.5, ValueSize: valueSize}, 7)
	for k := int64(0); k < nKeys; k++ {
		if err := kvSrv.Load(k, gen.Value(k, 0)); err != nil {
			log.Fatal(err)
		}
	}
	kvCli := prism.NewKVClient(c1.NewClientMachine("cli").Connect(srv1), kvSrv.Meta(), 1)

	// --- Pilaf cluster (hardware RDMA reads, RPC writes) ---
	c2 := prism.NewCluster(prism.ClusterConfig{Seed: 7})
	srv2 := c2.NewServer("pilaf", prism.HardwareRDMA)
	pilafSrv, err := prism.NewPilafServer(srv2, prism.KVOptions(nKeys, valueSize))
	if err != nil {
		log.Fatal(err)
	}
	for k := int64(0); k < nKeys; k++ {
		if err := pilafSrv.Load(k, gen.Value(k, 0)); err != nil {
			log.Fatal(err)
		}
	}
	pilafCli := prism.NewPilafClient(c2.NewClientMachine("cli").Connect(srv2),
		pilafSrv.Meta(), c2.ParamsInEffect().PilafCRCCost)

	type store interface {
		Get(p *prism.Proc, key int64) ([]byte, error)
		Put(p *prism.Proc, key int64, value []byte) error
	}

	run := func(cluster *prism.ClusterSim, name string, st store, seed int64) {
		g := workload.NewGenerator(workload.Mix{Keys: nKeys, ReadFrac: 0.5, ValueSize: valueSize}, seed)
		var gets, puts int
		var getNS, putNS sim.Duration
		cluster.Go(name, func(p *prism.Proc) {
			for i := 0; i < nOps; i++ {
				kind, key := g.Next()
				start := p.Now()
				if kind == workload.OpGet {
					if _, err := st.Get(p, key); err != nil {
						log.Fatalf("%s GET %d: %v", name, key, err)
					}
					gets++
					getNS += p.Now().Sub(start)
				} else {
					if err := st.Put(p, key, g.Value(key, i)); err != nil {
						log.Fatalf("%s PUT %d: %v", name, key, err)
					}
					puts++
					putNS += p.Now().Sub(start)
				}
			}
		})
		cluster.Run()
		fmt.Printf("%-10s %5d GETs @ %7.2fµs avg   %5d PUTs @ %7.2fµs avg\n",
			name, gets, float64(getNS)/float64(gets)/1e3,
			puts, float64(putNS)/float64(puts)/1e3)
	}

	fmt.Printf("Running %d 50/50 read/write operations on each store:\n", nOps)
	run(c1, "PRISM-KV", kvCli, 99)
	run(c2, "Pilaf", pilafCli, 99)

	fmt.Println("\nPRISM-KV server-side CPU was touched only by the reclamation daemon;")
	fmt.Printf("Pilaf's CPU executed %d PUT RPCs.\n", pilafSrv.Puts)
}
