// Quickstart: a primitive-level tour of the PRISM interface (Table 1 of
// the paper) on a two-machine simulated cluster — an indirect bounded
// read, a free-list allocation, an enhanced compare-and-swap, and finally
// the canonical chained out-of-place update (WRITE tag to temp buffer,
// ALLOCATE redirecting the new address, CAS the <tag,addr> pair) that the
// paper's applications are built from.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prism"
	"prism/internal/alloc"
	"prism/internal/memory"
	iprism "prism/internal/prism"
	"prism/internal/wire"
)

func main() {
	c := prism.NewCluster(prism.ClusterConfig{Seed: 1})
	srv := c.NewServer("server", prism.SoftwarePRISM)

	// Server-side setup: register a region, post a free list, seed a
	// pointer and a <tag|addr> metadata cell.
	space := srv.Space()
	reg, err := space.Register(1 << 16)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetConnTempKey(reg.Key)

	fl := alloc.NewFreeList(1, 256, reg.Key)
	bufRegion, err := space.RegisterShared(reg.Key, 256*64)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		fl.Post(bufRegion.Base + memory.Addr(i*256))
	}
	srv.AddFreeList(fl)

	// A value and a bounded pointer to it.
	greeting := []byte("hello from server memory")
	valueAddr := reg.Base + 4096
	if err := space.Write(reg.Key, valueAddr, greeting); err != nil {
		log.Fatal(err)
	}
	ptrCell := reg.Base // <ptr, bound>
	if err := space.WriteBoundedPtr(reg.Key, ptrCell, memory.BoundedPtr{Ptr: valueAddr, Bound: uint64(len(greeting))}); err != nil {
		log.Fatal(err)
	}
	// A <tag | addr> metadata cell for the chained update.
	metaCell := reg.Base + 64
	seed := make([]byte, 16)
	iprism.PutBE64(seed, 0, 1) // tag 1
	iprism.PutLE64(seed, 8, uint64(valueAddr))
	if err := space.Write(reg.Key, metaCell, seed); err != nil {
		log.Fatal(err)
	}

	machine := c.NewClientMachine("client")
	conn := machine.Connect(srv)

	c.Go("quickstart", func(p *prism.Proc) {
		// 1. Indirect bounded READ: one round trip follows the pointer and
		//    clamps the length to the stored bound (§3.1).
		res := conn.Issue(p, iprism.ReadBounded(reg.Key, ptrCell, 512))
		fmt.Printf("indirect bounded READ -> %q  (status %v, RTT so far %v)\n",
			res[0].Data, res[0].Status, p.Now())

		// 2. ALLOCATE: pop a buffer from the server-posted free list and
		//    write into it, in one round trip (§3.2).
		res = conn.Issue(p, iprism.Allocate(1, []byte("freshly allocated")))
		bufAddr := res[0].Addr
		fmt.Printf("ALLOCATE -> buffer at %#x (status %v)\n", bufAddr, res[0].Status)

		// 3. Enhanced CAS: compare the tag field with GT, swap tag+addr
		//    (§3.3). Tag 2 > 1, so it succeeds and returns the old pair.
		data := make([]byte, 16)
		iprism.PutBE64(data, 0, 2)
		iprism.PutLE64(data, 8, uint64(bufAddr))
		res = conn.Issue(p, iprism.CAS(reg.Key, metaCell, wire.CASGt, data,
			iprism.FieldMask(16, 0, 8), iprism.FullMask(16)))
		fmt.Printf("enhanced CAS(GT tag) -> status %v, previous tag %d\n",
			res[0].Status, iprism.BE64(res[0].Data, 0))

		// A stale tag is rejected without modifying the cell.
		stale := make([]byte, 16)
		iprism.PutBE64(stale, 0, 1)
		res = conn.Issue(p, iprism.CAS(reg.Key, metaCell, wire.CASGt, stale,
			iprism.FieldMask(16, 0, 8), iprism.FullMask(16)))
		fmt.Printf("enhanced CAS(stale tag) -> status %v (correctly rejected)\n", res[0].Status)

		// 4. Operation chaining (§3.4): the paper's out-of-place update in
		//    ONE round trip — write tag 3 to the connection's temp buffer,
		//    allocate the new version redirecting its address next to the
		//    tag, and conditionally CAS the <tag|addr> pair from the temp
		//    buffer (data-indirect).
		tagBytes := make([]byte, 8)
		iprism.PutBE64(tagBytes, 0, 3)
		start := p.Now()
		res = conn.Issue(p,
			iprism.Write(conn.TempKey, conn.TempAddr, tagBytes),
			iprism.Conditional(iprism.RedirectTo(iprism.Allocate(1, []byte("chained new version")), conn.TempKey, conn.TempAddr+8)),
			iprism.Conditional(iprism.CASIndirectData(reg.Key, metaCell, wire.CASGt, conn.TempAddr,
				iprism.FieldMask(16, 0, 8), iprism.FullMask(16))),
		)
		fmt.Printf("chain WRITE+ALLOCATE+CAS -> statuses %v %v %v in one %v round trip\n",
			res[0].Status, res[1].Status, res[2].Status, p.Now().Sub(start))

		// Verify: an indirect read through the metadata cell's addr field
		// now returns the chained version.
		res = conn.Issue(p, iprism.ReadIndirect(reg.Key, metaCell+8, 19))
		fmt.Printf("follow-up indirect READ -> %q\n", res[0].Data)
	})
	c.Run()
}
