// Command prismkv is an interactive demo of PRISM-KV: a REPL where
// every command runs the real protocol (indirect bounded READs,
// ALLOCATE/WRITE/CAS chains) and reports the round-trip cost.
//
// By default commands run against a simulated server and latencies are
// simulated. With -connect it speaks to a live prismd over tcp or a
// unix socket instead, and latencies are wall-clock:
//
//	prismkv -connect /tmp/prism.sock
//	prismkv -connect 127.0.0.1:7171
//
// Commands:
//
//	put <key> <value>   store a value (chained one-sided update)
//	get <key>           read a value (one indirect bounded READ)
//	del <key>           delete a key
//	stats               server counters
//	quit
//
// Flags select the NIC deployment and network profile (simulated mode),
// so the same operations can be compared across PRISM-SW /
// projected-hardware / BlueField data paths and rack/cluster/datacenter
// networks.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"prism"
	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/sim"
	"prism/internal/transport"
)

// ops abstracts the REPL's backend: simulated cluster or live server.
// Each call returns the operation's cost as reported by that backend.
type ops interface {
	put(key int64, value []byte) (time.Duration, error)
	get(key int64) ([]byte, time.Duration, error)
	del(key int64) (time.Duration, error)
	stats() string
	costNote() string // e.g. "simulated" vs "wall clock"
}

func main() {
	connect := flag.String("connect", "", "live prismd address (unix path or host:port); default is the simulator")
	deployFlag := flag.String("deploy", "sw", "NIC deployment: sw, hw-proj, bluefield (simulated mode)")
	netFlag := flag.String("net", "rack", "network profile: direct, rack, cluster, datacenter (simulated mode)")
	nKeys := flag.Int64("keys", 1024, "hash table slots (simulated mode)")
	flag.Parse()

	var backend ops
	if *connect != "" {
		live, err := newLiveOps(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prismkv:", err)
			os.Exit(1)
		}
		defer live.tc.Close()
		backend = live
		fmt.Printf("PRISM-KV REPL — live server at %s (latencies are wall clock)\n", *connect)
	} else {
		simBackend, banner, err := newSimOps(*deployFlag, *netFlag, *nKeys)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prismkv:", err)
			os.Exit(2)
		}
		backend = simBackend
		fmt.Println(banner)
	}

	if err := repl(backend); err != nil {
		fmt.Fprintln(os.Stderr, "prismkv:", err)
		os.Exit(1)
	}
}

// repl reads commands until quit or EOF (ctrl-D exits cleanly). A
// backend error that is not a per-command protocol miss — a dead
// connection, for example — ends the session with that error.
func repl(backend ops) error {
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		cmd, args := fields[0], fields[1:]
		if cmd == "quit" || cmd == "exit" {
			return nil
		}
		if err := runOp(backend, cmd, args); err != nil {
			return err
		}
		fmt.Print("> ")
	}
	fmt.Println() // EOF: leave the shell on a fresh line
	return scanner.Err()
}

// runOp executes one command. Protocol-level misses (not found, bad
// input) print and return nil; transport failures return the error.
func runOp(backend ops, cmd string, args []string) error {
	parseKey := func() (int64, bool) {
		if len(args) < 1 {
			fmt.Println("need a key")
			return 0, false
		}
		k, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			fmt.Println("keys are integers")
			return 0, false
		}
		return k, true
	}
	switch cmd {
	case "put":
		k, ok := parseKey()
		if !ok {
			return nil
		}
		if len(args) < 2 {
			fmt.Println("need a value")
			return nil
		}
		val := strings.Join(args[1:], " ")
		d, err := backend.put(k, []byte(val))
		if err != nil {
			return err
		}
		fmt.Printf("OK (%v %s: probe RT + chained ALLOCATE/WRITE/CAS RT)\n", d, backend.costNote())
	case "get":
		k, ok := parseKey()
		if !ok {
			return nil
		}
		v, d, err := backend.get(k)
		if errors.Is(err, kv.ErrNotFound) {
			fmt.Printf("(not found) (%v %s)\n", d, backend.costNote())
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("%q (%v %s: one indirect bounded READ)\n", v, d, backend.costNote())
	case "del":
		k, ok := parseKey()
		if !ok {
			return nil
		}
		d, err := backend.del(k)
		if err != nil {
			return err
		}
		fmt.Printf("OK (%v %s)\n", d, backend.costNote())
	case "stats":
		fmt.Println(backend.stats())
	default:
		fmt.Println("commands: put <k> <v> | get <k> | del <k> | stats | quit")
	}
	return nil
}

// simOps runs commands on the simulated cluster; each command is one
// simulated process and the engine advances only while it executes.
type simOps struct {
	c      *prism.ClusterSim
	client *prism.KVClient
	srv    *prism.Server
}

func newSimOps(deployFlag, netFlag string, nKeys int64) (*simOps, string, error) {
	var deploy prism.Deployment
	switch deployFlag {
	case "sw":
		deploy = prism.SoftwarePRISM
	case "hw-proj":
		deploy = prism.ProjectedHardwarePRISM
	case "bluefield":
		deploy = prism.BlueFieldPRISM
	default:
		return nil, "", errors.New("unknown deployment (PRISM needs sw, hw-proj, or bluefield)")
	}
	var network prism.SwitchProfile
	switch netFlag {
	case "direct":
		network = prism.Direct
	case "rack":
		network = prism.Rack
	case "cluster":
		network = prism.Cluster
	case "datacenter":
		network = prism.Datacenter
	default:
		return nil, "", errors.New("unknown network profile")
	}
	c := prism.NewCluster(prism.ClusterConfig{Seed: 1, Network: &network})
	srv := c.NewServer("kv", deploy)
	store, err := prism.NewKVServer(srv, prism.KVOptions(nKeys, 1024))
	if err != nil {
		return nil, "", err
	}
	client := prism.NewKVClient(c.NewClientMachine("repl").Connect(srv), store.Meta(), 1)
	banner := fmt.Sprintf("PRISM-KV REPL — deployment %v, network %s (all latencies are simulated)",
		deploy, network.Name)
	return &simOps{c: c, client: client, srv: srv}, banner, nil
}

// run executes fn as one simulated process and returns the simulated
// time it took.
func (s *simOps) run(fn func(p *sim.Proc) error) (time.Duration, error) {
	var d time.Duration
	var err error
	s.c.Go("cmd", func(p *sim.Proc) {
		start := p.Now()
		err = fn(p)
		d = p.Now().Sub(start)
	})
	s.c.Run()
	return d, err
}

func (s *simOps) put(key int64, value []byte) (time.Duration, error) {
	return s.run(func(p *sim.Proc) error { return s.client.Put(p, key, value) })
}

func (s *simOps) get(key int64) ([]byte, time.Duration, error) {
	var v []byte
	d, err := s.run(func(p *sim.Proc) error {
		var err error
		v, err = s.client.Get(p, key)
		return err
	})
	return v, d, err
}

func (s *simOps) del(key int64) (time.Duration, error) {
	return s.run(func(p *sim.Proc) error { return s.client.Delete(p, key) })
}

func (s *simOps) stats() string {
	_ = model.Default()
	return fmt.Sprintf("server: %d requests served, %d ops executed",
		s.srv.RequestsServed, s.srv.OpsExecuted)
}

func (s *simOps) costNote() string { return "simulated" }

// liveOps runs commands against a prismd over a real socket.
type liveOps struct {
	tc   *transport.Client
	kvc  *kv.LiveClient
	addr string
}

func newLiveOps(addr string) (*liveOps, error) {
	tc, kvc, err := kv.DialLive(addr, 1)
	if err != nil {
		return nil, fmt.Errorf("connect %s: %w", addr, err)
	}
	return &liveOps{tc: tc, kvc: kvc, addr: addr}, nil
}

func (l *liveOps) put(key int64, value []byte) (time.Duration, error) {
	start := time.Now()
	err := l.kvc.Put(key, value)
	return time.Since(start), err
}

func (l *liveOps) get(key int64) ([]byte, time.Duration, error) {
	start := time.Now()
	v, err := l.kvc.Get(key)
	return v, time.Since(start), err
}

func (l *liveOps) del(key int64) (time.Duration, error) {
	start := time.Now()
	err := l.kvc.Delete(key)
	return time.Since(start), err
}

func (l *liveOps) stats() string {
	m := l.kvc.Meta()
	return fmt.Sprintf("live server at %s: %d slots, hash mode %d, max value %d bytes",
		l.addr, m.NSlots, m.Hash, m.MaxValue)
}

func (l *liveOps) costNote() string { return "wall clock" }
