// Command prismkv is an interactive demo of PRISM-KV: a REPL over a
// simulated server where every command runs the real protocol (indirect
// bounded READs, ALLOCATE/WRITE/CAS chains) and reports the simulated
// round-trip cost.
//
// Commands:
//
//	put <key> <value>   store a value (chained one-sided update)
//	get <key>           read a value (one indirect bounded READ)
//	del <key>           delete a key
//	stats               server counters
//	quit
//
// Flags select the NIC deployment and network profile, so the same
// operations can be compared across PRISM-SW / projected-hardware /
// BlueField data paths and rack/cluster/datacenter networks.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"prism"
	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/sim"
)

func main() {
	deployFlag := flag.String("deploy", "sw", "NIC deployment: sw, hw-proj, bluefield")
	netFlag := flag.String("net", "rack", "network profile: direct, rack, cluster, datacenter")
	nKeys := flag.Int64("keys", 1024, "hash table slots")
	flag.Parse()

	var deploy prism.Deployment
	switch *deployFlag {
	case "sw":
		deploy = prism.SoftwarePRISM
	case "hw-proj":
		deploy = prism.ProjectedHardwarePRISM
	case "bluefield":
		deploy = prism.BlueFieldPRISM
	default:
		fmt.Fprintln(os.Stderr, "prismkv: unknown deployment (PRISM needs sw, hw-proj, or bluefield)")
		os.Exit(2)
	}
	var network prism.SwitchProfile
	switch *netFlag {
	case "direct":
		network = prism.Direct
	case "rack":
		network = prism.Rack
	case "cluster":
		network = prism.Cluster
	case "datacenter":
		network = prism.Datacenter
	default:
		fmt.Fprintln(os.Stderr, "prismkv: unknown network profile")
		os.Exit(2)
	}

	c := prism.NewCluster(prism.ClusterConfig{Seed: 1, Network: &network})
	srv := c.NewServer("kv", deploy)
	store, err := prism.NewKVServer(srv, prism.KVOptions(*nKeys, 1024))
	if err != nil {
		fmt.Fprintln(os.Stderr, "prismkv:", err)
		os.Exit(1)
	}
	client := prism.NewKVClient(c.NewClientMachine("repl").Connect(srv), store.Meta(), 1)

	fmt.Printf("PRISM-KV REPL — deployment %v, network %s (all latencies are simulated)\n",
		deploy, network.Name)
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		cmd := fields[0]
		if cmd == "quit" || cmd == "exit" {
			return
		}
		// Each command runs as one simulated process; the engine advances
		// only while commands execute.
		runOp(c, client, srv, cmd, fields[1:])
		fmt.Print("> ")
	}
}

func runOp(c *prism.ClusterSim, client *prism.KVClient, srv *prism.Server, cmd string, args []string) {
	parseKey := func() (int64, bool) {
		if len(args) < 1 {
			fmt.Println("need a key")
			return 0, false
		}
		k, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			fmt.Println("keys are integers")
			return 0, false
		}
		return k, true
	}
	c.Go("cmd", func(p *sim.Proc) {
		start := p.Now()
		switch cmd {
		case "put":
			k, ok := parseKey()
			if !ok {
				return
			}
			if len(args) < 2 {
				fmt.Println("need a value")
				return
			}
			val := strings.Join(args[1:], " ")
			if err := client.Put(p, k, []byte(val)); err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("OK (%v simulated: probe RT + chained ALLOCATE/WRITE/CAS RT)\n", p.Now().Sub(start))
		case "get":
			k, ok := parseKey()
			if !ok {
				return
			}
			v, err := client.Get(p, k)
			if errors.Is(err, kv.ErrNotFound) {
				fmt.Printf("(not found) (%v simulated)\n", p.Now().Sub(start))
				return
			}
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("%q (%v simulated: one indirect bounded READ)\n", v, p.Now().Sub(start))
		case "del":
			k, ok := parseKey()
			if !ok {
				return
			}
			if err := client.Delete(p, k); err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("OK (%v simulated)\n", p.Now().Sub(start))
		case "stats":
			fmt.Printf("server: %d requests served, %d ops executed, clock %v\n",
				srv.RequestsServed, srv.OpsExecuted, p.Now())
			_ = model.Default()
		default:
			fmt.Println("commands: put <k> <v> | get <k> | del <k> | stats | quit")
		}
	})
	c.Run()
}
