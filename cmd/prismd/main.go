// Command prismd serves PRISM-KV over real sockets: the same verb
// datapath the simulator models — indirect bounded READs, chains,
// ALLOCATE, enhanced CAS — executed against live tcp and unix-socket
// clients speaking the internal/wire format. One process, one store;
// thousands of logical connections multiplex over the accepted sockets.
//
// Usage:
//
//	prismd -unix /tmp/prism.sock            # unix socket
//	prismd -tcp 127.0.0.1:7171              # tcp
//	prismd -tcp :7171 -unix /tmp/p.sock     # both at once
//
// -load N preloads keys 0..N-1 server-side before serving, as the
// paper's experiments bulk-load before measuring. SIGINT/SIGTERM drain
// gracefully: listeners close, in-flight requests finish, then the
// process exits 0.
//
// -chain DEPTH serves the linked-chain store (kv.ChainStore) instead of
// the hash table: -keys buckets of DEPTH-node chains, the layout the
// CHASE verb-program experiments walk (prismload -workload chase).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prism/internal/kv"
	"prism/internal/transport"
)

func main() {
	tcpAddr := flag.String("tcp", "", "tcp listen address (e.g. 127.0.0.1:7171)")
	unixPath := flag.String("unix", "", "unix socket path")
	nKeys := flag.Int64("keys", 4096, "hash table slots")
	valueSize := flag.Int("value", 1024, "largest value size accepted (bytes)")
	hashMode := flag.String("hash", "collisionless", "hash mode: collisionless, fnv, twochoice")
	load := flag.Int64("load", 0, "preload keys 0..N-1 before serving")
	chainDepth := flag.Int64("chain", 0, "serve a linked-chain store of -keys buckets x DEPTH nodes instead of the hash table")
	wirecheck := flag.Bool("wirecheck", false, "verify every frame round-trips the codec canonically")
	grace := flag.Duration("grace", 5*time.Second, "drain deadline on SIGTERM/SIGINT")
	batch := flag.Int("batch", 0, "frames served per socket wakeup (0 = default, 1 = unbatched)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	if *tcpAddr == "" && *unixPath == "" {
		fmt.Fprintln(os.Stderr, "prismd: need -tcp and/or -unix")
		os.Exit(2)
	}
	var hash kv.Hash
	switch *hashMode {
	case "collisionless":
		hash = kv.Collisionless
	case "fnv":
		hash = kv.FNV
	case "twochoice":
		hash = kv.TwoChoice
	default:
		fmt.Fprintln(os.Stderr, "prismd: unknown hash mode (collisionless, fnv, or twochoice)")
		os.Exit(2)
	}
	transport.SetWireCheck(*wirecheck)

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "prismd: pprof:", err)
			}
		}()
		fmt.Printf("prismd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	ts := transport.NewServer()
	ts.MaxBatch = *batch
	var loadKey func(k int64, v []byte) error
	if *chainDepth > 0 {
		store, err := kv.NewChainStoreOn(ts, kv.ChainOptions{
			Buckets: *nKeys, Depth: *chainDepth, MaxValue: *valueSize,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "prismd:", err)
			os.Exit(1)
		}
		loadKey = store.Load
	} else {
		opts := kv.DefaultOptions(*nKeys, *valueSize)
		opts.Hash = hash
		store, err := kv.NewServerOn(ts, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prismd:", err)
			os.Exit(1)
		}
		loadKey = store.Load
	}

	if *load > 0 {
		val := make([]byte, *valueSize)
		for i := range val {
			val[i] = byte(i)
		}
		start := time.Now()
		for k := int64(0); k < *load; k++ {
			if err := loadKey(k, val); err != nil {
				fmt.Fprintf(os.Stderr, "prismd: preload key %d: %v\n", k, err)
				os.Exit(1)
			}
		}
		fmt.Printf("prismd: preloaded %d keys (%d-byte values) in %v\n", *load, *valueSize, time.Since(start).Round(time.Millisecond))
	}

	serveErr := make(chan error, 2)
	listen := func(network, addr string) {
		if network == "unix" {
			os.Remove(addr) // a previous run's stale socket file
		}
		l, err := net.Listen(network, addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prismd:", err)
			os.Exit(1)
		}
		if *chainDepth > 0 {
			fmt.Printf("prismd: serving chain store on %s %s (buckets=%d, depth=%d, wirecheck=%v)\n",
				network, addr, *nKeys, *chainDepth, *wirecheck)
		} else {
			fmt.Printf("prismd: serving PRISM-KV on %s %s (slots=%d, hash=%s, wirecheck=%v)\n",
				network, addr, *nKeys, *hashMode, *wirecheck)
		}
		go func() { serveErr <- ts.Serve(l) }()
	}
	if *tcpAddr != "" {
		listen("tcp", *tcpAddr)
	}
	if *unixPath != "" {
		listen("unix", *unixPath)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("prismd: %v — draining (grace %v)\n", sig, *grace)
		ts.Shutdown(*grace)
	case err := <-serveErr:
		if err != nil && err != transport.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "prismd:", err)
			os.Exit(1)
		}
	}
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
	fmt.Printf("prismd: served %d requests (%d ops) across %d connections\n",
		ts.RequestsServed.Load(), ts.OpsExecuted.Load(), ts.ConnsAccepted.Load())
	// Verb-program telemetry: CHASE/SCAN programs, the loop iterations
	// they ran server-side, and the round trips that collapsed.
	if progs := ts.ProgOps.Load(); progs > 0 {
		steps := ts.ProgSteps.Load()
		fmt.Printf("prismd: programs: %d chase/scan ops, %d steps (%.2f steps/op, %d round trips saved)\n",
			progs, steps, ratio(steps, progs), steps-progs)
	}
	// Doorbell telemetry: realized coalescing on each side of the
	// boundary crossing.
	writes, framesOut, bytesOut := ts.Writes.Load(), ts.FramesOut.Load(), ts.BytesOut.Load()
	reads, bytesIn := ts.Reads.Load(), ts.BytesIn.Load()
	batches, batchFrames := ts.Batches.Load(), ts.BatchFrames.Load()
	fmt.Printf("prismd: syscalls: %d writes (frames_per_write %.2f, bytes_per_syscall %.0f), %d reads (%.0f B/read), batch_len %.2f\n",
		writes, ratio(framesOut, writes), ratio(bytesOut, writes),
		reads, ratio(bytesIn, reads), ratio(batchFrames, batches))
}

// ratio returns a/b as a float, 0 when b is 0.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
