// Command prismbench regenerates the paper's evaluation figures on the
// simulated cluster. Each subcommand corresponds to one figure (see
// DESIGN.md's per-experiment index):
//
//	prismbench fig1        # microbenchmark latencies (Fig. 1)
//	prismbench fig2        # indirect read vs network scale (Fig. 2)
//	prismbench fig3        # PRISM-KV vs Pilaf, 100% reads (Fig. 3)
//	prismbench fig4        # PRISM-KV vs Pilaf, 50% reads (Fig. 4)
//	prismbench fig6        # PRISM-RS vs ABDLOCK, uniform (Fig. 6)
//	prismbench fig7        # PRISM-RS vs ABDLOCK, contention (Fig. 7)
//	prismbench fig9        # PRISM-TX vs FaRM, uniform (Fig. 9)
//	prismbench fig10       # PRISM-TX vs FaRM, contention (Fig. 10)
//	prismbench rpcvsrdma   # §2.1 motivating measurement
//	prismbench ext-shards  # extension: PRISM-TX shard scaling
//	prismbench ext-multikey # extension: multi-key transactions
//	prismbench all         # everything above
//
// Flags scale the experiments; defaults regenerate every figure in
// seconds at reduced (shape-preserving) keyspace scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prism/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	keys := flag.Int64("keys", cfg.Keys, "objects per store (paper: 8388608)")
	valueSize := flag.Int("value", cfg.ValueSize, "object size in bytes")
	machines := flag.Int("machines", cfg.ClientMachines, "client machines")
	measure := flag.Duration("measure", cfg.Measure, "virtual measurement window")
	warmup := flag.Duration("warmup", cfg.Warmup, "virtual warmup window")
	seed := flag.Int64("seed", cfg.Seed, "simulation seed")
	maxClients := flag.Int("max-clients", 0, "truncate the client ladder at this count (0 = full ladder)")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: prismbench [flags] {fig1|fig2|fig3|fig4|fig6|fig7|fig9|fig10|rpcvsrdma|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cfg.Keys = *keys
	cfg.ValueSize = *valueSize
	cfg.ClientMachines = *machines
	cfg.Measure = *measure
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	if *maxClients > 0 {
		var ladder []int
		for _, c := range cfg.ClientCounts {
			if c <= *maxClients {
				ladder = append(ladder, c)
			}
		}
		if len(ladder) == 0 {
			ladder = []int{*maxClients}
		}
		cfg.ClientCounts = ladder
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	figures := map[string]func(bench.Config) *bench.Figure{
		"fig1":         bench.Fig1,
		"fig2":         bench.Fig2,
		"fig3":         bench.Fig3,
		"fig4":         bench.Fig4,
		"fig6":         bench.Fig6,
		"fig7":         bench.Fig7,
		"fig9":         bench.Fig9,
		"fig10":        bench.Fig10,
		"rpcvsrdma":    bench.RPCvsRDMA,
		"ext-shards":   bench.ExtShards,
		"ext-multikey": bench.ExtMultiKey,
	}
	order := []string{"rpcvsrdma", "fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig9", "fig10", "ext-shards", "ext-multikey"}

	run := func(name string) {
		fn, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "prismbench: unknown figure %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fig := fn(cfg)
		if *format == "csv" {
			fig.FprintCSV(os.Stdout)
		} else {
			fig.Fprint(os.Stdout)
			fmt.Printf("   [generated in %.1fs]\n\n", time.Since(start).Seconds())
		}
	}

	if flag.Arg(0) == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(flag.Arg(0))
}
