// Command prismbench regenerates the paper's evaluation figures on the
// simulated cluster. Each subcommand corresponds to one figure (see
// DESIGN.md's per-experiment index):
//
//	prismbench fig1        # microbenchmark latencies (Fig. 1)
//	prismbench fig2        # indirect read vs network scale (Fig. 2)
//	prismbench fig3        # PRISM-KV vs Pilaf, 100% reads (Fig. 3)
//	prismbench fig4        # PRISM-KV vs Pilaf, 50% reads (Fig. 4)
//	prismbench fig6        # PRISM-RS vs ABDLOCK, uniform (Fig. 6)
//	prismbench fig7        # PRISM-RS vs ABDLOCK, contention (Fig. 7)
//	prismbench fig9        # PRISM-TX vs FaRM, uniform (Fig. 9)
//	prismbench fig10       # PRISM-TX vs FaRM, contention (Fig. 10)
//	prismbench rpcvsrdma   # §2.1 motivating measurement
//	prismbench ext-shards  # extension: PRISM-TX shard scaling
//	prismbench ext-multikey # extension: multi-key transactions
//	prismbench fig-scale   # extension: connection scaling to the QP-cache cliff
//	prismbench fig-chase   # extension: CHASE verb programs vs per-hop walks
//	prismbench all         # everything above except fig-scale and fig-chase
//
// fig-scale and fig-chase are not part of "all": fig-scale enables the
// connection-scaling cost model (model.Params.WithConnScaling) and
// fig-chase measures the linked-chain store, so neither's points are
// comparable to the paper-figure artifacts.
//
// Flags scale the experiments; defaults regenerate every figure in
// seconds at reduced (shape-preserving) keyspace scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"prism/internal/bench"
)

// figRecord is one figure's wall-clock entry in the -json output.
// PointWallSeconds is the host wall clock of each figure point in
// generation order — the per-point cost the domain scheduler and the
// point pool are amortizing (diagnostic only; never part of the CSV).
// PointTelemetry is the scheduler telemetry of each point in the same
// order: window/barrier counts are what demonstrate the lookahead
// matrix and affinity grouping on hosts where wall clock cannot. The
// burst/wheel counters (events, bursts, timer fires/stops, cascades)
// are summed over points; MeanBurstLen is the figure-wide ratio.
// MeanAllocsPerOp/MeanBytesPerOp average the load-driver points'
// harness-heap allocation cost (zero-valued points — microbenchmarks —
// are excluded); attributable only under -parallel 1.
type figRecord struct {
	ID               string            `json:"id"`
	WallSeconds      float64           `json:"wall_seconds"`
	Series           int               `json:"series"`
	Points           int               `json:"points"`
	Windows          int64             `json:"windows"`
	Barriers         int64             `json:"barriers"`
	CrossDeliveries  int64             `json:"cross_deliveries"`
	EventsExecuted   int64             `json:"events_executed"`
	Bursts           int64             `json:"bursts"`
	MeanBurstLen     float64           `json:"mean_burst_len"`
	BarrierSkips     int64             `json:"barrier_skips"`
	IdleSkips        int64             `json:"idle_skips"`
	TimerFires       int64             `json:"timer_fires"`
	TimerStops       int64             `json:"timer_stops"`
	WheelCascades    int64             `json:"wheel_cascades"`
	QPCacheHits      int64             `json:"qp_cache_hits,omitempty"`
	QPCacheMisses    int64             `json:"qp_cache_misses,omitempty"`
	QPCacheEvictions int64             `json:"qp_cache_evictions,omitempty"`
	ProgramOps       int64             `json:"program_ops,omitempty"`
	StepsExecuted    int64             `json:"steps_executed,omitempty"`
	RTTsSaved        int64             `json:"rtts_saved,omitempty"`
	MeanAllocsPerOp  float64           `json:"mean_allocs_per_op,omitempty"`
	MeanBytesPerOp   float64           `json:"mean_bytes_per_op,omitempty"`
	PointWallSeconds []float64         `json:"point_wall_seconds,omitempty"`
	PointTelemetry   []bench.Telemetry `json:"point_telemetry,omitempty"`
}

// benchRecord is the perf record written by -json: enough to compare
// serial vs parallel runs and to rerun the exact command. Intra is the
// effective domain-worker count; IntraRequested is recorded only when
// the requested -intra exceeded the CPU count and was clamped.
type benchRecord struct {
	Command          string      `json:"command"`
	Seed             int64       `json:"seed"`
	Parallel         int         `json:"parallel"`
	Intra            int         `json:"intra"`
	IntraRequested   int         `json:"intra_requested,omitempty"`
	Affinity         int         `json:"affinity,omitempty"`
	CrossRackNanos   int64       `json:"crossrack_ns,omitempty"`
	ScalarWindows    bool        `json:"scalar_windows,omitempty"`
	SparseBarriers   bool        `json:"sparse_barriers,omitempty"`
	ScaleMachines    int         `json:"scale_machines,omitempty"`
	QPCacheEntries   int         `json:"qp_cache_entries,omitempty"`
	GOMAXPROCS       int         `json:"gomaxprocs"`
	NumCPU           int         `json:"num_cpu"`
	Keys             int64       `json:"keys"`
	ValueSize        int         `json:"value_size"`
	Figures          []figRecord `json:"figures"`
	TotalWallSeconds float64     `json:"total_wall_seconds"`
}

func main() {
	cfg := bench.DefaultConfig()
	keys := flag.Int64("keys", cfg.Keys, "objects per store (paper: 8388608)")
	valueSize := flag.Int("value", cfg.ValueSize, "object size in bytes")
	machines := flag.Int("machines", cfg.ClientMachines, "client machines")
	measure := flag.Duration("measure", cfg.Measure, "virtual measurement window")
	warmup := flag.Duration("warmup", cfg.Warmup, "virtual warmup window")
	seed := flag.Int64("seed", cfg.Seed, "simulation seed")
	maxClients := flag.Int("max-clients", 0, "truncate the client ladder at this count (0 = full ladder)")
	format := flag.String("format", "text", "output format: text or csv")
	parallel := flag.Int("parallel", 1, "figure-point worker goroutines (0 = GOMAXPROCS; output is identical at any setting)")
	intra := flag.Int("intra", 1, "domain worker goroutines inside each figure point (0 = GOMAXPROCS, clamped to NumCPU; output is identical at any setting)")
	affinity := flag.Int("affinity", 1, "client machines per event domain (affinity groups; <=1 = one domain each; output is identical at any setting)")
	crossRack := flag.Duration("crossrack", 0, "extra one-way latency between the client and server racks (0 = flat fabric, the paper's figures; nonzero changes the physics)")
	scalarWindows := flag.Bool("scalar-windows", false, "schedule with the single scalar lookahead bound instead of the per-pair matrix (A/B telemetry knob; output is identical)")
	sparseBarriers := flag.Bool("sparse-barriers", false, "elide barrier sweeps for windows with nothing to merge (A/B telemetry knob; output is identical)")
	scaleMachines := flag.Int("scale-machines", cfg.ScaleMachines, "fixed client-machine fleet for fig-scale")
	qpEntries := flag.Int("qp-entries", 0, "override the hardware-class QP context cache capacity for fig-scale (0 = calibrated default; moving it moves the cliff)")
	verbose := flag.Bool("v", false, "print a one-line scheduler-telemetry summary per figure to stderr")
	jsonPath := flag.String("json", "", "write a wall-clock/throughput record to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: prismbench [flags] {fig1|fig2|fig3|fig4|fig6|fig7|fig9|fig10|rpcvsrdma|fig-scale|fig-chase|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cfg.Keys = *keys
	cfg.ValueSize = *valueSize
	cfg.ClientMachines = *machines
	cfg.Measure = *measure
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	cfg.Intra = *intra
	if cfg.Intra <= 0 {
		cfg.Intra = runtime.GOMAXPROCS(0)
	}
	intraRequested := 0
	if n := runtime.NumCPU(); cfg.Intra > n {
		fmt.Fprintf(os.Stderr, "prismbench: -intra %d exceeds the %d available CPUs; clamping to %d (output is identical, extra workers only oversubscribe)\n",
			cfg.Intra, n, n)
		intraRequested = cfg.Intra
		cfg.Intra = n
	}
	cfg.ClientsPerDomain = *affinity
	cfg.CrossRack = *crossRack
	cfg.ScalarWindows = *scalarWindows
	cfg.SparseBarriers = *sparseBarriers
	cfg.ScaleMachines = *scaleMachines
	cfg.QPCacheEntries = *qpEntries
	if *maxClients > 0 {
		truncate := func(full []int) []int {
			var ladder []int
			for _, c := range full {
				if c <= *maxClients {
					ladder = append(ladder, c)
				}
			}
			if len(ladder) == 0 {
				ladder = []int{*maxClients}
			}
			return ladder
		}
		cfg.ClientCounts = truncate(cfg.ClientCounts)
		cfg.ScaleClients = truncate(cfg.ScaleClients)
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prismbench: creating %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "prismbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prismbench: creating %s: %v\n", path, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live setup-vs-measurement splits
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prismbench: writing heap profile: %v\n", err)
			}
		}()
	}

	figures := map[string]func(bench.Config) *bench.Figure{
		"fig1":         bench.Fig1,
		"fig2":         bench.Fig2,
		"fig3":         bench.Fig3,
		"fig4":         bench.Fig4,
		"fig6":         bench.Fig6,
		"fig7":         bench.Fig7,
		"fig9":         bench.Fig9,
		"fig10":        bench.Fig10,
		"rpcvsrdma":    bench.RPCvsRDMA,
		"ext-shards":   bench.ExtShards,
		"ext-multikey": bench.ExtMultiKey,
		"fig-scale":    bench.FigScale,
		"fig-chase":    bench.FigChase,
	}
	order := []string{"rpcvsrdma", "fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig9", "fig10", "ext-shards", "ext-multikey"}

	rec := benchRecord{
		Command:        "prismbench " + strings.Join(os.Args[1:], " "),
		Seed:           cfg.Seed,
		Parallel:       cfg.Parallel,
		Intra:          cfg.Intra,
		IntraRequested: intraRequested,
		Affinity:       cfg.ClientsPerDomain,
		CrossRackNanos: cfg.CrossRack.Nanoseconds(),
		ScalarWindows:  cfg.ScalarWindows,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Keys:           cfg.Keys,
		ValueSize:      cfg.ValueSize,
	}

	run := func(name string) {
		fn, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "prismbench: unknown figure %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fig := fn(cfg)
		wall := time.Since(start).Seconds()
		points := 0
		for _, s := range fig.Series {
			points += len(s.Points)
		}
		fr := figRecord{
			ID: fig.ID, WallSeconds: wall, Series: len(fig.Series), Points: points,
		}
		for _, w := range fig.PointWall {
			fr.PointWallSeconds = append(fr.PointWallSeconds, w.Seconds())
		}
		var meanSum int64
		var allocSum, byteSum float64
		allocPts := 0
		for _, tel := range fig.PointTel {
			fr.Windows += tel.Windows
			fr.Barriers += tel.Barriers
			fr.CrossDeliveries += tel.CrossDeliveries
			fr.EventsExecuted += tel.EventsExecuted
			fr.Bursts += tel.Bursts
			fr.BarrierSkips += tel.BarrierSkips
			fr.IdleSkips += tel.IdleSkips
			fr.TimerFires += tel.TimerFires
			fr.TimerStops += tel.TimerStops
			fr.WheelCascades += tel.WheelCascades
			fr.QPCacheHits += tel.QPCacheHits
			fr.QPCacheMisses += tel.QPCacheMisses
			fr.QPCacheEvictions += tel.QPCacheEvictions
			fr.ProgramOps += tel.ProgramOps
			fr.StepsExecuted += tel.StepsExecuted
			fr.RTTsSaved += tel.RTTsSaved
			meanSum += tel.MeanWindowNanos
			if tel.AllocsPerOp > 0 {
				allocSum += tel.AllocsPerOp
				byteSum += tel.BytesPerOp
				allocPts++
			}
		}
		if fr.Bursts > 0 {
			fr.MeanBurstLen = float64(fr.EventsExecuted) / float64(fr.Bursts)
		}
		if allocPts > 0 {
			fr.MeanAllocsPerOp = allocSum / float64(allocPts)
			fr.MeanBytesPerOp = byteSum / float64(allocPts)
		}
		fr.PointTelemetry = fig.PointTel
		if *verbose {
			meanWin := time.Duration(0)
			if n := len(fig.PointTel); n > 0 {
				meanWin = time.Duration(meanSum / int64(n))
			}
			fmt.Fprintf(os.Stderr, "prismbench: %s: %d points, windows=%d barriers=%d barrier-skips=%d idle-skips=%d cross-deliveries=%d mean-window=%v events=%d mean-burst=%.2f timer-fires=%d timer-stops=%d cascades=%d qp-hit/miss/evict=%d/%d/%d progs=%d steps=%d rtts-saved=%d wall=%.1fs\n",
				fig.ID, len(fig.PointTel), fr.Windows, fr.Barriers, fr.BarrierSkips, fr.IdleSkips, fr.CrossDeliveries, meanWin,
				fr.EventsExecuted, fr.MeanBurstLen, fr.TimerFires, fr.TimerStops, fr.WheelCascades,
				fr.QPCacheHits, fr.QPCacheMisses, fr.QPCacheEvictions,
				fr.ProgramOps, fr.StepsExecuted, fr.RTTsSaved, wall)
		}
		rec.Figures = append(rec.Figures, fr)
		rec.TotalWallSeconds += wall
		if *format == "csv" {
			fig.FprintCSV(os.Stdout)
		} else {
			fig.Fprint(os.Stdout)
			fmt.Printf("   [generated in %.1fs]\n\n", wall)
		}
	}

	if flag.Arg(0) == "all" {
		for _, name := range order {
			run(name)
		}
	} else {
		run(flag.Arg(0))
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "prismbench: encoding record: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "prismbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
