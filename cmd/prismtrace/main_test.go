package main

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"prism"
	"prism/internal/rdma"
	"prism/internal/sim"
)

// TestTraceAffinityByteIdentical: every scenario's printed trace —
// timings, reconstructed ops, and the server-side execution ring — must
// be byte-identical whether client machines get their own event domain
// or share one through an affinity group.
func TestTraceAffinityByteIdentical(t *testing.T) {
	for _, which := range []string{"kvget", "kvput", "kvchase", "kvscan", "abdwrite", "txcommit"} {
		t.Run(which, func(t *testing.T) {
			var solo, grouped strings.Builder
			if !trace(&solo, which, 1) {
				t.Fatalf("trace(%q) failed", which)
			}
			if !trace(&grouped, which, 4) {
				t.Fatalf("trace(%q, affinity=4) failed", which)
			}
			if solo.String() != grouped.String() {
				t.Fatalf("trace differs under affinity grouping:\n--- solo ---\n%s--- affinity=4 ---\n%s",
					solo.String(), grouped.String())
			}
		})
	}
}

// domRe strips the owning-domain annotation: regrouping legitimately
// renumbers domains (fewer of them exist), but everything else about the
// executed trace — order, times, connections, sequence numbers, opcodes,
// statuses — must not move.
var domRe = regexp.MustCompile(`dom=\d+`)

// traceMultiClient drives three client machines (grouped per the given
// ClientsPerDomain) through interleaved KV traffic against one server
// and returns the server's execution trace.
func traceMultiClient(t *testing.T, clientsPerDomain int) []string {
	t.Helper()
	c := prism.NewCluster(prism.ClusterConfig{Seed: 11, ClientsPerDomain: clientsPerDomain})
	srv := c.NewServer("kv", prism.SoftwarePRISM)
	store, err := prism.NewKVServer(srv, prism.KVOptions(64, 128))
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 8; k++ {
		if err := store.Load(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	ring := rdma.NewTraceRing(4096)
	srv.SetTracer(ring.Record)
	for i := 0; i < 3; i++ {
		i := i
		conn := c.NewClientMachine(fmt.Sprintf("cli-%d", i)).Connect(srv)
		kv := prism.NewKVClient(conn, store.Meta(), uint16(i+1))
		c.Go(fmt.Sprintf("load-%d", i), func(p *sim.Proc) {
			for round := 0; round < 16; round++ {
				key := int64((i + round) % 8)
				if round%3 == 0 {
					if err := kv.Put(p, key, []byte(fmt.Sprintf("c%d-r%d", i, round))); err != nil {
						t.Errorf("put: %v", err)
					}
				} else if _, err := kv.Get(p, key); err != nil {
					t.Errorf("get: %v", err)
				}
			}
		})
	}
	c.Run()
	var out []string
	for _, ev := range ring.Events() {
		out = append(out, domRe.ReplaceAllString(ev.String(), "dom=*"))
	}
	return out
}

// TestRegroupingPreservesExecutionTrace: with three clients racing on
// one server, the server-side wire trace must be identical under every
// grouping — the (time, source node, send sequence) merge order decides
// delivery order, never the domain layout.
func TestRegroupingPreservesExecutionTrace(t *testing.T) {
	base := traceMultiClient(t, 1)
	if len(base) == 0 {
		t.Fatal("empty execution trace")
	}
	for _, g := range []int{2, 3} {
		regrouped := traceMultiClient(t, g)
		if len(regrouped) != len(base) {
			t.Fatalf("ClientsPerDomain=%d: %d events vs %d ungrouped", g, len(regrouped), len(base))
		}
		for i := range base {
			if base[i] != regrouped[i] {
				t.Fatalf("ClientsPerDomain=%d: event %d differs:\nungrouped: %s\nregrouped: %s",
					g, i, base[i], regrouped[i])
			}
		}
	}
}
