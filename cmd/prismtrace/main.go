// Command prismtrace prints an annotated, op-by-op trace of the canonical
// PRISM interaction patterns — a teaching/debugging aid that shows exactly
// which wire operations each application-level operation issues, with
// their flags, sizes, and simulated timing, across the deployment models.
//
//	prismtrace kvget      # PRISM-KV GET (one indirect bounded READ)
//	prismtrace kvput      # PRISM-KV PUT (probe + ALLOCATE/WRITE/CAS chain)
//	prismtrace abdwrite   # PRISM-RS write phase chain
//	prismtrace txcommit   # PRISM-TX prepare + commit CASes
//	prismtrace all
package main

import (
	"flag"
	"fmt"
	"os"

	"prism"
	"prism/internal/abd"
	"prism/internal/memory"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/tx"
	"prism/internal/wire"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: prismtrace {kvget|kvput|abdwrite|txcommit|all}")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	which := flag.Arg(0)
	if which == "all" {
		for _, w := range []string{"kvget", "kvput", "abdwrite", "txcommit"} {
			trace(w)
			fmt.Println()
		}
		return
	}
	trace(which)
}

// attachRing installs a bounded tracer on the server so the executed
// wire ops — with the event domain that owns them — can be replayed
// after the run.
func attachRing(srv *prism.Server) *rdma.TraceRing {
	ring := rdma.NewTraceRing(256)
	srv.SetTracer(ring.Record)
	return ring
}

// dumpRing prints the server-side execution trace. Each line carries the
// op's owning event domain (dom=N): under the per-node domain scheduler
// every server executes its NIC chain in its own domain, so the ids show
// where in the partitioned simulation each op actually ran.
func dumpRing(name string, ring *rdma.TraceRing) {
	fmt.Printf("  executed on %s (server trace; dom = owning event domain):\n", name)
	for _, ev := range ring.Events() {
		fmt.Printf("    %v\n", ev)
	}
}

// traceConn wraps op issue with printing.
func describeOps(ops []wire.Op) {
	for i, op := range ops {
		var flags []string
		for _, f := range []struct {
			bit  wire.Flags
			name string
		}{
			{wire.FlagTargetIndirect, "target-indirect"},
			{wire.FlagDataIndirect, "data-indirect"},
			{wire.FlagBounded, "bounded"},
			{wire.FlagConditional, "conditional"},
			{wire.FlagRedirect, "redirect"},
		} {
			if op.Flags.Has(f.bit) {
				flags = append(flags, f.name)
			}
		}
		fl := ""
		if len(flags) > 0 {
			fl = fmt.Sprintf(" flags=%v", flags)
		}
		extra := ""
		switch op.Code {
		case wire.OpCAS:
			extra = fmt.Sprintf(" mode=%v width=%dB", op.Mode, len(op.CompareMask))
		case wire.OpAllocate:
			extra = fmt.Sprintf(" freelist=%d payload=%dB", op.FreeList, len(op.Data))
		case wire.OpRead:
			extra = fmt.Sprintf(" len=%d", op.Len)
		case wire.OpWrite:
			extra = fmt.Sprintf(" payload=%dB", len(op.Data))
		}
		fmt.Printf("    op[%d] %-9s target=%#x%s%s\n", i, op.Code, op.Target, extra, fl)
	}
}

func trace(which string) {
	c := prism.NewCluster(prism.ClusterConfig{Seed: 3})

	switch which {
	case "kvget", "kvput":
		srv := c.NewServer("kv", prism.SoftwarePRISM)
		store, err := prism.NewKVServer(srv, prism.KVOptions(64, 256))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store.Load(7, []byte("traced value"))
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := prism.NewKVClient(conn, store.Meta(), 1)
		c.Go("trace", func(p *sim.Proc) {
			if which == "kvget" {
				fmt.Println("PRISM-KV GET(7): one round trip —")
				start := p.Now()
				v, err := client.Get(p, 7)
				fmt.Printf("  -> %q err=%v RTT=%v\n", v, err, p.Now().Sub(start))
				fmt.Println("  wire ops issued (reconstructed):")
				describeOps([]wire.Op{
					opReadBounded(store, 7),
				})
			} else {
				fmt.Println("PRISM-KV PUT(7): two round trips —")
				start := p.Now()
				err := client.Put(p, 7, []byte("new value"))
				fmt.Printf("  -> err=%v total=%v\n", err, p.Now().Sub(start))
				fmt.Println("  RT1 probe chain:")
				describeOps(probeOps(store, 7))
				fmt.Println("  RT2 out-of-place install chain:")
				describeOps(installOps(store, conn, 7))
			}
		})
		c.Run()
		dumpRing("kv", ring)

	case "abdwrite":
		fmt.Println("PRISM-RS write phase (per replica, §7.3): one chained round trip —")
		srv := c.NewServer("replica", prism.SoftwarePRISM)
		rep, err := prism.NewRSReplica(srv, prism.RSOptions{NBlocks: 8, BlockSize: 64, ExtraBuffers: 16})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := prism.NewRSClient(1, []*prism.Conn{conn}, []abd.Meta{rep.Meta()})
		c.Go("trace", func(p *sim.Proc) {
			start := p.Now()
			tag, err := client.PutT(p, 3, make([]byte, 64))
			fmt.Printf("  PUT block 3 -> tag %v err=%v total=%v (read phase + write phase)\n",
				tag, err, p.Now().Sub(start))
			fmt.Println("  write-phase chain (1. WRITE tag to tmp; 2. ALLOCATE redirect addr to")
			fmt.Println("  tmp+8; 3. CAS_GT <tag|addr> with data-indirect from tmp):")
			m := rep.Meta()
			describeOps(abdChain(m, conn, 3))
		})
		c.Run()
		dumpRing("replica", ring)

	case "txcommit":
		fmt.Println("PRISM-TX commit for a 1-key RMW (§8.2): three round trips total —")
		srv := c.NewServer("shard", prism.SoftwarePRISM)
		shard, err := prism.NewTXShard(srv, prism.TXOptions{NSlots: 8, MaxValue: 64, ExtraBuffers: 32})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		shard.Load(2, make([]byte, 64))
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := c.NewTXClient(1, []*prism.Conn{conn}, []tx.Meta{shard.Meta()})
		c.Go("trace", func(p *sim.Proc) {
			t := client.Begin()
			start := p.Now()
			v, err := t.Read(p, 2)
			fmt.Printf("  exec READ key 2 -> %dB err=%v RTT=%v\n", len(v), err, p.Now().Sub(start))
			t.Write(2, make([]byte, 64))
			start = p.Now()
			ts, err := t.Commit(p)
			fmt.Printf("  commit -> ts=%v err=%v (prepare RT + install RT) total=%v\n",
				ts, err, p.Now().Sub(start))
			fmt.Println("  prepare chain: read-validation CAS_GT (RC|TS vs PW|PR, swap PR),")
			fmt.Println("  then CONDITIONAL write-validation CAS_GT (TS vs PW, swap PW);")
			fmt.Println("  install chain: WRITE ts|bound to tmp, ALLOCATE redirect, CAS_GT <C|addr|bound>.")
		})
		c.Run()
		dumpRing("shard", ring)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// The reconstructions below mirror exactly what the clients issue (the
// clients build these internally; prismtrace re-derives them for display).
func opReadBounded(store *prism.KVServer, key int64) wire.Op {
	m := store.Meta()
	return wire.Op{
		Code: wire.OpRead, RKey: m.Key,
		Target: m.HashBase + 24*memoryAddr(key%m.NSlots) + 8,
		Len:    uint64(8 + 8 + m.MaxValue), Flags: wire.FlagBounded,
	}
}

func probeOps(store *prism.KVServer, key int64) []wire.Op {
	m := store.Meta()
	slot := m.HashBase + 24*memoryAddr(key%m.NSlots)
	return []wire.Op{
		{Code: wire.OpRead, RKey: m.Key, Target: slot, Len: 24},
		{Code: wire.OpRead, RKey: m.Key, Target: slot + 8, Len: uint64(8 + 8 + m.MaxValue), Flags: wire.FlagBounded},
	}
}

func installOps(store *prism.KVServer, conn *prism.Conn, key int64) []wire.Op {
	m := store.Meta()
	slot := m.HashBase + 24*memoryAddr(key%m.NSlots)
	return []wire.Op{
		{Code: wire.OpWrite, RKey: conn.TempKey, Target: conn.TempAddr, Data: make([]byte, 24)},
		{Code: wire.OpAllocate, FreeList: 4, Data: make([]byte, 25), Flags: wire.FlagConditional | wire.FlagRedirect, RKey: conn.TempKey, RedirectTo: conn.TempAddr + 8},
		{Code: wire.OpCAS, Mode: wire.CASGt, RKey: m.Key, Target: slot, Data: make([]byte, 8), CompareMask: make([]byte, 24), SwapMask: make([]byte, 24), Flags: wire.FlagConditional | wire.FlagDataIndirect},
	}
}

func abdChain(m abd.Meta, conn *prism.Conn, block int64) []wire.Op {
	entry := m.MetaBase + 16*memoryAddr(block)
	return []wire.Op{
		{Code: wire.OpWrite, RKey: conn.TempKey, Target: conn.TempAddr, Data: make([]byte, 8)},
		{Code: wire.OpAllocate, FreeList: m.FreeList, Data: make([]byte, uint64(8+m.BlockSize)), Flags: wire.FlagConditional | wire.FlagRedirect, RKey: conn.TempKey, RedirectTo: conn.TempAddr + 8},
		{Code: wire.OpCAS, Mode: wire.CASGt, RKey: m.Key, Target: entry, Data: make([]byte, 8), CompareMask: make([]byte, 16), SwapMask: make([]byte, 16), Flags: wire.FlagConditional | wire.FlagDataIndirect},
	}
}

func memoryAddr(v int64) memory.Addr { return memory.Addr(v) }
