// Command prismtrace prints an annotated, op-by-op trace of the canonical
// PRISM interaction patterns — a teaching/debugging aid that shows exactly
// which wire operations each application-level operation issues, with
// their flags, sizes, and simulated timing, across the deployment models.
//
//	prismtrace kvget      # PRISM-KV GET (one indirect bounded READ)
//	prismtrace kvput      # PRISM-KV PUT (probe + ALLOCATE/WRITE/CAS chain)
//	prismtrace abdwrite   # PRISM-RS write phase chain
//	prismtrace txcommit   # PRISM-TX prepare + commit CASes
//	prismtrace all
//
// The -affinity flag groups client machines into shared event domains
// (N machines per domain); the printed trace is byte-identical at any
// grouping — regrouping only changes scheduler barrier frequency.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prism"
	"prism/internal/abd"
	"prism/internal/memory"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/tx"
	"prism/internal/wire"
)

func main() {
	affinity := flag.Int("affinity", 1, "client machines per event domain (output is identical at any grouping)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: prismtrace [-affinity N] {kvget|kvput|abdwrite|txcommit|all}")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	which := flag.Arg(0)
	if which == "all" {
		for _, w := range []string{"kvget", "kvput", "abdwrite", "txcommit"} {
			if !trace(os.Stdout, w, *affinity) {
				os.Exit(2)
			}
			fmt.Println()
		}
		return
	}
	if !trace(os.Stdout, which, *affinity) {
		flag.Usage()
		os.Exit(2)
	}
}

// attachRing installs a bounded tracer on the server so the executed
// wire ops — with the event domain that owns them — can be replayed
// after the run.
func attachRing(srv *prism.Server) *rdma.TraceRing {
	ring := rdma.NewTraceRing(256)
	srv.SetTracer(ring.Record)
	return ring
}

// dumpRing prints the server-side execution trace. Each line carries the
// op's owning event domain (dom=N): under the per-node domain scheduler
// every server executes its NIC chain in its own domain, so the ids show
// where in the partitioned simulation each op actually ran.
func dumpRing(w io.Writer, name string, ring *rdma.TraceRing) {
	fmt.Fprintf(w, "  executed on %s (server trace; dom = owning event domain):\n", name)
	for _, ev := range ring.Events() {
		fmt.Fprintf(w, "    %v\n", ev)
	}
}

// traceConn wraps op issue with printing.
func describeOps(w io.Writer, ops []wire.Op) {
	for i, op := range ops {
		var flags []string
		for _, f := range []struct {
			bit  wire.Flags
			name string
		}{
			{wire.FlagTargetIndirect, "target-indirect"},
			{wire.FlagDataIndirect, "data-indirect"},
			{wire.FlagBounded, "bounded"},
			{wire.FlagConditional, "conditional"},
			{wire.FlagRedirect, "redirect"},
		} {
			if op.Flags.Has(f.bit) {
				flags = append(flags, f.name)
			}
		}
		fl := ""
		if len(flags) > 0 {
			fl = fmt.Sprintf(" flags=%v", flags)
		}
		extra := ""
		switch op.Code {
		case wire.OpCAS:
			extra = fmt.Sprintf(" mode=%v width=%dB", op.Mode, len(op.CompareMask))
		case wire.OpAllocate:
			extra = fmt.Sprintf(" freelist=%d payload=%dB", op.FreeList, len(op.Data))
		case wire.OpRead:
			extra = fmt.Sprintf(" len=%d", op.Len)
		case wire.OpWrite:
			extra = fmt.Sprintf(" payload=%dB", len(op.Data))
		}
		fmt.Fprintf(w, "    op[%d] %-9s target=%#x%s%s\n", i, op.Code, op.Target, extra, fl)
	}
}

// trace writes the annotated trace for one scenario to w; it reports
// false for an unknown scenario name.
func trace(w io.Writer, which string, affinity int) bool {
	c := prism.NewCluster(prism.ClusterConfig{Seed: 3, ClientsPerDomain: affinity})

	switch which {
	case "kvget", "kvput":
		srv := c.NewServer("kv", prism.SoftwarePRISM)
		store, err := prism.NewKVServer(srv, prism.KVOptions(64, 256))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store.Load(7, []byte("traced value"))
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := prism.NewKVClient(conn, store.Meta(), 1)
		c.Go("trace", func(p *sim.Proc) {
			if which == "kvget" {
				fmt.Fprintln(w, "PRISM-KV GET(7): one round trip —")
				start := p.Now()
				v, err := client.Get(p, 7)
				fmt.Fprintf(w, "  -> %q err=%v RTT=%v\n", v, err, p.Now().Sub(start))
				fmt.Fprintln(w, "  wire ops issued (reconstructed):")
				describeOps(w, []wire.Op{
					opReadBounded(store, 7),
				})
			} else {
				fmt.Fprintln(w, "PRISM-KV PUT(7): two round trips —")
				start := p.Now()
				err := client.Put(p, 7, []byte("new value"))
				fmt.Fprintf(w, "  -> err=%v total=%v\n", err, p.Now().Sub(start))
				fmt.Fprintln(w, "  RT1 probe chain:")
				describeOps(w, probeOps(store, 7))
				fmt.Fprintln(w, "  RT2 out-of-place install chain:")
				describeOps(w, installOps(store, conn, 7))
			}
		})
		c.Run()
		dumpRing(w, "kv", ring)

	case "abdwrite":
		fmt.Fprintln(w, "PRISM-RS write phase (per replica, §7.3): one chained round trip —")
		srv := c.NewServer("replica", prism.SoftwarePRISM)
		rep, err := prism.NewRSReplica(srv, prism.RSOptions{NBlocks: 8, BlockSize: 64, ExtraBuffers: 16})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := prism.NewRSClient(1, []*prism.Conn{conn}, []abd.Meta{rep.Meta()})
		c.Go("trace", func(p *sim.Proc) {
			start := p.Now()
			tag, err := client.PutT(p, 3, make([]byte, 64))
			fmt.Fprintf(w, "  PUT block 3 -> tag %v err=%v total=%v (read phase + write phase)\n",
				tag, err, p.Now().Sub(start))
			fmt.Fprintln(w, "  write-phase chain (1. WRITE tag to tmp; 2. ALLOCATE redirect addr to")
			fmt.Fprintln(w, "  tmp+8; 3. CAS_GT <tag|addr> with data-indirect from tmp):")
			m := rep.Meta()
			describeOps(w, abdChain(m, conn, 3))
		})
		c.Run()
		dumpRing(w, "replica", ring)

	case "txcommit":
		fmt.Fprintln(w, "PRISM-TX commit for a 1-key RMW (§8.2): three round trips total —")
		srv := c.NewServer("shard", prism.SoftwarePRISM)
		shard, err := prism.NewTXShard(srv, prism.TXOptions{NSlots: 8, MaxValue: 64, ExtraBuffers: 32})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		shard.Load(2, make([]byte, 64))
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := c.NewTXClient(1, []*prism.Conn{conn}, []tx.Meta{shard.Meta()})
		c.Go("trace", func(p *sim.Proc) {
			t := client.Begin()
			start := p.Now()
			v, err := t.Read(p, 2)
			fmt.Fprintf(w, "  exec READ key 2 -> %dB err=%v RTT=%v\n", len(v), err, p.Now().Sub(start))
			t.Write(2, make([]byte, 64))
			start = p.Now()
			ts, err := t.Commit(p)
			fmt.Fprintf(w, "  commit -> ts=%v err=%v (prepare RT + install RT) total=%v\n",
				ts, err, p.Now().Sub(start))
			fmt.Fprintln(w, "  prepare chain: read-validation CAS_GT (RC|TS vs PW|PR, swap PR),")
			fmt.Fprintln(w, "  then CONDITIONAL write-validation CAS_GT (TS vs PW, swap PW);")
			fmt.Fprintln(w, "  install chain: WRITE ts|bound to tmp, ALLOCATE redirect, CAS_GT <C|addr|bound>.")
		})
		c.Run()
		dumpRing(w, "shard", ring)

	default:
		return false
	}
	return true
}

// The reconstructions below mirror exactly what the clients issue (the
// clients build these internally; prismtrace re-derives them for display).
func opReadBounded(store *prism.KVServer, key int64) wire.Op {
	m := store.Meta()
	return wire.Op{
		Code: wire.OpRead, RKey: m.Key,
		Target: m.HashBase + 24*memoryAddr(key%m.NSlots) + 8,
		Len:    uint64(8 + 8 + m.MaxValue), Flags: wire.FlagBounded,
	}
}

func probeOps(store *prism.KVServer, key int64) []wire.Op {
	m := store.Meta()
	slot := m.HashBase + 24*memoryAddr(key%m.NSlots)
	return []wire.Op{
		{Code: wire.OpRead, RKey: m.Key, Target: slot, Len: 24},
		{Code: wire.OpRead, RKey: m.Key, Target: slot + 8, Len: uint64(8 + 8 + m.MaxValue), Flags: wire.FlagBounded},
	}
}

func installOps(store *prism.KVServer, conn *prism.Conn, key int64) []wire.Op {
	m := store.Meta()
	slot := m.HashBase + 24*memoryAddr(key%m.NSlots)
	return []wire.Op{
		{Code: wire.OpWrite, RKey: conn.TempKey, Target: conn.TempAddr, Data: make([]byte, 24)},
		{Code: wire.OpAllocate, FreeList: 4, Data: make([]byte, 25), Flags: wire.FlagConditional | wire.FlagRedirect, RKey: conn.TempKey, RedirectTo: conn.TempAddr + 8},
		{Code: wire.OpCAS, Mode: wire.CASGt, RKey: m.Key, Target: slot, Data: make([]byte, 8), CompareMask: make([]byte, 24), SwapMask: make([]byte, 24), Flags: wire.FlagConditional | wire.FlagDataIndirect},
	}
}

func abdChain(m abd.Meta, conn *prism.Conn, block int64) []wire.Op {
	entry := m.MetaBase + 16*memoryAddr(block)
	return []wire.Op{
		{Code: wire.OpWrite, RKey: conn.TempKey, Target: conn.TempAddr, Data: make([]byte, 8)},
		{Code: wire.OpAllocate, FreeList: m.FreeList, Data: make([]byte, uint64(8+m.BlockSize)), Flags: wire.FlagConditional | wire.FlagRedirect, RKey: conn.TempKey, RedirectTo: conn.TempAddr + 8},
		{Code: wire.OpCAS, Mode: wire.CASGt, RKey: m.Key, Target: entry, Data: make([]byte, 8), CompareMask: make([]byte, 16), SwapMask: make([]byte, 16), Flags: wire.FlagConditional | wire.FlagDataIndirect},
	}
}

func memoryAddr(v int64) memory.Addr { return memory.Addr(v) }
