// Command prismtrace prints an annotated, op-by-op trace of the canonical
// PRISM interaction patterns — a teaching/debugging aid that shows exactly
// which wire operations each application-level operation issues, with
// their flags, sizes, and simulated timing, across the deployment models.
//
//	prismtrace kvget      # PRISM-KV GET (one indirect bounded READ)
//	prismtrace kvput      # PRISM-KV PUT (probe + ALLOCATE/WRITE/CAS chain)
//	prismtrace kvchase    # CHASE program: one-RTT pointer walk vs per-hop READs
//	prismtrace kvscan     # SCAN program: budget-bounded slot-range read
//	prismtrace abdwrite   # PRISM-RS write phase chain
//	prismtrace txcommit   # PRISM-TX prepare + commit CASes
//	prismtrace all
//
// The -affinity flag groups client machines into shared event domains
// (N machines per domain); the printed trace is byte-identical at any
// grouping — regrouping only changes scheduler barrier frequency.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"prism"
	"prism/internal/abd"
	"prism/internal/memory"
	iprism "prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/tx"
	"prism/internal/wire"
)

func main() {
	affinity := flag.Int("affinity", 1, "client machines per event domain (output is identical at any grouping)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: prismtrace [-affinity N] {kvget|kvput|kvchase|kvscan|abdwrite|txcommit|all}")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	which := flag.Arg(0)
	if which == "all" {
		for _, w := range []string{"kvget", "kvput", "kvchase", "kvscan", "abdwrite", "txcommit"} {
			if !trace(os.Stdout, w, *affinity) {
				os.Exit(2)
			}
			fmt.Println()
		}
		return
	}
	if !trace(os.Stdout, which, *affinity) {
		flag.Usage()
		os.Exit(2)
	}
}

// attachRing installs a bounded tracer on the server so the executed
// wire ops — with the event domain that owns them — can be replayed
// after the run.
func attachRing(srv *prism.Server) *rdma.TraceRing {
	ring := rdma.NewTraceRing(256)
	srv.SetTracer(ring.Record)
	return ring
}

// dumpRing prints the server-side execution trace. Each line carries the
// op's owning event domain (dom=N): under the per-node domain scheduler
// every server executes its NIC chain in its own domain, so the ids show
// where in the partitioned simulation each op actually ran.
func dumpRing(w io.Writer, name string, ring *rdma.TraceRing) {
	fmt.Fprintf(w, "  executed on %s (server trace; dom = owning event domain):\n", name)
	for _, ev := range ring.Events() {
		fmt.Fprintf(w, "    %v\n", ev)
	}
}

// traceConn wraps op issue with printing.
func describeOps(w io.Writer, ops []wire.Op) {
	for i, op := range ops {
		var flags []string
		for _, f := range []struct {
			bit  wire.Flags
			name string
		}{
			{wire.FlagTargetIndirect, "target-indirect"},
			{wire.FlagDataIndirect, "data-indirect"},
			{wire.FlagBounded, "bounded"},
			{wire.FlagConditional, "conditional"},
			{wire.FlagRedirect, "redirect"},
		} {
			if op.Flags.Has(f.bit) {
				flags = append(flags, f.name)
			}
		}
		fl := ""
		if len(flags) > 0 {
			fl = fmt.Sprintf(" flags=%v", flags)
		}
		extra := ""
		switch op.Code {
		case wire.OpCAS:
			extra = fmt.Sprintf(" mode=%v width=%dB", op.Mode, len(op.CompareMask))
		case wire.OpAllocate:
			extra = fmt.Sprintf(" freelist=%d payload=%dB", op.FreeList, len(op.Data))
		case wire.OpRead:
			extra = fmt.Sprintf(" len=%d", op.Len)
		case wire.OpWrite:
			extra = fmt.Sprintf(" payload=%dB", len(op.Data))
		case wire.OpChase:
			if prog, match, err := iprism.DecodeProgram(op.Data); err == nil {
				kind := "list"
				if prog.Kind == iprism.ProgChaseProbe {
					kind = "probe"
				}
				extra = fmt.Sprintf(" prog=chase/%s maxSteps=%d matchOff=%d match=%dB mode=%v payload<=%dB",
					kind, prog.MaxSteps, prog.MatchOff, len(match), op.Mode, op.Len)
			}
		case wire.OpScan:
			if prog, _, err := iprism.DecodeProgram(op.Data); err == nil {
				extra = fmt.Sprintf(" prog=scan slots=[%d,%d) stride=%dB budget=%dB",
					prog.StartIdx, prog.NSlots, prog.Stride, op.Len)
			}
		}
		fmt.Fprintf(w, "    op[%d] %-9s target=%#x%s%s\n", i, op.Code, op.Target, extra, fl)
	}
}

// trace writes the annotated trace for one scenario to w; it reports
// false for an unknown scenario name.
func trace(w io.Writer, which string, affinity int) bool {
	c := prism.NewCluster(prism.ClusterConfig{Seed: 3, ClientsPerDomain: affinity})

	switch which {
	case "kvget", "kvput":
		srv := c.NewServer("kv", prism.SoftwarePRISM)
		store, err := prism.NewKVServer(srv, prism.KVOptions(64, 256))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store.Load(7, []byte("traced value"))
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := prism.NewKVClient(conn, store.Meta(), 1)
		c.Go("trace", func(p *sim.Proc) {
			if which == "kvget" {
				fmt.Fprintln(w, "PRISM-KV GET(7): one round trip —")
				start := p.Now()
				v, err := client.Get(p, 7)
				fmt.Fprintf(w, "  -> %q err=%v RTT=%v\n", v, err, p.Now().Sub(start))
				fmt.Fprintln(w, "  wire ops issued (reconstructed):")
				describeOps(w, []wire.Op{
					opReadBounded(store, 7),
				})
			} else {
				fmt.Fprintln(w, "PRISM-KV PUT(7): two round trips —")
				start := p.Now()
				err := client.Put(p, 7, []byte("new value"))
				fmt.Fprintf(w, "  -> err=%v total=%v\n", err, p.Now().Sub(start))
				fmt.Fprintln(w, "  RT1 probe chain:")
				describeOps(w, probeOps(store, 7))
				fmt.Fprintln(w, "  RT2 out-of-place install chain:")
				describeOps(w, installOps(store, conn, 7))
			}
		})
		c.Run()
		dumpRing(w, "kv", ring)

	case "kvchase":
		srv := c.NewServer("chain", prism.SoftwarePRISM)
		store, err := prism.NewChainStore(srv, prism.ChainOptions{Buckets: 8, Depth: 4, MaxValue: 64})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for k := int64(0); k < 32; k++ {
			store.Load(k, []byte(fmt.Sprintf("chain value %d", k)))
		}
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := prism.NewChainClient(conn, store.Meta())
		c.Go("trace", func(p *sim.Proc) {
			const key = 3 // tail of bucket 0: four pointer hops deep
			fmt.Fprintln(w, "CHASE GET(3) on an 8x4 chain store (§17): the key is 4 hops deep —")
			start := p.Now()
			v, err := client.ChaseGet(p, key)
			fmt.Fprintf(w, "  -> %q err=%v RTT=%v (one round trip; the NIC walks all 4 nodes)\n",
				v, err, p.Now().Sub(start))
			fmt.Fprintln(w, "  wire op issued (reconstructed):")
			describeOps(w, []wire.Op{chaseOp(store.Meta(), key)})
			start = p.Now()
			v, err = client.HopGet(p, key)
			fmt.Fprintf(w, "  per-hop baseline HopGet -> %q err=%v hops=%d total=%v (one RTT per hop)\n",
				v, err, client.Hops, p.Now().Sub(start))
		})
		c.Run()
		dumpRing(w, "chain", ring)

	case "kvscan":
		srv := c.NewServer("kv", prism.SoftwarePRISM)
		store, err := prism.NewKVServer(srv, prism.KVOptions(64, 256))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for k := int64(0); k < 16; k++ {
			store.Load(k, []byte(fmt.Sprintf("scanned value %d", k)))
		}
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := prism.NewKVClient(conn, store.Meta(), 1)
		c.Go("trace", func(p *sim.Proc) {
			fmt.Fprintln(w, "SCAN over a 64-slot table, 512-byte budget (§17): one round trip per window —")
			start := p.Now()
			entries := 0
			next, err := client.Scan(p, 0, 512, func(key int64, value []byte) error {
				entries++
				return nil
			})
			fmt.Fprintf(w, "  -> %d entries, cursor=%d err=%v RTT=%v (resume from the cursor for the rest)\n",
				entries, next, err, p.Now().Sub(start))
			fmt.Fprintln(w, "  wire op issued (reconstructed):")
			describeOps(w, []wire.Op{scanOp(store, 0, 512)})
		})
		c.Run()
		dumpRing(w, "kv", ring)

	case "abdwrite":
		fmt.Fprintln(w, "PRISM-RS write phase (per replica, §7.3): one chained round trip —")
		srv := c.NewServer("replica", prism.SoftwarePRISM)
		rep, err := prism.NewRSReplica(srv, prism.RSOptions{NBlocks: 8, BlockSize: 64, ExtraBuffers: 16})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := prism.NewRSClient(1, []*prism.Conn{conn}, []abd.Meta{rep.Meta()})
		c.Go("trace", func(p *sim.Proc) {
			start := p.Now()
			tag, err := client.PutT(p, 3, make([]byte, 64))
			fmt.Fprintf(w, "  PUT block 3 -> tag %v err=%v total=%v (read phase + write phase)\n",
				tag, err, p.Now().Sub(start))
			fmt.Fprintln(w, "  write-phase chain (1. WRITE tag to tmp; 2. ALLOCATE redirect addr to")
			fmt.Fprintln(w, "  tmp+8; 3. CAS_GT <tag|addr> with data-indirect from tmp):")
			m := rep.Meta()
			describeOps(w, abdChain(m, conn, 3))
		})
		c.Run()
		dumpRing(w, "replica", ring)

	case "txcommit":
		fmt.Fprintln(w, "PRISM-TX commit for a 1-key RMW (§8.2): three round trips total —")
		srv := c.NewServer("shard", prism.SoftwarePRISM)
		shard, err := prism.NewTXShard(srv, prism.TXOptions{NSlots: 8, MaxValue: 64, ExtraBuffers: 32})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		shard.Load(2, make([]byte, 64))
		ring := attachRing(srv)
		conn := c.NewClientMachine("cli").Connect(srv)
		client := c.NewTXClient(1, []*prism.Conn{conn}, []tx.Meta{shard.Meta()})
		c.Go("trace", func(p *sim.Proc) {
			t := client.Begin()
			start := p.Now()
			v, err := t.Read(p, 2)
			fmt.Fprintf(w, "  exec READ key 2 -> %dB err=%v RTT=%v\n", len(v), err, p.Now().Sub(start))
			t.Write(2, make([]byte, 64))
			start = p.Now()
			ts, err := t.Commit(p)
			fmt.Fprintf(w, "  commit -> ts=%v err=%v (prepare RT + install RT) total=%v\n",
				ts, err, p.Now().Sub(start))
			fmt.Fprintln(w, "  prepare chain: read-validation CAS_GT (RC|TS vs PW|PR, swap PR),")
			fmt.Fprintln(w, "  then CONDITIONAL write-validation CAS_GT (TS vs PW, swap PW);")
			fmt.Fprintln(w, "  install chain: WRITE ts|bound to tmp, ALLOCATE redirect, CAS_GT <C|addr|bound>.")
		})
		c.Run()
		dumpRing(w, "shard", ring)

	default:
		return false
	}
	return true
}

// The reconstructions below mirror exactly what the clients issue (the
// clients build these internally; prismtrace re-derives them for display).
func opReadBounded(store *prism.KVServer, key int64) wire.Op {
	m := store.Meta()
	return wire.Op{
		Code: wire.OpRead, RKey: m.Key,
		Target: m.HashBase + 24*memoryAddr(key%m.NSlots) + 8,
		Len:    uint64(8 + 8 + m.MaxValue), Flags: wire.FlagBounded,
	}
}

func probeOps(store *prism.KVServer, key int64) []wire.Op {
	m := store.Meta()
	slot := m.HashBase + 24*memoryAddr(key%m.NSlots)
	return []wire.Op{
		{Code: wire.OpRead, RKey: m.Key, Target: slot, Len: 24},
		{Code: wire.OpRead, RKey: m.Key, Target: slot + 8, Len: uint64(8 + 8 + m.MaxValue), Flags: wire.FlagBounded},
	}
}

func installOps(store *prism.KVServer, conn *prism.Conn, key int64) []wire.Op {
	m := store.Meta()
	slot := m.HashBase + 24*memoryAddr(key%m.NSlots)
	return []wire.Op{
		{Code: wire.OpWrite, RKey: conn.TempKey, Target: conn.TempAddr, Data: make([]byte, 24)},
		{Code: wire.OpAllocate, FreeList: 4, Data: make([]byte, 25), Flags: wire.FlagConditional | wire.FlagRedirect, RKey: conn.TempKey, RedirectTo: conn.TempAddr + 8},
		{Code: wire.OpCAS, Mode: wire.CASGt, RKey: m.Key, Target: slot, Data: make([]byte, 8), CompareMask: make([]byte, 24), SwapMask: make([]byte, 24), Flags: wire.FlagConditional | wire.FlagDataIndirect},
	}
}

func abdChain(m abd.Meta, conn *prism.Conn, block int64) []wire.Op {
	entry := m.MetaBase + 16*memoryAddr(block)
	return []wire.Op{
		{Code: wire.OpWrite, RKey: conn.TempKey, Target: conn.TempAddr, Data: make([]byte, 8)},
		{Code: wire.OpAllocate, FreeList: m.FreeList, Data: make([]byte, uint64(8+m.BlockSize)), Flags: wire.FlagConditional | wire.FlagRedirect, RKey: conn.TempKey, RedirectTo: conn.TempAddr + 8},
		{Code: wire.OpCAS, Mode: wire.CASGt, RKey: m.Key, Target: entry, Data: make([]byte, 8), CompareMask: make([]byte, 16), SwapMask: make([]byte, 16), Flags: wire.FlagConditional | wire.FlagDataIndirect},
	}
}

// chaseOp rebuilds the CHASE op ChainClient.ChaseGet issues: a list-walk
// program (next pointer at node offset 0, big-endian key at offset 8)
// with the lookup key as the match operand, targeting the bucket's head
// pointer cell.
func chaseOp(m prism.ChainMeta, key int64) wire.Op {
	prog := iprism.Program{
		Kind:     iprism.ProgChaseList,
		MaxSteps: uint8(m.Depth),
		MatchOff: 8,
		NextOff:  0,
	}
	var match [8]byte
	binary.BigEndian.PutUint64(match[:], uint64(key))
	buf := iprism.AppendProgram(nil, &prog, match[:])
	return iprism.Chase(m.Key, m.HeadBase+8*memoryAddr(key/m.Depth), buf, wire.CASEq, nil, 24+uint64(m.MaxValue))
}

// scanOp rebuilds the SCAN op KVClient.Scan issues: slots [start, NSlots)
// of the 24-byte-slot hash table under a byte budget.
func scanOp(store *prism.KVServer, start int64, budget uint64) wire.Op {
	m := store.Meta()
	prog := iprism.Program{NextOff: 8, Stride: 24, StartIdx: uint64(start), NSlots: uint64(m.NSlots)}
	buf := iprism.AppendProgram(nil, &prog, nil)
	return iprism.Scan(m.Key, m.HashBase, buf, budget)
}

func memoryAddr(v int64) memory.Addr { return memory.Addr(v) }
