// Command prismload drives concurrent load against a live prismd
// server and reports throughput and latency percentiles. Each client is
// a goroutine owning one logical connection (queue pair); many clients
// multiplex over a small pool of sockets, RDMAvisor-style, so "-clients
// 1000 -sockets 8" means a thousand concurrent closed-loop clients on
// eight file descriptors.
//
//	prismload -addr /tmp/prism.sock -clients 1000 -duration 10s -json out.json
//
// The key space should be preloaded (prismd -load) so reads hit.
//
// -workload selects the op mix: "get" (the default read/write mix),
// "scan" (budget-bounded SCAN windows over the hash table), and — when
// the server runs a chain store (prismd -chain DEPTH) — "chase" (one
// CHASE verb program per lookup) against "chasehop" (the per-hop
// one-sided baseline: one round trip per pointer hop).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prism/internal/kv"
	"prism/internal/stats"
	"prism/internal/transport"
)

func main() {
	addr := flag.String("addr", "", "server address (unix path or host:port)")
	clients := flag.Int("clients", 100, "concurrent closed-loop clients (logical connections)")
	sockets := flag.Int("sockets", 8, "sockets to multiplex clients over")
	duration := flag.Duration("duration", 5*time.Second, "measurement duration")
	keys := flag.Int64("keys", 4096, "key space (should be preloaded)")
	valueSize := flag.Int("value", 128, "value size for writes (bytes)")
	reads := flag.Float64("reads", 0.95, "fraction of operations that are GETs")
	workloadKind := flag.String("workload", "get", "op mix: get, chase, chasehop, or scan (chase/chasehop need prismd -chain)")
	depth := flag.Int64("depth", 0, "chain hops per chase/chasehop lookup (0 = the chain's full depth)")
	scanBudget := flag.Uint64("scan-budget", 4096, "byte budget per SCAN window")
	wirecheck := flag.Bool("wirecheck", false, "verify every frame round-trips the codec canonically")
	jsonPath := flag.String("json", "", "write the result JSON here (default stdout)")
	batch := flag.Int("batch", 1, "GETs per doorbell: issue reads in kv.GetBatch trains of this size")
	flushFrames := flag.Int("flush-frames", 0, "client flush threshold: max frames per write syscall (0 = transport default)")
	flushBytes := flag.Int("flush-bytes", 0, "client flush threshold: max bytes per write syscall (0 = transport default)")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "prismload: need -addr")
		os.Exit(2)
	}
	if *sockets < 1 {
		*sockets = 1
	}
	if *sockets > *clients {
		*sockets = *clients
	}
	transport.SetWireCheck(*wirecheck)

	// Dial the socket pool and fetch the store metadata once.
	pool := make([]*transport.Client, *sockets)
	for i := range pool {
		tc, err := transport.Dial(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prismload: dial %s: %v\n", *addr, err)
			os.Exit(1)
		}
		defer tc.Close()
		tc.SetFlushPolicy(*flushFrames, *flushBytes)
		pool[i] = tc
	}
	if *batch < 1 {
		*batch = 1
	}
	metaConn, err := pool[0].Connect()
	if err != nil {
		fmt.Fprintln(os.Stderr, "prismload: connect:", err)
		os.Exit(1)
	}
	var meta kv.Meta
	var chainMeta kv.ChainMeta
	switch *workloadKind {
	case "chase", "chasehop":
		chainMeta, err = kv.FetchChainMeta(metaConn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prismload: fetch chain meta (is the server running -chain?):", err)
			os.Exit(1)
		}
		if *depth <= 0 || *depth > chainMeta.Depth {
			*depth = chainMeta.Depth
		}
	case "get", "scan":
		meta, err = kv.FetchMeta(metaConn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prismload: fetch meta:", err)
			os.Exit(1)
		}
		if *workloadKind == "get" && *keys > meta.NSlots {
			fmt.Fprintf(os.Stderr, "prismload: -keys %d exceeds server's %d slots\n", *keys, meta.NSlots)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "prismload: unknown -workload %q (get, chase, chasehop, or scan)\n", *workloadKind)
		os.Exit(2)
	}

	// Open every logical connection up front so the measured window is
	// pure data path.
	conns := make([]*transport.Conn, *clients)
	for i := range conns {
		cn, err := pool[i%*sockets].Connect()
		if err != nil {
			fmt.Fprintf(os.Stderr, "prismload: connect client %d: %v\n", i, err)
			os.Exit(1)
		}
		conns[i] = cn
	}

	var (
		ops      atomic.Int64
		errCount atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr atomic.Value
	)
	recorders := make([]*stats.LatencyRecorder, *clients)
	finished := make([]atomic.Bool, *clients)
	value := make([]byte, *valueSize)
	for i := range value {
		value[i] = byte(i)
	}
	var scanEntries, hopCount atomic.Int64
	deadline := time.Now().Add(*duration)
	start := time.Now()
	for i := 0; i < *clients; i++ {
		rec := stats.NewLatencyRecorder()
		recorders[i] = rec
		rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
		// doOp runs one operation and returns how many logical ops it
		// completed; done runs after a clean deadline exit.
		var doOp func() (int64, error)
		var done func()
		switch *workloadKind {
		case "chase", "chasehop":
			cc := kv.NewLiveChainClient(conns[i], chainMeta)
			pos := *depth - 1
			lookup := cc.ChaseGet
			if *workloadKind == "chasehop" {
				lookup = cc.HopGet
			}
			doOp = func() (int64, error) {
				// The pos-deep key of a uniform bucket: exactly -depth hops.
				key := rng.Int63n(chainMeta.Buckets)*chainMeta.Depth + pos
				if _, err := lookup(key); err != nil && err != kv.ErrNotFound {
					return 1, err
				}
				return 1, nil
			}
			done = func() { hopCount.Add(cc.Hops) }
		case "scan":
			kvc := kv.NewLiveClient(conns[i], meta, uint16(i+1))
			cursor := int64(0)
			var entries int64
			visit := func(_ int64, _ []byte) error { entries++; return nil }
			doOp = func() (int64, error) {
				next, err := kvc.Scan(cursor, *scanBudget, visit)
				if err != nil {
					return 1, err
				}
				cursor = next
				if cursor >= meta.NSlots {
					cursor = 0
				}
				return 1, nil
			}
			done = func() { scanEntries.Add(entries); kvc.FlushFrees() }
		default: // get
			kvc := kv.NewLiveClient(conns[i], meta, uint16(i+1))
			var batchKeys []int64
			if *batch > 1 {
				batchKeys = make([]int64, *batch)
			}
			doOp = func() (int64, error) {
				var err error
				var n int64 = 1
				if rng.Float64() < *reads {
					if *batch > 1 {
						// One doorbell for the whole GET train; the batch's
						// latency is recorded once, its ops counted each.
						for j := range batchKeys {
							batchKeys[j] = rng.Int63n(*keys)
						}
						var keyErr error
						err = kvc.GetBatch(batchKeys, func(_ int, _ []byte, kerr error) {
							if kerr != nil && kerr != kv.ErrNotFound && keyErr == nil {
								keyErr = kerr // a miss is valid; a protocol error is not
							}
						})
						if err == nil {
							err = keyErr
						}
						n = int64(*batch)
					} else {
						_, err = kvc.Get(rng.Int63n(*keys))
						if err == kv.ErrNotFound {
							err = nil // an unloaded key is a valid miss
						}
					}
				} else {
					err = kvc.Put(rng.Int63n(*keys), value)
				}
				return n, err
			}
			done = func() { kvc.FlushFrees() }
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer finished[id].Store(true)
			for time.Now().Before(deadline) {
				opStart := time.Now()
				n, err := doOp()
				if err != nil {
					// Transport down or protocol error: stop this client but
					// keep the rest running — a mid-run server drop must
					// produce a per-client error report, not a crash.
					errCount.Add(1)
					errOnce.Do(func() { firstErr.Store(fmt.Sprintf("client %d: %v", id, err)) })
					return
				}
				rec.Record(time.Since(opStart))
				ops.Add(n)
			}
			done()
		}(i)
	}

	// A dropped server normally surfaces as per-client errors, but a
	// wedged transport (accepted socket, nothing reading) would block a
	// client mid-call forever. The watchdog bounds the wait and reports
	// partial results rather than hanging.
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	grace := *duration/2 + 5*time.Second
	select {
	case <-waited:
	case <-time.After(time.Until(deadline) + grace):
		fmt.Fprintf(os.Stderr, "prismload: clients still blocked %v past the deadline; reporting partial results\n", grace)
	}
	elapsed := time.Since(start)

	// Merge only the recorders of clients that have exited: a stalled
	// client may still be touching its recorder.
	var stalled int64
	merged := stats.NewLatencyRecorder()
	for i, rec := range recorders {
		if finished[i].Load() {
			merged.Merge(rec)
		} else {
			stalled++
		}
	}
	// Doorbell telemetry, aggregated over the socket pool: write
	// syscalls and the frames/bytes they carried (frames_per_write is
	// the realized batching factor), and the demux side's reads.
	var writes, framesOut, bytesOut, readsIn, bytesIn int64
	for _, tc := range pool {
		w, f, b := tc.FlushStats()
		writes += w
		framesOut += f
		bytesOut += b
		r, rb := tc.ReadStats()
		readsIn += r
		bytesIn += rb
	}
	result := map[string]any{
		"addr":              *addr,
		"clients":           *clients,
		"sockets":           *sockets,
		"duration_s":        elapsed.Seconds(),
		"workload":          *workloadKind,
		"reads":             *reads,
		"value_bytes":       *valueSize,
		"ops":               ops.Load(),
		"ops_per_sec":       float64(ops.Load()) / elapsed.Seconds(),
		"p50_us":            float64(merged.Median()) / 1e3,
		"p99_us":            float64(merged.P99()) / 1e3,
		"errors":            errCount.Load(),
		"num_cpu":           runtime.NumCPU(),
		"wirecheck":         *wirecheck,
		"batch_len":         *batch,
		"flush_frames":      *flushFrames,
		"flush_bytes":       *flushBytes,
		"writes":            writes,
		"frames_per_write":  ratio(framesOut, writes),
		"bytes_per_syscall": ratio(bytesOut, writes),
		"read_syscalls":     readsIn,
		"bytes_per_read":    ratio(bytesIn, readsIn),
		// Per-client failure detail: each client errors at most once
		// before stopping, so errors == clients that dropped out.
		"clients_errored": errCount.Load(),
		"first_error":     firstError(&firstErr),
		"stalled_clients": stalled,
	}
	switch *workloadKind {
	case "chase":
		result["depth"] = *depth
	case "chasehop":
		// Client-observed round trips: what a CHASE program would have
		// collapsed to one per lookup.
		result["depth"] = *depth
		result["hops"] = hopCount.Load()
	case "scan":
		result["scan_budget"] = *scanBudget
		result["scan_entries"] = scanEntries.Load()
	}
	out, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "prismload:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "prismload:", err)
			os.Exit(1)
		}
	}
	os.Stdout.Write(out)
	if errCount.Load() > 0 || stalled > 0 {
		os.Exit(1)
	}
}

func firstError(v *atomic.Value) string {
	if s, ok := v.Load().(string); ok {
		return s
	}
	return ""
}

// ratio returns a/b as a float, 0 when b is 0.
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
