// Benchmarks regenerating the paper's evaluation, one per figure (see
// DESIGN.md's per-experiment index), plus ablations of the design choices
// DESIGN.md calls out. Latencies and throughputs are reported as custom
// metrics in simulated units (the sim clock is virtual, so wall-clock
// ns/op is just harness cost):
//
//	go test -bench=. -benchmem
//
// Each benchmark uses a reduced keyspace and window that preserve the
// paper's shapes; cmd/prismbench regenerates the full curves.
package prism

import (
	"fmt"
	"testing"
	"time"

	"prism/internal/bench"
	"prism/internal/model"
)

// benchConfig is a trimmed configuration for fast regeneration in go test.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Keys = 4096
	cfg.Measure = 1 * time.Millisecond
	cfg.Warmup = 100 * time.Microsecond
	cfg.ClientCounts = []int{8, 64, 128}
	return cfg
}

// reportSeriesLatency reports each series' single-point mean latency.
func reportCategorical(b *testing.B, fig *bench.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		for i, pt := range s.Points {
			label := fmt.Sprintf("%s/%d", s.Name, i)
			if i < len(s.Labels) {
				label = s.Name + "/" + s.Labels[i]
			}
			_ = label
			_ = pt
		}
	}
	// Summary metric: latency of the last series' last point.
	last := fig.Series[len(fig.Series)-1]
	b.ReportMetric(float64(last.Points[len(last.Points)-1].Mean)/1e3, "sim-µs")
}

func reportCurve(b *testing.B, fig *bench.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		peak := 0.0
		var lowLat time.Duration
		for i, pt := range s.Points {
			if pt.Throughput > peak {
				peak = pt.Throughput
			}
			if i == 0 {
				lowLat = pt.Mean
			}
		}
		b.Logf("%-28s low-load latency %7.2fµs   peak %10.0f op/s", s.Name, float64(lowLat)/1e3, peak)
	}
	last := fig.Series[len(fig.Series)-1]
	best := 0.0
	for _, pt := range last.Points {
		if pt.Throughput > best {
			best = pt.Throughput
		}
	}
	b.ReportMetric(best, "sim-ops/s")
}

func BenchmarkRPCvsRDMA(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig := bench.RPCvsRDMA(cfg)
		if i == 0 {
			reportCategorical(b, fig)
		}
	}
}

func BenchmarkFig1Microbench(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig := bench.Fig1(cfg)
		if i == 0 {
			reportCategorical(b, fig)
		}
	}
}

func BenchmarkFig2NetworkLatency(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig := bench.Fig2(cfg)
		if i == 0 {
			reportCategorical(b, fig)
		}
	}
}

func BenchmarkFig3KVReadOnly(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig := bench.Fig3(cfg)
		if i == 0 {
			reportCurve(b, fig)
		}
	}
}

func BenchmarkFig4KVMixed(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig := bench.Fig4(cfg)
		if i == 0 {
			reportCurve(b, fig)
		}
	}
}

func BenchmarkFig6ABDUniform(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig := bench.Fig6(cfg)
		if i == 0 {
			reportCurve(b, fig)
		}
	}
}

func BenchmarkFig7ABDContention(b *testing.B) {
	cfg := benchConfig()
	cfg.Measure = 500 * time.Microsecond
	for i := 0; i < b.N; i++ {
		fig := bench.Fig7(cfg)
		if i == 0 {
			reportCategorical(b, fig)
		}
	}
}

func BenchmarkFig9TXUniform(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig := bench.Fig9(cfg)
		if i == 0 {
			reportCurve(b, fig)
		}
	}
}

func BenchmarkFig10TXContention(b *testing.B) {
	cfg := benchConfig()
	cfg.Measure = 500 * time.Microsecond
	for i := 0; i < b.N; i++ {
		fig := bench.Fig10(cfg)
		if i == 0 {
			reportCategorical(b, fig)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md §5) ---

func BenchmarkAblationABDWriteback(b *testing.B) {
	cfg := benchConfig()
	cfg.Measure = 500 * time.Microsecond
	for i := 0; i < b.N; i++ {
		res := bench.AblationABDWriteback(cfg)
		if i == 0 {
			for _, s := range res.Series {
				b.Logf("%-32s mean GET %7.2fµs", s.Name, float64(s.Points[0].Mean)/1e3)
			}
			reportCategorical(b, res)
		}
	}
}

func BenchmarkAblationKVSlotCache(b *testing.B) {
	cfg := benchConfig()
	cfg.Measure = 500 * time.Microsecond
	for i := 0; i < b.N; i++ {
		res := bench.AblationKVSlotCache(cfg)
		if i == 0 {
			for _, s := range res.Series {
				b.Logf("%-32s mean PUT %7.2fµs", s.Name, float64(s.Points[0].Mean)/1e3)
			}
			reportCategorical(b, res)
		}
	}
}

func BenchmarkAblationRedirectTarget(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res := bench.AblationRedirectTarget(cfg)
		if i == 0 {
			for _, s := range res.Series {
				b.Logf("%-32s chain RTT %7.2fµs", s.Name, float64(s.Points[0].Mean)/1e3)
			}
			reportCategorical(b, res)
		}
	}
}

func BenchmarkAblationFreelistClasses(b *testing.B) {
	cfg := benchConfig()
	cfg.Measure = 500 * time.Microsecond
	for i := 0; i < b.N; i++ {
		res := bench.AblationFreelistClasses(cfg)
		if i == 0 {
			for _, s := range res.Series {
				b.Logf("%-32s %s", s.Name, s.Labels[0])
			}
			reportCategorical(b, res)
		}
	}
}

// Sanity: the deployment latency ordering of Fig. 1 holds across model
// seeds (deterministic, but guards against accidental recalibration).
func BenchmarkDeploymentOrdering(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig := bench.Fig1(cfg)
		if i > 0 {
			continue
		}
		byName := map[string][]bench.Point{}
		for _, s := range fig.Series {
			byName[s.Name] = s.Points
		}
		hw := byName[model.ProjectedHardwarePRISM.String()]
		sw := byName[model.SoftwarePRISM.String()]
		bf := byName[model.BlueFieldPRISM.String()]
		// Indirect read is point index 2.
		if !(hw[2].Mean < sw[2].Mean && sw[2].Mean < bf[2].Mean) {
			b.Fatalf("deployment ordering broken: hw=%v sw=%v bf=%v", hw[2].Mean, sw[2].Mean, bf[2].Mean)
		}
	}
}

func BenchmarkExtShards(b *testing.B) {
	cfg := benchConfig()
	cfg.Measure = 500 * time.Microsecond
	for i := 0; i < b.N; i++ {
		res := bench.ExtShards(cfg)
		if i == 0 {
			for _, l := range res.Series[0].Labels {
				b.Log(l)
			}
			reportCategorical(b, res)
		}
	}
}

func BenchmarkExtMultiKey(b *testing.B) {
	cfg := benchConfig()
	cfg.Measure = 500 * time.Microsecond
	for i := 0; i < b.N; i++ {
		res := bench.ExtMultiKey(cfg)
		if i == 0 {
			for _, l := range res.Series[0].Labels {
				b.Log(l)
			}
			reportCategorical(b, res)
		}
	}
}
