package memory

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// buildParent registers a few regions spanning multiple COW pages, fills
// them with a recognizable pattern, and snapshots.
func buildParent(t *testing.T) (*Snapshot, []*Region) {
	t.Helper()
	s := NewSpace()
	sizes := []uint64{3 * pageSize, 100, pageSize + 17}
	regs := make([]*Region, len(sizes))
	for i, n := range sizes {
		r, err := s.Register(n)
		if err != nil {
			t.Fatalf("register %d: %v", n, err)
		}
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(uint64(i+1)*31 + uint64(j))
		}
		if err := s.Write(r.Key, r.Base, b); err != nil {
			t.Fatalf("fill: %v", err)
		}
		regs[i] = r
	}
	return s.Snapshot(), regs
}

func TestForkSharesUntilWrite(t *testing.T) {
	sn, regs := buildParent(t)
	f := sn.Fork()
	r := regs[0]

	got, err := f.Peek(r.Key, r.Base+5, 16)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	want, _ := sn.Space().Peek(r.Key, r.Base+5, 16)
	if !bytes.Equal(got, want) {
		t.Fatalf("fork peek differs from parent before any write")
	}
	if fr := f.RegionAt(r.Base); !fr.Shared() {
		t.Fatalf("untouched fork region should still share parent pages")
	}

	// Write one byte in the middle page; only that page privatizes.
	if err := f.Write(r.Key, r.Base+Addr(pageSize)+7, []byte{0xAB}); err != nil {
		t.Fatalf("fork write: %v", err)
	}
	fr := f.RegionAt(r.Base)
	if !fr.Shared() {
		t.Fatalf("region with untouched pages should still be shared")
	}
	if fr.nDirty != 1 {
		t.Fatalf("nDirty = %d, want 1", fr.nDirty)
	}
	// Parent byte unchanged.
	pb, _ := sn.Space().Peek(r.Key, r.Base+Addr(pageSize)+7, 1)
	if pb[0] == 0xAB {
		t.Fatalf("fork write leaked into parent")
	}
	// Fork sees its own byte, and neighbors from the parent pattern.
	fb, _ := f.Peek(r.Key, r.Base+Addr(pageSize)+6, 3)
	if fb[0] != pb[0]-1 || fb[1] != 0xAB {
		t.Fatalf("fork view = %v, want parent neighbor then 0xAB", fb[:2])
	}
}

func TestSiblingForksIsolated(t *testing.T) {
	sn, regs := buildParent(t)
	f1, f2 := sn.Fork(), sn.Fork()
	r := regs[2]

	if err := f1.WriteU64(r.Key, r.Base+8, 0xDEAD); err != nil {
		t.Fatalf("f1 write: %v", err)
	}
	v2, err := f2.ReadU64(r.Key, r.Base+8)
	if err != nil {
		t.Fatalf("f2 read: %v", err)
	}
	vp, _ := sn.Space().ReadU64(r.Key, r.Base+8)
	if v2 != vp {
		t.Fatalf("sibling fork observed the other fork's write")
	}
	if v1, _ := f1.ReadU64(r.Key, r.Base+8); v1 != 0xDEAD {
		t.Fatalf("f1 lost its own write: %#x", v1)
	}
}

func TestPeekCacheAcrossForkWrite(t *testing.T) {
	// The last-region cache must never serve a stale shared view after the
	// fork privatizes pages: Peek, write the same range, Peek again.
	sn, regs := buildParent(t)
	f := sn.Fork()
	r := regs[0]

	before, err := f.Peek(r.Key, r.Base, 8)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	b0 := before[0]
	if err := f.Write(r.Key, r.Base, []byte{b0 + 1}); err != nil {
		t.Fatalf("write: %v", err)
	}
	after, _ := f.Peek(r.Key, r.Base, 8)
	if after[0] != b0+1 {
		t.Fatalf("Peek after write returned stale byte %#x, want %#x", after[0], b0+1)
	}
	// And the parent, looked up through its own cache, still has the old byte.
	pb, _ := sn.Space().Peek(r.Key, r.Base, 1)
	if pb[0] != b0 {
		t.Fatalf("parent byte changed: %#x -> %#x", b0, pb[0])
	}
}

func TestForkMixedRangeView(t *testing.T) {
	// A Peek spanning a private page and a shared page must return one
	// coherent slice containing both the fork's write and the parent bytes.
	sn, regs := buildParent(t)
	f := sn.Fork()
	r := regs[0]

	// Dirty page 0 only.
	if err := f.Write(r.Key, r.Base, []byte{0x11}); err != nil {
		t.Fatalf("write: %v", err)
	}
	span, err := f.Peek(r.Key, r.Base+Addr(pageSize)-4, 8) // pages 0..1
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	parent, _ := sn.Space().Peek(r.Key, r.Base+Addr(pageSize)-4, 8)
	if !bytes.Equal(span, parent) {
		t.Fatalf("mixed-range view differs from parent where untouched")
	}
}

func TestForkNAKsMatchParent(t *testing.T) {
	sn, regs := buildParent(t)
	f := sn.Fork()
	r := regs[1]

	cases := []struct {
		key  RKey
		addr Addr
		n    uint64
		want error
	}{
		{r.Key, 0, 8, ErrNullPointer},
		{r.Key, r.End() + 0x10000000, 8, ErrUnregistered},
		{r.Key + 100, r.Base, 8, ErrBadRKey},
		{r.Key, r.Base + Addr(r.Len) - 4, 8, ErrOutOfBounds},
	}
	for _, c := range cases {
		_, pErr := sn.Space().Peek(c.key, c.addr, c.n)
		_, fErr := f.Peek(c.key, c.addr, c.n)
		if !errors.Is(pErr, c.want) || !errors.Is(fErr, c.want) {
			t.Fatalf("NAK mismatch at %#x: parent %v, fork %v, want %v", c.addr, pErr, fErr, c.want)
		}
	}
	// A fork write that crosses the region boundary must not privatize or
	// alter anything.
	if err := f.Write(r.Key, r.Base+Addr(r.Len)-4, make([]byte, 8)); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("fork OOB write: %v", err)
	}
	if fr := f.RegionAt(r.Base); !fr.Shared() {
		t.Fatalf("rejected write privatized pages")
	}
}

func TestSealedParentRejectsMutation(t *testing.T) {
	sn, regs := buildParent(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("write to sealed parent did not panic")
		}
	}()
	_ = sn.Space().Write(regs[0].Key, regs[0].Base, []byte{1})
}

func TestForkCanRegisterNewRegions(t *testing.T) {
	// Servers lazily register connection temp regions after instantiation;
	// two forks doing so must get identical addresses and keys.
	sn, _ := buildParent(t)
	f1, f2 := sn.Fork(), sn.Fork()
	r1, err := f1.Register(4096)
	if err != nil {
		t.Fatalf("fork register: %v", err)
	}
	r2, err := f2.Register(4096)
	if err != nil {
		t.Fatalf("fork register: %v", err)
	}
	if r1.Base != r2.Base || r1.Key != r2.Key {
		t.Fatalf("fork registrations diverged: %#x/%d vs %#x/%d", r1.Base, r1.Key, r2.Base, r2.Key)
	}
	if err := f1.Write(r1.Key, r1.Base, []byte{9}); err != nil {
		t.Fatalf("write to fork-registered region: %v", err)
	}
}

func TestForkRandomizedMatchesShadow(t *testing.T) {
	// Property check: a fork under a random mix of reads and writes behaves
	// exactly like an independent shadow copy, and the parent never changes.
	sn, regs := buildParent(t)
	f := sn.Fork()
	r := regs[0]

	parentImg := append([]byte(nil), sn.Space().mustPeekAll(r)...)
	shadow := append([]byte(nil), parentImg...)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		off := uint64(rng.Intn(int(r.Len - 64)))
		n := uint64(1 + rng.Intn(64))
		if rng.Intn(2) == 0 {
			b := make([]byte, n)
			rng.Read(b)
			if err := f.Write(r.Key, r.Base+Addr(off), b); err != nil {
				t.Fatalf("write: %v", err)
			}
			copy(shadow[off:], b)
		} else {
			got, err := f.Peek(r.Key, r.Base+Addr(off), n)
			if err != nil {
				t.Fatalf("peek: %v", err)
			}
			if !bytes.Equal(got, shadow[off:off+n]) {
				t.Fatalf("iteration %d: fork view diverged from shadow at +%d", i, off)
			}
		}
	}
	if !bytes.Equal(sn.Space().mustPeekAll(r), parentImg) {
		t.Fatalf("parent bytes changed under fork traffic")
	}
}

// mustPeekAll returns the full contents of r via the space's checked path.
func (s *Space) mustPeekAll(r *Region) []byte {
	b, err := s.Peek(r.Key, r.Base, r.Len)
	if err != nil {
		panic(err)
	}
	return b
}
