// Package memory models a server's registered memory: the regions an
// application pins and registers with its NIC, the rkeys that protect
// them, and the address/bounds checks the NIC performs on every remote
// access. Addresses are 64-bit virtual addresses in a per-server space.
//
// The failure modes mirror real verbs: an access with the wrong rkey, to
// an unregistered address, or crossing a region boundary is rejected with
// a typed error (the simulated equivalent of a NAK).
package memory

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// RKey is a remote protection key returned by registration, required on
// every remote access to the region it protects.
type RKey uint32

// Addr is a virtual address in a server's memory space.
type Addr uint64

// Access errors, surfaced to remote clients as NAKs.
var (
	ErrBadRKey       = errors.New("memory: rkey does not match region")
	ErrUnregistered  = errors.New("memory: address not in any registered region")
	ErrOutOfBounds   = errors.New("memory: access crosses region boundary")
	ErrNullPointer   = errors.New("memory: indirect access through null pointer")
	ErrRegionTooWide = errors.New("memory: registration exceeds space")
)

// Region is a registered, pinned memory region. A region created by
// Snapshot.Fork shares its parent's bytes and privatizes pages on first
// write (see fork.go); ordinary regions own their bytes outright.
type Region struct {
	Base Addr
	Len  uint64
	Key  RKey
	data []byte
	// Copy-on-write state, nil/zero for ordinary regions: shared points at
	// the sealed parent's bytes, dirty marks pages already copied into
	// data, nDirty counts them.
	shared []byte
	dirty  []bool
	nDirty int
}

// End returns the first address past the region.
func (r *Region) End() Addr { return r.Base + Addr(r.Len) }

// Contains reports whether [addr, addr+n) lies inside the region.
func (r *Region) Contains(addr Addr, n uint64) bool {
	return addr >= r.Base && n <= r.Len && addr+Addr(n) <= r.End() && addr+Addr(n) >= addr
}

// Space is one server's memory: a set of registered regions in a single
// virtual address space. The zero value is not usable; call NewSpace.
//
// Concurrency: a Space is not goroutine-safe — even read paths mutate
// the region cache, and Peek hands out views that a concurrent Write
// could race with. Single-goroutine users (the simulator binds each
// server's space to one event domain) need no locking. Concurrent users
// (the live socket transport) must hold Guard across each whole PRISM
// primitive — not just each Space call — because one primitive spans
// several calls whose intermediate views must stay stable (CAS peeks
// the current value, copies the previous image, then writes the swapped
// one). Registration mutates the region table and takes the same guard.
type Space struct {
	regions []*Region // sorted by Base
	nextKey RKey
	brk     Addr // bump pointer for Register allocations
	sealed  bool // set by Snapshot; mutations panic afterwards
	// last caches the most recently hit region. Verb streams have strong
	// region locality (a store's hash table or value heap), so most lookups
	// skip the binary search. Forked spaces get their own Region objects,
	// so the cache never leaks across a fork boundary.
	last *Region

	// guard is the space's concurrency lock; see the type comment. Each
	// Space (including forks) owns its own lock.
	guard sync.Mutex
}

// Guard returns the space's concurrency lock. Callers that share the
// space across goroutines hold it across each whole primitive (executor
// ExecInto call), each registration, and each free-list operation on
// buffers inside the space. The simulator never takes it.
func (s *Space) Guard() *sync.Mutex { return &s.guard }

// NewSpace returns an empty memory space. Address 0 is never allocated so
// that 0 can serve as the null pointer.
func NewSpace() *Space {
	return &Space{nextKey: 1, brk: 0x1000}
}

// Register pins and registers a fresh region of n bytes, returning it with
// a newly generated rkey. Registration is a host-CPU operation (§3.2); the
// caller is responsible for charging its cost if modeled.
func (s *Space) Register(n uint64) (*Region, error) {
	s.checkMutable()
	if n == 0 || n > 1<<40 {
		return nil, ErrRegionTooWide
	}
	r := &Region{Base: s.brk, Len: n, Key: s.nextKey, data: make([]byte, n)}
	s.nextKey++
	s.brk += Addr(n)
	// keep 64-byte alignment between regions so layouts look realistic
	if rem := s.brk % 64; rem != 0 {
		s.brk += 64 - rem
	}
	s.regions = append(s.regions, r)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
	return r, nil
}

// RegisterShared registers a fresh region of n bytes under an existing
// rkey, extending that key's protection domain. PRISM applications use
// this so that indirect operations can traverse from metadata to data to
// temporary buffers under one key, as §3.1's protection rule requires.
func (s *Space) RegisterShared(key RKey, n uint64) (*Region, error) {
	if key == 0 || key >= s.nextKey {
		return nil, fmt.Errorf("memory: rkey %d was never issued", key)
	}
	r, err := s.Register(n)
	if err != nil {
		return nil, err
	}
	r.Key = key
	return r, nil
}

// find returns the region containing addr, or nil.
func (s *Space) find(addr Addr) *Region {
	if r := s.last; r != nil && addr >= r.Base && addr < r.End() {
		return r
	}
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > addr })
	if i < len(s.regions) && addr >= s.regions[i].Base {
		s.last = s.regions[i]
		return s.regions[i]
	}
	return nil
}

// Check validates an access of n bytes at addr under key, returning the
// owning region.
func (s *Space) Check(key RKey, addr Addr, n uint64) (*Region, error) {
	if addr == 0 {
		return nil, ErrNullPointer
	}
	r := s.find(addr)
	if r == nil {
		return nil, ErrUnregistered
	}
	if r.Key != key {
		return nil, fmt.Errorf("%w (addr %#x)", ErrBadRKey, addr)
	}
	if !r.Contains(addr, n) {
		return nil, fmt.Errorf("%w ([%#x,+%d) in [%#x,%#x))", ErrOutOfBounds, addr, n, r.Base, r.End())
	}
	return r, nil
}

// Read copies n bytes at addr (validated under key) into a fresh slice.
func (s *Space) Read(key RKey, addr Addr, n uint64) ([]byte, error) {
	b, err := s.Peek(key, addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// Peek returns a zero-copy view of the n bytes at addr, validated under
// key. The slice aliases the region's backing storage: callers must not
// retain it past the current operation or across a Write that could
// overlap it — use Read when the bytes outlive the access (e.g. they ride
// a response message).
func (s *Space) Peek(key RKey, addr Addr, n uint64) ([]byte, error) {
	r, err := s.Check(key, addr, n)
	if err != nil {
		return nil, err
	}
	return r.view(uint64(addr-r.Base), n), nil
}

// ReadInto copies len(dst) bytes at addr into dst, validated under key —
// Read without the allocation, for callers that reuse a buffer.
func (s *Space) ReadInto(dst []byte, key RKey, addr Addr) error {
	b, err := s.Peek(key, addr, uint64(len(dst)))
	if err != nil {
		return err
	}
	copy(dst, b)
	return nil
}

// Write copies data to addr, validated under key.
func (s *Space) Write(key RKey, addr Addr, data []byte) error {
	s.checkMutable()
	r, err := s.Check(key, addr, uint64(len(data)))
	if err != nil {
		return err
	}
	copy(r.writable(uint64(addr-r.Base), uint64(len(data))), data)
	return nil
}

// ReadU64 reads a little-endian 64-bit word.
func (s *Space) ReadU64(key RKey, addr Addr) (uint64, error) {
	b, err := s.Peek(key, addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteU64 writes a little-endian 64-bit word.
func (s *Space) WriteU64(key RKey, addr Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.Write(key, addr, b[:])
}

// BoundedPtr is the paper's <ptr, bound> struct (§3.1): a pointer plus the
// number of valid bytes at its target, stored as two little-endian 64-bit
// words.
type BoundedPtr struct {
	Ptr   Addr
	Bound uint64
}

// BoundedPtrSize is the in-memory size of a BoundedPtr.
const BoundedPtrSize = 16

// ReadBoundedPtr loads a BoundedPtr from addr.
func (s *Space) ReadBoundedPtr(key RKey, addr Addr) (BoundedPtr, error) {
	b, err := s.Peek(key, addr, BoundedPtrSize)
	if err != nil {
		return BoundedPtr{}, err
	}
	return BoundedPtr{
		Ptr:   Addr(binary.LittleEndian.Uint64(b[0:8])),
		Bound: binary.LittleEndian.Uint64(b[8:16]),
	}, nil
}

// WriteBoundedPtr stores a BoundedPtr at addr.
func (s *Space) WriteBoundedPtr(key RKey, addr Addr, p BoundedPtr) error {
	var b [BoundedPtrSize]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(p.Ptr))
	binary.LittleEndian.PutUint64(b[8:16], p.Bound)
	return s.Write(key, addr, b[:])
}

// Bytes exposes the region's backing storage for server-local (CPU-side)
// access, the way an application touches its own pinned memory. The slice
// is writable, so on a forked region it privatizes every page first; use
// Peek/Slice for bounded access when the region may be a fork.
func (r *Region) Bytes() []byte {
	if r.shared != nil {
		return r.writable(0, r.Len)
	}
	return r.data
}

// Slice returns the backing bytes for [addr, addr+n) without rkey
// validation — server-local access only. The slice is writable.
func (r *Region) Slice(addr Addr, n uint64) []byte {
	if !r.Contains(addr, n) {
		panic(fmt.Sprintf("memory: local slice [%#x,+%d) outside region", addr, n))
	}
	return r.writable(uint64(addr-r.Base), n)
}
