package memory

import "fmt"

// pageSize is the copy-on-write granularity. 64 KiB keeps the per-region
// page table small (a few hundred entries for the largest bench regions)
// while still letting a fork that touches a handful of slots avoid copying
// a multi-megabyte value heap.
const pageSize = 1 << 16

// Snapshot is an immutable image of a fully built Space. Taking a snapshot
// seals the parent: further registrations or writes to it panic, which is
// what makes handing the same backing bytes to many concurrent forks safe.
type Snapshot struct {
	s *Space
}

// Snapshot seals the space and returns an immutable handle that forks can
// be created from. The space must not itself contain copy-on-write regions
// (snapshot-of-fork is not supported; build templates on fresh spaces).
func (s *Space) Snapshot() *Snapshot {
	for _, r := range s.regions {
		if r.shared != nil {
			panic("memory: snapshot of a forked space is not supported")
		}
	}
	s.sealed = true
	return &Snapshot{s: s}
}

// Space returns the sealed parent space, for read-only inspection (tests
// that verify forks never write through to the template).
func (sn *Snapshot) Space() *Space { return sn.s }

// Fork returns a new Space with the same regions, rkeys, bounds, and
// allocation state as the snapshot. Region bytes are shared with the
// parent and copied one page at a time on first write, so a fork that
// touches little costs little. Fork itself only reads the sealed parent
// and may be called from multiple goroutines concurrently; each returned
// Space is single-threaded like any other Space.
func (sn *Snapshot) Fork() *Space {
	p := sn.s
	ns := &Space{
		regions: make([]*Region, len(p.regions)),
		nextKey: p.nextKey,
		brk:     p.brk,
	}
	for i, r := range p.regions {
		ns.regions[i] = &Region{
			Base:   r.Base,
			Len:    r.Len,
			Key:    r.Key,
			shared: r.data,
			dirty:  make([]bool, (r.Len+pageSize-1)/pageSize),
		}
	}
	return ns
}

// view returns the bytes backing [off, off+n) for reading. When the range
// lies entirely on shared (never-written) pages it aliases the parent's
// bytes; when it spans both shared and private pages the shared part is
// privatized first so the caller sees one contiguous, current slice.
func (r *Region) view(off, n uint64) []byte {
	if r.shared == nil {
		return r.data[off : off+n : off+n]
	}
	lo, hi := pageRange(off, n)
	clean := true
	for p := lo; p < hi; p++ {
		if r.dirty[p] {
			clean = false
			break
		}
	}
	if clean {
		return r.shared[off : off+n : off+n]
	}
	r.privatize(lo, hi)
	return r.data[off : off+n : off+n]
}

// writable returns mutable bytes for [off, off+n), privatizing any shared
// pages the range overlaps.
func (r *Region) writable(off, n uint64) []byte {
	if r.shared != nil {
		lo, hi := pageRange(off, n)
		r.privatize(lo, hi)
	}
	return r.data[off : off+n : off+n]
}

// privatize copies pages [lo, hi) from the parent into this fork's private
// storage. Once every page is private the shared reference is dropped.
func (r *Region) privatize(lo, hi uint64) {
	if r.data == nil {
		r.data = make([]byte, r.Len)
	}
	for p := lo; p < hi; p++ {
		if r.dirty[p] {
			continue
		}
		start := p * pageSize
		end := start + pageSize
		if end > r.Len {
			end = r.Len
		}
		copy(r.data[start:end], r.shared[start:end])
		r.dirty[p] = true
		r.nDirty++
	}
	if r.nDirty == len(r.dirty) {
		r.shared = nil
		r.dirty = nil
	}
}

// pageRange returns the half-open page index range covering [off, off+n).
// A zero-length access still touches the page holding off.
func pageRange(off, n uint64) (lo, hi uint64) {
	lo = off / pageSize
	hi = (off + n + pageSize - 1) / pageSize
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// Shared reports whether the region still shares any pages with its fork
// parent (false for ordinary regions and fully privatized forks).
func (r *Region) Shared() bool { return r.shared != nil }

// Sealed reports whether the space has been snapshotted and no longer
// accepts registrations or writes.
func (s *Space) Sealed() bool { return s.sealed }

// Regions returns the space's registered regions in registration order.
// Callers must treat the result as read-only (checksumming, inspection).
func (s *Space) Regions() []*Region {
	return append([]*Region(nil), s.regions...)
}

// RegionAt returns the registered region containing addr, or nil. This is
// CPU-side (no rkey check): applications use it to re-resolve region
// handles after instantiating a server from a forked space, where region
// objects differ from the template's but addresses are identical.
func (s *Space) RegionAt(addr Addr) *Region {
	return s.find(addr)
}

func (s *Space) checkMutable() {
	if s.sealed {
		panic(fmt.Sprintf("memory: mutation of sealed snapshot space (brk %#x)", s.brk))
	}
}
