package memory

import "testing"

func benchSpace(b *testing.B) (*Space, RKey, Addr) {
	b.Helper()
	s := NewSpace()
	r, err := s.Register(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	return s, r.Key, r.Base
}

// BenchmarkRead is the copying path: one allocation per call.
func BenchmarkRead(b *testing.B) {
	s, key, base := benchSpace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(key, base+Addr(i%4096), 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeek is the zero-copy path used when the caller does not retain
// the bytes past the current simulation event.
func BenchmarkPeek(b *testing.B) {
	s, key, base := benchSpace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Peek(key, base+Addr(i%4096), 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadInto copies into a caller-owned buffer: no allocation.
func BenchmarkReadInto(b *testing.B) {
	s, key, base := benchSpace(b)
	dst := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReadInto(dst, key, base+Addr(i%4096)); err != nil {
			b.Fatal(err)
		}
	}
}
