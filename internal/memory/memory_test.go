package memory

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegisterAndReadWrite(t *testing.T) {
	s := NewSpace()
	r, err := s.Register(1024)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base == 0 {
		t.Fatal("region based at null")
	}
	data := []byte("hello prism")
	if err := s.Write(r.Key, r.Base+16, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(r.Key, r.Base+16, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestRKeyEnforced(t *testing.T) {
	s := NewSpace()
	r1, _ := s.Register(128)
	r2, _ := s.Register(128)
	if _, err := s.Read(r2.Key, r1.Base, 8); !errors.Is(err, ErrBadRKey) {
		t.Fatalf("cross-rkey read: %v", err)
	}
	if err := s.Write(r1.Key, r2.Base, []byte{1}); !errors.Is(err, ErrBadRKey) {
		t.Fatalf("cross-rkey write: %v", err)
	}
}

func TestUnregisteredAccess(t *testing.T) {
	s := NewSpace()
	r, _ := s.Register(64)
	if _, err := s.Read(r.Key, r.End()+0x10000, 8); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("unregistered read: %v", err)
	}
}

func TestBoundaryCrossing(t *testing.T) {
	s := NewSpace()
	r, _ := s.Register(64)
	if _, err := s.Read(r.Key, r.Base+60, 8); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("boundary read: %v", err)
	}
	// Exactly to the end is fine.
	if _, err := s.Read(r.Key, r.Base+56, 8); err != nil {
		t.Fatalf("read to end: %v", err)
	}
}

func TestNullPointer(t *testing.T) {
	s := NewSpace()
	r, _ := s.Register(64)
	if _, err := s.Read(r.Key, 0, 8); !errors.Is(err, ErrNullPointer) {
		t.Fatalf("null read: %v", err)
	}
	_ = r
}

func TestZeroSizeRegistrationRejected(t *testing.T) {
	s := NewSpace()
	if _, err := s.Register(0); err == nil {
		t.Fatal("zero-size registration accepted")
	}
}

func TestU64Roundtrip(t *testing.T) {
	s := NewSpace()
	r, _ := s.Register(64)
	if err := s.WriteU64(r.Key, r.Base+8, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadU64(r.Key, r.Base+8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafe {
		t.Fatalf("got %#x", v)
	}
}

func TestBoundedPtrRoundtrip(t *testing.T) {
	s := NewSpace()
	r, _ := s.Register(64)
	in := BoundedPtr{Ptr: 0x4242, Bound: 512}
	if err := s.WriteBoundedPtr(r.Key, r.Base, in); err != nil {
		t.Fatal(err)
	}
	out, err := s.ReadBoundedPtr(r.Key, r.Base)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	s := NewSpace()
	var regions []*Region
	for i := 0; i < 50; i++ {
		r, err := s.Register(uint64(1 + i*7))
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	for i, a := range regions {
		for j, b := range regions {
			if i == j {
				continue
			}
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestLocalSlice(t *testing.T) {
	s := NewSpace()
	r, _ := s.Register(64)
	sl := r.Slice(r.Base+8, 4)
	copy(sl, "abcd")
	got, _ := s.Read(r.Key, r.Base+8, 4)
	if string(got) != "abcd" {
		t.Fatalf("local write not visible remotely: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range local slice did not panic")
		}
	}()
	r.Slice(r.Base+60, 8)
}

// Property: any write followed by a read of the same range under the same
// key returns the written bytes, regardless of offset/length.
func TestQuickWriteReadRoundtrip(t *testing.T) {
	s := NewSpace()
	r, _ := s.Register(4096)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := uint64(off) % (4096 - uint64(len(data)%4096))
		if o+uint64(len(data)) > 4096 {
			return true
		}
		addr := r.Base + Addr(o)
		if err := s.Write(r.Key, addr, data); err != nil {
			return false
		}
		got, err := s.Read(r.Key, addr, uint64(len(data)))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: reads never observe bytes outside the written range.
func TestQuickReadIsolation(t *testing.T) {
	s := NewSpace()
	r, _ := s.Register(1024)
	marker := bytes.Repeat([]byte{0xAA}, 1024)
	if err := s.Write(r.Key, r.Base, marker); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, n uint8) bool {
		o := uint64(off) % 1000
		ln := uint64(n)%16 + 1
		if o+ln > 1024 {
			return true
		}
		got, err := s.Read(r.Key, r.Base+Addr(o), ln)
		if err != nil {
			return false
		}
		for _, b := range got {
			if b != 0xAA {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterShared(t *testing.T) {
	s := NewSpace()
	r1, _ := s.Register(128)
	r2, err := s.RegisterShared(r1.Key, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Key != r1.Key {
		t.Fatal("shared registration did not share the key")
	}
	// Accesses to both regions succeed under the shared key.
	if err := s.Write(r1.Key, r2.Base, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A never-issued key is rejected.
	if _, err := s.RegisterShared(999, 64); err == nil {
		t.Fatal("RegisterShared accepted a bogus key")
	}
	if _, err := s.RegisterShared(0, 64); err == nil {
		t.Fatal("RegisterShared accepted key 0")
	}
}

func TestSharedKeyStillIsolatesOthers(t *testing.T) {
	s := NewSpace()
	r1, _ := s.Register(64)
	other, _ := s.Register(64)
	shared, _ := s.RegisterShared(r1.Key, 64)
	if _, err := s.Read(other.Key, shared.Base, 8); !errors.Is(err, ErrBadRKey) {
		t.Fatalf("foreign key read of shared region: %v", err)
	}
}
