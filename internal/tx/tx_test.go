package tx

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"prism/internal/check"
	"prism/internal/fabric"
	"prism/internal/model"
	"prism/internal/rdma"
	"prism/internal/sim"
)

func TestTimestampPacking(t *testing.T) {
	ts := MakeTimestamp(99999, 1234)
	if ts.Clock() != 99999 || ts.Client() != 1234 {
		t.Fatalf("roundtrip: %v", ts)
	}
	if !(MakeTimestamp(2, 1) > MakeTimestamp(1, 9999)) {
		t.Fatal("clock must dominate client id")
	}
}

type txEnv struct {
	e      *sim.Engine
	net    *fabric.Network
	shards []*Shard
	cli    []*rdma.Client
}

func newTxEnv(t *testing.T, nShards int, opts ShardOptions, deploy model.Deployment, machines int) *txEnv {
	t.Helper()
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(8)
	net := fabric.New(e, p)
	v := &txEnv{e: e, net: net}
	for i := 0; i < nShards; i++ {
		nic := rdma.NewServer(net, fmt.Sprintf("shard-%d", i), deploy)
		s, err := NewShard(nic, opts)
		if err != nil {
			t.Fatal(err)
		}
		v.shards = append(v.shards, s)
	}
	for i := 0; i < machines; i++ {
		v.cli = append(v.cli, rdma.NewClient(net, fmt.Sprintf("cli-%d", i)))
	}
	return v
}

func (v *txEnv) load(t *testing.T, keys int64, valueSize int) {
	t.Helper()
	for k := int64(0); k < keys; k++ {
		sh := int(k % int64(len(v.shards)))
		val := make([]byte, valueSize)
		val[0] = byte(k)
		if err := v.shards[sh].Load(k, val); err != nil {
			t.Fatal(err)
		}
	}
}

func (v *txEnv) client(id uint16, machine int) *Client {
	conns := make([]*rdma.Conn, len(v.shards))
	metas := make([]Meta, len(v.shards))
	for i, s := range v.shards {
		conns[i] = v.cli[machine].Connect(s.NIC())
		metas[i] = s.Meta()
	}
	return NewClient(id, conns, metas)
}

func TestReadCommitted(t *testing.T) {
	v := newTxEnv(t, 1, ShardOptions{NSlots: 16, MaxValue: 64, ExtraBuffers: 64}, model.SoftwarePRISM, 1)
	v.load(t, 8, 32)
	c := v.client(1, 0)
	v.e.Go("t", func(p *sim.Proc) {
		tx := c.Begin()
		val, err := tx.Read(p, 3)
		if err != nil {
			t.Error(err)
			return
		}
		if val[0] != 3 {
			t.Errorf("read %v", val[0])
		}
		if _, err := tx.Commit(p); err != nil {
			t.Errorf("read-only commit: %v", err)
		}
	})
	v.e.Run()
}

func TestReadMissingKey(t *testing.T) {
	v := newTxEnv(t, 1, ShardOptions{NSlots: 16, MaxValue: 64, ExtraBuffers: 64}, model.SoftwarePRISM, 1)
	c := v.client(1, 0)
	v.e.Go("t", func(p *sim.Proc) {
		tx := c.Begin()
		if _, err := tx.Read(p, 5); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing key: %v", err)
		}
	})
	v.e.Run()
}

func TestRMWCommitAndReadBack(t *testing.T) {
	v := newTxEnv(t, 1, ShardOptions{NSlots: 16, MaxValue: 64, ExtraBuffers: 64}, model.SoftwarePRISM, 1)
	v.load(t, 8, 32)
	c := v.client(1, 0)
	v.e.Go("t", func(p *sim.Proc) {
		tx := c.Begin()
		old, err := tx.Read(p, 2)
		if err != nil {
			t.Error(err)
			return
		}
		newVal := append([]byte(nil), old...)
		newVal[1] = 0xEE
		tx.Write(2, newVal)
		// Read-your-writes within the transaction.
		got, _ := tx.Read(p, 2)
		if !bytes.Equal(got, newVal) {
			t.Error("read-your-writes failed")
		}
		ts, err := tx.Commit(p)
		if err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		if ts == 0 {
			t.Error("zero commit timestamp")
		}
		// A following transaction reads the new value at version ts.
		tx2 := c.Begin()
		got2, err := tx2.Read(p, 2)
		if err != nil || !bytes.Equal(got2, newVal) {
			t.Errorf("after commit: %v %v", got2, err)
		}
		if tx2.reads[2] != ts {
			t.Errorf("read version %v, want %v", tx2.reads[2], ts)
		}
	})
	v.e.Run()
}

func TestMultiKeyMultiShard(t *testing.T) {
	v := newTxEnv(t, 3, ShardOptions{NSlots: 16, MaxValue: 64, ExtraBuffers: 64}, model.SoftwarePRISM, 1)
	v.load(t, 12, 32)
	c := v.client(1, 0)
	v.e.Go("t", func(p *sim.Proc) {
		tx := c.Begin()
		// Keys 0,1,2 land on shards 0,1,2.
		var vals [3][]byte
		for k := int64(0); k < 3; k++ {
			val, err := tx.Read(p, k)
			if err != nil {
				t.Error(err)
				return
			}
			vals[k] = val
		}
		for k := int64(0); k < 3; k++ {
			nv := append([]byte(nil), vals[k]...)
			nv[2] = 0x77
			tx.Write(k, nv)
		}
		if _, err := tx.Commit(p); err != nil {
			t.Errorf("multi-shard commit: %v", err)
			return
		}
		tx2 := c.Begin()
		for k := int64(0); k < 3; k++ {
			got, err := tx2.Read(p, k)
			if err != nil || got[2] != 0x77 {
				t.Errorf("key %d after commit: %v %v", k, got, err)
			}
		}
	})
	v.e.Run()
}

func TestConflictingRMWsSerializable(t *testing.T) {
	v := newTxEnv(t, 1, ShardOptions{NSlots: 4, MaxValue: 32, ExtraBuffers: 8192}, model.SoftwarePRISM, 2)
	v.load(t, 2, 16)
	var committed []check.CommittedTx
	var aborts int64
	const nClients, txPerClient = 8, 40
	for i := 0; i < nClients; i++ {
		id := uint16(i + 1)
		c := v.client(id, i%2)
		rng := rand.New(rand.NewSource(int64(id) * 131))
		v.e.Go(fmt.Sprintf("c%d", id), func(p *sim.Proc) {
			for n := 0; n < txPerClient; n++ {
				key := int64(rng.Intn(2))
				tx := c.Begin()
				_, err := tx.Read(p, key)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				rc := tx.reads[key]
				val := make([]byte, 16)
				rng.Read(val)
				tx.Write(key, val)
				ts, err := tx.Commit(p)
				if errors.Is(err, ErrAborted) {
					aborts++
					continue
				}
				if err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				committed = append(committed, check.CommittedTx{
					TS:       uint64(ts),
					Reads:    map[int64]uint64{key: uint64(rc)},
					Writes:   map[int64]uint64{key: uint64(ts)},
					ClientID: int(id),
				})
			}
		})
	}
	v.e.Run()
	if len(committed) == 0 {
		t.Fatal("nothing committed")
	}
	if aborts == 0 {
		t.Fatal("8 clients on 2 keys produced no aborts (no contention exercised)")
	}
	if err := check.CheckSerializable(committed, uint64(InitialVersion)); err != nil {
		t.Fatalf("TS-order serializability: %v", err)
	}
	if err := check.CheckConflictSerializable(committed, uint64(InitialVersion)); err != nil {
		t.Fatalf("conflict serializability: %v", err)
	}
	t.Logf("committed=%d aborted=%d", len(committed), aborts)
}

func TestAbortsDoNotBlockWriters(t *testing.T) {
	// After an abort bumps PW, later writers (with fresh timestamps) must
	// still commit.
	v := newTxEnv(t, 1, ShardOptions{NSlots: 4, MaxValue: 32, ExtraBuffers: 256}, model.SoftwarePRISM, 1)
	v.load(t, 1, 16)
	a := v.client(1, 0)
	b := v.client(2, 0)
	v.e.Go("t", func(p *sim.Proc) {
		// Interleave two RMWs on the same key synchronously: read both,
		// then commit both — the second to validate must abort.
		t1, t2 := a.Begin(), b.Begin()
		t1.Read(p, 0)
		t2.Read(p, 0)
		t1.Write(0, make([]byte, 16))
		t2.Write(0, make([]byte, 16))
		_, err1 := t1.Commit(p)
		_, err2 := t2.Commit(p)
		if (err1 == nil) == (err2 == nil) {
			t.Errorf("exactly one should commit: err1=%v err2=%v", err1, err2)
		}
		// A fresh RMW must succeed despite the bumped PW.
		t3 := b.Begin()
		if _, err := t3.Read(p, 0); err != nil {
			t.Error(err)
			return
		}
		t3.Write(0, make([]byte, 16))
		if _, err := t3.Commit(p); err != nil {
			t.Errorf("post-abort RMW: %v", err)
		}
	})
	v.e.Run()
}

// --- FaRM ---

type farmEnv struct {
	e       *sim.Engine
	servers []*FarmServer
	cli     []*rdma.Client
}

func newFarmEnv(t *testing.T, nShards int, opts ShardOptions, deploy model.Deployment, machines int) *farmEnv {
	t.Helper()
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(9)
	net := fabric.New(e, p)
	v := &farmEnv{e: e}
	for i := 0; i < nShards; i++ {
		nic := rdma.NewServer(net, fmt.Sprintf("farm-%d", i), deploy)
		s, err := NewFarmServer(nic, opts)
		if err != nil {
			t.Fatal(err)
		}
		v.servers = append(v.servers, s)
	}
	for i := 0; i < machines; i++ {
		v.cli = append(v.cli, rdma.NewClient(net, fmt.Sprintf("cli-%d", i)))
	}
	return v
}

func (v *farmEnv) load(t *testing.T, keys int64, valueSize int) {
	t.Helper()
	for k := int64(0); k < keys; k++ {
		sh := int(k % int64(len(v.servers)))
		val := make([]byte, valueSize)
		val[0] = byte(k)
		if err := v.servers[sh].Load(k, val); err != nil {
			t.Fatal(err)
		}
	}
}

func (v *farmEnv) client(id uint16, machine int) *FarmClient {
	conns := make([]*rdma.Conn, len(v.servers))
	metas := make([]FarmMeta, len(v.servers))
	for i, s := range v.servers {
		conns[i] = v.cli[machine].Connect(s.NIC())
		metas[i] = s.Meta()
	}
	return NewFarmClient(id, conns, metas)
}

func TestFarmRMWCommit(t *testing.T) {
	v := newFarmEnv(t, 1, ShardOptions{NSlots: 16, MaxValue: 64}, model.HardwareRDMA, 1)
	v.load(t, 8, 32)
	c := v.client(1, 0)
	v.e.Go("t", func(p *sim.Proc) {
		tx := c.Begin()
		old, err := tx.Read(p, 4)
		if err != nil {
			t.Error(err)
			return
		}
		nv := append([]byte(nil), old...)
		nv[1] = 0xAB
		tx.Write(4, nv)
		if _, err := tx.Commit(p); err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		tx2 := c.Begin()
		got, err := tx2.Read(p, 4)
		if err != nil || got[1] != 0xAB {
			t.Errorf("after commit: %v %v", got, err)
		}
	})
	v.e.Run()
}

func TestFarmConflictAborts(t *testing.T) {
	v := newFarmEnv(t, 1, ShardOptions{NSlots: 4, MaxValue: 32}, model.HardwareRDMA, 1)
	v.load(t, 1, 16)
	a, b := v.client(1, 0), v.client(2, 0)
	v.e.Go("t", func(p *sim.Proc) {
		t1, t2 := a.Begin(), b.Begin()
		t1.Read(p, 0)
		t2.Read(p, 0)
		t1.Write(0, make([]byte, 16))
		t2.Write(0, make([]byte, 16))
		_, err1 := t1.Commit(p)
		_, err2 := t2.Commit(p)
		if (err1 == nil) == (err2 == nil) {
			t.Errorf("exactly one should commit: %v %v", err1, err2)
		}
		// Locks must be released: a retry commits.
		t3 := a.Begin()
		if _, err := t3.Read(p, 0); err != nil {
			t.Error(err)
			return
		}
		t3.Write(0, make([]byte, 16))
		if _, err := t3.Commit(p); err != nil {
			t.Errorf("retry after conflict: %v (lock leak?)", err)
		}
	})
	v.e.Run()
}

func TestFarmConcurrentSerializable(t *testing.T) {
	v := newFarmEnv(t, 1, ShardOptions{NSlots: 4, MaxValue: 32}, model.HardwareRDMA, 2)
	v.load(t, 2, 16)
	var committed []check.CommittedTx
	var aborts int64
	const nClients, txPerClient = 6, 30
	for i := 0; i < nClients; i++ {
		id := uint16(i + 1)
		c := v.client(id, i%2)
		rng := rand.New(rand.NewSource(int64(id) * 17))
		v.e.Go(fmt.Sprintf("c%d", id), func(p *sim.Proc) {
			for n := 0; n < txPerClient; n++ {
				key := int64(rng.Intn(2))
				tx := c.Begin()
				_, err := tx.Read(p, key)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				rv := tx.reads[key].version
				val := make([]byte, 16)
				rng.Read(val)
				tx.Write(key, val)
				ts, err := tx.Commit(p)
				if errors.Is(err, ErrAborted) {
					aborts++
					continue
				}
				if err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				committed = append(committed, check.CommittedTx{
					TS:       uint64(ts),
					Reads:    map[int64]uint64{key: uint64(rv)},
					Writes:   map[int64]uint64{key: uint64(ts)},
					ClientID: int(id),
				})
			}
		})
	}
	v.e.Run()
	if len(committed) == 0 || aborts == 0 {
		t.Fatalf("committed=%d aborts=%d; want both nonzero", len(committed), aborts)
	}
	if err := check.CheckConflictSerializable(committed, uint64(InitialVersion)); err != nil {
		t.Fatalf("conflict serializability: %v", err)
	}
	t.Logf("committed=%d aborted=%d", len(committed), aborts)
}

func TestPRISMTXFasterThanFarm(t *testing.T) {
	// Fig. 9's shape: PRISM-TX commits an RMW transaction ~5 µs faster
	// than FaRM (3 round trips without CPU vs 2 READs + 2 RPCs).
	v1 := newTxEnv(t, 1, ShardOptions{NSlots: 16, MaxValue: 64, ExtraBuffers: 256}, model.SoftwarePRISM, 1)
	v1.load(t, 8, 32)
	c1 := v1.client(1, 0)
	var prismLat sim.Duration
	v1.e.Go("t", func(p *sim.Proc) {
		start := p.Now()
		const n = 20
		for i := 0; i < n; i++ {
			tx := c1.Begin()
			old, err := tx.Read(p, int64(i%8))
			if err != nil {
				t.Error(err)
				return
			}
			tx.Write(int64(i%8), old)
			if _, err := tx.Commit(p); err != nil {
				t.Error(err)
				return
			}
		}
		prismLat = p.Now().Sub(start) / 20
	})
	v1.e.Run()

	v2 := newFarmEnv(t, 1, ShardOptions{NSlots: 16, MaxValue: 64}, model.HardwareRDMA, 1)
	v2.load(t, 8, 32)
	c2 := v2.client(1, 0)
	var farmLat sim.Duration
	v2.e.Go("t", func(p *sim.Proc) {
		start := p.Now()
		const n = 20
		for i := 0; i < n; i++ {
			tx := c2.Begin()
			old, err := tx.Read(p, int64(i%8))
			if err != nil {
				t.Error(err)
				return
			}
			tx.Write(int64(i%8), old)
			if _, err := tx.Commit(p); err != nil {
				t.Error(err)
				return
			}
		}
		farmLat = p.Now().Sub(start) / 20
	})
	v2.e.Run()

	if prismLat >= farmLat {
		t.Fatalf("PRISM-TX %v not faster than FaRM %v", prismLat, farmLat)
	}
	t.Logf("RMW txn latency: PRISM-TX=%v FaRM(HW)=%v", prismLat, farmLat)
}

func TestMultiKeyMultiShardSerializable(t *testing.T) {
	// 2-key transactions spanning 2 shards under concurrency: committed
	// history passes both oracles.
	v := newTxEnv(t, 2, ShardOptions{NSlots: 8, MaxValue: 32, ExtraBuffers: 8192}, model.SoftwarePRISM, 2)
	v.load(t, 4, 16)
	var committed []check.CommittedTx
	const nClients, txPerClient = 6, 25
	for i := 0; i < nClients; i++ {
		id := uint16(i + 1)
		c := v.client(id, i%2)
		rng := rand.New(rand.NewSource(int64(id) * 19))
		v.e.Go(fmt.Sprintf("c%d", id), func(p *sim.Proc) {
			for n := 0; n < txPerClient; n++ {
				k1 := int64(rng.Intn(4))
				k2 := int64(rng.Intn(4))
				for k2 == k1 {
					k2 = int64(rng.Intn(4))
				}
				for attempts := 0; attempts < 100; attempts++ {
					tx := c.Begin()
					reads := map[int64]uint64{}
					okRead := true
					for _, k := range []int64{k1, k2} {
						if _, err := tx.Read(p, k); err != nil {
							t.Errorf("read: %v", err)
							okRead = false
							break
						}
						reads[k] = uint64(tx.ReadVersion(k))
					}
					if !okRead {
						return
					}
					tx.Write(k1, make([]byte, 16))
					tx.Write(k2, make([]byte, 16))
					ts, err := tx.Commit(p)
					if errors.Is(err, ErrAborted) {
						continue
					}
					if err != nil {
						t.Errorf("commit: %v", err)
						return
					}
					committed = append(committed, check.CommittedTx{
						TS:    uint64(ts),
						Reads: reads,
						Writes: map[int64]uint64{
							k1: uint64(ts), k2: uint64(ts),
						},
						ClientID: int(id),
					})
					break
				}
			}
		})
	}
	v.e.Run()
	if len(committed) < 50 {
		t.Fatalf("only %d committed", len(committed))
	}
	// The TS-order oracle is the authoritative check for PRISM-TX (its
	// serialization order IS timestamp order, and the oracle understands
	// abort-time C bumps as committed no-op writes). The strict conflict
	// oracle is not applicable here: multi-key aborts bump C on keys whose
	// write check passed, and a later reader legitimately observes that
	// phantom version, which the strict oracle reports as a read of a
	// version nobody installed.
	if err := check.CheckSerializable(committed, uint64(InitialVersion)); err != nil {
		t.Fatalf("TS-order: %v", err)
	}
}

func TestReadOnlyTransactionsValidate(t *testing.T) {
	// A read-only transaction must still validate: if a writer commits
	// between its reads, it aborts rather than returning a non-serializable
	// snapshot. With no interference it commits.
	v := newTxEnv(t, 1, ShardOptions{NSlots: 8, MaxValue: 32, ExtraBuffers: 64}, model.SoftwarePRISM, 1)
	v.load(t, 2, 16)
	c := v.client(1, 0)
	w := v.client(2, 0)
	v.e.Go("t", func(p *sim.Proc) {
		// Quiet case: read-only commit succeeds.
		ro := c.Begin()
		ro.Read(p, 0)
		ro.Read(p, 1)
		if _, err := ro.Commit(p); err != nil {
			t.Errorf("quiet read-only commit: %v", err)
		}
		// Interfering case: writer commits between the two reads of a
		// read-only transaction; doom detection or validation aborts it
		// unless its snapshot happens to still be consistent.
		ro2 := c.Begin()
		ro2.Read(p, 0)
		wt := w.Begin()
		if _, err := wt.Read(p, 0); err != nil {
			t.Error(err)
			return
		}
		wt.Write(0, make([]byte, 16))
		if _, err := wt.Commit(p); err != nil {
			t.Errorf("writer commit: %v", err)
			return
		}
		// Re-reading key 0 now dooms ro2 (version changed between reads).
		ro2.Read(p, 0)
		if _, err := ro2.Commit(p); !errors.Is(err, ErrAborted) {
			t.Errorf("read-only txn with inconsistent reads: %v", err)
		}
	})
	v.e.Run()
}
