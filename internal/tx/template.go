package tx

import (
	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/model"
	"prism/internal/rdma"
)

// Template is an immutable image of a loaded PRISM-TX shard.
type Template struct {
	nic  *rdma.ServerTemplate
	meta Meta
}

// Capture seals the shard's memory and returns its template.
func (s *Shard) Capture() *Template {
	return &Template{nic: s.rs.Capture(), meta: s.meta}
}

// NIC exposes the transport-level template.
func (t *Template) NIC() *rdma.ServerTemplate { return t.nic }

// NewShardFromTemplate instantiates a loaded shard on net.
func NewShardFromTemplate(net *fabric.Network, name string, deploy model.Deployment, t *Template) *Shard {
	rs := rdma.NewServerFromTemplate(net, name, deploy, t.nic)
	s := &Shard{rs: rs, meta: t.meta}
	rs.SetRPCHandler(s.handleRPC)
	return s
}

// FarmTemplate is the FaRM analogue of Template. The object-heap region
// handle is re-resolved by address in each fork.
type FarmTemplate struct {
	nic      *rdma.ServerTemplate
	meta     FarmMeta
	objsBase memory.Addr
}

// Capture seals the server's memory and returns its template.
func (s *FarmServer) Capture() *FarmTemplate {
	return &FarmTemplate{nic: s.rs.Capture(), meta: s.meta, objsBase: s.objs.Base}
}

// NIC exposes the transport-level template.
func (t *FarmTemplate) NIC() *rdma.ServerTemplate { return t.nic }

// NewFarmServerFromTemplate instantiates a loaded FaRM server on net.
func NewFarmServerFromTemplate(net *fabric.Network, name string, deploy model.Deployment, t *FarmTemplate) *FarmServer {
	rs := rdma.NewServerFromTemplate(net, name, deploy, t.nic)
	s := &FarmServer{rs: rs, meta: t.meta, objs: rs.Space().RegionAt(t.objsBase)}
	rs.SetRPCHandler(s.handleRPC)
	return s
}
