package tx

import (
	"encoding/binary"
	"fmt"
	"time"

	"prism/internal/memory"
	"prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/wire"
)

// FaRM [10] (§8.1): objects live in a hash table reachable through an
// index of pointers; clients read with one-sided READs (two per access,
// index then object, as in Pilaf) and commit with a three-phase protocol —
// LOCK (RPC), VALIDATE (one-sided version re-reads), UPDATE+UNLOCK (RPC).
//
// Object layout (fixed-size, in-place updates under the lock):
//
//	[ lock (8, LE: holder id or 0) | version (8, BE) | klen | key | value ]
//
// Index slot: [ ptr (8, LE) ].

const farmHdr = 16 // lock + version

// FaRM RPC opcodes.
const (
	rpcFarmLock byte = iota + 10
	rpcFarmUpdate
	rpcFarmUnlock
)

// FarmMeta describes one FaRM server to clients.
type FarmMeta struct {
	Key       memory.RKey
	IndexBase memory.Addr
	NSlots    int64
	MaxValue  int
}

func (m *FarmMeta) indexAddr(idx int64) memory.Addr {
	return m.IndexBase + memory.Addr(idx*8)
}

func (m *FarmMeta) objSize() uint64 {
	return uint64(farmHdr + 8 + 8 + m.MaxValue)
}

// FarmServer owns the index, the object heap, and the commit RPC handlers.
type FarmServer struct {
	rs   *rdma.Server
	meta FarmMeta
	objs *memory.Region

	// Stats
	LockFailures int64
}

// NewFarmServer provisions the index and object heap.
func NewFarmServer(rs *rdma.Server, opts ShardOptions) (*FarmServer, error) {
	space := rs.Space()
	idx, err := space.Register(uint64(opts.NSlots) * 8)
	if err != nil {
		return nil, fmt.Errorf("tx: farm index: %w", err)
	}
	meta := FarmMeta{Key: idx.Key, IndexBase: idx.Base, NSlots: opts.NSlots, MaxValue: opts.MaxValue}
	objs, err := space.RegisterShared(idx.Key, meta.objSize()*uint64(opts.NSlots))
	if err != nil {
		return nil, fmt.Errorf("tx: farm heap: %w", err)
	}
	s := &FarmServer{rs: rs, meta: meta, objs: objs}
	rs.SetRPCHandler(s.handleRPC)
	return s, nil
}

// Meta returns the control-plane description.
func (s *FarmServer) Meta() FarmMeta { return s.meta }

// NIC returns the transport server.
func (s *FarmServer) NIC() *rdma.Server { return s.rs }

// Load installs key=value at InitialVersion.
func (s *FarmServer) Load(key int64, value []byte) error {
	if len(value) > s.meta.MaxValue {
		return fmt.Errorf("tx: value too large")
	}
	idx := ((key % s.meta.NSlots) + s.meta.NSlots) % s.meta.NSlots
	objAddr := s.objs.Base + memory.Addr(uint64(idx)*s.meta.objSize())
	img := make([]byte, s.meta.objSize())
	prism.PutBE64(img, 8, uint64(InitialVersion))
	binary.LittleEndian.PutUint64(img[farmHdr:], 8)
	binary.BigEndian.PutUint64(img[farmHdr+8:], uint64(key))
	copy(img[farmHdr+16:], value)
	space := s.rs.Space()
	if err := space.Write(s.meta.Key, objAddr, img); err != nil {
		return err
	}
	return space.WriteU64(s.meta.Key, s.meta.indexAddr(idx), uint64(objAddr))
}

// objAddrFor resolves a key's object (server CPU side).
func (s *FarmServer) objAddrFor(key int64) (memory.Addr, error) {
	idx := ((key % s.meta.NSlots) + s.meta.NSlots) % s.meta.NSlots
	ptr, err := s.rs.Space().ReadU64(s.meta.Key, s.meta.indexAddr(idx))
	if err != nil {
		return 0, err
	}
	if ptr == 0 {
		return 0, ErrNotFound
	}
	return memory.Addr(ptr), nil
}

// handleRPC serves the FaRM commit protocol's CPU phases.
//
// LOCK payload:   [op][holder(8)] then per key [key(8) version(8)]
// UPDATE payload: [op][holder(8)] then per key [key(8) version(8) vlen(4) value]
// UNLOCK payload: [op][holder(8)] then per key [key(8)]
func (s *FarmServer) handleRPC(payload []byte) ([]byte, time.Duration) {
	if len(payload) < 9 {
		return []byte{1}, 0
	}
	op := payload[0]
	holder := binary.LittleEndian.Uint64(payload[1:9])
	rest := payload[9:]
	space := s.rs.Space()
	switch op {
	case rpcFarmLock:
		// Lock every key or none: on conflict, roll back acquired locks.
		var acquired []memory.Addr
		n := 0
		for len(rest) >= 16 {
			key := int64(binary.BigEndian.Uint64(rest[:8]))
			version := binary.BigEndian.Uint64(rest[8:16])
			rest = rest[16:]
			n++
			addr, err := s.objAddrFor(key)
			if err != nil {
				break
			}
			raw, _ := space.Peek(s.meta.Key, addr, farmHdr)
			lock := binary.LittleEndian.Uint64(raw[:8])
			ver := prism.BE64(raw, 8)
			if lock != 0 || ver != version {
				s.LockFailures++
				for _, a := range acquired {
					space.WriteU64(s.meta.Key, a, 0)
				}
				return []byte{1}, time.Duration(n) * 400 * time.Nanosecond
			}
			space.WriteU64(s.meta.Key, addr, holder)
			acquired = append(acquired, addr)
		}
		return []byte{0}, time.Duration(n) * 400 * time.Nanosecond
	case rpcFarmUpdate:
		n := 0
		for len(rest) >= 20 {
			key := int64(binary.BigEndian.Uint64(rest[:8]))
			version := binary.BigEndian.Uint64(rest[8:16])
			vlen := binary.LittleEndian.Uint32(rest[16:20])
			if len(rest) < 20+int(vlen) {
				return []byte{1}, 0
			}
			value := rest[20 : 20+vlen]
			rest = rest[20+vlen:]
			n++
			addr, err := s.objAddrFor(key)
			if err != nil {
				return []byte{1}, 0
			}
			raw, _ := space.Peek(s.meta.Key, addr, farmHdr)
			if binary.LittleEndian.Uint64(raw[:8]) != holder {
				return []byte{1}, 0 // not our lock: protocol bug
			}
			// Write value, bump version, release the lock.
			img := make([]byte, s.meta.objSize())
			prism.PutBE64(img, 8, version)
			binary.LittleEndian.PutUint64(img[farmHdr:], 8)
			binary.BigEndian.PutUint64(img[farmHdr+8:], uint64(key))
			copy(img[farmHdr+16:], value)
			if err := space.Write(s.meta.Key, addr, img); err != nil {
				return []byte{1}, 0
			}
		}
		return []byte{0}, time.Duration(n) * 800 * time.Nanosecond
	case rpcFarmUnlock:
		n := 0
		for len(rest) >= 8 {
			key := int64(binary.BigEndian.Uint64(rest[:8]))
			rest = rest[8:]
			n++
			addr, err := s.objAddrFor(key)
			if err != nil {
				continue
			}
			raw, _ := space.Peek(s.meta.Key, addr, 8)
			if binary.LittleEndian.Uint64(raw) == holder {
				space.WriteU64(s.meta.Key, addr, 0)
			}
		}
		return []byte{0}, time.Duration(n) * 100 * time.Nanosecond
	default:
		return []byte{1}, 0
	}
}

// FarmClient coordinates FaRM transactions.
type FarmClient struct {
	id    uint16
	conns []*rdma.Conn
	metas []FarmMeta
	clock uint64

	// Stats
	Commits int64
	Aborts  int64
}

// NewFarmClient builds a client over the given servers.
func NewFarmClient(id uint16, conns []*rdma.Conn, metas []FarmMeta) *FarmClient {
	if len(conns) != len(metas) || len(conns) == 0 {
		panic("tx: farm connections and metadata must match")
	}
	if id == 0 {
		panic("tx: client id 0 reserved")
	}
	return &FarmClient{id: id, conns: conns, metas: metas}
}

func (c *FarmClient) shardOf(key int64) int {
	return int(((key % int64(len(c.conns))) + int64(len(c.conns))) % int64(len(c.conns)))
}

// FarmTx is one FaRM transaction.
type FarmTx struct {
	c      *FarmClient
	reads  map[int64]farmRead
	writes map[int64][]byte
	order  []int64
	doomed bool
}

type farmRead struct {
	version Timestamp
	addr    memory.Addr
	shard   int
}

// Begin starts a transaction.
func (c *FarmClient) Begin() *FarmTx {
	return &FarmTx{c: c, reads: make(map[int64]farmRead), writes: make(map[int64][]byte)}
}

// Read fetches a key with FaRM's two one-sided READs (index, object).
func (t *FarmTx) Read(p *sim.Proc, key int64) ([]byte, error) {
	if v, ok := t.writes[key]; ok {
		return v, nil
	}
	c := t.c
	sh := c.shardOf(key)
	m := &c.metas[sh]
	idx := ((key % m.NSlots) + m.NSlots) % m.NSlots
	res := c.conns[sh].Issue(p, prism.Read(m.Key, m.indexAddr(idx), 8))
	if res[0].Status != wire.StatusOK {
		return nil, fmt.Errorf("tx: farm index read %v", res[0].Status)
	}
	ptr := memory.Addr(binary.LittleEndian.Uint64(res[0].Data))
	if ptr == 0 {
		return nil, ErrNotFound
	}
	res = c.conns[sh].Issue(p, prism.Read(m.Key, ptr, m.objSize()))
	if res[0].Status != wire.StatusOK {
		return nil, fmt.Errorf("tx: farm object read %v", res[0].Status)
	}
	obj := res[0].Data
	version := Timestamp(prism.BE64(obj, 8))
	k := int64(binary.BigEndian.Uint64(obj[farmHdr+8:]))
	if k != key {
		return nil, fmt.Errorf("tx: farm slot collision (key %d vs %d)", k, key)
	}
	if prev, ok := t.reads[key]; ok && prev.version != version {
		t.doomed = true
	}
	t.reads[key] = farmRead{version: version, addr: ptr, shard: sh}
	return append([]byte(nil), obj[farmHdr+16:]...), nil
}

// Write buffers a write. FaRM requires the object to have been read first
// (to know its version for locking); Read-before-Write is the natural
// pattern for YCSB-T RMW transactions.
func (t *FarmTx) Write(key int64, value []byte) {
	if _, seen := t.writes[key]; !seen {
		t.order = append(t.order, key)
	}
	t.writes[key] = append([]byte(nil), value...)
}

// Commit runs FaRM's three phases. Returns the commit version (a fresh
// timestamp) or ErrAborted.
func (t *FarmTx) Commit(p *sim.Proc) (Timestamp, error) {
	c := t.c
	c.clock++
	ts := MakeTimestamp(c.clock, c.id)
	if t.doomed {
		c.Aborts++
		return 0, ErrAborted
	}
	for _, key := range t.order {
		if _, ok := t.reads[key]; !ok {
			return 0, fmt.Errorf("tx: farm write of unread key %d", key)
		}
	}

	// --- Phase 1: LOCK write-set objects, grouped per shard.
	lockPayloads := make(map[int][]byte)
	for _, key := range t.order {
		r := t.reads[key]
		pl, ok := lockPayloads[r.shard]
		if !ok {
			pl = make([]byte, 9)
			pl[0] = rpcFarmLock
			binary.LittleEndian.PutUint64(pl[1:9], uint64(c.id))
		}
		var rec [16]byte
		binary.BigEndian.PutUint64(rec[:8], uint64(key))
		binary.BigEndian.PutUint64(rec[8:], uint64(r.version))
		lockPayloads[r.shard] = append(pl, rec[:]...)
	}
	if len(lockPayloads) > 0 {
		var futs []*sim.Future[[]wire.Result]
		var shards []int
		for sh, pl := range lockPayloads {
			futs = append(futs, c.conns[sh].IssueAsync([]wire.Op{prism.Send(pl)}))
			shards = append(shards, sh)
		}
		res := sim.WaitAll(p, futs)
		failed := false
		var lockedShards []int
		for i, r := range res {
			if r[0].Status == wire.StatusOK && len(r[0].Data) == 1 && r[0].Data[0] == 0 {
				lockedShards = append(lockedShards, shards[i])
			} else {
				failed = true
			}
		}
		if failed {
			t.unlock(p, lockedShards)
			c.Aborts++
			return 0, ErrAborted
		}
	}

	// --- Phase 2: VALIDATE the read set with one-sided READs (§8.1:
	// "they reread all objects in the read set"). Keys we hold locks on
	// revalidate trivially (our own lock, unchanged version) but still pay
	// the read, as in FaRM.
	type valRead struct {
		key int64
		r   farmRead
	}
	var vals []valRead
	for key, r := range t.reads {
		vals = append(vals, valRead{key, r})
	}
	if len(vals) > 0 {
		futs := make([]*sim.Future[[]wire.Result], len(vals))
		for i, v := range vals {
			m := &c.metas[v.r.shard]
			futs[i] = c.conns[v.r.shard].IssueAsync([]wire.Op{
				prism.Read(m.Key, v.r.addr, farmHdr),
			})
		}
		res := sim.WaitAll(p, futs)
		for i, r := range res {
			if r[0].Status != wire.StatusOK {
				t.unlockAll(p)
				c.Aborts++
				return 0, ErrAborted
			}
			lock := binary.LittleEndian.Uint64(r[0].Data[:8])
			ver := Timestamp(prism.BE64(r[0].Data, 8))
			// A lock we hold ourselves (write-set key) validates fine.
			if (lock != 0 && lock != uint64(c.id)) || ver != vals[i].r.version {
				t.unlockAll(p)
				c.Aborts++
				return 0, ErrAborted
			}
		}
	}

	// --- Phase 3: UPDATE + UNLOCK.
	updPayloads := make(map[int][]byte)
	for _, key := range t.order {
		value := t.writes[key]
		sh := c.shardOf(key)
		pl, ok := updPayloads[sh]
		if !ok {
			pl = make([]byte, 9)
			pl[0] = rpcFarmUpdate
			binary.LittleEndian.PutUint64(pl[1:9], uint64(c.id))
		}
		rec := make([]byte, 20+len(value))
		binary.BigEndian.PutUint64(rec[:8], uint64(key))
		binary.BigEndian.PutUint64(rec[8:16], uint64(ts))
		binary.LittleEndian.PutUint32(rec[16:20], uint32(len(value)))
		copy(rec[20:], value)
		updPayloads[sh] = append(pl, rec...)
	}
	if len(updPayloads) > 0 {
		var futs []*sim.Future[[]wire.Result]
		for sh, pl := range updPayloads {
			futs = append(futs, c.conns[sh].IssueAsync([]wire.Op{prism.Send(pl)}))
		}
		res := sim.WaitAll(p, futs)
		for _, r := range res {
			if r[0].Status != wire.StatusOK || len(r[0].Data) != 1 || r[0].Data[0] != 0 {
				return 0, fmt.Errorf("tx: farm update failed")
			}
		}
	}
	c.Commits++
	return ts, nil
}

// unlock releases write-set locks at the given shards.
func (t *FarmTx) unlock(p *sim.Proc, shards []int) {
	c := t.c
	payloads := make(map[int][]byte)
	for _, key := range t.order {
		sh := c.shardOf(key)
		found := false
		for _, s := range shards {
			if s == sh {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		pl, ok := payloads[sh]
		if !ok {
			pl = make([]byte, 9)
			pl[0] = rpcFarmUnlock
			binary.LittleEndian.PutUint64(pl[1:9], uint64(c.id))
		}
		var rec [8]byte
		binary.BigEndian.PutUint64(rec[:], uint64(key))
		payloads[sh] = append(pl, rec[:]...)
	}
	var futs []*sim.Future[[]wire.Result]
	for sh, pl := range payloads {
		futs = append(futs, c.conns[sh].IssueAsync([]wire.Op{prism.Send(pl)}))
	}
	if len(futs) > 0 {
		sim.WaitAll(p, futs)
	}
}

func (t *FarmTx) unlockAll(p *sim.Proc) {
	shardSet := make(map[int]bool)
	for _, key := range t.order {
		shardSet[t.c.shardOf(key)] = true
	}
	shards := make([]int, 0, len(shardSet))
	for sh := range shardSet {
		shards = append(shards, sh)
	}
	t.unlock(p, shards)
}
