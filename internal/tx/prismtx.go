package tx

import (
	"encoding/binary"
	"fmt"
	"time"

	"prism/internal/alloc"
	"prism/internal/memory"
	"prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/wire"
)

const rpcFree byte = 1

// Cached CAS masks for the validation and commit layouts. Read-only after
// init, shared by every client and shard domain.
var (
	pwprFullMask = prism.FullMask(16)        // (PW,PR) pair
	prOnlyMask   = prism.FieldMask(16, 8, 8) // swap PR
	pwOnlyMask   = prism.FieldMask(16, 0, 8) // compare/swap PW
	cOnlyMask    = prism.FieldMask(24, 0, 8) // compare (or swap) C
	cEntryMask   = prism.FullMask(24)        // swap [C|addr|bound]
)

// ShardOptions sizes a PRISM-TX shard.
type ShardOptions struct {
	NSlots       int64
	MaxValue     int
	ExtraBuffers int
}

// Shard is one PRISM-TX storage server. All transaction processing —
// execution reads, validation, commit — runs as one-sided PRISM
// operations; the host CPU only recycles buffers.
type Shard struct {
	rs   *rdma.Server
	meta Meta
}

// NewShard provisions the metadata array and version-buffer free list.
func NewShard(rs *rdma.Server, opts ShardOptions) (*Shard, error) {
	space := rs.Space()
	metaRegion, err := space.Register(uint64(opts.NSlots) * metaSize)
	if err != nil {
		return nil, fmt.Errorf("tx: metadata region: %w", err)
	}
	meta := Meta{
		Key:      metaRegion.Key,
		MetaBase: metaRegion.Base,
		NSlots:   opts.NSlots,
		MaxValue: opts.MaxValue,
		FreeList: 1,
	}
	bs := bufSize(opts.MaxValue)
	total := uint64(opts.NSlots) + uint64(opts.ExtraBuffers)
	bufRegion, err := space.RegisterShared(metaRegion.Key, bs*total)
	if err != nil {
		return nil, fmt.Errorf("tx: buffer region: %w", err)
	}
	fl := alloc.NewFreeList(meta.FreeList, bs, metaRegion.Key)
	for i := uint64(0); i < total; i++ {
		fl.Post(bufRegion.Base + memory.Addr(i*bs))
	}
	rs.AddFreeList(fl)
	rs.SetConnTempKey(metaRegion.Key)
	s := &Shard{rs: rs, meta: meta}
	rs.SetRPCHandler(s.handleRPC)
	return s, nil
}

// Meta returns the control-plane description.
func (s *Shard) Meta() Meta { return s.meta }

// NIC returns the transport server.
func (s *Shard) NIC() *rdma.Server { return s.rs }

func (s *Shard) handleRPC(payload []byte) ([]byte, time.Duration) {
	if len(payload) == 0 || payload[0] != rpcFree {
		return nil, 0
	}
	rest := payload[1:]
	n := 0
	for len(rest) >= 8 {
		addr := memory.Addr(binary.LittleEndian.Uint64(rest))
		s.rs.RecycleBuffer(s.meta.FreeList, addr)
		rest = rest[8:]
		n++
	}
	return []byte{0}, time.Duration(n) * 100 * time.Nanosecond
}

// Load installs key=value at InitialVersion (bulk loading). Keys map to
// slots collisionlessly (slot = key mod NSlots); the YCSB-T keyspace is
// preloaded, as in the paper's evaluation.
func (s *Shard) Load(key int64, value []byte) error {
	if len(value) > s.meta.MaxValue {
		return fmt.Errorf("tx: value too large")
	}
	fl := s.rs.FreeList(s.meta.FreeList)
	buf, err := fl.Pop()
	if err != nil {
		return fmt.Errorf("tx: load out of buffers: %w", err)
	}
	space := s.rs.Space()
	img := encodeVersion(InitialVersion, key, value)
	if err := space.Write(s.meta.Key, buf, img); err != nil {
		return err
	}
	idx := ((key % s.meta.NSlots) + s.meta.NSlots) % s.meta.NSlots
	entry := make([]byte, metaSize)
	prism.PutBE64(entry, offPW, uint64(InitialVersion))
	prism.PutBE64(entry, offPR, uint64(InitialVersion))
	prism.PutBE64(entry, offC, uint64(InitialVersion))
	prism.PutLE64(entry, offAddr, uint64(buf))
	prism.PutLE64(entry, offBound, uint64(len(img)))
	return space.Write(s.meta.Key, s.meta.slotAddr(idx), entry)
}

// Client coordinates PRISM-TX transactions over a set of shards (one
// connection each). Keys map to shards by modulo.
type Client struct {
	id    uint16
	conns []*rdma.Conn
	metas []Meta
	clock uint64
	frees [][]byte
	// ctrl, when set, carries reclamation RPCs on dedicated control
	// connections (one per shard).
	ctrl []*rdma.Conn

	// FreeBatch is the reclamation batch size per shard.
	FreeBatch int

	// Stats
	Commits int64
	Aborts  int64

	// Reusable per-client scratch for Commit. Every phase ends in WaitAll
	// (nothing of this client is in flight when a buffer is rewritten) and
	// stale duplicates on a lossy network are dropped by their epoch, so
	// the storage can be recycled across transactions. dataArena carves the
	// CAS operand and version images of one commit; concurrent chains of a
	// single wave each carve disjoint blocks.
	valBuf    []valKey
	futBuf    []*sim.Future[[]wire.Result]
	shardBuf  []int
	dataArena []byte
}

// carve returns an n-byte zeroed block from the client's commit arena.
// Growth relocates the arena, but previously carved blocks stay valid on
// the old backing array (they are never written through the arena again).
func (c *Client) carve(n int) []byte {
	off := len(c.dataArena)
	if cap(c.dataArena) < off+n {
		nb := make([]byte, off, 2*(off+n)+64)
		copy(nb, c.dataArena)
		c.dataArena = nb
	}
	c.dataArena = c.dataArena[:off+n]
	b := c.dataArena[off : off+n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// NewClient builds a transaction client over the given shards.
func NewClient(id uint16, conns []*rdma.Conn, metas []Meta) *Client {
	if len(conns) != len(metas) || len(conns) == 0 {
		panic("tx: shard connections and metadata must match")
	}
	if id == 0 {
		panic("tx: client id 0 is reserved for preloaded versions")
	}
	return &Client{
		id:        id,
		conns:     conns,
		metas:     metas,
		frees:     make([][]byte, len(conns)),
		FreeBatch: 16,
	}
}

func (c *Client) shardOf(key int64) int {
	return int(((key % int64(len(c.conns))) + int64(len(c.conns))) % int64(len(c.conns)))
}

func (c *Client) slotOf(key int64, shard int) memory.Addr {
	m := &c.metas[shard]
	idx := ((key % m.NSlots) + m.NSlots) % m.NSlots
	return m.slotAddr(idx)
}

// Tx is one transaction: buffered reads and writes awaiting commit.
type Tx struct {
	c      *Client
	reads  map[int64]Timestamp // key -> RC observed
	writes map[int64][]byte
	order  []int64 // write keys in first-write order
	doomed bool    // repeated reads disagreed; must abort
}

// valKey is one key undergoing prepare-phase validation.
type valKey struct {
	key     int64
	isWrite bool
	rc      Timestamp
	hasRead bool
}

// Begin starts a transaction.
func (c *Client) Begin() *Tx {
	return &Tx{c: c, reads: make(map[int64]Timestamp), writes: make(map[int64][]byte)}
}

// Read returns key's committed value as of execution time (§8.2 execution
// phase): one round trip chaining a direct READ of the metadata C with an
// indirect bounded READ of the version buffer. RC is the larger of the
// metadata C and the buffer's embedded timestamp:
//
//   - normally they agree (the commit CAS installs both atomically);
//   - after an aborted writer bumped C (§8.2's abort rule), the metadata C
//     exceeds the buffer timestamp; the bump acts as a committed no-op
//     write, so the current value is correct *at the bumped version* —
//     taking the max is what lets readers revalidate against the raised
//     PW instead of aborting forever;
//   - if a commit lands between the two reads of the chain, the buffer
//     timestamp exceeds the C we read, and the buffer's (ts, value) pair
//     is self-consistent.
//
// Reads see the transaction's own buffered writes first.
func (t *Tx) Read(p *sim.Proc, key int64) ([]byte, error) {
	if v, ok := t.writes[key]; ok {
		return v, nil
	}
	c := t.c
	sh := c.shardOf(key)
	m := &c.metas[sh]
	slot := c.slotOf(key, sh)
	ops := c.conns[sh].Ops(2)
	ops[0] = prism.Read(m.Key, slot+offC, 8)
	ops[1] = prism.ReadBounded(m.Key, slot+offAddr, bufSize(m.MaxValue))
	res := c.conns[sh].Issue(p, ops...)
	if res[1].Status == wire.StatusNAKAccess {
		return nil, ErrNotFound
	}
	if res[0].Status != wire.StatusOK || res[1].Status != wire.StatusOK {
		return nil, fmt.Errorf("tx: read statuses %v %v", res[0].Status, res[1].Status)
	}
	metaC := Timestamp(prism.BE64(res[0].Data, 0))
	bufTS, k, value, err := decodeVersion(res[1].Data)
	if err != nil {
		return nil, err
	}
	if k != key {
		return nil, fmt.Errorf("tx: slot collision: read key %d, want %d (size the table collisionlessly)", k, key)
	}
	rc := bufTS
	if metaC > rc {
		rc = metaC
	}
	if prev, ok := t.reads[key]; ok && prev != rc {
		// The key changed between two of our own reads: the transaction
		// has returned inconsistent values to the application and must
		// abort at commit.
		t.doomed = true
	}
	t.reads[key] = rc
	return value, nil
}

// ReadVersion returns the version this transaction observed for key (zero
// if the key was not read) — used by correctness oracles in tests.
func (t *Tx) ReadVersion(key int64) Timestamp { return t.reads[key] }

// Write buffers a write (§8.2: writes are local until commit).
func (t *Tx) Write(key int64, value []byte) {
	if _, seen := t.writes[key]; !seen {
		t.order = append(t.order, key)
	}
	t.writes[key] = append([]byte(nil), value...)
}

// chooseTS picks the commit timestamp: greater than every RC read and the
// client's logical clock (§8.2 prepare phase, as in Meerkat).
func (t *Tx) chooseTS() Timestamp {
	clock := t.c.clock + 1
	for _, rc := range t.reads {
		if rc.Clock() >= clock {
			clock = rc.Clock() + 1
		}
	}
	t.c.clock = clock
	return MakeTimestamp(clock, t.c.id)
}

// Commit runs the prepare (validation) and commit phases. On validation
// failure it returns ErrAborted; the transaction's effects are discarded
// (except conservative PW/PR advances, which are safe).
//
// Returns the commit timestamp on success.
func (t *Tx) Commit(p *sim.Proc) (Timestamp, error) {
	c := t.c
	ts := t.chooseTS()
	if t.doomed {
		c.Aborts++
		return 0, ErrAborted
	}

	// --- Prepare phase: one chain per key, all shards in parallel.
	c.dataArena = c.dataArena[:0]
	keys := c.valBuf[:0]
	for _, k := range t.order {
		rc, hasRead := t.reads[k]
		keys = append(keys, valKey{key: k, isWrite: true, rc: rc, hasRead: hasRead})
	}
	for k, rc := range t.reads {
		if _, isWrite := t.writes[k]; !isWrite {
			keys = append(keys, valKey{key: k, rc: rc, hasRead: true})
		}
	}
	c.valBuf = keys

	futs := c.futBuf[:0]
	for _, vk := range keys {
		sh := c.shardOf(vk.key)
		slot := c.slotOf(vk.key, sh)
		m := &c.metas[sh]
		nOps := 0
		if vk.hasRead {
			nOps++
		}
		if vk.isWrite {
			nOps++
		}
		ops := c.conns[sh].Ops(nOps)
		oi := 0
		if vk.hasRead {
			// Read validation (§8.2): single CAS checking RC|TS > PW|PR
			// over the 16-byte (PW,PR) pair, swapping PR only.
			data := c.carve(16)
			prism.PutBE64(data, 0, uint64(vk.rc))
			prism.PutBE64(data, 8, uint64(ts))
			ops[oi] = prism.CAS(m.Key, slot+offPW, wire.CASGt, data,
				pwprFullMask, prOnlyMask)
			oi++
		}
		if vk.isWrite {
			// Write validation: CAS TS > PW swapping PW; the returned
			// pair carries PR for the client-side TS > PR check. For RMW
			// keys the op is CONDITIONAL on the read validation (§8.2:
			// "if all read validation checks succeed, the client moves on
			// to validate the writes") — skipping it when the read check
			// failed keeps PW from being raised by a transaction that is
			// doomed anyway, which is what keeps contended keys live.
			data := c.carve(16)
			prism.PutBE64(data, 0, uint64(ts))
			op := prism.CAS(m.Key, slot+offPW, wire.CASGt, data,
				pwOnlyMask, pwOnlyMask)
			if vk.hasRead {
				op = prism.Conditional(op)
			}
			ops[oi] = op
		}
		futs = append(futs, c.conns[sh].IssueAsync(ops))
	}
	c.futBuf = futs[:0]
	results := sim.WaitAll(p, futs)

	ok := true
	for i, vk := range keys {
		res := results[i]
		ri := 0
		if vk.hasRead {
			switch res[ri].Status {
			case wire.StatusOK:
				// validated and PR advanced
			case wire.StatusCASFailed:
				// Distinguish (§8.2): if the stored PW still equals RC the
				// read is valid (PR was already >= TS); otherwise a
				// concurrent writer prepared and we must abort. For an
				// RMW key even the benign case aborts: PR >= TS means a
				// later reader prepared, so our write cannot commit.
				pw := Timestamp(prism.BE64(res[ri].Data, 0))
				if pw != vk.rc || vk.isWrite {
					ok = false
				}
			default:
				return 0, fmt.Errorf("tx: read validation status %v", res[ri].Status)
			}
			ri++
		}
		if vk.isWrite {
			switch res[ri].Status {
			case wire.StatusOK:
				// TS > PW held and PW advanced; now check TS against PR
				// using the returned old pair. Equality is allowed:
				// timestamps are globally unique, so PR == TS can only be
				// this transaction's own read validation on an RMW key.
				// (The paper states TS > PR; with the RMW key present in
				// both sets, the self-read exemption is required for any
				// read-modify-write to commit.)
				pr := Timestamp(prism.BE64(res[ri].Data, 8))
				if ts < pr {
					ok = false // a prepared reader would miss our write
				}
			case wire.StatusCASFailed:
				ok = false // a more recent writer prepared first
			case wire.StatusNotExecuted:
				ok = false // read validation failed; write check skipped
			default:
				return 0, fmt.Errorf("tx: write validation status %v", res[ri].Status)
			}
		}
	}

	if !ok {
		t.abort(p, ts, keys, results)
		c.Aborts++
		return 0, ErrAborted
	}

	// --- Commit phase: install writes with the ALLOCATE/WRITE/CAS chain.
	// Concurrent chains on one connection each use a distinct slot of the
	// connection's temporary buffer (the redirect target); when a
	// transaction writes more keys on one shard than there are slots, the
	// installs proceed in waves.
	if len(t.writes) > 0 {
		const slotsPerConn = rdma.ConnTempSize / rdma.TempSlotSize
		remaining := t.order
		for len(remaining) > 0 {
			wfuts := c.futBuf[:0]
			shards := c.shardBuf[:0]
			slotInUse := make(map[int]int) // shard -> temp slots taken this wave
			var deferred []int64
			for _, key := range remaining {
				sh := c.shardOf(key)
				slotIdx := slotInUse[sh]
				if slotIdx >= slotsPerConn {
					deferred = append(deferred, key)
					continue
				}
				slotInUse[sh] = slotIdx + 1
				value := t.writes[key]
				m := &c.metas[sh]
				conn := c.conns[sh]
				slot := c.slotOf(key, sh)
				img := c.carve(int(bufSize(len(value))))
				fillVersion(img, ts, key, value)

				tmp := conn.TempAddr + memory.Addr(slotIdx*rdma.TempSlotSize)
				pre := c.carve(24) // [C | addr(redirected) | bound]
				prism.PutBE64(pre, 0, uint64(ts))
				prism.PutLE64(pre, 16, uint64(len(img)))
				ptrBuf := c.carve(8)
				prism.PutLE64(ptrBuf, 0, uint64(tmp))
				ops := conn.Ops(3)
				ops[0] = prism.Write(conn.TempKey, tmp, pre)
				ops[1] = prism.Conditional(prism.RedirectTo(prism.Allocate(m.FreeList, img), conn.TempKey, tmp+8))
				casOp := prism.CAS(m.Key, slot+offC, wire.CASGt, ptrBuf, cOnlyMask, cEntryMask)
				casOp.Flags |= wire.FlagDataIndirect
				ops[2] = prism.Conditional(casOp)
				wfuts = append(wfuts, conn.IssueAsync(ops))
				shards = append(shards, sh)
			}
			c.futBuf = wfuts[:0]
			c.shardBuf = shards[:0]
			wres := sim.WaitAll(p, wfuts)
			for i, res := range wres {
				switch res[2].Status {
				case wire.StatusOK:
					old := prism.LE64(res[2].Data, 8)
					if old != 0 {
						c.retire(shards[i], memory.Addr(old))
					}
				case wire.StatusCASFailed:
					// A transaction with a later timestamp already installed
					// a newer version of this key: our write is subsumed in
					// the serial order (Thomas write rule). Retire our
					// orphaned buffer.
					if res[1].Status == wire.StatusOK {
						c.retire(shards[i], res[1].Addr)
					}
				default:
					return 0, fmt.Errorf("tx: commit install status %v", res[2].Status)
				}
			}
			remaining = deferred
		}
		c.maybeFlushFrees()
	}
	c.Commits++
	return ts, nil
}

// abort leaves PW/PR as is (the paper: conservative timestamps are always
// safe) but bumps C for keys whose write check succeeded, unblocking
// future readers (§8.2).
func (t *Tx) abort(p *sim.Proc, ts Timestamp, keys []valKey, results [][]wire.Result) {
	c := t.c
	futs := c.futBuf[:0]
	for i, vk := range keys {
		if !vk.isWrite {
			continue
		}
		ri := 0
		if vk.hasRead {
			ri = 1
		}
		if results[i][ri].Status != wire.StatusOK {
			continue // write check did not succeed; nothing to unblock
		}
		sh := c.shardOf(vk.key)
		m := &c.metas[sh]
		slot := c.slotOf(vk.key, sh)
		data := c.carve(24)
		prism.PutBE64(data, 0, uint64(ts))
		ops := c.conns[sh].Ops(1)
		ops[0] = prism.CAS(m.Key, slot+offC, wire.CASGt, data, cOnlyMask, cOnlyMask)
		futs = append(futs, c.conns[sh].IssueAsync(ops))
	}
	c.futBuf = futs[:0]
	if len(futs) > 0 {
		sim.WaitAll(p, futs)
	}
}

func (c *Client) retire(shard int, addr memory.Addr) {
	var rec [8]byte
	binary.LittleEndian.PutUint64(rec[:], uint64(addr))
	c.frees[shard] = append(c.frees[shard], rec[:]...)
}

// UseControlConns routes reclamation RPCs over dedicated connections (one
// per shard, same order as the data connections).
func (c *Client) UseControlConns(ctrl []*rdma.Conn) {
	if len(ctrl) != len(c.conns) {
		panic("tx: control connections must match shards")
	}
	c.ctrl = ctrl
}

func (c *Client) maybeFlushFrees() {
	for i, pending := range c.frees {
		if len(pending)/8 >= c.FreeBatch {
			// Copied out of the batch buffer: the RPC is fire-and-forget
			// and the buffer refills while it may still be in flight.
			payload := append([]byte{rpcFree}, pending...)
			c.frees[i] = c.frees[i][:0]
			conn := c.conns[i]
			if c.ctrl != nil {
				conn = c.ctrl[i]
			}
			ops := conn.Ops(1)
			ops[0] = prism.Send(payload)
			conn.IssueAsync(ops)
		}
	}
}
