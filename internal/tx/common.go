// Package tx implements the paper's distributed transaction case study
// (§8): PRISM-TX, a timestamp-based optimistic concurrency control
// protocol built from PRISM operations (drawing on Meerkat [38]), and the
// FaRM baseline [10], whose commit protocol locks and updates through
// server-CPU RPCs.
//
// PRISM-TX per-key metadata (40 bytes, §8.2 Figure 8 extended with a
// bound for variable-length values):
//
//	[ PW (8,BE) | PR (8,BE) | C (8,BE) | addr (8,LE) | bound (8,LE) ]
//
//	PW — highest prepare timestamp of a writer of this key
//	PR — highest prepare timestamp of a reader of this key
//	C  — timestamp of the latest committed write
//
// Committed versions live in out-of-place buffers [ ts (8,BE) | klen(8,LE)
// | key (8,BE) | value ], so an indirect bounded READ of <addr,bound>
// returns the version timestamp and value atomically.
package tx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"prism/internal/memory"
)

// Timestamp is a PRISM-TX transaction timestamp: a loosely synchronized
// logical clock reading plus the client id, packed like abd.Tag so that
// big-endian byte comparison matches lexicographic (time, cid) order.
type Timestamp uint64

// MakeTimestamp packs a clock reading and client id.
func MakeTimestamp(clock uint64, client uint16) Timestamp {
	if clock >= 1<<48 {
		panic("tx: clock overflow")
	}
	return Timestamp(clock<<16 | uint64(client))
}

// Clock returns the logical clock component.
func (t Timestamp) Clock() uint64 { return uint64(t) >> 16 }

// Client returns the client id component.
func (t Timestamp) Client() uint16 { return uint16(t) }

func (t Timestamp) String() string { return fmt.Sprintf("(%d,%d)", t.Clock(), t.Client()) }

// InitialVersion is the version preloaded objects carry.
var InitialVersion = MakeTimestamp(1, 0)

// Metadata field offsets.
const (
	offPW    = 0
	offPR    = 8
	offC     = 16
	offAddr  = 24
	offBound = 32
	metaSize = 40
)

// Commit outcomes.
var (
	// ErrAborted reports a validation failure; the caller may retry the
	// transaction from the start.
	ErrAborted = errors.New("tx: transaction aborted")
	// ErrNotFound reports a read of a key that is not loaded.
	ErrNotFound = errors.New("tx: key not found")
)

// Meta describes one PRISM-TX shard to clients.
type Meta struct {
	Key      memory.RKey
	MetaBase memory.Addr
	NSlots   int64
	MaxValue int
	FreeList uint32
}

func (m *Meta) slotAddr(idx int64) memory.Addr {
	return m.MetaBase + memory.Addr(idx*metaSize)
}

// bufSize is the buffer size for a value of n bytes.
func bufSize(n int) uint64 { return uint64(8 + 8 + 8 + n) } // ts|klen|key|value

func encodeVersion(ts Timestamp, key int64, value []byte) []byte {
	b := make([]byte, bufSize(len(value)))
	fillVersion(b, ts, key, value)
	return b
}

// fillVersion writes the version image into b, which must be
// bufSize(len(value)) bytes (scratch-friendly variant of encodeVersion).
func fillVersion(b []byte, ts Timestamp, key int64, value []byte) {
	binary.BigEndian.PutUint64(b[0:], uint64(ts))
	binary.LittleEndian.PutUint64(b[8:], 8)
	binary.BigEndian.PutUint64(b[16:], uint64(key))
	copy(b[24:], value)
}

func decodeVersion(b []byte) (ts Timestamp, key int64, value []byte, err error) {
	if len(b) < 24 {
		return 0, 0, nil, fmt.Errorf("tx: version buffer truncated (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint64(b[8:]) != 8 {
		return 0, 0, nil, fmt.Errorf("tx: bad key length")
	}
	return Timestamp(binary.BigEndian.Uint64(b)), int64(binary.BigEndian.Uint64(b[16:])), b[24:], nil
}
