package bench

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"prism/internal/sim"
	"prism/internal/workload"
)

// newTestGen builds the standard per-client read-only generator.
func newTestGen(cfg Config, seed int64, i int) *workload.Generator {
	return workload.NewGenerator(workload.Mix{
		Keys: cfg.Keys, ReadFrac: 1, ValueSize: cfg.ValueSize,
	}, clientSeed(seed, i))
}

// allFigures enumerates every figure generator the harness exports, so
// the domain-determinism regression sweeps the full surface.
var allFigures = []struct {
	name string
	fn   func(Config) *Figure
}{
	{"fig1", Fig1},
	{"fig2", Fig2},
	{"rpcvsrdma", RPCvsRDMA},
	{"fig3", Fig3},
	{"fig4", Fig4},
	{"fig6", Fig6},
	{"fig7", Fig7},
	{"fig9", Fig9},
	{"fig10", Fig10},
	{"ext-shards", ExtShards},
	{"ext-multikey", ExtMultiKey},
	{"ablation-abd-writeback", AblationABDWriteback},
	{"ablation-kv-slotcache", AblationKVSlotCache},
	{"ablation-redirect-target", AblationRedirectTarget},
	{"ablation-freelist-classes", AblationFreelistClasses},
}

// tinyD is an extra-small config for the all-figures sweep (it runs every
// figure twice).
func tinyD() Config {
	cfg := DefaultConfig()
	cfg.Keys = 512
	cfg.Warmup = 30 * time.Microsecond
	cfg.Measure = 150 * time.Microsecond
	cfg.ClientCounts = []int{3, 17}
	return cfg
}

// intraWorkers is the domain-parallel worker count under test,
// overridable so CI can sweep settings (PRISM_INTRA).
func intraWorkers(t *testing.T) int {
	if s := os.Getenv("PRISM_INTRA"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad PRISM_INTRA=%q", s)
		}
		return n
	}
	return 4
}

// TestDomainParallelMatchesSerial is the tentpole regression for the
// per-node event-domain scheduler: every figure must render byte-identical
// CSV whether domains execute serially or on a worker pool, composed with
// the inter-point pool. Conservative lookahead windows plus the fixed
// (time, src-domain, seq) merge order at barriers make the parallel
// schedule semantically invisible.
func TestDomainParallelMatchesSerial(t *testing.T) {
	intra := intraWorkers(t)
	for _, figure := range allFigures {
		t.Run(figure.name, func(t *testing.T) {
			serial := tinyD()
			serial.Intra = 1
			serial.Parallel = 1
			domains := tinyD()
			domains.Intra = intra
			domains.Parallel = 4
			a, b := render(figure.fn(serial)), render(figure.fn(domains))
			if a != b {
				t.Fatalf("intra=%d output differs from serial:\n--- serial ---\n%s--- intra=%d ---\n%s",
					intra, a, intra, b)
			}
		})
	}
}

// TestMaxOpsStopsEarly: the cross-domain op cap is enforced at window
// barriers, and identically so at any worker count.
func TestMaxOpsStopsEarly(t *testing.T) {
	base := tinyD()
	base.Measure = 2 * time.Millisecond
	base.MaxOps = 50
	run := func(intra int) (Point, int64) {
		cfg := base
		cfg.Intra = intra
		seed := PointSeed(cfg.Seed, "maxops", "PRISM-KV", "clients=16")
		e, mkClient, place := buildPRISMKV(cfg, seed)
		d := newLoadDriver(e, cfg)
		for i := 0; i < 16; i++ {
			st := mkClient(i)
			gen := newTestGen(cfg, seed, i)
			d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
				_, key := gen.Next()
				_, err := st.Get(p, key)
				return 0, err
			})
		}
		pt := d.run(16)
		var ops int64
		for _, sh := range d.order {
			ops += sh.ops
		}
		return pt, ops
	}
	serial, ops := run(1)
	// The cap is detected one barrier late at worst, so allow modest
	// overshoot, but the run must stop well short of an uncapped run
	// (which completes thousands of ops in this window).
	if ops < 50 || ops > 500 {
		t.Fatalf("MaxOps=50 measured %d ops", ops)
	}
	if par, parOps := run(4); par != serial || parOps != ops {
		t.Fatalf("MaxOps point differs across worker counts:\nserial: %+v (%d ops)\nintra4: %+v (%d ops)",
			serial, ops, par, parOps)
	}
}

// BenchmarkIntraScaling measures one heavy figure point at increasing
// domain-worker counts (wall-clock scaling of the window scheduler).
func BenchmarkIntraScaling(b *testing.B) {
	for _, intra := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("intra=%d", intra), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Keys = 2048
			cfg.Warmup = 50 * time.Microsecond
			cfg.Measure = 500 * time.Microsecond
			cfg.Intra = intra
			for i := 0; i < b.N; i++ {
				kvPoint(kvSystem{"PRISM-KV", buildPRISMKV}, cfg, "intrascale", 0.5, 128)
			}
		})
	}
}
