package bench

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"prism/internal/sim"
	"prism/internal/workload"
)

// newTestGen builds the standard per-client read-only generator.
func newTestGen(cfg Config, seed int64, i int) *workload.Generator {
	return workload.NewGenerator(workload.Mix{
		Keys: cfg.Keys, ReadFrac: 1, ValueSize: cfg.ValueSize,
	}, clientSeed(seed, i))
}

// allFigures enumerates every figure generator the harness exports, so
// the domain-determinism regression sweeps the full surface.
var allFigures = []struct {
	name string
	fn   func(Config) *Figure
}{
	{"fig1", Fig1},
	{"fig2", Fig2},
	{"rpcvsrdma", RPCvsRDMA},
	{"fig3", Fig3},
	{"fig4", Fig4},
	{"fig6", Fig6},
	{"fig7", Fig7},
	{"fig9", Fig9},
	{"fig10", Fig10},
	{"ext-shards", ExtShards},
	{"ext-multikey", ExtMultiKey},
	{"ablation-abd-writeback", AblationABDWriteback},
	{"ablation-kv-slotcache", AblationKVSlotCache},
	{"ablation-redirect-target", AblationRedirectTarget},
	{"ablation-freelist-classes", AblationFreelistClasses},
}

// tinyD is an extra-small config for the all-figures sweep (it runs every
// figure twice).
func tinyD() Config {
	cfg := DefaultConfig()
	cfg.Keys = 512
	cfg.Warmup = 30 * time.Microsecond
	cfg.Measure = 150 * time.Microsecond
	cfg.ClientCounts = []int{3, 17}
	return cfg
}

// intraWorkers is the domain-parallel worker count under test,
// overridable so CI can sweep settings (PRISM_INTRA).
func intraWorkers(t *testing.T) int {
	if s := os.Getenv("PRISM_INTRA"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad PRISM_INTRA=%q", s)
		}
		return n
	}
	return 4
}

// TestDomainParallelMatchesSerial is the tentpole regression for the
// per-node event-domain scheduler: every figure must render byte-identical
// CSV whether domains execute serially or on a worker pool, composed with
// the inter-point pool. Conservative lookahead windows plus the fixed
// (time, src-domain, seq) merge order at barriers make the parallel
// schedule semantically invisible.
func TestDomainParallelMatchesSerial(t *testing.T) {
	intra := intraWorkers(t)
	for _, figure := range allFigures {
		t.Run(figure.name, func(t *testing.T) {
			serial := tinyD()
			serial.Intra = 1
			serial.Parallel = 1
			domains := tinyD()
			domains.Intra = intra
			domains.Parallel = 4
			a, b := render(figure.fn(serial)), render(figure.fn(domains))
			if a != b {
				t.Fatalf("intra=%d output differs from serial:\n--- serial ---\n%s--- intra=%d ---\n%s",
					intra, a, intra, b)
			}
		})
	}
}

// TestMaxOpsStopsEarly: the cross-domain op cap is enforced at window
// barriers, and identically so at any worker count.
func TestMaxOpsStopsEarly(t *testing.T) {
	base := tinyD()
	base.Measure = 2 * time.Millisecond
	base.MaxOps = 50
	run := func(intra int) (Point, int64) {
		cfg := base
		cfg.Intra = intra
		seed := PointSeed(cfg.Seed, "maxops", "PRISM-KV", "clients=16")
		e, mkClient, place := buildPRISMKV(cfg, seed)
		d := newLoadDriver(e, cfg)
		for i := 0; i < 16; i++ {
			st := mkClient(i)
			gen := newTestGen(cfg, seed, i)
			d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
				_, key := gen.Next()
				_, err := st.Get(p, key)
				return 0, err
			})
		}
		pt := d.run(16)
		var ops int64
		for _, sh := range d.order {
			ops += sh.ops
		}
		return pt, ops
	}
	serial, ops := run(1)
	// The cap is detected one barrier late at worst, so allow modest
	// overshoot, but the run must stop well short of an uncapped run
	// (which completes thousands of ops in this window).
	if ops < 50 || ops > 500 {
		t.Fatalf("MaxOps=50 measured %d ops", ops)
	}
	if par, parOps := run(4); par != serial || parOps != ops {
		t.Fatalf("MaxOps point differs across worker counts:\nserial: %+v (%d ops)\nintra4: %+v (%d ops)",
			serial, ops, par, parOps)
	}
}

// BenchmarkIntraScaling measures one heavy figure point at increasing
// domain-worker counts (wall-clock scaling of the window scheduler).
func BenchmarkIntraScaling(b *testing.B) {
	for _, intra := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("intra=%d", intra), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Keys = 2048
			cfg.Warmup = 50 * time.Microsecond
			cfg.Measure = 500 * time.Microsecond
			cfg.Intra = intra
			for i := 0; i < b.N; i++ {
				kvPoint(kvSystem{"PRISM-KV", buildPRISMKV}, cfg, "intrascale", 0.5, 128)
			}
		})
	}
}

// affinityGroups is the ClientsPerDomain setting under test, overridable
// so CI can sweep groupings (PRISM_AFFINITY).
func affinityGroups(t *testing.T) int {
	if s := os.Getenv("PRISM_AFFINITY"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad PRISM_AFFINITY=%q", s)
		}
		return n
	}
	return 4
}

// TestAffinityGroupingMatchesUngrouped is the tentpole regression for
// affinity groups: every figure must render byte-identical CSV whether
// each client machine gets its own event domain (ClientsPerDomain=1) or
// machines are co-located in groups — partial groups and one shared
// domain for all machines alike — composed with the domain-worker and
// point pools. Delivery order is (time, source node, send sequence), so
// the domain layout must be invisible.
func TestAffinityGroupingMatchesUngrouped(t *testing.T) {
	group := affinityGroups(t)
	all := tinyD().ClientMachines
	for _, figure := range allFigures {
		t.Run(figure.name, func(t *testing.T) {
			want := render(figure.fn(tinyD()))
			for _, g := range []int{group, all} {
				cfg := tinyD()
				cfg.ClientsPerDomain = g
				cfg.Intra = 2
				cfg.Parallel = 4
				if got := render(figure.fn(cfg)); got != want {
					t.Fatalf("ClientsPerDomain=%d output differs from ungrouped:\n--- ungrouped ---\n%s--- grouped ---\n%s",
						g, want, got)
				}
			}
		})
	}
}

// TestScalarWindowsMatchOutput: the A/B scheduler knob must never change
// figure output — only barrier frequency.
func TestScalarWindowsMatchOutput(t *testing.T) {
	for _, figure := range allFigures {
		if figure.name != "fig4" && figure.name != "ext-shards" {
			continue
		}
		t.Run(figure.name, func(t *testing.T) {
			matrix := render(figure.fn(tinyD()))
			cfg := tinyD()
			cfg.ScalarWindows = true
			if scalar := render(figure.fn(cfg)); scalar != matrix {
				t.Fatalf("scalar-window output differs from matrix:\n--- matrix ---\n%s--- scalar ---\n%s",
					matrix, scalar)
			}
		})
	}
}

// sumBarriers totals the barrier counter over a figure's points.
func sumBarriers(fig *Figure) int64 {
	var n int64
	for _, tel := range fig.PointTel {
		n += tel.Barriers
	}
	return n
}

// TestCrossRackGroupingIdentity: with the §8-style rack split (nonzero
// cross-rack latency) the physics change — output differs from the flat
// fabric — but output is still byte-identical across groupings, worker
// counts, and window rules; and at identical physics the matrix+affinity
// scheduler crosses at least 25% fewer barriers than the scalar
// ungrouped rule (the PR's headline win, asserted here at test scale).
func TestCrossRackGroupingIdentity(t *testing.T) {
	var fig4 func(Config) *Figure
	for _, figure := range allFigures {
		if figure.name == "fig4" {
			fig4 = figure.fn
		}
	}
	const extra = 500 * time.Nanosecond
	flat := render(fig4(tinyD()))

	scalarCfg := tinyD()
	scalarCfg.CrossRack = extra
	scalarCfg.ScalarWindows = true
	scalarFig := fig4(scalarCfg)
	base := render(scalarFig)
	if base == flat {
		t.Fatal("cross-rack latency had no effect on fig4")
	}

	groupedCfg := tinyD()
	groupedCfg.CrossRack = extra
	groupedCfg.ClientsPerDomain = groupedCfg.ClientMachines
	groupedCfg.Intra = 4
	groupedFig := fig4(groupedCfg)
	if got := render(groupedFig); got != base {
		t.Fatalf("cross-rack output differs across groupings:\n--- scalar ungrouped ---\n%s--- matrix grouped ---\n%s",
			base, got)
	}

	sca, mat := sumBarriers(scalarFig), sumBarriers(groupedFig)
	if sca == 0 || mat == 0 {
		t.Fatalf("missing barrier telemetry: scalar=%d matrix=%d", sca, mat)
	}
	if mat*4 > sca*3 {
		t.Fatalf("matrix+affinity crossed %d barriers vs scalar %d; want >= 25%% reduction", mat, sca)
	}
}

// TestPointTelemetryPopulated: every figure point reports scheduler
// telemetry, and multi-machine points observe cross-domain traffic.
func TestPointTelemetryPopulated(t *testing.T) {
	for _, figure := range allFigures {
		if figure.name != "fig3" {
			continue
		}
		fig := figure.fn(tinyD())
		points := 0
		for _, s := range fig.Series {
			points += len(s.Points)
		}
		if len(fig.PointTel) != points {
			t.Fatalf("PointTel has %d entries for %d points", len(fig.PointTel), points)
		}
		for i, tel := range fig.PointTel {
			if tel.Domains < 3 || tel.Windows == 0 || tel.Barriers == 0 || tel.CrossDeliveries == 0 {
				t.Fatalf("point %d telemetry implausible: %+v", i, tel)
			}
			if tel.MeanWindowNanos <= 0 {
				t.Fatalf("point %d mean window %dns", i, tel.MeanWindowNanos)
			}
		}
	}
}
