// Package bench is the benchmark harness that regenerates every figure in
// the paper's evaluation (Figures 1–4, 6, 7, 9, 10, plus the §2.1
// RPC-vs-RDMA motivation measurement). Each Fig* function builds the
// corresponding simulated cluster, drives closed-loop clients through the
// paper's workload, and returns the same rows/series the paper plots.
//
// Scale note: the paper uses 8 M x 512 B objects (4 GB per store). The
// harness defaults to a smaller keyspace with identical uniform/Zipf
// contention characteristics so figures regenerate in seconds; Config.Keys
// restores full scale when memory allows. The shapes under comparison are
// insensitive to keyspace size at uniform access (§6.2's collisionless
// hash makes every slot independent).
package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"prism/internal/sim"
	"prism/internal/stats"
)

// Config scales an experiment.
type Config struct {
	Keys      int64 // objects in the store (paper: 8M)
	ValueSize int   // bytes per object (paper: 512)
	// ClientCounts is the closed-loop client ladder for throughput-latency
	// curves.
	ClientCounts []int
	// ClientMachines is how many client machines the clients are spread
	// over (paper: up to 11).
	ClientMachines int
	// Warmup and Measure are virtual-time windows.
	Warmup  time.Duration
	Measure time.Duration
	// MaxOps caps measured operations per point (0 = no cap) so high
	// throughput points do not dominate wall-clock time. The cap is
	// detected at window barriers, so a run may slightly overshoot it.
	MaxOps int64
	Seed   int64
	// Parallel is the worker count for the point runner: each figure point
	// is an independent simulation, and up to Parallel of them execute
	// concurrently. <= 1 runs points serially in declaration order. Output
	// is byte-identical either way (see PointSeed).
	Parallel int
	// Intra is the worker count inside one simulation: event domains (one
	// per simulated machine) execute lookahead windows on up to Intra
	// goroutines. <= 1 runs domains serially. Output is byte-identical at
	// any setting — cross-domain deliveries merge in a fixed total order at
	// window barriers. Composes with Parallel (points x domains).
	Intra int
	// ClientsPerDomain co-locates client machines into shared event
	// domains (affinity groups): machine i joins group i/ClientsPerDomain,
	// so a fleet of tiny client machines barriers as a few domains instead
	// of one each, and intra-group traffic skips the window barrier. <= 1
	// keeps one domain per machine. Output is byte-identical at any
	// grouping — delivery order is decided by (time, source node, send
	// sequence), never by domain layout.
	ClientsPerDomain int
	// CrossRack places the client machines in a different rack than the
	// servers and charges this much extra one-way latency per rack
	// crossing (the paper's §8 topology: clients and servers in distinct
	// racks). 0 keeps the fabric flat; the paper figures use the flat
	// default, the topology benchmark uses a nonzero value to demonstrate
	// per-pair lookahead.
	CrossRack time.Duration
	// ScalarWindows forces the pre-matrix scheduler rule — every window
	// bounded by the single minimum lookahead over all pairs — instead of
	// per-domain horizons from the per-pair matrix. Simulation outcomes
	// are identical either way; only barrier frequency differs. A/B knob
	// for the scheduler telemetry.
	ScalarWindows bool
	// SparseBarriers elides barrier hook sweeps for windows with nothing
	// to merge (sim.World.SetSparseBarriers): with mostly-idle client
	// fleets — the fig-scale low end — most crossings touch no outbox and
	// are skipped. Simulation output is byte-identical either way; off by
	// default so the dense-barrier counters keep their A/B meaning.
	SparseBarriers bool

	// ScaleClients is the client ladder for the fig-scale connection
	// sweep (clients == connections per server for its GET-only
	// workload); it deliberately overshoots the modeled QP cache so the
	// Storm-style cliff appears inside the sweep.
	ScaleClients []int
	// ScaleMachines is the fixed client-machine fleet fig-scale spreads
	// clients over: constant across the ladder, so low-count points run
	// mostly-idle domains (the sparse-barrier case) and high-count points
	// pack hundreds of clients per machine.
	ScaleMachines int
	// QPCacheEntries overrides the hardware-class QP context cache
	// capacity used by fig-scale (0 = the calibrated
	// model.WithConnScaling default). Moving it moves the cliff; the
	// scale bench test asserts exactly that.
	QPCacheEntries int

	// ChaseDepths is the chain-depth ladder for the fig-chase verb-
	// program sweep: every lookup walks exactly depth pointer hops, so
	// the x axis is the round trips a per-hop client pays and a CHASE
	// program collapses.
	ChaseDepths []int
	// ChaseClients is the closed-loop client count per fig-chase point.
	// The figure compares lookup latency shapes, not saturation, so a
	// handful of clients suffices.
	ChaseClients int
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{
		Keys:           16384,
		ValueSize:      512,
		ClientCounts:   []int{1, 2, 4, 8, 16, 32, 64, 128, 192, 288},
		ClientMachines: 11,
		Warmup:         200 * time.Microsecond,
		Measure:        4 * time.Millisecond,
		MaxOps:         0,
		Seed:           42,
		Parallel:       1,
		Intra:          1,

		ClientsPerDomain: 1,

		ScaleClients:  []int{16, 64, 256, 1024, 4096, 16384},
		ScaleMachines: 256,

		ChaseDepths:  []int{1, 2, 4, 8, 16},
		ChaseClients: 4,
	}
}

// ---------------------------------------------------------------------------
// Point runner
//
// Every figure point (one simulated cluster driven through one measurement
// window) is a self-contained job: it builds its own engine, seeds every
// RNG from PointSeed, and shares no state with other points. Jobs are
// declared in figure order and executed by runJobs — serially or on a
// worker pool — with results reassembled in declaration order, so the
// rendered figure is byte-identical regardless of worker count or
// scheduling.

// PointSeed derives the deterministic seed for one figure point from the
// run seed and the point's identity (figure ID, series name, and a point
// key such as "clients=64" or "theta=0.80"). Because the seed depends only
// on identity — never on execution order — serial and parallel runs
// produce identical measurements.
func PointSeed(base int64, figID, series, point string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(figID))
	h.Write([]byte{0})
	h.Write([]byte(series))
	h.Write([]byte{0})
	h.Write([]byte(point))
	return int64(h.Sum64())
}

// clientSeed derives the workload-generator seed for client i of a point
// (a SplitMix64 step, so per-client streams are decorrelated).
func clientSeed(pointSeed int64, i int) int64 {
	z := uint64(pointSeed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// runJobs executes jobs on up to workers goroutines and returns their
// results in declaration order, along with each job's wall-clock
// duration (also in declaration order — harness-side timing, not
// simulated time). workers <= 1 runs them serially on the calling
// goroutine.
func runJobs[T any](workers int, jobs []func() T) ([]T, []time.Duration) {
	out := make([]T, len(jobs))
	wall := make([]time.Duration, len(jobs))
	timed := func(i int) {
		start := time.Now()
		out[i] = jobs[i]()
		wall[i] = time.Since(start)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			timed(i)
		}
		return out, wall
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				timed(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, wall
}

// Telemetry is one point's scheduler counters, read from the simulation
// world after the point has run: how many conservative time windows it
// took, how many barriers fired (each barrier synchronizes every domain),
// how many deliveries crossed a domain boundary (intra-group traffic does
// not), and the mean bounded window length in simulated time. It is
// reported by prismbench -json and never rendered into the text/CSV
// figures, whose bytes must stay independent of scheduler configuration.
type Telemetry struct {
	Domains         int   `json:"domains"`
	Windows         int64 `json:"windows"`
	Barriers        int64 `json:"barriers"`
	CrossDeliveries int64 `json:"cross_deliveries"`
	MeanWindowNanos int64 `json:"mean_window_ns"`
	// Sparse-scheduler counters: hook sweeps elided under
	// Config.SparseBarriers, and idle domains skipped by the active-set
	// window scan (one per idle domain per executed window).
	BarrierSkips int64 `json:"barrier_skips"`
	IdleSkips    int64 `json:"idle_skips"`
	// Burst/wheel counters (see sim.WorldStats): events fired, drained
	// instants (EventsExecuted/Bursts is the amortization ratio), fired
	// events that transited the timer wheel, timers cancelled before
	// firing, and wheel cascade re-files.
	EventsExecuted int64   `json:"events_executed"`
	Bursts         int64   `json:"bursts"`
	MeanBurstLen   float64 `json:"mean_burst_len"`
	TimerFires     int64   `json:"timer_fires"`
	TimerStops     int64   `json:"timer_stops"`
	WheelCascades  int64   `json:"wheel_cascades"`
	// NIC connection-state cache counters (zero unless the point enabled
	// the QP model — the fig-scale family does).
	QPCacheHits      int64 `json:"qp_cache_hits"`
	QPCacheMisses    int64 `json:"qp_cache_misses"`
	QPCacheEvictions int64 `json:"qp_cache_evictions"`
	// Verb-program counters (zero unless the point issues CHASE/SCAN —
	// the fig-chase family does): programs executed on the servers, the
	// loop iterations they ran, and the round trips they collapsed
	// (steps - programs: a k-step program replaces k dependent verbs
	// with one).
	ProgramOps    int64 `json:"program_ops,omitempty"`
	StepsExecuted int64 `json:"steps_executed,omitempty"`
	RTTsSaved     int64 `json:"rtts_saved,omitempty"`
	// AllocsPerOp and BytesPerOp are the harness-process heap allocation
	// deltas across the point's drive phase (warmup + measure + drain),
	// divided by measured operations — the datapath's allocation cost as
	// seen by the Go runtime. The counters are process-wide, so they are
	// only attributable when points run serially (-parallel 1); under a
	// point pool, concurrent points bleed into each other's deltas and
	// the numbers are upper bounds. Zero for points that run no load
	// driver (microbenchmarks), hence omitempty.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

// telemetry snapshots e's scheduler counters and attributes the heap
// allocation delta recorded by run to the point's measured operations.
// Point runners that drive a loadDriver report through this; runners
// without one use worldTelemetry and leave the allocation fields zero.
func (d *loadDriver) telemetry(e *sim.Engine) Telemetry {
	tel := worldTelemetry(e)
	if d.totalOps > 0 {
		tel.AllocsPerOp = float64(d.deltaMallocs) / float64(d.totalOps)
		tel.BytesPerOp = float64(d.deltaBytes) / float64(d.totalOps)
	}
	return tel
}

// worldTelemetry snapshots e's world scheduler counters.
func worldTelemetry(e *sim.Engine) Telemetry {
	st := e.World().Stats()
	return Telemetry{
		Domains:          st.Domains,
		Windows:          st.Windows,
		Barriers:         st.Barriers,
		CrossDeliveries:  st.CrossDeliveries,
		MeanWindowNanos:  int64(st.MeanWindow()),
		BarrierSkips:     st.BarrierSkips,
		IdleSkips:        st.IdleSkips,
		EventsExecuted:   st.EventsExecuted,
		Bursts:           st.Bursts,
		MeanBurstLen:     st.MeanBurstLen(),
		TimerFires:       st.TimerFires,
		TimerStops:       st.TimerStops,
		WheelCascades:    st.WheelCascades,
		QPCacheHits:      st.ConnCacheHits,
		QPCacheMisses:    st.ConnCacheMisses,
		QPCacheEvictions: st.ConnCacheEvictions,
		ProgramOps:       st.ProgramOps,
		StepsExecuted:    st.ProgramSteps,
		RTTsSaved:        st.ProgramSteps - st.ProgramOps,
	}
}

// runPointJobs is runJobs for jobs that also report scheduler telemetry;
// results and telemetry come back in declaration order.
func runPointJobs[T any](workers int, jobs []func() (T, Telemetry)) ([]T, []Telemetry, []time.Duration) {
	out := make([]T, len(jobs))
	tels := make([]Telemetry, len(jobs))
	wrapped := make([]func() struct{}, len(jobs))
	for i := range jobs {
		i := i
		wrapped[i] = func() struct{} {
			out[i], tels[i] = jobs[i]()
			return struct{}{}
		}
	}
	_, wall := runJobs(workers, wrapped)
	return out, tels, wall
}

// Point is one measured point of a curve.
type Point = stats.Summary

// Series is a named curve (one line in a paper figure). For categorical
// figures (Fig. 1, Fig. 2), Labels names each point instead of a client
// count.
type Series struct {
	Name   string
	Points []Point
	Labels []string
}

// Figure is a reproduced figure: a set of series plus axis descriptions.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// PointWall is the harness wall-clock time of each figure point in
	// job-declaration order. Diagnostic only: it is reported by
	// prismbench -json but never rendered into the text/CSV figures,
	// whose output must stay machine-independent.
	PointWall []time.Duration
	// PointTel is each point's scheduler telemetry in job-declaration
	// order (empty for figures that run no simulation). Diagnostic only,
	// like PointWall.
	PointTel []Telemetry
}

// Fprint renders the figure as aligned text tables.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "   (%s vs %s)\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "-- %s\n", s.Name)
		for i, pt := range s.Points {
			if i < len(s.Labels) {
				fmt.Fprintf(w, "   %-28s %8.2fµs\n", s.Labels[i], float64(pt.Mean)/1e3)
			} else {
				fmt.Fprintf(w, "   %s\n", pt)
			}
		}
	}
}

// FprintCSV renders the figure as CSV rows for external plotting:
// figure,series,label,clients,throughput_ops,mean_us,p50_us,p99_us,aborts,errors
func (f *Figure) FprintCSV(w io.Writer) {
	fmt.Fprintln(w, "figure,series,label,clients,throughput_ops,mean_us,p50_us,p99_us,aborts,errors")
	for _, s := range f.Series {
		for i, pt := range s.Points {
			label := ""
			if i < len(s.Labels) {
				label = strings.ReplaceAll(s.Labels[i], ",", ";")
			}
			fmt.Fprintf(w, "%s,%s,%s,%d,%.0f,%.3f,%.3f,%.3f,%d,%d\n",
				f.ID, strings.ReplaceAll(s.Name, ",", ";"), label,
				pt.Clients, pt.Throughput,
				float64(pt.Mean)/1e3, float64(pt.Median)/1e3, float64(pt.P99)/1e3,
				pt.Aborts, pt.Errors)
		}
	}
}

// loadDriver runs a closed-loop client population against op, measuring
// completed ops and latencies in the virtual measurement window.
//
// op is invoked repeatedly per client; it returns the number of logical
// operations completed (usually 1; transactions may retry internally and
// still count 1) or an error to stop that client.
//
// Measurements are sharded per event domain: each client process records
// into the shard of the machine domain it was spawned on, so under
// domain-parallel execution (Config.Intra > 1) concurrent clients never
// share a recorder. Shards merge deterministically in run.
type loadDriver struct {
	e       *sim.Engine
	cfg     Config
	shards  map[*sim.Engine]*driverShard
	order   []*driverShard // first-spawn order, for a stable merge
	stopped bool           // written only between windows (barrier or run)
	// Filled by run: measured ops and the runtime heap-counter deltas
	// across the drive phase, for Telemetry's allocation fields.
	totalOps     int64
	deltaMallocs uint64
	deltaBytes   uint64
}

// driverShard is the measurement state owned by one event domain.
type driverShard struct {
	rec     *stats.LatencyRecorder
	ops     int64
	aborts  int64
	errs    int64
	lastEnd sim.Time
}

func newLoadDriver(e *sim.Engine, cfg Config) *loadDriver {
	d := &loadDriver{e: e, cfg: cfg, shards: make(map[*sim.Engine]*driverShard)}
	if cfg.Intra > 1 {
		e.World().SetWorkers(cfg.Intra)
	}
	if cfg.ScalarWindows {
		e.World().SetScalarWindows(true)
	}
	if cfg.SparseBarriers {
		e.World().SetSparseBarriers(true)
	}
	if cfg.MaxOps > 0 {
		// The cap spans domains, so it is enforced where cross-domain
		// state may be read safely: at window barriers.
		e.World().OnBarrier(d.checkMaxOps)
	}
	return d
}

func (d *loadDriver) shard(dom *sim.Engine) *driverShard {
	sh := d.shards[dom]
	if sh == nil {
		sh = &driverShard{rec: stats.NewLatencyRecorder()}
		d.shards[dom] = sh
		d.order = append(d.order, sh)
	}
	return sh
}

func (d *loadDriver) checkMaxOps() {
	if d.stopped {
		return
	}
	var total int64
	for _, sh := range d.order {
		total += sh.ops
	}
	if total >= d.cfg.MaxOps {
		d.stopped = true
	}
}

// spawn starts one closed-loop client process on dom (the client's
// machine domain) running op until the driver stops.
func (d *loadDriver) spawn(dom *sim.Engine, name string, op func(p *sim.Proc) (aborts int64, err error)) {
	sh := d.shard(dom)
	dom.Go(name, func(p *sim.Proc) {
		warmEnd := sim.Time(d.cfg.Warmup)
		measureEnd := sim.Time(d.cfg.Warmup + d.cfg.Measure)
		for !d.stopped {
			start := p.Now()
			if start >= measureEnd {
				return
			}
			aborts, err := op(p)
			if err != nil {
				sh.errs++
				return
			}
			end := p.Now()
			if start >= warmEnd && end <= measureEnd {
				sh.rec.Record(end.Sub(start))
				sh.ops++
				sh.aborts += aborts
				if end > sh.lastEnd {
					sh.lastEnd = end
				}
			}
		}
	})
}

// run drives the simulation through the measurement window, drains the
// in-flight operations so client processes exit cleanly, and summarizes
// the per-domain shards.
func (d *loadDriver) run(clients int) Point {
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	d.e.RunUntil(sim.Time(d.cfg.Warmup + d.cfg.Measure))
	d.stopped = true
	d.e.Run() // drain in-flight ops; clients observe stopped and exit
	runtime.ReadMemStats(&msAfter)
	d.deltaMallocs = msAfter.Mallocs - msBefore.Mallocs
	d.deltaBytes = msAfter.TotalAlloc - msBefore.TotalAlloc
	rec := stats.NewLatencyRecorder()
	var ops, aborts, errs int64
	var lastEnd sim.Time
	for _, sh := range d.order {
		rec.Merge(sh.rec)
		ops += sh.ops
		aborts += sh.aborts
		errs += sh.errs
		if sh.lastEnd > lastEnd {
			lastEnd = sh.lastEnd
		}
	}
	// Throughput from ops completed in the effective measured window
	// (shorter than Measure when MaxOps stopped the run early).
	window := d.cfg.Measure
	if d.cfg.MaxOps > 0 && lastEnd > sim.Time(d.cfg.Warmup) {
		if span := lastEnd.Sub(sim.Time(d.cfg.Warmup)); span < window {
			window = span
		}
	}
	tput := float64(ops) / window.Seconds()
	d.totalOps = ops
	return Point{
		Clients:    clients,
		Throughput: tput,
		Mean:       rec.Mean(),
		Median:     rec.Median(),
		P99:        rec.P99(),
		Aborts:     aborts,
		Errors:     errs,
	}
}
