package bench

import (
	"fmt"
	"sync"

	"prism/internal/abd"
	"prism/internal/fabric"
	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/tx"
	"prism/internal/workload"
)

// The template cache builds each distinct cluster setup once per process
// and hands every measurement point a copy-on-write fork of it. The key is
// the setup identity — exactly what the built state depends on (system,
// object count, value size, shard count) and nothing it doesn't:
// deployment, point seed, client count, and workload mix are
// instantiation-time choices. Loaded values are seed-independent (workload
// value bytes derive from key and version only), which is what makes the
// built image shareable across points in the first place.

type templateKey struct {
	system    string
	keys      int64
	valueSize int
	shards    int
}

type templateEntry struct {
	once sync.Once
	val  any
}

var templateCache = struct {
	sync.Mutex
	m map[templateKey]*templateEntry
}{m: make(map[templateKey]*templateEntry)}

// cachedTemplate returns the template for key, building it at most once
// per process. Concurrent workers needing the same key block on one build;
// workers on different keys build concurrently.
func cachedTemplate(key templateKey, build func() any) any {
	templateCache.Lock()
	e := templateCache.m[key]
	if e == nil {
		e = &templateEntry{}
		templateCache.m[key] = e
	}
	templateCache.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// resetTemplateCache drops every cached template (tests that must observe
// a cold build).
func resetTemplateCache() {
	templateCache.Lock()
	templateCache.m = make(map[templateKey]*templateEntry)
	templateCache.Unlock()
}

// buildNet is the standard flat measurement fabric (rack profile,
// calibrated cost model). Template builders use it directly; measurement
// points go through measureNet so topology knobs apply.
func buildNet(seed int64) (*sim.Engine, *fabric.Network, model.Params) {
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(seed)
	return e, fabric.New(e, p), p
}

// measureNet is the measurement-point fabric: buildNet plus the config's
// topology knobs. With Config.CrossRack zero (the default, and what every
// paper figure uses) it is identical to buildNet — clusters built on it
// produce byte-identical figures.
func measureNet(cfg Config, seed int64) (*sim.Engine, *fabric.Network, model.Params) {
	p := model.Default().WithNetwork(model.Rack)
	p.CrossRackExtra = cfg.CrossRack
	e := sim.NewEngine(seed)
	return e, fabric.New(e, p), p
}

// Template builders run on throwaway engines; building never touches a
// measurement point's RNG stream, so fresh builds and template forks are
// bit-identical.

func kvTemplate(cfg Config) *kv.Template {
	key := templateKey{system: "prismkv", keys: cfg.Keys, valueSize: cfg.ValueSize}
	return cachedTemplate(key, func() any {
		_, net, _ := buildNet(0)
		srv, err := kv.NewServer(rdma.NewServer(net, "server", model.SoftwarePRISM),
			kv.DefaultOptions(cfg.Keys, cfg.ValueSize))
		if err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(workload.Mix{Keys: cfg.Keys, ReadFrac: 1, ValueSize: cfg.ValueSize}, 0)
		for k := int64(0); k < cfg.Keys; k++ {
			if err := srv.Load(k, gen.Value(k, 0)); err != nil {
				panic(err)
			}
		}
		return srv.Capture()
	}).(*kv.Template)
}

func pilafTemplate(cfg Config) *kv.PilafTemplate {
	key := templateKey{system: "pilaf", keys: cfg.Keys, valueSize: cfg.ValueSize}
	return cachedTemplate(key, func() any {
		e, net, _ := buildNet(0)
		srv, err := kv.NewPilafServer(rdma.NewServer(net, "server", model.SoftwarePRISM),
			kv.DefaultOptions(cfg.Keys, cfg.ValueSize))
		if err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(workload.Mix{Keys: cfg.Keys, ReadFrac: 1, ValueSize: cfg.ValueSize}, 0)
		for k := int64(0); k < cfg.Keys; k++ {
			if err := srv.Load(k, gen.Value(k, 0)); err != nil {
				panic(err)
			}
		}
		// Pilaf stages tear-delayed stores on the engine; drain them so the
		// captured image is fully settled.
		e.Run()
		return srv.Capture()
	}).(*kv.PilafTemplate)
}

func rsTemplate(cfg Config) *abd.Template {
	key := templateKey{system: "prismrs", keys: cfg.Keys, valueSize: cfg.ValueSize}
	return cachedTemplate(key, func() any {
		_, net, _ := buildNet(0)
		r, err := abd.NewReplica(rdma.NewServer(net, "replica", model.SoftwarePRISM),
			abd.ReplicaOptions{NBlocks: cfg.Keys, BlockSize: cfg.ValueSize, ExtraBuffers: 4096})
		if err != nil {
			panic(err)
		}
		return r.Capture()
	}).(*abd.Template)
}

func lockTemplate(cfg Config) *abd.LockTemplate {
	key := templateKey{system: "abdlock", keys: cfg.Keys, valueSize: cfg.ValueSize}
	return cachedTemplate(key, func() any {
		_, net, _ := buildNet(0)
		r, err := abd.NewLockReplica(rdma.NewServer(net, "replica", model.SoftwarePRISM),
			cfg.Keys, cfg.ValueSize)
		if err != nil {
			panic(err)
		}
		return r.Capture()
	}).(*abd.LockTemplate)
}

func txTemplate(cfg Config) *tx.Template {
	key := templateKey{system: "prismtx", keys: cfg.Keys, valueSize: cfg.ValueSize}
	return cachedTemplate(key, func() any {
		_, net, _ := buildNet(0)
		shard, err := tx.NewShard(rdma.NewServer(net, "shard", model.SoftwarePRISM),
			tx.ShardOptions{NSlots: cfg.Keys, MaxValue: cfg.ValueSize, ExtraBuffers: 8192})
		if err != nil {
			panic(err)
		}
		gen := workload.NewTxGenerator(workload.TxMix{Keys: cfg.Keys, ValueSize: cfg.ValueSize, KeysPerTx: 1}, 0)
		for k := int64(0); k < cfg.Keys; k++ {
			if err := shard.Load(k, gen.Value(k, 0)); err != nil {
				panic(err)
			}
		}
		return shard.Capture()
	}).(*tx.Template)
}

func farmTemplate(cfg Config) *tx.FarmTemplate {
	key := templateKey{system: "farm", keys: cfg.Keys, valueSize: cfg.ValueSize}
	return cachedTemplate(key, func() any {
		_, net, _ := buildNet(0)
		srv, err := tx.NewFarmServer(rdma.NewServer(net, "shard", model.SoftwarePRISM),
			tx.ShardOptions{NSlots: cfg.Keys, MaxValue: cfg.ValueSize})
		if err != nil {
			panic(err)
		}
		gen := workload.NewTxGenerator(workload.TxMix{Keys: cfg.Keys, ValueSize: cfg.ValueSize, KeysPerTx: 1}, 0)
		for k := int64(0); k < cfg.Keys; k++ {
			if err := srv.Load(k, gen.Value(k, 0)); err != nil {
				panic(err)
			}
		}
		return srv.Capture()
	}).(*tx.FarmTemplate)
}

// txClusterTemplates builds the per-shard templates of an nShards PRISM-TX
// cluster (shard i holds keys k where k mod nShards == i, so each shard's
// image is distinct).
func txClusterTemplates(cfg Config, nShards int) []*tx.Template {
	key := templateKey{system: "txcluster", keys: cfg.Keys, valueSize: cfg.ValueSize, shards: nShards}
	return cachedTemplate(key, func() any {
		_, net, _ := buildNet(0)
		shards := make([]*tx.Shard, nShards)
		perShard := cfg.Keys / int64(nShards)
		for i := range shards {
			s, err := tx.NewShard(rdma.NewServer(net, fmt.Sprintf("shard-%d", i), model.SoftwarePRISM),
				tx.ShardOptions{NSlots: perShard + 1, MaxValue: cfg.ValueSize, ExtraBuffers: 8192})
			if err != nil {
				panic(err)
			}
			shards[i] = s
		}
		gen := workload.NewTxGenerator(workload.TxMix{Keys: cfg.Keys, ValueSize: cfg.ValueSize, KeysPerTx: 1}, 0)
		for k := int64(0); k < cfg.Keys; k++ {
			if err := shards[k%int64(nShards)].Load(k, gen.Value(k, 0)); err != nil {
				panic(err)
			}
		}
		tmpls := make([]*tx.Template, nShards)
		for i, s := range shards {
			tmpls[i] = s.Capture()
		}
		return tmpls
	}).([]*tx.Template)
}
