package bench

import (
	"fmt"
	"time"

	"prism/internal/alloc"
	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/model"
	"prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/wire"
)

// microEnv is a two-machine setup (direct link unless a profile is given)
// for single-op latency measurements.
type microEnv struct {
	e    *sim.Engine
	srv  *rdma.Server
	conn *rdma.Conn
	reg  *memory.Region
}

// measure runs op repeatedly and returns its steady-state round-trip time.
func (m *microEnv) measure(mk func(i int) []wire.Op) time.Duration {
	const iters = 64
	var total time.Duration
	m.e.Go("probe", func(p *sim.Proc) {
		// One warmup op.
		m.conn.Issue(p, mk(0)...)
		start := p.Now()
		for i := 1; i <= iters; i++ {
			res := m.conn.Issue(p, mk(i)...)
			for _, r := range res {
				if !r.Status.OK() && r.Status != wire.StatusCASFailed {
					panic(fmt.Sprintf("bench: micro op status %v", r.Status))
				}
			}
		}
		total = time.Duration(p.Now().Sub(start)) / iters
	})
	m.e.Run()
	return total
}

const microValue = 512 // Fig. 1 uses 512-byte values

// Fig1 reproduces Figure 1: microbenchmark latencies of READ, WRITE,
// Indirect READ, ALLOCATE, and Enhanced-CAS (512 B values) under the four
// deployments. Stock RDMA appears only for the ops it supports.
func Fig1(cfg Config) *Figure {
	deployments := []model.Deployment{
		model.HardwareRDMA,
		model.SoftwarePRISM,
		model.BlueFieldPRISM,
		model.ProjectedHardwarePRISM,
	}
	opNames := []string{"Read", "Write", "Indirect Read", "Allocate", "Enhanced-CAS"}

	fig := &Figure{
		ID:     "fig1",
		Title:  "PRISM microbenchmarks vs hardware RDMA (512 B, direct link)",
		XLabel: "operation",
		YLabel: "latency (µs)",
	}
	type cell struct {
		lat       time.Duration
		supported bool
	}
	var jobs []func() (cell, Telemetry)
	for _, d := range deployments {
		for opIdx, opName := range opNames {
			jobs = append(jobs, func() (cell, Telemetry) {
				seed := PointSeed(cfg.Seed, "fig1", d.String(), opName)
				env := newMicroEnvPrepared(d, model.Direct, seed)
				lat, supported := env.runOp(opIdx)
				return cell{lat, supported}, worldTelemetry(env.e)
			})
		}
	}
	cells, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for di, d := range deployments {
		s := Series{Name: d.String()}
		for opIdx, opName := range opNames {
			c := cells[di*len(opNames)+opIdx]
			lat, label := c.lat, opName
			if !c.supported {
				lat = 0 // not expressible on a stock RDMA NIC
				label = opName + " (unsupported)"
			}
			s.Points = append(s.Points, Point{Clients: 1, Mean: lat, Median: lat, P99: lat})
			s.Labels = append(s.Labels, label)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// newMicroEnvPrepared builds the env with value, pointer, and CAS cells
// pre-seeded.
func newMicroEnvPrepared(d model.Deployment, nw model.SwitchProfile, seed int64) *microEnv {
	return newMicroEnvWithParams(d, model.Default().WithNetwork(nw), seed)
}

func newMicroEnvWithParams(d model.Deployment, p model.Params, seed int64) *microEnv {
	e := sim.NewEngine(seed)
	net := fabric.New(e, p)
	srv := rdma.NewServer(net, "srv", d)
	reg, err := srv.Space().Register(1 << 20)
	if err != nil {
		panic(err)
	}
	srv.SetConnTempKey(reg.Key)
	fl := alloc.NewFreeList(1, 1024, reg.Key)
	bufs, err := srv.Space().RegisterShared(reg.Key, 1024*1024)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 1024; i++ {
		fl.Post(bufs.Base + memory.Addr(i*1024))
	}
	srv.AddFreeList(fl)
	cli := rdma.NewClient(net, "cli")
	env := &microEnv{e: e, srv: srv, conn: cli.Connect(srv), reg: reg}

	space := srv.Space()
	// value at +4096, pointer to it at +0, CAS cell [tag|addr] at +64.
	if err := space.Write(reg.Key, reg.Base+4096, make([]byte, microValue)); err != nil {
		panic(err)
	}
	if err := space.WriteU64(reg.Key, reg.Base, uint64(reg.Base+4096)); err != nil {
		panic(err)
	}
	cell := make([]byte, 16)
	prism.PutBE64(cell, 0, 1)
	prism.PutLE64(cell, 8, uint64(reg.Base+4096))
	if err := space.Write(reg.Key, reg.Base+64, cell); err != nil {
		panic(err)
	}
	return env
}

// runOp measures one of the five Fig. 1 ops; reports supported=false when
// the deployment cannot express it.
func (env *microEnv) runOp(opIdx int) (time.Duration, bool) {
	reg := env.reg
	key := reg.Key
	var casTag uint64 = 1
	mk := func(i int) []wire.Op {
		switch opIdx {
		case 0: // Read
			return []wire.Op{prism.Read(key, reg.Base+4096, microValue)}
		case 1: // Write
			return []wire.Op{prism.Write(key, reg.Base+4096, make([]byte, microValue))}
		case 2: // Indirect Read
			return []wire.Op{prism.ReadIndirect(key, reg.Base, microValue)}
		case 3: // Allocate
			return []wire.Op{prism.Allocate(1, make([]byte, microValue))}
		default: // Enhanced CAS: GT on the tag, swap tag+addr (16 B masked)
			casTag++
			data := make([]byte, 16)
			prism.PutBE64(data, 0, casTag)
			prism.PutLE64(data, 8, uint64(reg.Base+4096))
			return []wire.Op{prism.CAS(key, reg.Base+64, wire.CASGt, data,
				prism.FieldMask(16, 0, 8), prism.FullMask(16))}
		}
	}
	if env.srv.Deployment() == model.HardwareRDMA && opIdx >= 2 {
		return 0, false
	}
	return env.measure(mk), true
}

// Fig2 reproduces Figure 2: the latency of a dependent pointer chase —
// two RDMA READs vs one PRISM indirect READ — under the rack, cluster,
// and datacenter latency profiles.
func Fig2(cfg Config) *Figure {
	profiles := []model.SwitchProfile{model.Rack, model.Cluster, model.Datacenter}
	fig := &Figure{
		ID:     "fig2",
		Title:  "Indirect read latency: 2x RDMA vs PRISM, by network scale",
		XLabel: "network profile (rack / cluster / datacenter)",
		YLabel: "latency (µs)",
	}
	type variant struct {
		name   string
		deploy model.Deployment
		twoRTT bool
	}
	variants := []variant{
		{"2x RDMA", model.HardwareRDMA, true},
		{"PRISM SW", model.SoftwarePRISM, false},
		{"PRISM BlueField", model.BlueFieldPRISM, false},
		{"PRISM HW (proj)", model.ProjectedHardwarePRISM, false},
	}
	var jobs []func() (time.Duration, Telemetry)
	for _, v := range variants {
		for _, prof := range profiles {
			jobs = append(jobs, func() (time.Duration, Telemetry) {
				seed := PointSeed(cfg.Seed, "fig2", v.name, prof.Name)
				env := newMicroEnvPrepared(v.deploy, prof, seed)
				var lat time.Duration
				if v.twoRTT {
					// Pointer read, then data read: two dependent round trips.
					lat = env.measure(func(i int) []wire.Op {
						return []wire.Op{prism.Read(env.reg.Key, env.reg.Base, 8)}
					}) + env.measure(func(i int) []wire.Op {
						return []wire.Op{prism.Read(env.reg.Key, env.reg.Base+4096, microValue)}
					})
				} else {
					lat = env.measure(func(i int) []wire.Op {
						return []wire.Op{prism.ReadIndirect(env.reg.Key, env.reg.Base, microValue)}
					})
				}
				return lat, worldTelemetry(env.e)
			})
		}
	}
	lats, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for vi, v := range variants {
		s := Series{Name: v.name}
		for pi, prof := range profiles {
			lat := lats[vi*len(profiles)+pi]
			s.Points = append(s.Points, Point{Clients: 1, Mean: lat, Median: lat, P99: lat})
			s.Labels = append(s.Labels, prof.Name)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// RPCvsRDMA reproduces the §2.1 motivating measurement: one-sided READ vs
// two-sided RPC for a 512 B object, and the two-READ pointer chase that
// motivates PRISM. §2.1's testbed (40 GbE, different NICs than §4.3's
// direct-connect setup) measures a single READ at 3.2 µs and an eRPC at
// 5.6 µs, making one RPC cheaper than two dependent READs — the paper's
// motivating crossover — so this experiment uses that base latency.
func RPCvsRDMA(cfg Config) *Figure {
	fig := &Figure{
		ID:     "rpcvsrdma",
		Title:  "§2.1: one-sided READ vs two-sided RPC (512 B, 40 GbE testbed)",
		XLabel: "mechanism",
		YLabel: "latency (µs)",
	}
	newEnv := func(name string) *microEnv {
		p := model.Default().WithNetwork(model.Direct)
		p.RDMABaseRTT = 3200 * time.Nanosecond // §2.1's 40 GbE testbed
		env := newMicroEnvWithParams(model.HardwareRDMA, p,
			PointSeed(cfg.Seed, "rpcvsrdma", name, "512B"))
		env.srv.SetRPCHandler(func(payload []byte) ([]byte, time.Duration) {
			// KV-style GET handler: return the 512 B object.
			return make([]byte, microValue), 0
		})
		return env
	}
	names := []string{"one-sided READ", "two-sided RPC", "2x one-sided READs"}
	jobs := []func() (time.Duration, Telemetry){
		func() (time.Duration, Telemetry) {
			env := newEnv(names[0])
			lat := env.measure(func(i int) []wire.Op {
				return []wire.Op{prism.Read(env.reg.Key, env.reg.Base+4096, microValue)}
			})
			return lat, worldTelemetry(env.e)
		},
		func() (time.Duration, Telemetry) {
			env := newEnv(names[1])
			lat := env.measure(func(i int) []wire.Op {
				return []wire.Op{prism.Send([]byte{1})}
			})
			return lat, worldTelemetry(env.e)
		},
		func() (time.Duration, Telemetry) {
			env := newEnv(names[2])
			lat := env.measure(func(i int) []wire.Op {
				return []wire.Op{prism.Read(env.reg.Key, env.reg.Base, 8)}
			}) + env.measure(func(i int) []wire.Op {
				return []wire.Op{prism.Read(env.reg.Key, env.reg.Base+4096, microValue)}
			})
			return lat, worldTelemetry(env.e)
		},
	}
	lats, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for i, name := range names {
		lat := lats[i]
		fig.Series = append(fig.Series, Series{
			Name:   name,
			Points: []Point{{Clients: 1, Mean: lat, Median: lat, P99: lat}},
			Labels: []string{name},
		})
	}
	return fig
}
