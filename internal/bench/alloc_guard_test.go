package bench

import (
	"testing"
	"time"

	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/workload"
)

// Alloc-regression guards for the zero-copy datapath. A full simulated
// PRISM-KV round trip — client op build, fabric delivery, NIC chain
// execution, response completion — must stay allocation-free up to the
// small pooled remainder measured here. The ceilings are deliberately
// above the measured values (GET ≈ 0, PUT ≈ 4 allocs/op at 128-byte
// values) to absorb runtime jitter, but far below the pre-optimization
// baseline (GET 10, PUT ≈ 26), so a pooling regression on any layer of
// the path trips the guard.
const (
	maxGetAllocsPerOp   = 4
	maxPutAllocsPerOp   = 8
	maxChaseAllocsPerOp = 6
	maxScanAllocsPerOp  = 8
)

// Both guards amortize testing.AllocsPerRun over 2000 operations inside
// a single closed-loop client process, after a warmup that fills the
// connection/request/future pools and the server-side arenas.

func TestGetAllocGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	e, mkClient, place := buildPRISMKV(cfg, 42)
	st := mkClient(0)
	var avg float64
	place(0).Go("guard", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if _, err := st.Get(p, int64(i)%cfg.Keys); err != nil {
				t.Errorf("GET: %v", err)
			}
		}
		i := 0
		avg = testing.AllocsPerRun(2000, func() {
			if _, err := st.Get(p, int64(i)%cfg.Keys); err != nil {
				t.Errorf("GET: %v", err)
			}
			i++
		})
	})
	e.Run()
	t.Logf("GET: %.2f allocs/op", avg)
	if avg > maxGetAllocsPerOp {
		t.Fatalf("GET allocates %.2f/op, guard is %d/op — a pooling layer regressed", avg, maxGetAllocsPerOp)
	}
}

// TestSchedulerAllocGuard pins the scheduler's own steady state at zero:
// once the per-domain event pool and burst buffers are warm, a
// schedule/fire cycle through the timer wheel and burst loop — including
// the common retransmission-guard shape of a far timer stopped before it
// fires — must not allocate at all. The event pool, wheel slots, and
// burst queues are all reused storage; any allocation here is a
// regression in the scheduler hot path itself, upstream of every
// datapath number the other guards watch.
func TestSchedulerAllocGuard(t *testing.T) {
	e := sim.NewEngine(7)
	fired := 0
	tick := func() { fired++ }
	// Warm up: fill the event pool and size the burst buffers, spanning
	// enough instants to touch coarse wheel levels and cascades.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, tick)
		e.Schedule(time.Duration(i)*time.Microsecond, tick)
		guard := e.Schedule(time.Duration(i)*time.Microsecond+time.Millisecond, tick)
		e.AtTail(e.Now().Add(time.Duration(i)*time.Microsecond), tick)
		guard.Stop()
	}
	e.Run()
	avg := testing.AllocsPerRun(2000, func() {
		// One steady-state scheduler cycle: a near event that fires, a
		// same-instant tail stage behind it, and a far guard timer that is
		// scheduled and stopped without firing.
		e.Schedule(3*time.Microsecond, tick)
		e.AtTail(e.Now().Add(3*time.Microsecond), tick)
		guard := e.Schedule(900*time.Microsecond, tick)
		if !guard.Stop() {
			t.Error("pending guard timer did not stop")
		}
		e.Run()
	})
	if fired == 0 {
		t.Fatal("warmup fired no events")
	}
	t.Logf("scheduler cycle: %.2f allocs/op (%d warmup fires)", avg, fired)
	if avg > 0 {
		t.Fatalf("scheduler steady state allocates %.2f/op, guard is 0/op — the wheel or burst path regressed", avg)
	}
}

func TestPutAllocGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	e, mkClient, place := buildPRISMKV(cfg, 42)
	st := mkClient(0)
	value := make([]byte, cfg.ValueSize)
	var avg float64
	place(0).Go("guard", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if err := st.Put(p, int64(i)%cfg.Keys, value); err != nil {
				t.Errorf("PUT: %v", err)
			}
		}
		i := 0
		avg = testing.AllocsPerRun(2000, func() {
			if err := st.Put(p, int64(i)%cfg.Keys, value); err != nil {
				t.Errorf("PUT: %v", err)
			}
			i++
		})
	})
	e.Run()
	t.Logf("PUT: %.2f allocs/op", avg)
	if avg > maxPutAllocsPerOp {
		t.Fatalf("PUT allocates %.2f/op, guard is %d/op — a pooling layer regressed", avg, maxPutAllocsPerOp)
	}
}

// TestChaseAllocGuard pins the warmed sim CHASE path: a depth-8 list
// chase — program build into the client's reused scratch, one round
// trip, pooled whole-node result — must stay as lean as a plain GET.
func TestChaseAllocGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ValueSize = 128
	e, mkClient, place := buildChase(cfg, 42, 8)
	cl := mkClient(0)
	key := func(i int) int64 { return (int64(i)%chaseBuckets)*8 + 7 } // tail keys
	var avg float64
	place(0).Go("guard", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if _, err := cl.ChaseGet(p, key(i)); err != nil {
				t.Errorf("CHASE: %v", err)
			}
		}
		i := 0
		avg = testing.AllocsPerRun(2000, func() {
			if _, err := cl.ChaseGet(p, key(i)); err != nil {
				t.Errorf("CHASE: %v", err)
			}
			i++
		})
	})
	e.Run()
	t.Logf("CHASE: %.2f allocs/op", avg)
	if avg > maxChaseAllocsPerOp {
		t.Fatalf("CHASE allocates %.2f/op, guard is %d/op — a pooling layer regressed", avg, maxChaseAllocsPerOp)
	}
}

// TestScanAllocGuard pins the warmed sim SCAN path: one budget-bounded
// window over the hash table into a pooled result buffer, decoded
// in place by the visit callback.
func TestScanAllocGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	cfg.ValueSize = 128
	e, net, _ := measureNet(cfg, 42)
	srv, err := kv.NewServer(rdma.NewServer(net, "server", model.SoftwarePRISM),
		kv.DefaultOptions(cfg.Keys, cfg.ValueSize))
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Mix{Keys: cfg.Keys, ReadFrac: 1, ValueSize: cfg.ValueSize}, 0)
	for k := int64(0); k < cfg.Keys; k++ {
		if err := srv.Load(k, gen.Value(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	cli := rdma.NewClient(net, "cli")
	st := kv.NewClient(cli.Connect(srv.NIC()), srv.Meta(), 1)
	visit := func(key int64, value []byte) error { return nil }
	nslots := srv.Meta().NSlots
	var avg float64
	cli.Domain().Go("guard", func(p *sim.Proc) {
		cursor := int64(0)
		step := func() {
			next, err := st.Scan(p, cursor, 4096, visit)
			if err != nil {
				t.Errorf("SCAN: %v", err)
			}
			cursor = next
			if cursor >= nslots {
				cursor = 0
			}
		}
		for i := 0; i < 500; i++ {
			step()
		}
		avg = testing.AllocsPerRun(2000, step)
	})
	e.Run()
	t.Logf("SCAN: %.2f allocs/op", avg)
	if avg > maxScanAllocsPerOp {
		t.Fatalf("SCAN allocates %.2f/op, guard is %d/op — a pooling layer regressed", avg, maxScanAllocsPerOp)
	}
}
