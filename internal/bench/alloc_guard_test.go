package bench

import (
	"testing"
	"time"

	"prism/internal/sim"
)

// Alloc-regression guards for the zero-copy datapath. A full simulated
// PRISM-KV round trip — client op build, fabric delivery, NIC chain
// execution, response completion — must stay allocation-free up to the
// small pooled remainder measured here. The ceilings are deliberately
// above the measured values (GET ≈ 0, PUT ≈ 4 allocs/op at 128-byte
// values) to absorb runtime jitter, but far below the pre-optimization
// baseline (GET 10, PUT ≈ 26), so a pooling regression on any layer of
// the path trips the guard.
const (
	maxGetAllocsPerOp = 4
	maxPutAllocsPerOp = 8
)

// Both guards amortize testing.AllocsPerRun over 2000 operations inside
// a single closed-loop client process, after a warmup that fills the
// connection/request/future pools and the server-side arenas.

func TestGetAllocGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	e, mkClient, place := buildPRISMKV(cfg, 42)
	st := mkClient(0)
	var avg float64
	place(0).Go("guard", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if _, err := st.Get(p, int64(i)%cfg.Keys); err != nil {
				t.Errorf("GET: %v", err)
			}
		}
		i := 0
		avg = testing.AllocsPerRun(2000, func() {
			if _, err := st.Get(p, int64(i)%cfg.Keys); err != nil {
				t.Errorf("GET: %v", err)
			}
			i++
		})
	})
	e.Run()
	t.Logf("GET: %.2f allocs/op", avg)
	if avg > maxGetAllocsPerOp {
		t.Fatalf("GET allocates %.2f/op, guard is %d/op — a pooling layer regressed", avg, maxGetAllocsPerOp)
	}
}

// TestSchedulerAllocGuard pins the scheduler's own steady state at zero:
// once the per-domain event pool and burst buffers are warm, a
// schedule/fire cycle through the timer wheel and burst loop — including
// the common retransmission-guard shape of a far timer stopped before it
// fires — must not allocate at all. The event pool, wheel slots, and
// burst queues are all reused storage; any allocation here is a
// regression in the scheduler hot path itself, upstream of every
// datapath number the other guards watch.
func TestSchedulerAllocGuard(t *testing.T) {
	e := sim.NewEngine(7)
	fired := 0
	tick := func() { fired++ }
	// Warm up: fill the event pool and size the burst buffers, spanning
	// enough instants to touch coarse wheel levels and cascades.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, tick)
		e.Schedule(time.Duration(i)*time.Microsecond, tick)
		guard := e.Schedule(time.Duration(i)*time.Microsecond+time.Millisecond, tick)
		e.AtTail(e.Now().Add(time.Duration(i)*time.Microsecond), tick)
		guard.Stop()
	}
	e.Run()
	avg := testing.AllocsPerRun(2000, func() {
		// One steady-state scheduler cycle: a near event that fires, a
		// same-instant tail stage behind it, and a far guard timer that is
		// scheduled and stopped without firing.
		e.Schedule(3*time.Microsecond, tick)
		e.AtTail(e.Now().Add(3*time.Microsecond), tick)
		guard := e.Schedule(900*time.Microsecond, tick)
		if !guard.Stop() {
			t.Error("pending guard timer did not stop")
		}
		e.Run()
	})
	if fired == 0 {
		t.Fatal("warmup fired no events")
	}
	t.Logf("scheduler cycle: %.2f allocs/op (%d warmup fires)", avg, fired)
	if avg > 0 {
		t.Fatalf("scheduler steady state allocates %.2f/op, guard is 0/op — the wheel or burst path regressed", avg)
	}
}

func TestPutAllocGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	e, mkClient, place := buildPRISMKV(cfg, 42)
	st := mkClient(0)
	value := make([]byte, cfg.ValueSize)
	var avg float64
	place(0).Go("guard", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if err := st.Put(p, int64(i)%cfg.Keys, value); err != nil {
				t.Errorf("PUT: %v", err)
			}
		}
		i := 0
		avg = testing.AllocsPerRun(2000, func() {
			if err := st.Put(p, int64(i)%cfg.Keys, value); err != nil {
				t.Errorf("PUT: %v", err)
			}
			i++
		})
	})
	e.Run()
	t.Logf("PUT: %.2f allocs/op", avg)
	if avg > maxPutAllocsPerOp {
		t.Fatalf("PUT allocates %.2f/op, guard is %d/op — a pooling layer regressed", avg, maxPutAllocsPerOp)
	}
}
