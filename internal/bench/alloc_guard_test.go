package bench

import (
	"testing"

	"prism/internal/sim"
)

// Alloc-regression guards for the zero-copy datapath. A full simulated
// PRISM-KV round trip — client op build, fabric delivery, NIC chain
// execution, response completion — must stay allocation-free up to the
// small pooled remainder measured here. The ceilings are deliberately
// above the measured values (GET ≈ 0, PUT ≈ 4 allocs/op at 128-byte
// values) to absorb runtime jitter, but far below the pre-optimization
// baseline (GET 10, PUT ≈ 26), so a pooling regression on any layer of
// the path trips the guard.
const (
	maxGetAllocsPerOp = 4
	maxPutAllocsPerOp = 8
)

// Both guards amortize testing.AllocsPerRun over 2000 operations inside
// a single closed-loop client process, after a warmup that fills the
// connection/request/future pools and the server-side arenas.

func TestGetAllocGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	e, mkClient, place := buildPRISMKV(cfg, 42)
	st := mkClient(0)
	var avg float64
	place(0).Go("guard", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if _, err := st.Get(p, int64(i)%cfg.Keys); err != nil {
				t.Errorf("GET: %v", err)
			}
		}
		i := 0
		avg = testing.AllocsPerRun(2000, func() {
			if _, err := st.Get(p, int64(i)%cfg.Keys); err != nil {
				t.Errorf("GET: %v", err)
			}
			i++
		})
	})
	e.Run()
	t.Logf("GET: %.2f allocs/op", avg)
	if avg > maxGetAllocsPerOp {
		t.Fatalf("GET allocates %.2f/op, guard is %d/op — a pooling layer regressed", avg, maxGetAllocsPerOp)
	}
}

func TestPutAllocGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	e, mkClient, place := buildPRISMKV(cfg, 42)
	st := mkClient(0)
	value := make([]byte, cfg.ValueSize)
	var avg float64
	place(0).Go("guard", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			if err := st.Put(p, int64(i)%cfg.Keys, value); err != nil {
				t.Errorf("PUT: %v", err)
			}
		}
		i := 0
		avg = testing.AllocsPerRun(2000, func() {
			if err := st.Put(p, int64(i)%cfg.Keys, value); err != nil {
				t.Errorf("PUT: %v", err)
			}
			i++
		})
	})
	e.Run()
	t.Logf("PUT: %.2f allocs/op", avg)
	if avg > maxPutAllocsPerOp {
		t.Fatalf("PUT allocates %.2f/op, guard is %d/op — a pooling layer regressed", avg, maxPutAllocsPerOp)
	}
}
