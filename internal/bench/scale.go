package bench

import (
	"fmt"
	"time"

	"prism/internal/fabric"
	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/sim"
	"prism/internal/workload"
)

// The fig-scale family sweeps connection count per server until the NIC
// connection-state model produces the Storm-style cliff: each closed-loop
// client owns exactly one queue pair, the fleet of client machines is
// fixed (Config.ScaleMachines), and the ladder (Config.ScaleClients)
// deliberately overshoots the modeled QP context cache. Within capacity
// the curves track the ordinary throughput figures; past it every arrival
// misses, cold fetches serialize on the context-fetch engine, and
// throughput collapses.
//
// The family is deliberately not part of the "all" figure order: its
// fabric enables model.WithConnScaling, so its points are not comparable
// to — and must not perturb — the paper-figure CSV artifacts.

// scaleNet is the fig-scale fabric: the standard measurement fabric with
// the connection-scaling model enabled and the hardware-class cache
// capacity optionally overridden (Config.QPCacheEntries).
func scaleNet(cfg Config, seed int64) (*sim.Engine, *fabric.Network, model.Params) {
	p := model.Default().WithNetwork(model.Rack).WithConnScaling()
	p.CrossRackExtra = cfg.CrossRack
	if cfg.QPCacheEntries > 0 {
		p.HWQPCacheEntries = cfg.QPCacheEntries
	}
	e := sim.NewEngine(seed)
	return e, fabric.New(e, p), p
}

// scaleTune clamps the measurement windows for the sweep: the high end of
// the ladder runs tens of thousands of closed-loop clients, so the paper
// figures' windows would burn wall-clock time without changing the shape
// of the cliff. Only tightens, never loosens, so tests can go smaller.
func scaleTune(cfg Config) Config {
	if cfg.Warmup > 50*time.Microsecond {
		cfg.Warmup = 50 * time.Microsecond
	}
	if cfg.Measure > time.Millisecond {
		cfg.Measure = time.Millisecond
	}
	if cfg.MaxOps == 0 {
		cfg.MaxOps = 40000
	}
	return cfg
}

// scaleSystem is one fig-scale series: a deployment whose QP cache class
// (model.Params.QPCacheFor) decides where its cliff lands.
type scaleSystem struct {
	name  string
	build func(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement)
}

// buildScaleKV builds a PRISM-KV cluster on the connection-scaling
// fabric. Each client gets exactly one data QP and no control QP — the
// sweep's x axis is connections per server, and the GET-only workload
// never reclaims, so a control QP would only double the connection count
// for nothing.
func buildScaleKV(deploy model.Deployment) func(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement) {
	return func(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement) {
		tmpl := kvTemplate(cfg)
		e, net, _ := scaleNet(cfg, seed)
		srv := kv.NewServerFromTemplate(net, "server", deploy, tmpl)
		machines := machineFleet(cfg, net, cfg.ScaleMachines)
		return e, func(id int) kvStore {
			m := machines[id%len(machines)]
			return kv.NewClient(m.Connect(srv.NIC()), srv.Meta(), uint16(id+1))
		}, machinePlacement(machines)
	}
}

func buildScalePilaf(deploy model.Deployment) func(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement) {
	return func(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement) {
		tmpl := pilafTemplate(cfg)
		e, net, p := scaleNet(cfg, seed)
		srv := kv.NewPilafServerFromTemplate(net, "server", deploy, tmpl)
		machines := machineFleet(cfg, net, cfg.ScaleMachines)
		crc := p.PilafCRCCost
		return e, func(id int) kvStore {
			m := machines[id%len(machines)]
			return kv.NewPilafClient(m.Connect(srv.NIC()), srv.Meta(), crc)
		}, machinePlacement(machines)
	}
}

func scaleSystems() []scaleSystem {
	return []scaleSystem{
		{"Pilaf", buildScalePilaf(model.HardwareRDMA)},
		{"PRISM-KV", buildScaleKV(model.ProjectedHardwarePRISM)},
		{"PRISM-KV (software PRISM)", buildScaleKV(model.SoftwarePRISM)},
	}
}

// scalePoint runs one ladder point: nClients single-connection closed-loop
// GET clients against one server.
func scalePoint(sys scaleSystem, cfg Config, nClients int) (Point, Telemetry) {
	cfg = scaleTune(cfg)
	seed := PointSeed(cfg.Seed, "fig-scale", sys.name, fmt.Sprintf("clients=%d", nClients))
	e, mkClient, place := sys.build(cfg, seed)
	d := newLoadDriver(e, cfg)
	for i := 0; i < nClients; i++ {
		st := mkClient(i)
		gen := workload.NewGenerator(workload.Mix{
			Keys: cfg.Keys, ReadFrac: 1, ValueSize: cfg.ValueSize,
		}, clientSeed(seed, i))
		d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
			_, key := gen.Next()
			_, err := st.Get(p, key)
			return 0, err
		})
	}
	pt := d.run(nClients)
	return pt, d.telemetry(e)
}

// FigScale sweeps client (= connection) count per server across the three
// deployment classes until each hits its connection cliff: throughput vs
// clients, 100% GETs, uniform keys. The per-point labels carry the QP
// cache counters — they are virtual-time-deterministic, so the rendered
// CSV stays byte-identical at every -parallel/-intra/-affinity/-sparse
// setting.
func FigScale(cfg Config) *Figure {
	fig := &Figure{
		ID: "fig-scale", Title: "Connection scaling to the QP-cache cliff, 100% GETs, uniform",
		XLabel: "clients (connections per server)", YLabel: "throughput (ops/s)",
	}
	systems := scaleSystems()
	var jobs []func() (Point, Telemetry)
	for _, sys := range systems {
		for _, nClients := range cfg.ScaleClients {
			jobs = append(jobs, func() (Point, Telemetry) { return scalePoint(sys, cfg, nClients) })
		}
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for si, sys := range systems {
		s := Series{Name: sys.name}
		for ci := range cfg.ScaleClients {
			idx := si*len(cfg.ScaleClients) + ci
			pt, tel := pts[idx], tels[idx]
			s.Points = append(s.Points, pt)
			s.Labels = append(s.Labels, fmt.Sprintf(
				"clients=%d  tput=%.0f ops/s  mean=%.2fµs  qp hit/miss/evict=%d/%d/%d",
				pt.Clients, pt.Throughput, float64(pt.Mean)/1e3,
				tel.QPCacheHits, tel.QPCacheMisses, tel.QPCacheEvictions))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
