package bench

import (
	"bytes"
	"testing"
	"time"
)

// scaleTestConfig is a laptop-fast shrink of the fig-scale setup.
func scaleTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Keys = 2048
	cfg.ValueSize = 64
	cfg.ScaleMachines = 16
	cfg.Warmup = 20 * time.Microsecond
	cfg.Measure = 200 * time.Microsecond
	cfg.MaxOps = 4000
	return cfg
}

// TestScaleCliffMovesWithCapacity: the connection cliff is the QP cache
// capacity. At a client count that fits a large cache but thrashes a small
// one, the small-cache run misses on the data path and loses throughput;
// grow the cache past the connection count and the misses — and the
// slowdown — vanish. That is the cliff moving with capacity.
func TestScaleCliffMovesWithCapacity(t *testing.T) {
	sys := scaleSystems()[1] // PRISM-KV (projected hardware): hardware-class cache
	const clients = 96

	small := scaleTestConfig()
	// Past the cliff an op waits out two serialized fetch waves (~2 x 96 x
	// PCIeRTT); the window must span several waves to measure any of them.
	small.Measure = time.Millisecond
	small.QPCacheEntries = 24
	ptSmall, telSmall := scalePoint(sys, small, clients)

	big := scaleTestConfig()
	big.Measure = time.Millisecond
	big.QPCacheEntries = 256
	ptBig, telBig := scalePoint(sys, big, clients)

	if telBig.QPCacheMisses != 0 {
		t.Fatalf("cache above connection count still missed %d times", telBig.QPCacheMisses)
	}
	if telSmall.QPCacheMisses == 0 || telSmall.QPCacheEvictions == 0 {
		t.Fatalf("thrashing cache: misses=%d evictions=%d, want both > 0",
			telSmall.QPCacheMisses, telSmall.QPCacheEvictions)
	}
	if ptSmall.Throughput >= ptBig.Throughput {
		t.Fatalf("past-cliff throughput %.0f not below within-capacity %.0f",
			ptSmall.Throughput, ptBig.Throughput)
	}
	if ptSmall.Mean <= ptBig.Mean {
		t.Fatalf("past-cliff mean latency %v not above within-capacity %v",
			ptSmall.Mean, ptBig.Mean)
	}
}

// TestFigScaleDeterministic: the rendered fig-scale CSV is byte-identical
// across point-level parallelism, domain-level parallelism, affinity
// grouping, and sparse barriers.
func TestFigScaleDeterministic(t *testing.T) {
	base := scaleTestConfig()
	base.ScaleClients = []int{4, 48}
	render := func(cfg Config) string {
		var buf bytes.Buffer
		FigScale(cfg).FprintCSV(&buf)
		return buf.String()
	}
	want := render(base)

	variants := map[string]func(*Config){
		"parallel=4":     func(c *Config) { c.Parallel = 4 },
		"intra=4":        func(c *Config) { c.Intra = 4 },
		"affinity=4":     func(c *Config) { c.ClientsPerDomain = 4 },
		"sparse":         func(c *Config) { c.SparseBarriers = true },
		"sparse+intra=4": func(c *Config) { c.SparseBarriers = true; c.Intra = 4 },
	}
	for name, mut := range variants {
		cfg := base
		mut(&cfg)
		if got := render(cfg); got != want {
			t.Errorf("fig-scale CSV differs under %s:\n--- serial:\n%s--- %s:\n%s",
				name, want, name, got)
		}
	}
}

// TestScaleSparseBarrierSavings: at the mostly-idle low end of the sweep
// (few clients spread over a fixed fleet of machines), sparse scheduling
// elides a large share of barrier sweeps without changing the measurement.
func TestScaleSparseBarrierSavings(t *testing.T) {
	sys := scaleSystems()[1]
	cfg := scaleTestConfig()
	cfg.ScaleMachines = 64 // 4 clients over 64 machines: 60+ idle domains

	dense := cfg
	ptDense, telDense := scalePoint(sys, dense, 4)

	sparse := cfg
	sparse.SparseBarriers = true
	ptSparse, telSparse := scalePoint(sys, sparse, 4)

	if ptDense != ptSparse {
		t.Fatalf("sparse barriers changed the measurement:\ndense  %+v\nsparse %+v", ptDense, ptSparse)
	}
	denseSweeps := telDense.Barriers
	sparseSweeps := telSparse.Barriers
	if telSparse.BarrierSkips == 0 {
		t.Fatal("sparse run elided no barriers on a mostly-idle fleet")
	}
	if sparseSweeps+telSparse.BarrierSkips != denseSweeps {
		t.Fatalf("sweeps %d + skips %d != dense sweeps %d",
			sparseSweeps, telSparse.BarrierSkips, denseSweeps)
	}
	if float64(sparseSweeps) > 0.7*float64(denseSweeps) {
		t.Fatalf("sparse sweeps %d > 70%% of dense %d: idle fleet should elide >= 30%%",
			sparseSweeps, denseSweeps)
	}
	if telSparse.IdleSkips == 0 {
		t.Fatal("active-set scan skipped no idle domains")
	}
}
