package bench

import (
	"bytes"
	"testing"
	"time"
)

// chaseTestConfig is a laptop-fast shrink of the fig-chase setup.
func chaseTestConfig() Config {
	cfg := DefaultConfig()
	cfg.ValueSize = 64
	cfg.Warmup = 20 * time.Microsecond
	cfg.Measure = 200 * time.Microsecond
	cfg.ChaseDepths = []int{1, 4}
	return cfg
}

// TestChaseLatencyShape is the figure's claim at two depths: the per-hop
// client pays one round trip per pointer hop, so its latency grows
// ~linearly with depth; the CHASE program pays one round trip plus a
// per-step NIC charge two orders of magnitude smaller, so its latency is
// sub-linear — and below the per-hop walk — by depth 8.
func TestChaseLatencyShape(t *testing.T) {
	cfg := chaseTestConfig()
	systems := chaseSystems()
	chase, hop := systems[0], systems[1]

	chase1, _ := chasePoint(chase, cfg, 1)
	chase8, telChase8 := chasePoint(chase, cfg, 8)
	hop1, _ := chasePoint(hop, cfg, 1)
	hop8, telHop8 := chasePoint(hop, cfg, 8)

	if r := float64(hop8.Mean) / float64(hop1.Mean); r < 4 {
		t.Fatalf("per-hop depth-8/depth-1 latency ratio %.2f, want ~8 (>= 4)", r)
	}
	if r := float64(chase8.Mean) / float64(chase1.Mean); r > 2 {
		t.Fatalf("chase depth-8/depth-1 latency ratio %.2f, want sub-linear (<= 2)", r)
	}
	if chase8.Mean >= hop8.Mean {
		t.Fatalf("depth-8 chase mean %v not below per-hop %v", chase8.Mean, hop8.Mean)
	}

	// Program telemetry: every chase lookup is one program of exactly
	// depth steps, so steps = 8 x programs and each program saved 7 round
	// trips; the per-hop walk runs no programs at all.
	if telChase8.ProgramOps == 0 {
		t.Fatal("chase point ran no programs")
	}
	if telChase8.StepsExecuted != 8*telChase8.ProgramOps {
		t.Fatalf("steps=%d for %d depth-8 programs, want %d",
			telChase8.StepsExecuted, telChase8.ProgramOps, 8*telChase8.ProgramOps)
	}
	if telChase8.RTTsSaved != 7*telChase8.ProgramOps {
		t.Fatalf("rtts_saved=%d for %d depth-8 programs, want %d",
			telChase8.RTTsSaved, telChase8.ProgramOps, 7*telChase8.ProgramOps)
	}
	if telHop8.ProgramOps != 0 || telHop8.StepsExecuted != 0 {
		t.Fatalf("per-hop walk counted programs: progs=%d steps=%d",
			telHop8.ProgramOps, telHop8.StepsExecuted)
	}
}

// TestFigChaseDeterministic: the rendered fig-chase CSV — including the
// program-counter labels — is byte-identical across point-level
// parallelism, domain-level parallelism, affinity grouping, and sparse
// barriers.
func TestFigChaseDeterministic(t *testing.T) {
	base := chaseTestConfig()
	render := func(cfg Config) string {
		var buf bytes.Buffer
		FigChase(cfg).FprintCSV(&buf)
		return buf.String()
	}
	want := render(base)

	variants := map[string]func(*Config){
		"parallel=4":     func(c *Config) { c.Parallel = 4 },
		"intra=4":        func(c *Config) { c.Intra = 4 },
		"affinity=4":     func(c *Config) { c.ClientsPerDomain = 4 },
		"sparse":         func(c *Config) { c.SparseBarriers = true },
		"sparse+intra=4": func(c *Config) { c.SparseBarriers = true; c.Intra = 4 },
	}
	for name, mut := range variants {
		cfg := base
		mut(&cfg)
		if got := render(cfg); got != want {
			t.Errorf("fig-chase CSV differs under %s:\n--- serial:\n%s--- %s:\n%s",
				name, want, name, got)
		}
	}
}
