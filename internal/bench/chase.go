package bench

import (
	"fmt"
	"math/rand"
	"time"

	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/workload"
)

// The fig-chase family sweeps chain depth over the linked-chain store
// (kv.ChainStore): every lookup targets the tail node of a uniformly
// chosen bucket, so it traverses exactly depth pointer hops. Three
// clients walk the same chains:
//
//   - "PRISM chase": one CHASE verb program per lookup — the NIC follows
//     the pointers and the client pays one round trip regardless of
//     depth (plus the per-step program charge).
//   - "per-hop one-sided": the classic RDMA pattern — one READ round
//     trip per hop, so latency grows linearly with depth.
//   - "RPC": one two-sided round trip; the server's host CPU walks the
//     chain (charged per hop at the same step cost as the program).
//
// Like fig-scale, the family is not part of the "all" figure order: it
// measures a store the paper figures don't use, so its points never
// perturb the paper-figure CSV artifacts.

// chaseBuckets is the bucket count of every fig-chase chain store: wide
// enough that concurrent clients rarely collide on a chain, small enough
// that a point provisions in microseconds.
const chaseBuckets = int64(128)

// chaseTune clamps the measurement windows: a handful of closed-loop
// clients per point converges in a fraction of the paper windows. Only
// tightens, never loosens, so tests can go smaller.
func chaseTune(cfg Config) Config {
	if cfg.Warmup > 50*time.Microsecond {
		cfg.Warmup = 50 * time.Microsecond
	}
	if cfg.Measure > time.Millisecond {
		cfg.Measure = time.Millisecond
	}
	return cfg
}

// chaseSystem is one fig-chase series: a lookup strategy over the
// shared chain layout.
type chaseSystem struct {
	name string
	get  func(p *sim.Proc, c *kv.ChainClient, key int64) ([]byte, error)
}

func chaseSystems() []chaseSystem {
	return []chaseSystem{
		{"PRISM chase (1 RTT)", func(p *sim.Proc, c *kv.ChainClient, key int64) ([]byte, error) {
			return c.ChaseGet(p, key)
		}},
		{"per-hop one-sided", func(p *sim.Proc, c *kv.ChainClient, key int64) ([]byte, error) {
			return c.HopGet(p, key)
		}},
		{"RPC (host CPU walks)", func(p *sim.Proc, c *kv.ChainClient, key int64) ([]byte, error) {
			return c.RPCGet(p, key)
		}},
	}
}

// buildChase provisions a fresh depth-deep chain store and a per-client
// factory on the measurement fabric. Chain stores are cheap to build
// (chaseBuckets*depth value writes), so no template caching is needed.
func buildChase(cfg Config, seed int64, depth int) (*sim.Engine, func(id int) *kv.ChainClient, placement) {
	e, net, _ := measureNet(cfg, seed)
	nic := rdma.NewServer(net, "chain-srv", model.SoftwarePRISM)
	opts := kv.ChainOptions{Buckets: chaseBuckets, Depth: int64(depth), MaxValue: cfg.ValueSize}
	srv, err := kv.NewChainStoreOn(nic, opts)
	if err != nil {
		panic(err)
	}
	gen := workload.NewGenerator(workload.Mix{
		Keys: opts.Buckets * opts.Depth, ReadFrac: 1, ValueSize: cfg.ValueSize,
	}, 0)
	for k := int64(0); k < opts.Buckets*opts.Depth; k++ {
		if err := srv.Load(k, gen.Value(k, 0)); err != nil {
			panic(err)
		}
	}
	machines := clientMachines(cfg, net)
	meta := srv.Meta()
	return e, func(id int) *kv.ChainClient {
		m := machines[id%len(machines)]
		return kv.NewChainClient(m.Connect(nic), meta)
	}, machinePlacement(machines)
}

// chasePoint runs one ladder point: Config.ChaseClients closed-loop
// clients looking up depth-deep tail keys with sys's strategy.
func chasePoint(sys chaseSystem, cfg Config, depth int) (Point, Telemetry) {
	cfg = chaseTune(cfg)
	seed := PointSeed(cfg.Seed, "fig-chase", sys.name, fmt.Sprintf("depth=%d", depth))
	e, mkClient, place := buildChase(cfg, seed, depth)
	d := newLoadDriver(e, cfg)
	for i := 0; i < cfg.ChaseClients; i++ {
		cl := mkClient(i)
		rng := rand.New(rand.NewSource(clientSeed(seed, i)))
		d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
			// The tail key of a uniform bucket: exactly depth hops.
			bucket := rng.Int63n(chaseBuckets)
			key := bucket*int64(depth) + int64(depth) - 1
			_, err := sys.get(p, cl, key)
			return 0, err
		})
	}
	pt := d.run(cfg.ChaseClients)
	return pt, d.telemetry(e)
}

// FigChase sweeps chain depth across the three lookup strategies:
// lookup latency vs pointer hops. The per-point labels carry the verb-
// program counters (programs, steps, round trips saved) — they are
// virtual-time-deterministic, so the rendered CSV stays byte-identical
// at every -parallel/-intra/-affinity/-sparse setting.
func FigChase(cfg Config) *Figure {
	fig := &Figure{
		ID: "fig-chase", Title: "Pointer-chase depth sweep: one verb program vs k round trips",
		XLabel: "chain depth (pointer hops per lookup)", YLabel: "mean lookup latency (µs)",
	}
	systems := chaseSystems()
	var jobs []func() (Point, Telemetry)
	for _, sys := range systems {
		for _, depth := range cfg.ChaseDepths {
			sys, depth := sys, depth
			jobs = append(jobs, func() (Point, Telemetry) { return chasePoint(sys, cfg, depth) })
		}
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for si, sys := range systems {
		s := Series{Name: sys.name}
		for di, depth := range cfg.ChaseDepths {
			idx := si*len(cfg.ChaseDepths) + di
			pt, tel := pts[idx], tels[idx]
			s.Points = append(s.Points, pt)
			s.Labels = append(s.Labels, fmt.Sprintf(
				"depth=%d  mean=%.2fµs  progs=%d steps=%d rtts_saved=%d",
				depth, float64(pt.Mean)/1e3,
				tel.ProgramOps, tel.StepsExecuted, tel.RTTsSaved))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
