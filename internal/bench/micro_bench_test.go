package bench

import (
	"testing"

	"prism/internal/sim"
)

// BenchmarkSimulatedGET measures one full PRISM-KV GET round trip through
// the simulator — client encode, fabric delivery, NIC chain execution
// (indirect read through the slot), response decode — the inner loop of
// every figure point.
func BenchmarkSimulatedGET(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	e, mkClient, place := buildPRISMKV(cfg, 42)
	st := mkClient(0)
	b.ReportAllocs()
	b.ResetTimer()
	place(0).Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := st.Get(p, int64(i)%cfg.Keys); err != nil {
				panic(err)
			}
		}
	})
	e.Run()
}

// BenchmarkSimulatedPUT is the write-side companion: slot probe plus the
// out-of-place ALLOCATE/redirect/indirect-CAS install chain, five NIC
// ops across two round trips.
func BenchmarkSimulatedPUT(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Keys = 1024
	e, mkClient, place := buildPRISMKV(cfg, 42)
	st := mkClient(0)
	value := make([]byte, cfg.ValueSize)
	b.ReportAllocs()
	b.ResetTimer()
	place(0).Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := st.Put(p, int64(i)%cfg.Keys, value); err != nil {
				panic(err)
			}
		}
	})
	e.Run()
}
