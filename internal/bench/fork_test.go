package bench

import (
	"fmt"
	"hash/fnv"
	"testing"

	"prism/internal/memory"
	"prism/internal/model"
	"prism/internal/sim"
	"prism/internal/workload"
)

// spaceChecksum hashes every byte of every region of a space.
func spaceChecksum(t *testing.T, s *memory.Space) uint64 {
	t.Helper()
	h := fnv.New64a()
	for _, r := range s.Regions() {
		fmt.Fprintf(h, "%x/%x/%x:", r.Base, r.Len, r.Key)
		h.Write(r.Bytes())
	}
	return h.Sum64()
}

// txClusterPointWith is txClusterPoint with a pluggable cluster builder,
// so the test can drive the fresh path through the production measurement
// code.
func txClusterPointWith(build func(Config, int64, int, int) (*sim.Engine, func(int) txRunner, placement),
	cfg Config, figID, pointKey string, nShards, keysPerTx, clients int) Point {
	seed := PointSeed(cfg.Seed, figID, "PRISM-TX", pointKey)
	e, mkRunner, place := build(cfg, seed, nShards, keysPerTx)
	d := newLoadDriver(e, cfg)
	for i := 0; i < clients; i++ {
		run := mkRunner(i)
		gen := workload.NewTxGenerator(workload.TxMix{
			Keys: cfg.Keys, ValueSize: cfg.ValueSize, KeysPerTx: keysPerTx,
		}, clientSeed(seed, i))
		d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
			return run(p, gen)
		})
	}
	return d.run(clients)
}

// TestForkedClusterMatchesFresh is the tentpole regression for template
// forking: a cluster instantiated from a copy-on-write template must
// produce byte-identical figure output to one built directly on the
// measurement engine. Loading is engine- and RNG-free for these systems,
// so the two paths are distinguishable only if forking leaks or loses
// state.
func TestForkedClusterMatchesFresh(t *testing.T) {
	cfg := tiny()

	t.Run("prism-kv", func(t *testing.T) {
		tmplSys := kvSystem{"PRISM-KV", buildPRISMKV}
		freshSys := kvSystem{"PRISM-KV", buildPRISMKVFresh}
		var forked, fresh Series
		forked.Name, fresh.Name = "PRISM-KV", "PRISM-KV"
		for _, n := range cfg.ClientCounts {
			// 50% writes so forks diverge hard from the template image.
			fpt, _ := kvPoint(tmplSys, cfg, "forkeq", 0.5, n)
			npt, _ := kvPoint(freshSys, cfg, "forkeq", 0.5, n)
			forked.Points = append(forked.Points, fpt)
			fresh.Points = append(fresh.Points, npt)
		}
		a := render(&Figure{ID: "forkeq", Series: []Series{forked}})
		b := render(&Figure{ID: "forkeq", Series: []Series{fresh}})
		if a != b {
			t.Fatalf("template-forked CSV differs from fresh-built:\nforked:\n%s\nfresh:\n%s", a, b)
		}
	})

	t.Run("prism-rs", func(t *testing.T) {
		for _, n := range cfg.ClientCounts {
			forked, _ := rsPoint(rsSystem{"PRISM-RS", buildPRISMRS}, cfg, "forkeq-rs", 0.4, n)
			fresh, _ := rsPoint(rsSystem{"PRISM-RS", buildPRISMRSFresh}, cfg, "forkeq-rs", 0.4, n)
			if forked != fresh {
				t.Fatalf("clients=%d: forked %+v != fresh %+v", n, forked, fresh)
			}
		}
	})

	t.Run("prism-tx", func(t *testing.T) {
		forked, _ := txPoint(txSystem{"PRISM-TX", buildPRISMTX}, cfg, "forkeq-tx", 0.8, 32)
		fresh, _ := txPoint(txSystem{"PRISM-TX", buildPRISMTXFresh}, cfg, "forkeq-tx", 0.8, 32)
		if forked != fresh {
			t.Fatalf("forked %+v != fresh %+v", forked, fresh)
		}
	})

	t.Run("tx-cluster", func(t *testing.T) {
		forked := txClusterPointWith(buildTXCluster, cfg, "forkeq-txc", "k", 2, 2, 16)
		fresh := txClusterPointWith(buildTXClusterFresh, cfg, "forkeq-txc", "k", 2, 2, 16)
		if forked != fresh {
			t.Fatalf("forked %+v != fresh %+v", forked, fresh)
		}
	})
}

// TestForkWritesInvisibleOutsideFork runs a write-heavy point twice from
// the same cached template, with checksums of the template's sealed memory
// taken around each run: the parent image must never change, and the two
// runs must agree exactly (a leak from the first fork into the template or
// a sibling would skew the second).
func TestForkWritesInvisibleOutsideFork(t *testing.T) {
	cfg := tiny()
	tmpl := kvTemplate(cfg)
	before := spaceChecksum(t, tmpl.NIC().Snapshot().Space())

	sys := kvSystem{"PRISM-KV", buildPRISMKV}
	first, _ := kvPoint(sys, cfg, "fork-iso", 0.0, 32) // 100% writes
	if mid := spaceChecksum(t, tmpl.NIC().Snapshot().Space()); mid != before {
		t.Fatalf("template bytes changed during a forked run: %#x -> %#x", before, mid)
	}
	second, _ := kvPoint(sys, cfg, "fork-iso", 0.0, 32)
	if first != second {
		t.Fatalf("repeat run from same template differs: %+v vs %+v", first, second)
	}
	if after := spaceChecksum(t, tmpl.NIC().Snapshot().Space()); after != before {
		t.Fatalf("template bytes changed after forked runs: %#x -> %#x", before, after)
	}
}

// TestPilafTemplateBuildDeterministic rebuilds the Pilaf template from
// scratch and checks a measurement point reproduces exactly. (Pilaf loads
// via engine-staged tear-delayed stores, so unlike the other systems its
// fresh path is not directly comparable; template-build determinism is the
// equivalent guarantee.)
func TestPilafTemplateBuildDeterministic(t *testing.T) {
	cfg := tiny()
	sys := kvSystem{"Pilaf", buildPilaf(model.SoftwarePRISM)}
	a, _ := kvPoint(sys, cfg, "forkeq-pilaf", 0.5, 32)
	sum1 := spaceChecksum(t, pilafTemplate(cfg).NIC().Snapshot().Space())
	resetTemplateCache()
	b, _ := kvPoint(sys, cfg, "forkeq-pilaf", 0.5, 32)
	sum2 := spaceChecksum(t, pilafTemplate(cfg).NIC().Snapshot().Space())
	if a != b {
		t.Fatalf("point from rebuilt template differs: %+v vs %+v", a, b)
	}
	if sum1 != sum2 {
		t.Fatalf("independently built templates differ: %#x vs %#x", sum1, sum2)
	}
}
