package bench

import (
	"fmt"
	"time"

	"prism/internal/abd"
	"prism/internal/alloc"
	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/prism"
	"prism/internal/sim"
	"prism/internal/wire"
	"prism/internal/workload"
)

// Ablations of the design choices DESIGN.md §5 calls out. Each returns a
// small categorical Figure comparing the design as-built against the
// alternative.

// AblationABDWriteback measures PRISM-RS GET latency with and without the
// classic ABD read optimization (skip the write-back phase when all f+1
// read-phase tags agree). The paper's protocol always writes back; the
// optimization halves uncontended GETs to one round trip.
func AblationABDWriteback(cfg Config) *Figure {
	fig := &Figure{
		ID:     "ablation-abd-writeback",
		Title:  "PRISM-RS GET: always write back (paper) vs skip-if-agreed",
		XLabel: "variant", YLabel: "mean GET latency (µs)",
	}
	variants := []bool{false, true}
	names := []string{"always write back (paper)", "skip write-back when tags agree"}
	jobs := make([]func() (Point, Telemetry), 0, len(variants))
	for vi, skip := range variants {
		jobs = append(jobs, func() (Point, Telemetry) {
			seed := PointSeed(cfg.Seed, fig.ID, names[vi], "clients=16")
			e, mkClient, place := buildPRISMRS(cfg, seed, 0)
			d := newLoadDriver(e, cfg)
			const clients = 16
			for i := 0; i < clients; i++ {
				st := mkClient(i).(*abd.Client)
				st.SkipWriteBackIfAgreed = skip
				gen := workload.NewGenerator(workload.Mix{
					Keys: cfg.Keys, ReadFrac: 1.0, ValueSize: cfg.ValueSize,
				}, clientSeed(seed, i))
				d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
					_, key := gen.Next()
					_, err := st.Get(p, key)
					return 0, err
				})
			}
			pt := d.run(clients)
			return pt, d.telemetry(e)
		})
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for vi, pt := range pts {
		fig.Series = append(fig.Series, Series{
			Name:   names[vi],
			Points: []Point{pt},
			Labels: []string{fmt.Sprintf("mean=%.2fµs p99=%.2fµs", float64(pt.Mean)/1e3, float64(pt.P99)/1e3)},
		})
	}
	return fig
}

// AblationKVSlotCache measures PRISM-KV PUT latency with and without the
// slot cache the paper's §6.2 parenthetical describes: read-modify-write
// workloads can skip the slot-probe round trip, halving PUTs to one round
// trip.
func AblationKVSlotCache(cfg Config) *Figure {
	fig := &Figure{
		ID:     "ablation-kv-slotcache",
		Title:  "PRISM-KV PUT: probe every time (paper's pessimal case) vs cached slot",
		XLabel: "variant", YLabel: "mean PUT latency (µs)",
	}
	// A read-modify-write loop over a small working set, so the cache has
	// hits (each client revisits its keys many times).
	cfg.Keys = 16
	variants := []bool{false, true}
	names := []string{"probe + chain (2 RTs)", "cached slot + chain (1 RT)"}
	jobs := make([]func() (Point, Telemetry), 0, len(variants))
	for vi, cache := range variants {
		jobs = append(jobs, func() (Point, Telemetry) {
			seed := PointSeed(cfg.Seed, fig.ID, names[vi], "clients=16")
			e, mkClient, place := buildPRISMKV(cfg, seed)
			d := newLoadDriver(e, cfg)
			const clients = 16
			for i := 0; i < clients; i++ {
				st := mkClient(i).(*kv.Client)
				st.SlotCache = cache
				gen := workload.NewGenerator(workload.Mix{
					Keys: cfg.Keys, ReadFrac: 0, ValueSize: cfg.ValueSize,
				}, clientSeed(seed, i))
				ver := 0
				d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
					_, key := gen.Next()
					ver++
					return 0, st.Put(p, key, gen.Value(key, ver))
				})
			}
			pt := d.run(clients)
			return pt, d.telemetry(e)
		})
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for vi, pt := range pts {
		fig.Series = append(fig.Series, Series{
			Name:   names[vi],
			Points: []Point{pt},
			Labels: []string{fmt.Sprintf("mean=%.2fµs", float64(pt.Mean)/1e3)},
		})
	}
	return fig
}

// AblationRedirectTarget measures the out-of-place update chain on the
// projected hardware NIC with redirect targets in on-NIC memory (§4.2's
// recommendation) vs in host memory (one extra PCIe round trip per
// redirected op).
func AblationRedirectTarget(cfg Config) *Figure {
	fig := &Figure{
		ID:     "ablation-redirect-target",
		Title:  "Chain redirect target on the projected NIC: on-NIC vs host memory",
		XLabel: "variant", YLabel: "chain round trip (µs)",
	}
	variants := []bool{false, true}
	names := []string{"on-NIC temp storage (§4.2)", "host-memory temp storage"}
	jobs := make([]func() (time.Duration, Telemetry), 0, len(variants))
	for vi, host := range variants {
		jobs = append(jobs, func() (time.Duration, Telemetry) {
			p := model.Default().WithNetwork(model.Direct)
			p.RedirectToHostMem = host
			env := newMicroEnvWithParams(model.ProjectedHardwarePRISM, p,
				PointSeed(cfg.Seed, fig.ID, names[vi], "chain"))
			var tag uint64 = 1
			lat := env.measure(func(i int) []wire.Op {
				tag++
				tagBytes := make([]byte, 8)
				prism.PutBE64(tagBytes, 0, tag)
				tmp := env.conn.TempAddr
				return []wire.Op{
					prism.Write(env.conn.TempKey, tmp, tagBytes),
					prism.Conditional(prism.RedirectTo(prism.Allocate(1, make([]byte, microValue)), env.conn.TempKey, tmp+8)),
					prism.Conditional(prism.CASIndirectData(env.reg.Key, env.reg.Base+64, wire.CASGt, tmp,
						prism.FieldMask(16, 0, 8), prism.FullMask(16))),
				}
			})
			return lat, worldTelemetry(env.e)
		})
	}
	lats, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for vi, lat := range lats {
		fig.Series = append(fig.Series, Series{
			Name:   names[vi],
			Points: []Point{{Clients: 1, Mean: lat, Median: lat, P99: lat}},
			Labels: []string{fmt.Sprintf("chain RTT %.2fµs", float64(lat)/1e3)},
		})
	}
	return fig
}

// AblationFreelistClasses quantifies §3.2's space/simplicity tradeoff:
// provisioning one free list per power-of-two size class vs a single list
// of max-size buffers, for a mixed-size object population. It reports how
// many objects fit in a fixed byte budget and the resulting space
// overhead.
func AblationFreelistClasses(cfg Config) *Figure {
	fig := &Figure{
		ID:     "ablation-freelist-classes",
		Title:  "ALLOCATE buffer provisioning: power-of-two classes vs single class",
		XLabel: "variant", YLabel: "objects stored in a fixed byte budget",
	}
	// Object sizes: mixed 64..maxEntry bytes, skewed toward small.
	sizes := make([]uint64, 512)
	rng := sim.NewEngine(cfg.Seed).Rand()
	maxSize := uint64(cfg.ValueSize)
	for i := range sizes {
		// Log-uniform-ish mix of small and large objects.
		s := uint64(16) << rng.Intn(6) // 16..512
		if s > maxSize {
			s = maxSize
		}
		sizes[i] = s
	}
	budget := uint64(len(sizes)) * maxSize / 2 // can't fit all at max size

	type variant struct {
		name    string
		classes []uint64
	}
	variants := []variant{
		{"power-of-two classes (§3.2)", alloc.SizeClasses(64, maxSize)},
		{"single max-size class", []uint64{maxSize}},
	}
	for _, v := range variants {
		// Provision lists proportionally to demand per class, within the
		// byte budget, then count how many of the population's objects can
		// be stored and the wasted bytes.
		stored := 0
		used := uint64(0)
		waste := uint64(0)
		for _, s := range sizes {
			i, err := alloc.ClassFor(v.classes, s)
			if err != nil {
				continue
			}
			if used+v.classes[i] > budget {
				continue
			}
			used += v.classes[i]
			waste += v.classes[i] - s
			stored++
		}
		overhead := float64(waste) / float64(used)
		fig.Series = append(fig.Series, Series{
			Name:   v.name,
			Points: []Point{{Clients: 1, Throughput: float64(stored)}},
			Labels: []string{fmt.Sprintf("stored %d/%d objects, %.0f%% bytes wasted", stored, len(sizes), overhead*100)},
		})
	}
	return fig
}
