package bench

import (
	"fmt"
	"math/rand"

	"prism/internal/abd"
	"prism/internal/fabric"
	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/tx"
	"prism/internal/workload"
)

// kvStore abstracts PRISM-KV and Pilaf clients for the shared driver.
type kvStore interface {
	Get(p *sim.Proc, key int64) ([]byte, error)
	Put(p *sim.Proc, key int64, value []byte) error
}

// placement maps a client id to the event domain of the machine the
// client runs on. Driver processes must be spawned on their machine's
// domain so that under domain-parallel execution every client runs —
// and records measurements — alongside its own NIC.
type placement func(id int) *sim.Engine

// kvSystem builds a fresh loaded cluster and a per-client store factory.
type kvSystem struct {
	name  string
	build func(cfg Config, seed int64) (e *sim.Engine, mkClient func(id int) kvStore, place placement)
}

// clientMachines provisions the standard client-machine fleet. With
// Config.ClientsPerDomain > 1 machines are co-located into affinity
// groups of that size; with Config.CrossRack > 0 they are placed in rack
// 1, opposite the servers (which stay in rack 0). Neither knob changes
// measured output.
func clientMachines(cfg Config, net *fabric.Network) []*rdma.Client {
	return machineFleet(cfg, net, cfg.ClientMachines)
}

// machineFleet provisions n client machines under the config's placement
// knobs. clientMachines sizes the fleet for the paper figures; the
// fig-scale sweep passes Config.ScaleMachines instead.
func machineFleet(cfg Config, net *fabric.Network, n int) []*rdma.Client {
	machines := make([]*rdma.Client, n)
	for i := range machines {
		name := fmt.Sprintf("cli-%d", i)
		if cfg.ClientsPerDomain > 1 {
			machines[i] = rdma.NewClientInGroup(net, name, i/cfg.ClientsPerDomain)
		} else {
			machines[i] = rdma.NewClient(net, name)
		}
		if cfg.CrossRack > 0 {
			machines[i].Node().SetRack(1)
		}
	}
	return machines
}

// machinePlacement is the standard id -> machine-domain rule, the same
// modulo the client factories use to pick a machine.
func machinePlacement(machines []*rdma.Client) placement {
	return func(id int) *sim.Engine { return machines[id%len(machines)].Domain() }
}

func buildPRISMKV(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement) {
	tmpl := kvTemplate(cfg)
	e, net, _ := measureNet(cfg, seed)
	srv := kv.NewServerFromTemplate(net, "server", model.SoftwarePRISM, tmpl)
	mk, place := kvClientFactory(cfg, net, srv)
	return e, mk, place
}

// buildPRISMKVFresh is the pre-template construction path: build and load
// the server directly on the measurement engine. Loading touches neither
// the engine nor its RNG, so buildPRISMKV is bit-identical to it —
// TestForkedClusterMatchesFresh holds the two against each other.
func buildPRISMKVFresh(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement) {
	e, net, _ := measureNet(cfg, seed)
	srv, err := kv.NewServer(rdma.NewServer(net, "server", model.SoftwarePRISM),
		kv.DefaultOptions(cfg.Keys, cfg.ValueSize))
	if err != nil {
		panic(err)
	}
	gen := workload.NewGenerator(workload.Mix{Keys: cfg.Keys, ReadFrac: 1, ValueSize: cfg.ValueSize}, seed)
	for k := int64(0); k < cfg.Keys; k++ {
		if err := srv.Load(k, gen.Value(k, 0)); err != nil {
			panic(err)
		}
	}
	mk, place := kvClientFactory(cfg, net, srv)
	return e, mk, place
}

func kvClientFactory(cfg Config, net *fabric.Network, srv *kv.Server) (func(int) kvStore, placement) {
	machines := clientMachines(cfg, net)
	return func(id int) kvStore {
		m := machines[id%len(machines)]
		c := kv.NewClient(m.Connect(srv.NIC()), srv.Meta(), uint16(id+1))
		c.CtrlConn = m.Connect(srv.NIC()) // reclamation rides a control QP
		c.FreeBatch = 4                   // keep unreclaimed churn small under heavy write load
		return c
	}, machinePlacement(machines)
}

func buildPilaf(deploy model.Deployment) func(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement) {
	return func(cfg Config, seed int64) (*sim.Engine, func(int) kvStore, placement) {
		tmpl := pilafTemplate(cfg)
		e, net, p := measureNet(cfg, seed)
		srv := kv.NewPilafServerFromTemplate(net, "server", deploy, tmpl)
		machines := clientMachines(cfg, net)
		crc := p.PilafCRCCost
		return e, func(id int) kvStore {
			m := machines[id%len(machines)]
			return kv.NewPilafClient(m.Connect(srv.NIC()), srv.Meta(), crc)
		}, machinePlacement(machines)
	}
}

// kvPoint runs one ladder point of a KV system: a self-contained
// simulation whose every RNG derives from the point's identity.
func kvPoint(sys kvSystem, cfg Config, figID string, readFrac float64, nClients int) (Point, Telemetry) {
	seed := PointSeed(cfg.Seed, figID, sys.name, fmt.Sprintf("clients=%d", nClients))
	e, mkClient, place := sys.build(cfg, seed)
	d := newLoadDriver(e, cfg)
	for i := 0; i < nClients; i++ {
		st := mkClient(i)
		gen := workload.NewGenerator(workload.Mix{
			Keys: cfg.Keys, ReadFrac: readFrac, ValueSize: cfg.ValueSize,
		}, clientSeed(seed, i))
		ver := 0
		d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
			kind, key := gen.Next()
			if kind == workload.OpGet {
				_, err := st.Get(p, key)
				return 0, err
			}
			ver++
			return 0, st.Put(p, key, gen.Value(key, ver))
		})
	}
	pt := d.run(nClients)
	return pt, d.telemetry(e)
}

// kvCurve sweeps the client ladder for one system and workload mix.
func kvCurve(sys kvSystem, cfg Config, figID string, readFrac float64) Series {
	jobs := make([]func() (Point, Telemetry), 0, len(cfg.ClientCounts))
	for _, nClients := range cfg.ClientCounts {
		jobs = append(jobs, func() (Point, Telemetry) { return kvPoint(sys, cfg, figID, readFrac, nClients) })
	}
	pts, _, _ := runPointJobs(cfg.Parallel, jobs)
	return Series{Name: sys.name, Points: pts}
}

// Fig3 reproduces Figure 3: PRISM-KV vs Pilaf (hardware and software
// RDMA), 100% reads, uniform distribution — throughput vs latency.
func Fig3(cfg Config) *Figure {
	return kvFigure(cfg, "fig3", "PRISM-KV vs Pilaf, 100% reads, uniform", 1.0)
}

// Fig4 reproduces Figure 4: the same comparison at 50% reads (YCSB-A).
func Fig4(cfg Config) *Figure {
	return kvFigure(cfg, "fig4", "PRISM-KV vs Pilaf, 50% reads, uniform", 0.5)
}

func kvFigure(cfg Config, id, title string, readFrac float64) *Figure {
	fig := &Figure{ID: id, Title: title, XLabel: "throughput (ops/s)", YLabel: "mean latency (µs)"}
	systems := []kvSystem{
		{"Pilaf", buildPilaf(model.HardwareRDMA)},
		{"Pilaf (software RDMA)", buildPilaf(model.SoftwarePRISM)},
		{"PRISM-KV", buildPRISMKV},
	}
	// One flat job list across all series, so the pool drains every point
	// of the figure concurrently, then reassemble per series.
	var jobs []func() (Point, Telemetry)
	for _, sys := range systems {
		for _, nClients := range cfg.ClientCounts {
			jobs = append(jobs, func() (Point, Telemetry) { return kvPoint(sys, cfg, id, readFrac, nClients) })
		}
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for si, sys := range systems {
		fig.Series = append(fig.Series, Series{
			Name:   sys.name,
			Points: pts[si*len(cfg.ClientCounts) : (si+1)*len(cfg.ClientCounts)],
		})
	}
	return fig
}

// --- PRISM-RS / ABDLOCK (Figures 6, 7) ---

type blockStore interface {
	Get(p *sim.Proc, block int64) ([]byte, error)
	Put(p *sim.Proc, block int64, value []byte) error
}

type rsSystem struct {
	name  string
	build func(cfg Config, seed int64, theta float64) (*sim.Engine, func(int) blockStore, placement)
}

func buildPRISMRS(cfg Config, seed int64, _ float64) (*sim.Engine, func(int) blockStore, placement) {
	// The three replicas of a group are identical after initialization, so
	// one template serves all of them — each on its own COW fork.
	tmpl := rsTemplate(cfg)
	e, net, _ := measureNet(cfg, seed)
	const nReplicas = 3
	replicas := make([]*abd.Replica, nReplicas)
	for i := range replicas {
		replicas[i] = abd.NewReplicaFromTemplate(net, fmt.Sprintf("replica-%d", i), model.SoftwarePRISM, tmpl)
	}
	mk, place := rsClientFactory(cfg, net, replicas)
	return e, mk, place
}

// buildPRISMRSFresh is the pre-template path, kept for the fork-vs-fresh
// equivalence test (see buildPRISMKVFresh).
func buildPRISMRSFresh(cfg Config, seed int64, _ float64) (*sim.Engine, func(int) blockStore, placement) {
	e, net, _ := measureNet(cfg, seed)
	const nReplicas = 3
	replicas := make([]*abd.Replica, nReplicas)
	for i := range replicas {
		nic := rdma.NewServer(net, fmt.Sprintf("replica-%d", i), model.SoftwarePRISM)
		r, err := abd.NewReplica(nic, abd.ReplicaOptions{
			NBlocks:   cfg.Keys,
			BlockSize: cfg.ValueSize,
			// Generous slack: writes in flight before reclamation lands.
			ExtraBuffers: 4096,
		})
		if err != nil {
			panic(err)
		}
		replicas[i] = r
	}
	mk, place := rsClientFactory(cfg, net, replicas)
	return e, mk, place
}

func rsClientFactory(cfg Config, net *fabric.Network, replicas []*abd.Replica) (func(int) blockStore, placement) {
	machines := clientMachines(cfg, net)
	return func(id int) blockStore {
		m := machines[id%len(machines)]
		conns := make([]*rdma.Conn, len(replicas))
		metas := make([]abd.Meta, len(replicas))
		for i, r := range replicas {
			conns[i] = m.Connect(r.NIC())
			metas[i] = r.Meta()
		}
		c := abd.NewClient(uint16(id+1), conns, metas)
		ctrl := make([]*rdma.Conn, len(replicas))
		for i, r := range replicas {
			ctrl[i] = m.Connect(r.NIC())
		}
		c.UseControlConns(ctrl) // reclamation rides control QPs
		c.FreeBatch = 8
		return c
	}, machinePlacement(machines)
}

func buildABDLOCK(deploy model.Deployment) func(cfg Config, seed int64, theta float64) (*sim.Engine, func(int) blockStore, placement) {
	return func(cfg Config, seed int64, _ float64) (*sim.Engine, func(int) blockStore, placement) {
		tmpl := lockTemplate(cfg)
		e, net, _ := measureNet(cfg, seed)
		const nReplicas = 3
		replicas := make([]*abd.LockReplica, nReplicas)
		for i := range replicas {
			replicas[i] = abd.NewLockReplicaFromTemplate(net, fmt.Sprintf("replica-%d", i), deploy, tmpl)
		}
		machines := clientMachines(cfg, net)
		return e, func(id int) blockStore {
			m := machines[id%len(machines)]
			conns := make([]*rdma.Conn, nReplicas)
			metas := make([]abd.LockMeta, nReplicas)
			for i, r := range replicas {
				conns[i] = m.Connect(r.NIC())
				metas[i] = r.Meta()
			}
			// Backoff jitter draws from a per-client RNG stream derived
			// from the point seed. A shared domain RNG would make the
			// draw sequence each client sees depend on which machines
			// share a domain — per-client streams keep output identical
			// at any affinity grouping. The complemented base keeps the
			// stream decorrelated from the client's workload generator,
			// which uses clientSeed(seed, id) directly.
			jit := rand.New(rand.NewSource(clientSeed(^seed, id))).Float64
			return abd.NewLockClient(uint16(id+1), conns, metas, jit)
		}, machinePlacement(machines)
	}
}

// rsPoint runs one contention/ladder point of a replicated-storage system.
func rsPoint(sys rsSystem, cfg Config, figID string, theta float64, nClients int) (Point, Telemetry) {
	seed := PointSeed(cfg.Seed, figID, sys.name,
		fmt.Sprintf("theta=%.2f/clients=%d", theta, nClients))
	e, mkClient, place := sys.build(cfg, seed, theta)
	d := newLoadDriver(e, cfg)
	for i := 0; i < nClients; i++ {
		st := mkClient(i)
		gen := workload.NewGenerator(workload.Mix{
			Keys: cfg.Keys, ReadFrac: 0.5, ValueSize: cfg.ValueSize, Theta: theta,
		}, clientSeed(seed, i))
		ver := 0
		d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
			kind, key := gen.Next()
			if kind == workload.OpGet {
				_, err := st.Get(p, key)
				return 0, err
			}
			ver++
			return 0, st.Put(p, key, gen.Value(key, ver))
		})
	}
	pt := d.run(nClients)
	return pt, d.telemetry(e)
}

// Fig6 reproduces Figure 6: PRISM-RS vs lock-based ABD, 50% writes,
// uniform — throughput vs latency, 3 replicas.
func Fig6(cfg Config) *Figure {
	fig := &Figure{
		ID: "fig6", Title: "PRISM-RS vs ABDLOCK, 50% writes, uniform, 3 replicas",
		XLabel: "throughput (ops/s)", YLabel: "mean latency (µs)",
	}
	systems := []rsSystem{
		{"ABDLOCK", buildABDLOCK(model.HardwareRDMA)},
		{"ABDLOCK (software RDMA)", buildABDLOCK(model.SoftwarePRISM)},
		{"PRISM-RS", buildPRISMRS},
	}
	var jobs []func() (Point, Telemetry)
	for _, sys := range systems {
		for _, nClients := range cfg.ClientCounts {
			jobs = append(jobs, func() (Point, Telemetry) { return rsPoint(sys, cfg, "fig6", 0, nClients) })
		}
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for si, sys := range systems {
		fig.Series = append(fig.Series, Series{
			Name:   sys.name,
			Points: pts[si*len(cfg.ClientCounts) : (si+1)*len(cfg.ClientCounts)],
		})
	}
	return fig
}

// Fig7 reproduces Figure 7: latency under contention — 100 closed-loop
// clients, Zipf coefficient swept from 0 to 1.2.
func Fig7(cfg Config) *Figure {
	fig := &Figure{
		ID: "fig7", Title: "PRISM-RS vs ABDLOCK under contention (100 clients)",
		XLabel: "Zipf coefficient", YLabel: "mean latency (µs)",
	}
	thetas := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.1, 1.2}
	systems := []rsSystem{
		{"ABDLOCK", buildABDLOCK(model.HardwareRDMA)},
		{"PRISM-RS", buildPRISMRS},
	}
	const clients = 100
	var jobs []func() (Point, Telemetry)
	for _, sys := range systems {
		for _, theta := range thetas {
			jobs = append(jobs, func() (Point, Telemetry) { return rsPoint(sys, cfg, "fig7", theta, clients) })
		}
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for si, sys := range systems {
		s := Series{Name: sys.name}
		for ti, theta := range thetas {
			pt := pts[si*len(thetas)+ti]
			s.Points = append(s.Points, pt)
			s.Labels = append(s.Labels, fmt.Sprintf("zipf=%.2f  mean=%.2fµs  p99=%.2fµs",
				theta, float64(pt.Mean)/1e3, float64(pt.P99)/1e3))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// --- PRISM-TX / FaRM (Figures 9, 10) ---

type txSystem struct {
	name  string
	build func(cfg Config, seed int64) (*sim.Engine, func(int) txRunner, placement)
}

// txRunner executes one YCSB-T read-modify-write transaction, retrying
// aborts until commit; returns the number of aborts.
type txRunner func(p *sim.Proc, gen *workload.TxGenerator) (aborts int64, err error)

// txHandle is the per-transaction surface shared by PRISM-TX and FaRM.
type txHandle interface {
	Read(p *sim.Proc, key int64) ([]byte, error)
	Write(key int64, value []byte)
	Commit(p *sim.Proc) (tx.Timestamp, error)
}

// rmwRunner wraps a Begin function in the standard YCSB-T
// read-modify-write retry loop.
func rmwRunner(begin func() txHandle) txRunner {
	ver := 0
	return func(p *sim.Proc, g *workload.TxGenerator) (int64, error) {
		keys := g.Next()
		var aborts int64
		for {
			t := begin()
			for _, k := range keys {
				old, err := t.Read(p, k)
				if err != nil {
					return aborts, err
				}
				ver++
				nv := append([]byte(nil), old...)
				if len(nv) > 0 {
					nv[0] ^= byte(ver)
				}
				t.Write(k, nv)
			}
			if _, err := t.Commit(p); err == nil {
				return aborts, nil
			}
			aborts++
		}
	}
}

func buildPRISMTX(cfg Config, seed int64) (*sim.Engine, func(int) txRunner, placement) {
	tmpl := txTemplate(cfg)
	e, net, _ := measureNet(cfg, seed)
	shard := tx.NewShardFromTemplate(net, "shard", model.SoftwarePRISM, tmpl)
	mk, place := prismTXClientFactory(cfg, net, shard)
	return e, mk, place
}

// buildPRISMTXFresh is the pre-template path, kept for the fork-vs-fresh
// equivalence test (see buildPRISMKVFresh).
func buildPRISMTXFresh(cfg Config, seed int64) (*sim.Engine, func(int) txRunner, placement) {
	e, net, _ := measureNet(cfg, seed)
	shard, err := tx.NewShard(rdma.NewServer(net, "shard", model.SoftwarePRISM),
		tx.ShardOptions{NSlots: cfg.Keys, MaxValue: cfg.ValueSize, ExtraBuffers: 8192})
	if err != nil {
		panic(err)
	}
	gen := workload.NewTxGenerator(workload.TxMix{Keys: cfg.Keys, ValueSize: cfg.ValueSize, KeysPerTx: 1}, seed)
	for k := int64(0); k < cfg.Keys; k++ {
		if err := shard.Load(k, gen.Value(k, 0)); err != nil {
			panic(err)
		}
	}
	mk, place := prismTXClientFactory(cfg, net, shard)
	return e, mk, place
}

func prismTXClientFactory(cfg Config, net *fabric.Network, shard *tx.Shard) (func(int) txRunner, placement) {
	machines := clientMachines(cfg, net)
	return func(id int) txRunner {
		m := machines[id%len(machines)]
		c := tx.NewClient(uint16(id+1), []*rdma.Conn{m.Connect(shard.NIC())}, []tx.Meta{shard.Meta()})
		c.UseControlConns([]*rdma.Conn{m.Connect(shard.NIC())})
		return rmwRunner(func() txHandle { return c.Begin() })
	}, machinePlacement(machines)
}

func buildFaRM(deploy model.Deployment) func(cfg Config, seed int64) (*sim.Engine, func(int) txRunner, placement) {
	return func(cfg Config, seed int64) (*sim.Engine, func(int) txRunner, placement) {
		tmpl := farmTemplate(cfg)
		e, net, _ := measureNet(cfg, seed)
		srv := tx.NewFarmServerFromTemplate(net, "shard", deploy, tmpl)
		machines := clientMachines(cfg, net)
		return e, func(id int) txRunner {
			m := machines[id%len(machines)]
			c := tx.NewFarmClient(uint16(id+1), []*rdma.Conn{m.Connect(srv.NIC())}, []tx.FarmMeta{srv.Meta()})
			return rmwRunner(func() txHandle { return c.Begin() })
		}, machinePlacement(machines)
	}
}

// txPoint runs one contention/ladder point of a transactional system.
func txPoint(sys txSystem, cfg Config, figID string, theta float64, nClients int) (Point, Telemetry) {
	seed := PointSeed(cfg.Seed, figID, sys.name,
		fmt.Sprintf("theta=%.2f/clients=%d", theta, nClients))
	e, mkRunner, place := sys.build(cfg, seed)
	d := newLoadDriver(e, cfg)
	for i := 0; i < nClients; i++ {
		run := mkRunner(i)
		gen := workload.NewTxGenerator(workload.TxMix{
			Keys: cfg.Keys, ValueSize: cfg.ValueSize, KeysPerTx: 1, Theta: theta,
		}, clientSeed(seed, i))
		d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
			return run(p, gen)
		})
	}
	pt := d.run(nClients)
	return pt, d.telemetry(e)
}

// Fig9 reproduces Figure 9: PRISM-TX vs FaRM throughput-latency, YCSB-T
// read-modify-write transactions, uniform access, one shard.
func Fig9(cfg Config) *Figure {
	fig := &Figure{
		ID: "fig9", Title: "PRISM-TX vs FaRM, YCSB-T, uniform",
		XLabel: "throughput (txns/s)", YLabel: "mean latency (µs)",
	}
	systems := []txSystem{
		{"FaRM", buildFaRM(model.HardwareRDMA)},
		{"FaRM (software RDMA)", buildFaRM(model.SoftwarePRISM)},
		{"PRISM-TX", buildPRISMTX},
	}
	var jobs []func() (Point, Telemetry)
	for _, sys := range systems {
		for _, nClients := range cfg.ClientCounts {
			jobs = append(jobs, func() (Point, Telemetry) { return txPoint(sys, cfg, "fig9", 0, nClients) })
		}
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for si, sys := range systems {
		fig.Series = append(fig.Series, Series{
			Name:   sys.name,
			Points: pts[si*len(cfg.ClientCounts) : (si+1)*len(cfg.ClientCounts)],
		})
	}
	return fig
}

// Fig10 reproduces Figure 10: peak throughput under varying Zipf skew.
func Fig10(cfg Config) *Figure {
	fig := &Figure{
		ID: "fig10", Title: "PRISM-TX vs FaRM peak throughput under contention",
		XLabel: "Zipf coefficient", YLabel: "peak throughput (txns/s)",
	}
	thetas := []float64{0, 0.4, 0.8, 1.0, 1.2, 1.4, 1.6}
	// Peak = best throughput over a short client ladder.
	ladder := []int{64, 192, 320}
	systems := []txSystem{
		{"FaRM", buildFaRM(model.HardwareRDMA)},
		{"FaRM (software RDMA)", buildFaRM(model.SoftwarePRISM)},
		{"PRISM-TX", buildPRISMTX},
	}
	// Flatten systems x thetas x ladder into one job list; the peak pick
	// over each ladder happens after reassembly.
	var jobs []func() (Point, Telemetry)
	for _, sys := range systems {
		for _, theta := range thetas {
			for _, nClients := range ladder {
				jobs = append(jobs, func() (Point, Telemetry) { return txPoint(sys, cfg, "fig10", theta, nClients) })
			}
		}
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	for si, sys := range systems {
		s := Series{Name: sys.name}
		for ti, theta := range thetas {
			base := (si*len(thetas) + ti) * len(ladder)
			best := pts[base]
			for _, pt := range pts[base+1 : base+len(ladder)] {
				if pt.Throughput > best.Throughput {
					best = pt
				}
			}
			s.Points = append(s.Points, best)
			s.Labels = append(s.Labels, fmt.Sprintf("zipf=%.2f  peak=%.0f txns/s (aborts %d)",
				theta, best.Throughput, best.Aborts))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
