package bench

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	cfg := DefaultConfig()
	cfg.Keys = 512
	cfg.Warmup = 50 * time.Microsecond
	cfg.Measure = 300 * time.Microsecond
	cfg.ClientCounts = []int{4, 32}
	return cfg
}

func point(t *testing.T, fig *Figure, series string, idx int) Point {
	t.Helper()
	for _, s := range fig.Series {
		if s.Name == series {
			if idx >= len(s.Points) {
				t.Fatalf("series %q has %d points", series, len(s.Points))
			}
			return s.Points[idx]
		}
	}
	t.Fatalf("series %q not found in %s", series, fig.ID)
	return Point{}
}

func TestFig1Shapes(t *testing.T) {
	fig := Fig1(tiny())
	// PRISM SW read ≈ RDMA read + 2.5–3.2 µs.
	rdmaRead := point(t, fig, "RDMA", 0).Mean
	swRead := point(t, fig, "PRISM SW", 0).Mean
	diff := swRead - rdmaRead
	if diff < 2200*time.Nanosecond || diff > 3500*time.Nanosecond {
		t.Fatalf("software overhead for READ = %v, want ≈2.5-2.8µs", diff)
	}
	// BlueField is the slowest PRISM option on every op (§4.3).
	for i := 0; i < 5; i++ {
		bf := point(t, fig, "PRISM BlueField", i).Mean
		sw := point(t, fig, "PRISM SW", i).Mean
		hw := point(t, fig, "PRISM HW (proj.)", i).Mean
		if !(hw < sw && sw < bf) {
			t.Fatalf("op %d ordering: hw=%v sw=%v bf=%v", i, hw, sw, bf)
		}
	}
	// Stock RDMA cannot express the PRISM ops (points 2-4 are zero).
	for i := 2; i < 5; i++ {
		if point(t, fig, "RDMA", i).Mean != 0 {
			t.Fatalf("stock RDMA reported latency for PRISM-only op %d", i)
		}
	}
}

func TestFig2PRISMBeatsTwoReadsEverywhere(t *testing.T) {
	fig := Fig2(tiny())
	for i, profile := range []string{"rack", "cluster", "datacenter"} {
		two := point(t, fig, "2x RDMA", i).Mean
		sw := point(t, fig, "PRISM SW", i).Mean
		if sw >= two {
			t.Fatalf("%s: PRISM SW %v not faster than 2x RDMA %v", profile, sw, two)
		}
	}
	// The gap grows with network latency (the paper's core argument).
	gap := func(i int) time.Duration {
		return point(t, fig, "2x RDMA", i).Mean - point(t, fig, "PRISM SW", i).Mean
	}
	if !(gap(0) < gap(1) && gap(1) < gap(2)) {
		t.Fatalf("gap not increasing with scale: %v %v %v", gap(0), gap(1), gap(2))
	}
	// Datacenter scale: ~2x improvement (53 vs 29 µs in the paper).
	ratio := float64(point(t, fig, "2x RDMA", 2).Mean) / float64(point(t, fig, "PRISM SW", 2).Mean)
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("datacenter improvement ratio %.2f, want ≈1.8", ratio)
	}
}

func TestRPCvsRDMACrossover(t *testing.T) {
	fig := RPCvsRDMA(tiny())
	oneRead := point(t, fig, "one-sided READ", 0).Mean
	rpc := point(t, fig, "two-sided RPC", 0).Mean
	twoReads := point(t, fig, "2x one-sided READs", 0).Mean
	// §2.1: one READ clearly fastest; one RPC beats two dependent READs.
	if !(oneRead < rpc && rpc < twoReads) {
		t.Fatalf("crossover broken: read=%v rpc=%v 2reads=%v", oneRead, rpc, twoReads)
	}
}

func TestFig3ReadLatencyAnchors(t *testing.T) {
	fig := Fig3(tiny())
	prismLat := point(t, fig, "PRISM-KV", 0).Mean
	pilafHW := point(t, fig, "Pilaf", 0).Mean
	pilafSW := point(t, fig, "Pilaf (software RDMA)", 0).Mean
	// §6.2: ~6 µs vs ~8 µs vs ~14 µs.
	if !(prismLat < pilafHW && pilafHW < pilafSW) {
		t.Fatalf("ordering: prism=%v pilafHW=%v pilafSW=%v", prismLat, pilafHW, pilafSW)
	}
	if prismLat > 7*time.Microsecond || prismLat < 5*time.Microsecond {
		t.Fatalf("PRISM-KV GET %v, want ≈6µs", prismLat)
	}
	if pilafSW < 12*time.Microsecond || pilafSW > 16*time.Microsecond {
		t.Fatalf("Pilaf SW GET %v, want ≈14µs", pilafSW)
	}
	// Ratio of software-Pilaf to PRISM-KV ≈ 2x (two round trips + CRCs).
	if r := float64(pilafSW) / float64(prismLat); r < 1.8 || r > 2.8 {
		t.Fatalf("SW Pilaf/PRISM ratio %.2f, want ≈2.3", r)
	}
}

func TestFig6PRISMRSWins(t *testing.T) {
	cfg := tiny()
	fig := Fig6(cfg)
	rs := point(t, fig, "PRISM-RS", 0).Mean
	lock := point(t, fig, "ABDLOCK", 0).Mean
	lockSW := point(t, fig, "ABDLOCK (software RDMA)", 0).Mean
	if !(rs < lock && lock < lockSW) {
		t.Fatalf("ordering: rs=%v lock=%v lockSW=%v", rs, lock, lockSW)
	}
	// No client errors anywhere.
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if pt.Errors > 0 {
				t.Fatalf("%s: %d client errors", s.Name, pt.Errors)
			}
		}
	}
}

func TestFig9PRISMTXWins(t *testing.T) {
	fig := Fig9(tiny())
	prismTX := point(t, fig, "PRISM-TX", 0).Mean
	farm := point(t, fig, "FaRM", 0).Mean
	farmSW := point(t, fig, "FaRM (software RDMA)", 0).Mean
	if !(prismTX < farm && farm < farmSW) {
		t.Fatalf("ordering: tx=%v farm=%v farmSW=%v", prismTX, farm, farmSW)
	}
	// The gap should be in the paper's few-µs class.
	if gap := farm - prismTX; gap < 2*time.Microsecond || gap > 9*time.Microsecond {
		t.Fatalf("PRISM-TX advantage %v, want ≈3-6µs", gap)
	}
}

func TestFigurePrintRendersAllSeries(t *testing.T) {
	fig := RPCvsRDMA(tiny())
	var sb strings.Builder
	fig.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"one-sided READ", "two-sided RPC", "rpcvsrdma"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}

func TestAblationABDWritebackHalvesGets(t *testing.T) {
	cfg := tiny()
	fig := AblationABDWriteback(cfg)
	always := fig.Series[0].Points[0].Mean
	skip := fig.Series[1].Points[0].Mean
	if r := float64(always) / float64(skip); r < 1.7 || r > 2.5 {
		t.Fatalf("write-back skip speedup %.2f, want ≈2x (always=%v skip=%v)", r, always, skip)
	}
}

func TestAblationRedirectTargetCostsOnePCIe(t *testing.T) {
	fig := AblationRedirectTarget(tiny())
	onNIC := fig.Series[0].Points[0].Mean
	host := fig.Series[1].Points[0].Mean
	diff := host - onNIC
	if diff < 700*time.Nanosecond || diff > 1200*time.Nanosecond {
		t.Fatalf("host-memory redirect penalty %v, want ≈0.9µs (one PCIe RTT)", diff)
	}
}

func TestAblationFreelistClasses(t *testing.T) {
	fig := AblationFreelistClasses(tiny())
	classed := fig.Series[0].Points[0].Throughput
	single := fig.Series[1].Points[0].Throughput
	if classed <= single {
		t.Fatalf("size classes stored %v objects vs single class %v; classes should win", classed, single)
	}
}

func TestDriverDeterminism(t *testing.T) {
	run := func() []Point {
		return kvCurve(kvSystem{"PRISM-KV", buildPRISMKV}, tiny(), "fig3", 1.0).Points
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across identical runs:\n%v\n%v", i, a[i], b[i])
		}
	}
}

// render captures a figure's exact CSV bytes for identity comparisons.
func render(fig *Figure) string {
	var sb strings.Builder
	fig.FprintCSV(&sb)
	return sb.String()
}

// TestParallelMatchesSerial is the tentpole regression: running the point
// pool with many workers must produce byte-identical output to the serial
// run, for a ladder figure and for a contention figure with multi-level
// point keys (Fig. 10 also exercises the peak-pick reassembly).
func TestParallelMatchesSerial(t *testing.T) {
	for _, figure := range []struct {
		name string
		fn   func(Config) *Figure
	}{
		{"fig4", Fig4},
		{"fig10", Fig10},
	} {
		t.Run(figure.name, func(t *testing.T) {
			serial := tiny()
			serial.Parallel = 1
			parallel := tiny()
			parallel.Parallel = 8
			if a, b := render(figure.fn(serial)), render(figure.fn(parallel)); a != b {
				t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
			}
		})
	}
}

// TestLadderRerunIdentical: the same seed must reproduce every point of a
// multi-series figure exactly, run to run.
func TestLadderRerunIdentical(t *testing.T) {
	cfg := tiny()
	cfg.Parallel = 4
	if a, b := render(Fig6(cfg)), render(Fig6(cfg)); a != b {
		t.Fatalf("identical seeds diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestPointSeedIdentity(t *testing.T) {
	a := PointSeed(42, "fig3", "PRISM-KV", "clients=64")
	if b := PointSeed(42, "fig3", "PRISM-KV", "clients=64"); a != b {
		t.Fatal("PointSeed not deterministic")
	}
	// Distinct identities get distinct seeds (field boundaries matter).
	others := []int64{
		PointSeed(43, "fig3", "PRISM-KV", "clients=64"),
		PointSeed(42, "fig4", "PRISM-KV", "clients=64"),
		PointSeed(42, "fig3", "Pilaf", "clients=64"),
		PointSeed(42, "fig3", "PRISM-KV", "clients=6"),
		PointSeed(42, "fig3", "PRISM-KV/clients=64", ""),
	}
	for i, o := range others {
		if o == a {
			t.Fatalf("identity %d collided with base seed", i)
		}
	}
}

func TestRunJobsOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		jobs := make([]func() int, 40)
		for i := range jobs {
			jobs[i] = func() int { return i * i }
		}
		got, wall := runJobs(workers, jobs)
		if len(wall) != len(jobs) {
			t.Fatalf("workers=%d: %d wall-clock entries, want %d", workers, len(wall), len(jobs))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestExtShardsScaling(t *testing.T) {
	cfg := tiny()
	fig := ExtShards(cfg)
	pts := fig.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Throughput grows substantially with shards (aggregate bandwidth).
	if !(pts[1].Throughput > 1.5*pts[0].Throughput && pts[2].Throughput > 1.5*pts[1].Throughput) {
		t.Fatalf("shard scaling: %v / %v / %v txns/s",
			pts[0].Throughput, pts[1].Throughput, pts[2].Throughput)
	}
}

func TestExtMultiKeyLatencyGrows(t *testing.T) {
	cfg := tiny()
	// 8-key transactions need a bigger keyspace (fewer conflicts) and a
	// longer window to record completions.
	cfg.Keys = 4096
	cfg.Measure = 1500 * time.Microsecond
	fig := ExtMultiKey(cfg)
	pts := fig.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Mean <= pts[i-1].Mean {
			t.Fatalf("latency not increasing with keys/txn: %v", pts)
		}
	}
	for _, pt := range pts {
		if pt.Errors > 0 {
			t.Fatalf("client errors: %d", pt.Errors)
		}
	}
}

func TestFprintCSV(t *testing.T) {
	fig := RPCvsRDMA(tiny())
	var sb strings.Builder
	fig.FprintCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + 3 series x 1 point
		t.Fatalf("csv lines: %d\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "figure,series,label,clients") {
		t.Fatalf("csv header: %q", lines[0])
	}
	for _, ln := range lines[1:] {
		if fields := strings.Split(ln, ","); len(fields) != 10 {
			t.Fatalf("csv row has %d fields: %q", len(fields), ln)
		}
	}
}
