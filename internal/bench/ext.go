package bench

import (
	"fmt"

	"prism/internal/fabric"
	"prism/internal/model"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/tx"
	"prism/internal/workload"
)

// Extension experiments beyond the paper's evaluation. The paper ran
// PRISM-TX on a single shard because of testbed size (§8.3); the
// simulator has no such limit, so these measure the full distributed
// commit protocol's scaling behavior.

// buildTXCluster provisions n PRISM-TX shards and a client factory for
// transactions of keysPerTx keys. Shard images come from the per-shard
// template set (keysPerTx only shapes client transactions, not the loaded
// data, so all keysPerTx variants share one template set).
func buildTXCluster(cfg Config, seed int64, nShards, keysPerTx int) (*sim.Engine, func(id int) txRunner, placement) {
	tmpls := txClusterTemplates(cfg, nShards)
	e, net, _ := measureNet(cfg, seed)
	shards := make([]*tx.Shard, nShards)
	for i, t := range tmpls {
		shards[i] = tx.NewShardFromTemplate(net, fmt.Sprintf("shard-%d", i), model.SoftwarePRISM, t)
	}
	mk, place := txClusterClientFactory(cfg, net, shards)
	return e, mk, place
}

// buildTXClusterFresh is the pre-template path, kept for the
// fork-vs-fresh equivalence test (see buildPRISMKVFresh).
func buildTXClusterFresh(cfg Config, seed int64, nShards, keysPerTx int) (*sim.Engine, func(id int) txRunner, placement) {
	e, net, _ := measureNet(cfg, seed)
	shards := make([]*tx.Shard, nShards)
	perShard := cfg.Keys / int64(nShards)
	for i := range shards {
		nic := rdma.NewServer(net, fmt.Sprintf("shard-%d", i), model.SoftwarePRISM)
		s, err := tx.NewShard(nic, tx.ShardOptions{NSlots: perShard + 1, MaxValue: cfg.ValueSize, ExtraBuffers: 8192})
		if err != nil {
			panic(err)
		}
		shards[i] = s
	}
	gen := workload.NewTxGenerator(workload.TxMix{Keys: cfg.Keys, ValueSize: cfg.ValueSize, KeysPerTx: keysPerTx}, seed)
	for k := int64(0); k < cfg.Keys; k++ {
		if err := shards[k%int64(nShards)].Load(k, gen.Value(k, 0)); err != nil {
			panic(err)
		}
	}
	mk, place := txClusterClientFactory(cfg, net, shards)
	return e, mk, place
}

func txClusterClientFactory(cfg Config, net *fabric.Network, shards []*tx.Shard) (func(id int) txRunner, placement) {
	metas := make([]tx.Meta, len(shards))
	for i, s := range shards {
		metas[i] = s.Meta()
	}
	machines := clientMachines(cfg, net)
	return func(id int) txRunner {
		m := machines[id%len(machines)]
		conns := make([]*rdma.Conn, len(shards))
		ctrl := make([]*rdma.Conn, len(shards))
		for i, s := range shards {
			conns[i] = m.Connect(s.NIC())
			ctrl[i] = m.Connect(s.NIC())
		}
		c := tx.NewClient(uint16(id+1), conns, metas)
		c.UseControlConns(ctrl)
		return rmwRunner(func() txHandle { return c.Begin() })
	}, machinePlacement(machines)
}

// ExtShards measures PRISM-TX throughput as the data is partitioned over
// 1, 2, and 4 shards (uniform single-key RMW, fixed client count):
// aggregate NIC bandwidth and dedicated-core capacity scale with shards.
func ExtShards(cfg Config) *Figure {
	fig := &Figure{
		ID:     "ext-shards",
		Title:  "PRISM-TX shard scaling (extension; paper used 1 shard)",
		XLabel: "shards", YLabel: "throughput (txns/s)",
	}
	const clients = 256
	shardCounts := []int{1, 2, 4}
	jobs := make([]func() (Point, Telemetry), 0, len(shardCounts))
	for _, nShards := range shardCounts {
		jobs = append(jobs, func() (Point, Telemetry) {
			return txClusterPoint(cfg, "ext-shards", fmt.Sprintf("shards=%d", nShards),
				nShards, 1, clients)
		})
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	s := Series{Name: "PRISM-TX"}
	for i, nShards := range shardCounts {
		pt := pts[i]
		s.Points = append(s.Points, pt)
		s.Labels = append(s.Labels, fmt.Sprintf("shards=%d  tput=%.0f txns/s  mean=%.2fµs",
			nShards, pt.Throughput, float64(pt.Mean)/1e3))
	}
	fig.Series = append(fig.Series, s)
	return fig
}

// txClusterPoint runs one multi-shard PRISM-TX measurement.
func txClusterPoint(cfg Config, figID, pointKey string, nShards, keysPerTx, clients int) (Point, Telemetry) {
	seed := PointSeed(cfg.Seed, figID, "PRISM-TX", pointKey)
	e, mkRunner, place := buildTXCluster(cfg, seed, nShards, keysPerTx)
	d := newLoadDriver(e, cfg)
	for i := 0; i < clients; i++ {
		run := mkRunner(i)
		gen := workload.NewTxGenerator(workload.TxMix{
			Keys: cfg.Keys, ValueSize: cfg.ValueSize, KeysPerTx: keysPerTx,
		}, clientSeed(seed, i))
		d.spawn(place(i), fmt.Sprintf("c%d", i), func(p *sim.Proc) (int64, error) {
			return run(p, gen)
		})
	}
	pt := d.run(clients)
	return pt, d.telemetry(e)
}

// ExtMultiKey measures PRISM-TX with multi-key transactions spanning two
// shards: commit cost grows with the write set (validation + install
// chains per key, parallel across keys; commit still two logical phases).
func ExtMultiKey(cfg Config) *Figure {
	fig := &Figure{
		ID:     "ext-multikey",
		Title:  "PRISM-TX multi-key transactions over 2 shards (extension)",
		XLabel: "keys per transaction", YLabel: "mean latency (µs)",
	}
	const clients = 32
	keysPerTx := []int{1, 2, 4, 8}
	jobs := make([]func() (Point, Telemetry), 0, len(keysPerTx))
	for _, kpt := range keysPerTx {
		jobs = append(jobs, func() (Point, Telemetry) {
			return txClusterPoint(cfg, "ext-multikey", fmt.Sprintf("keys=%d", kpt),
				2, kpt, clients)
		})
	}
	pts, tels, wall := runPointJobs(cfg.Parallel, jobs)
	fig.PointWall, fig.PointTel = wall, tels
	s := Series{Name: "PRISM-TX"}
	for i, kpt := range keysPerTx {
		pt := pts[i]
		s.Points = append(s.Points, pt)
		s.Labels = append(s.Labels, fmt.Sprintf("keys/txn=%d  mean=%.2fµs  tput=%.0f txns/s  aborts=%d",
			kpt, float64(pt.Mean)/1e3, pt.Throughput, pt.Aborts))
	}
	fig.Series = append(fig.Series, s)
	return fig
}
