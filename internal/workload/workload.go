// Package workload generates the key-access patterns of the paper's
// evaluation: YCSB workloads A (50/50 read/write) and C (read-only) over
// uniform and Zipf-distributed keys (§6.2), YCSB-D (read-latest) and
// YCSB-E (short scans) for the verb-program experiments (§17), and
// YCSB-T style short read-modify-write transactions (§8.3).
package workload

import (
	"encoding/binary"
	"math"
	"math/rand"
)

// OpKind is a generated operation type.
type OpKind int

// Generated operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	// OpInsert appends a fresh key one past the current live keyspace
	// (YCSB-D/E); the generator's Live() bound grows with each insert.
	OpInsert
	// OpScan is a ranged read of Op.ScanLen consecutive keys starting at
	// Op.Key (YCSB-E), served by the SCAN verb program.
	OpScan
)

// Op is one generated operation. ScanLen is meaningful only for OpScan.
type Op struct {
	Kind    OpKind
	Key     int64
	ScanLen int
}

// Mix describes a read/write workload over a keyspace.
type Mix struct {
	Keys      int64   // number of objects
	ReadFrac  float64 // fraction of GETs (1.0 = YCSB-C, 0.5 = YCSB-A)
	ValueSize int     // object size in bytes (paper: 512)
	// Zipf skew (s). 0 = uniform; the paper sweeps 0–1.2 for PRISM-RS and
	// 0–1.6 for PRISM-TX contention figures.
	Theta float64

	// InsertFrac is the fraction of OpInserts (YCSB-D/E: 0.05). Inserts
	// extend the live keyspace past Keys one key at a time.
	InsertFrac float64
	// ReadLatest skews GETs toward the most recently inserted keys
	// (YCSB-D's "latest" request distribution): the configured
	// distribution draws a recency rank, counted back from the newest
	// key, instead of a key.
	ReadLatest bool
	// ScanFrac is the fraction of OpScans (YCSB-E: 0.95); each scan's
	// length is drawn uniformly from [1, MaxScanLen].
	ScanFrac   float64
	MaxScanLen int
}

// YCSBC returns the paper's read-only configuration: 8 M 512 B objects,
// uniform access (§6.2).
func YCSBC() Mix { return Mix{Keys: 8 << 20, ReadFrac: 1.0, ValueSize: 512} }

// YCSBA returns the 50/50 configuration.
func YCSBA() Mix { return Mix{Keys: 8 << 20, ReadFrac: 0.5, ValueSize: 512} }

// YCSBB returns the read-mostly (95/5) configuration.
func YCSBB() Mix { return Mix{Keys: 8 << 20, ReadFrac: 0.95, ValueSize: 512} }

// YCSBD returns the read-latest configuration: 95% reads skewed toward
// recent inserts, 5% inserts.
func YCSBD() Mix {
	return Mix{Keys: 8 << 20, ReadFrac: 1.0, InsertFrac: 0.05, ReadLatest: true,
		ValueSize: 512, Theta: 0.99}
}

// YCSBE returns the short-scan configuration: 95% scans of 1–100 keys,
// 5% inserts.
func YCSBE() Mix {
	return Mix{Keys: 8 << 20, ScanFrac: 0.95, InsertFrac: 0.05, MaxScanLen: 100,
		ValueSize: 512, Theta: 0.99}
}

// Generator draws operations from a Mix. Each closed-loop client owns one
// Generator (with its own RNG) for determinism.
type Generator struct {
	mix  Mix
	rng  *rand.Rand
	zipf *Zipf
	live int64 // current keyspace bound; grows with OpInsert
}

// NewGenerator returns a generator over mix seeded with seed.
func NewGenerator(mix Mix, seed int64) *Generator {
	g := &Generator{mix: mix, rng: rand.New(rand.NewSource(seed)), live: mix.Keys}
	if mix.Theta > 0 {
		g.zipf = NewZipf(mix.Keys, mix.Theta)
	}
	return g
}

// Live returns the current keyspace bound: initial Keys plus one per
// OpInsert drawn so far. Keys in [Keys, Live()) exist only once the
// driver has applied the corresponding inserts.
func (g *Generator) Live() int64 { return g.live }

// Next draws one operation: kind and key index. For mixes with scan or
// insert bands, use NextOp, which also carries the scan length.
func (g *Generator) Next() (OpKind, int64) {
	op := g.NextOp()
	return op.Kind, op.Key
}

// NextOp draws one operation. For the classic mixes (no insert/scan
// bands) it makes exactly the draws Next always made — one band pick,
// one key — so pre-program workload streams are unchanged.
func (g *Generator) NextOp() Op {
	u := g.rng.Float64()
	if u < g.mix.InsertFrac {
		key := g.live
		g.live++
		return Op{Kind: OpInsert, Key: key}
	}
	if u < g.mix.InsertFrac+g.mix.ScanFrac {
		length := 1
		if g.mix.MaxScanLen > 1 {
			length = 1 + g.rng.Intn(g.mix.MaxScanLen)
		}
		return Op{Kind: OpScan, Key: g.NextKey(), ScanLen: length}
	}
	// The read/write split applies within the remaining probability mass,
	// so ReadFrac keeps its meaning (YCSB-D: ReadFrac 1.0 of the non-
	// insert band = 95% reads overall).
	rem := 1 - g.mix.InsertFrac - g.mix.ScanFrac
	kind := OpPut
	if u < g.mix.InsertFrac+g.mix.ScanFrac+rem*g.mix.ReadFrac {
		kind = OpGet
	}
	if kind == OpGet && g.mix.ReadLatest {
		return Op{Kind: OpGet, Key: g.nextLatest()}
	}
	return Op{Kind: kind, Key: g.NextKey()}
}

// nextLatest draws a read-latest key: the configured distribution picks
// a recency rank (rank 0 = the newest key), counted back from the end of
// the live keyspace.
func (g *Generator) nextLatest() int64 {
	var rank int64
	if g.zipf != nil {
		rank = g.zipf.Draw(g.rng)
	} else {
		rank = g.rng.Int63n(g.live)
	}
	key := g.live - 1 - rank
	if key < 0 {
		key = 0
	}
	return key
}

// NextKey draws a key index according to the configured distribution.
func (g *Generator) NextKey() int64 {
	if g.zipf != nil {
		return g.zipf.Draw(g.rng)
	}
	return g.rng.Int63n(g.mix.Keys)
}

// Value deterministically materializes the object payload for key.
func (g *Generator) Value(key int64, version int) []byte {
	v := make([]byte, g.mix.ValueSize)
	binary.LittleEndian.PutUint64(v, uint64(key))
	binary.LittleEndian.PutUint64(v[8:], uint64(version))
	for i := 16; i < len(v); i++ {
		v[i] = byte(key+int64(i)) ^ byte(version)
	}
	return v
}

// KeyBytes returns the canonical 8-byte key encoding (paper: 8 B keys).
func KeyBytes(key int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(key))
	return b
}

// Zipf draws ranks from a Zipf distribution with exponent theta over
// [0, n) using the Gray et al. quantile approximation — O(1) per draw with
// no large precomputed tables, the standard approach in YCSB
// implementations.
type Zipf struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf prepares a Zipf sampler for n items with skew theta in (0, 2),
// theta != 1.
func NewZipf(n int64, theta float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf over empty keyspace")
	}
	if theta <= 0 {
		panic("workload: use uniform sampling for theta=0")
	}
	if theta == 1 {
		theta = 0.99999 // the closed form has a pole at exactly 1
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zetaApprox(n, theta)
	z.zeta2 = zetaApprox(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zetaApprox computes the generalized harmonic number H_{n,theta}, exactly
// for small n and via the Euler–Maclaurin integral approximation for large
// n (exact summation over 8M keys per sampler would be wasteful).
func zetaApprox(n int64, theta float64) float64 {
	const exactLimit = 10000
	if n <= exactLimit {
		sum := 0.0
		for i := int64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	sum := 0.0
	for i := int64(1); i <= exactLimit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	// integral of x^-theta from exactLimit to n
	a := float64(exactLimit)
	b := float64(n)
	sum += (math.Pow(b, 1-theta) - math.Pow(a, 1-theta)) / (1 - theta)
	return sum
}

// Draw samples a rank in [0, n); rank 0 is the hottest item.
func (z *Zipf) Draw(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r < 0 {
		r = 0
	}
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// TxMix describes YCSB-T style transactions: short read-modify-write
// transactions over the keyspace (§8.3).
type TxMix struct {
	Keys      int64
	ValueSize int
	// KeysPerTx is the number of keys each transaction reads and then
	// writes (read-modify-write).
	KeysPerTx int
	Theta     float64
}

// YCSBT returns the paper's transactional configuration: 8 M 512 B
// objects, short RMW transactions.
func YCSBT() TxMix { return TxMix{Keys: 8 << 20, ValueSize: 512, KeysPerTx: 1} }

// TxGenerator draws transactions.
type TxGenerator struct {
	mix  TxMix
	rng  *rand.Rand
	zipf *Zipf
}

// NewTxGenerator returns a transaction generator seeded with seed.
func NewTxGenerator(mix TxMix, seed int64) *TxGenerator {
	g := &TxGenerator{mix: mix, rng: rand.New(rand.NewSource(seed))}
	if mix.Theta > 0 {
		g.zipf = NewZipf(mix.Keys, mix.Theta)
	}
	return g
}

// Next draws the key set for one transaction (distinct keys).
func (g *TxGenerator) Next() []int64 {
	keys := make([]int64, 0, g.mix.KeysPerTx)
	seen := make(map[int64]struct{}, g.mix.KeysPerTx)
	for len(keys) < g.mix.KeysPerTx {
		var k int64
		if g.zipf != nil {
			k = g.zipf.Draw(g.rng)
		} else {
			k = g.rng.Int63n(g.mix.Keys)
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

// Value materializes a payload for key (same scheme as Generator.Value).
func (g *TxGenerator) Value(key int64, version int) []byte {
	gen := Generator{mix: Mix{ValueSize: g.mix.ValueSize}}
	return gen.Value(key, version)
}
