package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMixReadFraction(t *testing.T) {
	g := NewGenerator(Mix{Keys: 1000, ReadFrac: 0.5, ValueSize: 64}, 1)
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		kind, key := g.Next()
		if key < 0 || key >= 1000 {
			t.Fatalf("key %d out of range", key)
		}
		if kind == OpGet {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("read fraction %.3f, want ≈0.5", frac)
	}
}

func TestReadOnlyMix(t *testing.T) {
	g := NewGenerator(YCSBC(), 1)
	for i := 0; i < 1000; i++ {
		kind, _ := g.Next()
		if kind != OpGet {
			t.Fatal("YCSB-C generated a write")
		}
	}
}

func TestUniformCoversKeyspace(t *testing.T) {
	g := NewGenerator(Mix{Keys: 10, ReadFrac: 1, ValueSize: 8}, 2)
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		_, k := g.Next()
		seen[k]++
	}
	for k := int64(0); k < 10; k++ {
		if seen[k] < 500 {
			t.Fatalf("key %d drawn only %d/10000 times under uniform", k, seen[k])
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher theta concentrates more mass on the hottest key.
	hotMass := func(theta float64) float64 {
		z := NewZipf(10000, theta)
		rng := rand.New(rand.NewSource(3))
		hot := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Draw(rng) == 0 {
				hot++
			}
		}
		return float64(hot) / n
	}
	low, mid, high := hotMass(0.5), hotMass(0.9), hotMass(1.2)
	if !(low < mid && mid < high) {
		t.Fatalf("hot-key mass not increasing with skew: %.4f %.4f %.4f", low, mid, high)
	}
	if high < 0.05 {
		t.Fatalf("theta=1.2 hot-key mass %.4f implausibly small", high)
	}
}

func TestZipfBounds(t *testing.T) {
	f := func(seed int64, theta8 uint8) bool {
		theta := 0.1 + float64(theta8%15)/10 // 0.1 .. 1.5
		z := NewZipf(1000, theta)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			r := z.Draw(rng)
			if r < 0 || r >= 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestZetaApproxMatchesExact(t *testing.T) {
	// The integral approximation should be close to exact summation.
	for _, theta := range []float64{0.5, 0.9, 0.99, 1.2} {
		exact := 0.0
		n := int64(50000)
		for i := int64(1); i <= n; i++ {
			exact += 1 / math.Pow(float64(i), theta)
		}
		approx := zetaApprox(n, theta)
		if math.Abs(approx-exact)/exact > 0.01 {
			t.Fatalf("zeta(%d, %.2f): approx %.4f vs exact %.4f", n, theta, approx, exact)
		}
	}
}

func TestValueDeterministicAndDistinct(t *testing.T) {
	g := NewGenerator(Mix{Keys: 100, ReadFrac: 1, ValueSize: 64}, 5)
	a := g.Value(7, 1)
	b := g.Value(7, 1)
	if string(a) != string(b) {
		t.Fatal("Value not deterministic")
	}
	c := g.Value(7, 2)
	if string(a) == string(c) {
		t.Fatal("versions produce identical values")
	}
	d := g.Value(8, 1)
	if string(a) == string(d) {
		t.Fatal("keys produce identical values")
	}
	if len(a) != 64 {
		t.Fatalf("value size %d", len(a))
	}
}

func TestTxGeneratorDistinctKeys(t *testing.T) {
	g := NewTxGenerator(TxMix{Keys: 100, ValueSize: 16, KeysPerTx: 4}, 6)
	for i := 0; i < 100; i++ {
		keys := g.Next()
		if len(keys) != 4 {
			t.Fatalf("tx has %d keys", len(keys))
		}
		seen := map[int64]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Fatal("duplicate key in transaction")
			}
			seen[k] = true
			if k < 0 || k >= 100 {
				t.Fatalf("key %d out of range", k)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []int64 {
		g := NewGenerator(Mix{Keys: 1 << 20, ReadFrac: 0.5, ValueSize: 8, Theta: 0.9}, 42)
		var out []int64
		for i := 0; i < 100; i++ {
			_, k := g.Next()
			out = append(out, k)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic per seed")
		}
	}
}

func TestYCSBDReadLatestMix(t *testing.T) {
	mix := YCSBD()
	mix.Keys = 10000
	g := NewGenerator(mix, 7)
	const n = 50000
	counts := map[OpKind]int{}
	recent := 0 // reads landing in the newest 10% of the live keyspace
	reads := 0
	var lastInsert int64 = -1
	for i := 0; i < n; i++ {
		op := g.NextOp()
		counts[op.Kind]++
		switch op.Kind {
		case OpInsert:
			if lastInsert == -1 && op.Key != mix.Keys {
				t.Fatalf("first insert key %d, want %d", op.Key, mix.Keys)
			}
			if lastInsert != -1 && op.Key != lastInsert+1 {
				t.Fatalf("insert keys not sequential: %d after %d", op.Key, lastInsert)
			}
			lastInsert = op.Key
		case OpGet:
			reads++
			if op.Key < 0 || op.Key >= g.Live() {
				t.Fatalf("read key %d outside live keyspace [0,%d)", op.Key, g.Live())
			}
			if op.Key >= g.Live()-g.Live()/10 {
				recent++
			}
		default:
			t.Fatalf("YCSB-D generated %v", op.Kind)
		}
	}
	insFrac := float64(counts[OpInsert]) / n
	if insFrac < 0.04 || insFrac > 0.06 {
		t.Fatalf("insert fraction %.3f, want ≈0.05", insFrac)
	}
	if g.Live() != mix.Keys+int64(counts[OpInsert]) {
		t.Fatalf("Live() = %d after %d inserts over %d keys", g.Live(), counts[OpInsert], mix.Keys)
	}
	// The "latest" distribution concentrates reads near the tail; uniform
	// would put 10% there.
	if frac := float64(recent) / float64(reads); frac < 0.5 {
		t.Fatalf("only %.3f of reads hit the newest 10%% of keys — not read-latest", frac)
	}
}

func TestYCSBEScanMix(t *testing.T) {
	mix := YCSBE()
	mix.Keys = 10000
	g := NewGenerator(mix, 8)
	const n = 50000
	counts := map[OpKind]int{}
	lenSum := 0
	for i := 0; i < n; i++ {
		op := g.NextOp()
		counts[op.Kind]++
		switch op.Kind {
		case OpScan:
			if op.ScanLen < 1 || op.ScanLen > mix.MaxScanLen {
				t.Fatalf("scan length %d outside [1,%d]", op.ScanLen, mix.MaxScanLen)
			}
			if op.Key < 0 || op.Key >= mix.Keys {
				t.Fatalf("scan start %d out of range", op.Key)
			}
			lenSum += op.ScanLen
		case OpInsert:
		default:
			t.Fatalf("YCSB-E generated %v", op.Kind)
		}
	}
	scanFrac := float64(counts[OpScan]) / n
	if scanFrac < 0.94 || scanFrac > 0.96 {
		t.Fatalf("scan fraction %.3f, want ≈0.95", scanFrac)
	}
	mean := float64(lenSum) / float64(counts[OpScan])
	if mean < 45 || mean > 56 {
		t.Fatalf("mean scan length %.1f, want ≈50.5 (uniform 1..100)", mean)
	}
}

// The classic mixes must draw the identical RNG sequence through NextOp
// as through the original Next, or every workload-driven figure shifts.
func TestClassicMixStreamUnchanged(t *testing.T) {
	mix := Mix{Keys: 1 << 20, ReadFrac: 0.5, ValueSize: 8, Theta: 0.9}
	legacy := func() []Op {
		// The pre-program Next: one band draw, one key draw.
		g := NewGenerator(mix, 42)
		var out []Op
		for i := 0; i < 200; i++ {
			kind := OpPut
			if g.rng.Float64() < g.mix.ReadFrac {
				kind = OpGet
			}
			out = append(out, Op{Kind: kind, Key: g.NextKey()})
		}
		return out
	}()
	g := NewGenerator(mix, 42)
	for i, want := range legacy {
		if got := g.NextOp(); got != want {
			t.Fatalf("op %d: NextOp %+v, legacy stream %+v", i, got, want)
		}
	}
}

func TestKeyBytes(t *testing.T) {
	b := KeyBytes(0x0102030405060708)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("KeyBytes = %x", b)
		}
	}
}

func TestStandardMixes(t *testing.T) {
	for _, tc := range []struct {
		name string
		mix  Mix
		frac float64
	}{
		{"YCSB-A", YCSBA(), 0.5},
		{"YCSB-B", YCSBB(), 0.95},
		{"YCSB-C", YCSBC(), 1.0},
	} {
		if tc.mix.ReadFrac != tc.frac {
			t.Fatalf("%s read fraction %v", tc.name, tc.mix.ReadFrac)
		}
		if tc.mix.Keys != 8<<20 || tc.mix.ValueSize != 512 {
			t.Fatalf("%s not at paper scale", tc.name)
		}
	}
	if m := YCSBT(); m.KeysPerTx != 1 || m.Keys != 8<<20 {
		t.Fatalf("YCSB-T config: %+v", m)
	}
}
