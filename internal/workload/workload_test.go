package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMixReadFraction(t *testing.T) {
	g := NewGenerator(Mix{Keys: 1000, ReadFrac: 0.5, ValueSize: 64}, 1)
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		kind, key := g.Next()
		if key < 0 || key >= 1000 {
			t.Fatalf("key %d out of range", key)
		}
		if kind == OpGet {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("read fraction %.3f, want ≈0.5", frac)
	}
}

func TestReadOnlyMix(t *testing.T) {
	g := NewGenerator(YCSBC(), 1)
	for i := 0; i < 1000; i++ {
		kind, _ := g.Next()
		if kind != OpGet {
			t.Fatal("YCSB-C generated a write")
		}
	}
}

func TestUniformCoversKeyspace(t *testing.T) {
	g := NewGenerator(Mix{Keys: 10, ReadFrac: 1, ValueSize: 8}, 2)
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		_, k := g.Next()
		seen[k]++
	}
	for k := int64(0); k < 10; k++ {
		if seen[k] < 500 {
			t.Fatalf("key %d drawn only %d/10000 times under uniform", k, seen[k])
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher theta concentrates more mass on the hottest key.
	hotMass := func(theta float64) float64 {
		z := NewZipf(10000, theta)
		rng := rand.New(rand.NewSource(3))
		hot := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Draw(rng) == 0 {
				hot++
			}
		}
		return float64(hot) / n
	}
	low, mid, high := hotMass(0.5), hotMass(0.9), hotMass(1.2)
	if !(low < mid && mid < high) {
		t.Fatalf("hot-key mass not increasing with skew: %.4f %.4f %.4f", low, mid, high)
	}
	if high < 0.05 {
		t.Fatalf("theta=1.2 hot-key mass %.4f implausibly small", high)
	}
}

func TestZipfBounds(t *testing.T) {
	f := func(seed int64, theta8 uint8) bool {
		theta := 0.1 + float64(theta8%15)/10 // 0.1 .. 1.5
		z := NewZipf(1000, theta)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			r := z.Draw(rng)
			if r < 0 || r >= 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestZetaApproxMatchesExact(t *testing.T) {
	// The integral approximation should be close to exact summation.
	for _, theta := range []float64{0.5, 0.9, 0.99, 1.2} {
		exact := 0.0
		n := int64(50000)
		for i := int64(1); i <= n; i++ {
			exact += 1 / math.Pow(float64(i), theta)
		}
		approx := zetaApprox(n, theta)
		if math.Abs(approx-exact)/exact > 0.01 {
			t.Fatalf("zeta(%d, %.2f): approx %.4f vs exact %.4f", n, theta, approx, exact)
		}
	}
}

func TestValueDeterministicAndDistinct(t *testing.T) {
	g := NewGenerator(Mix{Keys: 100, ReadFrac: 1, ValueSize: 64}, 5)
	a := g.Value(7, 1)
	b := g.Value(7, 1)
	if string(a) != string(b) {
		t.Fatal("Value not deterministic")
	}
	c := g.Value(7, 2)
	if string(a) == string(c) {
		t.Fatal("versions produce identical values")
	}
	d := g.Value(8, 1)
	if string(a) == string(d) {
		t.Fatal("keys produce identical values")
	}
	if len(a) != 64 {
		t.Fatalf("value size %d", len(a))
	}
}

func TestTxGeneratorDistinctKeys(t *testing.T) {
	g := NewTxGenerator(TxMix{Keys: 100, ValueSize: 16, KeysPerTx: 4}, 6)
	for i := 0; i < 100; i++ {
		keys := g.Next()
		if len(keys) != 4 {
			t.Fatalf("tx has %d keys", len(keys))
		}
		seen := map[int64]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Fatal("duplicate key in transaction")
			}
			seen[k] = true
			if k < 0 || k >= 100 {
				t.Fatalf("key %d out of range", k)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []int64 {
		g := NewGenerator(Mix{Keys: 1 << 20, ReadFrac: 0.5, ValueSize: 8, Theta: 0.9}, 42)
		var out []int64
		for i := 0; i < 100; i++ {
			_, k := g.Next()
			out = append(out, k)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic per seed")
		}
	}
}

func TestKeyBytes(t *testing.T) {
	b := KeyBytes(0x0102030405060708)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("KeyBytes = %x", b)
		}
	}
}

func TestStandardMixes(t *testing.T) {
	for _, tc := range []struct {
		name string
		mix  Mix
		frac float64
	}{
		{"YCSB-A", YCSBA(), 0.5},
		{"YCSB-B", YCSBB(), 0.95},
		{"YCSB-C", YCSBC(), 1.0},
	} {
		if tc.mix.ReadFrac != tc.frac {
			t.Fatalf("%s read fraction %v", tc.name, tc.mix.ReadFrac)
		}
		if tc.mix.Keys != 8<<20 || tc.mix.ValueSize != 512 {
			t.Fatalf("%s not at paper scale", tc.name)
		}
	}
	if m := YCSBT(); m.KeysPerTx != 1 || m.Keys != 8<<20 {
		t.Fatalf("YCSB-T config: %+v", m)
	}
}
