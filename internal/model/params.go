// Package model holds the calibrated cost parameters for the simulated
// RDMA fabric and the four PRISM deployment options the paper evaluates
// (§4.3): hardware RDMA verbs, the software PRISM stack on dedicated host
// cores, a projected ASIC PRISM NIC, and a BlueField smart-NIC port.
//
// Every constant is annotated with the paper measurement it was calibrated
// against. Absolute values are only meaningful relative to each other; the
// reproduction targets the paper's shapes (who wins, by what factor, where
// crossovers fall), not testbed-exact numbers.
package model

import "time"

// Deployment selects which implementation of the remote-access data path a
// server's NIC models.
type Deployment int

const (
	// HardwareRDMA is a stock RDMA NIC: classic verbs only. PRISM
	// primitives are unavailable.
	HardwareRDMA Deployment = iota
	// SoftwarePRISM is the paper's prototype: PRISM primitives executed by
	// dedicated host CPU cores inside the networking stack (Snap-style),
	// reached via an eRPC transport (§4.1).
	SoftwarePRISM
	// ProjectedHardwarePRISM models a future NIC ASIC implementing the
	// primitives, costed as the matching RDMA verb plus extra PCIe round
	// trips for indirection (§4.3).
	ProjectedHardwarePRISM
	// BlueFieldPRISM models the software stack running on a Mellanox
	// BlueField's ARM cores, which reach host memory only through an
	// internal RDMA switch (~3µs per access, §4.3 footnote 1).
	BlueFieldPRISM
)

func (d Deployment) String() string {
	switch d {
	case HardwareRDMA:
		return "RDMA"
	case SoftwarePRISM:
		return "PRISM SW"
	case ProjectedHardwarePRISM:
		return "PRISM HW (proj.)"
	case BlueFieldPRISM:
		return "PRISM BlueField"
	default:
		return "unknown"
	}
}

// SwitchProfile is the one-way network latency added on top of the NIC
// processing path, per Figure 2's three deployment scales.
type SwitchProfile struct {
	Name string
	// OneWay is the latency added in each direction of a round trip.
	OneWay time.Duration
}

// The paper's three latency profiles (Fig. 2) plus the direct-connect
// setup used for Fig. 1. Figure 2 quotes per-round-trip added latency;
// halve it for one-way.
var (
	Direct     = SwitchProfile{Name: "direct", OneWay: 0}
	Rack       = SwitchProfile{Name: "rack", OneWay: 300 * time.Nanosecond}       // 0.6 µs/RTT, one ToR switch
	Cluster    = SwitchProfile{Name: "cluster", OneWay: 1500 * time.Nanosecond}   // 3 µs/RTT, three-tier network
	Datacenter = SwitchProfile{Name: "datacenter", OneWay: 12 * time.Microsecond} // 24 µs/RTT, reported DC RDMA latency [12]
)

// Params is the full cost model. Zero value is not useful; use Default.
type Params struct {
	// --- Wire / bandwidth ---

	// LinkBandwidthBps is each NIC port's line rate. The application
	// evaluations (§5) use 40 Gb Ethernet.
	LinkBandwidthBps int64
	// FrameOverheadBytes is per-message wire overhead: Ethernet preamble,
	// header, FCS and inter-frame gap, IP+UDP, and the RoCE BTH headers.
	// Calibrated jointly with payload sizes so the read-throughput gap
	// between PRISM-KV (one response) and Pilaf (two responses + CRCs)
	// lands near the paper's 22% (§6.2).
	FrameOverheadBytes int

	// --- Base verb costs (direct link, Fig. 1 baseline) ---

	// RDMABaseRTT is the round-trip cost of a small hardware verb on a
	// direct link, including both NICs' processing and PCIe DMA: the
	// paper measures 2.5 µs (§4.3).
	RDMABaseRTT time.Duration

	// --- Software PRISM stack (§4.1) ---

	// The software stack adds +2.5–2.8 µs per request depending on the
	// operation (§4.3). We model this as a fixed per-request cost (eRPC
	// receive, dispatch to the dedicated thread, response post) plus a
	// small per-op increment so that multi-op chains — which arrive in a
	// single request — cost only slightly more than single ops, matching
	// the paper's ~6 µs for PRISM-KV's ALLOCATE/WRITE/CAS PUT chain round
	// trip (§6.2).
	SoftBaseOverhead time.Duration // fixed per request: 2.3 µs
	SoftReadExtra    time.Duration // +0.5 µs → single READ totals +2.8 µs
	SoftWriteExtra   time.Duration // +0.2 µs → single WRITE totals +2.5 µs
	SoftAllocExtra   time.Duration // +0.3 µs → single ALLOCATE totals +2.6 µs
	SoftCASExtra     time.Duration // +0.4 µs → single CAS totals +2.7 µs
	SoftProgExtra    time.Duration // +0.5 µs: verb-program setup (parse, loop state)

	// Core occupancy per request for throughput modeling of the dedicated
	// core pool: base + per-op. 16 cores at ~0.65 µs/single-op clear
	// ~24 M op/s, keeping 40 GbE line rate the bottleneck — "16 dedicated
	// cores ... sufficient to achieve line rate" (§6.2) — while chains
	// (~1 µs) still clear the ~6 M txn/s PRISM-TX needs (§8.3).
	SoftCPUBase  time.Duration
	SoftCPUPerOp time.Duration
	// SoftCores is the number of dedicated stack cores per server.
	SoftCores int

	// --- Two-sided RPC (eRPC [16]) ---

	// RPCOverhead is the extra round-trip latency of a two-sided RPC over
	// the base verb RTT: request dispatch to an application core, handler
	// scheduling, and response. Together with RPCHandlerCPUTime this puts
	// a minimal RPC at base + 3.1 µs = 5.6 µs on a direct link, the §2.1
	// measurement.
	RPCOverhead time.Duration
	// RPCHandlerCPUTime is app-core occupancy per RPC.
	RPCHandlerCPUTime time.Duration
	// RPCCores is the number of cores serving RPCs per server.
	RPCCores int

	// --- Projected hardware PRISM NIC (§4.3) ---

	// PCIeRTT is one extra PCIe round trip, added per level of
	// indirection / redirect to host memory ([35] measures ~0.9 µs).
	PCIeRTT time.Duration
	// RedirectToHostMem models a projected-hardware NIC whose chain
	// redirect targets live in host memory instead of the on-NIC region
	// §4.2 recommends — each redirected op then pays one extra PCIe round
	// trip. Default false (on-NIC temp storage).
	RedirectToHostMem bool

	// --- BlueField smart NIC (§4.3, footnote 1) ---

	// BFProcOverhead is the slower ARM cores' processing cost per op.
	BFProcOverhead time.Duration
	// BFHostAccess is the latency of one host-memory access from the
	// BlueField data path (off-path NIC): ~3 µs.
	BFHostAccess time.Duration

	// --- Verb programs (§17) ---

	// ProgStepCost is the per-iteration cost of a verb program's loop
	// engine (CHASE step / SCAN slot visit) beyond the host-memory
	// accesses the step performs — pointer decode, predicate evaluation,
	// loop bookkeeping. Charged once per executed step on every
	// PRISM-capable deployment; zero-step requests (every classic verb)
	// are unaffected, which keeps all pre-program figures byte-identical.
	ProgStepCost time.Duration

	// --- Server-side memory costs ---

	// HostMemAccess is a DRAM access from the host CPU or NIC DMA engine,
	// folded into per-op costs; kept separate for chains that touch
	// memory repeatedly.
	HostMemAccess time.Duration

	// PilafCRCCost is the client-side cost of computing/validating Pilaf's
	// self-verifying CRCs per GET: the paper attributes ~2 µs (§6.2).
	PilafCRCCost time.Duration
	// PilafCRCBytes is the extra per-item CRC payload Pilaf responses carry.
	PilafCRCBytes int

	// Network is the switch latency profile in effect.
	Network SwitchProfile

	// CrossRackExtra is the additional one-way latency a message pays when
	// its endpoints sit in different racks (the ToR→spine→ToR detour of
	// the paper's §8 evaluation topology, where client machines and
	// servers occupy distinct racks). 0 keeps the fabric flat: every pair
	// is Network.OneWay apart and node rack assignments have no effect.
	CrossRackExtra time.Duration

	// LossRate is the per-message drop probability (0 disables loss).
	// Lost messages are recovered by the NIC retransmission timer.
	LossRate float64
	// RetransmitTimeout is the NIC's retransmission timer.
	RetransmitTimeout time.Duration

	// --- NIC connection-state scaling (Storm [PAPERS.md]) ---
	//
	// A reliable connection's state (QP context, ~375 B on a ConnectX-5)
	// must be resident where the data path runs: in the NIC's on-die
	// context cache for hardware deployments, in the stack cores' working
	// set for software ones. Storm measures the collapse when the active
	// connection count outgrows that cache: every cold send first fetches
	// the context over PCIe (hardware) or takes the DRAM/dispatch misses
	// (software), and the fetch unit itself serializes, capping
	// throughput. Capacity 0 disables the model entirely — the default,
	// so paper-scale figures (hundreds of connections at most) are
	// unaffected; WithConnScaling enables the calibrated values.

	// HWQPCacheEntries is the on-NIC QP context cache capacity for
	// HardwareRDMA and ProjectedHardwarePRISM deployments (0 = unlimited,
	// model disabled).
	HWQPCacheEntries int
	// HWQPMissPenalty is the cost of fetching one cold QP context from
	// host-memory ICM over PCIe.
	HWQPMissPenalty time.Duration
	// SoftQPCacheEntries is the connection working-set capacity of the
	// software stack (SoftwarePRISM, BlueFieldPRISM): connection state
	// lives in host DRAM, so the capacity is far larger and the miss far
	// cheaper — the RDMAvisor argument for connection multiplexing.
	SoftQPCacheEntries int
	// SoftQPMissPenalty is the cost of paging one cold connection's state
	// back into the stack cores' working set.
	SoftQPMissPenalty time.Duration
}

// Default returns the cost model calibrated to the paper's testbed
// (§4.3, §5): ConnectX-5-class base latencies, 40 GbE application network.
func Default() Params {
	return Params{
		LinkBandwidthBps:   40e9,
		FrameOverheadBytes: 126,

		RDMABaseRTT: 2500 * time.Nanosecond,

		SoftBaseOverhead: 2300 * time.Nanosecond,
		SoftReadExtra:    500 * time.Nanosecond,
		SoftWriteExtra:   200 * time.Nanosecond,
		SoftAllocExtra:   300 * time.Nanosecond,
		SoftCASExtra:     400 * time.Nanosecond,
		SoftProgExtra:    500 * time.Nanosecond,
		SoftCPUBase:      500 * time.Nanosecond,
		SoftCPUPerOp:     150 * time.Nanosecond,
		SoftCores:        16,

		RPCOverhead:       2200 * time.Nanosecond,
		RPCHandlerCPUTime: 900 * time.Nanosecond,
		RPCCores:          16,

		PCIeRTT: 900 * time.Nanosecond,

		ProgStepCost: 150 * time.Nanosecond,

		BFProcOverhead: 2000 * time.Nanosecond,
		BFHostAccess:   3000 * time.Nanosecond,

		HostMemAccess: 100 * time.Nanosecond,

		PilafCRCCost:  2000 * time.Nanosecond,
		PilafCRCBytes: 8,

		Network: Rack,

		LossRate:          0,
		RetransmitTimeout: 100 * time.Microsecond,
	}
}

// WithNetwork returns a copy of p with the switch profile replaced.
func (p Params) WithNetwork(sp SwitchProfile) Params {
	p.Network = sp
	return p
}

// WithConnScaling returns a copy of p with the NIC connection-state
// model enabled at calibrated values. Hardware: ~1K QP contexts on die
// (Storm measures the ConnectX-5 cliff in the low thousands of QPs) and
// one PCIe round trip per cold fetch. Software: connection state in host
// DRAM — an order of magnitude more capacity, each miss a few cache-line
// fills plus a dispatch-table walk.
func (p Params) WithConnScaling() Params {
	p.HWQPCacheEntries = 1024
	p.HWQPMissPenalty = p.PCIeRTT
	p.SoftQPCacheEntries = 8192
	p.SoftQPMissPenalty = 250 * time.Nanosecond
	return p
}

// QPCacheFor returns the connection-state cache geometry for deployment
// d: capacity in connections and the per-miss fetch penalty. Capacity 0
// means the model is disabled for that deployment.
func (p Params) QPCacheFor(d Deployment) (entries int, miss time.Duration) {
	switch d {
	case HardwareRDMA, ProjectedHardwarePRISM:
		return p.HWQPCacheEntries, p.HWQPMissPenalty
	default:
		return p.SoftQPCacheEntries, p.SoftQPMissPenalty
	}
}

// SerializationDelay is the time to put n payload bytes (plus frame
// overhead) on the wire at line rate.
func (p Params) SerializationDelay(n int) time.Duration {
	bits := int64(n+p.FrameOverheadBytes) * 8
	return time.Duration(bits * int64(time.Second) / p.LinkBandwidthBps)
}

// OpClass buckets operations for deployment cost lookup.
type OpClass int

// Operation classes used for deployment cost lookup.
const (
	OpRead OpClass = iota
	OpWrite
	OpAllocate
	OpCAS
	OpProgram // bounded server-side verb program (CHASE/SCAN, §17)
)

// SoftExtraFor returns the per-op increment the software stack adds on top
// of SoftBaseOverhead for one op of class c.
func (p Params) SoftExtraFor(c OpClass) time.Duration {
	switch c {
	case OpRead:
		return p.SoftReadExtra
	case OpWrite:
		return p.SoftWriteExtra
	case OpAllocate:
		return p.SoftAllocExtra
	case OpProgram:
		return p.SoftProgExtra
	default:
		return p.SoftCASExtra
	}
}
