package model

import (
	"testing"
	"time"
)

func TestDefaultCalibrationInvariants(t *testing.T) {
	p := Default()
	// The software stack's per-request overhead bounds (§4.3: 2.5–2.8µs
	// per single op).
	for _, c := range []OpClass{OpRead, OpWrite, OpAllocate, OpCAS} {
		total := p.SoftBaseOverhead + p.SoftExtraFor(c)
		if total < 2400*time.Nanosecond || total > 2900*time.Nanosecond {
			t.Fatalf("software overhead for class %d = %v, want 2.5-2.8µs", c, total)
		}
	}
	// A minimal RPC = base + overhead + handler ≈ 5.6µs (§2.1, scaled to
	// the §4.3 base).
	rpc := p.RDMABaseRTT + p.RPCOverhead + p.RPCHandlerCPUTime
	if rpc < 5400*time.Nanosecond || rpc > 5800*time.Nanosecond {
		t.Fatalf("minimal RPC = %v, want ≈5.6µs", rpc)
	}
	// 16 dedicated cores clear line rate for single-op requests (§6.2):
	// per-op CPU must stay under 16 cores / 7.6M op/s ≈ 2.1µs.
	if perOp := p.SoftCPUBase + p.SoftCPUPerOp; perOp > 2*time.Microsecond {
		t.Fatalf("per-op CPU %v too slow for line rate", perOp)
	}
	// BlueField must be the slowest PRISM option for an indirect read:
	// base + proc + 2 host accesses > base + soft overhead.
	bf := p.BFProcOverhead + 2*p.BFHostAccess
	sw := p.SoftBaseOverhead + p.SoftReadExtra
	if bf <= sw {
		t.Fatalf("BlueField indirect read overhead %v not above software %v", bf, sw)
	}
}

func TestSerializationDelay(t *testing.T) {
	p := Default()
	// 512B + 126B overhead at 40 Gb/s = 638*8/40e9 s = 127.6ns.
	got := p.SerializationDelay(512)
	if got < 125*time.Nanosecond || got > 130*time.Nanosecond {
		t.Fatalf("512B serialization = %v, want ≈127ns", got)
	}
	// Monotone in size.
	if p.SerializationDelay(1024) <= got {
		t.Fatal("serialization not monotone in size")
	}
	// Zero-payload still pays frame overhead.
	if p.SerializationDelay(0) == 0 {
		t.Fatal("frame overhead not charged")
	}
}

func TestWithNetworkDoesNotMutate(t *testing.T) {
	p := Default()
	q := p.WithNetwork(Datacenter)
	if p.Network.Name == Datacenter.Name {
		t.Fatal("WithNetwork mutated the receiver")
	}
	if q.Network.Name != Datacenter.Name {
		t.Fatal("WithNetwork did not apply")
	}
}

func TestNetworkProfileOrdering(t *testing.T) {
	if !(Direct.OneWay < Rack.OneWay && Rack.OneWay < Cluster.OneWay && Cluster.OneWay < Datacenter.OneWay) {
		t.Fatal("switch profiles out of order")
	}
	// Figure 2 quotes per-RTT latencies: 0.6µs, 3µs, 24µs.
	if Rack.OneWay*2 != 600*time.Nanosecond {
		t.Fatalf("rack RTT = %v", Rack.OneWay*2)
	}
	if Cluster.OneWay*2 != 3*time.Microsecond {
		t.Fatalf("cluster RTT = %v", Cluster.OneWay*2)
	}
	if Datacenter.OneWay*2 != 24*time.Microsecond {
		t.Fatalf("datacenter RTT = %v", Datacenter.OneWay*2)
	}
}

func TestDeploymentStrings(t *testing.T) {
	for d, want := range map[Deployment]string{
		HardwareRDMA:           "RDMA",
		SoftwarePRISM:          "PRISM SW",
		ProjectedHardwarePRISM: "PRISM HW (proj.)",
		BlueFieldPRISM:         "PRISM BlueField",
	} {
		if d.String() != want {
			t.Fatalf("%d.String() = %q", d, d.String())
		}
	}
	if Deployment(99).String() != "unknown" {
		t.Fatal("unknown deployment stringer")
	}
}
