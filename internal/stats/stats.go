// Package stats provides the latency/throughput summaries the benchmark
// harness reports: streaming histograms with percentile queries.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Histogram geometry: 64 sub-buckets per power of two of nanoseconds
// (HDR-histogram style). Values below subBuckets ns land in exact 1 ns
// buckets; above that, bucket width is value/64, so percentile queries
// carry at most ~1.6% relative error regardless of sample count. The
// whole recorder is a fixed ~29 KB regardless of how many samples it
// absorbs — paper-scale runs no longer hold millions of samples.
const (
	subBucketBits = 6
	subBuckets    = 1 << subBucketBits // 64
	// numBuckets covers durations up to 2^63-1 ns (~292 years).
	numBuckets = (63 - subBucketBits + 1) * subBuckets
)

// LatencyRecorder accumulates operation latencies in a bounded
// log-bucketed streaming histogram. Mean, Count, and Max are exact;
// other percentiles are bucket-resolution approximations clamped to the
// observed [min, max].
type LatencyRecorder struct {
	counts [numBuckets]uint32
	count  int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// bucketIndex maps a duration (clamped to >= 0) to its bucket.
func bucketIndex(d time.Duration) int {
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	k := bits.Len64(v) - 1 // 2^k <= v < 2^(k+1), k >= subBucketBits
	shift := uint(k - subBucketBits)
	sub := int(v>>shift) - subBuckets // 0..subBuckets-1
	return (k-subBucketBits+1)*subBuckets + sub
}

// bucketCeil returns the largest duration mapping to bucket idx.
func bucketCeil(idx int) time.Duration {
	g := idx >> subBucketBits
	sub := uint64(idx & (subBuckets - 1))
	if g == 0 {
		return time.Duration(sub)
	}
	shift := uint(g - 1)
	return time.Duration(((subBuckets+sub+1)<<shift)-1) & math.MaxInt64
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.counts[bucketIndex(d)]++
	r.sum += d
	if r.count == 0 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	r.count++
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return int(r.count) }

// Mean returns the average latency (0 if empty). Exact.
func (r *LatencyRecorder) Mean() time.Duration {
	if r.count == 0 {
		return 0
	}
	return r.sum / time.Duration(r.count)
}

// Percentile returns the q-th percentile (0 < q <= 100) by nearest-rank
// over the histogram buckets, clamped to the observed [min, max].
func (r *LatencyRecorder) Percentile(q float64) time.Duration {
	if r.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q / 100 * float64(r.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > r.count {
		rank = r.count
	}
	var cum int64
	for idx := bucketIndex(r.min); idx < numBuckets; idx++ {
		cum += int64(r.counts[idx])
		if cum >= rank {
			v := bucketCeil(idx)
			if v < r.min {
				v = r.min
			}
			if v > r.max {
				v = r.max
			}
			return v
		}
	}
	return r.max
}

// Median is Percentile(50).
func (r *LatencyRecorder) Median() time.Duration { return r.Percentile(50) }

// P99 is Percentile(99).
func (r *LatencyRecorder) P99() time.Duration { return r.Percentile(99) }

// Max returns the largest sample. Exact.
func (r *LatencyRecorder) Max() time.Duration {
	return r.max
}

// Merge folds all of other's samples into r. Used to combine per-domain
// recorder shards into one figure-level summary; merging preserves the
// exact count/mean/min/max and the bucket-resolution percentiles.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	if other.count == 0 {
		return
	}
	for i := range other.counts {
		r.counts[i] += other.counts[i]
	}
	if r.count == 0 || other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	r.count += other.count
	r.sum += other.sum
}

// Reset discards all samples.
func (r *LatencyRecorder) Reset() {
	r.counts = [numBuckets]uint32{}
	r.count = 0
	r.sum = 0
	r.min = 0
	r.max = 0
}

// Summary is a point on a throughput-latency curve.
type Summary struct {
	Clients    int
	Throughput float64 // operations per second
	Mean       time.Duration
	Median     time.Duration
	P99        time.Duration
	Aborts     int64 // protocol-level retries/aborts, if applicable
	Errors     int64 // clients that stopped on an operation error
}

// String formats the summary as one table row.
func (s Summary) String() string {
	row := fmt.Sprintf("clients=%4d  tput=%10.0f op/s  mean=%8.2fµs  p50=%8.2fµs  p99=%8.2fµs",
		s.Clients, s.Throughput,
		float64(s.Mean)/1e3, float64(s.Median)/1e3, float64(s.P99)/1e3)
	if s.Errors > 0 {
		row += fmt.Sprintf("  ERRORS=%d", s.Errors)
	}
	return row
}
