// Package stats provides the latency/throughput summaries the benchmark
// harness reports: streaming histograms with percentile queries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// LatencyRecorder accumulates operation latencies.
type LatencyRecorder struct {
	samples []time.Duration
	sum     time.Duration
	sorted  bool
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sum += d
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Mean returns the average latency (0 if empty).
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / time.Duration(len(r.samples))
}

// Percentile returns the q-th percentile (0 < q <= 100) by nearest-rank.
func (r *LatencyRecorder) Percentile(q float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	rank := int(math.Ceil(q / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Median is Percentile(50).
func (r *LatencyRecorder) Median() time.Duration { return r.Percentile(50) }

// P99 is Percentile(99).
func (r *LatencyRecorder) P99() time.Duration { return r.Percentile(99) }

// Max returns the largest sample.
func (r *LatencyRecorder) Max() time.Duration { return r.Percentile(100) }

// Reset discards all samples.
func (r *LatencyRecorder) Reset() {
	r.samples = r.samples[:0]
	r.sum = 0
	r.sorted = false
}

// Summary is a point on a throughput-latency curve.
type Summary struct {
	Clients    int
	Throughput float64 // operations per second
	Mean       time.Duration
	Median     time.Duration
	P99        time.Duration
	Aborts     int64 // protocol-level retries/aborts, if applicable
	Errors     int64 // clients that stopped on an operation error
}

// String formats the summary as one table row.
func (s Summary) String() string {
	row := fmt.Sprintf("clients=%4d  tput=%10.0f op/s  mean=%8.2fµs  p50=%8.2fµs  p99=%8.2fµs",
		s.Clients, s.Throughput,
		float64(s.Mean)/1e3, float64(s.Median)/1e3, float64(s.P99)/1e3)
	if s.Errors > 0 {
		row += fmt.Sprintf("  ERRORS=%d", s.Errors)
	}
	return row
}
