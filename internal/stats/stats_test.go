package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Mean() != 0 || r.Median() != 0 || r.P99() != 0 || r.Count() != 0 {
		t.Fatal("empty recorder returned nonzero stats")
	}
}

func TestMean(t *testing.T) {
	r := NewLatencyRecorder()
	for _, d := range []time.Duration{10, 20, 30} {
		r.Record(d * time.Microsecond)
	}
	if r.Mean() != 20*time.Microsecond {
		t.Fatalf("mean %v", r.Mean())
	}
}

// within asserts got is within the histogram's ~1.6% bucket resolution of
// want.
func within(t *testing.T, name string, got, want time.Duration) {
	t.Helper()
	lo := want - want/32
	hi := want + want/32
	if got < lo || got > hi {
		t.Fatalf("%s = %v, want %v ±3%%", name, got, want)
	}
}

func TestPercentiles(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	within(t, "p50", r.Median(), 50*time.Microsecond)
	within(t, "p99", r.P99(), 99*time.Microsecond)
	if got := r.Max(); got != 100*time.Microsecond {
		t.Fatalf("max = %v (exact)", got)
	}
	within(t, "p1", r.Percentile(1), 1*time.Microsecond)
}

func TestSmallValuesExact(t *testing.T) {
	// Durations below 64 ns land in 1 ns buckets: percentiles are exact.
	r := NewLatencyRecorder()
	for i := 1; i <= 50; i++ {
		r.Record(time.Duration(i))
	}
	if got := r.Median(); got != 25 {
		t.Fatalf("p50 = %v, want 25ns exactly", got)
	}
}

func TestRecordAfterPercentileQuery(t *testing.T) {
	// Interleaving Record and Percentile must not corrupt results.
	r := NewLatencyRecorder()
	r.Record(5 * time.Microsecond)
	_ = r.Median()
	r.Record(1 * time.Microsecond)
	if got := r.Percentile(100); got != 5*time.Microsecond {
		t.Fatalf("max after interleaved record = %v", got)
	}
	within(t, "p1 after interleaved record", r.Percentile(1), 1*time.Microsecond)
}

func TestReset(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(time.Second)
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 || r.Max() != 0 || r.Median() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's ceiling must map back to the same bucket, and bucket
	// ceilings must be strictly increasing.
	prev := time.Duration(-1)
	for idx := 0; idx < numBuckets; idx++ {
		c := bucketCeil(idx)
		if bucketIndex(c) != idx {
			t.Fatalf("bucket %d: ceil %d maps to bucket %d", idx, c, bucketIndex(c))
		}
		if c <= prev {
			t.Fatalf("bucket %d: ceil %v not above previous %v", idx, c, prev)
		}
		prev = c
	}
}

// Property: percentiles are monotone in q and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		min := time.Duration(1<<62 - 1)
		max := time.Duration(0)
		for _, v := range raw {
			d := time.Duration(v) * time.Nanosecond
			r.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		prev := time.Duration(0)
		for _, q := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			p := r.Percentile(q)
			if p < prev || p < min || p > max {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// Property: a percentile never under-reports its exact nearest-rank value
// and overshoots by at most one bucket width (~1.6%).
func TestQuickPercentileAccuracy(t *testing.T) {
	f := func(raw []uint32, qi uint8) bool {
		if len(raw) == 0 {
			return true
		}
		q := float64(qi%100) + 1 // 1..100
		r := NewLatencyRecorder()
		sorted := make([]time.Duration, 0, len(raw))
		for _, v := range raw {
			d := time.Duration(v)
			r.Record(d)
			sorted = append(sorted, d)
		}
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		rank := int(float64(len(sorted))*q/100 + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		exact := sorted[rank-1]
		got := r.Percentile(q)
		return got >= exact && got <= exact+exact/32+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Clients: 8, Throughput: 1e6, Mean: 10 * time.Microsecond, Median: 9 * time.Microsecond, P99: 30 * time.Microsecond}
	str := s.String()
	if str == "" {
		t.Fatal("empty summary string")
	}
}
