package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Mean() != 0 || r.Median() != 0 || r.P99() != 0 || r.Count() != 0 {
		t.Fatal("empty recorder returned nonzero stats")
	}
}

func TestMean(t *testing.T) {
	r := NewLatencyRecorder()
	for _, d := range []time.Duration{10, 20, 30} {
		r.Record(d * time.Microsecond)
	}
	if r.Mean() != 20*time.Microsecond {
		t.Fatalf("mean %v", r.Mean())
	}
}

func TestPercentiles(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if got := r.Median(); got != 50*time.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.P99(); got != 99*time.Microsecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := r.Max(); got != 100*time.Microsecond {
		t.Fatalf("max = %v", got)
	}
	if got := r.Percentile(1); got != 1*time.Microsecond {
		t.Fatalf("p1 = %v", got)
	}
}

func TestRecordAfterPercentileQuery(t *testing.T) {
	// Interleaving Record and Percentile must not corrupt results.
	r := NewLatencyRecorder()
	r.Record(5 * time.Microsecond)
	_ = r.Median()
	r.Record(1 * time.Microsecond)
	if got := r.Percentile(100); got != 5*time.Microsecond {
		t.Fatalf("max after interleaved record = %v", got)
	}
	if got := r.Percentile(1); got != 1*time.Microsecond {
		t.Fatalf("min after interleaved record = %v", got)
	}
}

func TestReset(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(time.Second)
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
}

// Property: percentiles are monotone in q and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		min := time.Duration(1<<62 - 1)
		max := time.Duration(0)
		for _, v := range raw {
			d := time.Duration(v) * time.Nanosecond
			r.Record(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		prev := time.Duration(0)
		for _, q := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			p := r.Percentile(q)
			if p < prev || p < min || p > max {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Clients: 8, Throughput: 1e6, Mean: 10 * time.Microsecond, Median: 9 * time.Microsecond, P99: 30 * time.Microsecond}
	str := s.String()
	if str == "" {
		t.Fatal("empty summary string")
	}
}
