package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Microsecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Microsecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Microsecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != Time(30*time.Microsecond) {
		t.Fatalf("clock = %v, want 30µs", e.Now())
	}
}

func TestScheduleFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(-time.Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(time.Microsecond, func() { got = append(got, 1) })
	e.Schedule(3*time.Microsecond, func() { got = append(got, 2) })
	e.RunUntil(Time(2 * time.Microsecond))
	if len(got) != 1 {
		t.Fatalf("RunUntil executed %v", got)
	}
	if e.Now() != Time(2*time.Microsecond) {
		t.Fatalf("clock = %v, want 2µs", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(got) != 2 {
		t.Fatalf("remaining event did not fire: %v", got)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, func() {
			n++
			if n == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 2 {
		t.Fatalf("ran %d events after Stop, want 2", n)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Microsecond)
		wake = p.Now()
	})
	e.Run()
	if wake != Time(42*time.Microsecond) {
		t.Fatalf("woke at %v, want 42µs", wake)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	mk := func(name string, d time.Duration) {
		e.Go(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(d)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 10*time.Microsecond)
	mk("b", 15*time.Microsecond)
	e.Run()
	// a wakes at 10, 20, 30; b wakes at 15, 30, 45. At the t=30 tie, b's
	// wakeup was scheduled (at t=15) before a's (at t=20), so b runs first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestFutureWait(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[int](e)
	var got int
	var at Time
	e.Go("waiter", func(p *Proc) {
		got = f.Wait(p)
		at = p.Now()
	})
	e.Schedule(7*time.Microsecond, func() { f.Complete(99) })
	e.Run()
	if got != 99 || at != Time(7*time.Microsecond) {
		t.Fatalf("got %d at %v", got, at)
	}
}

func TestFutureWaitAlreadyComplete(t *testing.T) {
	e := NewEngine(1)
	f := CompletedFuture(e, "x")
	var got string
	e.Go("waiter", func(p *Proc) { got = f.Wait(p) })
	e.Run()
	if got != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[int](e)
	f.Complete(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Complete did not panic")
		}
	}()
	f.Complete(2)
}

func TestWaitQuorum(t *testing.T) {
	e := NewEngine(1)
	fs := make([]*Future[int], 5)
	for i := range fs {
		fs[i] = NewFuture[int](e)
	}
	var got []int
	var at Time
	e.Go("q", func(p *Proc) {
		got = WaitQuorum(p, 3, fs)
		at = p.Now()
	})
	// complete in scrambled order: 2@1µs, 4@2µs, 0@3µs, rest later
	e.Schedule(1*time.Microsecond, func() { fs[2].Complete(20) })
	e.Schedule(2*time.Microsecond, func() { fs[4].Complete(40) })
	e.Schedule(3*time.Microsecond, func() { fs[0].Complete(0) })
	e.Schedule(9*time.Microsecond, func() { fs[1].Complete(10) })
	e.Schedule(9*time.Microsecond, func() { fs[3].Complete(30) })
	e.Run()
	if at != Time(3*time.Microsecond) {
		t.Fatalf("quorum reached at %v, want 3µs", at)
	}
	if len(got) != 3 || got[0] != 20 || got[1] != 40 || got[2] != 0 {
		t.Fatalf("quorum values %v", got)
	}
}

func TestWaitQuorumAlreadySatisfied(t *testing.T) {
	e := NewEngine(1)
	fs := []*Future[int]{CompletedFuture(e, 1), CompletedFuture(e, 2), NewFuture[int](e)}
	var got []int
	e.Go("q", func(p *Proc) { got = WaitQuorum(p, 2, fs) })
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEngine(1)
	fs := make([]*Future[int], 3)
	for i := range fs {
		fs[i] = NewFuture[int](e)
		i := i
		e.Schedule(time.Duration(3-i)*time.Microsecond, func() { fs[i].Complete(i * 10) })
	}
	var got []int
	e.Go("all", func(p *Proc) { got = WaitAll(p, fs) })
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("got %v", got)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e, 3)
	var at Time
	e.Go("w", func(p *Proc) {
		wg.Wait(p)
		at = p.Now()
	})
	for i := 1; i <= 3; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, wg.Done)
	}
	e.Run()
	if at != Time(3*time.Microsecond) {
		t.Fatalf("woke at %v", at)
	}
}

func TestResourceFIFOQueueing(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e)
	var done []Time
	for i := 0; i < 3; i++ {
		r.Submit(10*time.Microsecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{Time(10 * time.Microsecond), Time(20 * time.Microsecond), Time(30 * time.Microsecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if r.BusyTime() != 30*time.Microsecond {
		t.Fatalf("busy %v", r.BusyTime())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e)
	var second Time
	r.Submit(5*time.Microsecond, nil)
	e.Schedule(100*time.Microsecond, func() {
		r.Submit(5*time.Microsecond, func() { second = e.Now() })
	})
	e.Run()
	if second != Time(105*time.Microsecond) {
		t.Fatalf("second completion %v, want 105µs (no queueing after idle)", second)
	}
}

func TestMultiResourceParallelism(t *testing.T) {
	e := NewEngine(1)
	m := NewMultiResource(e, 2)
	var done []Time
	for i := 0; i < 4; i++ {
		m.Submit(10*time.Microsecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	// 2 servers: first two finish at 10µs, next two at 20µs.
	want := []Time{Time(10 * time.Microsecond), Time(10 * time.Microsecond), Time(20 * time.Microsecond), Time(20 * time.Microsecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestResourceAcquireBlocks(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e)
	var order []string
	e.Go("a", func(p *Proc) {
		r.Acquire(p, 10*time.Microsecond)
		order = append(order, "a")
	})
	e.Go("b", func(p *Proc) {
		r.Acquire(p, 10*time.Microsecond)
		order = append(order, "b")
	})
	e.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order %v", order)
	}
	if e.Now() != Time(20*time.Microsecond) {
		t.Fatalf("finished at %v, want 20µs (serialized)", e.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		var samples []Time
		for i := 0; i < 10; i++ {
			e.Go("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(e.Rand().Intn(1000)) * time.Nanosecond)
					samples = append(samples, p.Now())
				}
			})
		}
		e.Run()
		return samples
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeAddSaturates(t *testing.T) {
	if Never.Add(time.Hour) != Never {
		t.Fatal("Time.Add overflowed past Never")
	}
}

func TestAtPastTimeClampsToNow(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Microsecond, func() {
		fired := false
		e.At(Time(2*time.Microsecond), func() { fired = true })
		_ = fired
	})
	// Must not panic or run events out of order; the past event fires at
	// the current instant.
	var order []int
	e.Schedule(10*time.Microsecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Microsecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("order %v", order)
	}
}

func TestProcYieldRunsSameInstantEvents(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Go("p", func(p *Proc) {
		trace = append(trace, "before")
		e.Schedule(0, func() { trace = append(trace, "event") })
		p.Yield()
		trace = append(trace, "after")
	})
	e.Run()
	want := []string{"before", "event", "after"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestFutureOnCompleteOrder(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture[int](e)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		f.OnComplete(func(int) { order = append(order, i) })
	}
	f.Complete(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("waiters not FIFO: %v", order)
		}
	}
}

func TestResourceQueueDelay(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e)
	if r.QueueDelay() != 0 {
		t.Fatal("idle resource reports backlog")
	}
	r.Submit(10*time.Microsecond, func() {})
	r.Submit(10*time.Microsecond, func() {})
	if got := r.QueueDelay(); got != 20*time.Microsecond {
		t.Fatalf("QueueDelay = %v, want 20µs", got)
	}
	e.Run() // clock advances past both completions
	if r.QueueDelay() != 0 {
		t.Fatal("drained resource reports backlog")
	}
}

func TestMultiResourceAcquire(t *testing.T) {
	e := NewEngine(1)
	m := NewMultiResource(e, 2)
	var done []Time
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			m.Acquire(p, 10*time.Microsecond)
			done = append(done, p.Now())
		})
	}
	e.Run()
	// Two run in parallel, third queues: completions at 10, 10, 20.
	if len(done) != 3 || done[0] != Time(10*time.Microsecond) || done[2] != Time(20*time.Microsecond) {
		t.Fatalf("completions %v", done)
	}
}

func TestWaitQuorumZero(t *testing.T) {
	e := NewEngine(1)
	fs := []*Future[int]{NewFuture[int](e)}
	var got []int
	e.Go("q", func(p *Proc) { got = WaitQuorum(p, 0, fs) })
	e.Run()
	if len(got) != 0 {
		t.Fatalf("k=0 returned %v", got)
	}
}

// TestTimerStopGenerationAcrossWindows: a Timer handle that survives a
// window barrier must not cancel the recycled incarnation of its event
// object. The handle's event fires in an early window, the object is
// reused for a fresh event in a later window, and only then is the stale
// Stop attempted — with multiple worker goroutines, so the guard is
// exercised under the exact interleaving domain barriers produce.
func TestTimerStopGenerationAcrossWindows(t *testing.T) {
	e := NewEngine(1)
	other := e.World().NewDomain()
	e.World().DeclareLookahead(10 * time.Microsecond)
	e.World().SetWorkers(2)
	var barriers int
	e.World().OnBarrier(func() { barriers++ })

	// Keep the second domain busy so the world actually runs windows.
	for i := 1; i <= 5; i++ {
		other.Schedule(Duration(i)*10*time.Microsecond, func() {})
	}

	fired, want := 0, 1
	// Window 1: the handle's event fires and its object is recycled.
	stale := e.Schedule(time.Microsecond, func() { fired++ })
	barrierAtFire := -1
	e.Schedule(2*time.Microsecond, func() { barrierAtFire = barriers })
	// A later window: the free list hands the same object to a new event.
	e.Schedule(25*time.Microsecond, func() {
		if barriers <= barrierAtFire {
			t.Errorf("no window barrier between fire (%d) and reuse (%d)", barrierAtFire, barriers)
		}
		// Drain the LIFO free list until it hands back stale's object.
		reused := false
		for i := 0; i < 4; i++ {
			tm := e.Schedule(10*time.Microsecond, func() { fired++ })
			want++
			if tm.ev == stale.ev {
				reused = true
				break
			}
		}
		if !reused {
			t.Error("free list did not reuse the stale timer's event object")
		}
		if stale.Stop() {
			t.Error("stale Timer handle cancelled a recycled event")
		}
	})
	e.Run()
	if fired != want {
		t.Fatalf("fired = %d of %d events (stale Stop killed a recycled event)", fired, want)
	}
}
