package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestLookaheadMatrixRelay: the all-pairs matrix takes the minimum over
// direct declarations, the uniform default, and relay paths through
// other domains; the diagonal becomes the cheapest round trip.
func TestLookaheadMatrixRelay(t *testing.T) {
	root := NewEngine(1)
	w := root.World()
	a, b, c := root, w.NewDomain(), w.NewDomain()
	def := Duration(1 * time.Millisecond)
	w.DeclareLookahead(def)
	w.SetLookahead(a, b, 10)
	w.SetLookahead(b, c, 20)
	w.rebuildDist()

	cases := []struct {
		src, dst *Engine
		want     Duration
	}{
		{a, b, 10},       // direct edge
		{b, c, 20},       // direct edge
		{a, c, 30},       // relay a->b->c beats the 1ms default
		{c, a, def},      // no cheaper relay exists
		{a, a, def + 10}, // cheapest cycle: a->b (10) + b->a (default)
		{b, b, def + 10}, // cheapest cycle: b->a (default) + a->b (10)
		{c, c, def + 20}, // cheapest cycle: c->b (default) + b->c (20)
	}
	for _, tc := range cases {
		if got := w.dist[tc.src.id][tc.dst.id]; got != tc.want {
			t.Errorf("dist[%d][%d] = %v, want %v", tc.src.id, tc.dst.id, got, tc.want)
		}
	}
	if w.scalarLA != 10 {
		t.Errorf("scalarLA = %v, want 10 (minimum over all bounds)", w.scalarLA)
	}

	// A tighter re-declaration wins.
	w.SetLookahead(a, b, 5)
	w.rebuildDist()
	if got := w.dist[a.id][b.id]; got != 5 {
		t.Errorf("after tightening, dist[a][b] = %v, want 5", got)
	}
}

// TestLookaheadUndeclaredPairsUnbounded: without a uniform default,
// pairs with no declared path stay unbounded (laInf) — they never
// constrain each other's horizons.
func TestLookaheadUndeclaredPairsUnbounded(t *testing.T) {
	root := NewEngine(1)
	w := root.World()
	a, b, c := root, w.NewDomain(), w.NewDomain()
	w.SetLookahead(a, b, 10)
	w.rebuildDist()
	if got := w.dist[a.id][b.id]; got != 10 {
		t.Fatalf("dist[a][b] = %v, want 10", got)
	}
	for _, pair := range [][2]*Engine{{b, a}, {a, c}, {c, a}, {b, c}, {c, b}} {
		if got := w.dist[pair[0].id][pair[1].id]; got < laInf {
			t.Errorf("dist[%d][%d] = %v, want unbounded", pair[0].id, pair[1].id, got)
		}
	}
}

// TestAtTailRunsAfterSameInstant: AtTail events run strictly after every
// ordinary event of the same instant — including ones scheduled by those
// events — and keep FIFO order among themselves.
func TestAtTailRunsAfterSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []string
	add := func(s string) func() { return func() { got = append(got, s) } }
	e.At(5, func() {
		got = append(got, "a")
		e.At(5, add("a2")) // same-instant follow-up still precedes tails
	})
	e.AtTail(5, add("tail1"))
	e.At(5, add("b"))
	e.AtTail(5, add("tail2"))
	e.At(6, add("later"))
	e.Run()
	want := []string{"a", "b", "a2", "tail1", "tail2", "later"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// lockstepWorld builds nDom event domains (beyond root) each running a
// chain of self-events spaced step apart, with every inter-domain bound
// set to la. It returns the execution log and the scheduler stats.
func lockstepWorld(t *testing.T, nDom int, step, la Duration, scalar bool) (string, WorldStats) {
	t.Helper()
	root := NewEngine(9)
	w := root.World()
	w.SetScalarWindows(scalar)
	doms := make([]*Engine, nDom)
	for i := range doms {
		doms[i] = w.NewDomain()
	}
	for i := range doms {
		for j := range doms {
			if i != j {
				w.SetLookahead(doms[i], doms[j], la)
			}
		}
	}
	log := ""
	for i, d := range doms {
		i, d := i, d
		var tick func()
		n := 0
		tick = func() {
			log += fmt.Sprintf("d%d@%v ", i, d.Now())
			if n++; n < 50 {
				d.Schedule(step, tick)
			}
		}
		d.Schedule(0, tick)
	}
	root.Run()
	return log, w.Stats()
}

// TestMatrixWindowsBeatScalar: with a long per-pair bound, matrix
// horizons cover several chain steps per window while the scalar rule —
// bound by the tightest lookahead anywhere in the world (here a pair of
// idle, closely-coupled domains) — barriers every step. Per-domain
// event outcomes must be identical; only the barrier count may differ
// (the global interleaving across domains is never observable).
func TestMatrixWindowsBeatScalar(t *testing.T) {
	run := func(scalar bool) (string, WorldStats) {
		root := NewEngine(9)
		w := root.World()
		w.SetScalarWindows(scalar)
		// Two busy domains with a generous mutual bound...
		f1, f2 := w.NewDomain(), w.NewDomain()
		w.SetLookahead(f1, f2, Duration(5*time.Microsecond))
		w.SetLookahead(f2, f1, Duration(5*time.Microsecond))
		// ...and two idle domains whose tight coupling sets the scalar bound.
		c1, c2 := w.NewDomain(), w.NewDomain()
		w.SetLookahead(c1, c2, 10)
		w.SetLookahead(c2, c1, 10)
		logs := make([]string, 2)
		for i, d := range []*Engine{f1, f2} {
			i, d := i, d
			n := 0
			var tick func()
			tick = func() {
				logs[i] += fmt.Sprintf("d%d@%v ", i, d.Now())
				if n++; n < 50 {
					d.Schedule(Duration(time.Microsecond), tick)
				}
			}
			d.Schedule(0, tick)
		}
		root.Run()
		return logs[0] + "| " + logs[1], w.Stats()
	}
	matLog, mat := run(false)
	scaLog, sca := run(true)
	if matLog != scaLog {
		t.Fatalf("event outcomes differ between window rules:\nmatrix: %s\nscalar: %s", matLog, scaLog)
	}
	if mat.Barriers >= sca.Barriers {
		t.Fatalf("matrix barriers (%d) not fewer than scalar (%d)", mat.Barriers, sca.Barriers)
	}
	if sca.Barriers < 50 {
		t.Fatalf("scalar mode barriered only %d times; expected one per chain step", sca.Barriers)
	}
	if mat.Windows == 0 || mat.SpanWindows == 0 || mat.MeanWindow() <= sca.MeanWindow() {
		t.Fatalf("matrix windows=%d mean=%v vs scalar mean=%v; expected longer matrix windows",
			mat.Windows, mat.MeanWindow(), sca.MeanWindow())
	}
}

// TestWorldStatsCounters: the telemetry snapshot reflects domain count,
// executed windows, and fabric-reported cross deliveries.
func TestWorldStatsCounters(t *testing.T) {
	log, stats := lockstepWorld(t, 3, Duration(time.Microsecond), Duration(time.Microsecond), false)
	if log == "" {
		t.Fatal("no events executed")
	}
	if stats.Domains != 4 { // root + 3
		t.Fatalf("Domains = %d, want 4", stats.Domains)
	}
	if stats.Windows == 0 || stats.Barriers == 0 {
		t.Fatalf("windows=%d barriers=%d; expected nonzero", stats.Windows, stats.Barriers)
	}
	w := NewEngine(1).World()
	w.AddCrossDeliveries(3)
	w.AddCrossDeliveries(4)
	if got := w.Stats().CrossDeliveries; got != 7 {
		t.Fatalf("CrossDeliveries = %d, want 7", got)
	}
}
