package sim

import "math/bits"

// Hierarchical timer wheel: the pending-event structure behind every
// Engine (one wheel per domain). It replaces the former container/heap
// event heap with O(1) schedule and cancel for the near-future timers
// that dominate the simulation — propagation delays a few microseconds
// out, and retransmission guards that are almost always stopped before
// they fire — at the cost of an occasional lazy cascade when the clock
// crosses a coarse slot boundary.
//
// Geometry: wheelLevels levels of wheelSlots slots each. A level-l slot
// spans 2^(wheelLevelBits*l) nanoseconds, so level 0 slots are exact
// instants (1 ns), level 1 slots span 256 ns, level 2 spans 65.5 µs, and
// the whole wheel reaches 2^48 ns ≈ 78 virtual hours; anything farther
// parks on an unsorted overflow list that is re-examined when the clock
// crosses a top-level boundary (in practice: never).
//
// Placement invariant: every pending event is filed at the level of the
// highest bit in which its instant differs from the wheel clock cur —
// equivalently, the finest level at which the event and cur occupy
// different slots. advance restores the invariant when cur moves: the
// slots that newly contain cur at each level are cascaded, re-filing
// their members one level (or more) finer. The invariant is what makes
// next exact and cheap: levels are totally ordered (every level-l event
// precedes every level-(l+1) event), so the earliest pending instant is
// the first occupied slot of the finest occupied level, found by a few
// occupancy-bitmap scans with no mutation — run() consults next for
// every domain at every barrier, so it must not cascade (cascading is
// only safe while the domain is executing inside its window).
//
// Ordering is unchanged from the heap: collect hands runWindow one exact
// instant's events, which it replays in the canonical (ordinary-by-seq,
// then tail-by-seq) order; across instants the wheel fires in time
// order. Timer.Stop keeps its generation-counted semantics: a wheel
// removal is an O(1) list unlink instead of an O(log n) heap sift.
type wheel struct {
	cur   Time // wheel clock: the instant last advanced to (<= owning domain's now)
	count int  // events filed in slots + overflow

	slots [wheelLevels][wheelSlots]*event
	occ   [wheelLevels][wheelWords]uint64

	// overflow holds events beyond the wheel horizon, unsorted (scanned
	// linearly by next; essentially always empty).
	overflow []*event

	// nextAt caches the earliest pending instant: kept in lockstep by
	// insert (min), invalidated when the cached minimum is removed or
	// collected. Barriers call next once per domain per window, so the
	// cache makes the common repeat lookups free.
	nextAt    Time
	nextValid bool

	// cascades counts events re-filed to a finer level by advance
	// (scheduler telemetry: wheel_cascades).
	cascades int64
}

const (
	wheelLevelBits = 8
	wheelSlots     = 1 << wheelLevelBits
	wheelSlotMask  = wheelSlots - 1
	wheelLevels    = 6
	wheelWords     = wheelSlots / 64
)

// insert files ev (whose at must be >= the owning domain's now, hence >=
// cur) at the level of the highest bit where it differs from cur.
func (w *wheel) insert(ev *event) {
	d := uint64(ev.at) ^ uint64(w.cur)
	lvl := 0
	if d != 0 {
		lvl = (63 - bits.LeadingZeros64(d)) / wheelLevelBits
	}
	w.count++
	if w.nextValid && ev.at < w.nextAt {
		w.nextAt = ev.at
	}
	if lvl >= wheelLevels {
		ev.state = evOverflow
		w.overflow = append(w.overflow, ev)
		return
	}
	s := int(uint64(ev.at)>>(uint(lvl)*wheelLevelBits)) & wheelSlotMask
	ev.level = uint8(lvl)
	ev.slot = uint8(s)
	ev.state = evWheel
	head := w.slots[lvl][s]
	ev.prev = nil
	ev.next = head
	if head != nil {
		head.prev = ev
	}
	w.slots[lvl][s] = ev
	w.occ[lvl][s>>6] |= 1 << (uint(s) & 63)
}

// remove unlinks a pending event (the Timer.Stop path): O(1) for wheel
// residents, a linear scan of the (essentially always empty) overflow
// list otherwise.
func (w *wheel) remove(ev *event) {
	if ev.state == evOverflow {
		for i, o := range w.overflow {
			if o == ev {
				last := len(w.overflow) - 1
				w.overflow[i] = w.overflow[last]
				w.overflow[last] = nil
				w.overflow = w.overflow[:last]
				break
			}
		}
	} else {
		if ev.prev != nil {
			ev.prev.next = ev.next
		} else {
			w.slots[ev.level][ev.slot] = ev.next
			if ev.next == nil {
				w.occ[ev.level][ev.slot>>6] &^= 1 << (uint(ev.slot) & 63)
			}
		}
		if ev.next != nil {
			ev.next.prev = ev.prev
		}
	}
	ev.prev, ev.next = nil, nil
	ev.state = evIdle
	w.count--
	if w.nextValid && ev.at == w.nextAt {
		w.nextValid = false // the cached minimum may just have left
	}
}

// next returns the earliest pending instant, or Never. It never mutates
// slot contents, so it is safe to call between windows (at barriers),
// when conservative lookahead does not yet license advancing the clock.
func (w *wheel) next() Time {
	if !w.nextValid {
		w.nextAt = w.scan()
		w.nextValid = true
	}
	return w.nextAt
}

func (w *wheel) scan() Time {
	cur := uint64(w.cur)
	// Level 0 slots are exact instants within the current 256 ns lap.
	if s, ok := w.firstOcc(0, int(cur)&wheelSlotMask); ok {
		return Time(cur&^wheelSlotMask | uint64(s))
	}
	// Coarser levels: the first occupied slot of the finest occupied
	// level bounds every coarser level, so its members hold the minimum;
	// the slot spans more than one instant, so scan it for the earliest.
	for l := 1; l < wheelLevels; l++ {
		if s, ok := w.firstOcc(l, int(cur>>(uint(l)*wheelLevelBits))&wheelSlotMask); ok {
			min := Never
			for ev := w.slots[l][s]; ev != nil; ev = ev.next {
				if ev.at < min {
					min = ev.at
				}
			}
			return min
		}
	}
	min := Never
	for _, ev := range w.overflow {
		if ev.at < min {
			min = ev.at
		}
	}
	return min
}

// firstOcc finds the first occupied slot index >= from at level l.
func (w *wheel) firstOcc(l, from int) (int, bool) {
	wi := from >> 6
	word := w.occ[l][wi] &^ (1<<(uint(from)&63) - 1)
	for {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word), true
		}
		wi++
		if wi >= wheelWords {
			return 0, false
		}
		word = w.occ[l][wi]
	}
}

// advance moves the wheel clock to t, restoring the placement invariant:
// at every level the slot that newly contains t is cascaded, re-filing
// its members finer relative to the new clock. Only called from the
// executing window (collect), where lookahead guarantees no event before
// t can still arrive; t is the next pending instant, so no occupied slot
// between the old and new clock is skipped.
func (w *wheel) advance(t Time) {
	if t == w.cur {
		return
	}
	topCrossed := uint64(w.cur)>>(wheelLevels*wheelLevelBits) != uint64(t)>>(wheelLevels*wheelLevelBits)
	w.cur = t
	for l := wheelLevels - 1; l >= 1; l-- {
		s := int(uint64(t)>>(uint(l)*wheelLevelBits)) & wheelSlotMask
		ev := w.slots[l][s]
		if ev == nil {
			continue
		}
		w.slots[l][s] = nil
		w.occ[l][s>>6] &^= 1 << (uint(s) & 63)
		for ev != nil {
			nx := ev.next
			ev.prev, ev.next = nil, nil
			w.count-- // insert re-counts
			w.insert(ev)
			w.cascades++
			ev = nx
		}
	}
	if topCrossed && len(w.overflow) > 0 {
		// A top-level boundary crossing may bring overflow events within
		// the horizon. In-place filter: insert never re-appends here,
		// because only events that now fit in the wheel are re-filed.
		kept := w.overflow[:0]
		for _, ev := range w.overflow {
			d := uint64(ev.at) ^ uint64(t)
			if d != 0 && (63-bits.LeadingZeros64(d))/wheelLevelBits >= wheelLevels {
				kept = append(kept, ev)
				continue
			}
			w.count--
			w.insert(ev)
			w.cascades++
		}
		for i := len(kept); i < len(w.overflow); i++ {
			w.overflow[i] = nil
		}
		w.overflow = kept
	}
}

// collect advances the clock to t and drains every event at exactly
// instant t into the burst buffers, marked evBurst and partitioned into
// the ordinary and tail queues in ascending seq order. Returns the
// number collected.
func (w *wheel) collect(t Time, b *burst) int {
	w.advance(t)
	w.nextValid = false
	s := int(uint64(t)) & wheelSlotMask
	ev := w.slots[0][s]
	if ev == nil {
		return 0
	}
	w.slots[0][s] = nil
	w.occ[0][s>>6] &^= 1 << (uint(s) & 63)
	n := 0
	for ev != nil {
		nx := ev.next
		ev.prev, ev.next = nil, nil
		ev.state = evBurst
		ev.fromWheel = true
		if ev.tail {
			b.tail = append(b.tail, ev)
		} else {
			b.ord = append(b.ord, ev)
		}
		n++
		ev = nx
	}
	w.count -= n
	// Slot lists are push-front: reverse back to insertion order, which
	// is near-ascending in seq (cascades can perturb it), then finish
	// with a pass that is linear on sorted input.
	reverseEvents(b.ord)
	reverseEvents(b.tail)
	sortEventsBySeq(b.ord)
	sortEventsBySeq(b.tail)
	return n
}

func reverseEvents(evs []*event) {
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
}

func sortEventsBySeq(evs []*event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].seq < evs[j-1].seq; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}
