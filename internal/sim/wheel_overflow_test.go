package sim

import (
	"math/rand"
	"testing"
)

// Property test for the wheel's overflow list — the unsorted parking lot
// for events beyond the 2^48 ns horizon. TestWheelMatchesHeapReference
// samples it incidentally; this test concentrates on it: most deltas
// land past the horizon, clocks cross many top-level boundaries per run
// (each crossing must re-file exactly the overflow events that now fit
// the wheel), and Stops target both overflow residents (the linear
// unlink path in remove) and long-fired ids (the generation guard on
// stale Timer handles). Firing order and every Stop result must match
// the (at, tail, seq) reference model exactly.

// overflowDelta samples offsets that keep the overflow list busy: just
// past the horizon, several top-level laps out, a hair below the horizon
// (wheel-resident until the next boundary crossing flips what "fits"),
// and a few near-term ones so cascade traffic interleaves.
func overflowDelta(rng *rand.Rand) Duration {
	switch rng.Intn(6) {
	case 0: // just past the horizon
		return Duration(1<<48 + rng.Int63n(1<<20))
	case 1: // deep overflow: many top-level laps
		return Duration((1 + rng.Int63n(6)) << 48)
	case 2: // deep overflow, unaligned
		return Duration(1<<48 + rng.Int63n(1<<49))
	case 3: // just below the horizon: top-level wheel slots
		return Duration(1<<48 - 1 - rng.Int63n(1<<20))
	case 4: // near-term, fires first and drags the clock forward
		return Duration(rng.Intn(1 << 16))
	default:
		return Duration(rng.Intn(1 << 30))
	}
}

func TestWheelOverflowMatchesReference(t *testing.T) {
	for _, seed := range []int64{5, 21, 1717, 90210} {
		rng := rand.New(rand.NewSource(seed))

		// Children spawned from callbacks also reach past the horizon, so
		// overflow inserts happen mid-burst too, not just between runs.
		actions := make([]wheelAction, 64)
		for i := range actions {
			switch rng.Intn(4) {
			case 0: // do nothing
			case 1, 2:
				actions[i] = wheelAction{kind: 1, delta: overflowDelta(rng), tail: rng.Intn(2) == 0}
			case 3:
				actions[i] = wheelAction{kind: 2, victimOff: 1 + rng.Intn(8)}
			}
		}

		e := NewEngine(seed)
		timers := make(map[int]Timer)
		eng := &wheelDriver{actions: actions}
		eng.nowFn = e.Now
		eng.schedule = func(id int, at Time, tail bool) {
			fn := func() { eng.onFire(id) }
			if tail {
				timers[id] = e.AtTail(at, fn)
			} else {
				timers[id] = e.At(at, fn)
			}
		}
		eng.stopFn = func(id int) bool {
			tm, ok := timers[id]
			return ok && tm.Stop()
		}

		model := &refModel{}
		mod := &wheelDriver{actions: actions}
		mod.nowFn = func() Time { return model.now }
		mod.schedule = model.schedule
		mod.stopFn = model.stop

		extID := 1 << 20
		scheduleBoth := func(at Time, tail bool) {
			eng.schedule(extID, at, tail)
			mod.schedule(extID, at, tail)
			extID++
		}
		stopBoth := func(id int) {
			eng.stops = append(eng.stops, eng.stopFn(id))
			mod.stops = append(mod.stops, mod.stopFn(id))
		}

		overflowSeen := 0
		startLap := uint64(e.Now()) >> 48
		for round := 0; round < 10; round++ {
			if e.Now() != model.now {
				t.Fatalf("seed %d round %d: clocks diverged: engine %d model %d", seed, round, e.Now(), model.now)
			}
			base := e.Now()
			roundStart := extID
			for i := 0; i < 24; i++ {
				scheduleBoth(base.Add(overflowDelta(rng)), rng.Intn(4) == 0)
			}
			if n := len(e.wheel.overflow); n > overflowSeen {
				overflowSeen = n
			}
			// Stops biased toward this round's ids: many are still parked on
			// the overflow list, exercising its unlink scan while resident.
			for i := 0; i < 8; i++ {
				if rng.Intn(2) == 0 {
					stopBoth(roundStart + rng.Intn(extID-roundStart))
				} else {
					stopBoth(1<<20 + rng.Intn(extID-1<<20))
				}
			}
			e.Run()
			model.run(mod.onFire)
		}

		if overflowSeen == 0 {
			t.Fatalf("seed %d: overflow list never populated — deltas not reaching the horizon", seed)
		}
		if laps := uint64(e.Now())>>48 - startLap; laps < 2 {
			t.Fatalf("seed %d: crossed only %d top-level boundaries; want several re-filing crossings", seed, laps)
		}
		if len(eng.log) == 0 {
			t.Fatalf("seed %d: no events fired", seed)
		}
		if len(eng.log) != len(mod.log) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(eng.log), len(mod.log))
		}
		for i := range eng.log {
			if eng.log[i] != mod.log[i] {
				t.Fatalf("seed %d: firing order diverges at %d: engine id %d, reference id %d", seed, i, eng.log[i], mod.log[i])
			}
		}
		if len(eng.stops) != len(mod.stops) {
			t.Fatalf("seed %d: %d engine Stop calls vs %d reference", seed, len(eng.stops), len(mod.stops))
		}
		for i := range eng.stops {
			if eng.stops[i] != mod.stops[i] {
				t.Fatalf("seed %d: Stop result %d diverges: engine %v, reference %v", seed, i, eng.stops[i], mod.stops[i])
			}
		}
		if eng.nextID != mod.nextID {
			t.Fatalf("seed %d: spawned %d children, reference spawned %d", seed, eng.nextID, mod.nextID)
		}
		if e.Pending() != 0 || len(model.pending) != 0 {
			t.Fatalf("seed %d: leftover events: engine %d, reference %d", seed, e.Pending(), len(model.pending))
		}
	}
}
