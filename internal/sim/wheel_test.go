package sim

import (
	"math/rand"
	"testing"
	"time"
)

// Property test: the wheel + burst scheduler must be observationally
// identical to the heap it replaced. The reference model below is the
// old scheduler's contract distilled — a pending set fired in strict
// (at, tail, seq) order, Stop removing a pending entry and reporting
// whether it was still pending — and the test drives both it and a real
// Engine through the same randomized seeded interleavings of
// At/AtTail/Schedule/Stop, including schedules and stops issued from
// inside firing callbacks (the burst-buffer redirect and the mid-burst
// cancel path). Firing order and every Stop return value must match
// exactly, for every seed.

// refEvent is one pending entry in the reference model.
type refEvent struct {
	at   Time
	tail bool
	seq  uint64
	id   int
}

// refModel replays the heap scheduler's semantics: fire the minimum by
// (at, tail, seq); Stop unlinks a pending entry. Extraction is O(n²) —
// it is a test oracle, not a scheduler.
type refModel struct {
	seq     uint64
	pending []refEvent
	now     Time
}

func (m *refModel) schedule(id int, at Time, tail bool) {
	m.pending = append(m.pending, refEvent{at: at, tail: tail, seq: m.seq, id: id})
	m.seq++
}

func (m *refModel) stop(id int) bool {
	for i := range m.pending {
		if m.pending[i].id == id {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return true
		}
	}
	return false
}

func (m *refModel) run(fire func(id int)) {
	for len(m.pending) > 0 {
		best := 0
		for i := 1; i < len(m.pending); i++ {
			a, b := &m.pending[i], &m.pending[best]
			if a.at != b.at {
				if a.at < b.at {
					best = i
				}
			} else if a.tail != b.tail {
				if !a.tail {
					best = i
				}
			} else if a.seq < b.seq {
				best = i
			}
		}
		ev := m.pending[best]
		m.pending = append(m.pending[:best], m.pending[best+1:]...)
		m.now = ev.at
		fire(ev.id)
	}
}

// wheelAction is what an event's callback does when it fires, fixed per
// id (mod the table size) so both sides replay identical behavior.
type wheelAction struct {
	kind      int // 0 none, 1 spawn a child event, 2 stop an earlier timer
	delta     Duration
	tail      bool
	victimOff int
}

// wheelDriver is one side of the co-simulation: the shared callback
// logic bound to either the real Engine or the reference model.
type wheelDriver struct {
	schedule func(id int, at Time, tail bool)
	stopFn   func(id int) bool
	nowFn    func() Time
	actions  []wheelAction
	nextID   int
	log      []int
	stops    []bool
}

func (d *wheelDriver) onFire(id int) {
	d.log = append(d.log, id)
	a := d.actions[id%len(d.actions)]
	switch a.kind {
	case 1:
		child := d.nextID
		d.nextID++
		d.schedule(child, d.nowFn().Add(a.delta), a.tail)
	case 2:
		if v := id - a.victimOff; v >= 0 {
			d.stops = append(d.stops, d.stopFn(v))
		}
	}
}

// wheelDelta samples a scheduling offset spanning every wheel level —
// same-instant (0), level 0, mid levels, and past the 2^48 ns horizon
// into the overflow list.
func wheelDelta(rng *rand.Rand) Duration {
	switch rng.Intn(6) {
	case 0:
		return 0
	case 1:
		return Duration(rng.Intn(256))
	case 2:
		return Duration(rng.Intn(1 << 16))
	case 3:
		return Duration(rng.Intn(1 << 30))
	case 4:
		return time.Duration(rng.Intn(1<<20)) * time.Second // levels 4-5
	default:
		return Duration(1<<48 + rng.Int63n(1<<49)) // overflow horizon
	}
}

func TestWheelMatchesHeapReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 17, 99, 4242} {
		rng := rand.New(rand.NewSource(seed))

		actions := make([]wheelAction, 64)
		for i := range actions {
			switch k := rng.Intn(4); k {
			case 0, 1: // half the events do nothing
			case 2:
				actions[i] = wheelAction{kind: 1, delta: wheelDelta(rng), tail: rng.Intn(2) == 0}
			case 3:
				actions[i] = wheelAction{kind: 2, victimOff: 1 + rng.Intn(8)}
			}
		}

		e := NewEngine(seed)
		timers := make(map[int]Timer)
		eng := &wheelDriver{actions: actions}
		eng.nowFn = e.Now
		eng.schedule = func(id int, at Time, tail bool) {
			fn := func() { eng.onFire(id) }
			if tail {
				timers[id] = e.AtTail(at, fn)
			} else {
				timers[id] = e.At(at, fn)
			}
		}
		eng.stopFn = func(id int) bool {
			tm, ok := timers[id]
			return ok && tm.Stop()
		}

		model := &refModel{}
		mod := &wheelDriver{actions: actions}
		mod.nowFn = func() Time { return model.now }
		mod.schedule = model.schedule
		mod.stopFn = model.stop

		// Spawned children draw ids below the external namespace; external
		// schedules draw from extID so the two never collide.
		extID := 1 << 20
		scheduleBoth := func(at Time, tail bool) {
			eng.schedule(extID, at, tail)
			mod.schedule(extID, at, tail)
			extID++
		}
		stopBoth := func(id int) {
			eng.stops = append(eng.stops, eng.stopFn(id))
			mod.stops = append(mod.stops, mod.stopFn(id))
		}

		for round := 0; round < 8; round++ {
			if e.Now() != model.now {
				t.Fatalf("seed %d round %d: clocks diverged: engine %d model %d", seed, round, e.Now(), model.now)
			}
			base := e.Now()
			for i := 0; i < 24; i++ {
				scheduleBoth(base.Add(wheelDelta(rng)), rng.Intn(4) == 0)
			}
			// External stops: some from this round (pending → true), some
			// from earlier rounds (fired or stopped → false), some via the
			// stale handle of a long-gone id (generation guard → false).
			for i := 0; i < 6; i++ {
				stopBoth(1<<20 + rng.Intn(extID-1<<20))
			}
			e.Run()
			model.run(mod.onFire)
		}

		if len(eng.log) == 0 {
			t.Fatalf("seed %d: no events fired", seed)
		}
		if len(eng.log) != len(mod.log) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(eng.log), len(mod.log))
		}
		for i := range eng.log {
			if eng.log[i] != mod.log[i] {
				t.Fatalf("seed %d: firing order diverges at %d: engine id %d, reference id %d", seed, i, eng.log[i], mod.log[i])
			}
		}
		if len(eng.stops) != len(mod.stops) {
			t.Fatalf("seed %d: %d engine Stop calls vs %d reference", seed, len(eng.stops), len(mod.stops))
		}
		for i := range eng.stops {
			if eng.stops[i] != mod.stops[i] {
				t.Fatalf("seed %d: Stop result %d diverges: engine %v, reference %v", seed, i, eng.stops[i], mod.stops[i])
			}
		}
		if eng.nextID != mod.nextID {
			t.Fatalf("seed %d: spawned %d children, reference spawned %d", seed, eng.nextID, mod.nextID)
		}
		if e.Pending() != 0 || len(model.pending) != 0 {
			t.Fatalf("seed %d: leftover events: engine %d, reference %d", seed, e.Pending(), len(model.pending))
		}
	}
}
