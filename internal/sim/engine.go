// Package sim provides a deterministic discrete-event simulation engine.
//
// The simulator is organized as a World of event domains. Each domain
// (represented by an Engine handle) owns its own virtual clock, event
// heap, free list, and seeded RNG stream; a conservative time-window
// scheduler advances all domains together. Within one synchronized
// window, domains are independent — they may execute on parallel worker
// goroutines — because cross-domain interaction is only possible through
// messages whose minimum propagation latency (the lookahead, declared by
// the fabric) bounds the window length. Deliveries produced during a
// window are buffered and merged at the window barrier in a fixed total
// order, so execution is deterministic at any worker count.
//
// A single-domain world (the common case for unit tests) degenerates to
// the classic single-heap event loop with identical semantics.
//
// Work is expressed either as plain callback events (Schedule/At) or as
// blocking processes (Go), which are goroutines that run under a strict
// handoff discipline: at any moment, at most one goroutine per domain —
// the domain's window loop or exactly one of its processes — is
// executing. This keeps all simulation state domain-local (no data
// races, fully deterministic) while letting protocol code be written in
// a natural blocking style (Sleep, Future.Wait, Resource.Acquire).
//
// Determinism: events at the same virtual time fire in the order they
// were scheduled (FIFO tie-break by sequence number), every domain's RNG
// is seeded from the world seed and the domain id, and barrier merges
// order cross-domain deliveries by (time, source domain, send sequence).
// Two runs with the same seed produce identical traces at any worker
// count.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a virtual instant, in nanoseconds since the start of the run.
type Time int64

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

const (
	// Never is a sentinel Time later than any reachable instant.
	Never Time = 1<<63 - 1
)

// Add returns t shifted by d, saturating at Never.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if s < t && d > 0 {
		return Never
	}
	return s
}

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as a duration from time zero.
func (t Time) String() string { return Duration(t).String() }

type event struct {
	at   Time
	seq  uint64
	fn   func()
	heap int // index in the heap, -1 when popped/cancelled
	// gen counts recycles of this event object. Timers snapshot it so a
	// stale handle to a fired-and-reused event cannot cancel its successor.
	gen  uint32
	next *event // free-list link while recycled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.heap = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.heap = -1
	*h = old[:n-1]
	return e
}

// World coordinates a set of event domains through conservative
// synchronized windows. It is created implicitly by NewEngine; further
// domains are added with NewDomain (the fabric adds one per node).
type World struct {
	seed    int64
	domains []*Engine
	workers int

	// lookahead is the minimum cross-domain propagation latency declared
	// by the fabrics on this world (0 = none declared yet). It bounds how
	// far a window may run past the global minimum next-event time.
	lookahead Duration

	// barriers run at every window barrier (and before the first window),
	// single-threaded, with all domains paused. The fabric uses them to
	// merge and deliver cross-domain mailboxes.
	barriers []func()

	procs   atomic.Int64 // live processes across all domains
	stopped atomic.Bool
	running bool

	active []*Engine // per-window scratch: domains with runnable events
}

// NewDomain adds an event domain to the world and returns its Engine
// handle. Domain 0 keeps the RNG stream of the world seed itself (so a
// single-domain world is stream-compatible with the historical engine);
// later domains get decorrelated SplitMix64-derived streams.
func (w *World) NewDomain() *Engine {
	id := len(w.domains)
	seed := w.seed
	if id > 0 {
		seed = domainSeed(w.seed, id)
	}
	e := &Engine{w: w, id: id, rng: rand.New(rand.NewSource(seed))}
	w.domains = append(w.domains, e)
	return e
}

// domainSeed decorrelates per-domain RNG streams (one SplitMix64 step).
func domainSeed(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SetWorkers sets how many OS goroutines execute domains within one
// window (<=1 = serial). Output is byte-identical at any setting.
func (w *World) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	w.workers = n
}

// Workers returns the configured intra-window worker count.
func (w *World) Workers() int { return w.workers }

// Domains returns the number of event domains in the world.
func (w *World) Domains() int { return len(w.domains) }

// DeclareLookahead lower-bounds the window length: no cross-domain
// message sent at time t can be delivered before t+d. Multiple fabrics
// may declare; the minimum (clamped to >= 1ns) wins.
func (w *World) DeclareLookahead(d Duration) {
	if d < 1 {
		d = 1
	}
	if w.lookahead == 0 || d < w.lookahead {
		w.lookahead = d
	}
}

// OnBarrier registers fn to run at every window barrier, while all
// domains are paused. Hooks run in registration order on the
// coordinating goroutine.
func (w *World) OnBarrier(fn func()) {
	w.barriers = append(w.barriers, fn)
}

// LiveProcs reports the number of processes that have started but not
// finished (parked processes included), across all domains.
func (w *World) LiveProcs() int { return int(w.procs.Load()) }

// run advances the whole world until no domain has an event at or before
// deadline, or Stop is called.
func (w *World) run(deadline Time) {
	if w.running {
		panic("sim: re-entrant Run")
	}
	w.running = true
	w.stopped.Store(false)
	defer func() { w.running = false }()

	la := w.lookahead
	if la == 0 {
		la = 1
	}
	single := len(w.domains) == 1
	for {
		// Barrier: merge cross-domain mailboxes into destination heaps.
		// Runs before the window-start computation so flushed deliveries
		// participate in it, and before the first window so messages sent
		// from setup code are delivered.
		for _, fn := range w.barriers {
			fn()
		}
		if w.stopped.Load() {
			break
		}
		// Window start W: the global minimum next-event time.
		start := Never
		for _, d := range w.domains {
			if len(d.events) > 0 && d.events[0].at < start {
				start = d.events[0].at
			}
		}
		if start == Never || start > deadline {
			break
		}
		// Window limit (inclusive): events at t <= limit are safe to run
		// because no cross-domain message generated at t >= W can arrive
		// before W+lookahead. A single-domain world has no cross traffic,
		// so the window covers the whole run.
		limit := deadline
		if !single {
			if x := start.Add(la); x-1 < limit {
				limit = x - 1
			}
		}
		if w.workers <= 1 || single {
			for _, d := range w.domains {
				d.runWindow(limit)
			}
		} else {
			w.runParallel(limit)
		}
		if w.stopped.Load() {
			break
		}
	}
	// Leave every clock at the deadline if it was reached (mirroring the
	// historical single-engine semantics).
	if deadline != Never {
		for _, d := range w.domains {
			if d.now < deadline {
				d.now = deadline
			}
		}
	}
}

// runParallel executes one window with up to w.workers goroutines, each
// claiming whole domains. Domains never share state within a window, so
// this is race-free; determinism comes from the barrier merge order, not
// from scheduling.
func (w *World) runParallel(limit Time) {
	act := w.active[:0]
	for _, d := range w.domains {
		if len(d.events) > 0 && d.events[0].at <= limit {
			act = append(act, d)
		}
	}
	w.active = act
	nw := w.workers
	if nw > len(act) {
		nw = len(act)
	}
	if nw <= 1 {
		for _, d := range act {
			d.runWindow(limit)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make(chan any, nw)
	work := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				select {
				case panics <- r:
				default:
				}
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= len(act) {
				return
			}
			act[i].runWindow(limit)
		}
	}
	wg.Add(nw)
	for i := 1; i < nw; i++ {
		go work()
	}
	work()
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// Engine is one event domain of a World: a discrete-event scheduler with
// its own clock, heap, and RNG stream. It is not safe for concurrent use
// from outside; all interaction must happen from this domain's events
// and processes, or from the single goroutine that calls Run (between
// runs and at barriers).
//
// Run/RunUntil may be called on any domain handle; they advance the
// whole world.
type Engine struct {
	w   *World
	id  int
	now Time

	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// free is a free list of fired/cancelled event objects, reused by At
	// so steady-state scheduling does not allocate. Its length is bounded
	// by the maximum number of simultaneously pending events.
	free *event
}

// NewEngine returns a fresh world's root domain, with its virtual clock
// at zero and an RNG seeded with seed.
func NewEngine(seed int64) *Engine {
	w := &World{seed: seed, workers: 1}
	return w.NewDomain()
}

// World returns the world this domain belongs to.
func (e *Engine) World() *World { return e.w }

// DomainID returns this domain's index in its world (root = 0).
func (e *Engine) DomainID() int { return e.id }

// Now returns the domain's current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the domain's deterministic RNG. It must only be used from
// this domain's simulation context (events and processes).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after d has elapsed on the domain's clock. A negative
// d is treated as zero. The returned Timer can cancel the event.
func (e *Engine) Schedule(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at virtual instant t (or now, if t is in the past).
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.events, ev)
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// alloc takes an event object off the free list, or makes a fresh one.
func (e *Engine) alloc() *event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

// recycle returns a fired or cancelled event to the free list. Bumping gen
// invalidates any outstanding Timer for the old incarnation.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.next = e.free
	e.free = ev
}

// Timer is a handle to a scheduled event. The zero Timer is valid and
// behaves as an already-fired event.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint32
}

// Stop cancels the event if it has not fired. It reports whether the event
// was still pending. It must be called from the owning domain's context.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.heap < 0 {
		return false
	}
	heap.Remove(&t.e.events, t.ev.heap)
	t.e.recycle(t.ev)
	return true
}

// Stop halts the run loop after the current event completes. Pending
// events are left unfired. From parallel (multi-worker) domain context
// the halt is prompt but the exact cut point is scheduling-dependent;
// deterministic users call it from setup code between runs.
func (e *Engine) Stop() { e.w.stopped.Store(true) }

// Run processes events until every domain's heap is empty or Stop is
// called. It panics if called re-entrantly.
func (e *Engine) Run() { e.RunUntil(Never) }

// RunUntil processes events with timestamps <= deadline across all
// domains. Each domain's clock is left at the deadline if it is reached
// (and any events remain), or at the time of its last event otherwise.
func (e *Engine) RunUntil(deadline Time) { e.w.run(deadline) }

// runWindow executes this domain's events up to and including limit.
func (e *Engine) runWindow(limit Time) {
	w := e.w
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > limit {
			return
		}
		if w.stopped.Load() {
			return
		}
		heap.Pop(&e.events)
		e.now = next.at
		fn := next.fn
		e.recycle(next) // before fn: events scheduled inside fn reuse it
		fn()
	}
}

// Pending reports the number of events scheduled in this domain.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of processes that have started but not
// finished (parked processes included) across the whole world. Useful
// for leak detection in tests.
func (e *Engine) LiveProcs() int { return e.w.LiveProcs() }

// ---------------------------------------------------------------------------
// Processes

// Proc is a blocking simulation process. Its methods must only be called
// from the process's own goroutine.
//
// A process belongs to the domain it was spawned on, but a Future bound
// to another domain may resume it there: after Wait returns, the process
// runs in (and reads the clock of) the future's domain until its next
// suspension. Protocol code that blocks only on its own machine's
// connections never changes domains.
type Proc struct {
	cur    *Engine // domain currently executing (or about to execute) this proc
	name   string
	resume chan struct{} // domain loop -> proc handoff
	yield  chan struct{} // proc -> domain loop handoff
	dead   bool
}

// Go starts fn as a new process on this domain. fn begins executing at
// the current virtual time but only after the current event completes
// (it is scheduled like any other event).
func (e *Engine) Go(name string, fn func(p *Proc)) {
	p := &Proc{cur: e, name: name, resume: make(chan struct{}), yield: make(chan struct{})}
	e.w.procs.Add(1)
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.dead = true
		p.cur.w.procs.Add(-1)
		p.yield <- struct{}{} // return control to the domain loop
	}()
	e.Schedule(0, func() { p.step() })
}

// step transfers control to the process until it parks or exits. It must
// run in the domain execution context recorded in p.cur.
func (p *Proc) step() {
	if p.dead {
		panic(fmt.Sprintf("sim: resuming dead proc %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.yield
}

// resumeIn transfers control to the process within domain e's execution.
// The process observes e as its current domain until its next suspension.
func (p *Proc) resumeIn(e *Engine) {
	p.cur = e
	p.step()
}

// park returns control to the domain loop; the process resumes when
// something calls step (via a scheduled event or a future completion).
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Engine returns the domain this process is currently executing in.
func (p *Proc) Engine() *Engine { return p.cur }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time of the process's current domain.
func (p *Proc) Now() Time { return p.cur.now }

// Sleep suspends the process for d of virtual time on its current
// domain's clock.
func (p *Proc) Sleep(d Duration) {
	p.cur.Schedule(d, func() { p.step() })
	p.park()
}

// Yield suspends the process until all other events scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Sleep(0) }
