// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in nanoseconds and an event heap.
// Work is expressed either as plain callback events (Schedule/At) or as
// blocking processes (Go), which are goroutines that run one at a time
// under a strict handoff discipline: at any moment, at most one goroutine
// — the engine loop or exactly one process — is executing. This makes all
// simulation state single-threaded (no data races, fully deterministic)
// while letting protocol code be written in a natural blocking style
// (Sleep, Future.Wait, Resource.Acquire).
//
// Determinism: events at the same virtual time fire in the order they were
// scheduled (FIFO tie-break by sequence number), and the engine's RNG is
// seeded explicitly. Two runs with the same seed produce identical traces.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual instant, in nanoseconds since the start of the run.
type Time int64

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

const (
	// Never is a sentinel Time later than any reachable instant.
	Never Time = 1<<63 - 1
)

// Add returns t shifted by d, saturating at Never.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if s < t && d > 0 {
		return Never
	}
	return s
}

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as a duration from time zero.
func (t Time) String() string { return Duration(t).String() }

type event struct {
	at   Time
	seq  uint64
	fn   func()
	heap int // index in the heap, -1 when popped/cancelled
	// gen counts recycles of this event object. Timers snapshot it so a
	// stale handle to a fired-and-reused event cannot cancel its successor.
	gen  uint32
	next *event // free-list link while recycled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.heap = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.heap = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. It is not safe for concurrent use
// from outside; all interaction must happen from engine-run events and
// processes, or from the single goroutine that calls Run.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// free is a free list of fired/cancelled event objects, reused by At
	// so steady-state scheduling does not allocate. Its length is bounded
	// by the maximum number of simultaneously pending events.
	free *event

	// handoff plumbing
	yield   chan struct{} // processes signal the engine when they park or exit
	running bool

	procs   int // live processes (for leak diagnostics)
	stopped bool
}

// NewEngine returns an engine with its virtual clock at zero and an RNG
// seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic RNG. It must only be used from
// simulation context (events and processes).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after d has elapsed on the virtual clock. A negative d
// is treated as zero. The returned Timer can cancel the event.
func (e *Engine) Schedule(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at virtual instant t (or now, if t is in the past).
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	heap.Push(&e.events, ev)
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// alloc takes an event object off the free list, or makes a fresh one.
func (e *Engine) alloc() *event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

// recycle returns a fired or cancelled event to the free list. Bumping gen
// invalidates any outstanding Timer for the old incarnation.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.next = e.free
	e.free = ev
}

// Timer is a handle to a scheduled event. The zero Timer is valid and
// behaves as an already-fired event.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint32
}

// Stop cancels the event if it has not fired. It reports whether the event
// was still pending.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.heap < 0 {
		return false
	}
	heap.Remove(&t.e.events, t.ev.heap)
	t.e.recycle(t.ev)
	return true
}

// Stop halts the run loop after the current event completes. Pending events
// are left unfired.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the heap is empty or Stop is called. It
// panics if called re-entrantly.
func (e *Engine) Run() { e.RunUntil(Never) }

// RunUntil processes events with timestamps <= deadline. The clock is left
// at the deadline if it is reached (and any events remain), or at the time
// of the last event otherwise.
func (e *Engine) RunUntil(deadline Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			e.now = deadline
			return
		}
		heap.Pop(&e.events)
		e.now = next.at
		fn := next.fn
		e.recycle(next) // before fn: events scheduled inside fn reuse it
		fn()
	}
	if e.now < deadline && deadline != Never {
		e.now = deadline
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of processes that have started but not
// finished (parked processes included). Useful for leak detection in tests.
func (e *Engine) LiveProcs() int { return e.procs }

// ---------------------------------------------------------------------------
// Processes

// Proc is a blocking simulation process. Its methods must only be called
// from the process's own goroutine.
type Proc struct {
	e      *Engine
	name   string
	resume chan struct{}
	dead   bool
}

// Go starts fn as a new process. fn begins executing at the current
// virtual time but only after the current event completes (it is scheduled
// like any other event).
func (e *Engine) Go(name string, fn func(p *Proc)) {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.procs++
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.dead = true
		e.procs--
		e.yield <- struct{}{} // return control to the engine loop
	}()
	e.Schedule(0, func() { p.step() })
}

// step transfers control to the process until it parks or exits.
func (p *Proc) step() {
	if p.dead {
		panic(fmt.Sprintf("sim: resuming dead proc %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.e.yield
}

// park returns control to the engine; the process resumes when something
// calls step (via a scheduled event or a future completion).
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.e.Schedule(d, func() { p.step() })
	p.park()
}

// Yield suspends the process until all other events scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Sleep(0) }
