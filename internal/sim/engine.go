// Package sim provides a deterministic discrete-event simulation engine.
//
// The simulator is organized as a World of event domains. Each domain
// (represented by an Engine handle) owns its own virtual clock, event
// heap, free list, and seeded RNG stream; a conservative time-window
// scheduler advances all domains together. Within one synchronized
// window, domains are independent — they may execute on parallel worker
// goroutines — because cross-domain interaction is only possible through
// messages whose minimum propagation latency (the lookahead, declared by
// the fabric) bounds the window length. Deliveries produced during a
// window are buffered and merged at the window barrier in a fixed total
// order, so execution is deterministic at any worker count.
//
// A single-domain world (the common case for unit tests) degenerates to
// the classic single-heap event loop with identical semantics.
//
// Work is expressed either as plain callback events (Schedule/At) or as
// blocking processes (Go), which are goroutines that run under a strict
// handoff discipline: at any moment, at most one goroutine per domain —
// the domain's window loop or exactly one of its processes — is
// executing. This keeps all simulation state domain-local (no data
// races, fully deterministic) while letting protocol code be written in
// a natural blocking style (Sleep, Future.Wait, Resource.Acquire).
//
// Determinism: events at the same virtual time fire in the order they
// were scheduled (FIFO tie-break by sequence number), every domain's RNG
// is seeded from the world seed and the domain id, and barrier merges
// order cross-domain deliveries by (time, source node, send sequence).
// Two runs with the same seed produce identical traces at any worker
// count.
//
// Lookahead is a matrix, not a scalar: fabrics declare per-pair bounds
// with SetLookahead (DeclareLookahead sets a uniform default), and the
// scheduler derives the all-pairs minimum-delay matrix over relay paths
// (Floyd–Warshall, including round-trip self-cycles). Each window then
// gives every domain its own horizon — min over senders s of
// next-event(s) + dist[s][d] — so far-apart pairs run long windows and
// only genuinely close pairs barrier often. SetScalarWindows(true)
// restores the historical single-bound rule for A/B measurements; the
// window rule never changes event semantics, only barrier frequency.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a virtual instant, in nanoseconds since the start of the run.
type Time int64

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

const (
	// Never is a sentinel Time later than any reachable instant.
	Never Time = 1<<63 - 1
)

// Add returns t shifted by d, saturating at Never.
func (t Time) Add(d Duration) Time {
	s := t + Time(d)
	if s < t && d > 0 {
		return Never
	}
	return s
}

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as a duration from time zero.
func (t Time) String() string { return Duration(t).String() }

type event struct {
	at  Time
	seq uint64
	fn  func()
	// tail events run after every ordinary event of the same instant,
	// regardless of scheduling order (see AtTail).
	tail bool
	// gen counts recycles of this event object. Timers snapshot it so a
	// stale handle to a fired-and-reused event cannot cancel its successor.
	gen uint32
	// state says where the event currently lives (see evIdle and
	// friends); level and slot locate it in the wheel while state is
	// evWheel. fromWheel marks burst members that transited the wheel,
	// for the timer_fires counter (burst-direct same-instant events never
	// touch the wheel).
	state     uint8
	level     uint8
	slot      uint8
	fromWheel bool
	// Wheel slot list links; next doubles as the free-list link while
	// the event is recycled.
	prev, next *event
}

// Event locations, kept in event.state so Timer.Stop knows how to cancel.
const (
	evIdle     uint8 = iota // fired, cancelled, or on the free list
	evWheel                 // linked into a wheel slot
	evOverflow              // parked on the wheel's overflow list
	evBurst                 // staged in the current instant's burst buffers
)

// burst is the reusable per-domain buffer one instant's events drain
// into: ordinary events and tail events in separate seq-ordered queues,
// consumed front to back. Same-instant events scheduled while the burst
// executes append behind the cursor (their seq is larger than anything
// pending), so one pass replays the exact (ordinary-by-seq, then
// tail-by-seq) order the event heap used to produce — with the heap
// maintenance paid once per instant instead of once per event.
type burst struct {
	ord, tail         []*event
	ordHead, tailHead int
}

func (b *burst) reset() {
	b.ord = b.ord[:0]
	b.tail = b.tail[:0]
	b.ordHead, b.tailHead = 0, 0
}

// World coordinates a set of event domains through conservative
// synchronized windows. It is created implicitly by NewEngine; further
// domains are added with NewDomain (the fabric adds one per node).
type World struct {
	seed    int64
	domains []*Engine
	workers int

	// lookahead is the uniform default pair bound set by DeclareLookahead
	// (0 = none declared). Per-pair bounds from SetLookahead are kept in
	// edges; dist is the all-pairs minimum over relay paths, rebuilt
	// lazily (laDirty) at the next barrier.
	lookahead Duration
	edges     []laEdge
	dist      [][]Duration
	laDirty   bool

	// scalar restores the historical single-bound window rule (the
	// minimum over every declared bound) for A/B measurements.
	scalar   bool
	scalarLA Duration

	// barriers run at every window barrier (and before the first window),
	// single-threaded, with all domains paused. The fabric uses them to
	// merge and deliver cross-domain mailboxes.
	barriers []func()

	// sparse elides barrier hook sweeps for windows in which no hook has
	// work to do (see SetSparseBarriers). barrierReq is the request flag
	// producers raise (RequestBarrier) when the next barrier must run its
	// hooks; it is atomic because sends happen from parallel domain
	// contexts.
	sparse     bool
	barrierReq atomic.Bool

	// statsHooks let higher layers (the rdma NIC model) contribute
	// counters to Stats() snapshots without sim importing them.
	statsHooks []func(*WorldStats)

	procs   atomic.Int64 // live processes across all domains
	stopped atomic.Bool
	running bool

	// actList is the active set: domains that may hold pending events.
	// A domain joins when an event is scheduled on it (at) and retires
	// when the window-start scan finds its wheel empty. Appends only
	// happen from single-threaded contexts (setup, barriers) or from the
	// domain's own execution (in which case it is already listed), so no
	// locking is needed even with parallel workers.
	actList []*Engine

	active []*Engine // per-window scratch: domains with runnable events
	next   []Time    // per-window scratch: each active domain's next-event time

	stats WorldStats
}

// laEdge is one declared directed lookahead bound between two domains.
type laEdge struct {
	src, dst int
	d        Duration
}

// laInf marks an undeclared pair: no bound, unreachable by any relay
// path. Kept far below the Duration ceiling so saturating sums cannot
// overflow inside the shortest-path relaxation.
const laInf = Duration(1) << 62

// WorldStats counts scheduler work. Windows is the number of executed
// time windows, Barriers the number of barrier crossings (hook sweeps),
// BarrierSkips the hook sweeps elided under SetSparseBarriers (no hook
// had work), IdleSkips the per-window count of domains outside the
// active set (empty wheel, no inbound staging — never touched by the
// window-start scan or the horizon computation), CrossDeliveries the
// number of messages merged across domain boundaries at barriers
// (intra-domain bypass deliveries are not counted), and
// WindowSpan/SpanWindows accumulate the length of every window whose
// horizon was bounded (MeanWindow reports the average).
//
// The burst/wheel counters attribute per-event scheduler cost:
// EventsExecuted is events fired, Bursts the number of drained instants
// (MeanBurstLen reports the amortization ratio), TimerFires the fired
// events that transited the wheel (the remainder were same-instant
// burst-direct schedules that never paid wheel maintenance), TimerStops
// the timers cancelled before firing (O(1) wheel unlinks), and
// WheelCascades the events re-filed to a finer wheel level when a
// domain's clock crossed a coarse slot boundary.
// The ConnCache* counters are contributed by OnStats hooks from the
// NIC connection-state model (QP context cache hits/misses/evictions in
// internal/rdma); they are zero when the model is disabled.
type WorldStats struct {
	Domains         int
	Windows         int64
	Barriers        int64
	BarrierSkips    int64
	IdleSkips       int64
	CrossDeliveries int64
	WindowSpan      Duration
	SpanWindows     int64

	EventsExecuted int64
	Bursts         int64
	TimerFires     int64
	TimerStops     int64
	WheelCascades  int64

	ConnCacheHits      int64
	ConnCacheMisses    int64
	ConnCacheEvictions int64

	// Verb-program counters, contributed by the simulated NIC's OnStats
	// hook: programs executed (CHASE/SCAN ops) and their loop iterations.
	// ProgramSteps-ProgramOps is the round trips the programs collapsed.
	ProgramOps   int64
	ProgramSteps int64
}

// MeanWindow returns the mean bounded-window length, or 0 if none ran.
func (s WorldStats) MeanWindow() Duration {
	if s.SpanWindows == 0 {
		return 0
	}
	return s.WindowSpan / Duration(s.SpanWindows)
}

// MeanBurstLen returns the mean number of events executed per drained
// instant, or 0 if nothing ran.
func (s WorldStats) MeanBurstLen() float64 {
	if s.Bursts == 0 {
		return 0
	}
	return float64(s.EventsExecuted) / float64(s.Bursts)
}

// NewDomain adds an event domain to the world and returns its Engine
// handle. Domain 0 keeps the RNG stream of the world seed itself (so a
// single-domain world is stream-compatible with the historical engine);
// later domains get decorrelated SplitMix64-derived streams.
func (w *World) NewDomain() *Engine {
	id := len(w.domains)
	seed := w.seed
	if id > 0 {
		seed = domainSeed(w.seed, id)
	}
	e := &Engine{w: w, id: id, rng: rand.New(rand.NewSource(seed))}
	w.domains = append(w.domains, e)
	w.laDirty = true
	return e
}

// domainSeed decorrelates per-domain RNG streams (one SplitMix64 step).
func domainSeed(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SetWorkers sets how many OS goroutines execute domains within one
// window (<=1 = serial). Output is byte-identical at any setting.
func (w *World) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	w.workers = n
}

// Workers returns the configured intra-window worker count.
func (w *World) Workers() int { return w.workers }

// Domains returns the number of event domains in the world.
func (w *World) Domains() int { return len(w.domains) }

// DeclareLookahead sets the uniform default pair bound: no cross-domain
// message sent at time t can be delivered before t+d, for every domain
// pair. Multiple fabrics may declare; the minimum (clamped to >= 1ns)
// wins. Per-pair bounds tighter than real topology come from
// SetLookahead.
func (w *World) DeclareLookahead(d Duration) {
	if d < 1 {
		d = 1
	}
	if w.lookahead == 0 || d < w.lookahead {
		w.lookahead = d
	}
	w.laDirty = true
}

// SetLookahead declares a directed per-pair bound: no message sent by
// domain src at time t can arrive at dst before t+d. The minimum over
// all declarations for the pair — and over any relay path through other
// declared pairs — wins. Declaring src == dst is a no-op (intra-domain
// traffic needs no lookahead).
func (w *World) SetLookahead(src, dst *Engine, d Duration) {
	if src.w != w || dst.w != w {
		panic("sim: SetLookahead across worlds")
	}
	if src == dst {
		return
	}
	if d < 1 {
		d = 1
	}
	w.edges = append(w.edges, laEdge{src: src.id, dst: dst.id, d: d})
	w.laDirty = true
}

// SetScalarWindows switches between per-domain matrix horizons (false,
// the default) and the historical single-bound window rule (true). The
// two modes produce byte-identical simulation output; only barrier
// frequency differs. Used for A/B scheduler measurements.
func (w *World) SetScalarWindows(on bool) { w.scalar = on }

// SetSparseBarriers elides barrier hook sweeps for windows in which no
// producer raised the barrier-request flag (RequestBarrier): with every
// outbox empty and no new domains, the hooks have nothing to merge, so
// the sweep — O(hooks), each touching per-node state — is skipped and
// counted in WorldStats.BarrierSkips. Hooks always run before the first
// window. Simulation output is byte-identical either way; the mode is
// off by default so dense-barrier A/B measurements keep their meaning.
func (w *World) SetSparseBarriers(on bool) { w.sparse = on }

// SparseBarriers reports whether sparse barrier elision is enabled.
func (w *World) SparseBarriers() bool { return w.sparse }

// RequestBarrier asks the next window barrier to run its hooks even
// under SetSparseBarriers. Fabrics call it when a node's outbox goes
// from empty to non-empty (the flush hook now has work) and when a node
// is added mid-run (lookahead must be re-declared). Safe from parallel
// domain contexts.
func (w *World) RequestBarrier() { w.barrierReq.Store(true) }

// Seed returns the world seed; per-domain and per-node RNG streams are
// derived from it.
func (w *World) Seed() int64 { return w.seed }

// Stats returns a snapshot of the scheduler telemetry counters,
// aggregating the domain-local burst/wheel counters. Call it between
// runs or at barriers (domains mutate their counters while executing).
func (w *World) Stats() WorldStats {
	s := w.stats
	s.Domains = len(w.domains)
	for _, d := range w.domains {
		s.EventsExecuted += d.statEvents
		s.Bursts += d.statBursts
		s.TimerFires += d.statFires
		s.TimerStops += d.statStops
		s.WheelCascades += d.wheel.cascades
	}
	for _, fn := range w.statsHooks {
		fn(&s)
	}
	return s
}

// OnStats registers fn to contribute counters to every Stats() snapshot
// (the rdma layer adds its NIC connection-cache counters this way).
// Hooks run on the snapshot copy, in registration order, from the same
// contexts in which Stats is safe to call.
func (w *World) OnStats(fn func(*WorldStats)) {
	w.statsHooks = append(w.statsHooks, fn)
}

// AddCrossDeliveries is called by fabrics at barriers to account
// messages merged across a domain boundary.
func (w *World) AddCrossDeliveries(n int) { w.stats.CrossDeliveries += int64(n) }

// rebuildDist recomputes the all-pairs minimum-delay matrix from the
// default bound and the declared edges: Floyd–Warshall over relay
// paths, with dist[i][i] becoming the minimum cycle through i (a domain
// can only be affected by its own past output after a full round trip).
// Undeclared, unreachable pairs stay at laInf — no bound at all.
func (w *World) rebuildDist() {
	n := len(w.domains)
	d := w.dist
	if len(d) != n {
		d = make([][]Duration, n)
		for i := range d {
			d[i] = make([]Duration, n)
		}
		w.dist = d
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && w.lookahead > 0 {
				d[i][j] = w.lookahead
			} else {
				d[i][j] = laInf
			}
		}
	}
	for _, e := range w.edges {
		if e.src < n && e.dst < n && e.d < d[e.src][e.dst] {
			d[e.src][e.dst] = e.d
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik >= laInf {
				continue
			}
			for j := 0; j < n; j++ {
				if dkj := d[k][j]; dkj < laInf && dik+dkj < d[i][j] {
					d[i][j] = dik + dkj
				}
			}
		}
	}
	w.scalarLA = laInf
	if w.lookahead > 0 {
		w.scalarLA = w.lookahead
	}
	for _, e := range w.edges {
		if e.d < w.scalarLA {
			w.scalarLA = e.d
		}
	}
	if w.scalarLA >= laInf {
		w.scalarLA = 1
	}
	w.laDirty = false
}

// OnBarrier registers fn to run at every window barrier, while all
// domains are paused. Hooks run in registration order on the
// coordinating goroutine.
func (w *World) OnBarrier(fn func()) {
	w.barriers = append(w.barriers, fn)
}

// LiveProcs reports the number of processes that have started but not
// finished (parked processes included), across all domains.
func (w *World) LiveProcs() int { return int(w.procs.Load()) }

// run advances the whole world until no domain has an event at or before
// deadline, or Stop is called.
func (w *World) run(deadline Time) {
	if w.running {
		panic("sim: re-entrant Run")
	}
	w.running = true
	w.stopped.Store(false)
	defer func() { w.running = false }()

	single := len(w.domains) == 1
	first := true
	for {
		// Barrier: merge cross-domain mailboxes into destination heaps.
		// Runs before the window-start computation so flushed deliveries
		// participate in it, and before the first window so messages sent
		// from setup code are delivered (and lookahead declared there is
		// folded into the matrix before it is consulted). Under sparse
		// mode the sweep is elided when no producer requested it — with
		// every outbox empty the hooks would only walk idle state.
		if req := w.barrierReq.Swap(false); first || !w.sparse || req {
			for _, fn := range w.barriers {
				fn()
			}
			w.stats.Barriers++
		} else {
			w.stats.BarrierSkips++
		}
		first = false
		if w.stopped.Load() {
			break
		}
		if w.laDirty {
			w.rebuildDist()
		}
		// Window start W: the minimum next-event time over the active
		// set. Domains whose wheels drained empty retire here; they
		// rejoin via at() when something schedules on them. Idle domains
		// cost nothing — neither this scan nor the horizon computation
		// below ever touches them.
		start := Never
		prev := w.actList
		act := prev[:0]
		next := w.next[:0]
		for _, d := range prev {
			t := d.wheel.next()
			if t == Never {
				d.inActive = false
				continue
			}
			act = append(act, d)
			next = append(next, t)
			if t < start {
				start = t
			}
		}
		for i := len(act); i < len(prev); i++ {
			prev[i] = nil
		}
		w.actList = act
		w.next = next
		if start == Never || start > deadline {
			break
		}
		w.stats.IdleSkips += int64(len(w.domains) - len(act))
		// A single-domain world has no cross traffic, so the window
		// covers the whole run.
		if single {
			w.domains[0].runWindow(deadline)
			w.stats.Windows++
			if w.stopped.Load() {
				break
			}
			continue
		}
		// Per-domain horizon (inclusive limit): domain d may safely run
		// events at t < min over senders s of next(s) + dist[s][d],
		// because no message generated at or after next(s) can arrive at
		// d earlier than that. Only active senders constrain — an idle
		// domain's next is Never. Unreachable domains are unbounded (only
		// the deadline stops them). Scalar mode replaces this with the
		// historical single bound start + min-lookahead for every domain.
		if w.scalar {
			lim := deadline
			if x := start.Add(w.scalarLA); x-1 < lim {
				lim = x - 1
			}
			for _, d := range act {
				d.limit = lim
			}
		} else {
			for _, d := range act {
				h := Never
				for j, s := range act {
					la := w.dist[s.id][d.id]
					if la >= laInf {
						continue
					}
					if c := next[j].Add(la); c < h {
						h = c
					}
				}
				lim := deadline
				if h != Never && h-1 < lim {
					lim = h - 1
				}
				d.limit = lim
			}
		}
		// Telemetry: the window's effective length is set by the
		// earliest bounded horizon among domains that actually run.
		winEnd := Never
		for i, d := range act {
			if next[i] <= d.limit && d.limit < winEnd {
				winEnd = d.limit
			}
		}
		if winEnd != Never {
			w.stats.WindowSpan += Duration(winEnd - start + 1)
			w.stats.SpanWindows++
		}
		if w.workers <= 1 {
			for _, d := range act {
				d.runWindow(d.limit)
			}
		} else {
			w.runParallel()
		}
		w.stats.Windows++
		if w.stopped.Load() {
			break
		}
	}
	// Leave every clock at the deadline if it was reached (mirroring the
	// historical single-engine semantics).
	if deadline != Never {
		for _, d := range w.domains {
			if d.now < deadline {
				d.now = deadline
			}
		}
	}
}

// runParallel executes one window with up to w.workers goroutines, each
// claiming whole domains (each to its own horizon in Engine.limit). Domains
// never share state within a window, so this is race-free; determinism
// comes from the barrier merge order, not from scheduling.
func (w *World) runParallel() {
	act := w.active[:0]
	for i, d := range w.actList {
		if w.next[i] <= d.limit {
			act = append(act, d)
		}
	}
	w.active = act
	nw := w.workers
	if nw > len(act) {
		nw = len(act)
	}
	if nw <= 1 {
		for _, d := range act {
			d.runWindow(d.limit)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make(chan any, nw)
	work := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				select {
				case panics <- r:
				default:
				}
			}
		}()
		for {
			i := int(next.Add(1)) - 1
			if i >= len(act) {
				return
			}
			act[i].runWindow(act[i].limit)
		}
	}
	wg.Add(nw)
	for i := 1; i < nw; i++ {
		go work()
	}
	work()
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// Engine is one event domain of a World: a discrete-event scheduler with
// its own clock, heap, and RNG stream. It is not safe for concurrent use
// from outside; all interaction must happen from this domain's events
// and processes, or from the single goroutine that calls Run (between
// runs and at barriers).
//
// Run/RunUntil may be called on any domain handle; they advance the
// whole world.
type Engine struct {
	w   *World
	id  int
	now Time

	seq   uint64
	rng   *rand.Rand
	limit Time // this window's horizon, set by the world before dispatch

	// inActive marks membership in the world's active list. Set by at()
	// (always from a single-threaded context or this domain's own
	// execution — cross-domain scheduling only happens at barriers),
	// cleared by the window-start scan when the wheel drains empty.
	inActive bool

	// wheel holds the pending events; burst is the reusable buffer one
	// instant's events drain into for execution. inBurst routes
	// same-instant schedules straight into the executing burst, and
	// pendingN tracks scheduled-but-unfired events for Pending.
	wheel    wheel
	burst    burst
	inBurst  bool
	pendingN int

	// free is a free list of fired/cancelled event objects, reused by At
	// so steady-state scheduling does not allocate. Its length is bounded
	// by the maximum number of simultaneously pending events.
	free *event

	// Domain-local scheduler telemetry, aggregated by World.Stats.
	statEvents int64 // events fired
	statBursts int64 // instants drained
	statFires  int64 // fired events that transited the wheel
	statStops  int64 // timers cancelled before firing
}

// NewEngine returns a fresh world's root domain, with its virtual clock
// at zero and an RNG seeded with seed.
func NewEngine(seed int64) *Engine {
	w := &World{seed: seed, workers: 1}
	return w.NewDomain()
}

// World returns the world this domain belongs to.
func (e *Engine) World() *World { return e.w }

// DomainID returns this domain's index in its world (root = 0).
func (e *Engine) DomainID() int { return e.id }

// Now returns the domain's current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the domain's deterministic RNG. It must only be used from
// this domain's simulation context (events and processes).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after d has elapsed on the domain's clock. A negative
// d is treated as zero. The returned Timer can cancel the event.
func (e *Engine) Schedule(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at virtual instant t (or now, if t is in the past).
func (e *Engine) At(t Time, fn func()) Timer {
	return e.at(t, fn, false)
}

// AtTail runs fn at instant t, after every ordinarily-scheduled event of
// that instant — including ones not yet scheduled when AtTail is called.
// The fabric uses this to drain same-instant arrival batches in a
// canonical order that cannot depend on when the batch members were
// scheduled (barrier flush vs intra-domain bypass).
func (e *Engine) AtTail(t Time, fn func()) Timer {
	return e.at(t, fn, true)
}

func (e *Engine) at(t Time, fn func(), tail bool) Timer {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.tail = tail
	e.seq++
	e.pendingN++
	if !e.inActive {
		e.inActive = true
		e.w.actList = append(e.w.actList, e)
	}
	if e.inBurst && t == e.now {
		// Scheduled for the instant currently executing: append behind
		// the burst cursor instead of paying a wheel round trip. seq is
		// larger than anything pending, so the queues stay seq-sorted.
		ev.state = evBurst
		ev.fromWheel = false
		if tail {
			e.burst.tail = append(e.burst.tail, ev)
		} else {
			e.burst.ord = append(e.burst.ord, ev)
		}
	} else {
		e.wheel.insert(ev)
	}
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// alloc takes an event object off the free list, or makes a fresh one.
func (e *Engine) alloc() *event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

// recycle returns a fired or cancelled event to the free list. Bumping gen
// invalidates any outstanding Timer for the old incarnation.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.state = evIdle
	ev.fromWheel = false
	ev.prev = nil
	ev.next = e.free
	e.free = ev
}

// Timer is a handle to a scheduled event. The zero Timer is valid and
// behaves as an already-fired event.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint32
}

// Stop cancels the event if it has not fired. It reports whether the event
// was still pending. It must be called from the owning domain's context.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen {
		return false
	}
	e := t.e
	switch ev.state {
	case evWheel, evOverflow:
		e.wheel.remove(ev)
		e.pendingN--
		e.statStops++
		e.recycle(ev)
		return true
	case evBurst:
		// Already staged for the executing instant but not yet fired:
		// cancel in place; the burst loop skips and recycles it.
		ev.fn = nil
		ev.state = evIdle
		e.pendingN--
		e.statStops++
		return true
	}
	return false
}

// Stop halts the run loop after the current event completes. Pending
// events are left unfired. From parallel (multi-worker) domain context
// the halt is prompt but the exact cut point is scheduling-dependent;
// deterministic users call it from setup code between runs.
func (e *Engine) Stop() { e.w.stopped.Store(true) }

// Run processes events until every domain's heap is empty or Stop is
// called. It panics if called re-entrantly.
func (e *Engine) Run() { e.RunUntil(Never) }

// RunUntil processes events with timestamps <= deadline across all
// domains. Each domain's clock is left at the deadline if it is reached
// (and any events remain), or at the time of its last event otherwise.
func (e *Engine) RunUntil(deadline Time) { e.w.run(deadline) }

// runWindow executes this domain's events up to and including limit, one
// burst per instant: the wheel drains everything at the head instant
// into the burst buffers and the loop replays them — plus any
// same-instant events they schedule — in one pass, amortizing wheel
// maintenance and the horizon check across the burst.
func (e *Engine) runWindow(limit Time) {
	w := e.w
	b := &e.burst
	for {
		t := e.wheel.next()
		if t == Never || t > limit {
			return
		}
		if w.stopped.Load() {
			return
		}
		if e.wheel.collect(t, b) == 0 {
			continue // stale cached minimum (cancelled); rescan
		}
		e.now = t
		e.inBurst = true
		executed := 0
		for {
			if w.stopped.Load() {
				e.unwindBurst()
				break
			}
			var ev *event
			if b.ordHead < len(b.ord) {
				ev = b.ord[b.ordHead]
				b.ord[b.ordHead] = nil
				b.ordHead++
			} else if b.tailHead < len(b.tail) {
				ev = b.tail[b.tailHead]
				b.tail[b.tailHead] = nil
				b.tailHead++
			} else {
				break
			}
			if ev.fn == nil {
				e.recycle(ev) // cancelled while staged in the burst
				continue
			}
			if ev.fromWheel {
				e.statFires++
			}
			fn := ev.fn
			e.recycle(ev) // before fn: events scheduled inside fn reuse it
			e.pendingN--
			fn()
			executed++
		}
		e.inBurst = false
		b.reset()
		e.statEvents += int64(executed)
		e.statBursts++
		if w.stopped.Load() {
			return
		}
	}
}

// unwindBurst returns the not-yet-fired remainder of the executing burst
// to the wheel when Stop halts the run mid-instant, so those events stay
// pending exactly as unfired heap events used to.
func (e *Engine) unwindBurst() {
	b := &e.burst
	for _, q := range [2][]*event{b.ord[b.ordHead:], b.tail[b.tailHead:]} {
		for _, ev := range q {
			if ev.fn == nil {
				e.recycle(ev) // cancelled while staged
				continue
			}
			e.wheel.count-- // insert re-counts
			e.wheel.insert(ev)
		}
	}
}

// Pending reports the number of events scheduled in this domain.
func (e *Engine) Pending() int { return e.pendingN }

// LiveProcs reports the number of processes that have started but not
// finished (parked processes included) across the whole world. Useful
// for leak detection in tests.
func (e *Engine) LiveProcs() int { return e.w.LiveProcs() }

// ---------------------------------------------------------------------------
// Processes

// Proc is a blocking simulation process. Its methods must only be called
// from the process's own goroutine.
//
// A process belongs to the domain it was spawned on, but a Future bound
// to another domain may resume it there: after Wait returns, the process
// runs in (and reads the clock of) the future's domain until its next
// suspension. Protocol code that blocks only on its own machine's
// connections never changes domains.
type Proc struct {
	cur    *Engine // domain currently executing (or about to execute) this proc
	name   string
	resume chan struct{} // domain loop -> proc handoff
	yield  chan struct{} // proc -> domain loop handoff
	dead   bool
}

// Go starts fn as a new process on this domain. fn begins executing at
// the current virtual time but only after the current event completes
// (it is scheduled like any other event).
func (e *Engine) Go(name string, fn func(p *Proc)) {
	p := &Proc{cur: e, name: name, resume: make(chan struct{}), yield: make(chan struct{})}
	e.w.procs.Add(1)
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.dead = true
		p.cur.w.procs.Add(-1)
		p.yield <- struct{}{} // return control to the domain loop
	}()
	e.Schedule(0, func() { p.step() })
}

// step transfers control to the process until it parks or exits. It must
// run in the domain execution context recorded in p.cur.
func (p *Proc) step() {
	if p.dead {
		panic(fmt.Sprintf("sim: resuming dead proc %q", p.name))
	}
	p.resume <- struct{}{}
	<-p.yield
}

// resumeIn transfers control to the process within domain e's execution.
// The process observes e as its current domain until its next suspension.
func (p *Proc) resumeIn(e *Engine) {
	p.cur = e
	p.step()
}

// park returns control to the domain loop; the process resumes when
// something calls step (via a scheduled event or a future completion).
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Engine returns the domain this process is currently executing in.
func (p *Proc) Engine() *Engine { return p.cur }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time of the process's current domain.
func (p *Proc) Now() Time { return p.cur.now }

// Sleep suspends the process for d of virtual time on its current
// domain's clock.
func (p *Proc) Sleep(d Duration) {
	p.cur.Schedule(d, func() { p.step() })
	p.park()
}

// Yield suspends the process until all other events scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Sleep(0) }
