package sim

import "container/heap"

// Resource models a FIFO queueing station with one server: work submitted
// while the station is busy queues behind earlier work. It is the building
// block for link serialization (bandwidth) and single-core processing.
type Resource struct {
	e        *Engine
	nextFree Time
	busyNS   int64 // accumulated busy time, for utilization reporting
}

// NewResource returns an idle single-server resource.
func NewResource(e *Engine) *Resource { return &Resource{e: e} }

// Submit enqueues work needing service of duration d and calls fn when it
// completes. Returns the completion time.
func (r *Resource) Submit(d Duration, fn func()) Time {
	start := r.e.now
	if r.nextFree > start {
		start = r.nextFree
	}
	finish := start.Add(d)
	r.nextFree = finish
	r.busyNS += int64(d)
	if fn != nil {
		r.e.At(finish, fn)
	}
	return finish
}

// Acquire blocks the process until its work (of duration d) completes.
// The process resumes in the resource's domain.
func (r *Resource) Acquire(p *Proc, d Duration) {
	r.Submit(d, func() { p.resumeIn(r.e) })
	p.park()
}

// BusyTime returns the total service time accumulated so far.
func (r *Resource) BusyTime() Duration { return Duration(r.busyNS) }

// QueueDelay reports how long newly submitted work would wait before
// starting service.
func (r *Resource) QueueDelay() Duration {
	if r.nextFree <= r.e.now {
		return 0
	}
	return r.nextFree.Sub(r.e.now)
}

// MultiResource models a FIFO queueing station with k identical servers
// (e.g. a pool of dedicated CPU cores). Work is dispatched to the earliest
// available server.
type MultiResource struct {
	e      *Engine
	free   timeHeap // nextFree instants, one per server
	busyNS int64
}

// NewMultiResource returns an idle station with k servers.
func NewMultiResource(e *Engine, k int) *MultiResource {
	if k < 1 {
		panic("sim: MultiResource needs at least one server")
	}
	m := &MultiResource{e: e}
	m.free = make(timeHeap, k)
	return m
}

// Submit enqueues work of duration d, calling fn at completion; returns the
// completion time.
func (m *MultiResource) Submit(d Duration, fn func()) Time {
	start := m.free[0]
	if start < m.e.now {
		start = m.e.now
	}
	finish := start.Add(d)
	m.free[0] = finish
	heap.Fix(&m.free, 0)
	m.busyNS += int64(d)
	if fn != nil {
		m.e.At(finish, fn)
	}
	return finish
}

// Acquire blocks the process until its work (of duration d) completes.
// The process resumes in the resource's domain.
func (m *MultiResource) Acquire(p *Proc, d Duration) {
	m.Submit(d, func() { p.resumeIn(m.e) })
	p.park()
}

// BusyTime returns the total service time accumulated across all servers.
func (m *MultiResource) BusyTime() Duration { return Duration(m.busyNS) }

// Servers returns the number of servers in the station.
func (m *MultiResource) Servers() int { return len(m.free) }

type timeHeap []Time

func (h timeHeap) Len() int           { return len(h) }
func (h timeHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x any)        { *h = append(*h, x.(Time)) }
func (h *timeHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
