package sim

// Future is a one-shot value produced at some virtual instant. Processes
// block on it with Wait; callback code chains on it with OnComplete.
// A Future must be completed at most once (but see Reset).
type Future[T any] struct {
	e       *Engine
	done    bool
	val     T
	waiters []func(T)
	// waitProc is the single parked Wait-er, kept out of waiters so the
	// common Issue/Wait round trip registers no closure. Resumed after the
	// callbacks, which matches the old registration order: no caller mixes
	// OnComplete and Wait on one future.
	waitProc *Proc
}

// NewFuture returns an incomplete future bound to e.
func NewFuture[T any](e *Engine) *Future[T] {
	return &Future[T]{e: e}
}

// CompletedFuture returns a future that is already resolved to v.
func CompletedFuture[T any](e *Engine, v T) *Future[T] {
	return &Future[T]{e: e, done: true, val: v}
}

// Complete resolves the future with v, waking all waiters (in FIFO order)
// at the current virtual instant.
func (f *Future[T]) Complete(v T) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.val = v
	// Detach every waiter before firing any of them: a callback (or the
	// resumed process) may recycle this future via Reset and register new
	// waiters for its next incarnation.
	ws := f.waiters
	f.waiters = nil
	wp := f.waitProc
	f.waitProc = nil
	for _, w := range ws {
		w(v)
	}
	if wp != nil {
		wp.resumeIn(f.e)
	}
}

// Reset returns a completed future to the pending state so its owner can
// reuse the allocation for the next request. It panics on a pending
// future (waiters could be stranded). The caller must ensure no one still
// holds the future expecting the old value.
func (f *Future[T]) Reset() {
	if !f.done {
		panic("sim: Reset on pending Future")
	}
	var zero T
	f.done = false
	f.val = zero
}

// Done reports whether the future has been completed.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the completed value; it panics if the future is pending.
func (f *Future[T]) Value() T {
	if !f.done {
		panic("sim: Value on pending Future")
	}
	return f.val
}

// OnComplete registers fn to run when the future completes (immediately,
// within Complete's event). If the future is already complete, fn runs now.
func (f *Future[T]) OnComplete(fn func(T)) {
	if f.done {
		fn(f.val)
		return
	}
	f.waiters = append(f.waiters, fn)
}

// Wait parks the process until the future completes and returns its value.
// Complete must be invoked from f's domain execution context; Wait
// resumes the process in that domain (see Proc).
func (f *Future[T]) Wait(p *Proc) T {
	if f.done {
		return f.val
	}
	if f.waitProc == nil {
		f.waitProc = p
	} else {
		// A second process waiting on the same future is rare; fall back to
		// the closure path rather than widening the struct.
		f.OnComplete(func(T) { p.resumeIn(f.e) })
	}
	p.park()
	return f.val
}

// WaitQuorum parks the process until at least k of the given futures have
// completed, then returns the completed values in completion order.
// Remaining futures keep running; their values are discarded here.
func WaitQuorum[T any](p *Proc, k int, fs []*Future[T]) []T {
	if k > len(fs) {
		panic("sim: WaitQuorum k exceeds future count")
	}
	got := make([]T, 0, k)
	if k == 0 {
		return got
	}
	parked := false
	for _, f := range fs {
		f.OnComplete(func(v T) {
			if len(got) >= k {
				return // quorum already satisfied
			}
			got = append(got, v)
			if len(got) == k && parked {
				p.resumeIn(f.e)
			}
		})
		if len(got) >= k {
			break
		}
	}
	if len(got) < k {
		parked = true
		p.park()
	}
	return got
}

// WaitAll parks the process until every future completes and returns the
// values in the order of fs.
func WaitAll[T any](p *Proc, fs []*Future[T]) []T {
	for _, f := range fs {
		f.Wait(p)
	}
	out := make([]T, len(fs))
	for i, f := range fs {
		out[i] = f.val
	}
	return out
}

// Signal is a Future[struct{}] convenience for pure-event notification.
type Signal = Future[struct{}]

// NewSignal returns an unfired signal.
func NewSignal(e *Engine) *Signal { return NewFuture[struct{}](e) }

// Fire completes the signal.
func Fire(s *Signal) { s.Complete(struct{}{}) }

// WaitGroup counts down to zero and then wakes waiters. Unlike sync's, it
// is virtual-time and single-threaded.
type WaitGroup struct {
	e     *Engine
	count int
	sig   *Signal
}

// NewWaitGroup returns a WaitGroup expecting n completions.
func NewWaitGroup(e *Engine, n int) *WaitGroup {
	wg := &WaitGroup{e: e, count: n, sig: NewSignal(e)}
	if n == 0 {
		Fire(wg.sig)
	}
	return wg
}

// Done decrements the counter; at zero, waiters wake.
func (wg *WaitGroup) Done() {
	if wg.count <= 0 {
		panic("sim: WaitGroup.Done below zero")
	}
	wg.count--
	if wg.count == 0 {
		Fire(wg.sig)
	}
}

// Wait parks until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) { wg.sig.Wait(p) }
