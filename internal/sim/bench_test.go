package sim

import "testing"

// BenchmarkEventChurn measures the schedule→fire cycle that dominates the
// engine's hot path. With the event free list this runs allocation-free
// once the pool is primed.
func BenchmarkEventChurn(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var fire func()
	fire = func() {
		n++
		if n < b.N {
			e.Schedule(10, fire)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(10, fire)
	e.Run()
}

// BenchmarkTimerStartStop measures the cancel path (schedule then Stop),
// the pattern every RPC timeout takes.
func BenchmarkTimerStartStop(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.Schedule(100, fn)
		t.Stop()
	}
}
