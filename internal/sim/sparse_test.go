package sim

import (
	"fmt"
	"testing"
	"time"
)

// sparseChains runs nBusy self-ticking chains plus nIdle domains that
// never schedule anything, with a counting barrier hook, and returns the
// execution log, the hook invocation count, and the stats.
func sparseChains(t *testing.T, nBusy, nIdle int, sparse bool, workers int) (string, int, WorldStats) {
	t.Helper()
	root := NewEngine(3)
	w := root.World()
	w.SetWorkers(workers)
	w.SetSparseBarriers(sparse)
	hooks := 0
	w.OnBarrier(func() { hooks++ })
	doms := make([]*Engine, nBusy)
	for i := range doms {
		doms[i] = w.NewDomain()
	}
	for i := 0; i < nIdle; i++ {
		w.NewDomain()
	}
	for i := range doms {
		for j := range doms {
			if i != j {
				w.SetLookahead(doms[i], doms[j], Duration(time.Microsecond))
			}
		}
	}
	log := ""
	for i, d := range doms {
		i, d := i, d
		n := 0
		var tick func()
		tick = func() {
			log += fmt.Sprintf("d%d@%v ", i, d.Now())
			if n++; n < 40 {
				d.Schedule(Duration(time.Microsecond), tick)
			}
		}
		d.Schedule(0, tick)
	}
	root.Run()
	return log, hooks, w.Stats()
}

// TestSparseBarriersElideIdleSweeps: with no producer ever raising the
// barrier-request flag (pure domain-local chains), sparse mode runs the
// hooks exactly once (the mandatory first sweep) and counts every other
// crossing as a skip — with the execution log byte-identical to dense
// mode at both worker counts.
func TestSparseBarriersElideIdleSweeps(t *testing.T) {
	denseLog, denseHooks, dense := sparseChains(t, 3, 0, false, 1)
	if denseLog == "" || denseHooks < 2 {
		t.Fatalf("dense run degenerate: hooks=%d", denseHooks)
	}
	if dense.BarrierSkips != 0 {
		t.Fatalf("dense mode counted %d barrier skips", dense.BarrierSkips)
	}
	for _, workers := range []int{1, 4} {
		log, hooks, st := sparseChains(t, 3, 0, true, workers)
		if log != denseLog {
			t.Fatalf("workers=%d sparse log differs from dense:\n%s\nvs\n%s", workers, log, denseLog)
		}
		if hooks != 1 {
			t.Fatalf("workers=%d sparse ran hooks %d times, want 1", workers, hooks)
		}
		if st.Barriers != 1 || st.BarrierSkips == 0 {
			t.Fatalf("workers=%d barriers=%d skips=%d; want 1 sweep and >0 skips",
				workers, st.Barriers, st.BarrierSkips)
		}
		if st.Barriers+st.BarrierSkips != dense.Barriers {
			t.Fatalf("workers=%d sweeps+skips = %d, want %d crossings as dense",
				workers, st.Barriers+st.BarrierSkips, dense.Barriers)
		}
	}
}

// TestIdleDomainsSkipped: domains with empty wheels leave the active set
// and are not touched by the window-start scan — IdleSkips accounts one
// per idle domain per executed window, in both barrier modes.
func TestIdleDomainsSkipped(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		_, _, st := sparseChains(t, 2, 5, sparse, 1)
		if st.Windows == 0 {
			t.Fatal("no windows ran")
		}
		// Root plus the 5 never-scheduled domains are idle every window.
		if min := 6 * st.Windows; st.IdleSkips < min {
			t.Fatalf("sparse=%v IdleSkips = %d, want >= %d (6 idle domains x %d windows)",
				sparse, st.IdleSkips, min, st.Windows)
		}
	}
}

// TestRequestBarrierForcesSweep: raising the request flag mid-run makes
// the next crossing run its hooks even under sparse elision.
func TestRequestBarrierForcesSweep(t *testing.T) {
	root := NewEngine(5)
	w := root.World()
	w.SetSparseBarriers(true)
	hooks := 0
	w.OnBarrier(func() { hooks++ })
	a, b := w.NewDomain(), w.NewDomain()
	w.SetLookahead(a, b, Duration(time.Microsecond))
	w.SetLookahead(b, a, Duration(time.Microsecond))
	for i := 0; i < 10; i++ {
		a.Schedule(Duration(i)*10*time.Microsecond, func() {})
		b.Schedule(Duration(i)*10*time.Microsecond, func() {})
	}
	hooksAtRequest := -1
	a.Schedule(35*time.Microsecond, func() {
		hooksAtRequest = hooks
		w.RequestBarrier()
	})
	root.Run()
	if hooksAtRequest < 0 {
		t.Fatal("request event never ran")
	}
	if hooks != hooksAtRequest+1 {
		t.Fatalf("hooks = %d after request at %d; want exactly one more sweep", hooks, hooksAtRequest)
	}
	if st := w.Stats(); st.BarrierSkips == 0 {
		t.Fatalf("no barrier skips counted: %+v", st)
	}
}

// TestActiveSetReactivation: a domain that drains empty and later
// receives a fresh event (scheduled from a barrier hook, the only
// legitimate cross-domain scheduling context) rejoins the active set and
// fires it.
func TestActiveSetReactivation(t *testing.T) {
	root := NewEngine(8)
	w := root.World()
	lazy := w.NewDomain()
	w.DeclareLookahead(Duration(time.Microsecond))
	// Keep root busy so windows keep running after lazy drains.
	for i := 1; i <= 20; i++ {
		root.Schedule(Duration(i)*5*time.Microsecond, func() {})
	}
	lazy.Schedule(Duration(time.Microsecond), func() {})
	fired := false
	armed := false
	w.OnBarrier(func() {
		// Re-arm lazy once, well after its first event drained.
		if !armed && root.Now() > Time(30*time.Microsecond) {
			armed = true
			lazy.At(root.Now().Add(Duration(time.Microsecond)), func() { fired = true })
		}
	})
	root.Run()
	if !armed || !fired {
		t.Fatalf("armed=%v fired=%v; reactivated domain never ran its event", armed, fired)
	}
	if lazy.Now() < Time(30*time.Microsecond) {
		t.Fatalf("lazy clock %v never advanced to the late event", lazy.Now())
	}
}

// TestOnStatsHooks: registered hooks contribute to every snapshot.
func TestOnStatsHooks(t *testing.T) {
	w := NewEngine(1).World()
	w.OnStats(func(s *WorldStats) {
		s.ConnCacheHits += 10
		s.ConnCacheMisses += 3
		s.ConnCacheEvictions += 1
	})
	st := w.Stats()
	if st.ConnCacheHits != 10 || st.ConnCacheMisses != 3 || st.ConnCacheEvictions != 1 {
		t.Fatalf("stats hooks not applied: %+v", st)
	}
}
