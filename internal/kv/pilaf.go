package kv

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"time"

	"prism/internal/memory"
	"prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/wire"
)

// Pilaf [31] stores a hash table of pointers into an extents region. GETs
// are two one-sided READs (hash slot, then object) with self-verifying
// CRCs to detect racing server-side writes; PUTs are RPCs executed by the
// server CPU (§6). "Pilaf (software RDMA)" is the same protocol with the
// server's one-sided path running in the software stack.
//
// Pilaf hash slot layout (32 bytes):
//
//	[ inuse (8, LE) | ptr (8, LE) | len (8, LE) | slotCRC (8, LE) ]
//
// Object layout in extents: [ klen(8) | key(8) | value | entryCRC(8) ].
// Both CRCs must validate client-side; a mismatch means a concurrent
// server-side PUT and the client retries (the paper attributes ~2 µs of
// GET latency to CRC work).

var crcTable = crc64.MakeTable(crc64.ECMA)

const pilafSlotSize = 32

// PilafServer owns the hash table and extents and serves PUT RPCs.
type PilafServer struct {
	rs   *rdma.Server
	meta PilafMeta

	space      *memory.Space
	extents    *memory.Region
	extentNext uint64
	freeSlots  [][2]uint64 // recycled extents: {offset, size}

	// index and slotOwner are the server CPU's coherent view of the hash
	// table. The CPU's stores to simulated memory are staged (so remote
	// one-sided readers can observe torn state, which Pilaf's CRCs catch),
	// but a CPU always sees its own stores via store forwarding — so
	// server-side lookups must come from here, never from re-reading the
	// (possibly still-staged) simulated memory.
	index     map[int64]pilafRef // key -> current extent
	slotOwner map[int64]int64    // slot index -> key

	// Puts counts RPC PUTs executed by the server CPU.
	Puts int64
}

type pilafRef struct {
	slot int64
	ptr  memory.Addr
	len  uint64
}

// PilafMeta is the client control-plane description.
type PilafMeta struct {
	Key      memory.RKey
	HashBase memory.Addr
	NSlots   int64
	Hash     Hash
	MaxValue int
}

// NewPilafServer provisions Pilaf on the given NIC. extentsBytes is the
// capacity of the object store.
func NewPilafServer(rs *rdma.Server, opts Options) (*PilafServer, error) {
	space := rs.Space()
	hashRegion, err := space.Register(uint64(opts.NSlots) * pilafSlotSize)
	if err != nil {
		return nil, fmt.Errorf("kv: pilaf hash table: %w", err)
	}
	// Extents sized like PRISM-KV's buffer pool: one entry per slot plus
	// slack for in-place-replacement churn.
	entryBytes := pilafEntrySize(opts.MaxValue)
	ext, err := space.RegisterShared(hashRegion.Key, entryBytes*uint64(opts.BuffersPerClass))
	if err != nil {
		return nil, fmt.Errorf("kv: pilaf extents: %w", err)
	}
	s := &PilafServer{
		rs:        rs,
		space:     space,
		extents:   ext,
		index:     make(map[int64]pilafRef),
		slotOwner: make(map[int64]int64),
		meta: PilafMeta{
			Key:      hashRegion.Key,
			HashBase: hashRegion.Base,
			NSlots:   opts.NSlots,
			Hash:     opts.Hash,
			MaxValue: opts.MaxValue,
		},
	}
	rs.SetRPCHandler(s.handleRPC)
	return s, nil
}

// Meta returns the client description.
func (s *PilafServer) Meta() PilafMeta { return s.meta }

// NIC returns the transport server.
func (s *PilafServer) NIC() *rdma.Server { return s.rs }

func pilafEntrySize(valueLen int) uint64 {
	return uint64(8 + 8 + valueLen + 8) // klen | key | value | crc
}

func pilafEncodeEntry(key int64, value []byte) []byte {
	b := make([]byte, pilafEntrySize(len(value)))
	binary.LittleEndian.PutUint64(b, 8)
	binary.BigEndian.PutUint64(b[8:], uint64(key))
	copy(b[16:], value)
	crc := crc64.Checksum(b[:len(b)-8], crcTable)
	binary.LittleEndian.PutUint64(b[len(b)-8:], crc)
	return b
}

func pilafDecodeEntry(b []byte) (key int64, value []byte, ok bool) {
	if len(b) < 24 {
		return 0, nil, false
	}
	crc := binary.LittleEndian.Uint64(b[len(b)-8:])
	if crc64.Checksum(b[:len(b)-8], crcTable) != crc {
		return 0, nil, false
	}
	if binary.LittleEndian.Uint64(b) != 8 {
		return 0, nil, false
	}
	key = int64(binary.BigEndian.Uint64(b[8:]))
	return key, b[16 : len(b)-8], true
}

func pilafEncodeSlot(ptr memory.Addr, length uint64) []byte {
	b := make([]byte, pilafSlotSize)
	binary.LittleEndian.PutUint64(b, 1) // inuse
	binary.LittleEndian.PutUint64(b[8:], uint64(ptr))
	binary.LittleEndian.PutUint64(b[16:], length)
	crc := crc64.Checksum(b[:24], crcTable)
	binary.LittleEndian.PutUint64(b[24:], crc)
	return b
}

func pilafDecodeSlot(b []byte) (inuse bool, ptr memory.Addr, length uint64, ok bool) {
	if len(b) != pilafSlotSize {
		return false, 0, 0, false
	}
	// A never-written slot is all zeros: decode as empty rather than as a
	// CRC mismatch (which signals a torn concurrent update and retries).
	if binary.LittleEndian.Uint64(b) == 0 {
		return false, 0, 0, true
	}
	crc := binary.LittleEndian.Uint64(b[24:])
	if crc64.Checksum(b[:24], crcTable) != crc {
		return false, 0, 0, false
	}
	return binary.LittleEndian.Uint64(b) == 1,
		memory.Addr(binary.LittleEndian.Uint64(b[8:])),
		binary.LittleEndian.Uint64(b[16:]),
		true
}

// allocExtent carves an entry from the extents region (server CPU side).
func (s *PilafServer) allocExtent(n uint64) (memory.Addr, error) {
	for i, f := range s.freeSlots {
		if f[1] >= n {
			s.freeSlots = append(s.freeSlots[:i], s.freeSlots[i+1:]...)
			return s.extents.Base + memory.Addr(f[0]), nil
		}
	}
	if s.extentNext+n > s.extents.Len {
		return 0, fmt.Errorf("kv: pilaf extents full")
	}
	off := s.extentNext
	s.extentNext += n
	return s.extents.Base + memory.Addr(off), nil
}

// tearDelay separates the CPU's partial memory writes during a PUT, so
// concurrent one-sided readers can observe torn state — the race Pilaf's
// self-verifying CRCs exist to catch (§6, [31]). Server CPU stores are
// not atomic at entry granularity on real hardware.
const tearDelay = 300 * time.Nanosecond

// put executes a PUT on the server CPU: allocate (or reuse) an extent,
// write the entry (non-atomically), update the slot (non-atomically).
// Lookups use the CPU's coherent index, never the staged simulated memory.
func (s *PilafServer) put(key int64, value []byte) error {
	s.Puts++
	entry := pilafEncodeEntry(key, value)

	var slot int64
	if ref, ok := s.index[key]; ok {
		slot = ref.slot
		// Overwrite: retire the old extent.
		s.freeSlots = append(s.freeSlots, [2]uint64{uint64(ref.ptr - s.extents.Base), ref.len})
	} else {
		// Insert: probe for a free slot.
		idx := slotIndex(s.meta.Hash, key, s.meta.NSlots)
		found := false
		for probes := int64(0); probes < s.meta.NSlots; probes++ {
			if _, taken := s.slotOwner[idx]; !taken {
				found = true
				break
			}
			idx = (idx + 1) % s.meta.NSlots
		}
		if !found {
			return fmt.Errorf("kv: pilaf hash table full")
		}
		slot = idx
	}

	dst, err := s.allocExtent(uint64(len(entry)))
	if err != nil {
		return err
	}
	s.index[key] = pilafRef{slot: slot, ptr: dst, len: uint64(len(entry))}
	s.slotOwner[slot] = key

	// Stage the stores to simulated memory: first half of the entry now,
	// second half a beat later, slot halves last — a remote reader
	// interleaving anywhere in between sees a torn entry or a torn slot
	// and must rely on the CRC to detect it.
	slotAddr := s.meta.HashBase + memory.Addr(slot*pilafSlotSize)
	half := len(entry) / 2
	if err := s.space.Write(s.meta.Key, dst, entry[:half]); err != nil {
		return err
	}
	e := s.rs.Engine()
	e.Schedule(tearDelay, func() {
		if err := s.space.Write(s.meta.Key, dst+memory.Addr(half), entry[half:]); err != nil {
			panic(err)
		}
	})
	slotImg := pilafEncodeSlot(dst, uint64(len(entry)))
	e.Schedule(2*tearDelay, func() {
		if err := s.space.Write(s.meta.Key, slotAddr, slotImg[:16]); err != nil {
			panic(err)
		}
	})
	e.Schedule(3*tearDelay, func() {
		if err := s.space.Write(s.meta.Key, slotAddr+16, slotImg[16:]); err != nil {
			panic(err)
		}
	})
	return nil
}

// handleRPC dispatches Pilaf PUTs.
func (s *PilafServer) handleRPC(payload []byte) ([]byte, time.Duration) {
	if len(payload) < 9 || payload[0] != rpcPilafPut {
		return []byte{1}, 0
	}
	key := int64(binary.BigEndian.Uint64(payload[1:9]))
	value := payload[9:]
	if err := s.put(key, value); err != nil {
		return []byte{1}, 0
	}
	// CPU cost of the hash probe + extent copy beyond base dispatch.
	return []byte{0}, 500 * time.Nanosecond
}

// Load bulk-installs an object (server-side, pre-experiment).
func (s *PilafServer) Load(key int64, value []byte) error {
	return s.put(key, value)
}

// PilafClient runs the Pilaf protocol over one connection.
type PilafClient struct {
	conn *rdma.Conn
	meta PilafMeta
	// crcCost is the modeled client-side CRC validation time per GET.
	crcCost time.Duration

	// Retries counts CRC-failure GET retries (concurrent PUT races).
	Retries int64

	// payloadBuf is reusable PUT-RPC scratch: the client is closed-loop
	// and stale in-flight duplicates are dropped by the request epoch.
	payloadBuf []byte
}

// NewPilafClient wraps a connection to a Pilaf server.
func NewPilafClient(conn *rdma.Conn, meta PilafMeta, crcCost time.Duration) *PilafClient {
	return &PilafClient{conn: conn, meta: meta, crcCost: crcCost}
}

// Get performs Pilaf's two-READ lookup with CRC validation.
func (c *PilafClient) Get(p *sim.Proc, key int64) ([]byte, error) {
	const maxRetries = 1000 // torn-read retries before giving up
	idx := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	retries := 0
	for probes := int64(0); probes < c.meta.NSlots; probes++ {
		slotAddr := c.meta.HashBase + memory.Addr(idx*pilafSlotSize)
		ops := c.conn.Ops(1)
		ops[0] = prism.Read(c.meta.Key, slotAddr, pilafSlotSize)
		res := c.conn.Issue(p, ops...)
		if res[0].Status != wire.StatusOK {
			return nil, fmt.Errorf("kv: pilaf slot read %v", res[0].Status)
		}
		inuse, ptr, length, ok := pilafDecodeSlot(res[0].Data)
		if !ok {
			// Torn slot under a concurrent PUT: retry this probe.
			c.Retries++
			if retries++; retries > maxRetries {
				return nil, fmt.Errorf("kv: pilaf slot CRC never settled")
			}
			probes--
			continue
		}
		if !inuse {
			return nil, ErrNotFound
		}
		ops = c.conn.Ops(1)
		ops[0] = prism.Read(c.meta.Key, ptr, length)
		res = c.conn.Issue(p, ops...)
		if res[0].Status != wire.StatusOK {
			return nil, fmt.Errorf("kv: pilaf entry read %v", res[0].Status)
		}
		p.Sleep(c.crcCost) // client-side CRC validation (§6.2: ~2 µs)
		k, v, ok := pilafDecodeEntry(res[0].Data)
		if !ok {
			c.Retries++
			if retries++; retries > maxRetries {
				return nil, fmt.Errorf("kv: pilaf entry CRC never settled")
			}
			probes--
			continue
		}
		if k == key {
			return v, nil
		}
		idx = (idx + 1) % c.meta.NSlots
	}
	return nil, ErrNotFound
}

// Put sends the PUT RPC to the server CPU.
func (c *PilafClient) Put(p *sim.Proc, key int64, value []byte) error {
	if cap(c.payloadBuf) < 9+len(value) {
		c.payloadBuf = make([]byte, 9+len(value))
	}
	payload := c.payloadBuf[:9+len(value)]
	payload[0] = rpcPilafPut
	binary.BigEndian.PutUint64(payload[1:9], uint64(key))
	copy(payload[9:], value)
	ops := c.conn.Ops(1)
	ops[0] = prism.Send(payload)
	res := c.conn.Issue(p, ops...)
	if res[0].Status != wire.StatusOK || len(res[0].Data) != 1 || res[0].Data[0] != 0 {
		return fmt.Errorf("kv: pilaf PUT failed")
	}
	return nil
}
