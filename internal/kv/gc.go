package kv

import (
	"prism/internal/memory"
	"prism/internal/prism"
)

// ScanAndReclaim implements §3.2's garbage-collection-inspired alternative
// to client-driven buffer reclamation: the server CPU scans the hash table
// to find every buffer still referenced by a slot, treats any tracked-by-
// no-one buffer as leaked (e.g. a client crashed between its CAS and its
// reclamation RPC), waits for in-flight NIC operations to quiesce, and
// reposts the leaked buffers to their free lists.
//
// done is invoked with the number of reclaimed buffers once the quiesce
// completes (immediately, when the NIC is idle).
//
// Safety: a buffer that is neither referenced by any slot nor owned by a
// free list at scan time can only be held by an operation already in
// flight (an allocate-then-CAS chain that has not installed yet, or a
// CAS-loser awaiting client reclamation). Operations starting after the
// scan cannot acquire it — it is not on any free list. The post-quiesce
// re-scan therefore sees its final state: installed (skip) or leaked
// (reclaim).
func (s *Server) ScanAndReclaim(done func(reclaimed int)) {
	candidates := s.leakedBuffers()
	if len(candidates) == 0 {
		if done != nil {
			done(0)
		}
		return
	}
	s.rs.Quiesce(func() {
		// Re-scan: anything installed meanwhile is no longer leaked.
		still := s.leakedBuffers()
		reclaimed := 0
		for fl, addrs := range still {
			freeList := s.rs.FreeList(fl)
			if _, wasCandidate := candidates[fl]; !wasCandidate {
				continue
			}
			cand := make(map[memory.Addr]bool, len(candidates[fl]))
			for _, a := range candidates[fl] {
				cand[a] = true
			}
			for _, a := range addrs {
				if cand[a] {
					freeList.Post(a)
					reclaimed++
				}
			}
		}
		if done != nil {
			done(reclaimed)
		}
	})
}

// leakedBuffers returns, per free list, the buffers neither referenced by
// a hash slot nor owned by the free list.
func (s *Server) leakedBuffers() map[uint32][]memory.Addr {
	space := s.rs.Space()
	referenced := make(map[memory.Addr]bool, s.meta.NSlots)
	for i := int64(0); i < s.meta.NSlots; i++ {
		slot, err := space.Peek(s.meta.Key, s.meta.slotAddr(i), slotSize)
		if err != nil {
			continue
		}
		if ptr := prism.LE64(slot, 8); ptr != 0 {
			referenced[memory.Addr(ptr)] = true
		}
	}
	leaked := make(map[uint32][]memory.Addr)
	for _, cr := range s.classRegions {
		tracked := s.rs.FreeList(cr.flID).Tracked()
		for b := 0; b < cr.count; b++ {
			addr := cr.base + memory.Addr(uint64(b)*cr.bufSize)
			if !referenced[addr] && !tracked[addr] {
				leaked[cr.flID] = append(leaked[cr.flID], addr)
			}
		}
	}
	return leaked
}
