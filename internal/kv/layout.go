// Package kv implements the paper's key-value case study (§6): PRISM-KV,
// which performs both GETs and PUTs with one-sided PRISM operations, and
// the Pilaf baseline [31], which reads with one-sided READs (plus
// self-verifying CRCs) and writes through server-CPU RPCs.
//
// PRISM-KV hash slot layout (24 bytes):
//
//	[ tag (8, big-endian) | ptr (8, little-endian) | bound (8, little-endian) ]
//
// The <ptr,bound> pair at offset 8 is exactly the bounded pointer an
// indirect bounded READ consumes, and the whole 24-byte slot is the target
// of the PUT chain's enhanced CAS: compare GT on the tag, swap all fields.
// The tag orders concurrent PUTs; a failed CAS means a newer value landed
// first. (The paper's §6.1 compares the old buffer address instead and
// footnote 2 sketches this generation-tag variant as the more robust
// design; the single-data-argument CAS of Table 1 makes the tag variant
// the one that composes with a server-side ALLOCATE, so we build that.
// Round-trip structure and CPU involvement are identical.)
//
// Object buffers hold [ klen (8, LE) | key | value ] and are allocated
// from PRISM free lists; the slot bound covers the used prefix.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"prism/internal/memory"
)

// Errors returned by the stores.
var (
	ErrNotFound = errors.New("kv: key not found")
	ErrTooLarge = errors.New("kv: object exceeds the largest buffer class")
)

// slotSize is the PRISM-KV hash slot size.
const slotSize = 24

// entryHeader is the object buffer header (klen).
const entryHeader = 8

// Hash selects hash-table slots. The paper's evaluation uses a
// collisionless hash (§6.2); the FNV mode exercises linear probing.
type Hash int

// Hash modes.
const (
	// Collisionless maps key k to slot k — valid when the slot count is
	// at least the keyspace, as in the paper's experiments.
	Collisionless Hash = iota
	// FNV uses FNV-1a with linear probing on collision.
	FNV
	// TwoChoice gives each key two candidate slots (cuckoo-style, as
	// Pilaf's hash table does [31]); PRISM-KV reads both candidates in a
	// single chained round trip. Inserts take whichever candidate is
	// free; unlike full cuckoo hashing there is no displacement, so the
	// table should be sized with slack (inserts fail when both candidates
	// of a key are taken by other keys).
	TwoChoice
)

func fnvHash(key int64, seed byte) uint64 {
	f := fnv.New64a()
	var b [9]byte
	binary.BigEndian.PutUint64(b[:8], uint64(key))
	b[8] = seed
	f.Write(b[:])
	return f.Sum64()
}

func slotIndex(h Hash, key int64, nSlots int64) int64 {
	switch h {
	case Collisionless:
		return ((key % nSlots) + nSlots) % nSlots
	default:
		return int64(fnvHash(key, 0) % uint64(nSlots))
	}
}

// slotIndex2 returns the second candidate slot for TwoChoice hashing,
// distinct from the first whenever nSlots > 1.
func slotIndex2(key int64, nSlots int64) int64 {
	s1 := int64(fnvHash(key, 0) % uint64(nSlots))
	s2 := int64(fnvHash(key, 1) % uint64(nSlots))
	if s2 == s1 {
		s2 = (s2 + 1) % nSlots
	}
	return s2
}

// encodeEntry builds an object buffer image.
func encodeEntry(key int64, value []byte) []byte {
	b := make([]byte, entryHeader+8+len(value))
	binary.LittleEndian.PutUint64(b, 8) // key length (paper: 8-byte keys)
	binary.BigEndian.PutUint64(b[entryHeader:], uint64(key))
	copy(b[entryHeader+8:], value)
	return b
}

// decodeEntry splits an object buffer image, validating its key length.
func decodeEntry(b []byte) (key int64, value []byte, err error) {
	if len(b) < entryHeader {
		return 0, nil, fmt.Errorf("kv: entry truncated (%d bytes)", len(b))
	}
	klen := binary.LittleEndian.Uint64(b)
	if klen != 8 || len(b) < entryHeader+8 {
		return 0, nil, fmt.Errorf("kv: bad key length %d", klen)
	}
	key = int64(binary.BigEndian.Uint64(b[entryHeader:]))
	return key, b[entryHeader+8:], nil
}

// entrySize is the buffer bytes needed for a value of n bytes.
func entrySize(n int) uint64 { return uint64(entryHeader + 8 + n) }

// Meta is the control-plane description a client needs to operate on a
// PRISM-KV server: where the structures live and how they are protected.
// Real deployments exchange this at connection setup.
type Meta struct {
	Key       memory.RKey
	HashBase  memory.Addr
	NSlots    int64
	Hash      Hash
	MaxValue  int
	FreeLists []FreeListInfo
}

// FreeListInfo describes one registered size class.
type FreeListInfo struct {
	ID      uint32
	BufSize uint64
}

// classFor picks the smallest free list fitting n buffer bytes.
func (m *Meta) classFor(n uint64) (uint32, error) {
	for _, fl := range m.FreeLists {
		if n <= fl.BufSize {
			return fl.ID, nil
		}
	}
	return 0, ErrTooLarge
}

func (m *Meta) slotAddr(idx int64) memory.Addr {
	return m.HashBase + memory.Addr(idx*slotSize)
}
