package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"prism/internal/memory"
	"prism/internal/prism"
	"prism/internal/transport"
	"prism/internal/wire"
)

// Live-transport side of PRISM-KV: the same data-path protocol as the
// simulated Client, issued over a transport.Conn (tcp or unix socket)
// against a prismd server. The control plane — the Meta the simulator
// hands to clients in-process — travels over the wire as an rpcMeta
// exchange, so a live client needs nothing but an address.

// appendMeta encodes m (little-endian, fixed header then one record per
// free list). The encoding is an internal protocol detail shared by
// handleRPC and FetchMeta.
func appendMeta(b []byte, m *Meta) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Key))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.HashBase))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.NSlots))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Hash))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.MaxValue))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.FreeLists)))
	for _, fl := range m.FreeLists {
		b = binary.LittleEndian.AppendUint32(b, fl.ID)
		b = binary.LittleEndian.AppendUint64(b, fl.BufSize)
	}
	return b
}

const metaHeaderLen = 4 + 8 + 8 + 4 + 8 + 4

// decodeMeta parses an appendMeta encoding.
func decodeMeta(b []byte) (Meta, error) {
	var m Meta
	if len(b) < metaHeaderLen {
		return m, errors.New("kv: short meta reply")
	}
	m.Key = memory.RKey(binary.LittleEndian.Uint32(b))
	m.HashBase = memory.Addr(binary.LittleEndian.Uint64(b[4:]))
	m.NSlots = int64(binary.LittleEndian.Uint64(b[12:]))
	m.Hash = Hash(binary.LittleEndian.Uint32(b[20:]))
	m.MaxValue = int(binary.LittleEndian.Uint64(b[24:]))
	n := int(binary.LittleEndian.Uint32(b[32:]))
	b = b[metaHeaderLen:]
	if len(b) != n*12 {
		return m, fmt.Errorf("kv: meta reply has %d bytes for %d free lists", len(b), n)
	}
	for i := 0; i < n; i++ {
		m.FreeLists = append(m.FreeLists, FreeListInfo{
			ID:      binary.LittleEndian.Uint32(b[i*12:]),
			BufSize: binary.LittleEndian.Uint64(b[i*12+4:]),
		})
	}
	return m, nil
}

// FetchMeta retrieves the server's control-plane description over conn
// (an rpcMeta SEND/reply exchange).
func FetchMeta(conn *transport.Conn) (Meta, error) {
	ops := conn.Ops(1)
	ops[0] = prism.Send([]byte{rpcMeta})
	res, err := conn.Issue(ops)
	if err != nil {
		return Meta{}, err
	}
	if res[0].Status != wire.StatusOK {
		return Meta{}, fmt.Errorf("kv: meta RPC status %v", res[0].Status)
	}
	return decodeMeta(res[0].Data)
}

// LiveClient executes PRISM-KV operations over a live transport
// connection. It is the socket-borne twin of Client: the same slot
// layout, tag scheme, chain shapes, and reclamation batching, with real
// blocking issues in place of simulated ones. Single-owner, like the
// connection it wraps.
type LiveClient struct {
	conn     *transport.Conn
	meta     Meta
	clientID uint16
	tagClock uint64

	// Reclamation batching (see Client.FreeBatch).
	frees      []byte
	freesCount int
	FreeBatch  int

	// Stats
	Probes  int64
	CASFail int64

	// Per-client scratch; safe to reuse because issues on the connection
	// are strictly sequential (Issue blocks until the response arrives).
	entryBuf []byte
	preBuf   [slotSize]byte
	ptrBuf   [8]byte

	// Verb-program scratch (chain.go), reuse-safe like entryBuf.
	progBuf  []byte
	matchBuf [8]byte

	// GetBatch scratch, reused across batches.
	batchOps    []wire.Op
	batchChains [][]wire.Op
	batchProbe  []int
}

// NewLiveClient wraps a live connection to a PRISM-KV server.
func NewLiveClient(conn *transport.Conn, meta Meta, clientID uint16) *LiveClient {
	return &LiveClient{conn: conn, meta: meta, clientID: clientID, FreeBatch: 16}
}

// DialLive connects to a prismd server at addr, opens one connection,
// and fetches the store metadata. clientID salts the client's tags.
func DialLive(addr string, clientID uint16) (*transport.Client, *LiveClient, error) {
	tc, err := transport.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	conn, err := tc.Connect()
	if err != nil {
		tc.Close()
		return nil, nil, err
	}
	meta, err := FetchMeta(conn)
	if err != nil {
		tc.Close()
		return nil, nil, err
	}
	return tc, NewLiveClient(conn, meta, clientID), nil
}

// Meta returns the store description fetched at dial time.
func (c *LiveClient) Meta() Meta { return c.meta }

// nextTag mirrors Client.nextTag: (logical clock << 16) | clientID.
func (c *LiveClient) nextTag(atLeast uint64) uint64 {
	clock := c.tagClock + 1
	if floor := atLeast >> 16; floor >= clock {
		clock = floor + 1
	}
	c.tagClock = clock
	return clock<<16 | uint64(c.clientID)
}

// Get performs the §6.1 read over the live transport.
func (c *LiveClient) Get(key int64) ([]byte, error) {
	if c.meta.Hash == TwoChoice {
		return c.getTwoChoice(key)
	}
	idx := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	for probes := int64(0); probes < c.meta.NSlots; probes++ {
		ops := c.conn.Ops(1)
		ops[0] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(idx)+8, entrySize(c.meta.MaxValue))
		res, err := c.conn.Issue(ops)
		if err != nil {
			return nil, err
		}
		if res[0].Status == wire.StatusNAKAccess {
			return nil, ErrNotFound
		}
		if res[0].Status != wire.StatusOK {
			return nil, fmt.Errorf("kv: GET status %v", res[0].Status)
		}
		k, v, err := decodeEntry(res[0].Data)
		if err != nil {
			return nil, err
		}
		if k == key {
			return v, nil
		}
		c.Probes++
		idx = (idx + 1) % c.meta.NSlots
	}
	return nil, ErrNotFound
}

// GetBatch performs the §6.1 read for every key behind one doorbell:
// the whole train of GET chains is staged into the socket's flush
// buffer and the writer is rung once (Conn.IssueBatch), so n lookups
// cost one write syscall instead of n. visit is called exactly once per
// key, in key order for every key resolved by its home slot(s); keys
// that linear probing displaced past the home slot fall back to
// individual Gets and are visited last. val aliases transport-owned
// storage and is valid only during the visit call — copy to keep.
func (c *LiveClient) GetBatch(keys []int64, visit func(i int, val []byte, err error)) error {
	if len(keys) == 0 {
		return nil
	}
	two := c.meta.Hash == TwoChoice
	opsPerKey := 1
	if two {
		opsPerKey = 2
	}
	if cap(c.batchOps) < len(keys)*opsPerKey {
		c.batchOps = make([]wire.Op, len(keys)*opsPerKey)
	}
	ops := c.batchOps[:len(keys)*opsPerKey]
	if cap(c.batchChains) < len(keys) {
		c.batchChains = make([][]wire.Op, len(keys))
	}
	chains := c.batchChains[:len(keys)]
	bound := entrySize(c.meta.MaxValue)
	for i, key := range keys {
		if two {
			s1 := slotIndex(c.meta.Hash, key, c.meta.NSlots)
			s2 := slotIndex2(key, c.meta.NSlots)
			ops[2*i] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s1)+8, bound)
			ops[2*i+1] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s2)+8, bound)
			chains[i] = ops[2*i : 2*i+2]
		} else {
			idx := slotIndex(c.meta.Hash, key, c.meta.NSlots)
			ops[i] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(idx)+8, bound)
			chains[i] = ops[i : i+1]
		}
	}
	res, err := c.conn.IssueBatch(chains)
	if err != nil {
		return err
	}
	// Visit every key the batch resolved first: result views are only
	// valid until the next issue on the connection, and the probe
	// fallbacks below issue.
	probe := c.batchProbe[:0]
	for i, key := range keys {
		if two {
			val := []byte(nil)
			found := false
			for _, r := range res[i] {
				if r.Status != wire.StatusOK {
					continue // empty slot NAKs on the null pointer
				}
				if k, v, err := decodeEntry(r.Data); err == nil && k == key {
					val, found = v, true
					break
				}
			}
			if found {
				visit(i, val, nil)
			} else {
				visit(i, nil, ErrNotFound)
			}
			continue
		}
		r := res[i][0]
		switch {
		case r.Status == wire.StatusNAKAccess:
			visit(i, nil, ErrNotFound)
		case r.Status != wire.StatusOK:
			visit(i, nil, fmt.Errorf("kv: GET status %v", r.Status))
		default:
			k, v, err := decodeEntry(r.Data)
			if err != nil {
				visit(i, nil, err)
			} else if k == key {
				visit(i, v, nil)
			} else {
				// Home slot holds a different key: the entry (if present)
				// was displaced down the probe chain.
				probe = append(probe, i)
			}
		}
	}
	c.batchProbe = probe
	for _, i := range probe {
		v, err := c.Get(keys[i])
		visit(i, v, err)
	}
	return nil
}

// getTwoChoice reads both candidate slots in one chained round trip.
func (c *LiveClient) getTwoChoice(key int64) ([]byte, error) {
	s1 := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	s2 := slotIndex2(key, c.meta.NSlots)
	ops := c.conn.Ops(2)
	ops[0] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s1)+8, entrySize(c.meta.MaxValue))
	ops[1] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s2)+8, entrySize(c.meta.MaxValue))
	res, err := c.conn.Issue(ops)
	if err != nil {
		return nil, err
	}
	for i := range res {
		if res[i].Status != wire.StatusOK {
			continue // empty slot NAKs on the null pointer
		}
		if k, v, err := decodeEntry(res[i].Data); err == nil && k == key {
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// Put performs the §6.1 out-of-place update: probe for the slot, then
// the WRITE → ALLOCATE(redirect) → enhanced-CAS chain. Identical to
// Client.Put, with real sleeps for RNR backoff.
func (c *LiveClient) Put(key int64, value []byte) error {
	if len(value) > c.meta.MaxValue {
		return ErrTooLarge
	}
	entry := c.encodeEntryScratch(key, value)
	flID, err := c.meta.classFor(uint64(len(entry)))
	if err != nil {
		return err
	}

	rnrRetries := 0
	for {
		idx, curTag, err := c.findSlot(key)
		if err != nil {
			return err
		}
		slot := c.meta.slotAddr(idx)
		tag := c.nextTag(curTag)

		tmp := c.conn.TempAddr
		pre := c.preBuf[:]
		prism.PutBE64(pre, 0, tag)
		prism.PutLE64(pre, 8, 0)
		prism.PutLE64(pre, 16, uint64(len(entry)))
		ops := c.conn.Ops(3)
		ops[0] = prism.Write(c.conn.TempKey, tmp, pre)
		ops[1] = prism.Conditional(prism.RedirectTo(prism.Allocate(flID, entry), c.conn.TempKey, tmp+8))
		ops[2] = prism.Conditional(prism.CASIndirectDataBuf(&c.ptrBuf, c.meta.Key, slot, wire.CASGt, tmp,
			slotTagMask, slotFullMask))
		res, err := c.conn.Issue(ops)
		if err != nil {
			return err
		}
		if res[1].Status == wire.StatusRNR {
			if rnrRetries++; rnrRetries > 100 {
				return fmt.Errorf("kv: free list %d exhausted", flID)
			}
			if err := c.FlushFrees(); err != nil {
				return err
			}
			time.Sleep(time.Duration(rnrRetries) * 10 * time.Microsecond)
			continue
		}
		if res[0].Status != wire.StatusOK || res[1].Status != wire.StatusOK {
			return fmt.Errorf("kv: PUT chain statuses %v %v %v", res[0].Status, res[1].Status, res[2].Status)
		}
		switch res[2].Status {
		case wire.StatusOK:
			oldPtr := prism.LE64(res[2].Data, 8)
			if oldPtr != 0 {
				oldLen := prism.LE64(res[2].Data, 16)
				if oldClass, err := c.meta.classFor(oldLen); err == nil {
					if err := c.retire(oldClass, memory.Addr(oldPtr)); err != nil {
						return err
					}
				}
			}
			return nil
		case wire.StatusCASFailed:
			// Superseded by a newer tag: last-writer-wins (see Client.Put).
			c.CASFail++
			return c.retire(flID, res[1].Addr)
		default:
			return fmt.Errorf("kv: PUT CAS status %v", res[2].Status)
		}
	}
}

// Delete swings the slot to the null pointer with a fresh tag.
func (c *LiveClient) Delete(key int64) error {
	idx, curTag, err := c.findSlot(key)
	if err != nil {
		return err
	}
	slot := c.meta.slotAddr(idx)
	tag := c.nextTag(curTag)
	data := c.preBuf[:]
	prism.PutBE64(data, 0, tag)
	prism.PutLE64(data, 8, 0)
	prism.PutLE64(data, 16, 0)
	ops := c.conn.Ops(1)
	ops[0] = prism.CAS(c.meta.Key, slot, wire.CASGt, data, slotTagMask, slotFullMask)
	res, err := c.conn.Issue(ops)
	if err != nil {
		return err
	}
	switch res[0].Status {
	case wire.StatusOK:
		oldPtr := prism.LE64(res[0].Data, 8)
		if oldPtr != 0 {
			oldLen := prism.LE64(res[0].Data, 16)
			if oldClass, err := c.meta.classFor(oldLen); err == nil {
				return c.retire(oldClass, memory.Addr(oldPtr))
			}
		}
		return nil
	case wire.StatusCASFailed:
		return nil // a newer write superseded the delete
	default:
		return fmt.Errorf("kv: DELETE status %v", res[0].Status)
	}
}

// findSlotTwoChoice resolves the slot for key under two-choice hashing
// in one chained round trip.
func (c *LiveClient) findSlotTwoChoice(key int64) (int64, uint64, error) {
	s1 := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	s2 := slotIndex2(key, c.meta.NSlots)
	ops := c.conn.Ops(4)
	ops[0] = prism.Read(c.meta.Key, c.meta.slotAddr(s1), slotSize)
	ops[1] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s1)+8, entrySize(c.meta.MaxValue))
	ops[2] = prism.Read(c.meta.Key, c.meta.slotAddr(s2), slotSize)
	ops[3] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s2)+8, entrySize(c.meta.MaxValue))
	res, err := c.conn.Issue(ops)
	if err != nil {
		return 0, 0, err
	}
	slots := [2]int64{s1, s2}
	var emptyIdx int64 = -1
	var emptyTag uint64
	for i := 0; i < 2; i++ {
		slotRes, objRes := res[2*i], res[2*i+1]
		if slotRes.Status != wire.StatusOK {
			return 0, 0, fmt.Errorf("kv: slot read status %v", slotRes.Status)
		}
		tag := prism.BE64(slotRes.Data, 0)
		ptr := prism.LE64(slotRes.Data, 8)
		if ptr == 0 {
			if emptyIdx < 0 {
				emptyIdx, emptyTag = slots[i], tag
			}
			continue
		}
		if objRes.Status == wire.StatusOK {
			if k, _, err := decodeEntry(objRes.Data); err == nil && k == key {
				return slots[i], tag, nil
			}
		}
	}
	if emptyIdx >= 0 {
		return emptyIdx, emptyTag, nil
	}
	return 0, 0, fmt.Errorf("kv: both candidate slots for key %d are taken (resize the table)", key)
}

// findSlot probes for the slot holding key (or the first empty slot).
func (c *LiveClient) findSlot(key int64) (int64, uint64, error) {
	if c.meta.Hash == TwoChoice {
		return c.findSlotTwoChoice(key)
	}
	idx := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	for probes := int64(0); probes < c.meta.NSlots; probes++ {
		slot := c.meta.slotAddr(idx)
		ops := c.conn.Ops(2)
		ops[0] = prism.Read(c.meta.Key, slot, slotSize)
		ops[1] = prism.ReadBounded(c.meta.Key, slot+8, entrySize(c.meta.MaxValue))
		res, err := c.conn.Issue(ops)
		if err != nil {
			return 0, 0, err
		}
		if res[0].Status != wire.StatusOK {
			return 0, 0, fmt.Errorf("kv: slot read status %v", res[0].Status)
		}
		tag := prism.BE64(res[0].Data, 0)
		ptr := prism.LE64(res[0].Data, 8)
		if ptr == 0 {
			return idx, tag, nil
		}
		if res[1].Status == wire.StatusOK {
			if k, _, err := decodeEntry(res[1].Data); err == nil && k == key {
				return idx, tag, nil
			}
		}
		c.Probes++
		idx = (idx + 1) % c.meta.NSlots
	}
	return 0, 0, fmt.Errorf("kv: hash table full for key %d", key)
}

// retire queues a buffer for reclamation, flushing asynchronously when
// a batch fills.
func (c *LiveClient) retire(freeList uint32, addr memory.Addr) error {
	var rec [12]byte
	binary.LittleEndian.PutUint32(rec[:4], freeList)
	binary.LittleEndian.PutUint64(rec[4:], uint64(addr))
	c.frees = append(c.frees, rec[:]...)
	c.freesCount++
	if c.freesCount >= c.FreeBatch {
		return c.FlushFrees()
	}
	return nil
}

// FlushFrees sends the accumulated reclamation batch fire-and-forget;
// the reply is consumed by the transport's demux goroutine.
func (c *LiveClient) FlushFrees() error {
	if c.freesCount == 0 {
		return nil
	}
	payload := append([]byte{rpcFree}, c.frees...)
	c.frees = c.frees[:0]
	c.freesCount = 0
	ops := c.conn.Ops(1)
	ops[0] = prism.Send(payload)
	return c.conn.IssueAsync(ops)
}

// encodeEntryScratch builds the object image in reusable scratch.
func (c *LiveClient) encodeEntryScratch(key int64, value []byte) []byte {
	need := entryHeader + 8 + len(value)
	if cap(c.entryBuf) < need {
		c.entryBuf = make([]byte, need)
	}
	b := c.entryBuf[:need]
	binary.LittleEndian.PutUint64(b, 8) // key length (paper: 8-byte keys)
	binary.BigEndian.PutUint64(b[entryHeader:], uint64(key))
	copy(b[entryHeader+8:], value)
	return b
}
