// Verb-program clients for PRISM-KV (§17) and the linked-chain store the
// fig-chase experiment measures them on.
//
// Two layouts exercise the CHASE/SCAN programs:
//
//   - The standard PRISM-KV hash table (layout.go): GetChase replaces the
//     client-driven linear-probe loop (one round trip per probe) with a
//     single ProgChaseProbe program, and Scan streams a slot window's
//     entries under a byte budget.
//
//   - ChainStore, a bucketed singly-linked-list store built for pointer
//     chasing with a controllable chain depth. Keys 0..Buckets*Depth-1
//     map key k to position k%Depth of bucket k/Depth, so looking up k
//     takes exactly k%Depth+1 pointer hops. Three clients walk it:
//     ChaseGet (one ProgChaseList round trip), HopGet (one round trip
//     per hop — the classic one-sided baseline), and RPCGet (one round
//     trip, but the server's host CPU walks the chain).
//
// Chain node layout (chainNodeHeader + MaxValue bytes):
//
//	[ next (8, little-endian) | key (8, big-endian) | vlen (8, LE) | value ]
//
// The key is big-endian so the CHASE match predicate can reuse the
// enhanced-CAS comparator, which orders operands as big-endian integers.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"prism/internal/memory"
	"prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/transport"
	"prism/internal/wire"
)

// --- CHASE/SCAN over the standard hash table ---

// chaseSteps bounds one CHASE issue: the whole table if it fits, else the
// program's hard step cap (the client resumes by cursor).
func (m *Meta) chaseSteps() uint8 {
	if m.NSlots < prism.MaxChaseSteps {
		return uint8(m.NSlots)
	}
	return prism.MaxChaseSteps
}

// appendProbeProg encodes the linear-probe CHASE program for the table:
// 24-byte slots from HashBase, the <ptr,bound> at slot offset 8, the
// entry's big-endian key at object offset entryHeader.
func (m *Meta) appendProbeProg(buf []byte, startIdx int64, match []byte) []byte {
	p := prism.Program{
		Kind:     prism.ProgChaseProbe,
		MaxSteps: m.chaseSteps(),
		MatchOff: entryHeader,
		NextOff:  8,
		Stride:   slotSize,
		StartIdx: uint64(startIdx),
		NSlots:   uint64(m.NSlots),
	}
	return prism.AppendProgram(buf, &p, match)
}

// appendScanProg encodes the SCAN program for slots [startIdx, NSlots).
func (m *Meta) appendScanProg(buf []byte, startIdx int64) []byte {
	p := prism.Program{
		NextOff:  8,
		Stride:   slotSize,
		StartIdx: uint64(startIdx),
		NSlots:   uint64(m.NSlots),
	}
	return prism.AppendProgram(buf, &p, nil)
}

// GetChase performs the §6.1 read as one CHASE program: the server walks
// the probe sequence and returns the matching entry, collapsing the
// k-probe round-trip loop of Get into one request. Two-choice tables
// have no probe chain, so they fall back to the chained two-slot read.
func (c *Client) GetChase(p *sim.Proc, key int64) ([]byte, error) {
	if c.meta.Hash == TwoChoice {
		return c.getTwoChoice(p, key)
	}
	prism.PutBE64(c.matchBuf[:], 0, uint64(key))
	idx := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	for {
		c.progBuf = c.meta.appendProbeProg(c.progBuf[:0], idx, c.matchBuf[:])
		ops := c.conn.Ops(1)
		ops[0] = prism.Chase(c.meta.Key, c.meta.HashBase, c.progBuf, wire.CASEq, nil, entrySize(c.meta.MaxValue))
		res := c.conn.Issue(p, ops...)
		switch res[0].Status {
		case wire.StatusOK:
			_, v, err := decodeEntry(res[0].Data)
			return v, err
		case wire.StatusNotFound:
			return nil, ErrNotFound
		case wire.StatusStepLimit:
			idx = int64(res[0].Addr) // resume where the program stopped
		default:
			return nil, fmt.Errorf("kv: CHASE status %v", res[0].Status)
		}
	}
}

// Scan reads one budget-bounded window of the table starting at slot
// start, calling visit for every entry (views are valid only during the
// call). It returns the next slot index — NSlots when the table is
// exhausted — so callers iterate: for i := int64(0); i < nslots; { i, _ = c.Scan(...) }.
func (c *Client) Scan(p *sim.Proc, start int64, budget uint64, visit func(key int64, value []byte) error) (int64, error) {
	c.progBuf = c.meta.appendScanProg(c.progBuf[:0], start)
	ops := c.conn.Ops(1)
	ops[0] = prism.Scan(c.meta.Key, c.meta.HashBase, c.progBuf, budget)
	res := c.conn.Issue(p, ops...)
	if res[0].Status != wire.StatusOK {
		return start, fmt.Errorf("kv: SCAN status %v", res[0].Status)
	}
	err := prism.ScanEntries(res[0].Data, func(e []byte) error {
		k, v, err := decodeEntry(e)
		if err != nil {
			return err
		}
		return visit(k, v)
	})
	return int64(res[0].Addr), err
}

// GetChase is the live twin of Client.GetChase.
func (c *LiveClient) GetChase(key int64) ([]byte, error) {
	if c.meta.Hash == TwoChoice {
		return c.getTwoChoice(key)
	}
	prism.PutBE64(c.matchBuf[:], 0, uint64(key))
	idx := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	for {
		c.progBuf = c.meta.appendProbeProg(c.progBuf[:0], idx, c.matchBuf[:])
		ops := c.conn.Ops(1)
		ops[0] = prism.Chase(c.meta.Key, c.meta.HashBase, c.progBuf, wire.CASEq, nil, entrySize(c.meta.MaxValue))
		res, err := c.conn.Issue(ops)
		if err != nil {
			return nil, err
		}
		switch res[0].Status {
		case wire.StatusOK:
			_, v, err := decodeEntry(res[0].Data)
			return v, err
		case wire.StatusNotFound:
			return nil, ErrNotFound
		case wire.StatusStepLimit:
			idx = int64(res[0].Addr)
		default:
			return nil, fmt.Errorf("kv: CHASE status %v", res[0].Status)
		}
	}
}

// Scan is the live twin of Client.Scan.
func (c *LiveClient) Scan(start int64, budget uint64, visit func(key int64, value []byte) error) (int64, error) {
	c.progBuf = c.meta.appendScanProg(c.progBuf[:0], start)
	ops := c.conn.Ops(1)
	ops[0] = prism.Scan(c.meta.Key, c.meta.HashBase, c.progBuf, budget)
	res, err := c.conn.Issue(ops)
	if err != nil {
		return start, err
	}
	if res[0].Status != wire.StatusOK {
		return start, fmt.Errorf("kv: SCAN status %v", res[0].Status)
	}
	err = prism.ScanEntries(res[0].Data, func(e []byte) error {
		k, v, err := decodeEntry(e)
		if err != nil {
			return err
		}
		return visit(k, v)
	})
	return int64(res[0].Addr), err
}

// --- The linked-chain store ---

// Chain node field offsets.
const (
	chainNodeNext   = 0
	chainNodeKey    = 8
	chainNodeVLen   = 16
	chainNodeHeader = 24
)

// chainRPCStepCost is the host-CPU charge per chain hop of the rpcChainGet
// baseline (pointer dereference + key compare, same order as the NIC-side
// ProgStepCost so the comparison isolates round trips, not CPU speed).
const chainRPCStepCost = 150 * time.Nanosecond

// ChainOptions sizes a ChainStore.
type ChainOptions struct {
	Buckets  int64
	Depth    int64 // nodes per bucket chain
	MaxValue int   // largest value size
}

// ChainMeta is the client control-plane description of a chain store.
type ChainMeta struct {
	Key      memory.RKey
	HeadBase memory.Addr // Buckets 8-byte head pointer cells
	NodeBase memory.Addr // Buckets*Depth nodes, bucket-major
	Buckets  int64
	Depth    int64
	MaxValue int
}

func (m *ChainMeta) nodeSize() uint64 { return chainNodeHeader + uint64(m.MaxValue) }

func (m *ChainMeta) headAddr(bucket int64) memory.Addr {
	return m.HeadBase + memory.Addr(bucket*8)
}

func (m *ChainMeta) nodeAddr(bucket, pos int64) memory.Addr {
	return m.NodeBase + memory.Addr(uint64(bucket*m.Depth+pos)*m.nodeSize())
}

// locate maps a key to its bucket and chain position.
func (m *ChainMeta) locate(key int64) (bucket, pos int64, err error) {
	if key < 0 || key >= m.Buckets*m.Depth {
		return 0, 0, fmt.Errorf("kv: chain key %d outside [0,%d)", key, m.Buckets*m.Depth)
	}
	return key / m.Depth, key % m.Depth, nil
}

// chaseSteps bounds one CHASE issue over a chain.
func (m *ChainMeta) chaseSteps() uint8 {
	if m.Depth < prism.MaxChaseSteps {
		return uint8(m.Depth)
	}
	return prism.MaxChaseSteps
}

// ChainStore provisions the bucketed linked-list layout on a transport
// host (the simulated NIC or a live socket server) and serves its
// control-plane and host-CPU-GET RPCs.
type ChainStore struct {
	host   transport.Host
	meta   ChainMeta
	rpcBuf []byte // RPC reply scratch; dispatch is serialized (see Server.metaBuf)
}

// NewChainStoreOn registers and links the chain region on host. Every
// node's next pointer and key are installed up front (the chain shape is
// static); Load fills values.
func NewChainStoreOn(host transport.Host, opts ChainOptions) (*ChainStore, error) {
	if opts.Buckets <= 0 || opts.Depth <= 0 {
		return nil, errors.New("kv: chain store needs positive buckets and depth")
	}
	space := host.Space()
	meta := ChainMeta{Buckets: opts.Buckets, Depth: opts.Depth, MaxValue: opts.MaxValue}
	size := uint64(opts.Buckets)*8 + uint64(opts.Buckets*opts.Depth)*meta.nodeSize()
	region, err := space.Register(size)
	if err != nil {
		return nil, fmt.Errorf("kv: chain region registration: %w", err)
	}
	meta.Key = region.Key
	meta.HeadBase = region.Base
	meta.NodeBase = region.Base + memory.Addr(opts.Buckets*8)
	var cell [8]byte
	var hdr [chainNodeHeader]byte
	for b := int64(0); b < opts.Buckets; b++ {
		prism.PutLE64(cell[:], 0, uint64(meta.nodeAddr(b, 0)))
		if err := space.Write(meta.Key, meta.headAddr(b), cell[:]); err != nil {
			return nil, err
		}
		for pos := int64(0); pos < opts.Depth; pos++ {
			next := uint64(0)
			if pos+1 < opts.Depth {
				next = uint64(meta.nodeAddr(b, pos+1))
			}
			prism.PutLE64(hdr[:], chainNodeNext, next)
			prism.PutBE64(hdr[:], chainNodeKey, uint64(b*opts.Depth+pos))
			prism.PutLE64(hdr[:], chainNodeVLen, 0)
			if err := space.Write(meta.Key, meta.nodeAddr(b, pos), hdr[:]); err != nil {
				return nil, err
			}
		}
	}
	s := &ChainStore{host: host, meta: meta}
	host.SetRPCHandler(s.handleRPC)
	return s, nil
}

// Meta returns the client control-plane description.
func (s *ChainStore) Meta() ChainMeta { return s.meta }

// Load installs key's value in place (the chain shape is static, so a
// load is just a value write into the key's node).
func (s *ChainStore) Load(key int64, value []byte) error {
	if len(value) > s.meta.MaxValue {
		return ErrTooLarge
	}
	bucket, pos, err := s.meta.locate(key)
	if err != nil {
		return err
	}
	space := s.host.Space()
	space.Guard().Lock()
	defer space.Guard().Unlock()
	node := s.meta.nodeAddr(bucket, pos)
	var vlen [8]byte
	prism.PutLE64(vlen[:], 0, uint64(len(value)))
	if err := space.Write(s.meta.Key, node+chainNodeVLen, vlen[:]); err != nil {
		return err
	}
	return space.Write(s.meta.Key, node+chainNodeHeader, value)
}

// handleRPC serves the chain control plane and the host-CPU GET baseline.
func (s *ChainStore) handleRPC(payload []byte) ([]byte, time.Duration) {
	if len(payload) == 0 {
		return nil, 0
	}
	switch payload[0] {
	case rpcChainMeta:
		s.rpcBuf = appendChainMeta(s.rpcBuf[:0], &s.meta)
		return s.rpcBuf, 0
	case rpcChainGet:
		if len(payload) < 9 {
			return nil, 0
		}
		key := int64(binary.BigEndian.Uint64(payload[1:]))
		return s.chainGet(key)
	default:
		return nil, 0
	}
}

// chainGet walks the key's chain on the host CPU — the RPC baseline a
// CHASE program replaces. Reply: [found(1) | value]. The walk reads
// through the same pointers a client or program would; it does not use
// position arithmetic, so it is charged per hop.
func (s *ChainStore) chainGet(key int64) ([]byte, time.Duration) {
	bucket, _, err := s.meta.locate(key)
	if err != nil {
		return []byte{0}, 0
	}
	space := s.host.Space()
	space.Guard().Lock()
	defer space.Guard().Unlock()
	cur, err := space.ReadU64(s.meta.Key, s.meta.headAddr(bucket))
	if err != nil {
		return []byte{0}, 0
	}
	steps := int64(0)
	for cur != 0 && steps < s.meta.Depth {
		steps++
		node := memory.Addr(cur)
		hdr, err := space.Peek(s.meta.Key, node, chainNodeHeader)
		if err != nil {
			return []byte{0}, time.Duration(steps) * chainRPCStepCost
		}
		if int64(prism.BE64(hdr, chainNodeKey)) == key {
			vlen := prism.LE64(hdr, chainNodeVLen)
			val, err := space.Peek(s.meta.Key, node+chainNodeHeader, vlen)
			if err != nil {
				return []byte{0}, time.Duration(steps) * chainRPCStepCost
			}
			s.rpcBuf = append(append(s.rpcBuf[:0], 1), val...)
			return s.rpcBuf, time.Duration(steps) * chainRPCStepCost
		}
		cur = prism.LE64(hdr, chainNodeNext)
	}
	return []byte{0}, time.Duration(steps) * chainRPCStepCost
}

// appendChainMeta encodes m little-endian; shared by handleRPC and
// FetchChainMeta, like appendMeta/decodeMeta.
func appendChainMeta(b []byte, m *ChainMeta) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Key))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.HeadBase))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.NodeBase))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Buckets))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Depth))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.MaxValue))
	return b
}

const chainMetaLen = 4 + 8 + 8 + 8 + 8 + 8

func decodeChainMeta(b []byte) (ChainMeta, error) {
	var m ChainMeta
	if len(b) != chainMetaLen {
		return m, errors.New("kv: bad chain meta reply")
	}
	m.Key = memory.RKey(binary.LittleEndian.Uint32(b))
	m.HeadBase = memory.Addr(binary.LittleEndian.Uint64(b[4:]))
	m.NodeBase = memory.Addr(binary.LittleEndian.Uint64(b[12:]))
	m.Buckets = int64(binary.LittleEndian.Uint64(b[20:]))
	m.Depth = int64(binary.LittleEndian.Uint64(b[28:]))
	m.MaxValue = int(binary.LittleEndian.Uint64(b[36:]))
	return m, nil
}

// --- Chain clients ---

// decodeChainNode extracts the value from a whole-node read.
func decodeChainNode(node []byte, key int64) ([]byte, error) {
	if len(node) < chainNodeHeader {
		return nil, fmt.Errorf("kv: chain node truncated (%d bytes)", len(node))
	}
	if got := int64(prism.BE64(node, chainNodeKey)); got != key {
		return nil, fmt.Errorf("kv: chain node holds key %d, want %d", got, key)
	}
	vlen := prism.LE64(node, chainNodeVLen)
	if uint64(len(node)) < chainNodeHeader+vlen {
		return nil, fmt.Errorf("kv: chain value truncated")
	}
	return node[chainNodeHeader : chainNodeHeader+vlen], nil
}

// ChainClient walks a ChainStore over a simulated connection.
type ChainClient struct {
	conn *rdma.Conn
	meta ChainMeta

	// Hops is the client-observed round-trip count of HopGet walks —
	// what CHASE's rtts_saved is measured against.
	Hops int64

	progBuf  []byte
	matchBuf [8]byte
	rpcBuf   [9]byte
}

// NewChainClient wraps a simulated connection to a ChainStore.
func NewChainClient(conn *rdma.Conn, meta ChainMeta) *ChainClient {
	return &ChainClient{conn: conn, meta: meta}
}

// appendChaseProg encodes the list-chase program for one bucket walk.
func (m *ChainMeta) appendChaseProg(buf []byte, match []byte) []byte {
	p := prism.Program{
		Kind:     prism.ProgChaseList,
		MaxSteps: m.chaseSteps(),
		MatchOff: chainNodeKey,
		NextOff:  chainNodeNext,
	}
	return prism.AppendProgram(buf, &p, match)
}

// ChaseGet looks up key with one CHASE program: the NIC walks the chain
// and returns the whole matched node in a single round trip.
func (c *ChainClient) ChaseGet(p *sim.Proc, key int64) ([]byte, error) {
	bucket, _, err := c.meta.locate(key)
	if err != nil {
		return nil, err
	}
	prism.PutBE64(c.matchBuf[:], 0, uint64(key))
	target := c.meta.headAddr(bucket)
	for {
		c.progBuf = c.meta.appendChaseProg(c.progBuf[:0], c.matchBuf[:])
		ops := c.conn.Ops(1)
		ops[0] = prism.Chase(c.meta.Key, target, c.progBuf, wire.CASEq, nil, c.meta.nodeSize())
		res := c.conn.Issue(p, ops...)
		switch res[0].Status {
		case wire.StatusOK:
			return decodeChainNode(res[0].Data, key)
		case wire.StatusNotFound:
			return nil, ErrNotFound
		case wire.StatusStepLimit:
			target = res[0].Addr // the pointer cell to resume from
		default:
			return nil, fmt.Errorf("kv: CHASE status %v", res[0].Status)
		}
	}
}

// HopGet looks up key the classic one-sided way: an indirect READ
// through the head cell, then one direct READ per hop using the next
// pointer learned from the previous node — one round trip per hop.
func (c *ChainClient) HopGet(p *sim.Proc, key int64) ([]byte, error) {
	bucket, _, err := c.meta.locate(key)
	if err != nil {
		return nil, err
	}
	var addr memory.Addr
	for hop := int64(0); hop < c.meta.Depth; hop++ {
		ops := c.conn.Ops(1)
		if hop == 0 {
			ops[0] = prism.ReadIndirect(c.meta.Key, c.meta.headAddr(bucket), c.meta.nodeSize())
		} else {
			ops[0] = prism.Read(c.meta.Key, addr, c.meta.nodeSize())
		}
		res := c.conn.Issue(p, ops...)
		if res[0].Status == wire.StatusNAKAccess && hop == 0 {
			return nil, ErrNotFound // null head pointer
		}
		if res[0].Status != wire.StatusOK {
			return nil, fmt.Errorf("kv: hop READ status %v", res[0].Status)
		}
		c.Hops++
		node := res[0].Data
		if int64(prism.BE64(node, chainNodeKey)) == key {
			return decodeChainNode(node, key)
		}
		next := prism.LE64(node, chainNodeNext)
		if next == 0 {
			return nil, ErrNotFound
		}
		addr = memory.Addr(next)
	}
	return nil, ErrNotFound
}

// RPCGet looks up key with one two-sided round trip; the server's host
// CPU walks the chain (the rpcChainGet handler).
func (c *ChainClient) RPCGet(p *sim.Proc, key int64) ([]byte, error) {
	c.rpcBuf[0] = rpcChainGet
	binary.BigEndian.PutUint64(c.rpcBuf[1:], uint64(key))
	ops := c.conn.Ops(1)
	ops[0] = prism.Send(c.rpcBuf[:])
	res := c.conn.Issue(p, ops...)
	if res[0].Status != wire.StatusOK {
		return nil, fmt.Errorf("kv: chain RPC status %v", res[0].Status)
	}
	if len(res[0].Data) < 1 || res[0].Data[0] == 0 {
		return nil, ErrNotFound
	}
	return res[0].Data[1:], nil
}

// LiveChainClient is the socket-borne twin of ChainClient.
type LiveChainClient struct {
	conn *transport.Conn
	meta ChainMeta

	Hops int64

	progBuf  []byte
	matchBuf [8]byte
	rpcBuf   [9]byte
}

// NewLiveChainClient wraps a live connection to a chain-mode server.
func NewLiveChainClient(conn *transport.Conn, meta ChainMeta) *LiveChainClient {
	return &LiveChainClient{conn: conn, meta: meta}
}

// FetchChainMeta retrieves the chain description over conn.
func FetchChainMeta(conn *transport.Conn) (ChainMeta, error) {
	ops := conn.Ops(1)
	ops[0] = prism.Send([]byte{rpcChainMeta})
	res, err := conn.Issue(ops)
	if err != nil {
		return ChainMeta{}, err
	}
	if res[0].Status != wire.StatusOK {
		return ChainMeta{}, fmt.Errorf("kv: chain meta RPC status %v", res[0].Status)
	}
	return decodeChainMeta(res[0].Data)
}

// DialChain connects to a chain-mode prismd server at addr.
func DialChain(addr string) (*transport.Client, *LiveChainClient, error) {
	tc, err := transport.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	conn, err := tc.Connect()
	if err != nil {
		tc.Close()
		return nil, nil, err
	}
	meta, err := FetchChainMeta(conn)
	if err != nil {
		tc.Close()
		return nil, nil, err
	}
	return tc, NewLiveChainClient(conn, meta), nil
}

// Meta returns the chain description fetched at dial time.
func (c *LiveChainClient) Meta() ChainMeta { return c.meta }

// ChaseGet is the live twin of ChainClient.ChaseGet.
func (c *LiveChainClient) ChaseGet(key int64) ([]byte, error) {
	bucket, _, err := c.meta.locate(key)
	if err != nil {
		return nil, err
	}
	prism.PutBE64(c.matchBuf[:], 0, uint64(key))
	target := c.meta.headAddr(bucket)
	for {
		c.progBuf = c.meta.appendChaseProg(c.progBuf[:0], c.matchBuf[:])
		ops := c.conn.Ops(1)
		ops[0] = prism.Chase(c.meta.Key, target, c.progBuf, wire.CASEq, nil, c.meta.nodeSize())
		res, err := c.conn.Issue(ops)
		if err != nil {
			return nil, err
		}
		switch res[0].Status {
		case wire.StatusOK:
			return decodeChainNode(res[0].Data, key)
		case wire.StatusNotFound:
			return nil, ErrNotFound
		case wire.StatusStepLimit:
			target = res[0].Addr
		default:
			return nil, fmt.Errorf("kv: CHASE status %v", res[0].Status)
		}
	}
}

// HopGet is the live twin of ChainClient.HopGet.
func (c *LiveChainClient) HopGet(key int64) ([]byte, error) {
	bucket, _, err := c.meta.locate(key)
	if err != nil {
		return nil, err
	}
	var addr memory.Addr
	for hop := int64(0); hop < c.meta.Depth; hop++ {
		ops := c.conn.Ops(1)
		if hop == 0 {
			ops[0] = prism.ReadIndirect(c.meta.Key, c.meta.headAddr(bucket), c.meta.nodeSize())
		} else {
			ops[0] = prism.Read(c.meta.Key, addr, c.meta.nodeSize())
		}
		res, err := c.conn.Issue(ops)
		if err != nil {
			return nil, err
		}
		if res[0].Status == wire.StatusNAKAccess && hop == 0 {
			return nil, ErrNotFound
		}
		if res[0].Status != wire.StatusOK {
			return nil, fmt.Errorf("kv: hop READ status %v", res[0].Status)
		}
		c.Hops++
		node := res[0].Data
		if int64(prism.BE64(node, chainNodeKey)) == key {
			return decodeChainNode(node, key)
		}
		next := prism.LE64(node, chainNodeNext)
		if next == 0 {
			return nil, ErrNotFound
		}
		addr = memory.Addr(next)
	}
	return nil, ErrNotFound
}

// RPCGet is the live twin of ChainClient.RPCGet.
func (c *LiveChainClient) RPCGet(key int64) ([]byte, error) {
	c.rpcBuf[0] = rpcChainGet
	binary.BigEndian.PutUint64(c.rpcBuf[1:], uint64(key))
	ops := c.conn.Ops(1)
	ops[0] = prism.Send(c.rpcBuf[:])
	res, err := c.conn.Issue(ops)
	if err != nil {
		return nil, err
	}
	if res[0].Status != wire.StatusOK {
		return nil, fmt.Errorf("kv: chain RPC status %v", res[0].Status)
	}
	if len(res[0].Data) < 1 || res[0].Data[0] == 0 {
		return nil, ErrNotFound
	}
	return res[0].Data[1:], nil
}
