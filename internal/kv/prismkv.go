package kv

import (
	"encoding/binary"
	"fmt"
	"time"

	"prism/internal/alloc"
	"prism/internal/memory"
	"prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/transport"
	"prism/internal/wire"
)

// Reclamation RPC opcodes (application-level protocol riding OpSend).
const (
	rpcFree byte = iota + 1
	rpcPilafPut
	// rpcMeta returns the server's encoded Meta, so live clients fetch
	// the control-plane description over the wire instead of sharing
	// process memory with the server (see live.go).
	rpcMeta
	// rpcChainMeta and rpcChainGet serve the linked-chain store
	// (chain.go): the control-plane description and the host-CPU GET
	// baseline that verb-program CHASE is measured against.
	rpcChainMeta
	rpcChainGet
)

// Options configures a PRISM-KV server.
type Options struct {
	NSlots   int64
	MaxValue int  // largest value size accepted
	Hash     Hash // slot mapping
	// BuffersPerClass is how many buffers each size class is provisioned
	// with. Must cover the live objects in that class plus in-flight
	// updates awaiting reclamation.
	BuffersPerClass int
	// MinClass is the smallest buffer class (bytes).
	MinClass uint64
}

// DefaultOptions sizes a server for n objects of up to valueSize bytes.
func DefaultOptions(n int64, valueSize int) Options {
	return Options{
		NSlots:          n,
		MaxValue:        valueSize,
		Hash:            Collisionless,
		BuffersPerClass: int(n) + 8192,
		MinClass:        64,
	}
}

// Server is a PRISM-KV server: a hash-table region, size-classed free
// lists, and a reclamation RPC handler. All remote GET/PUT work happens in
// the NIC data path; the host CPU only registers memory and recycles
// buffers.
type Server struct {
	// host is the transport the store is provisioned on: the simulated
	// NIC (rdma.Server) or a live socket server (transport.Server).
	host transport.Host
	// rs is the simulated NIC when the store runs in the simulator, nil
	// on a live transport. Capture/NIC are simulator-only.
	rs   *rdma.Server
	meta Meta
	opts Options
	// classRegions records where each size class's buffers live, for the
	// garbage-collection-style reclamation scan (§3.2's alternative to
	// client-driven reclamation).
	classRegions []classRegion
	// metaBuf is the rpcMeta reply scratch; RPC dispatch is serialized by
	// the transport (one server domain in the simulator, rpcMu live).
	metaBuf []byte
}

type classRegion struct {
	flID    uint32
	base    memory.Addr
	bufSize uint64
	count   int
}

// NewServer provisions PRISM-KV on the given simulated NIC.
func NewServer(rs *rdma.Server, opts Options) (*Server, error) {
	s, err := NewServerOn(rs, opts)
	if err != nil {
		return nil, err
	}
	s.rs = rs
	return s, nil
}

// NewServerOn provisions PRISM-KV on any transport host — the simulated
// NIC or a live socket server.
func NewServerOn(host transport.Host, opts Options) (*Server, error) {
	space := host.Space()
	hashRegion, err := space.Register(uint64(opts.NSlots) * slotSize)
	if err != nil {
		return nil, fmt.Errorf("kv: hash table registration: %w", err)
	}
	meta := Meta{
		Key:      hashRegion.Key,
		HashBase: hashRegion.Base,
		NSlots:   opts.NSlots,
		Hash:     opts.Hash,
		MaxValue: opts.MaxValue,
	}
	// Size classes: powers of two from MinClass to the largest entry.
	maxEntry := entrySize(opts.MaxValue)
	if maxEntry < opts.MinClass {
		maxEntry = opts.MinClass
	}
	classes := alloc.SizeClasses(opts.MinClass, maxEntry)
	var regions []classRegion
	for i, bufSize := range classes {
		id := uint32(i + 1)
		region, err := space.RegisterShared(hashRegion.Key, bufSize*uint64(opts.BuffersPerClass))
		if err != nil {
			return nil, fmt.Errorf("kv: buffer region: %w", err)
		}
		fl := alloc.NewFreeList(id, bufSize, hashRegion.Key)
		for b := 0; b < opts.BuffersPerClass; b++ {
			fl.Post(region.Base + memory.Addr(uint64(b)*bufSize))
		}
		host.AddFreeList(fl)
		meta.FreeLists = append(meta.FreeLists, FreeListInfo{ID: id, BufSize: bufSize})
		regions = append(regions, classRegion{flID: id, base: region.Base, bufSize: bufSize, count: opts.BuffersPerClass})
	}
	host.SetConnTempKey(hashRegion.Key)
	s := &Server{host: host, meta: meta, opts: opts, classRegions: regions}
	host.SetRPCHandler(s.handleRPC)
	return s, nil
}

// Meta returns the client control-plane description.
func (s *Server) Meta() Meta { return s.meta }

// NIC returns the underlying transport server.
func (s *Server) NIC() *rdma.Server { return s.rs }

// handleRPC serves the reclamation daemon (§3.2): clients report retired
// buffers; the server re-registers them with the NIC free list after
// quiesce.
func (s *Server) handleRPC(payload []byte) ([]byte, time.Duration) {
	if len(payload) == 0 {
		return nil, 0
	}
	switch payload[0] {
	case rpcFree:
		// [op(1)] then repeated [freelist(4) | addr(8)]
		rest := payload[1:]
		n := 0
		for len(rest) >= 12 {
			fl := binary.LittleEndian.Uint32(rest)
			addr := memory.Addr(binary.LittleEndian.Uint64(rest[4:]))
			s.host.RecycleBuffer(fl, addr)
			rest = rest[12:]
			n++
		}
		// Recycling is cheap bookkeeping; charge ~100ns per buffer.
		return []byte{0}, time.Duration(n) * 100 * time.Nanosecond
	case rpcMeta:
		s.metaBuf = appendMeta(s.metaBuf[:0], &s.meta)
		return s.metaBuf, 0
	default:
		return nil, 0
	}
}

// Load installs key=value server-side (bulk loading before an experiment,
// as the paper does). It consumes a free-list buffer like a remote PUT
// would.
func (s *Server) Load(key int64, value []byte) error {
	entry := encodeEntry(key, value)
	flID, err := s.meta.classFor(uint64(len(entry)))
	if err != nil {
		return err
	}
	// Hold the space guard across the whole load so bulk loading is safe
	// while a live transport is already serving connections (uncontended —
	// and free — in the single-threaded simulator).
	space := s.host.Space()
	space.Guard().Lock()
	defer space.Guard().Unlock()
	buf, err := s.host.FreeList(flID).Pop()
	if err != nil {
		return fmt.Errorf("kv: load out of buffers: %w", err)
	}
	if err := space.Write(s.meta.Key, buf, entry); err != nil {
		return err
	}
	install := func(addr memory.Addr) error {
		out := make([]byte, slotSize)
		prism.PutBE64(out, 0, 1) // initial tag
		prism.PutLE64(out, 8, uint64(buf))
		prism.PutLE64(out, 16, uint64(len(entry)))
		return space.Write(s.meta.Key, addr, out)
	}
	// slotState reports whether the slot is free or already holds key. The
	// peeked bytes are parsed on the spot, never retained.
	slotState := func(addr memory.Addr) (free, same bool, err error) {
		slot, err := space.Peek(s.meta.Key, addr, slotSize)
		if err != nil {
			return false, false, err
		}
		ptr := prism.LE64(slot, 8)
		if ptr == 0 {
			return true, false, nil
		}
		existing, err := space.Peek(s.meta.Key, memory.Addr(ptr), entryHeader+8)
		if err != nil {
			return false, false, err
		}
		k, _, err := decodeEntry(existing)
		return false, err == nil && k == key, nil
	}
	if s.meta.Hash == TwoChoice {
		for _, idx := range []int64{slotIndex(s.meta.Hash, key, s.meta.NSlots), slotIndex2(key, s.meta.NSlots)} {
			addr := s.meta.slotAddr(idx)
			free, same, err := slotState(addr)
			if err != nil {
				return err
			}
			if free || same {
				return install(addr)
			}
		}
		return fmt.Errorf("kv: both candidate slots taken loading key %d", key)
	}
	idx := slotIndex(s.meta.Hash, key, s.meta.NSlots)
	for probes := int64(0); probes < s.meta.NSlots; probes++ {
		addr := s.meta.slotAddr(idx)
		free, same, err := slotState(addr)
		if err != nil {
			return err
		}
		if free || same {
			return install(addr)
		}
		idx = (idx + 1) % s.meta.NSlots
	}
	return fmt.Errorf("kv: hash table full loading key %d", key)
}

// Cached CAS masks for the 24-byte slot layout: compare on the tag
// field, swap the whole slot. Read-only after init, shared by every
// client and server domain.
var (
	slotTagMask  = prism.FieldMask(slotSize, 0, 8)
	slotFullMask = prism.FullMask(slotSize)
)

// Client executes PRISM-KV operations over one connection. Each simulated
// closed-loop client owns one Client value.
type Client struct {
	conn     *rdma.Conn
	meta     Meta
	clientID uint16
	tagClock uint64

	// SlotCache, when enabled, remembers the probed slot (and caches the
	// pessimal first PUT round trip away) for read-modify-write loops —
	// the ablation the paper's §6.2 parenthetical describes.
	SlotCache   bool
	cachedSlots map[int64]int64

	// CtrlConn, when set, carries reclamation RPCs on a dedicated control
	// connection so they never queue behind data-path chains on the RC
	// queue pair (requests on one QP execute in order).
	CtrlConn *rdma.Conn

	// Reclamation batching.
	frees      []byte // encoded [freelist|addr] tuples
	freesCount int
	// FreeBatch is the number of retired buffers accumulated before an
	// asynchronous reclamation RPC is sent.
	FreeBatch int

	// Stats
	Probes  int64 // hash probes beyond the first slot
	CASFail int64 // PUT chains that lost a tag race

	// Per-client scratch for PUT/DELETE images. Safe to reuse across
	// requests: the client is closed-loop (the previous request's response
	// arrived before the scratch is rewritten) and any still-in-flight
	// duplicate of an old request is dropped by its stale epoch.
	entryBuf []byte
	preBuf   [slotSize]byte
	ptrBuf   [8]byte

	// Verb-program scratch (chain.go): the encoded CHASE/SCAN program and
	// its 8-byte match operand. Reuse is safe for the same closed-loop
	// reason as entryBuf.
	progBuf  []byte
	matchBuf [8]byte
}

// NewClient wraps a connection to a PRISM-KV server.
func NewClient(conn *rdma.Conn, meta Meta, clientID uint16) *Client {
	return &Client{
		conn:        conn,
		meta:        meta,
		clientID:    clientID,
		FreeBatch:   16,
		cachedSlots: make(map[int64]int64),
	}
}

// nextTag returns a fresh tag greater than any tag this client has seen or
// produced: (logical clock << 16) | clientID, matching the paper's
// loosely-synchronized tag scheme.
func (c *Client) nextTag(atLeast uint64) uint64 {
	clock := c.tagClock + 1
	if floor := atLeast >> 16; floor >= clock {
		clock = floor + 1
	}
	c.tagClock = clock
	return clock<<16 | uint64(c.clientID)
}

// Get performs the §6.1 read: one indirect bounded READ per probe (or,
// for two-choice hashing, one chained round trip reading both candidate
// slots).
func (c *Client) Get(p *sim.Proc, key int64) ([]byte, error) {
	if c.meta.Hash == TwoChoice {
		return c.getTwoChoice(p, key)
	}
	idx := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	for probes := int64(0); probes < c.meta.NSlots; probes++ {
		ops := c.conn.Ops(1)
		ops[0] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(idx)+8, entrySize(c.meta.MaxValue))
		res := c.conn.Issue(p, ops...)
		if res[0].Status == wire.StatusNAKAccess {
			// Null pointer: empty slot terminates the probe sequence.
			return nil, ErrNotFound
		}
		if res[0].Status != wire.StatusOK {
			return nil, fmt.Errorf("kv: GET status %v", res[0].Status)
		}
		k, v, err := decodeEntry(res[0].Data)
		if err != nil {
			return nil, err
		}
		if k == key {
			return v, nil
		}
		c.Probes++
		idx = (idx + 1) % c.meta.NSlots
	}
	return nil, ErrNotFound
}

// Put performs the §6.1 out-of-place update: a probe round trip to find
// the slot and learn the current tag, then one chained round trip that
// writes the new tag/bound to the connection's temp buffer, ALLOCATEs the
// new object (redirecting its address into the temp buffer), and installs
// the <tag,ptr,bound> triple with an enhanced CAS. No server CPU runs.
func (c *Client) Put(p *sim.Proc, key int64, value []byte) error {
	if len(value) > c.meta.MaxValue {
		return ErrTooLarge
	}
	entry := c.encodeEntryScratch(key, value)
	flID, err := c.meta.classFor(uint64(len(entry)))
	if err != nil {
		return err
	}

	rnrRetries := 0
	for {
		idx, curTag, err := c.findSlot(p, key)
		if err != nil {
			return err
		}
		slot := c.meta.slotAddr(idx)
		tag := c.nextTag(curTag)

		// tmp layout mirrors the slot: [tag | ptr(redirected) | bound].
		tmp := c.conn.TempAddr
		pre := c.preBuf[:]
		prism.PutBE64(pre, 0, tag)
		prism.PutLE64(pre, 8, 0)
		prism.PutLE64(pre, 16, uint64(len(entry)))
		ops := c.conn.Ops(3)
		ops[0] = prism.Write(c.conn.TempKey, tmp, pre)
		ops[1] = prism.Conditional(prism.RedirectTo(prism.Allocate(flID, entry), c.conn.TempKey, tmp+8))
		ops[2] = prism.Conditional(prism.CASIndirectDataBuf(&c.ptrBuf, c.meta.Key, slot, wire.CASGt, tmp,
			slotTagMask, slotFullMask))
		res := c.conn.Issue(p, ops...)
		if res[1].Status == wire.StatusRNR {
			// Free list transiently empty: push our pending reclamations
			// to the server immediately and retry after a short backoff
			// while the daemon reposts buffers.
			if rnrRetries++; rnrRetries > 100 {
				return fmt.Errorf("kv: free list %d exhausted", flID)
			}
			c.FlushFrees(p)
			p.Sleep(time.Duration(rnrRetries) * 10 * time.Microsecond)
			continue
		}
		if res[0].Status != wire.StatusOK || res[1].Status != wire.StatusOK {
			return fmt.Errorf("kv: PUT chain statuses %v %v %v", res[0].Status, res[1].Status, res[2].Status)
		}
		switch res[2].Status {
		case wire.StatusOK:
			// Installed: retire the previous buffer (if any).
			oldPtr := prism.LE64(res[2].Data, 8)
			if oldPtr != 0 {
				oldLen := prism.LE64(res[2].Data, 16)
				oldClass, err := c.meta.classFor(oldLen)
				if err == nil {
					c.retire(p, oldClass, memory.Addr(oldPtr))
				}
			}
			return nil
		case wire.StatusCASFailed:
			// A concurrent PUT installed a newer tag first: last-writer-
			// wins says our value is superseded. Retire our orphaned
			// buffer and report success (the paper's PRISM-KV treats the
			// overwrite race the same way).
			c.CASFail++
			c.retire(p, flID, res[1].Addr)
			return nil
		default:
			return fmt.Errorf("kv: PUT CAS status %v", res[2].Status)
		}
	}
}

// Delete removes a key by swinging its slot to the null pointer with a
// fresh tag (tombstone-free: an empty slot simply has ptr == 0).
func (c *Client) Delete(p *sim.Proc, key int64) error {
	idx, curTag, err := c.findSlot(p, key)
	if err != nil {
		return err
	}
	slot := c.meta.slotAddr(idx)
	tag := c.nextTag(curTag)
	data := c.preBuf[:]
	prism.PutBE64(data, 0, tag)
	prism.PutLE64(data, 8, 0)
	prism.PutLE64(data, 16, 0)
	ops := c.conn.Ops(1)
	ops[0] = prism.CAS(c.meta.Key, slot, wire.CASGt, data, slotTagMask, slotFullMask)
	res := c.conn.Issue(p, ops...)
	switch res[0].Status {
	case wire.StatusOK:
		oldPtr := prism.LE64(res[0].Data, 8)
		if oldPtr != 0 {
			oldLen := prism.LE64(res[0].Data, 16)
			if oldClass, err := c.meta.classFor(oldLen); err == nil {
				c.retire(p, oldClass, memory.Addr(oldPtr))
			}
		}
		return nil
	case wire.StatusCASFailed:
		return nil // a newer write superseded the delete
	default:
		return fmt.Errorf("kv: DELETE status %v", res[0].Status)
	}
}

// getTwoChoice reads both candidate slots of a two-choice table in one
// chained round trip.
func (c *Client) getTwoChoice(p *sim.Proc, key int64) ([]byte, error) {
	s1 := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	s2 := slotIndex2(key, c.meta.NSlots)
	ops := c.conn.Ops(2)
	ops[0] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s1)+8, entrySize(c.meta.MaxValue))
	ops[1] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s2)+8, entrySize(c.meta.MaxValue))
	res := c.conn.Issue(p, ops...)
	for _, r := range res {
		if r.Status != wire.StatusOK {
			continue // empty slot NAKs on the null pointer
		}
		if k, v, err := decodeEntry(r.Data); err == nil && k == key {
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// findSlotTwoChoice resolves the slot for key under two-choice hashing in
// one chained round trip: the slot already holding key, else a free
// candidate.
func (c *Client) findSlotTwoChoice(p *sim.Proc, key int64) (int64, uint64, error) {
	s1 := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	s2 := slotIndex2(key, c.meta.NSlots)
	ops := c.conn.Ops(4)
	ops[0] = prism.Read(c.meta.Key, c.meta.slotAddr(s1), slotSize)
	ops[1] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s1)+8, entrySize(c.meta.MaxValue))
	ops[2] = prism.Read(c.meta.Key, c.meta.slotAddr(s2), slotSize)
	ops[3] = prism.ReadBounded(c.meta.Key, c.meta.slotAddr(s2)+8, entrySize(c.meta.MaxValue))
	res := c.conn.Issue(p, ops...)
	slots := [2]int64{s1, s2}
	var emptyIdx int64 = -1
	var emptyTag uint64
	for i := 0; i < 2; i++ {
		slotRes, objRes := res[2*i], res[2*i+1]
		if slotRes.Status != wire.StatusOK {
			return 0, 0, fmt.Errorf("kv: slot read status %v", slotRes.Status)
		}
		tag := prism.BE64(slotRes.Data, 0)
		ptr := prism.LE64(slotRes.Data, 8)
		if ptr == 0 {
			if emptyIdx < 0 {
				emptyIdx, emptyTag = slots[i], tag
			}
			continue
		}
		if objRes.Status == wire.StatusOK {
			if k, _, err := decodeEntry(objRes.Data); err == nil && k == key {
				return slots[i], tag, nil
			}
		}
	}
	if emptyIdx >= 0 {
		return emptyIdx, emptyTag, nil
	}
	return 0, 0, fmt.Errorf("kv: both candidate slots for key %d are taken (resize the table)", key)
}

// findSlot probes for the slot holding key (or the first empty slot) and
// returns its index and current tag. One round trip per probe: a chain of
// a direct slot READ and an indirect bounded READ of its object.
func (c *Client) findSlot(p *sim.Proc, key int64) (int64, uint64, error) {
	if c.SlotCache {
		if idx, ok := c.cachedSlots[key]; ok {
			return idx, c.tagClock << 16, nil
		}
	}
	if c.meta.Hash == TwoChoice {
		idx, tag, err := c.findSlotTwoChoice(p, key)
		if err == nil && c.SlotCache {
			c.cachedSlots[key] = idx
		}
		return idx, tag, err
	}
	idx := slotIndex(c.meta.Hash, key, c.meta.NSlots)
	for probes := int64(0); probes < c.meta.NSlots; probes++ {
		slot := c.meta.slotAddr(idx)
		ops := c.conn.Ops(2)
		ops[0] = prism.Read(c.meta.Key, slot, slotSize)
		ops[1] = prism.ReadBounded(c.meta.Key, slot+8, entrySize(c.meta.MaxValue))
		res := c.conn.Issue(p, ops...)
		if res[0].Status != wire.StatusOK {
			return 0, 0, fmt.Errorf("kv: slot read status %v", res[0].Status)
		}
		tag := prism.BE64(res[0].Data, 0)
		ptr := prism.LE64(res[0].Data, 8)
		if ptr == 0 {
			// Empty slot: claim it for insertion.
			if c.SlotCache {
				c.cachedSlots[key] = idx
			}
			return idx, tag, nil
		}
		if res[1].Status == wire.StatusOK {
			if k, _, err := decodeEntry(res[1].Data); err == nil && k == key {
				if c.SlotCache {
					c.cachedSlots[key] = idx
				}
				return idx, tag, nil
			}
		}
		c.Probes++
		idx = (idx + 1) % c.meta.NSlots
	}
	return 0, 0, fmt.Errorf("kv: hash table full for key %d", key)
}

// retire queues a buffer for reclamation and flushes a batch
// asynchronously when full (§3.2's client-driven scheme).
func (c *Client) retire(p *sim.Proc, freeList uint32, addr memory.Addr) {
	var rec [12]byte
	binary.LittleEndian.PutUint32(rec[:4], freeList)
	binary.LittleEndian.PutUint64(rec[4:], uint64(addr))
	c.frees = append(c.frees, rec[:]...)
	c.freesCount++
	if c.freesCount >= c.FreeBatch {
		c.FlushFrees(p)
	}
}

// FlushFrees sends the accumulated reclamation batch without waiting for
// the acknowledgment (asynchronous, per §6.1). The payload is copied out
// of the batch buffer because the RPC is fire-and-forget: the buffer
// refills while the request may still be in flight.
func (c *Client) FlushFrees(p *sim.Proc) {
	if c.freesCount == 0 {
		return
	}
	payload := append([]byte{rpcFree}, c.frees...)
	c.frees = c.frees[:0]
	c.freesCount = 0
	conn := c.conn
	if c.CtrlConn != nil {
		conn = c.CtrlConn
	}
	ops := conn.Ops(1)
	ops[0] = prism.Send(payload)
	conn.IssueAsync(ops)
}

// encodeEntryScratch builds the object buffer image for key=value in the
// client's reusable scratch (see entryBuf for the reuse-safety argument).
func (c *Client) encodeEntryScratch(key int64, value []byte) []byte {
	need := entryHeader + 8 + len(value)
	if cap(c.entryBuf) < need {
		c.entryBuf = make([]byte, need)
	}
	b := c.entryBuf[:need]
	binary.LittleEndian.PutUint64(b, 8) // key length (paper: 8-byte keys)
	binary.BigEndian.PutUint64(b[entryHeader:], uint64(key))
	copy(b[entryHeader+8:], value)
	return b
}
