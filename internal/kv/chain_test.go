package kv

import (
	"bytes"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/model"
	"prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/transport"
	"prism/internal/wire"
)

func chainValue(k int64) []byte { return bytes.Repeat([]byte{byte(k + 1)}, 8) }

type chainEnv struct {
	e   *sim.Engine
	nic *rdma.Server
	srv *ChainStore
	cli *rdma.Client
}

func newChainEnv(t *testing.T, opts ChainOptions, deploy model.Deployment) *chainEnv {
	t.Helper()
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(1)
	net := fabric.New(e, p)
	nic := rdma.NewServer(net, "chain-srv", deploy)
	srv, err := NewChainStoreOn(nic, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < opts.Buckets*opts.Depth; k++ {
		if err := srv.Load(k, chainValue(k)); err != nil {
			t.Fatal(err)
		}
	}
	return &chainEnv{e: e, nic: nic, srv: srv, cli: rdma.NewClient(net, "cli")}
}

func (v *chainEnv) client() *ChainClient {
	return NewChainClient(v.cli.Connect(v.nic), v.srv.Meta())
}

func (v *chainEnv) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	v.e.Go("t", fn)
	v.e.Run()
}

func TestChainClientsAgree(t *testing.T) {
	opts := ChainOptions{Buckets: 4, Depth: 8, MaxValue: 32}
	v := newChainEnv(t, opts, model.SoftwarePRISM)
	c := v.client()
	v.run(t, func(p *sim.Proc) {
		for k := int64(0); k < opts.Buckets*opts.Depth; k++ {
			want := chainValue(k)
			for name, get := range map[string]func() ([]byte, error){
				"chase": func() ([]byte, error) { return c.ChaseGet(p, k) },
				"hop":   func() ([]byte, error) { return c.HopGet(p, k) },
				"rpc":   func() ([]byte, error) { return c.RPCGet(p, k) },
			} {
				got, err := get()
				if err != nil {
					t.Fatalf("%s(%d): %v", name, k, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s(%d) = %v, want %v", name, k, got, want)
				}
			}
		}
		if _, err := c.ChaseGet(p, opts.Buckets*opts.Depth); err == nil {
			t.Fatal("chase of out-of-range key succeeded")
		}
	})
}

func TestChainChaseStepAccounting(t *testing.T) {
	opts := ChainOptions{Buckets: 2, Depth: 8, MaxValue: 16}
	v := newChainEnv(t, opts, model.SoftwarePRISM)
	c := v.client()
	tail := opts.Depth - 1 // deepest key of bucket 0
	v.run(t, func(p *sim.Proc) {
		if _, err := c.ChaseGet(p, tail); err != nil {
			t.Fatal(err)
		}
	})
	if v.nic.ProgOps != 1 {
		t.Fatalf("ProgOps = %d, want 1 (one round trip)", v.nic.ProgOps)
	}
	if v.nic.ProgSteps != opts.Depth {
		t.Fatalf("ProgSteps = %d, want %d", v.nic.ProgSteps, opts.Depth)
	}

	// The per-hop baseline pays one round trip per node.
	v2 := newChainEnv(t, opts, model.SoftwarePRISM)
	c2 := v2.client()
	v2.run(t, func(p *sim.Proc) {
		if _, err := c2.HopGet(p, tail); err != nil {
			t.Fatal(err)
		}
	})
	if c2.Hops != opts.Depth {
		t.Fatalf("Hops = %d, want %d", c2.Hops, opts.Depth)
	}
	if v2.nic.ProgOps != 0 {
		t.Fatalf("hop walk counted %d programs", v2.nic.ProgOps)
	}
}

func TestChainChaseResumesPastStepCap(t *testing.T) {
	// A chain deeper than MaxChaseSteps forces the cursor path: the first
	// CHASE exhausts its bound and the client resumes from the returned
	// pointer cell.
	depth := int64(prism.MaxChaseSteps + 16)
	opts := ChainOptions{Buckets: 1, Depth: depth, MaxValue: 8}
	v := newChainEnv(t, opts, model.SoftwarePRISM)
	c := v.client()
	v.run(t, func(p *sim.Proc) {
		got, err := c.ChaseGet(p, depth-1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, chainValue(depth-1)) {
			t.Fatal("wrong value after resume")
		}
	})
	if v.nic.ProgOps != 2 {
		t.Fatalf("ProgOps = %d, want 2 (step-capped + resume)", v.nic.ProgOps)
	}
	if v.nic.ProgSteps != depth {
		t.Fatalf("ProgSteps = %d, want %d (no revisits)", v.nic.ProgSteps, depth)
	}
}

func TestChainChaseLatencyBeatsHopsAtDepth4(t *testing.T) {
	// The acceptance shape at one point: at depth >= 4 the one-round-trip
	// program beats the per-hop loop even though it pays per-step NIC cost.
	opts := ChainOptions{Buckets: 1, Depth: 4, MaxValue: 16}
	key := opts.Depth - 1

	v1 := newChainEnv(t, opts, model.SoftwarePRISM)
	c1 := v1.client()
	var chase sim.Duration
	v1.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := c1.ChaseGet(p, key); err != nil {
			t.Fatal(err)
		}
		chase = p.Now().Sub(start)
	})

	v2 := newChainEnv(t, opts, model.SoftwarePRISM)
	c2 := v2.client()
	var hops sim.Duration
	v2.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := c2.HopGet(p, key); err != nil {
			t.Fatal(err)
		}
		hops = p.Now().Sub(start)
	})

	if chase >= hops {
		t.Fatalf("depth-4 chase %v not faster than per-hop %v", chase, hops)
	}
	t.Logf("depth-4 tail lookup: chase=%v per-hop=%v", chase, hops)
}

func TestChaseRejectedOnHardwareRDMA(t *testing.T) {
	opts := ChainOptions{Buckets: 1, Depth: 2, MaxValue: 8}
	v := newChainEnv(t, opts, model.HardwareRDMA)
	c := v.client()
	v.run(t, func(p *sim.Proc) {
		if _, err := c.ChaseGet(p, 0); err == nil {
			t.Fatal("CHASE succeeded on classic hardware RDMA")
		}
	})
}

func TestHashGetChaseMatchesGet(t *testing.T) {
	// FNV probing displaces keys, so the program must walk the same probe
	// sequence the client loop does.
	opts := DefaultOptions(32, 64)
	opts.Hash = FNV
	v := newKVEnv(t, opts, model.SoftwarePRISM)
	for k := int64(0); k < 24; k++ {
		if err := v.srv.Load(k, chainValue(k)); err != nil {
			t.Fatal(err)
		}
	}
	c := v.client(1)
	v.run(t, func(p *sim.Proc) {
		for k := int64(0); k < 24; k++ {
			got, err := c.GetChase(p, k)
			if err != nil {
				t.Fatalf("GetChase(%d): %v", k, err)
			}
			want, err := c.Get(p, k)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("GetChase(%d) = %v, Get = %v", k, got, want)
			}
		}
		if _, err := c.GetChase(p, 999); err != ErrNotFound {
			t.Fatalf("miss: %v, want ErrNotFound", err)
		}
	})
	if v.srv.NIC().ProgOps == 0 {
		t.Fatal("GetChase issued no programs")
	}
}

func TestHashScanCollectsAllEntries(t *testing.T) {
	opts := DefaultOptions(32, 64)
	opts.Hash = FNV
	v := newKVEnv(t, opts, model.SoftwarePRISM)
	loaded := map[int64][]byte{}
	for k := int64(0); k < 20; k++ {
		loaded[k] = chainValue(k)
		if err := v.srv.Load(k, loaded[k]); err != nil {
			t.Fatal(err)
		}
	}
	c := v.client(1)
	v.run(t, func(p *sim.Proc) {
		got := map[int64][]byte{}
		for cursor := int64(0); cursor < opts.NSlots; {
			next, err := c.Scan(p, cursor, 256, func(key int64, value []byte) error {
				got[key] = append([]byte(nil), value...)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if next <= cursor {
				t.Fatalf("scan cursor stuck at %d", cursor)
			}
			cursor = next
		}
		if len(got) != len(loaded) {
			t.Fatalf("scanned %d entries, want %d", len(got), len(loaded))
		}
		for k, want := range loaded {
			if !bytes.Equal(got[k], want) {
				t.Fatalf("key %d: scanned %v, want %v", k, got[k], want)
			}
		}
	})
}

// --- Sim-vs-live byte identity for the program opcodes ---

// abResult is one issued op's observable outcome, with Data copied out
// of transport-owned storage.
type abResult struct {
	Status wire.Status
	Addr   memory.Addr
	Data   []byte
}

func copyResult(r wire.Result) abResult {
	return abResult{Status: r.Status, Addr: r.Addr, Data: append([]byte(nil), r.Data...)}
}

// TestProgramSimLiveByteIdentity builds identical stores on the
// simulated NIC and a live socket server, issues identical CHASE/SCAN
// wire ops through both, and requires bitwise-identical results —
// status, cursor address, and payload bytes. This is the A/B that keeps
// the two executors' program semantics from drifting.
func TestProgramSimLiveByteIdentity(t *testing.T) {
	kvOpts := DefaultOptions(32, 64)
	kvOpts.Hash = FNV
	chOpts := ChainOptions{Buckets: 2, Depth: 6, MaxValue: 16}
	loadKV := func(load func(k int64, v []byte) error) {
		for k := int64(0); k < 20; k++ {
			if err := load(k, chainValue(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	loadChain := func(load func(k int64, v []byte) error) {
		for k := int64(0); k < chOpts.Buckets*chOpts.Depth; k++ {
			if err := load(k, chainValue(k)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Sim servers.
	simKV := newKVEnv(t, kvOpts, model.SoftwarePRISM)
	loadKV(simKV.srv.Load)
	simChain := newChainEnv(t, chOpts, model.SoftwarePRISM)
	meta, chainMeta := simKV.srv.Meta(), simChain.srv.Meta()

	// Live servers, one per store, each serving a unix socket.
	dir := t.TempDir()
	startLive := func(name string, provision func(*transport.Server)) *transport.Conn {
		t.Helper()
		ts := transport.NewServer()
		provision(ts)
		l, err := net.Listen("unix", filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- ts.Serve(l) }()
		t.Cleanup(func() {
			ts.Shutdown(2 * time.Second)
			<-serveErr
		})
		tc, err := transport.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tc.Close() })
		conn, err := tc.Connect()
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}
	kvConn := startLive("kv.sock", func(ts *transport.Server) {
		srv, err := NewServerOn(ts, kvOpts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(srv.Meta(), meta) {
			t.Fatalf("live kv meta %+v != sim %+v", srv.Meta(), meta)
		}
		loadKV(srv.Load)
	})
	chainConn := startLive("chain.sock", func(ts *transport.Server) {
		srv, err := NewChainStoreOn(ts, chOpts)
		if err != nil {
			t.Fatal(err)
		}
		if srv.Meta() != chainMeta {
			t.Fatalf("live chain meta %+v != sim %+v", srv.Meta(), chainMeta)
		}
		loadChain(srv.Load)
	})

	// The op set: probe-chase hit (displaced key), miss, step-limited
	// walk, budget-windowed scans, list-chase hit and step-limit.
	var match [8]byte
	probeOp := func(key int64, maxSteps uint8) wire.Op {
		prism.PutBE64(match[:], 0, uint64(key))
		p := prism.Program{
			Kind:     prism.ProgChaseProbe,
			MaxSteps: maxSteps,
			MatchOff: entryHeader,
			NextOff:  8,
			Stride:   slotSize,
			StartIdx: uint64(slotIndex(meta.Hash, key, meta.NSlots)),
			NSlots:   uint64(meta.NSlots),
		}
		prog := prism.AppendProgram(nil, &p, match[:])
		return prism.Chase(meta.Key, meta.HashBase, prog, wire.CASEq, nil, entrySize(meta.MaxValue))
	}
	scanOp := func(start int64, budget uint64) wire.Op {
		return prism.Scan(meta.Key, meta.HashBase, meta.appendScanProg(nil, start), budget)
	}
	listOp := func(key int64, maxSteps uint8) wire.Op {
		prism.PutBE64(match[:], 0, uint64(key))
		p := prism.Program{Kind: prism.ProgChaseList, MaxSteps: maxSteps,
			MatchOff: chainNodeKey, NextOff: chainNodeNext}
		prog := prism.AppendProgram(nil, &p, match[:])
		bucket := key / chOpts.Depth
		return prism.Chase(chainMeta.Key, chainMeta.headAddr(bucket), prog, wire.CASEq, nil, chainMeta.nodeSize())
	}
	kvOps := []wire.Op{
		probeOp(7, meta.chaseSteps()),
		probeOp(19, meta.chaseSteps()),
		probeOp(999, meta.chaseSteps()), // miss -> NOT_FOUND + cursor
		probeOp(19, 1),                  // step-limited -> cursor
		scanOp(0, 256),
		scanOp(11, 512),
		scanOp(0, prism.MaxScanBudget),
	}
	chainOps := []wire.Op{
		listOp(chOpts.Depth-1, chainMeta.chaseSteps()),
		listOp(2*chOpts.Depth-1, chainMeta.chaseSteps()),
		listOp(chOpts.Depth-1, 2), // step-limited -> pointer-cell cursor
	}

	issueSim := func(cli *rdma.Client, nic *rdma.Server, e *sim.Engine, ops []wire.Op) []abResult {
		conn := cli.Connect(nic)
		out := make([]abResult, 0, len(ops))
		e.Go("ab", func(p *sim.Proc) {
			for i := range ops {
				batch := conn.Ops(1)
				batch[0] = ops[i]
				res := conn.Issue(p, batch...)
				out = append(out, copyResult(res[0]))
			}
		})
		e.Run()
		return out
	}
	issueLive := func(conn *transport.Conn, ops []wire.Op) []abResult {
		out := make([]abResult, 0, len(ops))
		for i := range ops {
			batch := conn.Ops(1)
			batch[0] = ops[i]
			res, err := conn.Issue(batch)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, copyResult(res[0]))
		}
		return out
	}

	simRes := issueSim(simKV.cli, simKV.nicServer(), simKV.e, kvOps)
	liveRes := issueLive(kvConn, kvOps)
	for i := range kvOps {
		if !reflect.DeepEqual(simRes[i], liveRes[i]) {
			t.Errorf("kv op %d: sim %+v != live %+v", i, simRes[i], liveRes[i])
		}
	}
	simChainRes := issueSim(simChain.cli, simChain.nic, simChain.e, chainOps)
	liveChainRes := issueLive(chainConn, chainOps)
	for i := range chainOps {
		if !reflect.DeepEqual(simChainRes[i], liveChainRes[i]) {
			t.Errorf("chain op %d: sim %+v != live %+v", i, simChainRes[i], liveChainRes[i])
		}
	}
}

// nicServer exposes the kvEnv's simulated NIC for raw issues.
func (v *kvEnv) nicServer() *rdma.Server { return v.srv.NIC() }
