package kv

import (
	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/model"
	"prism/internal/rdma"
)

// Template is an immutable image of a fully loaded PRISM-KV server: the
// NIC-level snapshot (memory, free lists, temp key) plus the application
// metadata needed to re-attach the reclamation RPC handler. Build a server
// once on a throwaway engine, Capture it, then instantiate per measurement
// with NewServerFromTemplate — each instance runs on a copy-on-write fork
// of the loaded keyspace.
type Template struct {
	nic          *rdma.ServerTemplate
	meta         Meta
	opts         Options
	classRegions []classRegion
}

// Capture seals the server's memory and returns its template. The server
// must have no connections; it becomes read-only afterwards.
func (s *Server) Capture() *Template {
	return &Template{
		nic:          s.rs.Capture(),
		meta:         s.meta,
		opts:         s.opts,
		classRegions: append([]classRegion(nil), s.classRegions...),
	}
}

// NIC exposes the transport-level template (tests compare fork contents
// against its snapshot).
func (t *Template) NIC() *rdma.ServerTemplate { return t.nic }

// NewServerFromTemplate instantiates a loaded PRISM-KV server on net from
// a captured template. The deployment is chosen here, so one template
// serves every deployment variant of a figure.
func NewServerFromTemplate(net *fabric.Network, name string, deploy model.Deployment, t *Template) *Server {
	rs := rdma.NewServerFromTemplate(net, name, deploy, t.nic)
	s := &Server{
		host:         rs,
		rs:           rs,
		meta:         t.meta,
		opts:         t.opts,
		classRegions: append([]classRegion(nil), t.classRegions...),
	}
	rs.SetRPCHandler(s.handleRPC)
	return s
}

// PilafTemplate is the Pilaf analogue of Template. Pilaf keeps CPU-side
// state (the coherent index, slot ownership, extent allocator), which is
// deep-copied per instantiation; the extents region handle is re-resolved
// in the forked space by address.
type PilafTemplate struct {
	nic         *rdma.ServerTemplate
	meta        PilafMeta
	extentsBase memory.Addr
	extentNext  uint64
	freeSlots   [][2]uint64
	index       map[int64]pilafRef
	slotOwner   map[int64]int64
}

// Capture seals the server and returns its template. The caller must have
// drained the engine first (run it until idle) so Pilaf's tear-delayed
// staged stores have all landed; capturing mid-stage would bake a torn
// entry into every fork.
func (s *PilafServer) Capture() *PilafTemplate {
	t := &PilafTemplate{
		nic:         s.rs.Capture(),
		meta:        s.meta,
		extentsBase: s.extents.Base,
		extentNext:  s.extentNext,
		freeSlots:   append([][2]uint64(nil), s.freeSlots...),
		index:       make(map[int64]pilafRef, len(s.index)),
		slotOwner:   make(map[int64]int64, len(s.slotOwner)),
	}
	for k, v := range s.index {
		t.index[k] = v
	}
	for k, v := range s.slotOwner {
		t.slotOwner[k] = v
	}
	return t
}

// NIC exposes the transport-level template.
func (t *PilafTemplate) NIC() *rdma.ServerTemplate { return t.nic }

// NewPilafServerFromTemplate instantiates a loaded Pilaf server on net.
func NewPilafServerFromTemplate(net *fabric.Network, name string, deploy model.Deployment, t *PilafTemplate) *PilafServer {
	rs := rdma.NewServerFromTemplate(net, name, deploy, t.nic)
	space := rs.Space()
	s := &PilafServer{
		rs:         rs,
		space:      space,
		extents:    space.RegionAt(t.extentsBase),
		extentNext: t.extentNext,
		freeSlots:  append([][2]uint64(nil), t.freeSlots...),
		index:      make(map[int64]pilafRef, len(t.index)),
		slotOwner:  make(map[int64]int64, len(t.slotOwner)),
		meta:       t.meta,
	}
	for k, v := range t.index {
		s.index[k] = v
	}
	for k, v := range t.slotOwner {
		s.slotOwner[k] = v
	}
	rs.SetRPCHandler(s.handleRPC)
	return s
}
