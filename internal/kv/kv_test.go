package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"prism/internal/fabric"
	"prism/internal/model"
	"prism/internal/rdma"
	"prism/internal/sim"
)

type kvEnv struct {
	e   *sim.Engine
	net *fabric.Network
	srv *Server
	cli *rdma.Client
}

func newKVEnv(t *testing.T, opts Options, deploy model.Deployment) *kvEnv {
	t.Helper()
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(1)
	net := fabric.New(e, p)
	nic := rdma.NewServer(net, "kv-srv", deploy)
	srv, err := NewServer(nic, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &kvEnv{e: e, net: net, srv: srv, cli: rdma.NewClient(net, "cli")}
}

func (v *kvEnv) client(id uint16) *Client {
	return NewClient(v.cli.Connect(v.srv.NIC()), v.srv.Meta(), id)
}

func (v *kvEnv) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	v.e.Go("t", fn)
	v.e.Run()
}

func smallOpts() Options {
	o := DefaultOptions(64, 128)
	return o
}

func TestPutGetRoundTrip(t *testing.T) {
	v := newKVEnv(t, smallOpts(), model.SoftwarePRISM)
	c := v.client(1)
	v.run(t, func(p *sim.Proc) {
		if err := c.Put(p, 7, []byte("value-7")); err != nil {
			t.Error(err)
			return
		}
		got, err := c.Get(p, 7)
		if err != nil {
			t.Error(err)
			return
		}
		if string(got) != "value-7" {
			t.Errorf("got %q", got)
		}
	})
}

func TestGetMissing(t *testing.T) {
	v := newKVEnv(t, smallOpts(), model.SoftwarePRISM)
	c := v.client(1)
	v.run(t, func(p *sim.Proc) {
		if _, err := c.Get(p, 42); err != ErrNotFound {
			t.Errorf("missing key: %v", err)
		}
	})
}

func TestOverwrite(t *testing.T) {
	v := newKVEnv(t, smallOpts(), model.SoftwarePRISM)
	c := v.client(1)
	v.run(t, func(p *sim.Proc) {
		for ver := 0; ver < 5; ver++ {
			val := []byte(fmt.Sprintf("v%d", ver))
			if err := c.Put(p, 3, val); err != nil {
				t.Error(err)
				return
			}
			got, err := c.Get(p, 3)
			if err != nil || string(got) != string(val) {
				t.Errorf("after overwrite %d: %q, %v", ver, got, err)
				return
			}
		}
	})
}

func TestDelete(t *testing.T) {
	v := newKVEnv(t, smallOpts(), model.SoftwarePRISM)
	c := v.client(1)
	v.run(t, func(p *sim.Proc) {
		c.Put(p, 9, []byte("doomed"))
		if err := c.Delete(p, 9); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Get(p, 9); err != ErrNotFound {
			t.Errorf("after delete: %v", err)
		}
		// Re-insert after delete works (slot reuse with a higher tag).
		if err := c.Put(p, 9, []byte("reborn")); err != nil {
			t.Error(err)
			return
		}
		got, err := c.Get(p, 9)
		if err != nil || string(got) != "reborn" {
			t.Errorf("after reinsert: %q, %v", got, err)
		}
	})
}

func TestServerLoadVisibleToClients(t *testing.T) {
	v := newKVEnv(t, smallOpts(), model.SoftwarePRISM)
	for k := int64(0); k < 10; k++ {
		if err := v.srv.Load(k, []byte(fmt.Sprintf("loaded-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	c := v.client(1)
	v.run(t, func(p *sim.Proc) {
		for k := int64(0); k < 10; k++ {
			got, err := c.Get(p, k)
			if err != nil || string(got) != fmt.Sprintf("loaded-%d", k) {
				t.Errorf("key %d: %q, %v", k, got, err)
			}
		}
	})
}

func TestFNVProbing(t *testing.T) {
	opts := smallOpts()
	opts.Hash = FNV
	opts.NSlots = 16 // force collisions
	v := newKVEnv(t, opts, model.SoftwarePRISM)
	c := v.client(1)
	// Keys 2, 18, 34 all hash (FNV-1a mod 16) to slot 15, so probing wraps
	// around the table end; the other keys fill independent slots.
	keys := []int64{2, 18, 34, 0, 1, 5, 6, 7}
	v.run(t, func(p *sim.Proc) {
		for _, k := range keys {
			if err := c.Put(p, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
				t.Error(err)
				return
			}
		}
		for _, k := range keys {
			got, err := c.Get(p, k)
			if err != nil || string(got) != fmt.Sprintf("v%d", k) {
				t.Errorf("key %d under probing: %q, %v", k, got, err)
			}
		}
	})
	if c.Probes == 0 {
		t.Fatal("no probes with a 16-slot table and 12 keys (collisions expected)")
	}
}

func TestConcurrentPutsLastTagWins(t *testing.T) {
	v := newKVEnv(t, smallOpts(), model.SoftwarePRISM)
	a, b := v.client(1), v.client(2)
	var done sim.Time
	v.e.Go("a", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := a.Put(p, 5, []byte(fmt.Sprintf("a-%d", i))); err != nil {
				t.Error(err)
			}
		}
	})
	v.e.Go("b", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := b.Put(p, 5, []byte(fmt.Sprintf("b-%d", i))); err != nil {
				t.Error(err)
			}
		}
		done = p.Now()
	})
	v.e.Run()
	_ = done
	// Both writers completed; final value is one of the last writes and
	// the store remains readable and self-consistent.
	c := v.client(3)
	v.run(t, func(p *sim.Proc) {
		got, err := c.Get(p, 5)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.HasPrefix(got, []byte("a-")) && !bytes.HasPrefix(got, []byte("b-")) {
			t.Errorf("final value %q", got)
		}
	})
}

func TestBufferReclamationKeepsPoolBounded(t *testing.T) {
	opts := smallOpts()
	opts.BuffersPerClass = 8 // tight pool: leaks would exhaust it fast
	v := newKVEnv(t, opts, model.SoftwarePRISM)
	c := v.client(1)
	c.FreeBatch = 2
	v.run(t, func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if err := c.Put(p, 1, []byte(fmt.Sprintf("gen-%03d", i))); err != nil {
				t.Errorf("put %d: %v (buffer leak?)", i, err)
				return
			}
			// Give the asynchronous frees time to land.
			if i%8 == 7 {
				p.Sleep(100 * time.Microsecond)
			}
		}
	})
}

func TestPutsRequireNoServerCPU(t *testing.T) {
	// PRISM-KV's headline property: PUTs run without application RPCs —
	// the only RPCs are batched reclamation messages.
	v := newKVEnv(t, smallOpts(), model.SoftwarePRISM)
	c := v.client(1)
	v.run(t, func(p *sim.Proc) {
		for i := int64(0); i < 16; i++ {
			if err := c.Put(p, i, []byte("x")); err != nil {
				t.Error(err)
			}
		}
	})
	// Inserts into empty slots retire no buffers, so zero RPCs at all.
	if got := v.srv.NIC().RequestsServed; got == 0 {
		t.Fatal("no requests observed")
	}
}

// --- Pilaf ---

type pilafEnv struct {
	e   *sim.Engine
	srv *PilafServer
	cli *rdma.Client
}

func newPilafEnv(t *testing.T, opts Options, deploy model.Deployment) *pilafEnv {
	t.Helper()
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(2)
	net := fabric.New(e, p)
	nic := rdma.NewServer(net, "pilaf-srv", deploy)
	srv, err := NewPilafServer(nic, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &pilafEnv{e: e, srv: srv, cli: rdma.NewClient(net, "cli")}
}

func (v *pilafEnv) client() *PilafClient {
	return NewPilafClient(v.cli.Connect(v.srv.NIC()), v.srv.Meta(), model.Default().PilafCRCCost)
}

func TestPilafPutGet(t *testing.T) {
	v := newPilafEnv(t, smallOpts(), model.HardwareRDMA)
	c := v.client()
	v.e.Go("t", func(p *sim.Proc) {
		if err := c.Put(p, 11, []byte("pilaf-value")); err != nil {
			t.Error(err)
			return
		}
		got, err := c.Get(p, 11)
		if err != nil || string(got) != "pilaf-value" {
			t.Errorf("get: %q, %v", got, err)
		}
		if _, err := c.Get(p, 999); err != ErrNotFound {
			t.Errorf("missing: %v", err)
		}
	})
	v.e.Run()
}

func TestPilafOverwriteReusesExtents(t *testing.T) {
	opts := smallOpts()
	opts.BuffersPerClass = 4 // extents sized for 4 entries
	v := newPilafEnv(t, opts, model.HardwareRDMA)
	c := v.client()
	v.e.Go("t", func(p *sim.Proc) {
		val := make([]byte, 64)
		for i := 0; i < 50; i++ {
			val[0] = byte(i)
			if err := c.Put(p, 1, val); err != nil {
				t.Errorf("put %d: %v (extent leak?)", i, err)
				return
			}
		}
		got, err := c.Get(p, 1)
		if err != nil || got[0] != 49 {
			t.Errorf("final: %v, %v", got[0], err)
		}
	})
	v.e.Run()
}

func TestPilafGetLatencyVsPRISMKV(t *testing.T) {
	// §6.2 Fig. 3: PRISM-KV's single indirect READ beats Pilaf's two READs
	// + CRC on hardware RDMA, and by ~2x on software RDMA.
	getLatency := func(run func(p *sim.Proc)) sim.Duration {
		return 0 // placeholder, below
	}
	_ = getLatency

	// PRISM-KV on the software stack.
	v1 := newKVEnv(t, smallOpts(), model.SoftwarePRISM)
	v1.srv.Load(1, make([]byte, 64))
	c1 := v1.client(1)
	var prismLat sim.Duration
	v1.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := c1.Get(p, 1); err != nil {
			t.Error(err)
		}
		prismLat = p.Now().Sub(start)
	})

	// Pilaf on hardware RDMA.
	v2 := newPilafEnv(t, smallOpts(), model.HardwareRDMA)
	v2.srv.Load(1, make([]byte, 64))
	c2 := v2.client()
	var pilafHW sim.Duration
	v2.e.Go("t", func(p *sim.Proc) {
		start := p.Now()
		if _, err := c2.Get(p, 1); err != nil {
			t.Error(err)
		}
		pilafHW = p.Now().Sub(start)
	})
	v2.e.Run()

	// Pilaf on the software stack.
	v3 := newPilafEnv(t, smallOpts(), model.SoftwarePRISM)
	v3.srv.Load(1, make([]byte, 64))
	c3 := v3.client()
	var pilafSW sim.Duration
	v3.e.Go("t", func(p *sim.Proc) {
		start := p.Now()
		if _, err := c3.Get(p, 1); err != nil {
			t.Error(err)
		}
		pilafSW = p.Now().Sub(start)
	})
	v3.e.Run()

	if !(prismLat < pilafHW && pilafHW < pilafSW) {
		t.Fatalf("GET latency ordering: prism=%v pilafHW=%v pilafSW=%v", prismLat, pilafHW, pilafSW)
	}
	// Paper's anchors: ~6 µs vs ~8 µs vs ~14 µs. Allow wide slack.
	if prismLat > 8*time.Microsecond {
		t.Fatalf("PRISM-KV GET %v, expected ~6 µs", prismLat)
	}
	if pilafSW < 10*time.Microsecond {
		t.Fatalf("software Pilaf GET %v, expected ~14 µs", pilafSW)
	}
	t.Logf("GET latency: PRISM-KV=%v Pilaf(HW)=%v Pilaf(SW)=%v", prismLat, pilafHW, pilafSW)
}

type modelOp struct {
	kind byte
	key  int64
	val  byte
}

// Property: a random op sequence applied to PRISM-KV matches a map-based
// model (single client, so no concurrency ambiguity).
func TestQuickModelCheck(t *testing.T) {
	f := func(raw []uint32) bool {
		ops := make([]modelOp, 0, len(raw))
		for _, r := range raw {
			ops = append(ops, modelOp{kind: byte(r % 3), key: int64(r/3) % 8, val: byte(r >> 13)})
		}
		if len(ops) > 40 {
			ops = ops[:40]
		}
		return runModelCheck(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(15))}); err != nil {
		t.Fatal(err)
	}
}

func runModelCheck(ops []modelOp) bool {
	return runModelCheckHash(ops, Collisionless) && runModelCheckHash(ops, FNV) && runModelCheckHash(ops, TwoChoice)
}

// runModelCheckHash validates a random op sequence against a map model
// under one hash mode.
func runModelCheckHash(ops []modelOp, h Hash) bool {
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(3)
	net := fabric.New(e, p)
	nic := rdma.NewServer(net, "srv", model.SoftwarePRISM)
	opts := DefaultOptions(64, 32) // slack so two-choice never fills
	opts.Hash = h
	srv, err := NewServer(nic, opts)
	if err != nil {
		return false
	}
	cli := rdma.NewClient(net, "cli")
	c := NewClient(cli.Connect(srv.NIC()), srv.Meta(), 1)
	modelMap := map[int64][]byte{}
	okAll := true
	e.Go("t", func(pr *sim.Proc) {
		for _, o := range ops {
			switch o.kind {
			case 0: // put
				v := []byte{o.val, o.val ^ 0xFF}
				if err := c.Put(pr, o.key, v); err != nil {
					okAll = false
					return
				}
				modelMap[o.key] = v
			case 1: // get
				got, err := c.Get(pr, o.key)
				want, exists := modelMap[o.key]
				if exists {
					if err != nil || !bytes.Equal(got, want) {
						okAll = false
						return
					}
				} else if err != ErrNotFound {
					okAll = false
					return
				}
			case 2: // delete
				if err := c.Delete(pr, o.key); err != nil {
					okAll = false
					return
				}
				delete(modelMap, o.key)
			}
		}
	})
	e.Run()
	return okAll
}

func TestPilafCRCCatchesTornReads(t *testing.T) {
	// A reader hammering a key that a writer updates in place must never
	// observe a half-written entry: the self-verifying CRCs detect torn
	// state and the reader retries (§6, the reason Pilaf carries CRCs).
	v := newPilafEnv(t, smallOpts(), model.HardwareRDMA)
	// Every version's value differs in EVERY byte, so any torn mix of two
	// versions is detectable (a torn read that splices versions sharing a
	// byte prefix would be indistinguishable from a clean one).
	val := func(ver int) []byte { return bytes.Repeat([]byte{byte(ver)}, 24) }
	if err := v.srv.Load(1, val(0)); err != nil {
		t.Fatal(err)
	}
	writer := v.client()
	reader := v.client()
	v.e.Go("writer", func(p *sim.Proc) {
		for i := 1; i <= 200; i++ {
			if err := writer.Put(p, 1, val(i)); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
	})
	v.e.Go("reader", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			// Vary the phase relative to the writer so the deterministic
			// schedules sweep across the torn windows.
			p.Sleep(time.Duration(i%23) * 50 * time.Nanosecond)
			got, err := reader.Get(p, 1)
			if err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
			if len(got) != 24 {
				t.Errorf("bad length %d", len(got))
				return
			}
			for _, b := range got {
				if b != got[0] {
					t.Errorf("torn value leaked through CRC: %v", got)
					return
				}
			}
		}
	})
	v.e.Run()
	if reader.Retries == 0 {
		t.Fatal("no CRC retries under a write-heavy race — torn state never observed")
	}
	t.Logf("CRC retries: %d", reader.Retries)
}
