package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"prism/internal/alloc"
	"prism/internal/memory"
	"prism/internal/prism"
	"prism/internal/wire"
)

// Host is the server-side provisioning surface every transport's server
// implements: registered memory, free lists for ALLOCATE, the shared
// rkey for per-connection temp buffers, the two-sided RPC hook, and
// quiescent buffer reclamation (§3.2). Applications (PRISM-KV and
// friends) provision against this interface, so one store runs on the
// simulated NIC (rdma.Server) or a live socket server (Server here)
// unchanged.
type Host interface {
	Space() *memory.Space
	AddFreeList(fl *alloc.FreeList)
	FreeList(id uint32) *alloc.FreeList
	SetConnTempKey(key memory.RKey)
	SetRPCHandler(h RPCHandler)
	RecycleBuffer(freeList uint32, addr memory.Addr)
	Quiesce(fn func())
}

// ConnTempSize/TempSlotSize mirror the simulated NIC's per-connection
// temporary-buffer provisioning (rdma.ConnTempSize): the redirect
// target for chains, carved into TempSlotSize chain slots.
const (
	ConnTempSize = 256
	TempSlotSize = 32
)

// DefaultServerBatch is the per-wakeup frame budget when Server.MaxBatch
// is unset: how many already-buffered frames one socket wakeup may
// serve — under one space-guard acquisition, into one response flush —
// before the guard is released and the staged responses hit the wire.
// It bounds both guard hold time (fairness across sockets) and response
// latency within a burst.
const DefaultServerBatch = 64

// ErrServerClosed is returned by Serve after Shutdown begins draining.
var ErrServerClosed = errors.New("transport: server closed")

// Server is a live PRISM NIC endpoint over stream sockets (tcp or
// unix). Each accepted socket gets its own goroutine, framer, executor,
// and scratch; logical connections (queue pairs) multiplex over sockets
// RDMAvisor-style, so thousands of clients share a few file
// descriptors. Shared state — the memory space, free lists, the
// quiescer, and the connection-temp region — is serialized on the
// space's guard. The guard is held per wakeup batch rather than per
// primitive: a socket wakeup drains every request frame already
// buffered (up to MaxBatch), executes them under one guard acquisition,
// and coalesces every response into one write — the server half of
// doorbell batching. Each primitive still executes atomically under the
// guard, and ops from different sockets interleave at batch
// granularity, which the §3.3/§3.5 contract permits: it specifies
// per-primitive atomicity, not an interleaving schedule.
type Server struct {
	space     *memory.Space
	freeLists map[uint32]*alloc.FreeList
	quiescer  *alloc.Quiescer
	handler   RPCHandler

	// MaxBatch caps frames served (and responses coalesced) per socket
	// wakeup; zero means DefaultServerBatch, 1 restores the unbatched
	// serve-and-flush-per-frame datapath. Set before Serve.
	MaxBatch int

	// rpcMu serializes RPC handler invocations: handlers keep per-server
	// scratch (reply buffers, decode state) sized for the simulator's
	// one-domain-per-server execution. Lock order: rpcMu before the
	// space guard (handlers call RecycleBuffer, which takes the guard) —
	// which is why a wakeup batch releases its amortized guard before
	// dispatching an RPC frame.
	rpcMu sync.Mutex

	// mu guards the accept-side bookkeeping: listeners, sockets, the
	// logical-connection counter, temp-region carving, and draining.
	mu         sync.Mutex
	tempKey    memory.RKey
	tempRegion *memory.Region
	tempUsed   uint64
	nextConn   uint64
	listeners  []net.Listener
	socks      map[*srvSock]struct{}
	draining   bool
	wg         sync.WaitGroup

	// Stats (atomic: bumped by every socket goroutine).
	RequestsServed atomic.Int64
	OpsExecuted    atomic.Int64
	ConnsAccepted  atomic.Int64

	// Verb-program telemetry (§17): CHASE/SCAN ops executed and the loop
	// iterations they ran. ProgSteps-ProgOps is the round trips the
	// programs collapsed versus issuing one verb per step.
	ProgOps   atomic.Int64
	ProgSteps atomic.Int64

	// Syscall telemetry, aggregated from each socket as it closes:
	// write syscalls and the frames/bytes they carried, read syscalls
	// and bytes, and wakeup batches with the frames they drained
	// (BatchFrames/Batches = mean batch_len).
	Writes      atomic.Int64
	FramesOut   atomic.Int64
	BytesOut    atomic.Int64
	Reads       atomic.Int64
	BytesIn     atomic.Int64
	Batches     atomic.Int64
	BatchFrames atomic.Int64
}

// NewServer returns a live server over a fresh memory space, ready for
// application provisioning (Host) and then Serve.
func NewServer() *Server {
	return &Server{
		space:     memory.NewSpace(),
		freeLists: make(map[uint32]*alloc.FreeList),
		quiescer:  alloc.NewQuiescer(),
		socks:     make(map[*srvSock]struct{}),
	}
}

// Space exposes the server's memory for registration and CPU-side
// access. CPU-side access concurrent with serving must hold
// Space().Guard.
func (s *Server) Space() *memory.Space { return s.space }

// AddFreeList registers a free list with the NIC for ALLOCATE. Call
// during provisioning, before Serve.
func (s *Server) AddFreeList(fl *alloc.FreeList) {
	if _, dup := s.freeLists[fl.ID]; dup {
		panic(fmt.Sprintf("transport: duplicate free list id %d", fl.ID))
	}
	s.freeLists[fl.ID] = fl
}

// FreeList returns a registered free list.
func (s *Server) FreeList(id uint32) *alloc.FreeList { return s.freeLists[id] }

// SetRPCHandler installs the two-sided dispatch target.
func (s *Server) SetRPCHandler(h RPCHandler) { s.handler = h }

// SetConnTempKey selects the protection domain in which per-connection
// temporary buffers are allocated. Must be called before the first
// connection.
func (s *Server) SetConnTempKey(key memory.RKey) {
	if s.tempRegion != nil {
		panic("transport: SetConnTempKey after connections exist")
	}
	s.tempKey = key
}

// TempKey returns the rkey protecting connection temp buffers.
func (s *Server) TempKey() memory.RKey { return s.tempKey }

// RecycleBuffer returns a client-released buffer to its free list once
// all in-flight operations drain (§3.2's reuse rule). Safe to call from
// RPC handlers and application goroutines.
func (s *Server) RecycleBuffer(freeList uint32, addr memory.Addr) {
	fl, ok := s.freeLists[freeList]
	if !ok {
		panic(fmt.Sprintf("transport: recycle to unknown free list %d", freeList))
	}
	g := s.space.Guard()
	g.Lock()
	fl.Recycle(addr)
	fl.FlushWhenQuiet(s.quiescer)
	g.Unlock()
}

// Quiesce runs fn once every operation currently in flight has
// completed (immediately when idle). fn runs with the space guard held.
func (s *Server) Quiesce(fn func()) {
	g := s.space.Guard()
	g.Lock()
	s.quiescer.AfterQuiesce(fn)
	g.Unlock()
}

// maxBatch resolves the per-wakeup frame budget.
func (s *Server) maxBatch() int {
	if s.MaxBatch > 0 {
		return s.MaxBatch
	}
	return DefaultServerBatch
}

// allocConnTemp carves a per-connection temp buffer, registering a new
// backing region when the current one fills. Caller holds s.mu; the
// space guard is taken for the registration only.
func (s *Server) allocConnTemp() memory.Addr {
	const regionBufs = 1024
	if s.tempRegion == nil || s.tempUsed+ConnTempSize > s.tempRegion.Len {
		g := s.space.Guard()
		g.Lock()
		var r *memory.Region
		var err error
		if s.tempKey != 0 {
			r, err = s.space.RegisterShared(s.tempKey, ConnTempSize*regionBufs)
		} else {
			r, err = s.space.Register(ConnTempSize * regionBufs)
			if err == nil {
				s.tempKey = r.Key
			}
		}
		g.Unlock()
		if err != nil {
			panic(fmt.Sprintf("transport: temp region registration failed: %v", err))
		}
		s.tempRegion = r
		s.tempUsed = 0
	}
	addr := s.tempRegion.Base + memory.Addr(s.tempUsed)
	s.tempUsed += ConnTempSize
	return addr
}

// addSock builds and registers the per-socket state, refusing sockets
// once a drain has begun.
func (s *Server) addSock(nc net.Conn) (*srvSock, error) {
	sk := &srvSock{s: s, nc: nc, fr: NewFrameReader(nc), fw: NewFrameWriter(nc)}
	sk.exec = &prism.Executor{Space: s.space, FreeLists: s.freeLists}
	sk.exec.ReadAlloc = sk.carve
	sk.conns = make(map[uint64]*liveConn)
	sk.guard = s.space.Guard()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	s.socks[sk] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	return sk, nil
}

// Serve accepts connections on l until Shutdown. It always closes l
// before returning, and returns ErrServerClosed after a drain.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			l.Close()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		sk, err := s.addSock(nc)
		if err != nil {
			nc.Close()
			l.Close()
			return err
		}
		go sk.loop()
	}
}

// ServeConn serves one pre-established connection (a net.Pipe end in
// tests, or an in-process wiring) with the same lifecycle as an
// accepted socket: it registers for Shutdown and blocks until the
// socket loop exits. Returns ErrServerClosed if the server is already
// draining.
func (s *Server) ServeConn(nc net.Conn) error {
	sk, err := s.addSock(nc)
	if err != nil {
		nc.Close()
		return err
	}
	sk.loop()
	return nil
}

// Shutdown drains the server: listeners close immediately, sockets
// finish the wakeup batch they are serving (responses flush), idle
// sockets close as soon as their blocked read is interrupted, and a
// client caught mid-frame loses the connection. If the drain has not
// finished after grace, remaining sockets are force-closed. Safe to
// call more than once.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	ls := s.listeners
	s.listeners = nil
	for sk := range s.socks {
		// Interrupt blocked reads; the loop exits after finishing the
		// frames in hand.
		sk.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		for sk := range s.socks {
			sk.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// liveConn is one logical connection (queue pair) multiplexed on a
// socket. The conditional-flag state follows the simulated server's:
// lastOK tracks the last executed op's status; skipped ops leave it
// unchanged, so consecutive conditionals all skip (§3.4).
type liveConn struct {
	id       uint64
	tempAddr memory.Addr
	lastOK   bool
}

// srvSock is one accepted socket: framers, a private executor over the
// shared space, decode/encode scratch, and the logical connections
// opened on it. All fields are owned by the socket's goroutine; shared
// state is reached only under the space guard (primitives, free lists,
// quiescer) or s.mu (registry).
type srvSock struct {
	s     *Server
	nc    net.Conn
	fr    *FrameReader
	fw    *FrameWriter
	exec  *prism.Executor
	conns map[uint64]*liveConn

	// Wakeup-batch guard amortization: the space guard is acquired at
	// the first verb of a batch and released before any RPC dispatch
	// (lock order) and before the batch's response flush (never hold a
	// lock across a syscall). tok is the quiescer token bracketing the
	// held span.
	guard   *sync.Mutex
	inVerbs bool
	tok     uint64

	req     wire.Request  // alias-decodes into fr's buffer
	resp    wire.Response // response under construction
	results []wire.Result // reused results storage
	payload []byte        // response payload arena, reset per request
	opMeta  prism.OpMeta  // ExecInto out-param scratch (escape analysis)
	wc      *wireCheckState
	greeted bool

	batches, batchFrames int64 // wakeup telemetry, owner goroutine only
}

func (sk *srvSock) wcheck() *wireCheckState {
	if sk.wc == nil {
		sk.wc = &wireCheckState{}
	}
	return sk.wc
}

// carve allocates n bytes from the socket's response payload arena
// (the executor's ReadAlloc hook). When the arena must grow, earlier
// carvings keep the old backing array alive and the request continues
// on the new one.
func (sk *srvSock) carve(n uint64) []byte {
	buf := sk.payload
	if uint64(cap(buf)-len(buf)) < n {
		c := 2 * cap(buf)
		if c < int(n) {
			c = int(n)
		}
		if c < 1024 {
			c = 1024
		}
		buf = make([]byte, 0, c)
	}
	off := len(buf)
	buf = buf[:off+int(n)]
	sk.payload = buf
	return buf[off:]
}

// beginVerbs acquires the amortized batch guard if not already held.
func (sk *srvSock) beginVerbs() {
	if sk.inVerbs {
		return
	}
	sk.guard.Lock()
	sk.tok = sk.s.quiescer.OpStart()
	sk.inVerbs = true
}

// endVerbs releases the amortized batch guard if held.
func (sk *srvSock) endVerbs() {
	if !sk.inVerbs {
		return
	}
	sk.s.quiescer.OpEnd(sk.tok)
	sk.guard.Unlock()
	sk.inVerbs = false
}

func (sk *srvSock) loop() {
	defer func() {
		sk.endVerbs()
		sk.nc.Close()
		s := sk.s
		s.Writes.Add(sk.fw.Writes)
		s.FramesOut.Add(sk.fw.FramesOut)
		s.BytesOut.Add(sk.fw.BytesFlushed)
		s.Reads.Add(sk.fr.Reads.Load())
		s.BytesIn.Add(sk.fr.BytesRead.Load())
		s.Batches.Add(sk.batches)
		s.BatchFrames.Add(sk.batchFrames)
		s.mu.Lock()
		delete(s.socks, sk)
		s.mu.Unlock()
		s.wg.Done()
	}()
	maxBatch := sk.s.maxBatch()
	for {
		kind, body, err := sk.fr.Next()
		if err != nil {
			return // EOF, peer reset, or a drain-interrupted read
		}
		if !sk.greeted {
			// The first frame must be the protocol hello.
			if kind != frameHello || string(body) != string(helloMagic) {
				return
			}
			sk.greeted = true
			if sk.fw.Send(frameWelcome, nil) != nil {
				return
			}
			continue
		}
		// Wakeup batch: serve this frame and every further frame already
		// decodable from the read buffer — no extra syscalls — staging
		// the responses, then flush them all in one write. The space
		// guard is acquired once for the batch's verb frames (beginVerbs
		// inside serveRequest) and released before the flush.
		n := 0
		var bad error
		for {
			switch kind {
			case frameConnect:
				bad = sk.handleConnect()
			case frameRequest:
				bad = sk.serveRequest(body)
			default:
				bad = fmt.Errorf("transport: unexpected frame 0x%02x", kind)
			}
			if bad != nil {
				break
			}
			n++
			if n >= maxBatch || !sk.fr.Buffered() {
				break
			}
			if kind, body, err = sk.fr.Next(); err != nil {
				break
			}
		}
		sk.endVerbs()
		sk.batches++
		sk.batchFrames += int64(n)
		if sk.fw.Flush() != nil || bad != nil || err != nil {
			return
		}
	}
}

// handleConnect opens a logical connection and stages the accept frame
// carrying its id and temp-buffer coordinates. The wakeup batch's
// amortized space guard is released first (as serveRPC does): a connect
// frame can coalesce into the same wakeup batch as request frames, and
// allocConnTemp takes the guard when the temp region fills — holding it
// here would self-deadlock on the non-reentrant guard, and the
// guard→s.mu order would invert allocConnTemp's s.mu→guard order.
func (sk *srvSock) handleConnect() error {
	sk.endVerbs()
	s := sk.s
	s.mu.Lock()
	id := s.nextConn
	s.nextConn++
	temp := s.allocConnTemp()
	key := s.tempKey
	s.mu.Unlock()
	sk.conns[id] = &liveConn{id: id, tempAddr: temp, lastOK: true}
	s.ConnsAccepted.Add(1)
	var scratch [acceptLen]byte
	return sk.fw.Stage(frameAccept, appendAccept(scratch[:0], id, temp, key))
}

// serveRequest decodes, executes, and stages the answer to one request
// frame; the wakeup loop flushes.
func (sk *srvSock) serveRequest(body []byte) error {
	s := sk.s
	if err := wire.DecodeRequestAlias(&sk.req, body); err != nil {
		return err
	}
	if WireCheckEnabled() {
		sk.wcheck().checkRequestBytes(&sk.req, body)
	}
	lc, ok := sk.conns[sk.req.Conn]
	if !ok {
		return fmt.Errorf("transport: request on unknown connection %d", sk.req.Conn)
	}
	s.RequestsServed.Add(1)

	req := &sk.req
	nops := len(req.Ops)
	if cap(sk.results) < nops {
		sk.results = make([]wire.Result, nops)
	}
	results := sk.results[:nops]
	for i := range results {
		results[i] = wire.Result{}
	}
	sk.payload = sk.payload[:0]

	if nops == 1 && req.Ops[0].Code == wire.OpSend {
		sk.serveRPC(req, results)
	} else {
		sk.serveVerbs(lc, req, results)
	}

	sk.resp.Conn, sk.resp.Seq, sk.resp.Epoch, sk.resp.Results = req.Conn, req.Seq, req.Epoch, results
	if WireCheckEnabled() {
		sk.wcheck().checkResponseRoundTrip(&sk.resp)
	}
	return sk.fw.StageResponse(&sk.resp)
}

// serveVerbs executes a (possibly chained) one-sided request under the
// wakeup batch's amortized guard acquisition. Each primitive is atomic
// under the guard (§3.3/§3.5); the batch merely coarsens how requests
// from different sockets interleave, which the contract leaves open.
func (sk *srvSock) serveVerbs(lc *liveConn, req *wire.Request, results []wire.Result) {
	sk.beginVerbs()
	executed := 0
	progOps, progSteps := int64(0), int64(0)
	for i := range req.Ops {
		op := &req.Ops[i]
		if op.Flags.Has(wire.FlagConditional) && !lc.lastOK {
			results[i] = wire.Result{Status: wire.StatusNotExecuted}
			continue
		}
		sk.exec.ExecInto(op, &results[i], &sk.opMeta)
		executed++
		if sk.opMeta.Steps > 0 {
			progOps++
			progSteps += int64(sk.opMeta.Steps)
		}
		lc.lastOK = results[i].Status.OK()
	}
	sk.s.OpsExecuted.Add(int64(executed))
	if progOps > 0 {
		sk.s.ProgOps.Add(progOps)
		sk.s.ProgSteps.Add(progSteps)
	}
}

// serveRPC dispatches a two-sided request to the application handler.
// The batch guard is released first: handlers take rpcMu and may take
// the guard themselves (RecycleBuffer), and the lock order is rpcMu
// before guard. The reply is copied into the socket's arena under
// rpcMu, because handlers reuse their reply scratch across calls.
func (sk *srvSock) serveRPC(req *wire.Request, results []wire.Result) {
	sk.endVerbs()
	s := sk.s
	if s.handler == nil {
		results[0] = wire.Result{Status: wire.StatusUnsupported}
		return
	}
	s.rpcMu.Lock()
	reply, _ := s.handler(req.Ops[0].Data)
	var data []byte
	if len(reply) > 0 {
		data = sk.carve(uint64(len(reply)))
		copy(data, reply)
	}
	s.rpcMu.Unlock()
	results[0] = wire.Result{Status: wire.StatusOK, Data: data}
}
