package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"prism/internal/wire"
)

// Regression coverage for review findings on the doorbell-batched
// datapath: a connect frame coalescing into a verbs wakeup batch, a
// Close drain against a peer that stopped reading, and flush telemetry
// on failed writes.

// TestConnectCoalescedWithVerbsBatch drives a connect frame into the
// same server wakeup batch as a verbs request, at the exact point where
// allocConnTemp must register a fresh temp region. handleConnect used
// to run with the batch's amortized space guard still held (inVerbs set
// by the earlier request frame), so the registration's guard acquisition
// self-deadlocked — permanently, holding the global guard.
func TestConnectCoalescedWithVerbsBatch(t *testing.T) {
	s := NewServer()
	cEnd, sEnd := net.Pipe()
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); s.ServeConn(sEnd) }()

	c, err := NewClientConn(cEnd)
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}

	// Fill the first temp region exactly (allocConnTemp carves
	// regionBufs = 1024 ConnTempSize slots per region), so the coalesced
	// connect below is the one that must register a new region under the
	// space guard.
	var first *Conn
	for i := 0; i < 1024; i++ {
		cn, err := c.Connect()
		if err != nil {
			t.Fatalf("Connect %d: %v", i, err)
		}
		if first == nil {
			first = cn
		}
	}

	// Stage a verbs request with the doorbell suppressed, then Connect:
	// its control frame rings once and the writer flushes both frames in
	// one Write. The synchronous pipe delivers them in one read, so the
	// server serves both in a single wakeup batch — the request frame
	// takes the amortized guard, and handleConnect must release it
	// before registering the new temp region.
	req := &wire.Request{
		Conn: first.id,
		Seq:  1 << 32, // outside the window's range; the response is tolerated as unknown
		Ops:  []wire.Op{{Code: wire.OpRead, RKey: first.TempKey, Target: first.TempAddr, Len: 8}},
	}
	if err := c.fl.stageRequest(req, false); err != nil {
		t.Fatalf("stageRequest: %v", err)
	}
	type out struct {
		cn  *Conn
		err error
	}
	done := make(chan out, 1)
	go func() {
		cn, err := c.Connect()
		done <- out{cn, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("Connect coalesced with verbs batch: %v", o.err)
		}
		if o.cn.TempAddr == first.TempAddr {
			t.Fatal("coalesced connect reused the first connection's temp buffer")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Connect coalesced into a verbs wakeup batch hung (space-guard deadlock)")
	}

	c.Close()
	<-serveDone
}

// TestCloseStalledPeer pins that Close returns even when the peer is
// alive but not reading: the drain of staged frames is bounded by a
// write deadline, so a writer stuck in Write fails at the deadline
// instead of hanging Close forever.
func TestCloseStalledPeer(t *testing.T) {
	old := closeDrainGrace
	closeDrainGrace = 100 * time.Millisecond
	defer func() { closeDrainGrace = old }()

	cEnd, sEnd := net.Pipe()
	defer sEnd.Close()
	// The peer handshakes, then goes silent: it never reads again, so on
	// the synchronous pipe any flushed frame leaves the client's writer
	// blocked in Write.
	handshook := make(chan struct{})
	go func() {
		fr := NewFrameReader(sEnd)
		fw := NewFrameWriter(sEnd)
		if kind, _, err := fr.Next(); err != nil || kind != frameHello {
			t.Errorf("stalled peer handshake: kind=0x%02x err=%v", kind, err)
			sEnd.Close()
			return
		}
		if err := fw.Send(frameWelcome, nil); err != nil {
			t.Errorf("stalled peer welcome: %v", err)
			sEnd.Close()
		}
		close(handshook)
	}()

	c, err := NewClientConn(cEnd)
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	<-handshook
	// Stage a frame the stalled peer will never accept.
	if err := c.fl.stageControl(frameConnect, nil); err != nil {
		t.Fatalf("stageControl: %v", err)
	}

	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a peer that stopped reading")
	}
}

// errWriter fails every Write without carrying any bytes.
type errWriter struct{ err error }

func (w errWriter) Write(p []byte) (int, error) { return 0, w.err }

// TestFlushStatsSkipFailedWrites pins that the flusher's syscall
// telemetry only counts writes that succeeded: a failed (possibly
// partial) Write must not inflate frames_per_write/bytes_per_syscall
// with frames that never reached the wire.
func TestFlushStatsSkipFailedWrites(t *testing.T) {
	boom := errors.New("boom")
	errc := make(chan error, 1)
	f := newFlusher(errWriter{err: boom}, func(err error) { errc <- err })
	if err := f.stageControl(frameConnect, nil); err != nil {
		t.Fatalf("stageControl: %v", err)
	}
	select {
	case err := <-errc:
		if err != boom {
			t.Fatalf("onError = %v, want %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer never reported the failed Write")
	}
	if w, fr, b := f.stats(); w != 0 || fr != 0 || b != 0 {
		t.Fatalf("stats after failed write = %d writes, %d frames, %d bytes; want all zero", w, fr, b)
	}
}
