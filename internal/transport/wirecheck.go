package transport

import (
	"bytes"
	"fmt"

	"prism/internal/wire"
)

// Live wire-check scratch (see SetWireCheck). Senders round-trip every
// outgoing message through the codec and compare fields; receivers
// re-encode every alias-decoded message and compare it byte-for-byte
// against the frame on the wire, proving the peer sent the canonical
// encoding and the alias decoders lost nothing. One wireCheckState per
// socket side, so checking never shares buffers across goroutines.
type wireCheckState struct {
	buf  []byte
	req  wire.Request
	resp wire.Response
}

// checkRequestRoundTrip verifies req encodes to RequestWireSize bytes
// and survives encode → alias-decode with every field intact. Client
// side, before send.
func (ws *wireCheckState) checkRequestRoundTrip(req *wire.Request) {
	ws.buf = wire.AppendRequest(ws.buf[:0], req)
	if len(ws.buf) != wire.RequestWireSize(req) {
		panic(fmt.Sprintf("transport: wire check: encoded request is %d bytes, RequestWireSize says %d",
			len(ws.buf), wire.RequestWireSize(req)))
	}
	if err := wire.DecodeRequestAlias(&ws.req, ws.buf); err != nil {
		panic(fmt.Sprintf("transport: wire check: request round trip: %v", err))
	}
	if !sameRequest(req, &ws.req) {
		panic("transport: wire check: request mismatch after round trip")
	}
}

// checkRequestBytes verifies that re-encoding the alias-decoded req
// reproduces the received frame exactly — the peer's bytes are
// canonical and the decode lost nothing. Server side, after decode.
func (ws *wireCheckState) checkRequestBytes(req *wire.Request, frame []byte) {
	ws.buf = wire.AppendRequest(ws.buf[:0], req)
	if !bytes.Equal(ws.buf, frame) {
		panic("transport: wire check: received request bytes are not the canonical encoding")
	}
	if len(frame) != wire.RequestWireSize(req) {
		panic(fmt.Sprintf("transport: wire check: request frame is %d bytes, RequestWireSize says %d",
			len(frame), wire.RequestWireSize(req)))
	}
}

// checkResponseRoundTrip verifies resp encodes to ResponseWireSize
// bytes and survives encode → alias-decode intact. Server side, before
// send.
func (ws *wireCheckState) checkResponseRoundTrip(resp *wire.Response) {
	ws.buf = wire.AppendResponse(ws.buf[:0], resp)
	if len(ws.buf) != wire.ResponseWireSize(resp) {
		panic(fmt.Sprintf("transport: wire check: encoded response is %d bytes, ResponseWireSize says %d",
			len(ws.buf), wire.ResponseWireSize(resp)))
	}
	if err := wire.DecodeResponseAlias(&ws.resp, ws.buf); err != nil {
		panic(fmt.Sprintf("transport: wire check: response round trip: %v", err))
	}
	if !sameResponse(resp, &ws.resp) {
		panic("transport: wire check: response mismatch after round trip")
	}
}

// checkResponseBytes verifies that re-encoding the alias-decoded resp
// reproduces the received frame exactly. Client side, after decode.
func (ws *wireCheckState) checkResponseBytes(resp *wire.Response, frame []byte) {
	ws.buf = wire.AppendResponse(ws.buf[:0], resp)
	if !bytes.Equal(ws.buf, frame) {
		panic("transport: wire check: received response bytes are not the canonical encoding")
	}
	if len(frame) != wire.ResponseWireSize(resp) {
		panic(fmt.Sprintf("transport: wire check: response frame is %d bytes, ResponseWireSize says %d",
			len(frame), wire.ResponseWireSize(resp)))
	}
}

func sameRequest(a, b *wire.Request) bool {
	if a.Conn != b.Conn || a.Seq != b.Seq || a.Epoch != b.Epoch || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		x, y := &a.Ops[i], &b.Ops[i]
		if x.Code != y.Code || x.Flags != y.Flags || x.Mode != y.Mode ||
			x.RKey != y.RKey || x.Target != y.Target || x.Len != y.Len ||
			x.FreeList != y.FreeList || x.RedirectTo != y.RedirectTo ||
			!bytes.Equal(x.Data, y.Data) ||
			!bytes.Equal(x.CompareMask, y.CompareMask) ||
			!bytes.Equal(x.SwapMask, y.SwapMask) {
			return false
		}
	}
	return true
}

func sameResponse(a, b *wire.Response) bool {
	if a.Conn != b.Conn || a.Seq != b.Seq || a.Epoch != b.Epoch || len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		x, y := &a.Results[i], &b.Results[i]
		if x.Status != y.Status || x.Addr != y.Addr || !bytes.Equal(x.Data, y.Data) {
			return false
		}
	}
	return true
}
