package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"prism/internal/memory"
	"prism/internal/wire"
)

// Stream framing. A frame is
//
//	u32 LE length | u8 kind | payload
//
// where length counts the kind byte plus the payload. Request and
// response payloads are the canonical internal/wire encodings; control
// frames (hello/welcome/connect/accept) use the fixed layouts below.
// The framer never allocates in steady state: FrameWriter appends into
// one reusable buffer, FrameReader reads into one reusable buffer that
// the returned payload (and any alias-decoded message) borrows until
// the next call.
//
// Both sides batch at the syscall boundary — the software analogue of
// doorbell batching, where one MMIO ring covers a chain of posted work
// requests:
//
//   - FrameWriter separates staging from flushing: Stage* appends a
//     frame behind any already staged, Flush issues one Write for the
//     whole train. Send* (= Stage + Flush) keeps the one-frame path.
//   - FrameReader reads socket-sized chunks into its buffer, so one
//     read syscall can deliver many frames; Buffered reports whether
//     the next frame is already decodable without touching the socket,
//     which is what lets the server drain a whole wakeup's worth of
//     requests before flushing the responses.
const (
	frameHello    = 0x01 // client → server, once per socket: magic + version
	frameWelcome  = 0x02 // server → client: hello accepted
	frameConnect  = 0x03 // client → server: open a logical connection
	frameAccept   = 0x04 // server → client: conn id, temp addr, temp key
	frameRequest  = 0x05 // client → server: wire.Request
	frameResponse = 0x06 // server → client: wire.Response
)

// helloMagic identifies the protocol and its version. A server refuses
// sockets that do not lead with it, so a stray client of some other
// protocol fails fast instead of desyncing the framer.
var helloMagic = []byte("PRSM\x01")

// MaxFrame bounds a frame's length prefix. A request is at most 64 ops
// of ≤1 MiB inline payload+masks each (wire.maxInline), so 16 MiB
// rejects nothing the codec would accept for sane op counts while
// keeping a corrupt or hostile length prefix from ballooning the read
// buffer.
const MaxFrame = 16 << 20

// frameHeaderLen is the length prefix size.
const frameHeaderLen = 4

// readChunk is the FrameReader's read granularity: one read syscall
// asks the socket for up to this much, so a burst of small frames
// arrives in one syscall instead of two (header + body) each.
const readChunk = 64 << 10

var (
	// ErrFrameTooBig reports a length prefix above MaxFrame (or an
	// attempt to send one).
	ErrFrameTooBig = errors.New("transport: frame exceeds MaxFrame")
	// ErrBadFrame reports a structurally invalid frame: a zero length
	// prefix or a control payload of the wrong shape.
	ErrBadFrame = errors.New("transport: malformed frame")
)

// FrameReader reads length-prefixed frames from a stream through an
// internal chunk buffer. Not safe for concurrent use; each socket gets
// its own.
type FrameReader struct {
	r          io.Reader
	buf        []byte // chunk storage, len == cap
	start, end int    // unconsumed window

	// Syscall telemetry: Read calls issued and bytes they returned.
	// Atomic because the reader's owner goroutine updates them while a
	// reporting goroutine may sample them.
	Reads     atomic.Int64
	BytesRead atomic.Int64
}

// NewFrameReader returns a framer over r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// fill ensures need unconsumed bytes are buffered, compacting and
// growing the chunk buffer as required. It returns io.EOF only when the
// stream ends with the window empty; an end mid-window is
// io.ErrUnexpectedEOF (a length prefix or partial frame promised more).
func (fr *FrameReader) fill(need int) error {
	if fr.end-fr.start >= need {
		return nil
	}
	if len(fr.buf)-fr.start < need {
		// Not enough room after start: slide the window down, and grow
		// the buffer when the frame itself outsizes it.
		if len(fr.buf) < need {
			grown := 2 * len(fr.buf)
			if grown < need {
				grown = need
			}
			if grown < readChunk {
				grown = readChunk
			}
			nb := make([]byte, grown)
			copy(nb, fr.buf[fr.start:fr.end])
			fr.buf = nb
		} else {
			copy(fr.buf, fr.buf[fr.start:fr.end])
		}
		fr.end -= fr.start
		fr.start = 0
	}
	for fr.end-fr.start < need {
		m, err := fr.r.Read(fr.buf[fr.end:])
		if m > 0 {
			fr.Reads.Add(1)
			fr.BytesRead.Add(int64(m))
			fr.end += m
		}
		if fr.end-fr.start >= need {
			return nil // satisfied; a sticky error resurfaces next call
		}
		if err != nil {
			if err == io.EOF && fr.end > fr.start {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// Next reads one frame and returns its kind and payload. The payload
// aliases the reader's internal buffer and is valid only until the next
// call. A clean end of stream at a frame boundary returns io.EOF; a
// stream truncated mid-frame returns io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (kind byte, payload []byte, err error) {
	if err := fr.fill(frameHeaderLen); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(fr.buf[fr.start:])
	if n == 0 {
		return 0, nil, ErrBadFrame
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooBig
	}
	total := frameHeaderLen + int(n)
	if err := fr.fill(total); err != nil {
		return 0, nil, err
	}
	body := fr.buf[fr.start+frameHeaderLen : fr.start+total]
	fr.start += total
	return body[0], body[1:], nil
}

// Buffered reports whether the next Next call can complete from the
// buffer alone — a whole frame (or a length prefix Next will reject) is
// already in memory, so serving it costs no read syscall. The server's
// wakeup loop drains frames while this holds, then flushes its staged
// responses in one write.
func (fr *FrameReader) Buffered() bool {
	avail := fr.end - fr.start
	if avail < frameHeaderLen {
		return false
	}
	n := binary.LittleEndian.Uint32(fr.buf[fr.start:])
	if n == 0 || n > MaxFrame {
		return true // Next returns the framing error without reading
	}
	return avail >= frameHeaderLen+int(n)
}

// FrameWriter writes length-prefixed frames to a stream, staging any
// number of frames into one reusable buffer and flushing them with a
// single Write. Not safe for concurrent use; callers sharing a socket
// serialize sends themselves (the client's concurrent path goes through
// flusher instead).
type FrameWriter struct {
	w      io.Writer
	buf    []byte // staged frames: prefix + kind + payload, repeated
	staged int    // frames staged since the last flush

	// Syscall telemetry: completed flushes (one Write each), and the
	// frames and bytes they carried.
	Writes       int64
	FramesOut    int64
	BytesFlushed int64
}

// NewFrameWriter returns a framer over w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// beginFrame appends the length placeholder and kind byte, returning
// the frame's start offset for endFrame.
func (fw *FrameWriter) beginFrame(kind byte) int {
	start := len(fw.buf)
	fw.buf = append(fw.buf, 0, 0, 0, 0, kind)
	return start
}

// endFrame patches the staged frame's length prefix, unwinding the
// frame (earlier staged frames intact) if it exceeds MaxFrame.
func (fw *FrameWriter) endFrame(start int) error {
	n := len(fw.buf) - start - frameHeaderLen
	if n > MaxFrame {
		fw.buf = fw.buf[:start]
		return ErrFrameTooBig
	}
	binary.LittleEndian.PutUint32(fw.buf[start:], uint32(n))
	fw.staged++
	return nil
}

// Stage appends a control frame behind any already-staged frames
// without writing.
func (fw *FrameWriter) Stage(kind byte, payload []byte) error {
	start := fw.beginFrame(kind)
	fw.buf = append(fw.buf, payload...)
	return fw.endFrame(start)
}

// StageRequest encodes req with the canonical codec and stages it as
// one frame. Allocation-free in steady state: the staging buffer is
// reused across flushes.
func (fw *FrameWriter) StageRequest(req *wire.Request) error {
	start := fw.beginFrame(frameRequest)
	fw.buf = wire.AppendRequest(fw.buf, req)
	return fw.endFrame(start)
}

// StageResponse encodes resp and stages it as one frame.
func (fw *FrameWriter) StageResponse(resp *wire.Response) error {
	start := fw.beginFrame(frameResponse)
	fw.buf = wire.AppendResponse(fw.buf, resp)
	return fw.endFrame(start)
}

// Staged returns the number of frames staged since the last flush.
func (fw *FrameWriter) Staged() int { return fw.staged }

// Flush writes every staged frame in a single Write — the doorbell.
// A no-op when nothing is staged.
func (fw *FrameWriter) Flush() error {
	if fw.staged == 0 {
		return nil
	}
	n, frames := len(fw.buf), fw.staged
	_, err := fw.w.Write(fw.buf)
	fw.buf = fw.buf[:0]
	fw.staged = 0
	if err != nil {
		return err
	}
	fw.Writes++
	fw.FramesOut += int64(frames)
	fw.BytesFlushed += int64(n)
	return nil
}

// Send writes a control frame with the given kind and payload
// immediately (stage + flush).
func (fw *FrameWriter) Send(kind byte, payload []byte) error {
	if err := fw.Stage(kind, payload); err != nil {
		return err
	}
	return fw.Flush()
}

// SendRequest encodes req and writes it immediately as one frame.
func (fw *FrameWriter) SendRequest(req *wire.Request) error {
	if err := fw.StageRequest(req); err != nil {
		return err
	}
	return fw.Flush()
}

// SendResponse encodes resp and writes it immediately as one frame.
func (fw *FrameWriter) SendResponse(resp *wire.Response) error {
	if err := fw.StageResponse(resp); err != nil {
		return err
	}
	return fw.Flush()
}

// Accept frame payload: conn id u64 LE | temp addr u64 LE | temp key
// u32 LE.
const acceptLen = 8 + 8 + 4

func appendAccept(dst []byte, id uint64, tempAddr memory.Addr, tempKey memory.RKey) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tempAddr))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(tempKey))
	return dst
}

func decodeAccept(b []byte) (id uint64, tempAddr memory.Addr, tempKey memory.RKey, err error) {
	if len(b) != acceptLen {
		return 0, 0, 0, fmt.Errorf("%w: accept frame is %d bytes, want %d", ErrBadFrame, len(b), acceptLen)
	}
	id = binary.LittleEndian.Uint64(b)
	tempAddr = memory.Addr(binary.LittleEndian.Uint64(b[8:]))
	tempKey = memory.RKey(binary.LittleEndian.Uint32(b[16:]))
	return id, tempAddr, tempKey, nil
}
