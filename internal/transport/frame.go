package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"prism/internal/memory"
	"prism/internal/wire"
)

// Stream framing. A frame is
//
//	u32 LE length | u8 kind | payload
//
// where length counts the kind byte plus the payload. Request and
// response payloads are the canonical internal/wire encodings; control
// frames (hello/welcome/connect/accept) use the fixed layouts below.
// The framer never allocates in steady state: FrameWriter appends into
// one reusable buffer and issues a single Write per frame, FrameReader
// reads into one reusable buffer that the returned payload (and any
// alias-decoded message) borrows until the next call.
const (
	frameHello    = 0x01 // client → server, once per socket: magic + version
	frameWelcome  = 0x02 // server → client: hello accepted
	frameConnect  = 0x03 // client → server: open a logical connection
	frameAccept   = 0x04 // server → client: conn id, temp addr, temp key
	frameRequest  = 0x05 // client → server: wire.Request
	frameResponse = 0x06 // server → client: wire.Response
)

// helloMagic identifies the protocol and its version. A server refuses
// sockets that do not lead with it, so a stray client of some other
// protocol fails fast instead of desyncing the framer.
var helloMagic = []byte("PRSM\x01")

// MaxFrame bounds a frame's length prefix. A request is at most 64 ops
// of ≤1 MiB inline payload+masks each (wire.maxInline), so 16 MiB
// rejects nothing the codec would accept for sane op counts while
// keeping a corrupt or hostile length prefix from ballooning the read
// buffer.
const MaxFrame = 16 << 20

var (
	// ErrFrameTooBig reports a length prefix above MaxFrame (or an
	// attempt to send one).
	ErrFrameTooBig = errors.New("transport: frame exceeds MaxFrame")
	// ErrBadFrame reports a structurally invalid frame: a zero length
	// prefix or a control payload of the wrong shape.
	ErrBadFrame = errors.New("transport: malformed frame")
)

// FrameReader reads length-prefixed frames from a stream. Not safe for
// concurrent use; each socket gets its own.
type FrameReader struct {
	r   io.Reader
	hdr [4]byte
	buf []byte // reused frame body storage
}

// NewFrameReader returns a framer over r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next reads one frame and returns its kind and payload. The payload
// aliases the reader's internal buffer and is valid only until the next
// call. A clean end of stream at a frame boundary returns io.EOF; a
// stream truncated mid-frame returns io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (kind byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:])
	if n == 0 {
		return 0, nil, ErrBadFrame
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooBig
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // length prefix promised a body
		}
		return 0, nil, err
	}
	return fr.buf[0], fr.buf[1:], nil
}

// FrameWriter writes length-prefixed frames to a stream. Not safe for
// concurrent use; callers sharing a socket serialize sends themselves.
type FrameWriter struct {
	w   io.Writer
	buf []byte // reused encode buffer: prefix + kind + payload
}

// NewFrameWriter returns a framer over w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// send frames buf (already holding prefix placeholder + kind + payload),
// patching the length, as a single Write.
func (fw *FrameWriter) send() error {
	if len(fw.buf)-4 > MaxFrame {
		return ErrFrameTooBig
	}
	binary.LittleEndian.PutUint32(fw.buf, uint32(len(fw.buf)-4))
	_, err := fw.w.Write(fw.buf)
	return err
}

// Send writes a control frame with the given kind and payload.
func (fw *FrameWriter) Send(kind byte, payload []byte) error {
	fw.buf = append(fw.buf[:0], 0, 0, 0, 0, kind)
	fw.buf = append(fw.buf, payload...)
	return fw.send()
}

// SendRequest encodes req with the canonical codec and writes it as one
// frame. Allocation-free in steady state: the encode buffer is reused
// across calls.
func (fw *FrameWriter) SendRequest(req *wire.Request) error {
	fw.buf = append(fw.buf[:0], 0, 0, 0, 0, frameRequest)
	fw.buf = wire.AppendRequest(fw.buf, req)
	return fw.send()
}

// SendResponse encodes resp and writes it as one frame.
func (fw *FrameWriter) SendResponse(resp *wire.Response) error {
	fw.buf = append(fw.buf[:0], 0, 0, 0, 0, frameResponse)
	fw.buf = wire.AppendResponse(fw.buf, resp)
	return fw.send()
}

// Accept frame payload: conn id u64 LE | temp addr u64 LE | temp key
// u32 LE.
const acceptLen = 8 + 8 + 4

func appendAccept(dst []byte, id uint64, tempAddr memory.Addr, tempKey memory.RKey) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tempAddr))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(tempKey))
	return dst
}

func decodeAccept(b []byte) (id uint64, tempAddr memory.Addr, tempKey memory.RKey, err error) {
	if len(b) != acceptLen {
		return 0, 0, 0, fmt.Errorf("%w: accept frame is %d bytes, want %d", ErrBadFrame, len(b), acceptLen)
	}
	id = binary.LittleEndian.Uint64(b)
	tempAddr = memory.Addr(binary.LittleEndian.Uint64(b[8:]))
	tempKey = memory.RKey(binary.LittleEndian.Uint32(b[16:]))
	return id, tempAddr, tempKey, nil
}
