package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"prism/internal/prism"
	"prism/internal/wire"
)

// testFrames is a representative frame sequence: control frames and a
// real encoded request.
func testFrames(t testing.TB) ([]byte, [][2]interface{}) {
	t.Helper()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	req := &wire.Request{Conn: 7, Seq: 3, Epoch: 1, Ops: []wire.Op{
		prism.ReadBounded(9, 0x1000, 256),
	}}
	frames := [][2]interface{}{
		{byte(frameHello), append([]byte(nil), helloMagic...)},
		{byte(frameConnect), []byte(nil)},
		{byte(frameAccept), appendAccept(nil, 5, 0x2000, 9)},
	}
	for _, f := range frames {
		if err := fw.Send(f[0].(byte), f[1].([]byte)); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := fw.SendRequest(req); err != nil {
		t.Fatalf("SendRequest: %v", err)
	}
	frames = append(frames, [2]interface{}{byte(frameRequest), wire.AppendRequest(nil, req)})
	return buf.Bytes(), frames
}

func TestFrameRoundTrip(t *testing.T) {
	raw, frames := testFrames(t)
	fr := NewFrameReader(bytes.NewReader(raw))
	for i, want := range frames {
		kind, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != want[0].(byte) {
			t.Fatalf("frame %d: kind 0x%02x, want 0x%02x", i, kind, want[0].(byte))
		}
		if !bytes.Equal(payload, want[1].([]byte)) {
			t.Fatalf("frame %d: payload %x, want %x", i, payload, want[1].([]byte))
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("at end of stream: err = %v, want io.EOF", err)
	}
}

// TestFrameTruncationEveryOffset cuts the stream at every byte offset:
// a cut at a frame boundary must read as a clean io.EOF, a cut anywhere
// inside a frame as io.ErrUnexpectedEOF, and the frames before the cut
// must all arrive intact.
func TestFrameTruncationEveryOffset(t *testing.T) {
	raw, frames := testFrames(t)
	// Compute the frame boundaries (offset after each complete frame).
	boundaries := map[int]int{0: 0} // offset -> frames completed
	off := 0
	for i, f := range frames {
		off += 4 + 1 + len(f[1].([]byte))
		boundaries[off] = i + 1
	}
	for cut := 0; cut <= len(raw); cut++ {
		fr := NewFrameReader(bytes.NewReader(raw[:cut]))
		n := 0
		var err error
		for {
			_, payload, e := fr.Next()
			if e != nil {
				err = e
				break
			}
			if want := frames[n][1].([]byte); !bytes.Equal(payload, want) {
				t.Fatalf("cut %d: frame %d corrupted", cut, n)
			}
			n++
		}
		if complete, ok := boundaries[cut]; ok {
			if err != io.EOF {
				t.Fatalf("cut %d (boundary): err = %v, want io.EOF", cut, err)
			}
			if n != complete {
				t.Fatalf("cut %d: read %d frames, want %d", cut, n, complete)
			}
		} else if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d (mid-frame): err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestFrameDribble feeds the frame stream through a net.Pipe one byte
// at a time, so every read — length prefix included — is split.
func TestFrameDribble(t *testing.T) {
	raw, frames := testFrames(t)
	cr, cw := net.Pipe()
	go func() {
		defer cw.Close()
		for i := range raw {
			if _, err := cw.Write(raw[i : i+1]); err != nil {
				return
			}
		}
	}()
	cr.SetReadDeadline(time.Now().Add(10 * time.Second))
	fr := NewFrameReader(cr)
	for i, want := range frames {
		kind, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != want[0].(byte) || !bytes.Equal(payload, want[1].([]byte)) {
			t.Fatalf("frame %d corrupted by dribbled reads", i)
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("at end of stream: err = %v, want io.EOF", err)
	}
}

// chunkReader returns its backing bytes in fixed-size chunks, splitting
// length prefixes across reads at every chunk size 1..7.
type chunkReader struct {
	b     []byte
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.b) == 0 {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(c.b) {
		n = len(c.b)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.b[:n])
	c.b = c.b[n:]
	return n, nil
}

func TestFrameSplitPrefix(t *testing.T) {
	raw, frames := testFrames(t)
	for chunk := 1; chunk <= 7; chunk++ {
		fr := NewFrameReader(&chunkReader{b: raw, chunk: chunk})
		for i, want := range frames {
			kind, payload, err := fr.Next()
			if err != nil {
				t.Fatalf("chunk %d frame %d: %v", chunk, i, err)
			}
			if kind != want[0].(byte) || !bytes.Equal(payload, want[1].([]byte)) {
				t.Fatalf("chunk %d: frame %d corrupted", chunk, i)
			}
		}
	}
}

func TestFrameOversizedRejected(t *testing.T) {
	// Reader side: a hostile length prefix must be refused before any
	// buffer balloons.
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0x01, 0x00, 0x00, 0x01 // 1<<24 + 1 > MaxFrame
	fr := NewFrameReader(bytes.NewReader(hdr[:]))
	if _, _, err := fr.Next(); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized prefix: err = %v, want ErrFrameTooBig", err)
	}
	// Writer side: an oversized frame is refused before hitting the wire.
	var sink bytes.Buffer
	fw := NewFrameWriter(&sink)
	if err := fw.Send(frameRequest, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized send: err = %v, want ErrFrameTooBig", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("oversized send wrote %d bytes", sink.Len())
	}
}

func TestFrameZeroLengthRejected(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader([]byte{0, 0, 0, 0}))
	if _, _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero-length frame: err = %v, want ErrBadFrame", err)
	}
}

// FuzzFrameReader throws arbitrary bytes at the framer: it must never
// panic, and any frame it does accept must obey its length prefix.
func FuzzFrameReader(f *testing.F) {
	raw, _ := testFrames(f)
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, frameHello})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			_, payload, err := fr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					!errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameTooBig) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(payload)+1 > MaxFrame {
				t.Fatalf("accepted frame larger than MaxFrame")
			}
		}
	})
}

// TestFramedSendAllocs pins the zero-allocation guarantee for the live
// send path: framing and encoding a GET and a PUT chain must not
// allocate once the writer's buffer has warmed up.
func TestFramedSendAllocs(t *testing.T) {
	fw := NewFrameWriter(io.Discard)

	get := &wire.Request{Conn: 1, Seq: 1, Ops: []wire.Op{
		prism.ReadBounded(3, 0x40, 1024),
	}}
	var ptrBuf [8]byte
	pre := make([]byte, 24)
	entry := make([]byte, 64)
	putOps := []wire.Op{
		prism.Write(4, 0x80, pre),
		prism.Conditional(prism.RedirectTo(prism.Allocate(1, entry), 4, 0x88)),
		prism.Conditional(prism.CASIndirectDataBuf(&ptrBuf, 3, 0x100, wire.CASGt, 0x80,
			prism.FieldMask(24, 0, 8), prism.FullMask(24))),
	}
	put := &wire.Request{Conn: 1, Seq: 2, Ops: putOps}

	for name, req := range map[string]*wire.Request{"get": get, "put-chain": put} {
		req := req
		send := func() {
			if err := fw.SendRequest(req); err != nil {
				t.Fatalf("SendRequest: %v", err)
			}
		}
		send() // warm the reused encode buffer
		if n := testing.AllocsPerRun(100, send); n != 0 {
			t.Errorf("%s framed send allocates %.1f times per op, want 0", name, n)
		}
	}
}
