package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"prism/internal/memory"
	"prism/internal/wire"
)

// liveWindowDepth bounds outstanding requests per logical connection.
// Streams deliver exactly-once so there is no replay ring to cover; the
// window only bounds client-side pipelining (and keeps the shared temp
// buffer's slot discipline identical to the simulated transport).
const liveWindowDepth = 64

// ErrClientClosed reports an operation on a closed client.
var ErrClientClosed = errors.New("transport: client closed")

// Client is a live PRISM client endpoint: one stream socket carrying
// any number of logical connections (queue pairs). A demux goroutine
// routes response frames to their issuing connection; issues from many
// goroutines interleave on the socket through the doorbell-batched
// flusher (see flush.go) — frames staged while a Write is in flight
// coalesce into the next one. Safe for concurrent use, but an
// individual Conn is single-owner, like a queue pair.
type Client struct {
	nc net.Conn
	fr *FrameReader
	fl *flusher

	mu    sync.Mutex // guards conns and err
	conns map[uint64]*Conn
	errv  error

	connectMu sync.Mutex // serializes Connect handshakes
	acceptCh  chan acceptInfo
	down      chan struct{} // closed when the socket dies
	downOnce  sync.Once

	resp wire.Response   // demux alias-decode scratch
	wcR  *wireCheckState // receive side, demux only
}

type acceptInfo struct {
	id       uint64
	tempAddr memory.Addr
	tempKey  memory.RKey
}

// Network guesses the network for an address: addresses containing a
// path separator are unix socket paths, everything else is tcp.
func Network(addr string) string {
	if strings.ContainsRune(addr, '/') {
		return "unix"
	}
	return "tcp"
}

// Dial connects to a live server at addr, inferring tcp vs unix from
// the address shape (see Network).
func Dial(addr string) (*Client, error) {
	return DialNetwork(Network(addr), addr)
}

// DialNetwork connects to a live server and performs the protocol
// handshake.
func DialNetwork(network, addr string) (*Client, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClientConn(nc)
}

// NewClientConn performs the client handshake over an established
// connection (a dialed socket, or one end of a net.Pipe in tests) and
// starts the demux and flusher goroutines.
func NewClientConn(nc net.Conn) (*Client, error) {
	c := &Client{
		nc:       nc,
		fr:       NewFrameReader(nc),
		conns:    make(map[uint64]*Conn),
		acceptCh: make(chan acceptInfo, 1),
		down:     make(chan struct{}),
	}
	// The handshake happens before the flusher exists, so a plain
	// framer writes the hello directly.
	if err := NewFrameWriter(nc).Send(frameHello, helloMagic); err != nil {
		nc.Close()
		return nil, err
	}
	kind, _, err := c.fr.Next()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if kind != frameWelcome {
		nc.Close()
		return nil, fmt.Errorf("transport: unexpected handshake frame 0x%02x", kind)
	}
	c.fl = newFlusher(nc, c.fail)
	go c.demux()
	return c, nil
}

// SetFlushPolicy bounds how much one write syscall may carry: at most
// maxFrames frames and maxBytes bytes per flush (zero keeps the current
// value). Dispatch is adaptive — an idle socket still flushes
// immediately — so the policy caps batch size rather than adding
// latency. maxFrames 1 degenerates to the unbatched write-per-frame
// datapath.
func (c *Client) SetFlushPolicy(maxFrames, maxBytes int) {
	c.fl.setPolicy(maxFrames, maxBytes)
}

// FlushStats returns the socket's doorbell telemetry: write syscalls
// issued, and the frames and bytes they carried. frames/writes is the
// realized batching factor (frames_per_write).
func (c *Client) FlushStats() (writes, frames, bytes int64) {
	return c.fl.stats()
}

// ReadStats returns the demux side's syscall telemetry: read syscalls
// issued and bytes they returned.
func (c *Client) ReadStats() (reads, bytes int64) {
	return c.fr.Reads.Load(), c.fr.BytesRead.Load()
}

// Err returns the error that took the client down, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errv
}

// fail records the first fatal error and closes the socket; the demux
// goroutine observes the closed socket and fails outstanding requests.
// The error is recorded before any waiter can be signaled, so an issuer
// that finds errv nil under a connection lock is guaranteed its entry
// will be seen by the teardown sweep.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.errv == nil {
		c.errv = err
	}
	c.mu.Unlock()
	c.downOnce.Do(func() { close(c.down) })
	if c.fl != nil {
		c.fl.poison(err)
	}
	c.nc.Close()
}

// closeDrainGrace bounds how long Close waits for staged frames to
// drain. A var so tests can shorten it.
var closeDrainGrace = 2 * time.Second

// Close tears the client down; outstanding issues fail with
// ErrClientClosed. Staged frames (reclamation batches and other
// fire-and-forget traffic) are flushed first, but the drain is bounded:
// a write deadline on the socket caps it, so a peer that stopped
// reading (send buffer full, writer stuck in Write) fails the flusher
// at the deadline instead of hanging Close forever.
func (c *Client) Close() error {
	c.nc.SetWriteDeadline(time.Now().Add(closeDrainGrace))
	c.fl.close()
	c.fail(ErrClientClosed)
	return nil
}

// Connect opens a logical connection (queue pair) on the socket.
func (c *Client) Connect() (*Conn, error) {
	c.connectMu.Lock()
	defer c.connectMu.Unlock()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if err := c.fl.stageControl(frameConnect, nil); err != nil {
		c.fail(err)
		return nil, err
	}
	select {
	case a := <-c.acceptCh:
		cn := &Conn{c: c, id: a.id, TempAddr: a.tempAddr, TempKey: a.tempKey}
		cn.win = NewWindow[liveWait](a.id, liveWindowDepth, cn.transmit)
		c.mu.Lock()
		c.conns[a.id] = cn
		c.mu.Unlock()
		return cn, nil
	case <-c.down:
		return nil, c.Err()
	}
}

// Conn is a logical connection to the server. Like a real queue pair —
// and like the simulated rdma.Conn — it is single-owner: one goroutine
// issues on it at a time (the demux goroutine completes into it under
// the connection lock).
type Conn struct {
	c  *Client
	id uint64

	// TempAddr/TempKey locate this connection's temporary buffer on the
	// server, the redirect target for chains (§3.4).
	TempAddr memory.Addr
	TempKey  memory.RKey

	mu  sync.Mutex // guards win and batching (owner goroutine vs demux)
	win *Window[liveWait]

	// batching suppresses the per-frame doorbell while IssueBatch
	// stages its chain train; the batch rings once at the end.
	batching bool

	// IssueBatch scratch, reused across batches.
	batchEntries []*Entry[liveWait]
	batchResults [][]wire.Result
}

// liveWait is the live transport's per-entry completion state: a
// reusable one-slot channel the issuer blocks on, and entry-owned
// storage the demux goroutine copies results into (the alias-decoded
// response borrows the socket read buffer, which the next frame
// overwrites). All of it — channel included — survives entry recycling,
// so a warmed window issues without allocating.
type liveWait struct {
	done    chan error
	results []wire.Result
	data    []byte
	async   bool
}

// store copies results (whose Data alias the socket read buffer) into
// entry-owned storage.
func (lw *liveWait) store(results []wire.Result) {
	need := 0
	for i := range results {
		need += len(results[i].Data)
	}
	if cap(lw.data) < need {
		lw.data = make([]byte, need)
	}
	lw.data = lw.data[:need]
	if cap(lw.results) < len(results) {
		lw.results = make([]wire.Result, len(results))
	}
	lw.results = lw.results[:len(results)]
	off := 0
	for i := range results {
		r := &results[i]
		var d []byte
		if len(r.Data) > 0 {
			d = lw.data[off : off+len(r.Data)]
			copy(d, r.Data)
			off += len(r.Data)
		}
		lw.results[i] = wire.Result{Status: r.Status, Addr: r.Addr, Data: d}
	}
}

// Ops returns an n-op scratch slice owned by the connection, zeroed and
// ready to fill — hand it to the next Issue on this connection (see
// transport.Window.Ops).
func (cn *Conn) Ops(n int) []wire.Op {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.win.Ops(n)
}

// Issue transmits a chain of ops and blocks until the response arrives.
// The returned results (including payload views) are valid until the
// next issue on this connection, matching the simulated transport's
// borrowing contract.
func (cn *Conn) Issue(ops []wire.Op) ([]wire.Result, error) {
	e, err := cn.enqueue(ops, false)
	if err != nil {
		return nil, err
	}
	if err := <-e.X.done; err != nil {
		return nil, err
	}
	return e.X.results, nil
}

// IssueAsync transmits ops fire-and-forget: the response is consumed by
// the demux goroutine and discarded (reclamation batches and other
// best-effort traffic). Transport errors are reported by the next
// synchronous Issue.
func (cn *Conn) IssueAsync(ops []wire.Op) error {
	_, err := cn.enqueue(ops, true)
	return err
}

// IssueBatch transmits a train of chains behind one doorbell — the
// software analogue of posting a linked chain of work requests and
// ringing the NIC once. Every chain is staged into the socket's flush
// buffer with the doorbell suppressed, the writer is rung once, and the
// call blocks until every chain's response arrives. chains[i]'s results
// land in slot i of the returned slice; chains beyond the send window
// (liveWindowDepth) pipeline as earlier ones complete. The chain op
// slices are caller-owned and must stay valid until IssueBatch returns.
// All result views follow the usual borrowing rule — valid until the
// next issue on this connection — and the top-level slice is reused by
// the next IssueBatch. On any transport error the whole batch fails
// with that error.
func (cn *Conn) IssueBatch(chains [][]wire.Op) ([][]wire.Result, error) {
	if len(chains) == 0 {
		return nil, nil
	}
	for _, ops := range chains {
		if len(ops) == 0 {
			return nil, errors.New("transport: empty chain in batch")
		}
	}
	cn.mu.Lock()
	if err := cn.c.Err(); err != nil {
		cn.mu.Unlock()
		return nil, err
	}
	entries := cn.batchEntries[:0]
	cn.batching = true
	for _, ops := range chains {
		e := cn.win.Prepare(ops)
		if e.X.done == nil {
			e.X.done = make(chan error, 1)
		}
		e.X.async = false
		entries = append(entries, e)
		cn.win.Enqueue(e)
	}
	cn.batching = false
	cn.batchEntries = entries
	cn.mu.Unlock()
	cn.c.fl.kick() // the one doorbell for the whole train

	results := cn.batchResults[:0]
	var firstErr error
	for _, e := range entries {
		if err := <-e.X.done; err != nil && firstErr == nil {
			firstErr = err
		}
		results = append(results, e.X.results)
	}
	cn.batchResults = results
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

func (cn *Conn) enqueue(ops []wire.Op, async bool) (*Entry[liveWait], error) {
	if len(ops) == 0 {
		return nil, errors.New("transport: empty request")
	}
	cn.mu.Lock()
	if err := cn.c.Err(); err != nil {
		cn.mu.Unlock()
		return nil, err
	}
	e := cn.win.Prepare(ops)
	if e.X.done == nil {
		e.X.done = make(chan error, 1)
	}
	e.X.async = async
	cn.win.Enqueue(e)
	cn.mu.Unlock()
	return e, nil
}

// transmit is the window's transmit hook; called with cn.mu held. It
// stages the frame into the socket's flush buffer; the doorbell rings
// per frame except while IssueBatch accumulates its train.
func (cn *Conn) transmit(e *Entry[liveWait]) {
	if err := cn.c.fl.stageRequest(e.Req, !cn.batching); err != nil {
		// The entry is already pending; failing the client wakes the
		// demux goroutine, whose teardown sweep fails it.
		cn.c.fail(err)
	}
}

// demux routes incoming frames: accept frames to the waiting Connect,
// responses to their issuing connection. On socket death it fails every
// outstanding request.
func (c *Client) demux() {
	for {
		kind, body, err := c.fr.Next()
		if err != nil {
			c.teardown(err)
			return
		}
		switch kind {
		case frameAccept:
			id, ta, tk, err := decodeAccept(body)
			if err != nil {
				c.teardown(err)
				return
			}
			select {
			case c.acceptCh <- acceptInfo{id: id, tempAddr: ta, tempKey: tk}:
			default:
				c.teardown(errors.New("transport: unsolicited accept frame"))
				return
			}
		case frameResponse:
			if err := wire.DecodeResponseAlias(&c.resp, body); err != nil {
				c.teardown(err)
				return
			}
			if WireCheckEnabled() {
				if c.wcR == nil {
					c.wcR = &wireCheckState{}
				}
				c.wcR.checkResponseBytes(&c.resp, body)
			}
			c.mu.Lock()
			cn := c.conns[c.resp.Conn]
			c.mu.Unlock()
			if cn == nil {
				c.teardown(fmt.Errorf("transport: response for unknown connection %d", c.resp.Conn))
				return
			}
			cn.complete(&c.resp)
		default:
			c.teardown(fmt.Errorf("transport: unexpected frame 0x%02x", kind))
			return
		}
	}
}

// complete hands a response to its entry: copy results into entry-owned
// storage, recycle, refill the window, wake the issuer.
func (cn *Conn) complete(resp *wire.Response) {
	cn.mu.Lock()
	e := cn.win.Take(resp.Seq)
	if e == nil {
		cn.mu.Unlock()
		return // stream transports never duplicate; tolerate anyway
	}
	async := e.X.async
	if !async {
		e.X.store(resp.Results)
	}
	cn.win.Recycle(e)
	cn.win.Drain()
	cn.mu.Unlock()
	if !async {
		e.X.done <- nil
	}
}

// teardown records the fatal error and fails every outstanding request
// on every connection.
func (c *Client) teardown(err error) {
	c.fail(err)
	err = c.Err() // first error wins
	c.mu.Lock()
	conns := make([]*Conn, 0, len(c.conns))
	for _, cn := range c.conns {
		conns = append(conns, cn)
	}
	c.mu.Unlock()
	var waiters []*Entry[liveWait]
	for _, cn := range conns {
		cn.mu.Lock()
		cn.win.Drop(func(e *Entry[liveWait]) {
			if !e.X.async {
				waiters = append(waiters, e)
			}
		})
		cn.mu.Unlock()
	}
	for _, e := range waiters {
		e.X.done <- err
	}
}
