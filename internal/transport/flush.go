package transport

import (
	"encoding/binary"
	"io"
	"sync"

	"prism/internal/wire"
)

// Client-side doorbell batching. The live client used to issue one
// Write syscall per frame: every issuer serialized on the socket mutex
// and paid the full boundary crossing alone. PRISM's hardware story
// amortizes exactly this cost with doorbell batching — one MMIO ring
// covers a chain of posted work requests — and the multiplexed-socket
// layout makes the software analogue free concurrency: many logical
// connections already share each socket, so their frames can share a
// syscall too.
//
// flusher is that analogue. Issuers append encoded frames to a shared
// staging buffer and ring the doorbell (a cond signal); one writer
// goroutine per socket flushes staged frames with a single vectored
// Write per wakeup. The flush policy is adaptive with no timer:
//
//   - An idle socket dispatches immediately — the writer is parked, the
//     first staged frame wakes it, and it writes that frame alone. No
//     batching delay is ever added to an idle connection.
//   - A busy socket coalesces for free — frames staged while a Write is
//     in flight accumulate, and the writer takes the whole backlog (up
//     to the maxFrames/maxBytes occupancy thresholds) in its next
//     Write. The queue draining is what closes a batch, not a clock.
//
// Issuers never block on staging (the send windows already bound total
// in-flight frames per connection), so a stalled peer can not deadlock
// the demux goroutine against its own socket.
type flusher struct {
	nc      io.Writer
	onError func(error) // invoked without mu on a write failure, once

	mu    sync.Mutex
	wake  *sync.Cond // writer parks here when fully drained
	idle  *sync.Cond // close waiters park here until drained or dead
	stage []byte     // staged frame bytes; written prefix immutable
	ends  []int      // end offset in stage of each staged frame
	done  int        // frames already written (index into ends)

	maxFrames int // flush threshold: most frames one Write may carry
	maxBytes  int // flush threshold: most bytes one Write may carry

	closed bool
	err    error

	wc *wireCheckState // send-side wirecheck scratch, under mu

	writes, frames, bytes int64 // syscall telemetry, under mu
}

// Default flush thresholds. Generous on purpose: the threshold is a
// cap on batch size, not a trigger — dispatch latency comes from the
// queue-drain policy above, so a large cap only bounds how much one
// Write can carry. 1 (frames) degenerates to write-per-frame, the
// pre-batching behavior, which the A/B tests exploit.
const (
	defaultFlushFrames = 1024
	defaultFlushBytes  = 256 << 10
)

func newFlusher(nc io.Writer, onError func(error)) *flusher {
	f := &flusher{
		nc:        nc,
		onError:   onError,
		maxFrames: defaultFlushFrames,
		maxBytes:  defaultFlushBytes,
	}
	f.wake = sync.NewCond(&f.mu)
	f.idle = sync.NewCond(&f.mu)
	go f.run()
	return f
}

// setPolicy adjusts the flush thresholds; zero keeps the current value.
func (f *flusher) setPolicy(maxFrames, maxBytes int) {
	f.mu.Lock()
	if maxFrames > 0 {
		f.maxFrames = maxFrames
	}
	if maxBytes > 0 {
		f.maxBytes = maxBytes
	}
	f.mu.Unlock()
}

// stats returns the syscall telemetry: Write calls completed, frames
// and bytes they carried.
func (f *flusher) stats() (writes, frames, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.frames, f.bytes
}

// stageRequest appends req as one encoded frame behind any staged
// frames. With kick, the writer is woken — the doorbell; without, the
// frame waits for a later kick, which is how IssueBatch stages a whole
// chain train and rings once.
func (f *flusher) stageRequest(req *wire.Request, kick bool) error {
	f.mu.Lock()
	if err := f.stageErr(); err != nil {
		f.mu.Unlock()
		return err
	}
	if WireCheckEnabled() {
		if f.wc == nil {
			f.wc = &wireCheckState{}
		}
		f.wc.checkRequestRoundTrip(req)
	}
	start := len(f.stage)
	f.stage = append(f.stage, 0, 0, 0, 0, frameRequest)
	f.stage = wire.AppendRequest(f.stage, req)
	err := f.sealFrame(start, kick)
	f.mu.Unlock()
	return err
}

// stageControl appends a control frame and rings the doorbell.
func (f *flusher) stageControl(kind byte, payload []byte) error {
	f.mu.Lock()
	if err := f.stageErr(); err != nil {
		f.mu.Unlock()
		return err
	}
	start := len(f.stage)
	f.stage = append(f.stage, 0, 0, 0, 0, kind)
	f.stage = append(f.stage, payload...)
	err := f.sealFrame(start, true)
	f.mu.Unlock()
	return err
}

// stageErr reports why staging is refused, if it is. Caller holds mu.
func (f *flusher) stageErr() error {
	if f.err != nil {
		return f.err
	}
	if f.closed {
		return ErrClientClosed
	}
	return nil
}

// sealFrame patches the length prefix of the frame staged at start and
// optionally rings the doorbell. Caller holds mu.
func (f *flusher) sealFrame(start int, kick bool) error {
	n := len(f.stage) - start - frameHeaderLen
	if n > MaxFrame {
		f.stage = f.stage[:start]
		return ErrFrameTooBig
	}
	binary.LittleEndian.PutUint32(f.stage[start:], uint32(n))
	f.ends = append(f.ends, len(f.stage))
	if kick {
		f.wake.Signal()
	}
	return nil
}

// kick rings the doorbell: wakes the writer if frames are staged.
func (f *flusher) kick() {
	f.mu.Lock()
	f.wake.Signal()
	f.mu.Unlock()
}

// poison kills the flusher from outside (socket teardown): staged
// frames are dropped and the writer goroutine exits.
func (f *flusher) poison(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.wake.Signal()
	f.idle.Broadcast()
	f.mu.Unlock()
}

// close drains staged frames and stops the writer — a graceful
// teardown keeps the final fire-and-forget frames (reclamation
// batches) on the wire. Blocks until drained or the writer dies.
func (f *flusher) close() {
	f.mu.Lock()
	f.closed = true
	f.wake.Signal()
	for f.done < len(f.ends) && f.err == nil {
		f.idle.Wait()
	}
	f.mu.Unlock()
}

// run is the writer goroutine: park while drained, then flush staged
// frames — up to the occupancy thresholds per Write — until the queue
// drains again.
func (f *flusher) run() {
	f.mu.Lock()
	for {
		for f.done == len(f.ends) && !f.closed && f.err == nil {
			if f.done > 0 {
				// Fully drained: rewind so the retained capacity is reused.
				f.stage = f.stage[:0]
				f.ends = f.ends[:0]
				f.done = 0
			}
			f.idle.Broadcast()
			f.wake.Wait()
		}
		if f.err != nil || f.done == len(f.ends) {
			// Poisoned, or closed and drained.
			f.idle.Broadcast()
			f.mu.Unlock()
			return
		}
		head := 0
		if f.done > 0 {
			head = f.ends[f.done-1]
		}
		// Take staged frames up to the thresholds, always at least one.
		k := f.done + 1
		for k < len(f.ends) && k+1-f.done <= f.maxFrames && f.ends[k]-head <= f.maxBytes {
			k++
		}
		cut := f.ends[k-1]
		// Safe to write without the lock: bytes below cut are sealed and
		// immutable, and concurrent staging appends strictly above cut
		// (a growth reallocation leaves this backing array intact).
		buf := f.stage[head:cut]
		n := int64(k - f.done)
		f.done = k
		f.mu.Unlock()
		_, werr := f.nc.Write(buf)
		f.mu.Lock()
		if werr != nil {
			// A failed (possibly partial) Write counts nothing: the
			// telemetry reports frames/bytes carried to the wire, and an
			// errored batch never reliably was.
			if f.err == nil {
				f.err = werr
			}
			f.idle.Broadcast()
			f.mu.Unlock()
			f.onError(werr)
			return
		}
		f.writes++
		f.frames += n
		f.bytes += int64(len(buf))
	}
}
