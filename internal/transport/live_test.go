package transport_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"prism/internal/kv"
	"prism/internal/transport"
)

// Every live test runs with the wire check on: each frame is round-
// tripped through the codec on send and re-encoded against the raw
// bytes on receive, so a codec or framing regression panics loudly
// instead of corrupting a value silently.
func TestMain(m *testing.M) {
	transport.SetWireCheck(true)
	m.Run()
}

// startKV provisions a PRISM-KV store with nSlots slots on a live
// server, preloads keys 0..nSlots/2 (value = key repeated), and serves
// on the given listener. The upper half of the collisionless key space
// stays empty for insert tests.
func startKV(t *testing.T, l net.Listener, nSlots int64) (*transport.Server, *kv.Server, chan error) {
	t.Helper()
	ts := transport.NewServer()
	opts := kv.DefaultOptions(nSlots, 256)
	store, err := kv.NewServerOn(ts, opts)
	if err != nil {
		t.Fatalf("NewServerOn: %v", err)
	}
	for k := int64(0); k < nSlots/2; k++ {
		if err := store.Load(k, loadedValue(k)); err != nil {
			t.Fatalf("Load(%d): %v", k, err)
		}
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ts.Serve(l) }()
	t.Cleanup(func() {
		ts.Shutdown(2 * time.Second)
		if err := <-serveErr; err != transport.ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return ts, store, serveErr
}

func loadedValue(k int64) []byte {
	return bytes.Repeat([]byte{byte(k)}, 16)
}

func listenTCP(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen tcp: %v", err)
	}
	return l
}

func listenUnix(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("unix", filepath.Join(t.TempDir(), "prism.sock"))
	if err != nil {
		t.Fatalf("listen unix: %v", err)
	}
	return l
}

// smoke runs the full PRISM-KV protocol — GET hit, GET miss, PUT
// insert, PUT overwrite (tag bump), DELETE — over one live connection.
func smoke(t *testing.T, addr string) {
	t.Helper()
	tc, kvc, err := kv.DialLive(addr, 1)
	if err != nil {
		t.Fatalf("DialLive: %v", err)
	}
	defer tc.Close()

	v, err := kvc.Get(3)
	if err != nil {
		t.Fatalf("Get preloaded: %v", err)
	}
	if !bytes.Equal(v, loadedValue(3)) {
		t.Fatalf("Get(3) = %x, want %x", v, loadedValue(3))
	}
	if _, err := kvc.Get(40); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
	}
	if err := kvc.Put(40, []byte("first")); err != nil {
		t.Fatalf("Put insert: %v", err)
	}
	if v, err = kvc.Get(40); err != nil || string(v) != "first" {
		t.Fatalf("Get after insert = %q, %v", v, err)
	}
	if err := kvc.Put(40, []byte("second")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	if v, err = kvc.Get(40); err != nil || string(v) != "second" {
		t.Fatalf("Get after overwrite = %q, %v", v, err)
	}
	if err := kvc.Delete(40); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := kvc.Get(40); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("Get after delete: err = %v, want ErrNotFound", err)
	}
	if err := kvc.FlushFrees(); err != nil {
		t.Fatalf("FlushFrees: %v", err)
	}
}

func TestLiveTCP(t *testing.T) {
	l := listenTCP(t)
	startKV(t, l, 64)
	smoke(t, l.Addr().String())
}

func TestLiveUnix(t *testing.T) {
	l := listenUnix(t)
	startKV(t, l, 64)
	smoke(t, l.Addr().String())
}

// TestFetchMeta verifies the control plane survives the wire: the meta
// a live client fetches equals the one the simulator would hand over
// in-process.
func TestFetchMeta(t *testing.T) {
	l := listenTCP(t)
	_, store, _ := startKV(t, l, 16)
	tc, err := transport.Dial(l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer tc.Close()
	conn, err := tc.Connect()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	meta, err := kv.FetchMeta(conn)
	if err != nil {
		t.Fatalf("FetchMeta: %v", err)
	}
	if !reflect.DeepEqual(meta, store.Meta()) {
		t.Fatalf("FetchMeta = %+v, want %+v", meta, store.Meta())
	}
}

// TestLiveConcurrentClients hammers one server with many logical
// connections over a few sockets, each client owning a disjoint slice
// of the key space so every read-your-write check is exact.
func TestLiveConcurrentClients(t *testing.T) {
	const (
		sockets         = 4
		clients         = 32
		keysPerClient   = 4
		roundsPerClient = 8
	)
	l := listenUnix(t)
	ts, _, _ := startKV(t, l, sockets*clients*keysPerClient)
	addr := l.Addr().String()

	pool := make([]*transport.Client, sockets)
	for i := range pool {
		tc, err := transport.Dial(addr)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer tc.Close()
		pool[i] = tc
	}
	metaConn, err := pool[0].Connect()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	meta, err := kv.FetchMeta(metaConn)
	if err != nil {
		t.Fatalf("FetchMeta: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		conn, err := pool[i%sockets].Connect()
		if err != nil {
			t.Fatalf("Connect client %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, conn *transport.Conn) {
			defer wg.Done()
			kvc := kv.NewLiveClient(conn, meta, uint16(i+1))
			base := int64(i * keysPerClient)
			for round := 0; round < roundsPerClient; round++ {
				for k := base; k < base+keysPerClient; k++ {
					want := fmt.Sprintf("c%d r%d k%d", i, round, k)
					if err := kvc.Put(k, []byte(want)); err != nil {
						errs <- fmt.Errorf("client %d Put(%d): %w", i, k, err)
						return
					}
					got, err := kvc.Get(k)
					if err != nil {
						errs <- fmt.Errorf("client %d Get(%d): %w", i, k, err)
						return
					}
					if string(got) != want {
						errs <- fmt.Errorf("client %d Get(%d) = %q, want %q", i, k, got, want)
						return
					}
				}
			}
			if err := kvc.FlushFrees(); err != nil {
				errs <- fmt.Errorf("client %d FlushFrees: %w", i, err)
			}
		}(i, conn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := ts.ConnsAccepted.Load(); got < clients {
		t.Errorf("ConnsAccepted = %d, want >= %d", got, clients)
	}
}

// TestLiveShutdownDrain verifies graceful drain: completed work stays
// completed, Serve returns ErrServerClosed, and a client issuing after
// the drain gets an error instead of hanging.
func TestLiveShutdownDrain(t *testing.T) {
	l := listenTCP(t)
	ts := transport.NewServer()
	store, err := kv.NewServerOn(ts, kv.DefaultOptions(16, 256))
	if err != nil {
		t.Fatalf("NewServerOn: %v", err)
	}
	if err := store.Load(1, []byte("v")); err != nil {
		t.Fatalf("Load: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- ts.Serve(l) }()

	tc, kvc, err := kv.DialLive(l.Addr().String(), 1)
	if err != nil {
		t.Fatalf("DialLive: %v", err)
	}
	defer tc.Close()
	if _, err := kvc.Get(1); err != nil {
		t.Fatalf("Get before drain: %v", err)
	}

	ts.Shutdown(2 * time.Second)
	select {
	case err := <-serveErr:
		if err != transport.ErrServerClosed {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := kvc.Get(1); err == nil {
		t.Fatal("Get after drain succeeded, want a transport error")
	}
	// A fresh dial must be refused.
	if _, _, err := kv.DialLive(l.Addr().String(), 2); err == nil {
		t.Fatal("DialLive after drain succeeded, want refusal")
	}
}
