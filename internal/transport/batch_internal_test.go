package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"prism/internal/wire"
)

// Torn-batch coverage: a server that dies mid-flush — some of a
// doorbell train answered, the rest lost with the socket — must surface
// as prompt per-chain errors on the client (the contract prismload's
// per-client error reporting and watchdog lean on), never as a hang or
// a silent partial success.

// tornServer speaks just enough of the protocol over one conn: it
// handshakes, accepts one logical connection, answers the first
// answerFrames request frames, then slams the socket shut.
func tornServer(t *testing.T, nc net.Conn, answerFrames int) {
	t.Helper()
	fr := NewFrameReader(nc)
	fw := NewFrameWriter(nc)
	kind, body, err := fr.Next()
	if err != nil || kind != frameHello || string(body) != string(helloMagic) {
		t.Errorf("torn server handshake: kind=0x%02x err=%v", kind, err)
		nc.Close()
		return
	}
	if err := fw.Send(frameWelcome, nil); err != nil {
		t.Errorf("torn server welcome: %v", err)
		nc.Close()
		return
	}
	if kind, _, err = fr.Next(); err != nil || kind != frameConnect {
		t.Errorf("torn server connect: kind=0x%02x err=%v", kind, err)
		nc.Close()
		return
	}
	if err := fw.Send(frameAccept, appendAccept(nil, 1, 0x4000, 7)); err != nil {
		t.Errorf("torn server accept: %v", err)
		nc.Close()
		return
	}
	var req wire.Request
	var resp wire.Response
	for i := 0; i < answerFrames; i++ {
		kind, body, err := fr.Next()
		if err != nil || kind != frameRequest {
			t.Errorf("torn server request %d: kind=0x%02x err=%v", i, kind, err)
			break
		}
		if err := wire.DecodeRequestAlias(&req, body); err != nil {
			t.Errorf("torn server decode %d: %v", i, err)
			break
		}
		results := make([]wire.Result, len(req.Ops))
		for j := range results {
			results[j] = wire.Result{Status: wire.StatusOK}
		}
		resp = wire.Response{Conn: req.Conn, Seq: req.Seq, Epoch: req.Epoch, Results: results}
		if err := fw.SendResponse(&resp); err != nil {
			t.Errorf("torn server respond %d: %v", i, err)
			break
		}
	}
	nc.Close() // the tear: the rest of the train is never answered
}

func TestTornBatch(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	serverDone := make(chan struct{})
	go func() { defer close(serverDone); tornServer(t, sEnd, 1) }()

	c, err := NewClientConn(cEnd)
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	defer c.Close()
	cn, err := c.Connect()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}

	chains := make([][]wire.Op, 4)
	ops := make([]wire.Op, len(chains))
	for i := range chains {
		ops[i] = wire.Op{Code: wire.OpRead, RKey: 7, Target: 0x4000, Len: 8}
		chains[i] = ops[i : i+1]
	}
	type out struct {
		res [][]wire.Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := cn.IssueBatch(chains)
		done <- out{res, err}
	}()
	select {
	case o := <-done:
		if o.err == nil {
			t.Fatalf("IssueBatch survived a torn batch: results %v", o.res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("IssueBatch hung on a torn batch")
	}
	<-serverDone

	// The client is down: later issues fail fast instead of blocking.
	failOps := cn.Ops(1)
	failOps[0] = wire.Op{Code: wire.OpRead, RKey: 7, Target: 0x4000, Len: 8}
	if _, err := cn.Issue(failOps); err == nil {
		t.Fatal("Issue after torn batch succeeded, want transport error")
	}
	if c.Err() == nil {
		t.Fatal("client has no recorded error after torn batch")
	}
}

// TestTornBatchPartial tears the socket after answering part of a
// longer train and checks the whole batch reports the failure (partial
// results are never presented as success).
func TestTornBatchPartial(t *testing.T) {
	cEnd, sEnd := net.Pipe()
	serverDone := make(chan struct{})
	go func() { defer close(serverDone); tornServer(t, sEnd, 3) }()

	c, err := NewClientConn(cEnd)
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	defer c.Close()
	cn, err := c.Connect()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	chains := make([][]wire.Op, 8)
	ops := make([]wire.Op, len(chains))
	for i := range chains {
		ops[i] = wire.Op{Code: wire.OpRead, RKey: 7, Target: 0x4000, Len: 8}
		chains[i] = ops[i : i+1]
	}
	done := make(chan error, 1)
	go func() {
		_, err := cn.IssueBatch(chains)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("IssueBatch reported success on a partially answered train")
		}
		if errors.Is(err, ErrClientClosed) {
			t.Fatalf("IssueBatch error = %v, want the transport failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("IssueBatch hung on a partially answered train")
	}
	<-serverDone
}
