package transport

import "prism/internal/wire"

// Window is the transport-agnostic half of a PRISM connection's client
// side: the pooled epoch-stamped request records, the connection-owned
// op scratch handed out by Ops, and the strict send window that queues
// requests locally until a slot frees (flow control, as real RC queue
// pairs bound outstanding work requests). It was extracted verbatim
// from the simulated client so the sim transport stays byte-identical;
// the live stream transports reuse it unchanged.
//
// The type parameter X is per-transport completion state carried on
// each pooled entry: the sim client stores a pooled future and a
// retransmit timer, the live client a channel waiter and a result-copy
// arena. A Window is single-owner — the sim binds one per connection on
// the client machine's event domain, the live client guards each with
// its connection mutex.
type Window[X any] struct {
	// Depth is the send window: request N is only on the wire when
	// N-Depth has been acknowledged. The sim transport sets it to the
	// server's replay-ring depth so (a) the replay ring always covers
	// every in-flight request and (b) per-connection resources indexed
	// by seq mod window (temp-buffer slots) are never shared by two live
	// requests; the stream transports keep the same invariant for the
	// shared temp buffer.
	depth uint64
	// transmit puts one entry on the wire. Called from Drain with the
	// entry already in pending; the sim hook also arms the retransmit
	// timer on lossy networks.
	transmit func(*Entry[X])

	connID uint64
	seq    uint64

	pending map[uint64]*Entry[X]
	// queue holds requests awaiting a send-window slot. qhead is the pop
	// cursor: entries before it are drained, and the slice rewinds to
	// its full capacity once empty, so the steady state appends into
	// retained storage.
	queue []*Entry[X]
	qhead int

	// free pools request entries: once a request's response arrives it
	// can be reused for the next issue on this connection. A duplicate
	// of the old request may still be in flight on a lossy network; the
	// epoch bumped on reuse lets the server discard it (see
	// wire.Request). Ops scratch handed out by Ops is recycled with the
	// entry.
	free []*Entry[X]

	// prepared is the entry whose op scratch the last Ops call handed
	// out; the next Prepare on this window claims it.
	prepared *Entry[X]
}

// Entry is one pooled in-flight request record.
type Entry[X any] struct {
	Req *wire.Request
	// X is the transport's completion state (future/timer for sim,
	// waiter/result arena for live). It survives recycling, so pooled
	// resources placed in it are reused across requests.
	X X
	// opsOwned marks Req.Ops as window-owned scratch (handed out by
	// Ops): its capacity is retained and its entries zeroed at recycle.
	// Caller-owned slices are dropped instead — they must never be
	// handed back out as scratch.
	opsOwned bool
}

// NewWindow returns a window for connection connID with the given send
// window depth and transmit hook.
func NewWindow[X any](connID, depth uint64, transmit func(*Entry[X])) *Window[X] {
	return &Window[X]{
		depth:    depth,
		transmit: transmit,
		connID:   connID,
		pending:  make(map[uint64]*Entry[X]),
	}
}

// Ops returns an n-op scratch slice owned by the window, zeroed and
// ready to fill. The caller must hand it to the next Prepare on this
// window, which recycles it when the response arrives — the
// zero-allocation alternative to building a fresh []wire.Op per
// request. The slice (including payload/mask fields set into it) must
// not be retained past the response.
func (w *Window[X]) Ops(n int) []wire.Op {
	e := w.prepared
	if e == nil {
		if m := len(w.free); m > 0 {
			e = w.free[m-1]
			w.free[m-1] = nil
			w.free = w.free[:m-1]
		} else {
			e = &Entry[X]{Req: &wire.Request{}}
		}
		w.prepared = e
	}
	ops := e.Req.Ops
	if !e.opsOwned || cap(ops) < n {
		ops = make([]wire.Op, n)
		e.opsOwned = true
	} else {
		ops = ops[:n]
		for i := range ops {
			ops[i] = wire.Op{}
		}
	}
	e.Req.Ops = ops
	return ops
}

// Prepare claims an entry for ops and stamps its header: the prepared
// entry if ops is the scratch the last Ops call handed out, else a
// pooled entry, else a fresh one. Reused entries bump the request epoch
// to invalidate in-flight duplicates of the old incarnation. The caller
// sets up its completion state in the returned entry's X, then hands
// the entry to Enqueue.
func (w *Window[X]) Prepare(ops []wire.Op) *Entry[X] {
	var e *Entry[X]
	if p := w.prepared; p != nil && len(p.Req.Ops) > 0 && &ops[0] == &p.Req.Ops[0] {
		// The caller filled the scratch handed out by Ops.
		e = p
		w.prepared = nil
		e.Req.Conn, e.Req.Seq, e.Req.Ops = w.connID, w.seq, ops
		e.Req.Epoch++
	} else if n := len(w.free); n > 0 {
		e = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		e.Req.Conn, e.Req.Seq, e.Req.Ops = w.connID, w.seq, ops
		e.Req.Epoch++
		e.opsOwned = false
	} else {
		e = &Entry[X]{Req: &wire.Request{Conn: w.connID, Seq: w.seq, Ops: ops}}
	}
	w.seq++
	return e
}

// Enqueue appends a prepared entry to the send queue and drains.
func (w *Window[X]) Enqueue(e *Entry[X]) {
	w.queue = append(w.queue, e)
	w.Drain()
}

// Drain transmits queued requests while the window allows. The window
// is strict on the sequence range — see Window.depth.
func (w *Window[X]) Drain() {
	for w.qhead < len(w.queue) {
		e := w.queue[w.qhead]
		if len(w.pending) > 0 {
			min := ^uint64(0)
			for s := range w.pending {
				if s < min {
					min = s
				}
			}
			if e.Req.Seq >= min+w.depth {
				return
			}
		}
		w.queue[w.qhead] = nil
		w.qhead++
		w.pending[e.Req.Seq] = e
		w.transmit(e)
	}
	// Drained: rewind so future appends reuse the retained storage.
	w.queue = w.queue[:0]
	w.qhead = 0
}

// Take removes and returns the pending entry for seq. A miss means a
// duplicate response (original + replayed retransmission) and returns
// nil.
func (w *Window[X]) Take(seq uint64) *Entry[X] {
	e, ok := w.pending[seq]
	if !ok {
		return nil
	}
	delete(w.pending, seq)
	return e
}

// Recycle returns a completed entry to the pool for the next issue on
// this window. Any in-flight duplicate is invalidated by the epoch bump
// on reuse. Window-owned op scratch keeps its capacity with the entries
// zeroed (dropping payload refs); caller-owned slices are dropped
// entirely.
func (w *Window[X]) Recycle(e *Entry[X]) {
	if e.opsOwned {
		ops := e.Req.Ops
		for i := range ops {
			ops[i] = wire.Op{}
		}
		e.Req.Ops = ops[:0]
	} else {
		e.Req.Ops = nil
	}
	w.free = append(w.free, e)
}

// InFlight returns the number of transmitted, unacknowledged requests.
func (w *Window[X]) InFlight() int { return len(w.pending) }

// Pooled returns the number of recycled entries available for reuse.
func (w *Window[X]) Pooled() int { return len(w.free) }

// Drop removes every pending and queued entry, calling visit on each.
// The live client uses it to fail outstanding requests when the socket
// dies; the sim transport never drops.
func (w *Window[X]) Drop(visit func(*Entry[X])) {
	for s, e := range w.pending {
		delete(w.pending, s)
		visit(e)
	}
	for i := w.qhead; i < len(w.queue); i++ {
		e := w.queue[i]
		w.queue[i] = nil
		visit(e)
	}
	w.queue = w.queue[:0]
	w.qhead = 0
}
