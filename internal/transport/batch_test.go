package transport_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"prism/internal/kv"
	"prism/internal/prism"
	"prism/internal/transport"
	"prism/internal/wire"
)

// Doorbell-batching A/B tests: the flush policy and the server's wakeup
// batch change only how frames share syscalls, never what the frames
// say. The same deterministic workload must produce byte-identical
// outcomes at every flush threshold — including 1, the degenerate
// write-per-frame mode that matches the pre-batching datapath — over
// both a net.Pipe and a unix socket, with the wire check (TestMain)
// asserting every frame is canonical codec output along the way.

// batchThresholds are the swept flush policies: unbatched, small, the
// server's default wakeup budget, and the client's burst-max default.
var batchThresholds = []int{1, 4, 64, 1024}

// newBatchKV provisions a 64-slot store with keys 0..31 preloaded and
// the given wakeup budget.
func newBatchKV(t *testing.T, maxBatch int) *transport.Server {
	t.Helper()
	ts := transport.NewServer()
	ts.MaxBatch = maxBatch
	store, err := kv.NewServerOn(ts, kv.DefaultOptions(64, 256))
	if err != nil {
		t.Fatalf("NewServerOn: %v", err)
	}
	for k := int64(0); k < 32; k++ {
		if err := store.Load(k, loadedValue(k)); err != nil {
			t.Fatalf("Load(%d): %v", k, err)
		}
	}
	return ts
}

// appendOutcome records one operation's observable result: the error
// text (empty for nil) and the value bytes.
func appendOutcome(log []byte, val []byte, err error) []byte {
	if err != nil {
		log = append(log, fmt.Sprintf("err=%v;", err)...)
		return log
	}
	log = append(log, "ok:"...)
	log = append(log, val...)
	log = append(log, ';')
	return log
}

// runBatchWorkload drives a fixed op sequence — single GETs, PUT
// inserts, a GetBatch train longer than the send window, a raw
// IssueBatch train, deletes, and a final re-read — and returns the
// concatenated outcomes.
func runBatchWorkload(t *testing.T, c *transport.Client) []byte {
	t.Helper()
	cn, err := c.Connect()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	meta, err := kv.FetchMeta(cn)
	if err != nil {
		t.Fatalf("FetchMeta: %v", err)
	}
	kvc := kv.NewLiveClient(cn, meta, 1)

	var log []byte
	for k := int64(0); k < 40; k++ { // hits 0..31, misses 32..39
		v, err := kvc.Get(k)
		log = appendOutcome(log, v, err)
	}
	for k := int64(32); k < 40; k++ {
		err := kvc.Put(k, []byte(fmt.Sprintf("ins-%d", k)))
		log = appendOutcome(log, nil, err)
	}

	// One doorbell for 100 GETs: more chains than the send window
	// (64), so the train pipelines as completions free slots.
	keys := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(i % 48) // mix of preloaded, inserted, and absent
	}
	if err := kvc.GetBatch(keys, func(i int, v []byte, err error) {
		log = append(log, byte('0'+i%10))
		log = appendOutcome(log, v, err)
	}); err != nil {
		t.Fatalf("GetBatch: %v", err)
	}

	// Raw IssueBatch: 80 single-op READ chains against the table base.
	chains := make([][]wire.Op, 80)
	ops := make([]wire.Op, len(chains))
	for i := range chains {
		ops[i] = prism.Read(meta.Key, meta.HashBase, 8)
		chains[i] = ops[i : i+1]
	}
	res, err := cn.IssueBatch(chains)
	if err != nil {
		t.Fatalf("IssueBatch: %v", err)
	}
	for _, rr := range res {
		for i := range rr {
			log = append(log, fmt.Sprintf("s=%v:", rr[i].Status)...)
			log = append(log, rr[i].Data...)
			log = append(log, ';')
		}
	}

	for k := int64(32); k < 36; k++ {
		log = appendOutcome(log, nil, kvc.Delete(k))
	}
	for k := int64(30); k < 40; k++ {
		v, err := kvc.Get(k)
		log = appendOutcome(log, v, err)
	}
	if err := kvc.FlushFrees(); err != nil {
		t.Fatalf("FlushFrees: %v", err)
	}
	return log
}

// TestBatchingDeterminismUnix runs the workload over unix sockets at
// every flush threshold and demands identical outcomes.
func TestBatchingDeterminismUnix(t *testing.T) {
	var want []byte
	for _, th := range batchThresholds {
		t.Run(fmt.Sprintf("flush=%d", th), func(t *testing.T) {
			l := listenUnix(t)
			ts := newBatchKV(t, th)
			serveErr := make(chan error, 1)
			go func() { serveErr <- ts.Serve(l) }()
			t.Cleanup(func() {
				ts.Shutdown(2 * time.Second)
				<-serveErr
			})
			c, err := transport.Dial(l.Addr().String())
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()
			c.SetFlushPolicy(th, 0)
			got := runBatchWorkload(t, c)
			if want == nil {
				want = got
				return
			}
			if string(got) != string(want) {
				t.Fatalf("flush threshold %d changed outcomes:\ngot  %q\nwant %q", th, got, want)
			}
		})
	}
}

// TestBatchingDeterminismPipe runs the same sweep over an in-memory
// net.Pipe served by ServeConn — a synchronous, unbuffered transport
// that exercises the flusher against maximal backpressure — and checks
// the outcomes match the unix-socket runs' shape (identical across
// thresholds).
func TestBatchingDeterminismPipe(t *testing.T) {
	var want []byte
	for _, th := range batchThresholds {
		t.Run(fmt.Sprintf("flush=%d", th), func(t *testing.T) {
			cEnd, sEnd := net.Pipe()
			ts := newBatchKV(t, th)
			serveDone := make(chan struct{})
			go func() { defer close(serveDone); ts.ServeConn(sEnd) }()
			c, err := transport.NewClientConn(cEnd)
			if err != nil {
				t.Fatalf("NewClientConn: %v", err)
			}
			c.SetFlushPolicy(th, 0)
			got := runBatchWorkload(t, c)
			c.Close()
			select {
			case <-serveDone:
			case <-time.After(5 * time.Second):
				t.Fatal("ServeConn did not return after client close")
			}
			if want == nil {
				want = got
				return
			}
			if string(got) != string(want) {
				t.Fatalf("flush threshold %d changed outcomes:\ngot  %q\nwant %q", th, got, want)
			}
		})
	}
}

// TestBatchingServerTelemetry checks the server actually coalesces: a
// 100-chain doorbell train must reach it in far fewer read syscalls
// than frames, and its responses must leave in fewer writes.
func TestBatchingServerTelemetry(t *testing.T) {
	l := listenUnix(t)
	ts := newBatchKV(t, 0)
	serveErr := make(chan error, 1)
	go func() { serveErr <- ts.Serve(l) }()
	c, err := transport.Dial(l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	cn, err := c.Connect()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	meta, err := kv.FetchMeta(cn)
	if err != nil {
		t.Fatalf("FetchMeta: %v", err)
	}
	chains := make([][]wire.Op, 100)
	ops := make([]wire.Op, len(chains))
	for i := range chains {
		ops[i] = prism.Read(meta.Key, meta.HashBase, 8)
		chains[i] = ops[i : i+1]
	}
	if _, err := cn.IssueBatch(chains); err != nil {
		t.Fatalf("IssueBatch: %v", err)
	}
	writes, frames, _ := c.FlushStats()
	if frames < 100 {
		t.Fatalf("FlushStats frames = %d, want >= 100", frames)
	}
	if writes >= frames {
		t.Fatalf("FlushStats writes = %d for %d frames, want coalescing", writes, frames)
	}
	c.Close()
	ts.Shutdown(2 * time.Second)
	<-serveErr
	if b, bf := ts.Batches.Load(), ts.BatchFrames.Load(); bf <= b {
		t.Fatalf("server batches=%d batchFrames=%d, want frames > batches", b, bf)
	}
}

// TestLiveIssueAllocs pins the warmed live issue path: pooled window
// entries, reused completion channels, and the staging flusher mean a
// steady-state GET allocates (almost) nothing. Lenient ceiling to
// absorb runtime jitter, in the spirit of TestFramedSendAllocs.
func TestLiveIssueAllocs(t *testing.T) {
	transport.SetWireCheck(false) // measure the production path
	defer transport.SetWireCheck(true)
	l := listenUnix(t)
	startKV(t, l, 64)
	tc, kvc, err := kv.DialLive(l.Addr().String(), 1)
	if err != nil {
		t.Fatalf("DialLive: %v", err)
	}
	defer tc.Close()
	for k := int64(0); k < 64; k++ { // warm the window, scratch, and framers
		if _, err := kvc.Get(k % 16); err != nil {
			t.Fatalf("warmup Get: %v", err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := kvc.Get(3); err != nil {
			t.Fatalf("Get: %v", err)
		}
	})
	if avg > 6 {
		t.Errorf("live GET allocates %.1f per op, want <= 6", avg)
	}
}

// TestLiveProgramAllocs pins the warmed live CHASE/SCAN issue path: the
// program header builds into the client's reused scratch and the result
// payload lands in pooled frame storage, so a steady-state program op
// costs no more than a handful of allocations per round trip (both
// sides of the socket count — AllocsPerRun is process-wide).
func TestLiveProgramAllocs(t *testing.T) {
	transport.SetWireCheck(false) // measure the production path
	defer transport.SetWireCheck(true)
	l := listenUnix(t)
	startKV(t, l, 64)
	tc, kvc, err := kv.DialLive(l.Addr().String(), 1)
	if err != nil {
		t.Fatalf("DialLive: %v", err)
	}
	defer tc.Close()
	visit := func(key int64, value []byte) error { return nil }
	for k := int64(0); k < 64; k++ { // warm the window, scratch, and framers
		if _, err := kvc.GetChase(k % 16); err != nil {
			t.Fatalf("warmup GetChase: %v", err)
		}
		if _, err := kvc.Scan(0, 1024, visit); err != nil {
			t.Fatalf("warmup Scan: %v", err)
		}
	}
	avgChase := testing.AllocsPerRun(200, func() {
		if _, err := kvc.GetChase(3); err != nil {
			t.Fatalf("GetChase: %v", err)
		}
	})
	if avgChase > 8 {
		t.Errorf("live CHASE allocates %.1f per op, want <= 8", avgChase)
	}
	avgScan := testing.AllocsPerRun(200, func() {
		if _, err := kvc.Scan(0, 1024, visit); err != nil {
			t.Fatalf("Scan: %v", err)
		}
	})
	if avgScan > 10 {
		t.Errorf("live SCAN allocates %.1f per op, want <= 10", avgScan)
	}
}
