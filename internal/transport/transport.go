// Package transport is the pluggable transport layer under the PRISM
// verb datapath. The datapath has three transports:
//
//   - sim: the discrete-event fabric (internal/fabric). Messages travel
//     as *wire.Request/*wire.Response pointers and bandwidth is charged
//     from RequestWireSize/ResponseWireSize; internal/rdma owns the
//     endpoints and layers the deployment cost models on top.
//   - tcp and unix: real stream sockets. Messages travel as canonical
//     wire bytes (internal/wire append encoders / alias decoders) under
//     the length-prefixed framing in this package; Server and Client in
//     this package own the endpoints.
//
// What the transports share lives here:
//
//   - Window: the issue/complete machinery extracted from the simulated
//     client — pooled epoch-stamped request records, connection-owned op
//     scratch, and the strict send window that queues requests locally
//     until a slot frees. The sim client parameterizes it with a pooled
//     future and a retransmit timer; the live client with a channel
//     waiter and a result-copy arena.
//   - FrameReader/FrameWriter: the stream framer. Frames are encoded
//     into and alias-decoded out of per-connection reusable buffers, so
//     the 0-alloc encode path of DESIGN.md §12 survives the socket hop.
//   - RPCHandler: the server-side RPC hook (single-op OpSend requests),
//     shared by the simulated and live servers so one application (e.g.
//     PRISM-KV reclamation) provisions on either.
//
// The live datapath is doorbell-batched end to end (DESIGN.md §16):
// client issuers stage frames into a per-socket flusher that group-
// commits a whole train per write syscall, the server drains every
// buffered frame per wakeup under one guard acquisition and coalesces
// the responses into one flush, and both sides count syscalls vs the
// frames they carried (frames_per_write, bytes_per_syscall,
// batch_len). Coalescing changes which syscall carries a frame, never
// the frame's bytes or per-connection order.
package transport

import (
	"sync/atomic"
	"time"
)

// RPCHandler serves send/receive RPCs: single-op OpSend requests carry
// an opaque payload to the server CPU and the reply rides the result
// slot. extraCPU is simulated server CPU time beyond the base RPC cost;
// live servers ignore it. The payload aliases transport-owned scratch
// and must not be retained; the reply buffer is handed to the transport
// and must not be reused by the handler until the next call.
type RPCHandler func(payload []byte) (reply []byte, extraCPU time.Duration)

// Wire-check mode for the live transports. With it enabled, every frame
// is verified against the canonical codec: requests and responses are
// round-tripped (encode, alias-decode, field-compare) before send, and
// received frames are re-encoded and compared byte-for-byte against the
// bytes on the wire — proving on live traffic that both peers speak the
// canonical encoding and that the alias decoders lose nothing. The
// simulated fabric's equivalent is rdma.SetWireCheck, which forwards
// here so one switch covers every transport.
var wireCheck atomic.Bool

// SetWireCheck toggles wire-check verification for subsequently
// transmitted and received live-transport messages.
func SetWireCheck(on bool) { wireCheck.Store(on) }

// WireCheckEnabled reports whether live wire-check mode is on.
func WireCheckEnabled() bool { return wireCheck.Load() }
