package fabric

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"prism/internal/sim"
)

// TestCrossRackPropagation: a message crossing racks pays the configured
// extra one-way latency; same-rack traffic is unaffected.
func TestCrossRackPropagation(t *testing.T) {
	p := testParams()
	p.CrossRackExtra = 500 * time.Nanosecond
	e := sim.NewEngine(1)
	net := New(e, p)
	a, b := net.NewNode("a"), net.NewNode("b")
	d, c := net.NewNode("d"), net.NewNode("c")
	b.SetRack(1)
	if a.Rack() != 0 || b.Rack() != 1 {
		t.Fatalf("racks: a=%d b=%d", a.Rack(), b.Rack())
	}
	var atB, atC sim.Time
	b.SetHandler(func(Message) { atB = b.Domain().Now() })
	c.SetHandler(func(Message) { atC = c.Domain().Now() })
	size := 512
	net.Send(Message{From: a, To: b, Size: size})
	net.Send(Message{From: d, To: c, Size: size})
	e.Run()
	flat := sim.Time(2*p.SerializationDelay(size) + p.Network.OneWay)
	if atC != flat {
		t.Fatalf("same-rack arrival at %v, want %v", atC, flat)
	}
	if want := flat.Add(sim.Duration(p.CrossRackExtra)); atB != want {
		t.Fatalf("cross-rack arrival at %v, want %v", atB, want)
	}
}

// TestGroupedPairLatency: co-locating two nodes in one affinity group
// (intra-domain bypass path) must not change message timing.
func TestGroupedPairLatency(t *testing.T) {
	p := testParams()
	e := sim.NewEngine(1)
	net := New(e, p)
	a, b := net.NewNodeInGroup("a", 7), net.NewNodeInGroup("b", 7)
	if a.Domain() != b.Domain() {
		t.Fatal("grouped nodes did not share a domain")
	}
	var arrived sim.Time
	b.SetHandler(func(Message) { arrived = b.Domain().Now() })
	size := 512
	net.Send(Message{From: a, To: b, Size: size})
	e.Run()
	if want := sim.Time(2*p.SerializationDelay(size) + p.Network.OneWay); arrived != want {
		t.Fatalf("grouped-pair arrival at %v, want %v", arrived, want)
	}
}

// stormTrace runs the cross-domain forwarding storm of
// TestCrossDomainDeterminism, but with a deterministic (node, hop)
// forwarding choice instead of the domain RNG (which is legitimately
// shared under grouping), nodes placed into affinity groups of the
// given size, and racks split down the middle when crossRack is set.
func stormTrace(t *testing.T, groupSize, workers int, crossRack time.Duration) string {
	trace, _ := stormTraceStats(t, groupSize, workers, crossRack, false)
	return trace
}

func stormTraceStats(t *testing.T, groupSize, workers int, crossRack time.Duration, sparse bool) (string, sim.WorldStats) {
	t.Helper()
	p := testParams()
	p.CrossRackExtra = crossRack
	e := sim.NewEngine(7)
	e.World().SetSparseBarriers(sparse)
	net := New(e, p)
	const N = 6
	nodes := make([]*Node, N)
	traces := make([][]string, N)
	for i := 0; i < N; i++ {
		if groupSize > 1 {
			nodes[i] = net.NewNodeInGroup(string(rune('a'+i)), i/groupSize)
		} else {
			nodes[i] = net.NewNode(string(rune('a' + i)))
		}
		if crossRack > 0 && i >= N/2 {
			nodes[i].SetRack(1)
		}
	}
	for i := 0; i < N; i++ {
		i := i
		self := nodes[i]
		self.SetHandler(func(m Message) {
			hops := m.Payload.(int)
			traces[i] = append(traces[i],
				fmt.Sprintf("%s->%s@%d hops=%d", m.From.Name(), self.Name(), self.Domain().Now(), hops))
			if hops > 0 {
				next := nodes[(i*31+hops*17+m.Size)%N]
				if next != self {
					net.Send(Message{From: self, To: next, Size: 64 + hops, Payload: hops - 1})
				}
			}
		})
	}
	for i := 0; i < N; i++ {
		i := i
		src := nodes[i]
		for j := 0; j < N; j++ {
			if j == i {
				continue
			}
			dst := nodes[j]
			src.Domain().Schedule(sim.Duration(i+j)*time.Microsecond, func() {
				net.Send(Message{From: src, To: dst, Size: 128, Payload: 4})
			})
		}
	}
	e.World().SetWorkers(workers)
	e.Run()
	var b strings.Builder
	for i, tr := range traces {
		fmt.Fprintf(&b, "node %s: sent=%d/%dB recv=%d/%dB dropped=%d\n",
			nodes[i].Name(), nodes[i].MsgsSent, nodes[i].BytesSent,
			nodes[i].MsgsReceived, nodes[i].BytesReceived, nodes[i].MsgsDropped)
		for _, line := range tr {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String(), e.World().Stats()
}

// TestSparseBarrierStormDeterminism: the forwarding storm produces the
// same trace with sparse barrier elision on, at every grouping and
// worker count — the fabric raises the barrier-request flag whenever an
// outbox has work, so no flush is ever missed — while the quiet stretch
// after the storm dies down is skipped (BarrierSkips > 0 once the world
// has windows with nothing to merge).
func TestSparseBarrierStormDeterminism(t *testing.T) {
	base, dense := stormTraceStats(t, 1, 1, 0, false)
	if base == "" || dense.CrossDeliveries == 0 {
		t.Fatal("storm did not run")
	}
	for _, g := range []int{1, 2, 6} {
		for _, w := range []int{1, 4} {
			got, st := stormTraceStats(t, g, w, 0, true)
			if got != base {
				t.Fatalf("groupSize=%d workers=%d sparse trace differs from dense serial:\n--- base ---\n%s--- got ---\n%s",
					g, w, base, got)
			}
			if st.Barriers == 0 {
				t.Fatalf("groupSize=%d workers=%d: no hook sweeps ran", g, w)
			}
		}
	}
}

// TestGroupedStormDeterminism: the storm's per-node delivery traces must
// be identical at every affinity grouping and every worker count — the
// (arrival time, source node, send sequence) order decides delivery, the
// domain layout never does.
func TestGroupedStormDeterminism(t *testing.T) {
	base := stormTrace(t, 1, 1, 0)
	if base == "" || !strings.Contains(base, "hops=0") {
		t.Fatalf("storm did not cascade:\n%s", base)
	}
	for _, g := range []int{2, 3, 6} {
		for _, w := range []int{1, 4} {
			if got := stormTrace(t, g, w, 0); got != base {
				t.Fatalf("groupSize=%d workers=%d trace differs from ungrouped serial:\n--- base ---\n%s--- got ---\n%s",
					g, w, base, got)
			}
		}
	}
}

// TestGroupedStormDeterminismCrossRack: same invariance with a rack
// split and nonzero cross-rack latency — the per-pair lookahead matrix
// is asymmetric, but regrouping still cannot move any delivery.
func TestGroupedStormDeterminismCrossRack(t *testing.T) {
	const extra = 700 * time.Nanosecond
	base := stormTrace(t, 1, 1, extra)
	if base == "" {
		t.Fatal("storm did not run")
	}
	if base == stormTrace(t, 1, 1, 0) {
		t.Fatal("cross-rack latency had no effect on the storm")
	}
	for _, g := range []int{3, 6} {
		for _, w := range []int{1, 4} {
			if got := stormTrace(t, g, w, extra); got != base {
				t.Fatalf("groupSize=%d workers=%d cross-rack trace differs:\n--- base ---\n%s--- got ---\n%s",
					g, w, base, got)
			}
		}
	}
}

// TestGroupedLossDeterminism: loss draws come from per-node streams, so
// the set of dropped messages is identical whether or not the endpoints
// share a domain.
func TestGroupedLossDeterminism(t *testing.T) {
	run := func(group bool) (int, int64) {
		e := sim.NewEngine(3)
		p := testParams()
		p.LossRate = 0.5
		net := New(e, p)
		var a, b *Node
		if group {
			a, b = net.NewNodeInGroup("a", 0), net.NewNodeInGroup("b", 0)
		} else {
			a, b = net.NewNode("a"), net.NewNode("b")
		}
		got := 0
		b.SetHandler(func(Message) { got++ })
		for i := 0; i < 1000; i++ {
			net.Send(Message{From: a, To: b, Size: 64})
		}
		e.Run()
		return got, b.MsgsDropped
	}
	split, splitDropped := run(false)
	grouped, groupedDropped := run(true)
	if split != grouped || splitDropped != groupedDropped {
		t.Fatalf("loss outcome depends on grouping: split %d/%d dropped, grouped %d/%d",
			split, splitDropped, grouped, groupedDropped)
	}
	if split == 0 || split == 1000 {
		t.Fatalf("implausible delivery count %d", split)
	}
}
