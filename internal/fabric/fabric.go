// Package fabric models the datacenter network connecting NICs: per-port
// serialization at line rate, switch propagation latency, and optional
// message loss. Reliability (retransmission, duplicate suppression) is the
// NIC transport's job (package rdma), mirroring how RoCE NICs layer a
// reliable connection over a lossy Ethernet fabric.
//
// Messages carry decoded payloads plus an explicit wire size; the size —
// computed from the real encodings in package wire — drives bandwidth
// accounting, so the fabric does not pay for encoding on the hot path. The
// rdma package's tests exercise the full encode/decode path separately.
//
// Each node is its own event domain (see package sim): the node's
// timers, port resources, and handler all execute on the node's domain.
// The fabric declares the minimum cross-node latency — frame
// serialization plus switch propagation — as the world's lookahead, and
// buffers cross-node sends in per-node outboxes that are merged at
// window barriers in (arrival time, source node, send sequence) order.
// Loopback traffic stays inside the sender's domain and never touches a
// barrier.
package fabric

import (
	"fmt"

	"prism/internal/model"
	"prism/internal/sim"
)

// Message is one datagram in flight.
type Message struct {
	From, To *Node
	Size     int // encoded size in bytes, excluding frame overhead
	Payload  any
	// Tag is an opaque sender-chosen stamp carried with the datagram. The
	// rdma transport uses it to epoch-stamp pooled payload objects: a
	// receiver can tell a stale (recycled and reused) payload from the
	// incarnation this datagram actually carried.
	Tag uint32
}

// Handler receives messages delivered to a node.
type Handler func(m Message)

// Node is one machine's NIC port.
type Node struct {
	net     *Network
	name    string
	dom     *sim.Engine
	tx, rx  *sim.Resource
	handler Handler

	// Cross-domain send buffer, drained at window barriers.
	out    []crossEntry
	outSeq uint64

	// free recycles this node's in-flight message carriers. The pool is
	// owned by the delivery side: carriers are taken at barriers (or for
	// loopback, in-domain) and returned during this domain's execution —
	// the two never overlap, so no locking is needed.
	free *flight

	// Counters for reporting and tests.
	BytesSent     int64
	BytesReceived int64
	MsgsSent      int64
	MsgsReceived  int64
	MsgsDropped   int64
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Domain returns the event domain this node lives on. All of the node's
// traffic handling — port serialization, delivery, protocol timers —
// executes there.
func (n *Node) Domain() *sim.Engine { return n.dom }

// SetHandler installs the delivery callback. It must be set before any
// message arrives.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// TxQueueDelay reports the current backlog on the node's transmit port.
func (n *Node) TxQueueDelay() sim.Duration { return n.tx.QueueDelay() }

// crossEntry is one cross-node message waiting in its source node's
// outbox for the next window barrier.
type crossEntry struct {
	at      sim.Time // arrival instant at the destination's switch port
	ser     sim.Duration
	m       Message
	src     int // source node index (creation order) — merge tie-break
	seq     uint64
	dropped bool
}

// Network is a set of nodes joined through one switch profile.
type Network struct {
	e     *sim.Engine
	p     model.Params
	nodes []*Node
	merge []crossEntry // barrier scratch, reused across flushes
}

// flight carries one message through its destination-side delivery hops
// (switch arrival → rx serialization → handler). The hop callbacks are
// bound to the flight once, when it is first allocated, so a recycled
// flight moves a message end to end without allocating.
type flight struct {
	owner *Node
	m     Message
	ser   sim.Duration
	next  *flight

	atSwitch func()
	deliver  func()
}

// newFlight takes a carrier from the destination node's pool.
func (n *Node) newFlight(m Message, ser sim.Duration) *flight {
	f := n.free
	if f != nil {
		n.free = f.next
		f.next = nil
	} else {
		f = &flight{owner: n}
		f.atSwitch = f.runAtSwitch
		f.deliver = f.runDeliver
	}
	f.m = m
	f.ser = ser
	return f
}

func (n *Node) recycleFlight(f *flight) {
	f.m = Message{} // drop payload references
	f.next = n.free
	n.free = f
}

func (f *flight) runAtSwitch() {
	// Receive-side serialization: the destination port is the contention
	// point when many senders target one server.
	f.m.To.rx.Submit(f.ser, f.deliver)
}

func (f *flight) runDeliver() {
	m := f.m
	f.owner.recycleFlight(f) // before the handler, so reentrant sends can reuse it
	f.owner.net.deliver(m)
}

// New returns an empty network using p's latency/bandwidth parameters.
// The minimum cross-node latency (zero-payload serialization plus switch
// propagation) becomes the world's scheduling lookahead.
func New(e *sim.Engine, p model.Params) *Network {
	e.World().DeclareLookahead(p.SerializationDelay(0) + p.Network.OneWay)
	n := &Network{e: e, p: p}
	e.World().OnBarrier(n.flush)
	return n
}

// Engine returns the simulation engine the network was created on (the
// world's root domain, not any node's domain).
func (n *Network) Engine() *sim.Engine { return n.e }

// Params returns the cost model in effect.
func (n *Network) Params() model.Params { return n.p }

// NewNode adds a machine to the network, on its own fresh event domain.
func (n *Network) NewNode(name string) *Node {
	node := &Node{
		net:  n,
		name: name,
		dom:  n.e.World().NewDomain(),
	}
	node.tx = sim.NewResource(node.dom)
	node.rx = sim.NewResource(node.dom)
	n.nodes = append(n.nodes, node)
	return node
}

// Send transmits m.Payload from m.From to m.To. Delivery order between a
// pair of nodes follows transmission order (FIFO ports); messages may be
// dropped when the cost model's LossRate is nonzero. Send must be called
// from the source node's domain context (or from setup code between
// runs).
func (n *Network) Send(m Message) {
	if m.From == nil || m.To == nil {
		panic("fabric: Send with nil endpoint")
	}
	if m.From == m.To {
		// Loopback: skip the wire, deliver after a negligible delay. Still
		// account the send so same-node traffic shows up in byte counters.
		// Stays entirely inside the node's own domain.
		m.From.BytesSent += int64(m.Size)
		m.From.MsgsSent++
		m.From.dom.Schedule(0, m.From.newFlight(m, 0).deliver)
		return
	}
	ser := n.p.SerializationDelay(m.Size)
	m.From.BytesSent += int64(m.Size)
	m.From.MsgsSent++
	// Source-side serialization happens on the sender's clock now; the
	// rest of the journey is buffered until the window barrier. Loss is
	// sampled here, from the sender's RNG stream, so the draw order is
	// domain-deterministic; the drop is accounted at the barrier.
	finish := m.From.tx.Submit(ser, nil)
	src := m.From
	src.out = append(src.out, crossEntry{
		at:      finish.Add(n.p.Network.OneWay),
		ser:     ser,
		m:       m,
		src:     src.dom.DomainID(),
		seq:     src.outSeq,
		dropped: n.p.LossRate > 0 && src.dom.Rand().Float64() < n.p.LossRate,
	})
	src.outSeq++
}

// flush is the window-barrier hook: it merges every node's outbox in the
// fixed total order (arrival time, source node, send sequence) and
// schedules the deliveries on the destination domains. The merge order —
// never goroutine scheduling — decides tie-breaks, which is what makes
// multi-worker runs byte-identical to serial ones.
func (n *Network) flush() {
	buf := n.merge[:0]
	for _, node := range n.nodes {
		if len(node.out) == 0 {
			continue
		}
		buf = append(buf, node.out...)
		for i := range node.out {
			node.out[i] = crossEntry{} // drop payload references
		}
		node.out = node.out[:0]
	}
	if len(buf) == 0 {
		n.merge = buf
		return
	}
	// Each node's outbox is already time-sorted (its tx port is FIFO), so
	// this insertion sort is a cheap merge of a few sorted runs — and it
	// avoids the per-call closure allocation of sort.Slice on a hot path.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && crossBefore(&buf[j], &buf[j-1]); j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	for i := range buf {
		en := &buf[i]
		if en.dropped {
			en.m.To.MsgsDropped++
			continue
		}
		f := en.m.To.newFlight(en.m, en.ser)
		en.m.To.dom.At(en.at, f.atSwitch)
	}
	for i := range buf {
		buf[i] = crossEntry{}
	}
	n.merge = buf[:0]
}

func crossBefore(a, b *crossEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

func (n *Network) deliver(m Message) {
	m.To.BytesReceived += int64(m.Size)
	m.To.MsgsReceived++
	if m.To.handler == nil {
		panic(fmt.Sprintf("fabric: node %q has no handler", m.To.name))
	}
	m.To.handler(m)
}
