// Package fabric models the datacenter network connecting NICs: per-port
// serialization at line rate, switch propagation latency, and optional
// message loss. Reliability (retransmission, duplicate suppression) is the
// NIC transport's job (package rdma), mirroring how RoCE NICs layer a
// reliable connection over a lossy Ethernet fabric.
//
// Messages carry decoded payloads plus an explicit wire size; the size —
// computed from the real encodings in package wire — drives bandwidth
// accounting, so the fabric does not pay for encoding on the hot path. The
// rdma package's tests exercise the full encode/decode path separately.
//
// Each node lives on an event domain (see package sim): the node's
// timers, port resources, and handler all execute there. By default every
// node gets its own fresh domain; NewNodeInGroup co-locates several nodes
// on one shared domain (affinity groups) so that fleets of tiny client
// machines don't each pay barrier fan-out. The fabric declares a
// per-(src, dst) lookahead edge for every cross-domain node pair — frame
// serialization plus that pair's switch propagation, including any
// cross-rack extra — so far-apart pairs get long scheduling windows.
//
// Cross-domain sends are buffered in per-node outboxes merged at window
// barriers in (arrival time, source node, send sequence) order. Sends
// between distinct nodes that share a domain bypass the outbox and
// schedule delivery directly — they never cross a domain boundary — but
// consume the same send sequence numbers, so the total order is the same
// one an ungrouped run produces. All non-loopback arrivals at one
// (node, instant) are staged into a per-node inbox and drained by a
// single tail-of-instant event that submits them to the rx port in
// (source node, send sequence) order, which makes delivery order
// independent of how nodes are grouped into domains. Loopback traffic
// stays inside the sender's domain and never touches any of this.
package fabric

import (
	"fmt"
	"math/rand"

	"prism/internal/model"
	"prism/internal/sim"
)

// Message is one datagram in flight.
type Message struct {
	From, To *Node
	Size     int // encoded size in bytes, excluding frame overhead
	Payload  any
	// Tag is an opaque sender-chosen stamp carried with the datagram. The
	// rdma transport uses it to epoch-stamp pooled payload objects: a
	// receiver can tell a stale (recycled and reused) payload from the
	// incarnation this datagram actually carried.
	Tag uint32
}

// Handler receives messages delivered to a node.
type Handler func(m Message)

// Node is one machine's NIC port.
type Node struct {
	net     *Network
	name    string
	dom     *sim.Engine
	index   int // creation order; cross-domain merge tie-break
	rack    int
	tx, rx  *sim.Resource
	handler Handler

	// Cross-domain send buffer, drained at window barriers.
	out    []crossEntry
	outSeq uint64

	// inbox stages this node's same-instant arrivals; drain submits them
	// to the rx port in (source node, send sequence) order at the tail of
	// the instant. drainFn is the bound method, allocated once.
	inbox   []*flight
	drainFn func()

	// stageAt/stageTail chain this node's same-instant barrier deliveries
	// into one staging event per (node, instant) instead of one per
	// message: flush links each further flight for the instant onto the
	// chain already scheduled. Chains are built and forgotten within a
	// single flush (stageTail is cleared before it returns), so they
	// never alias the bypass path or a later barrier.
	stageAt   sim.Time
	stageTail *flight

	// lossRng samples message drops. It is per node — not per domain — so
	// the draw sequence each sender sees is the same whether the node has
	// its own domain or shares one with other machines. Lazily built from
	// the world seed and the node's creation index; never touched while
	// LossRate is zero.
	lossRng *rand.Rand

	// free recycles this node's in-flight message carriers. The pool is
	// owned by the delivery side: carriers are taken at barriers (or for
	// loopback and intra-domain sends, in-domain) and returned during this
	// domain's execution — the two never overlap, so no locking is needed.
	free *flight

	// Counters for reporting and tests.
	BytesSent     int64
	BytesReceived int64
	MsgsSent      int64
	MsgsReceived  int64
	MsgsDropped   int64
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Domain returns the event domain this node lives on. All of the node's
// traffic handling — port serialization, delivery, protocol timers —
// executes there. Nodes created with NewNodeInGroup share their domain
// with the rest of their group.
func (n *Node) Domain() *sim.Engine { return n.dom }

// SetHandler installs the delivery callback. It must be set before any
// message arrives.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// SetRack places the node in a rack. Nodes in different racks pay the
// cost model's CrossRackExtra on top of the switch one-way latency; with
// CrossRackExtra zero (the default) rack placement has no effect. Call
// during setup, before the simulation runs: the per-pair lookahead edges
// are derived from rack placement at the first window barrier.
func (n *Node) SetRack(r int) { n.rack = r }

// Rack returns the node's rack assignment (0 unless SetRack was called).
func (n *Node) Rack() int { return n.rack }

// TxQueueDelay reports the current backlog on the node's transmit port.
func (n *Node) TxQueueDelay() sim.Duration { return n.tx.QueueDelay() }

// crossEntry is one cross-domain message waiting in its source node's
// outbox for the next window barrier.
type crossEntry struct {
	at      sim.Time // arrival instant at the destination's switch port
	ser     sim.Duration
	m       Message
	src     int // source node index (creation order) — merge tie-break
	seq     uint64
	dropped bool
}

// Network is a set of nodes joined through one switch profile.
type Network struct {
	e      *sim.Engine
	p      model.Params
	nodes  []*Node
	groups map[int]*sim.Engine // affinity group id → shared domain
	merge  []crossEntry        // barrier scratch, reused across flushes

	// touched lists the nodes with an open staging chain during the
	// current flush, so their chain heads can be cleared before it
	// returns. Scratch, reused across flushes.
	touched []*Node

	// laDeclared is how many nodes had lookahead edges declared at the
	// last flush; a mismatch with len(nodes) re-declares the full matrix.
	laDeclared int
}

// flight carries one message through its destination-side delivery hops
// (switch arrival → inbox staging → rx serialization → handler). The hop
// callbacks are bound to the flight once, when it is first allocated, so
// a recycled flight moves a message end to end without allocating.
type flight struct {
	owner *Node
	m     Message
	ser   sim.Duration
	src   int // source node index — same-instant inbox sort key
	seq   uint64
	next  *flight

	stage   func()
	deliver func()
}

// newFlight takes a carrier from the destination node's pool.
func (n *Node) newFlight(m Message, ser sim.Duration) *flight {
	f := n.free
	if f != nil {
		n.free = f.next
		f.next = nil
	} else {
		f = &flight{owner: n}
		f.stage = f.runStage
		f.deliver = f.runDeliver
	}
	f.m = m
	f.ser = ser
	return f
}

func (n *Node) recycleFlight(f *flight) {
	f.m = Message{} // drop payload references
	f.next = n.free
	n.free = f
}

// runStage executes at the arrival instant on the destination's domain.
// It only parks the flight (and, for barrier traffic, every further
// flight flush chained behind it for this instant) in the node's inbox;
// the actual rx submission happens in runDrain at the tail of the
// instant, once every arrival of the instant has been staged, so that
// submission order is decided by (source node, send sequence) rather
// than by event scheduling order — which varies with domain grouping.
func (f *flight) runStage() {
	to := f.owner
	if len(to.inbox) == 0 {
		to.dom.AtTail(to.dom.Now(), to.drainFn)
	}
	for g := f; g != nil; {
		nx := g.next
		g.next = nil
		to.inbox = append(to.inbox, g)
		g = nx
	}
}

// runDrain submits the instant's staged arrivals to the rx port in
// canonical (source node, send sequence) order.
func (n *Node) runDrain() {
	box := n.inbox
	// Arrivals of one instant are few; insertion sort avoids sort.Slice's
	// closure allocation on a hot path.
	for i := 1; i < len(box); i++ {
		for j := i; j > 0 && flightBefore(box[j], box[j-1]); j-- {
			box[j], box[j-1] = box[j-1], box[j]
		}
	}
	for i, f := range box {
		// Receive-side serialization: the destination port is the
		// contention point when many senders target one server.
		n.rx.Submit(f.ser, f.deliver)
		box[i] = nil
	}
	n.inbox = box[:0]
}

func flightBefore(a, b *flight) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

func (f *flight) runDeliver() {
	m := f.m
	f.owner.recycleFlight(f) // before the handler, so reentrant sends can reuse it
	f.owner.net.deliver(m)
}

// New returns an empty network using p's latency/bandwidth parameters.
// Scheduling lookahead is declared per node pair — minimum serialization
// plus that pair's propagation — lazily at the first window barrier after
// the node set changes.
func New(e *sim.Engine, p model.Params) *Network {
	n := &Network{e: e, p: p}
	e.World().OnBarrier(n.flush)
	return n
}

// Engine returns the simulation engine the network was created on (the
// world's root domain, not any node's domain).
func (n *Network) Engine() *sim.Engine { return n.e }

// Params returns the cost model in effect.
func (n *Network) Params() model.Params { return n.p }

// NewNode adds a machine to the network, on its own fresh event domain.
func (n *Network) NewNode(name string) *Node {
	return n.addNode(name, n.e.World().NewDomain())
}

// NewNodeInGroup adds a machine on the shared domain of affinity group
// id, creating the group's domain on first use. Grouped machines barrier
// as one domain and their mutual traffic skips the outbox entirely;
// delivery order and all observable behavior match what the same
// machines produce ungrouped.
func (n *Network) NewNodeInGroup(name string, group int) *Node {
	if n.groups == nil {
		n.groups = make(map[int]*sim.Engine)
	}
	dom := n.groups[group]
	if dom == nil {
		dom = n.e.World().NewDomain()
		n.groups[group] = dom
	}
	return n.addNode(name, dom)
}

func (n *Network) addNode(name string, dom *sim.Engine) *Node {
	node := &Node{
		net:   n,
		name:  name,
		dom:   dom,
		index: len(n.nodes),
	}
	node.tx = sim.NewResource(dom)
	node.rx = sim.NewResource(dom)
	node.drainFn = node.runDrain
	n.nodes = append(n.nodes, node)
	// The next barrier must run its hooks even under sparse elision:
	// flush re-declares the lookahead matrix when the node set changed.
	n.e.World().RequestBarrier()
	return node
}

// propagation is the one-way switch latency between two nodes: the
// profile's OneWay, plus CrossRackExtra when the endpoints sit in
// different racks.
func (n *Network) propagation(a, b *Node) sim.Duration {
	d := n.p.Network.OneWay
	if n.p.CrossRackExtra > 0 && a.rack != b.rack {
		d += n.p.CrossRackExtra
	}
	return d
}

func (n *Node) lossRand() *rand.Rand {
	if n.lossRng == nil {
		n.lossRng = rand.New(rand.NewSource(nodeSeed(n.net.e.World().Seed(), n.index)))
	}
	return n.lossRng
}

// nodeSeed decorrelates per-node loss streams from each other and from
// the sim package's per-domain streams (one SplitMix64 step over a
// distinct increment).
func nodeSeed(seed int64, index int) int64 {
	z := uint64(seed) ^ 0xd3833e804f4c574b + uint64(index)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Send transmits m.Payload from m.From to m.To. Delivery order between a
// pair of nodes follows transmission order (FIFO ports); messages may be
// dropped when the cost model's LossRate is nonzero. Send must be called
// from the source node's domain context (or from setup code between
// runs).
func (n *Network) Send(m Message) {
	if m.From == nil || m.To == nil {
		panic("fabric: Send with nil endpoint")
	}
	if m.From == m.To {
		// Loopback: skip the wire, deliver after a negligible delay. Still
		// account the send so same-node traffic shows up in byte counters.
		// Stays entirely inside the node's own domain.
		m.From.BytesSent += int64(m.Size)
		m.From.MsgsSent++
		m.From.dom.Schedule(0, m.From.newFlight(m, 0).deliver)
		return
	}
	ser := n.p.SerializationDelay(m.Size)
	m.From.BytesSent += int64(m.Size)
	m.From.MsgsSent++
	// Source-side serialization happens on the sender's clock now. Loss
	// is sampled here, from the sender node's own RNG stream, so the draw
	// order is node-deterministic regardless of domain grouping.
	finish := m.From.tx.Submit(ser, nil)
	src := m.From
	at := finish.Add(n.propagation(m.From, m.To))
	seq := src.outSeq
	src.outSeq++
	dropped := n.p.LossRate > 0 && src.lossRand().Float64() < n.p.LossRate
	if src.dom == m.To.dom {
		// Same affinity group: the message never crosses a domain
		// boundary, so it skips the outbox and schedules its arrival
		// directly — same arrival instant, same (src, seq) label, same
		// canonical drain order as the barrier path would produce.
		if dropped {
			m.To.MsgsDropped++
			return
		}
		f := m.To.newFlight(m, ser)
		f.src = src.index
		f.seq = seq
		m.To.dom.At(at, f.stage)
		return
	}
	// Cross-domain: buffer until the window barrier; the drop is
	// accounted there. An outbox going from empty to non-empty means the
	// next barrier's flush has work — raise the sparse-elision request
	// flag (an atomic store; sends run in parallel domain contexts).
	if len(src.out) == 0 {
		src.net.e.World().RequestBarrier()
	}
	src.out = append(src.out, crossEntry{
		at:      at,
		ser:     ser,
		m:       m,
		src:     src.index,
		seq:     seq,
		dropped: dropped,
	})
}

// flush is the window-barrier hook. It (re)declares the per-pair
// lookahead matrix whenever the node set has changed, then merges every
// node's outbox in the fixed total order (arrival time, source node,
// send sequence) and schedules the staging events on the destination
// domains. The merge order — never goroutine scheduling — decides
// tie-breaks, which is what makes multi-worker runs byte-identical to
// serial ones.
func (n *Network) flush() {
	if n.laDeclared != len(n.nodes) {
		n.declareLookahead()
	}
	buf := n.merge[:0]
	for _, node := range n.nodes {
		if len(node.out) == 0 {
			continue
		}
		buf = append(buf, node.out...)
		for i := range node.out {
			node.out[i] = crossEntry{} // drop payload references
		}
		node.out = node.out[:0]
	}
	if len(buf) == 0 {
		n.merge = buf
		return
	}
	// Each node's outbox is already time-sorted (its tx port is FIFO), so
	// this insertion sort is a cheap merge of a few sorted runs — and it
	// avoids the per-call closure allocation of sort.Slice on a hot path.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && crossBefore(&buf[j], &buf[j-1]); j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	delivered := 0
	for i := range buf {
		en := &buf[i]
		if en.dropped {
			en.m.To.MsgsDropped++
			continue
		}
		dst := en.m.To
		f := dst.newFlight(en.m, en.ser)
		f.src = en.src
		f.seq = en.seq
		// One staging event per (destination, instant): the first flight
		// for the pair is scheduled; later ones chain behind it in merge
		// order, and runStage walks the chain. Entries share an instant
		// only within one contiguous time run of the sorted buffer, so a
		// chain never reopens after the scan moves past its instant.
		if dst.stageTail != nil && dst.stageAt == en.at {
			dst.stageTail.next = f
			dst.stageTail = f
		} else {
			if dst.stageTail == nil {
				n.touched = append(n.touched, dst)
			}
			dst.stageAt = en.at
			dst.stageTail = f
			dst.dom.At(en.at, f.stage)
		}
		delivered++
	}
	for i, dst := range n.touched {
		dst.stageTail = nil
		n.touched[i] = nil
	}
	n.touched = n.touched[:0]
	n.e.World().AddCrossDeliveries(delivered)
	for i := range buf {
		buf[i] = crossEntry{}
	}
	n.merge = buf[:0]
}

// declareLookahead publishes one directed lookahead edge per cross-domain
// node pair: no message from a can affect b sooner than zero-payload
// serialization plus the pair's propagation. Far-apart pairs (cross-rack)
// thus get proportionally longer scheduling windows. The network's root
// domain also gets an edge to every node: processes spawned on the root
// engine (micro probes, library users) issue their first op from root's
// execution context before migrating to their machine's domain, and that
// send lands no sooner than the minimum wire latency. Root rarely holds
// events mid-run, so the edge almost never tightens a horizon.
func (n *Network) declareLookahead() {
	w := n.e.World()
	ser0 := n.p.SerializationDelay(0)
	minWire := ser0 + n.p.Network.OneWay
	for _, a := range n.nodes {
		if a.dom != n.e {
			w.SetLookahead(n.e, a.dom, minWire)
		}
		for _, b := range n.nodes {
			if a == b || a.dom == b.dom {
				continue
			}
			w.SetLookahead(a.dom, b.dom, ser0+n.propagation(a, b))
		}
	}
	n.laDeclared = len(n.nodes)
}

func crossBefore(a, b *crossEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

func (n *Network) deliver(m Message) {
	m.To.BytesReceived += int64(m.Size)
	m.To.MsgsReceived++
	if m.To.handler == nil {
		panic(fmt.Sprintf("fabric: node %q has no handler", m.To.name))
	}
	m.To.handler(m)
}
