// Package fabric models the datacenter network connecting NICs: per-port
// serialization at line rate, switch propagation latency, and optional
// message loss. Reliability (retransmission, duplicate suppression) is the
// NIC transport's job (package rdma), mirroring how RoCE NICs layer a
// reliable connection over a lossy Ethernet fabric.
//
// Messages carry decoded payloads plus an explicit wire size; the size —
// computed from the real encodings in package wire — drives bandwidth
// accounting, so the fabric does not pay for encoding on the hot path. The
// rdma package's tests exercise the full encode/decode path separately.
package fabric

import (
	"fmt"

	"prism/internal/model"
	"prism/internal/sim"
)

// Message is one datagram in flight.
type Message struct {
	From, To *Node
	Size     int // encoded size in bytes, excluding frame overhead
	Payload  any
}

// Handler receives messages delivered to a node.
type Handler func(m Message)

// Node is one machine's NIC port.
type Node struct {
	net     *Network
	name    string
	tx, rx  *sim.Resource
	handler Handler

	// Counters for reporting and tests.
	BytesSent     int64
	BytesReceived int64
	MsgsSent      int64
	MsgsReceived  int64
	MsgsDropped   int64
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// SetHandler installs the delivery callback. It must be set before any
// message arrives.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// TxQueueDelay reports the current backlog on the node's transmit port.
func (n *Node) TxQueueDelay() sim.Duration { return n.tx.QueueDelay() }

// Network is a set of nodes joined through one switch profile.
type Network struct {
	e     *sim.Engine
	p     model.Params
	nodes []*Node
	free  *flight // recycled in-flight message carriers
}

// flight carries one message through its delivery hops (tx serialization →
// switch propagation → rx serialization → handler). The hop callbacks are
// bound to the flight once, when it is first allocated, so a recycled
// flight moves a message end to end without allocating.
type flight struct {
	net  *Network
	m    Message
	ser  sim.Duration
	next *flight

	afterTx  func()
	atSwitch func()
	deliver  func()
}

func (n *Network) newFlight(m Message, ser sim.Duration) *flight {
	f := n.free
	if f != nil {
		n.free = f.next
		f.next = nil
	} else {
		f = &flight{net: n}
		f.afterTx = f.runAfterTx
		f.atSwitch = f.runAtSwitch
		f.deliver = f.runDeliver
	}
	f.m = m
	f.ser = ser
	return f
}

func (n *Network) recycle(f *flight) {
	f.m = Message{} // drop payload references
	f.next = n.free
	n.free = f
}

func (f *flight) runAfterTx() {
	n := f.net
	if n.p.LossRate > 0 && n.e.Rand().Float64() < n.p.LossRate {
		f.m.To.MsgsDropped++
		n.recycle(f)
		return
	}
	n.e.Schedule(n.p.Network.OneWay, f.atSwitch)
}

func (f *flight) runAtSwitch() {
	// Receive-side serialization: the destination port is the contention
	// point when many senders target one server.
	f.m.To.rx.Submit(f.ser, f.deliver)
}

func (f *flight) runDeliver() {
	m := f.m
	f.net.recycle(f) // before the handler, so reentrant sends can reuse it
	f.net.deliver(m)
}

// New returns an empty network using p's latency/bandwidth parameters.
func New(e *sim.Engine, p model.Params) *Network {
	return &Network{e: e, p: p}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.e }

// Params returns the cost model in effect.
func (n *Network) Params() model.Params { return n.p }

// NewNode adds a machine to the network.
func (n *Network) NewNode(name string) *Node {
	node := &Node{
		net:  n,
		name: name,
		tx:   sim.NewResource(n.e),
		rx:   sim.NewResource(n.e),
	}
	n.nodes = append(n.nodes, node)
	return node
}

// Send transmits m.Payload from m.From to m.To. Delivery order between a
// pair of nodes follows transmission order (FIFO ports); messages may be
// dropped when the cost model's LossRate is nonzero.
func (n *Network) Send(m Message) {
	if m.From == nil || m.To == nil {
		panic("fabric: Send with nil endpoint")
	}
	if m.From == m.To {
		// Loopback: skip the wire, deliver after a negligible delay. Still
		// account the send so same-node traffic shows up in byte counters.
		m.From.BytesSent += int64(m.Size)
		m.From.MsgsSent++
		n.e.Schedule(0, n.newFlight(m, 0).deliver)
		return
	}
	ser := n.p.SerializationDelay(m.Size)
	m.From.BytesSent += int64(m.Size)
	m.From.MsgsSent++
	m.From.tx.Submit(ser, n.newFlight(m, ser).afterTx)
}

func (n *Network) deliver(m Message) {
	m.To.BytesReceived += int64(m.Size)
	m.To.MsgsReceived++
	if m.To.handler == nil {
		panic(fmt.Sprintf("fabric: node %q has no handler", m.To.name))
	}
	m.To.handler(m)
}
