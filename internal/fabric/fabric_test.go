package fabric

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"prism/internal/model"
	"prism/internal/sim"
)

func testParams() model.Params {
	p := model.Default()
	p.Network = model.Rack
	return p
}

func TestPointToPointLatency(t *testing.T) {
	e := sim.NewEngine(1)
	p := testParams()
	net := New(e, p)
	a, b := net.NewNode("a"), net.NewNode("b")
	a.SetHandler(func(Message) {})
	var arrived sim.Time
	b.SetHandler(func(m Message) { arrived = b.Domain().Now() })
	size := 512
	net.Send(Message{From: a, To: b, Size: size})
	e.Run()
	want := sim.Time(2*p.SerializationDelay(size) + p.Network.OneWay)
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestFIFOBetweenPair(t *testing.T) {
	e := sim.NewEngine(1)
	net := New(e, testParams())
	a, b := net.NewNode("a"), net.NewNode("b")
	var got []int
	b.SetHandler(func(m Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 10; i++ {
		net.Send(Message{From: a, To: b, Size: 100 + i, Payload: i})
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

func TestReceiverPortContention(t *testing.T) {
	// Two senders saturating one receiver: total delivery time is bounded
	// below by the receiver's serialization of all bytes.
	e := sim.NewEngine(1)
	p := testParams()
	net := New(e, p)
	s1, s2, dst := net.NewNode("s1"), net.NewNode("s2"), net.NewNode("dst")
	n := 0
	dst.SetHandler(func(Message) { n++ })
	const msgs, size = 50, 4096
	for i := 0; i < msgs; i++ {
		net.Send(Message{From: s1, To: dst, Size: size})
		net.Send(Message{From: s2, To: dst, Size: size})
	}
	e.Run()
	if n != 2*msgs {
		t.Fatalf("delivered %d, want %d", n, 2*msgs)
	}
	minTime := sim.Time(time.Duration(2*msgs) * p.SerializationDelay(size))
	if got := dst.Domain().Now(); got < minTime {
		t.Fatalf("finished at %v, faster than receiver line rate allows (%v)", got, minTime)
	}
}

func TestLoopback(t *testing.T) {
	e := sim.NewEngine(1)
	net := New(e, testParams())
	a := net.NewNode("a")
	done := false
	a.SetHandler(func(m Message) { done = true })
	net.Send(Message{From: a, To: a, Size: 64})
	e.Run()
	if !done {
		t.Fatal("loopback not delivered")
	}
	if got := a.Domain().Now(); got != 0 {
		t.Fatalf("loopback took %v", got)
	}
	// Same-node traffic must be visible to the byte counters.
	if a.BytesSent != 64 || a.MsgsSent != 1 {
		t.Fatalf("loopback sender counters: %d bytes, %d msgs", a.BytesSent, a.MsgsSent)
	}
	if a.BytesReceived != 64 || a.MsgsReceived != 1 {
		t.Fatalf("loopback receiver counters: %d bytes, %d msgs", a.BytesReceived, a.MsgsReceived)
	}
}

func TestLossDropsMessages(t *testing.T) {
	e := sim.NewEngine(3)
	p := testParams()
	p.LossRate = 0.5
	net := New(e, p)
	a, b := net.NewNode("a"), net.NewNode("b")
	got := 0
	b.SetHandler(func(Message) { got++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		net.Send(Message{From: a, To: b, Size: 64})
	}
	e.Run()
	if got == 0 || got == sent {
		t.Fatalf("loss rate 0.5 delivered %d/%d", got, sent)
	}
	if b.MsgsDropped+b.MsgsReceived != sent {
		t.Fatalf("dropped %d + received %d != sent %d", b.MsgsDropped, b.MsgsReceived, sent)
	}
	// Crude binomial check: expect 500 ± 5 sigma (~79).
	if got < 421 || got > 579 {
		t.Fatalf("delivered %d, far from expected 500", got)
	}
}

func TestCounters(t *testing.T) {
	e := sim.NewEngine(1)
	net := New(e, testParams())
	a, b := net.NewNode("a"), net.NewNode("b")
	b.SetHandler(func(Message) {})
	net.Send(Message{From: a, To: b, Size: 123})
	e.Run()
	if a.BytesSent != 123 || a.MsgsSent != 1 {
		t.Fatalf("sender counters: %d bytes, %d msgs", a.BytesSent, a.MsgsSent)
	}
	if b.BytesReceived != 123 || b.MsgsReceived != 1 {
		t.Fatalf("receiver counters: %d bytes, %d msgs", b.BytesReceived, b.MsgsReceived)
	}
}

func TestMissingHandlerPanics(t *testing.T) {
	e := sim.NewEngine(1)
	net := New(e, testParams())
	a, b := net.NewNode("a"), net.NewNode("b")
	net.Send(Message{From: a, To: b, Size: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery without handler did not panic")
		}
	}()
	e.Run()
}

// Property: delivery between a fixed pair preserves send order for any
// mix of message sizes (FIFO ports), with loss disabled.
func TestQuickFIFOAnySizes(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		e := sim.NewEngine(1)
		net := New(e, testParams())
		a, b := net.NewNode("a"), net.NewNode("b")
		var got []int
		b.SetHandler(func(m Message) { got = append(got, m.Payload.(int)) })
		for i, sz := range sizes {
			net.Send(Message{From: a, To: b, Size: int(sz), Payload: i})
		}
		e.Run()
		if len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(33))}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	// Total delivery time of a burst equals the serialization sum at the
	// bottleneck port plus one propagation delay.
	e := sim.NewEngine(1)
	p := testParams()
	net := New(e, p)
	a, b := net.NewNode("a"), net.NewNode("b")
	b.SetHandler(func(Message) {})
	const n, size = 100, 1024
	for i := 0; i < n; i++ {
		net.Send(Message{From: a, To: b, Size: size})
	}
	e.Run()
	ser := p.SerializationDelay(size)
	want := sim.Time(time.Duration(n)*ser + p.Network.OneWay + ser)
	if got := b.Domain().Now(); got != want {
		t.Fatalf("burst finished at %v, want %v", got, want)
	}
}

// TestCrossDomainDeterminism: a multi-node message storm — every node
// seeding traffic, receivers forwarding to RNG-chosen peers for several
// hops — must produce byte-identical per-node delivery traces and
// counters whether the domains execute serially or on a worker pool. The
// (arrival time, source node, send sequence) merge order at window
// barriers is the only tie-break, so goroutine scheduling must be
// invisible.
func TestCrossDomainDeterminism(t *testing.T) {
	run := func(workers int) string {
		e := sim.NewEngine(7)
		net := New(e, testParams())
		const N = 6
		nodes := make([]*Node, N)
		traces := make([][]string, N)
		for i := 0; i < N; i++ {
			nodes[i] = net.NewNode(string(rune('a' + i)))
		}
		for i := 0; i < N; i++ {
			i := i
			self := nodes[i]
			self.SetHandler(func(m Message) {
				hops := m.Payload.(int)
				traces[i] = append(traces[i],
					fmt.Sprintf("%s->%s@%d hops=%d", m.From.Name(), self.Name(), self.Domain().Now(), hops))
				if hops > 0 {
					// Forward to a peer drawn from this domain's RNG.
					next := nodes[self.Domain().Rand().Intn(N)]
					if next != self {
						net.Send(Message{From: self, To: next, Size: 64 + hops, Payload: hops - 1})
					}
				}
			})
		}
		for i := 0; i < N; i++ {
			i := i
			src := nodes[i]
			for j := 0; j < N; j++ {
				if j == i {
					continue
				}
				dst := nodes[j]
				src.Domain().Schedule(sim.Duration(i+j)*time.Microsecond, func() {
					net.Send(Message{From: src, To: dst, Size: 128, Payload: 4})
				})
			}
		}
		e.World().SetWorkers(workers)
		e.Run()
		var b strings.Builder
		for i, tr := range traces {
			fmt.Fprintf(&b, "node %s: sent=%d/%dB recv=%d/%dB dropped=%d\n",
				nodes[i].Name(), nodes[i].MsgsSent, nodes[i].BytesSent,
				nodes[i].MsgsReceived, nodes[i].BytesReceived, nodes[i].MsgsDropped)
			for _, line := range tr {
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	serial := run(1)
	if serial == "" || !strings.Contains(serial, "hops=0") {
		t.Fatalf("storm did not cascade:\n%s", serial)
	}
	for _, w := range []int{2, 4} {
		if par := run(w); par != serial {
			t.Fatalf("workers=%d trace differs from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				w, serial, w, par)
		}
	}
}
