package rdma

import (
	"fmt"

	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/sim"
	"prism/internal/wire"
)

// Client is a client machine's NIC endpoint. Many connections (queue
// pairs) to different servers can share one client NIC, and many
// closed-loop client processes can share one machine — as in the paper's
// testbed, where up to 11 client machines drive one server.
type Client struct {
	e     *sim.Engine
	net   *fabric.Network
	node  *fabric.Node
	conns map[connKey]*Conn
}

type connKey struct {
	node *fabric.Node // the server's NIC
	id   uint64
}

// NewClient attaches a client NIC to the network, on its own fresh event
// domain.
func NewClient(net *fabric.Network, name string) *Client {
	return newClient(net, net.NewNode(name))
}

// NewClientInGroup attaches a client NIC on the shared domain of affinity
// group id (see fabric.Network.NewNodeInGroup): machines in one group
// barrier as a single domain and their mutual traffic skips the window
// barrier entirely. Behavior is byte-identical to ungrouped clients.
func NewClientInGroup(net *fabric.Network, name string, group int) *Client {
	return newClient(net, net.NewNodeInGroup(name, group))
}

func newClient(net *fabric.Network, node *fabric.Node) *Client {
	c := &Client{
		e:     node.Domain(),
		net:   net,
		node:  node,
		conns: make(map[connKey]*Conn),
	}
	c.node.SetHandler(c.onMessage)
	return c
}

// Node returns the client's fabric node.
func (c *Client) Node() *fabric.Node { return c.node }

// Domain returns the event domain this client machine lives on. Futures
// for this machine's connections complete there, so closed-loop client
// processes should be spawned on it.
func (c *Client) Domain() *sim.Engine { return c.e }

// Conn is a reliable connection (queue pair) to one server. Not safe for
// use by multiple simulation processes at once; give each closed-loop
// client its own Conn, as real applications give each thread its own QP.
type Conn struct {
	client *Client
	srv    *Server
	id     uint64
	seq    uint64

	// TempAddr/TempKey locate this connection's temporary buffer on the
	// server, the redirect target for chains (§3.4).
	TempAddr memory.Addr
	TempKey  memory.RKey

	pending map[uint64]*pendingReq
	// queue holds requests awaiting a send-window slot. The window is the
	// server's replay-ring depth: a request is only on the wire while its
	// response can still be replayed, so a retransmitted duplicate can
	// never re-execute (re-execution of a chain could clobber the shared
	// temp buffer under a live chain). qhead is the pop cursor: entries
	// before it are drained, and the slice rewinds to its full capacity
	// once empty, so the steady state appends into retained storage.
	queue []*pendingReq
	qhead int

	// Retransmissions counts timer-driven resends (loss recovery).
	Retransmissions int64

	// prFree pools request objects: once a request's response arrives it
	// can be reused for the next issue on this connection. A duplicate of
	// the old request may still be in flight on a lossy network; the
	// epoch bumped on reuse lets the server discard it (see wire.Request).
	// The pooled future is Reset rather than reallocated, and an
	// ops-scratch slice handed out by Ops is recycled with the request.
	prFree []*pendingReq

	// prepared is the request whose op scratch the last Ops call handed
	// out; the next IssueAsync on this connection claims it.
	prepared *pendingReq

	// wcheck is the scratch for wire-check mode (see SetWireCheck); nil
	// until the first checked transmission.
	wcheck *wireState
}

type pendingReq struct {
	req   *wire.Request
	fut   *sim.Future[[]wire.Result]
	timer sim.Timer
	// opsOwned marks req.Ops as connection-owned scratch (handed out by
	// Ops): its capacity is retained and its entries zeroed at recycle.
	// Caller-owned slices are dropped instead — they must never be handed
	// back out as scratch.
	opsOwned bool
}

// Connect opens a queue pair from the client to the server. Connection
// setup is control-plane work (CPU + kernel registration on the server
// side); its cost is not modeled, as the paper's experiments pre-establish
// all connections.
func (c *Client) Connect(srv *Server) *Conn {
	id, temp, tempKey := srv.connect(c.node)
	conn := &Conn{
		client:   c,
		srv:      srv,
		id:       id,
		TempAddr: temp,
		TempKey:  tempKey,
		pending:  make(map[uint64]*pendingReq),
	}
	c.conns[connKey{node: srv.node, id: id}] = conn
	return conn
}

// Server returns the remote end of the connection.
func (c *Conn) Server() *Server { return c.srv }

// Engine returns the client machine's event domain. Futures layered on
// top of this connection's completions (e.g. by abd) must be bound to
// it, because that is where they will be completed.
func (c *Conn) Engine() *sim.Engine { return c.client.e }

// Ops returns an n-op scratch slice owned by the connection, zeroed and
// ready to fill. The caller must hand it to the next IssueAsync/Issue on
// this connection, which recycles it when the response arrives — the
// zero-allocation alternative to building a fresh []wire.Op per request.
// The slice (including payload/mask fields set into it) must not be
// retained past the response.
func (c *Conn) Ops(n int) []wire.Op {
	pr := c.prepared
	if pr == nil {
		if m := len(c.prFree); m > 0 {
			pr = c.prFree[m-1]
			c.prFree[m-1] = nil
			c.prFree = c.prFree[:m-1]
		} else {
			pr = &pendingReq{req: &wire.Request{}}
		}
		c.prepared = pr
	}
	ops := pr.req.Ops
	if !pr.opsOwned || cap(ops) < n {
		ops = make([]wire.Op, n)
		pr.opsOwned = true
	} else {
		ops = ops[:n]
		for i := range ops {
			ops[i] = wire.Op{}
		}
	}
	pr.req.Ops = ops
	return ops
}

// IssueAsync transmits a chain of ops and returns a future for the
// per-op results. Requests beyond the send window queue locally until a
// slot frees (flow control, as real RC queue pairs bound outstanding
// work requests).
func (c *Conn) IssueAsync(ops []wire.Op) *sim.Future[[]wire.Result] {
	if len(ops) == 0 {
		panic("rdma: empty request")
	}
	var pr *pendingReq
	if p := c.prepared; p != nil && len(p.req.Ops) > 0 && &ops[0] == &p.req.Ops[0] {
		// The caller filled the scratch handed out by Ops.
		pr = p
		c.prepared = nil
		pr.req.Conn, pr.req.Seq, pr.req.Ops = c.id, c.seq, ops
		pr.req.Epoch++ // invalidate in-flight duplicates of the old incarnation
	} else if n := len(c.prFree); n > 0 {
		pr = c.prFree[n-1]
		c.prFree[n-1] = nil
		c.prFree = c.prFree[:n-1]
		pr.req.Conn, pr.req.Seq, pr.req.Ops = c.id, c.seq, ops
		pr.req.Epoch++ // invalidate in-flight duplicates of the old incarnation
		pr.opsOwned = false
	} else {
		pr = &pendingReq{req: &wire.Request{Conn: c.id, Seq: c.seq, Ops: ops}}
	}
	if pr.fut == nil {
		pr.fut = sim.NewFuture[[]wire.Result](c.client.e)
	} else {
		pr.fut.Reset()
	}
	c.seq++
	c.queue = append(c.queue, pr)
	c.drainQueue()
	return pr.fut
}

// drainQueue transmits queued requests while the window allows. The
// window is strict on the sequence range — request N is only on the wire
// when N-replayDepth has been acknowledged — so (a) the server's replay
// ring always covers every in-flight request and (b) per-connection
// resources indexed by seq mod window (temp-buffer slots) are never
// shared by two live requests.
func (c *Conn) drainQueue() {
	for c.qhead < len(c.queue) {
		pr := c.queue[c.qhead]
		if len(c.pending) > 0 {
			min := ^uint64(0)
			for s := range c.pending {
				if s < min {
					min = s
				}
			}
			if pr.req.Seq >= min+replayDepth {
				return
			}
		}
		c.queue[c.qhead] = nil
		c.qhead++
		c.pending[pr.req.Seq] = pr
		c.transmit(pr.req)
		if c.client.net.Params().LossRate > 0 {
			c.armRetransmit(pr)
		}
	}
	// Drained: rewind so future appends reuse the retained storage.
	c.queue = c.queue[:0]
	c.qhead = 0
}

func (c *Conn) transmit(req *wire.Request) {
	if wireCheck {
		if c.wcheck == nil {
			c.wcheck = &wireState{}
		}
		c.wcheck.checkRequest(req)
	}
	c.client.net.Send(fabric.Message{
		From:    c.client.node,
		To:      c.srv.node,
		Size:    wire.RequestWireSize(req),
		Payload: req,
		Tag:     req.Epoch, // snapshot: receiver drops if the object was recycled
	})
}

func (c *Conn) armRetransmit(pr *pendingReq) {
	pr.timer = c.client.e.Schedule(c.client.net.Params().RetransmitTimeout, func() {
		if pr.fut.Done() {
			return
		}
		c.Retransmissions++
		c.transmit(pr.req)
		c.armRetransmit(pr)
	})
}

// Issue transmits ops and blocks the process until the response arrives.
func (c *Conn) Issue(p *sim.Proc, ops ...wire.Op) []wire.Result {
	return c.IssueAsync(ops).Wait(p)
}

// onMessage completes pending requests as responses arrive.
func (c *Client) onMessage(m fabric.Message) {
	resp, ok := m.Payload.(*wire.Response)
	if !ok {
		panic(fmt.Sprintf("rdma: client %s received %T", c.node.Name(), m.Payload))
	}
	if resp.Epoch != m.Tag {
		// The server recycled this response object into a newer incarnation
		// while the (duplicate) datagram was in flight; its contents answer
		// a different request now. Drop it.
		return
	}
	conn, ok := c.conns[connKey{node: m.From, id: resp.Conn}]
	if !ok {
		panic(fmt.Sprintf("rdma: response for unknown connection %d from %s", resp.Conn, m.From.Name()))
	}
	pr, ok := conn.pending[resp.Seq]
	if !ok {
		return // duplicate response (original + replayed retransmission)
	}
	delete(conn.pending, resp.Seq)
	pr.timer.Stop()
	fut := pr.fut
	// Recycle the request object — future and op scratch included — for
	// the next issue on this connection. Any in-flight duplicate is
	// invalidated by the epoch bump on reuse. Connection-owned op scratch
	// keeps its capacity with the entries zeroed (dropping payload refs);
	// caller-owned slices are dropped entirely.
	if pr.opsOwned {
		ops := pr.req.Ops
		for i := range ops {
			ops[i] = wire.Op{}
		}
		pr.req.Ops = ops[:0]
	} else {
		pr.req.Ops = nil
	}
	conn.prFree = append(conn.prFree, pr)
	conn.drainQueue() // a window slot may have freed
	fut.Complete(resp.Results)
}
