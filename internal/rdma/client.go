package rdma

import (
	"fmt"

	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/sim"
	"prism/internal/wire"
)

// Client is a client machine's NIC endpoint. Many connections (queue
// pairs) to different servers can share one client NIC, and many
// closed-loop client processes can share one machine — as in the paper's
// testbed, where up to 11 client machines drive one server.
type Client struct {
	e     *sim.Engine
	net   *fabric.Network
	node  *fabric.Node
	conns map[connKey]*Conn
}

type connKey struct {
	node *fabric.Node // the server's NIC
	id   uint64
}

// NewClient attaches a client NIC to the network.
func NewClient(net *fabric.Network, name string) *Client {
	c := &Client{
		e:     net.Engine(),
		net:   net,
		node:  net.NewNode(name),
		conns: make(map[connKey]*Conn),
	}
	c.node.SetHandler(c.onMessage)
	return c
}

// Node returns the client's fabric node.
func (c *Client) Node() *fabric.Node { return c.node }

// Conn is a reliable connection (queue pair) to one server. Not safe for
// use by multiple simulation processes at once; give each closed-loop
// client its own Conn, as real applications give each thread its own QP.
type Conn struct {
	client *Client
	srv    *Server
	id     uint64
	seq    uint64

	// TempAddr/TempKey locate this connection's temporary buffer on the
	// server, the redirect target for chains (§3.4).
	TempAddr memory.Addr
	TempKey  memory.RKey

	pending map[uint64]*pendingReq
	// queue holds requests awaiting a send-window slot. The window is the
	// server's replay-ring depth: a request is only on the wire while its
	// response can still be replayed, so a retransmitted duplicate can
	// never re-execute (re-execution of a chain could clobber the shared
	// temp buffer under a live chain).
	queue []*pendingReq

	// Retransmissions counts timer-driven resends (loss recovery).
	Retransmissions int64

	// noLoss enables the request pool: on a lossless network a request
	// object has no in-flight duplicates once its response arrives, so it
	// can be reused for the next issue on this connection.
	noLoss bool
	prFree []*pendingReq
}

type pendingReq struct {
	req   *wire.Request
	fut   *sim.Future[[]wire.Result]
	timer sim.Timer
}

// Connect opens a queue pair from the client to the server. Connection
// setup is control-plane work (CPU + kernel registration on the server
// side); its cost is not modeled, as the paper's experiments pre-establish
// all connections.
func (c *Client) Connect(srv *Server) *Conn {
	id, temp, tempKey := srv.connect(c.node)
	conn := &Conn{
		client:   c,
		srv:      srv,
		id:       id,
		TempAddr: temp,
		TempKey:  tempKey,
		pending:  make(map[uint64]*pendingReq),
		noLoss:   c.net.Params().LossRate == 0,
	}
	c.conns[connKey{node: srv.node, id: id}] = conn
	return conn
}

// Server returns the remote end of the connection.
func (c *Conn) Server() *Server { return c.srv }

// IssueAsync transmits a chain of ops and returns a future for the
// per-op results. Requests beyond the send window queue locally until a
// slot frees (flow control, as real RC queue pairs bound outstanding
// work requests).
func (c *Conn) IssueAsync(ops []wire.Op) *sim.Future[[]wire.Result] {
	if len(ops) == 0 {
		panic("rdma: empty request")
	}
	var pr *pendingReq
	if n := len(c.prFree); n > 0 {
		pr = c.prFree[n-1]
		c.prFree[n-1] = nil
		c.prFree = c.prFree[:n-1]
		pr.req.Conn, pr.req.Seq, pr.req.Ops = c.id, c.seq, ops
	} else {
		pr = &pendingReq{req: &wire.Request{Conn: c.id, Seq: c.seq, Ops: ops}}
	}
	pr.fut = sim.NewFuture[[]wire.Result](c.client.e)
	c.seq++
	c.queue = append(c.queue, pr)
	c.drainQueue()
	return pr.fut
}

// drainQueue transmits queued requests while the window allows. The
// window is strict on the sequence range — request N is only on the wire
// when N-replayDepth has been acknowledged — so (a) the server's replay
// ring always covers every in-flight request and (b) per-connection
// resources indexed by seq mod window (temp-buffer slots) are never
// shared by two live requests.
func (c *Conn) drainQueue() {
	for len(c.queue) > 0 {
		pr := c.queue[0]
		if len(c.pending) > 0 {
			min := ^uint64(0)
			for s := range c.pending {
				if s < min {
					min = s
				}
			}
			if pr.req.Seq >= min+replayDepth {
				return
			}
		}
		c.queue = c.queue[1:]
		c.pending[pr.req.Seq] = pr
		c.transmit(pr.req)
		if c.client.net.Params().LossRate > 0 {
			c.armRetransmit(pr)
		}
	}
}

func (c *Conn) transmit(req *wire.Request) {
	c.client.net.Send(fabric.Message{
		From:    c.client.node,
		To:      c.srv.node,
		Size:    wire.RequestWireSize(req),
		Payload: req,
	})
}

func (c *Conn) armRetransmit(pr *pendingReq) {
	pr.timer = c.client.e.Schedule(c.client.net.Params().RetransmitTimeout, func() {
		if pr.fut.Done() {
			return
		}
		c.Retransmissions++
		c.transmit(pr.req)
		c.armRetransmit(pr)
	})
}

// Issue transmits ops and blocks the process until the response arrives.
func (c *Conn) Issue(p *sim.Proc, ops ...wire.Op) []wire.Result {
	return c.IssueAsync(ops).Wait(p)
}

// onMessage completes pending requests as responses arrive.
func (c *Client) onMessage(m fabric.Message) {
	resp, ok := m.Payload.(*wire.Response)
	if !ok {
		panic(fmt.Sprintf("rdma: client %s received %T", c.node.Name(), m.Payload))
	}
	conn, ok := c.conns[connKey{node: m.From, id: resp.Conn}]
	if !ok {
		panic(fmt.Sprintf("rdma: response for unknown connection %d from %s", resp.Conn, m.From.Name()))
	}
	pr, ok := conn.pending[resp.Seq]
	if !ok {
		return // duplicate response (original + replayed retransmission)
	}
	delete(conn.pending, resp.Seq)
	pr.timer.Stop()
	fut := pr.fut
	if conn.noLoss {
		// No duplicate of this request can still be in flight: recycle the
		// request object for the next issue on this connection.
		pr.req.Ops = nil
		pr.fut = nil
		conn.prFree = append(conn.prFree, pr)
	}
	conn.drainQueue() // a window slot may have freed
	fut.Complete(resp.Results)
}
