package rdma

import (
	"fmt"

	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/sim"
	"prism/internal/transport"
	"prism/internal/wire"
)

// Client is a client machine's NIC endpoint. Many connections (queue
// pairs) to different servers can share one client NIC, and many
// closed-loop client processes can share one machine — as in the paper's
// testbed, where up to 11 client machines drive one server.
type Client struct {
	e     *sim.Engine
	net   *fabric.Network
	node  *fabric.Node
	conns map[connKey]*Conn
}

type connKey struct {
	node *fabric.Node // the server's NIC
	id   uint64
}

// NewClient attaches a client NIC to the network, on its own fresh event
// domain.
func NewClient(net *fabric.Network, name string) *Client {
	return newClient(net, net.NewNode(name))
}

// NewClientInGroup attaches a client NIC on the shared domain of affinity
// group id (see fabric.Network.NewNodeInGroup): machines in one group
// barrier as a single domain and their mutual traffic skips the window
// barrier entirely. Behavior is byte-identical to ungrouped clients.
func NewClientInGroup(net *fabric.Network, name string, group int) *Client {
	return newClient(net, net.NewNodeInGroup(name, group))
}

func newClient(net *fabric.Network, node *fabric.Node) *Client {
	c := &Client{
		e:     node.Domain(),
		net:   net,
		node:  node,
		conns: make(map[connKey]*Conn),
	}
	c.node.SetHandler(c.onMessage)
	return c
}

// Node returns the client's fabric node.
func (c *Client) Node() *fabric.Node { return c.node }

// Domain returns the event domain this client machine lives on. Futures
// for this machine's connections complete there, so closed-loop client
// processes should be spawned on it.
func (c *Client) Domain() *sim.Engine { return c.e }

// Conn is a reliable connection (queue pair) to one server. Not safe for
// use by multiple simulation processes at once; give each closed-loop
// client its own Conn, as real applications give each thread its own QP.
//
// The issue/complete machinery — pooled epoch-stamped request records,
// connection-owned op scratch, and the strict send window — lives in
// transport.Window, shared with the live stream transports; this type
// binds it to the simulated fabric with a pooled future per request and
// a retransmit timer on lossy networks. The window depth is the
// server's replay-ring depth: a request is only on the wire while its
// response can still be replayed, so a retransmitted duplicate can
// never re-execute (re-execution of a chain could clobber the shared
// temp buffer under a live chain).
type Conn struct {
	client *Client
	srv    *Server
	id     uint64

	// TempAddr/TempKey locate this connection's temporary buffer on the
	// server, the redirect target for chains (§3.4).
	TempAddr memory.Addr
	TempKey  memory.RKey

	win *transport.Window[simPending]

	// Retransmissions counts timer-driven resends (loss recovery).
	Retransmissions int64

	// wcheck is the scratch for wire-check mode (see SetWireCheck); nil
	// until the first checked transmission.
	wcheck *wireState
}

// simPending is the sim transport's per-entry completion state: the
// pooled future (Reset rather than reallocated on entry reuse) and the
// retransmit timer armed on lossy networks.
type simPending struct {
	fut   *sim.Future[[]wire.Result]
	timer sim.Timer
}

// Connect opens a queue pair from the client to the server. Connection
// setup is control-plane work (CPU + kernel registration on the server
// side); its cost is not modeled, as the paper's experiments pre-establish
// all connections.
func (c *Client) Connect(srv *Server) *Conn {
	id, temp, tempKey := srv.connect(c.node)
	conn := &Conn{
		client:   c,
		srv:      srv,
		id:       id,
		TempAddr: temp,
		TempKey:  tempKey,
	}
	conn.win = transport.NewWindow[simPending](id, replayDepth, conn.transmitEntry)
	c.conns[connKey{node: srv.node, id: id}] = conn
	return conn
}

// Server returns the remote end of the connection.
func (c *Conn) Server() *Server { return c.srv }

// Engine returns the client machine's event domain. Futures layered on
// top of this connection's completions (e.g. by abd) must be bound to
// it, because that is where they will be completed.
func (c *Conn) Engine() *sim.Engine { return c.client.e }

// Ops returns an n-op scratch slice owned by the connection, zeroed and
// ready to fill. The caller must hand it to the next IssueAsync/Issue on
// this connection, which recycles it when the response arrives — the
// zero-allocation alternative to building a fresh []wire.Op per request.
// The slice (including payload/mask fields set into it) must not be
// retained past the response.
func (c *Conn) Ops(n int) []wire.Op { return c.win.Ops(n) }

// IssueAsync transmits a chain of ops and returns a future for the
// per-op results. Requests beyond the send window queue locally until a
// slot frees (flow control, as real RC queue pairs bound outstanding
// work requests).
func (c *Conn) IssueAsync(ops []wire.Op) *sim.Future[[]wire.Result] {
	if len(ops) == 0 {
		panic("rdma: empty request")
	}
	e := c.win.Prepare(ops)
	if e.X.fut == nil {
		e.X.fut = sim.NewFuture[[]wire.Result](c.client.e)
	} else {
		e.X.fut.Reset()
	}
	c.win.Enqueue(e)
	return e.X.fut
}

// transmitEntry is the window's transmit hook: put the request on the
// fabric and, if the network can lose it, arm the retransmit timer.
func (c *Conn) transmitEntry(e *transport.Entry[simPending]) {
	c.transmit(e.Req)
	if c.client.net.Params().LossRate > 0 {
		c.armRetransmit(e)
	}
}

func (c *Conn) transmit(req *wire.Request) {
	if wireCheck {
		if c.wcheck == nil {
			c.wcheck = &wireState{}
		}
		c.wcheck.checkRequest(req)
	}
	c.client.net.Send(fabric.Message{
		From:    c.client.node,
		To:      c.srv.node,
		Size:    wire.RequestWireSize(req),
		Payload: req,
		Tag:     req.Epoch, // snapshot: receiver drops if the object was recycled
	})
}

func (c *Conn) armRetransmit(e *transport.Entry[simPending]) {
	e.X.timer = c.client.e.Schedule(c.client.net.Params().RetransmitTimeout, func() {
		if e.X.fut.Done() {
			return
		}
		c.Retransmissions++
		c.transmit(e.Req)
		c.armRetransmit(e)
	})
}

// Issue transmits ops and blocks the process until the response arrives.
func (c *Conn) Issue(p *sim.Proc, ops ...wire.Op) []wire.Result {
	return c.IssueAsync(ops).Wait(p)
}

// onMessage completes pending requests as responses arrive.
func (c *Client) onMessage(m fabric.Message) {
	resp, ok := m.Payload.(*wire.Response)
	if !ok {
		panic(fmt.Sprintf("rdma: client %s received %T", c.node.Name(), m.Payload))
	}
	if resp.Epoch != m.Tag {
		// The server recycled this response object into a newer incarnation
		// while the (duplicate) datagram was in flight; its contents answer
		// a different request now. Drop it.
		return
	}
	conn, ok := c.conns[connKey{node: m.From, id: resp.Conn}]
	if !ok {
		panic(fmt.Sprintf("rdma: response for unknown connection %d from %s", resp.Conn, m.From.Name()))
	}
	e := conn.win.Take(resp.Seq)
	if e == nil {
		return // duplicate response (original + replayed retransmission)
	}
	e.X.timer.Stop()
	fut := e.X.fut
	// Recycle the request record — future and op scratch included — for
	// the next issue on this connection; see transport.Window.Recycle.
	conn.win.Recycle(e)
	conn.win.Drain() // a window slot may have freed
	fut.Complete(resp.Results)
}
