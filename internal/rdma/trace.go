package rdma

import (
	"fmt"

	"prism/internal/sim"
	"prism/internal/wire"
)

// TraceEvent records one executed operation on a server NIC, for
// debugging, teaching (cmd/prismtrace), and tests that assert on the exact
// wire-level behavior of a protocol.
type TraceEvent struct {
	At     sim.Time
	Domain int // event domain of the server that executed the op
	Conn   uint64
	Seq    uint64
	OpIdx  int // position within the request's chain
	Code   wire.OpCode
	Flags  wire.Flags
	Status wire.Status
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%v dom=%d conn=%d seq=%d op[%d] %v flags=%#x -> %v",
		e.At, e.Domain, e.Conn, e.Seq, e.OpIdx, e.Code, uint8(e.Flags), e.Status)
}

// Tracer receives TraceEvents as operations execute.
type Tracer func(TraceEvent)

// SetTracer installs (or, with nil, removes) an op tracer. Tracing is
// free when disabled.
func (s *Server) SetTracer(t Tracer) { s.tracer = t }

// TraceRing is a bounded in-memory tracer retaining the most recent
// events.
type TraceRing struct {
	events []TraceEvent
	next   int
	full   bool
}

// NewTraceRing returns a ring retaining the last n events.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		panic("rdma: trace ring needs capacity")
	}
	return &TraceRing{events: make([]TraceEvent, n)}
}

// Record appends an event (Tracer-compatible).
func (r *TraceRing) Record(e TraceEvent) {
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.full = true
	}
}

// Events returns the retained events, oldest first.
func (r *TraceRing) Events() []TraceEvent {
	if !r.full {
		return append([]TraceEvent(nil), r.events[:r.next]...)
	}
	out := make([]TraceEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Len reports how many events are retained.
func (r *TraceRing) Len() int {
	if r.full {
		return len(r.events)
	}
	return r.next
}
