package rdma

// qpCache models the NIC-side residency of per-connection state (the QP
// context for hardware deployments, the stack cores' connection working
// set for software ones): a fixed-capacity LRU over connection ids.
// touch on a resident id is a hit; touch on a cold id is a miss that
// evicts the least-recently-used resident when full. The server charges
// each miss a calibrated fetch penalty and serializes the fetches
// through a shared context-fetch engine (Server.qpFetch), which is what
// turns capacity overrun into the Storm-style throughput cliff rather
// than a mild per-op latency tax.
//
// Entries are intrusive list nodes reused across evictions, so the
// steady thrashing state allocates nothing.
type qpCache struct {
	cap        int
	m          map[uint64]*qpEntry
	head, tail *qpEntry // head = most recently used
	free       *qpEntry

	hits, misses, evictions int64
}

type qpEntry struct {
	id         uint64
	prev, next *qpEntry
}

func newQPCache(capacity int) *qpCache {
	return &qpCache{cap: capacity, m: make(map[uint64]*qpEntry, capacity)}
}

// touch records a data-path access to conn id and reports whether its
// state was resident. On a miss the id is brought in, evicting the LRU
// entry if the cache is full.
func (c *qpCache) touch(id uint64) bool {
	if e := c.m[id]; e != nil {
		c.hits++
		c.moveToFront(e)
		return true
	}
	c.misses++
	c.insert(id)
	return false
}

// warm brings id in without counting a hit or miss — connection setup
// pre-establishes state just as the paper's clients pre-connect — but
// still evicts (and counts the eviction) when the cache is full.
func (c *qpCache) warm(id uint64) {
	if e := c.m[id]; e != nil {
		c.moveToFront(e)
		return
	}
	c.insert(id)
}

func (c *qpCache) insert(id uint64) {
	var e *qpEntry
	if len(c.m) >= c.cap {
		// Evict the LRU tail and reuse its node.
		e = c.tail
		c.unlink(e)
		delete(c.m, e.id)
		c.evictions++
	} else if c.free != nil {
		e = c.free
		c.free = e.next
		e.next = nil
	} else {
		e = &qpEntry{}
	}
	e.id = id
	c.m[id] = e
	c.pushFront(e)
}

func (c *qpCache) moveToFront(e *qpEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *qpCache) pushFront(e *qpEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *qpCache) unlink(e *qpEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
