// Package rdma is the NIC transport: it carries verb requests from client
// queue pairs to server NICs over the fabric, executes them (via the prism
// executor), and models the latency/occupancy of the four deployment
// options the paper evaluates (§4.3). It also provides the reliability
// layer real RDMA NICs implement over lossy Ethernet: per-connection
// sequence numbers, retransmission, and duplicate suppression with
// response replay.
package rdma

import (
	"fmt"
	"time"

	"prism/internal/alloc"
	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/model"
	"prism/internal/prism"
	"prism/internal/sim"
	"prism/internal/transport"
	"prism/internal/wire"
)

// ConnTempSize is the per-connection temporary buffer used as the redirect
// target in chains. §4.2 argues 32 B per connection suffices for the
// paper's applications; we provision 256 B (eight 32 B chain slots) so a
// transaction that installs several keys on one shard can run its commit
// chains concurrently, each against its own slot — still far below the
// ~375 B of existing per-connection QP state the paper compares against.
const ConnTempSize = 256

// OnNICMemoryBytes is the user-accessible on-NIC memory region of the
// projected hardware NIC (256 KB on the paper's ConnectX-5, §4.2).
// Connections beyond OnNICMemoryBytes/ConnTempSize get host-resident temp
// buffers, whose redirects cost an extra PCIe round trip — the
// connection-scaling concern §4.2 analyzes.
const OnNICMemoryBytes = 256 << 10

// TempSlotSize is the stride applications use to carve ConnTempSize into
// independent chain slots.
const TempSlotSize = 32

// defaultRecvCredits is the receive-queue depth posted at startup —
// deep enough that well-behaved applications never see RNR.
const defaultRecvCredits = 4096

// RPCHandler processes a two-sided request on the server CPU. It returns
// the reply payload and any extra CPU time the handler consumed beyond the
// base dispatch cost (charged to the RPC core pool). The type is shared
// with the live stream transports so one application handler provisions
// on either the simulated or the socket server.
type RPCHandler = transport.RPCHandler

// The simulated server is one of the transports applications provision
// on; the others are the live socket servers (transport.Server).
var _ transport.Host = (*Server)(nil)

// Server is one machine's NIC endpoint plus the server-side state of the
// deployments: memory, free lists, dedicated PRISM cores, and RPC cores.
type Server struct {
	e      *sim.Engine
	net    *fabric.Network
	p      model.Params
	node   *fabric.Node
	deploy model.Deployment

	space *memory.Space
	exec  *prism.Executor

	prismCores *sim.MultiResource // SoftwarePRISM dedicated cores
	rpcCores   *sim.MultiResource // application cores serving RPCs

	quiescer *alloc.Quiescer
	handler  RPCHandler
	tracer   Tracer

	// NIC connection-state model (nil when Params disable it): qp tracks
	// which connections' contexts are resident, qpFetch is the single
	// context-fetch engine cold fetches serialize through (its queueing is
	// what turns cache thrash into a throughput ceiling), qpMiss the
	// calibrated per-fetch cost.
	qp      *qpCache
	qpFetch *sim.Resource
	qpMiss  time.Duration

	// recvCredits models the SEND/RECEIVE receive queue: each two-sided
	// request consumes a posted receive buffer for its lifetime; when none
	// are available the NIC answers Receiver-Not-Ready, RDMA's standard
	// flow control (§4.2 mentions the same mechanism for chain buffering).
	recvCredits int

	conns    map[uint64]*serverConn
	nextConn uint64

	tempKey    memory.RKey
	tempRegion *memory.Region
	tempUsed   uint64

	// baseProc is the fixed NIC+PCIe pipeline latency charged at the
	// server so that a small hardware verb on a direct link completes in
	// RDMABaseRTT (the paper's 2.5 µs baseline).
	baseProc time.Duration

	// Stats
	RequestsServed int64
	OpsExecuted    int64
	// RespReused counts responses recycled from the replay ring rather
	// than allocated (transport-arena effectiveness, also under loss).
	RespReused int64
	// ProgOps counts executed verb programs (CHASE/SCAN) and ProgSteps
	// their loop iterations; ProgSteps-ProgOps is the round trips the
	// programs saved over the per-hop client loop (§17).
	ProgOps   int64
	ProgSteps int64
}

type serverConn struct {
	id       uint64
	client   *fabric.Node
	lastOK   bool
	tempAddr memory.Addr
	// tempOnNIC records whether this connection's temp buffer fits the
	// on-NIC memory region (false beyond OnNICMemoryBytes of temps).
	tempOnNIC bool
	// Reliability layer: replay ring answers duplicates whose response is
	// still cached; the served ring remembers which sequence numbers have
	// begun execution so a stale duplicate (response already delivered and
	// evicted) is dropped rather than re-executed — re-executing a chain
	// could clobber the connection temp buffer under a live chain.
	replaySeq  [replayDepth]uint64
	replayResp [replayDepth]*wire.Response
	servedSeq  [servedDepth]uint64
	// RC queue pairs execute work requests in order, one at a time:
	// requests arriving while one is being served queue behind it. This
	// is what makes the conditional flag's "previous operations from the
	// same client" semantics (§3.4) well defined across chains.
	busy    bool
	backlog []*wire.Request
	// payload is the per-slot response-payload arena (lossless networks
	// only): READ results for the request in replay slot i are carved out
	// of payload[i], and the whole slot is reset when the ring retires it.
	// curSlot is the slot of the request currently executing (requests on
	// one connection are serialized, so a single slot suffices), and
	// readAlloc is the carve hook built once per connection so the hot
	// path does not allocate a closure per request.
	payload   [replayDepth][]byte
	curSlot   int
	readAlloc func(n uint64) []byte

	// Chain-execution state for the request currently being served. RC
	// queue pairs serve one request at a time (busy serializes them), so a
	// single set per connection suffices; stepFn/finishFn are built once at
	// connect so the verb hot path schedules no per-request closures.
	chainReq  *wire.Request
	chainResp *wire.Response
	chainIdx  int
	chainTok  uint64
	stepFn    func()
	finishFn  func()
	// opMeta is per-connection scratch for ExecInto's out-parameter: the
	// indirect dispatch defeats escape analysis, so a chainStep local
	// would be a heap allocation per op.
	opMeta prism.OpMeta

	// qpDebt is cold-connection fetch time accrued at arrival (context
	// fetch plus queueing on the shared fetch engine), consumed by the
	// next request start on this connection. Charging it there — rather
	// than via a separate scheduled hop — keeps per-connection FIFO
	// intact: busy is set synchronously at arrival.
	qpDebt time.Duration

	// wcheck is the scratch for wire-check mode (see SetWireCheck); nil
	// until the first checked transmission.
	wcheck *wireState
}

// replayDepth bounds both the response cache and the client send window;
// servedDepth only needs to exceed it by the longest plausible duplicate
// delay, measured in requests.
const (
	replayDepth = 8
	servedDepth = 64
)

func (sc *serverConn) markServed(seq uint64) {
	sc.servedSeq[seq%servedDepth] = seq
}

func (sc *serverConn) wasServed(seq uint64) bool {
	return sc.servedSeq[seq%servedDepth] == seq
}

// NewServer attaches a server NIC with the given deployment model to the
// network.
func NewServer(net *fabric.Network, name string, deploy model.Deployment) *Server {
	return newServer(net, name, deploy, memory.NewSpace())
}

// newServer is the shared constructor: fresh builds get an empty space,
// template instantiations a fork of the captured one.
func newServer(net *fabric.Network, name string, deploy model.Deployment, space *memory.Space) *Server {
	p := net.Params()
	node := net.NewNode(name)
	// All server-side state — cores, timers, the executor's memory — lives
	// on the node's event domain, so requests from many clients execute
	// here without touching any other domain.
	e := node.Domain()
	s := &Server{
		e:      e,
		net:    net,
		p:      p,
		node:   node,
		deploy: deploy,
		space:  space,
		conns:  make(map[uint64]*serverConn),
	}
	s.exec = prism.NewExecutor(s.space)
	s.quiescer = alloc.NewQuiescer()
	if deploy == model.SoftwarePRISM {
		s.prismCores = sim.NewMultiResource(e, p.SoftCores)
	}
	s.rpcCores = sim.NewMultiResource(e, p.RPCCores)
	s.recvCredits = defaultRecvCredits
	if entries, miss := p.QPCacheFor(deploy); entries > 0 {
		s.qp = newQPCache(entries)
		s.qpMiss = miss
		s.qpFetch = sim.NewResource(e)
		e.World().OnStats(func(ws *sim.WorldStats) {
			ws.ConnCacheHits += s.qp.hits
			ws.ConnCacheMisses += s.qp.misses
			ws.ConnCacheEvictions += s.qp.evictions
		})
	}
	e.World().OnStats(func(ws *sim.WorldStats) {
		ws.ProgramOps += s.ProgOps
		ws.ProgramSteps += s.ProgSteps
	})
	// Serialization of a canonical small request+response is charged by
	// the fabric; subtract it so small-op direct-link RTT ≈ RDMABaseRTT.
	s.baseProc = p.RDMABaseRTT - 4*p.SerializationDelay(64)
	if s.baseProc < 0 {
		s.baseProc = 0
	}
	s.node.SetHandler(s.onMessage)
	return s
}

// acquireResp returns a response object for seq with nops zeroed results.
// It reuses the retired occupant of seq's replay slot: the client's send
// window guarantees seq is only on the wire after seq-replayDepth was
// acknowledged, so the old response (and every view into its payload
// arena handed to that request's issuer) is at least replayDepth requests
// stale by the time it is overwritten.
//
// On a lossy network a *replayed duplicate* of the old response can still
// be in flight when the object is repopulated; bumping Epoch on reuse
// lets the client discard such a datagram (its fabric Tag snapshots the
// epoch at send time), so recycling stays safe under retransmission.
func (s *Server) acquireResp(sc *serverConn, seq uint64, nops int) *wire.Response {
	slot := seq % replayDepth
	resp := sc.replayResp[slot]
	if resp == nil {
		return &wire.Response{Seq: seq, Results: make([]wire.Result, nops)}
	}
	sc.replayResp[slot] = nil
	sc.replaySeq[slot] = ^uint64(0)
	sc.payload[slot] = sc.payload[slot][:0]
	results := resp.Results[:0]
	if cap(results) < nops {
		results = make([]wire.Result, nops)
	} else {
		results = results[:nops]
		for i := range results {
			results[i] = wire.Result{}
		}
	}
	resp.Seq = seq
	resp.Epoch++ // invalidate in-flight duplicates of the old incarnation
	resp.Results = results
	s.RespReused++
	return resp
}

// carvePayload allocates n bytes from the slot's payload arena. When the
// arena must grow, earlier carvings keep the old backing array alive and
// the request continues on the new one.
func (sc *serverConn) carvePayload(slot int, n uint64) []byte {
	buf := sc.payload[slot]
	if uint64(cap(buf)-len(buf)) < n {
		c := 2 * cap(buf)
		if c < int(n) {
			c = int(n)
		}
		if c < 1024 {
			c = 1024
		}
		buf = make([]byte, 0, c)
	}
	off := len(buf)
	buf = buf[:off+int(n)]
	sc.payload[slot] = buf
	return buf[off:]
}

// FreeArenas releases all pooled transport memory — cached responses,
// result slices, and payload arenas — once every in-flight NIC operation
// has drained (explicit quiesce). Useful before heap profiling or when a
// cluster is torn down.
func (s *Server) FreeArenas() {
	s.quiescer.AfterQuiesce(func() {
		for _, sc := range s.conns {
			for i := range sc.replayResp {
				sc.replayResp[i] = nil
				sc.replaySeq[i] = ^uint64(0)
				sc.payload[i] = nil
			}
		}
	})
}

// Space exposes the server's memory for registration and CPU-side access.
func (s *Server) Space() *memory.Space { return s.space }

// Node returns the server's fabric node (for byte counters in tests).
func (s *Server) Node() *fabric.Node { return s.node }

// Deployment returns the server's data-path model.
func (s *Server) Deployment() model.Deployment { return s.deploy }

// Engine returns the simulation engine.
func (s *Server) Engine() *sim.Engine { return s.e }

// AddFreeList registers a free list with the NIC for ALLOCATE.
func (s *Server) AddFreeList(fl *alloc.FreeList) {
	if _, dup := s.exec.FreeLists[fl.ID]; dup {
		panic(fmt.Sprintf("rdma: duplicate free list id %d", fl.ID))
	}
	s.exec.FreeLists[fl.ID] = fl
}

// FreeList returns a registered free list.
func (s *Server) FreeList(id uint32) *alloc.FreeList { return s.exec.FreeLists[id] }

// RecycleBuffer returns a client-released buffer to its free list once all
// in-flight NIC operations drain (§3.2's reuse rule). Typically invoked
// from an RPC handler fed by the application's reclamation protocol.
func (s *Server) RecycleBuffer(freeList uint32, addr memory.Addr) {
	fl, ok := s.exec.FreeLists[freeList]
	if !ok {
		panic(fmt.Sprintf("rdma: recycle to unknown free list %d", freeList))
	}
	fl.Recycle(addr)
	fl.FlushWhenQuiet(s.quiescer)
}

// Quiesce runs fn once every NIC operation currently in flight has
// completed (immediately when idle). Server applications use it for
// reclamation decisions that must not race in-flight chains (§3.2).
func (s *Server) Quiesce(fn func()) { s.quiescer.AfterQuiesce(fn) }

// SetRPCHandler installs the two-sided dispatch target.
func (s *Server) SetRPCHandler(h RPCHandler) { s.handler = h }

// SetConnTempKey selects the protection domain in which per-connection
// temporary buffers are allocated, so chains can traverse from application
// metadata to the temp buffer under one rkey. Must be called before the
// first Connect.
func (s *Server) SetConnTempKey(key memory.RKey) {
	if s.tempRegion != nil {
		panic("rdma: SetConnTempKey after connections exist")
	}
	s.tempKey = key
}

// TempKey returns the rkey protecting connection temp buffers.
func (s *Server) TempKey() memory.RKey { return s.tempKey }

func (s *Server) allocConnTemp() memory.Addr {
	const regionBufs = 1024
	if s.tempRegion == nil || s.tempUsed+ConnTempSize > s.tempRegion.Len {
		var r *memory.Region
		var err error
		if s.tempKey != 0 {
			r, err = s.space.RegisterShared(s.tempKey, ConnTempSize*regionBufs)
		} else {
			r, err = s.space.Register(ConnTempSize * regionBufs)
			if err == nil {
				s.tempKey = r.Key
			}
		}
		if err != nil {
			panic(fmt.Sprintf("rdma: temp region registration failed: %v", err))
		}
		s.tempRegion = r
		s.tempUsed = 0
	}
	addr := s.tempRegion.Base + memory.Addr(s.tempUsed)
	s.tempUsed += ConnTempSize
	return addr
}

// connect registers a new queue pair from the given client node.
func (s *Server) connect(client *fabric.Node) (id uint64, temp memory.Addr, tempKey memory.RKey) {
	id = s.nextConn
	s.nextConn++
	sc := &serverConn{id: id, client: client, lastOK: true, tempAddr: s.allocConnTemp()}
	sc.tempOnNIC = id < OnNICMemoryBytes/ConnTempSize
	sc.readAlloc = func(n uint64) []byte { return sc.carvePayload(sc.curSlot, n) }
	sc.stepFn = func() { s.chainStep(sc) }
	sc.finishFn = func() { s.finishChain(sc) }
	for i := range sc.replaySeq {
		sc.replaySeq[i] = ^uint64(0)
	}
	for i := range sc.servedSeq {
		sc.servedSeq[i] = ^uint64(0)
	}
	s.conns[id] = sc
	if s.qp != nil {
		// Connection establishment loads the context, exactly as the
		// paper's clients pre-connect: while the active set fits the
		// cache, the model charges nothing and figures are bit-unchanged.
		s.qp.warm(id)
	}
	return id, sc.tempAddr, s.tempKey
}

// QPCacheCounters reports the connection-state cache's hit/miss/eviction
// counts (all zero when the model is disabled for this deployment).
func (s *Server) QPCacheCounters() (hits, misses, evictions int64) {
	if s.qp == nil {
		return 0, 0, 0
	}
	return s.qp.hits, s.qp.misses, s.qp.evictions
}

// qpArrival records the request-side context access for conn sc: on a
// miss the fetch cost — service plus queueing on the shared fetch engine
// — accrues to the connection's debt, charged at the next request start.
func (s *Server) qpArrival(sc *serverConn) {
	if s.qp == nil || s.qp.touch(sc.id) {
		return
	}
	done := s.qpFetch.Submit(s.qpMiss, nil)
	sc.qpDebt += done.Sub(s.e.Now())
}

// qpTx is the response-side context access: the send WQE needs the
// context resident again, and under heavy interleaving it may have been
// evicted since the request arrived.
func (s *Server) qpTx(sc *serverConn) time.Duration {
	if s.qp == nil || s.qp.touch(sc.id) {
		return 0
	}
	done := s.qpFetch.Submit(s.qpMiss, nil)
	return done.Sub(s.e.Now())
}

// takeQPDebt consumes the connection's accrued cold-fetch debt.
func (s *Server) takeQPDebt(sc *serverConn) time.Duration {
	d := sc.qpDebt
	sc.qpDebt = 0
	return d
}

// onMessage handles an arriving request.
func (s *Server) onMessage(m fabric.Message) {
	req, ok := m.Payload.(*wire.Request)
	if !ok {
		panic(fmt.Sprintf("rdma: server %s received %T", s.node.Name(), m.Payload))
	}
	if req.Epoch != m.Tag {
		// The pooled request object was recycled and repopulated while this
		// (duplicate) datagram was in flight; its contents describe a newer
		// request. Drop it — the incarnation it belonged to was already
		// acknowledged, or the client would not have recycled it.
		return
	}
	sc, ok := s.conns[req.Conn]
	if !ok {
		panic(fmt.Sprintf("rdma: request on unknown connection %d", req.Conn))
	}
	// Duplicate (retransmitted) request: replay the cached response, or —
	// if it has already been served and evicted from the cache (meaning
	// the client has long since seen the response and moved its window) —
	// drop it rather than re-execute.
	for i, seq := range sc.replaySeq {
		if seq == req.Seq {
			s.respond(sc, sc.replayResp[i])
			return
		}
	}
	if sc.wasServed(req.Seq) {
		return
	}
	sc.markServed(req.Seq)
	s.qpArrival(sc)
	if sc.busy {
		sc.backlog = append(sc.backlog, req)
		return
	}
	s.startRequest(sc, req)
}

// startRequest begins executing one request on the connection.
func (s *Server) startRequest(sc *serverConn, req *wire.Request) {
	sc.busy = true
	if len(req.Ops) == 1 && req.Ops[0].Code == wire.OpSend {
		s.serveRPC(sc, req)
		return
	}
	s.serveVerbs(sc, req)
}

// supports reports whether the deployment can execute the request at all.
// Stock RDMA NICs take exactly one classic verb per request.
func (s *Server) supports(req *wire.Request) bool {
	if s.deploy != model.HardwareRDMA {
		return true
	}
	if len(req.Ops) != 1 {
		return false
	}
	op := &req.Ops[0]
	if op.Flags != 0 {
		return false
	}
	switch op.Code {
	case wire.OpRead, wire.OpWrite, wire.OpClassicCAS, wire.OpFetchAdd:
		return true
	case wire.OpCAS:
		// Only the classic 8-byte equality subset.
		full := func(m []byte) bool {
			for _, b := range m {
				if b != 0xFF {
					return false
				}
			}
			return true
		}
		return op.Mode == wire.CASEq && len(op.Data) == 8 &&
			(op.CompareMask == nil || (len(op.CompareMask) == 8 && full(op.CompareMask))) &&
			(op.SwapMask == nil || (len(op.SwapMask) == 8 && full(op.SwapMask)))
	default:
		return false
	}
}

// serveVerbs runs a (possibly chained) one-sided request. The chain state
// lives on the connection and advances via the prebuilt stepFn/finishFn,
// so the steady-state verb path allocates nothing.
func (s *Server) serveVerbs(sc *serverConn, req *wire.Request) {
	s.RequestsServed++
	if !s.supports(req) {
		resp := s.acquireResp(sc, req.Seq, len(req.Ops))
		for i := range resp.Results {
			resp.Results[i] = wire.Result{Status: wire.StatusUnsupported}
		}
		sc.chainReq, sc.chainResp = req, resp
		s.e.Schedule(s.baseProc+s.takeQPDebt(sc), sc.finishFn)
		return
	}

	opTok := s.quiescer.OpStart()
	resp := s.acquireResp(sc, req.Seq, len(req.Ops))
	sc.curSlot = int(req.Seq % replayDepth)

	// Fixed per-request costs and core-pool queueing by deployment.
	preDelay := s.baseProc / 2
	var requestOverhead time.Duration
	switch s.deploy {
	case model.SoftwarePRISM:
		cpu := s.p.SoftCPUBase + time.Duration(len(req.Ops))*s.p.SoftCPUPerOp
		done := s.prismCores.Submit(cpu, nil)
		queueWait := done.Sub(s.e.Now()) - cpu
		requestOverhead = s.p.SoftBaseOverhead + queueWait
	case model.BlueFieldPRISM:
		requestOverhead = s.p.BFProcOverhead
	}

	sc.chainReq, sc.chainResp, sc.chainIdx, sc.chainTok = req, resp, 0, opTok
	s.e.Schedule(preDelay+requestOverhead+s.takeQPDebt(sc), sc.stepFn)
}

// interOp spaces chain steps so concurrent chains interleave, as on a
// real NIC where each op is a separate pipeline traversal.
const interOp = 100 * time.Nanosecond

// chainStep executes the next op of the connection's current chain.
// Conditionally skipped ops fall through to the next op at the same
// instant (the loop), exactly as the recursive formulation did.
func (s *Server) chainStep(sc *serverConn) {
	req, resp := sc.chainReq, sc.chainResp
	results := resp.Results
	for {
		i := sc.chainIdx
		if i == len(req.Ops) {
			s.quiescer.OpEnd(sc.chainTok)
			preDelay := s.baseProc / 2
			s.e.Schedule(s.baseProc-preDelay+s.qpTx(sc), sc.finishFn)
			return
		}
		op := &req.Ops[i]
		if op.Flags.Has(wire.FlagConditional) && !sc.lastOK {
			results[i] = wire.Result{Status: wire.StatusNotExecuted}
			if s.tracer != nil {
				s.tracer(TraceEvent{
					At: s.e.Now(), Domain: s.e.DomainID(), Conn: sc.id, Seq: req.Seq, OpIdx: i,
					Code: op.Code, Flags: op.Flags, Status: wire.StatusNotExecuted,
				})
			}
			sc.chainIdx = i + 1
			continue
		}
		// READ payloads ride the response until the slot retires; carve
		// them from the slot's arena instead of the heap.
		s.exec.ReadAlloc = sc.readAlloc
		s.exec.ExecInto(op, &results[i], &sc.opMeta)
		s.exec.ReadAlloc = nil
		s.OpsExecuted++
		sc.lastOK = results[i].Status.OK()
		if s.tracer != nil {
			s.tracer(TraceEvent{
				At: s.e.Now(), Domain: s.e.DomainID(), Conn: sc.id, Seq: req.Seq, OpIdx: i,
				Code: op.Code, Flags: op.Flags, Status: results[i].Status,
			})
		}
		delay := s.opExtra(sc, op, sc.opMeta)
		if sc.opMeta.Steps > 0 {
			s.ProgOps++
			s.ProgSteps += int64(sc.opMeta.Steps)
			if s.deploy == model.SoftwarePRISM && sc.opMeta.Steps > 1 {
				// serveVerbs charged this op one per-op core quantum; the
				// program's remaining iterations occupy the dedicated core
				// too, and any queueing they cause delays the chain.
				cpu := time.Duration(sc.opMeta.Steps-1) * s.p.SoftCPUPerOp
				done := s.prismCores.Submit(cpu, nil)
				delay += done.Sub(s.e.Now()) - cpu
			}
		}
		if i+1 < len(req.Ops) {
			delay += interOp
		}
		sc.chainIdx = i + 1
		s.e.Schedule(delay, sc.stepFn)
		return
	}
}

// finishChain hands the finished chain's response to finish and clears
// the per-connection chain state.
func (s *Server) finishChain(sc *serverConn) {
	resp := sc.chainResp
	sc.chainReq, sc.chainResp = nil, nil
	s.finish(sc, resp)
}

// opExtra is the per-op latency the deployment adds beyond the base verb
// pipeline.
func (s *Server) opExtra(sc *serverConn, op *wire.Op, meta prism.OpMeta) time.Duration {
	// Verb programs pay the loop engine once per executed step (§17);
	// every classic op runs zero steps, so the term vanishes on the
	// pre-program figures. Per-step memory traffic is charged below
	// through the same HostAccesses/Indirections counts the steps bumped.
	prog := time.Duration(meta.Steps) * s.p.ProgStepCost
	switch s.deploy {
	case model.SoftwarePRISM:
		return s.p.SoftExtraFor(meta.Class) + prog
	case model.ProjectedHardwarePRISM:
		// One extra PCIe round trip per level of indirection (§4.3), plus
		// small fixed costs for the new datapath functions.
		d := time.Duration(meta.Indirections) * s.p.PCIeRTT
		if meta.RedirectUsed && (s.p.RedirectToHostMem || !sc.tempOnNIC) {
			// §4.2: redirects should target on-NIC memory; a host-memory
			// temp buffer — forced either by configuration or by exceeding
			// the 256 KB on-NIC region — costs an extra PCIe round trip
			// per redirect.
			d += s.p.PCIeRTT
		}
		if op.Code == wire.OpAllocate {
			d += 200 * time.Nanosecond // free-list pop
		}
		if op.Code == wire.OpCAS && meta.PRISMOnly {
			d += 300 * time.Nanosecond // wide/masked/arithmetic atomic
		}
		return d + prog
	case model.BlueFieldPRISM:
		// Every host-memory access crosses the internal switch (~3 µs).
		return time.Duration(meta.HostAccesses)*s.p.BFHostAccess + prog
	default:
		return 0
	}
}

// SetRecvCredits overrides the receive-queue depth (testing flow control
// or modeling constrained receivers).
func (s *Server) SetRecvCredits(n int) { s.recvCredits = n }

// serveRPC dispatches a two-sided request to the application handler.
func (s *Server) serveRPC(sc *serverConn, req *wire.Request) {
	s.RequestsServed++
	if s.handler == nil {
		resp := s.acquireResp(sc, req.Seq, 1)
		resp.Results[0] = wire.Result{Status: wire.StatusUnsupported}
		s.e.Schedule(s.baseProc+s.takeQPDebt(sc), func() { s.finish(sc, resp) })
		return
	}
	if s.recvCredits <= 0 {
		// No posted receive buffer: Receiver Not Ready.
		resp := s.acquireResp(sc, req.Seq, 1)
		resp.Results[0] = wire.Result{Status: wire.StatusRNR}
		s.e.Schedule(s.baseProc+s.takeQPDebt(sc), func() { s.finish(sc, resp) })
		return
	}
	s.recvCredits--
	payload := req.Ops[0].Data
	// Reserve an application core; the handler's memory effects apply when
	// the core picks the request up.
	start := s.rpcCores.Submit(s.p.RPCHandlerCPUTime, nil)
	dispatchWait := start.Sub(s.e.Now()) - s.p.RPCHandlerCPUTime
	s.e.Schedule(dispatchWait+s.takeQPDebt(sc), func() {
		reply, extraCPU := s.handler(payload)
		if extraCPU > 0 {
			s.rpcCores.Submit(extraCPU, nil)
		}
		total := s.baseProc + s.p.RPCOverhead + s.p.RPCHandlerCPUTime + extraCPU + s.qpTx(sc)
		resp := s.acquireResp(sc, req.Seq, 1)
		resp.Results[0] = wire.Result{Status: wire.StatusOK, Data: reply}
		s.e.Schedule(total, func() {
			s.recvCredits++ // the app reposts the consumed receive buffer
			s.finish(sc, resp)
		})
	})
}

// finish caches the response for replay, transmits it, and starts the
// next queued request on the connection.
func (s *Server) finish(sc *serverConn, resp *wire.Response) {
	resp.Conn = sc.id
	slot := int(resp.Seq % replayDepth)
	sc.replaySeq[slot] = resp.Seq
	sc.replayResp[slot] = resp
	s.respond(sc, resp)
	sc.busy = false
	if len(sc.backlog) > 0 {
		next := sc.backlog[0]
		sc.backlog[0] = nil // release the popped request for GC
		sc.backlog = sc.backlog[1:]
		if len(sc.backlog) == 0 {
			sc.backlog = nil // let the drained array go too
		}
		s.startRequest(sc, next)
	}
}

func (s *Server) respond(sc *serverConn, resp *wire.Response) {
	if wireCheck {
		if sc.wcheck == nil {
			sc.wcheck = &wireState{}
		}
		sc.wcheck.checkResponse(resp)
	}
	s.net.Send(fabric.Message{
		From:    s.node,
		To:      sc.client,
		Size:    wire.ResponseWireSize(resp),
		Payload: resp,
		Tag:     resp.Epoch, // snapshot: receiver drops if the object was recycled
	})
}
