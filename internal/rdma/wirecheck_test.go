package rdma

import (
	"testing"
	"time"

	"prism/internal/alloc"
	"prism/internal/model"
	"prism/internal/prism"
	"prism/internal/sim"
	"prism/internal/wire"
)

// TestWireCheckLiveTraffic runs a representative verb workload with
// wire-check mode enabled: every transmitted request and response is
// append-encoded, alias-decoded back, and compared field-for-field
// against the in-memory message (wirecheck.go panics on any mismatch).
// This is the live-traffic proof that the byte codec, the alias decoders,
// and the wire-size accounting agree with what the fabric carries.
func TestWireCheckLiveTraffic(t *testing.T) {
	SetWireCheck(true)
	defer SetWireCheck(false)

	v := newEnv(t, model.SoftwarePRISM, nil)
	fl := alloc.NewFreeList(1, 512, v.reg.Key)
	fl.Post(v.reg.Base + 4096)
	fl.Post(v.reg.Base + 4608)
	v.srv.AddFreeList(fl)
	v.srv.SetRPCHandler(func(payload []byte) ([]byte, time.Duration) {
		return append([]byte("echo:"), payload...), 0
	})

	v.run(t, func(p *sim.Proc) {
		// Plain write/read round trip (response carries payload).
		v.conn.Issue(p, prism.Write(v.reg.Key, v.reg.Base+256, []byte("wire-checked bytes")))
		res := v.conn.Issue(p, prism.Read(v.reg.Key, v.reg.Base+256, 18))
		if string(res[0].Data) != "wire-checked bytes" {
			t.Errorf("read %q", res[0].Data)
		}

		// Failing CAS with masks, then a skipped conditional op: exercises
		// CompareMask/SwapMask encoding and non-OK statuses on the wire.
		seed := make([]byte, 8)
		prism.PutBE64(seed, 0, 10)
		v.conn.Issue(p, prism.Write(v.reg.Key, v.reg.Base, seed))
		stale := make([]byte, 8)
		prism.PutBE64(stale, 0, 5)
		res = v.conn.Issue(p,
			prism.CAS(v.reg.Key, v.reg.Base, wire.CASGt, stale, prism.FullMask(8), prism.FullMask(8)),
			prism.Conditional(prism.Write(v.reg.Key, v.reg.Base+64, []byte("skipped"))),
		)
		if res[0].Status != wire.StatusCASFailed || res[1].Status != wire.StatusNotExecuted {
			t.Errorf("CAS chain statuses %v %v", res[0].Status, res[1].Status)
		}

		// The canonical ALLOCATE/redirect/indirect-CAS chain, using the
		// connection-owned op scratch as the hot paths do.
		meta := v.reg.Base + 1024
		init := make([]byte, 16)
		prism.PutBE64(init, 0, 1)
		v.conn.Issue(p, prism.Write(v.reg.Key, meta, init))
		tag := make([]byte, 8)
		prism.PutBE64(tag, 0, 2)
		tmp := v.conn.TempAddr
		ops := v.conn.Ops(3)
		ops[0] = prism.Write(v.conn.TempKey, tmp, tag)
		ops[1] = prism.Conditional(prism.RedirectTo(prism.Allocate(1, []byte("fresh value")), v.conn.TempKey, tmp+8))
		ops[2] = prism.Conditional(prism.CASIndirectData(v.reg.Key, meta, wire.CASGt, tmp,
			prism.FieldMask(16, 0, 8), prism.FullMask(16)))
		res = v.conn.Issue(p, ops...)
		for i, r := range res {
			if r.Status != wire.StatusOK {
				t.Fatalf("chain op %d status %v", i, r.Status)
			}
		}

		// Two-sided RPC (OpSend + payload-carrying response).
		res = v.conn.Issue(p, prism.Send([]byte("ping")))
		if string(res[0].Data) != "echo:ping" {
			t.Errorf("rpc reply %q", res[0].Data)
		}
	})
}
