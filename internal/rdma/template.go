package rdma

import (
	"fmt"
	"sort"

	"prism/internal/alloc"
	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/model"
)

// ServerTemplate is an immutable image of a fully built server: its sealed
// memory snapshot, the free-list queues as they stood after setup, and the
// connection temp-buffer protection key. One template can instantiate any
// number of servers — on any engine, network, or deployment — each backed
// by a copy-on-write fork of the snapshot, so per-point cluster setup cost
// collapses to a fork plus free-list clones.
type ServerTemplate struct {
	snap      *memory.Snapshot
	freeLists map[uint32]*alloc.FreeList
	tempKey   memory.RKey
}

// Capture seals the server's memory space and returns a template of its
// built state. The server must be pristine: no connections, no in-flight
// operations, no pending buffer recycles. The server itself becomes
// read-only (its space is sealed) — capture a throwaway build, then
// instantiate working servers from the template.
func (s *Server) Capture() *ServerTemplate {
	if len(s.conns) != 0 || s.tempRegion != nil {
		panic("rdma: Capture with connections established")
	}
	if s.quiescer.InFlight() != 0 {
		panic("rdma: Capture with in-flight operations")
	}
	t := &ServerTemplate{
		snap:      s.space.Snapshot(),
		freeLists: make(map[uint32]*alloc.FreeList, len(s.exec.FreeLists)),
		tempKey:   s.tempKey,
	}
	for id, fl := range s.exec.FreeLists {
		if fl.Pending() != 0 {
			panic(fmt.Sprintf("rdma: Capture with %d buffers pending recycle on free list %d", fl.Pending(), id))
		}
		t.freeLists[id] = fl.Clone()
	}
	return t
}

// Snapshot exposes the sealed memory image (tests compare fork contents
// against it).
func (t *ServerTemplate) Snapshot() *memory.Snapshot { return t.snap }

// NewServerFromTemplate attaches a server whose memory, free lists, and
// temp-key configuration are forked from a captured template. The engine
// and deployment come from the target network, so one template built once
// can serve e.g. both the hardware-RDMA and software-PRISM series of a
// figure. The application layer must still re-attach its CPU-side state
// (RPC handlers, index maps) via its own template mechanism.
func NewServerFromTemplate(net *fabric.Network, name string, deploy model.Deployment, t *ServerTemplate) *Server {
	s := newServer(net, name, deploy, t.snap.Fork())
	ids := make([]uint32, 0, len(t.freeLists))
	for id := range t.freeLists {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.exec.FreeLists[id] = t.freeLists[id].Clone()
	}
	s.tempKey = t.tempKey
	return s
}
