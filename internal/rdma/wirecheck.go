package rdma

import (
	"bytes"
	"fmt"

	"prism/internal/transport"
	"prism/internal/wire"
)

// Wire-check mode. The fabric carries *wire.Request/*wire.Response
// pointers and charges bandwidth from RequestWireSize/ResponseWireSize,
// so the byte codec is normally off the hot path. With wire check
// enabled, every transmitted message is append-encoded into
// connection-owned scratch, alias-decoded back (borrowing the scratch,
// no copies), and verified field-for-field against the in-memory
// message — proving on live traffic that the wire layout, the alias
// decoders, and the size accounting agree. Off by default; tests and
// debugging sessions opt in before the simulation runs.

var wireCheck bool

// SetWireCheck toggles wire-check mode for subsequently transmitted
// messages. Not safe to flip while a multi-domain simulation is running;
// set it before Engine.Run. The switch forwards to the live stream
// transports (transport.SetWireCheck), so one call covers every
// transport a process uses.
func SetWireCheck(on bool) {
	wireCheck = on
	transport.SetWireCheck(on)
}

// wireState is the per-connection scratch wire-check encodes into and
// decodes from. Per connection, so domain-parallel simulations check
// without sharing buffers across goroutines.
type wireState struct {
	buf  []byte
	req  wire.Request
	resp wire.Response
}

func (ws *wireState) checkRequest(req *wire.Request) {
	ws.buf = wire.AppendRequest(ws.buf[:0], req)
	if len(ws.buf) != wire.RequestWireSize(req) {
		panic(fmt.Sprintf("rdma: wire check: encoded request is %d bytes, RequestWireSize says %d",
			len(ws.buf), wire.RequestWireSize(req)))
	}
	if err := wire.DecodeRequestAlias(&ws.req, ws.buf); err != nil {
		panic(fmt.Sprintf("rdma: wire check: request round trip: %v", err))
	}
	if ws.req.Conn != req.Conn || ws.req.Seq != req.Seq || ws.req.Epoch != req.Epoch ||
		len(ws.req.Ops) != len(req.Ops) {
		panic("rdma: wire check: request header mismatch after round trip")
	}
	for i := range req.Ops {
		a, b := &req.Ops[i], &ws.req.Ops[i]
		if a.Code != b.Code || a.Flags != b.Flags || a.Mode != b.Mode ||
			a.RKey != b.RKey || a.Target != b.Target || a.Len != b.Len ||
			a.FreeList != b.FreeList || a.RedirectTo != b.RedirectTo ||
			!bytes.Equal(a.Data, b.Data) ||
			!bytes.Equal(a.CompareMask, b.CompareMask) ||
			!bytes.Equal(a.SwapMask, b.SwapMask) {
			panic(fmt.Sprintf("rdma: wire check: op %d mismatch after round trip", i))
		}
	}
}

func (ws *wireState) checkResponse(resp *wire.Response) {
	ws.buf = wire.AppendResponse(ws.buf[:0], resp)
	if len(ws.buf) != wire.ResponseWireSize(resp) {
		panic(fmt.Sprintf("rdma: wire check: encoded response is %d bytes, ResponseWireSize says %d",
			len(ws.buf), wire.ResponseWireSize(resp)))
	}
	if err := wire.DecodeResponseAlias(&ws.resp, ws.buf); err != nil {
		panic(fmt.Sprintf("rdma: wire check: response round trip: %v", err))
	}
	if ws.resp.Conn != resp.Conn || ws.resp.Seq != resp.Seq || ws.resp.Epoch != resp.Epoch ||
		len(ws.resp.Results) != len(resp.Results) {
		panic("rdma: wire check: response header mismatch after round trip")
	}
	for i := range resp.Results {
		a, b := &resp.Results[i], &ws.resp.Results[i]
		if a.Status != b.Status || a.Addr != b.Addr || !bytes.Equal(a.Data, b.Data) {
			panic(fmt.Sprintf("rdma: wire check: result %d mismatch after round trip", i))
		}
	}
}
