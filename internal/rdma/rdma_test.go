package rdma

import (
	"testing"
	"time"

	"prism/internal/alloc"
	"prism/internal/fabric"
	"prism/internal/memory"
	"prism/internal/model"
	"prism/internal/prism"
	"prism/internal/sim"
	"prism/internal/wire"
)

type env struct {
	e    *sim.Engine
	net  *fabric.Network
	srv  *Server
	cli  *Client
	conn *Conn
	reg  *memory.Region
}

func newEnv(t *testing.T, deploy model.Deployment, mut func(*model.Params)) *env {
	t.Helper()
	p := model.Default().WithNetwork(model.Direct)
	if mut != nil {
		mut(&p)
	}
	e := sim.NewEngine(1)
	net := fabric.New(e, p)
	srv := NewServer(net, "srv", deploy)
	reg, err := srv.Space().Register(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetConnTempKey(reg.Key)
	cli := NewClient(net, "cli")
	conn := cli.Connect(srv)
	return &env{e: e, net: net, srv: srv, cli: cli, conn: conn, reg: reg}
}

// run executes fn as a client process and drives the sim to completion.
func (v *env) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	v.e.Go("client", fn)
	v.e.Run()
	if v.e.LiveProcs() != 0 {
		t.Fatal("leaked simulation processes")
	}
}

func TestHardwareReadWriteRoundTrip(t *testing.T) {
	v := newEnv(t, model.HardwareRDMA, nil)
	var rtt sim.Duration
	v.run(t, func(p *sim.Proc) {
		w := prism.Write(v.reg.Key, v.reg.Base, []byte("abc"))
		res := v.conn.Issue(p, w)
		if res[0].Status != wire.StatusOK {
			t.Errorf("write status %v", res[0].Status)
		}
		start := p.Now()
		r := prism.Read(v.reg.Key, v.reg.Base, 3)
		res = v.conn.Issue(p, r)
		rtt = p.Now().Sub(start)
		if string(res[0].Data) != "abc" {
			t.Errorf("read %q", res[0].Data)
		}
	})
	// Small hardware verb on a direct link ≈ RDMABaseRTT (±20%).
	base := model.Default().RDMABaseRTT
	if rtt < base*8/10 || rtt > base*12/10 {
		t.Fatalf("hardware read RTT = %v, want ≈ %v", rtt, base)
	}
}

func TestHardwareRejectsPRISMOps(t *testing.T) {
	v := newEnv(t, model.HardwareRDMA, nil)
	v.run(t, func(p *sim.Proc) {
		r := prism.ReadIndirect(v.reg.Key, v.reg.Base, 8)
		res := v.conn.Issue(p, r)
		if res[0].Status != wire.StatusUnsupported {
			t.Errorf("indirect read on stock NIC: %v", res[0].Status)
		}
		// Chains are also rejected.
		res = v.conn.Issue(p,
			prism.Read(v.reg.Key, v.reg.Base, 8),
			prism.Read(v.reg.Key, v.reg.Base, 8))
		for _, r := range res {
			if r.Status != wire.StatusUnsupported {
				t.Errorf("chain on stock NIC: %v", r.Status)
			}
		}
	})
}

func TestSoftwarePRISMIndirectReadLatency(t *testing.T) {
	v := newEnv(t, model.SoftwarePRISM, nil)
	var rtt sim.Duration
	v.run(t, func(p *sim.Proc) {
		if err := v.srv.Space().WriteU64(v.reg.Key, v.reg.Base, uint64(v.reg.Base+256)); err != nil {
			t.Error(err)
			return
		}
		w := prism.Write(v.reg.Key, v.reg.Base+256, make([]byte, 512))
		v.conn.Issue(p, w)
		start := p.Now()
		res := v.conn.Issue(p, prism.ReadIndirect(v.reg.Key, v.reg.Base, 512))
		rtt = p.Now().Sub(start)
		if res[0].Status != wire.StatusOK || len(res[0].Data) != 512 {
			t.Errorf("indirect read: %v len %d", res[0].Status, len(res[0].Data))
		}
	})
	// Paper: software PRISM adds ~2.8 µs to the 2.5 µs base for a read.
	p := model.Default()
	want := p.RDMABaseRTT + p.SoftBaseOverhead + p.SoftReadExtra
	if rtt < want-time.Microsecond || rtt > want+time.Microsecond {
		t.Fatalf("PRISM SW indirect read RTT = %v, want ≈ %v", rtt, want)
	}
}

func TestChainConditionalSkipsAfterFailure(t *testing.T) {
	v := newEnv(t, model.SoftwarePRISM, nil)
	v.run(t, func(p *sim.Proc) {
		// Seed target with tag 10 (big-endian).
		seed := make([]byte, 8)
		prism.PutBE64(seed, 0, 10)
		v.conn.Issue(p, prism.Write(v.reg.Key, v.reg.Base, seed))
		// CAS GT with a smaller tag fails; the conditional write after it
		// must be skipped.
		stale := make([]byte, 8)
		prism.PutBE64(stale, 0, 5)
		res := v.conn.Issue(p,
			prism.CAS(v.reg.Key, v.reg.Base, wire.CASGt, stale, nil, nil),
			prism.Conditional(prism.Write(v.reg.Key, v.reg.Base+64, []byte("should not land"))),
		)
		if res[0].Status != wire.StatusCASFailed {
			t.Errorf("CAS status %v", res[0].Status)
		}
		if res[1].Status != wire.StatusNotExecuted {
			t.Errorf("conditional op status %v", res[1].Status)
		}
		got, _ := v.srv.Space().Read(v.reg.Key, v.reg.Base+64, 4)
		for _, b := range got {
			if b != 0 {
				t.Error("conditional write executed after failed CAS")
			}
		}
	})
}

func TestChainAllocateRedirectCAS(t *testing.T) {
	// The canonical PRISM out-of-place update (§3.5): WRITE tag to tmp,
	// ALLOCATE redirecting the address after the tag, CAS the <tag,addr>
	// pair — all in one round trip.
	v := newEnv(t, model.SoftwarePRISM, nil)
	fl := alloc.NewFreeList(1, 512, v.reg.Key)
	fl.Post(v.reg.Base + 4096)
	v.srv.AddFreeList(fl)

	v.run(t, func(p *sim.Proc) {
		meta := v.reg.Base // metadata cell: [tag(8)|addr(8)]
		seed := make([]byte, 16)
		prism.PutBE64(seed, 0, 1)
		prism.PutBE64(seed, 8, 0) // no value yet
		v.conn.Issue(p, prism.Write(v.reg.Key, meta, seed))

		tag := make([]byte, 8)
		prism.PutBE64(tag, 0, 2)
		tmp := v.conn.TempAddr
		res := v.conn.Issue(p,
			prism.Write(v.conn.TempKey, tmp, tag),
			prism.Conditional(prism.RedirectTo(prism.Allocate(1, []byte("new value")), v.conn.TempKey, tmp+8)),
			prism.Conditional(prism.CASIndirectData(v.reg.Key, meta, wire.CASGt, tmp, prism.FieldMask(16, 0, 8), prism.FullMask(16))),
		)
		for i, r := range res {
			if r.Status != wire.StatusOK {
				t.Fatalf("op %d status %v", i, r.Status)
			}
		}
		// Metadata now points at the allocated buffer with the new tag.
		got, _ := v.srv.Space().Read(v.reg.Key, meta, 16)
		if prism.BE64(got, 0) != 2 {
			t.Errorf("tag after chain: %d", prism.BE64(got, 0))
		}
		bufAddr := memory.Addr(prism.LE64(got, 8)) // pointer fields are little-endian
		if bufAddr != v.reg.Base+4096 {
			t.Errorf("addr after chain: %#x", bufAddr)
		}
		val, _ := v.srv.Space().Read(v.reg.Key, bufAddr, 9)
		if string(val) != "new value" {
			t.Errorf("buffer holds %q", val)
		}
	})
}

func TestRPCDispatch(t *testing.T) {
	v := newEnv(t, model.HardwareRDMA, nil)
	v.srv.SetRPCHandler(func(payload []byte) ([]byte, time.Duration) {
		return append([]byte("echo:"), payload...), 0
	})
	var rtt sim.Duration
	v.run(t, func(p *sim.Proc) {
		start := p.Now()
		res := v.conn.Issue(p, prism.Send([]byte("ping")))
		rtt = p.Now().Sub(start)
		if string(res[0].Data) != "echo:ping" {
			t.Errorf("rpc reply %q", res[0].Data)
		}
	})
	// Two-sided RPC ≈ base + RPCOverhead + handler time (§2.1: 5.6 µs
	// class on a direct link).
	p := model.Default()
	want := p.RDMABaseRTT + p.RPCOverhead + p.RPCHandlerCPUTime
	if rtt < want-time.Microsecond || rtt > want+time.Microsecond {
		t.Fatalf("RPC RTT = %v, want ≈ %v", rtt, want)
	}
}

func TestDeploymentLatencyOrdering(t *testing.T) {
	// Fig. 1's qualitative ordering for an indirect read:
	// RDMA(2 reads) baseline aside, PRISM HW < PRISM SW < BlueField.
	lat := func(d model.Deployment) sim.Duration {
		v := newEnv(t, d, nil)
		var rtt sim.Duration
		v.run(t, func(p *sim.Proc) {
			v.srv.Space().WriteU64(v.reg.Key, v.reg.Base, uint64(v.reg.Base+256))
			start := p.Now()
			v.conn.Issue(p, prism.ReadIndirect(v.reg.Key, v.reg.Base, 512))
			rtt = p.Now().Sub(start)
		})
		return rtt
	}
	hw := lat(model.ProjectedHardwarePRISM)
	sw := lat(model.SoftwarePRISM)
	bf := lat(model.BlueFieldPRISM)
	if !(hw < sw && sw < bf) {
		t.Fatalf("latency ordering hw=%v sw=%v bf=%v", hw, sw, bf)
	}
}

func TestLossRecoveryThroughRetransmission(t *testing.T) {
	v := newEnv(t, model.SoftwarePRISM, func(p *model.Params) {
		p.LossRate = 0.2
		p.RetransmitTimeout = 50 * time.Microsecond
	})
	const n = 200
	v.run(t, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			res := v.conn.Issue(p, prism.Write(v.reg.Key, v.reg.Base+memory.Addr(8*(i%100)), []byte("datadata")))
			if res[0].Status != wire.StatusOK {
				t.Errorf("write %d: %v", i, res[0].Status)
			}
		}
	})
	if v.conn.Retransmissions == 0 {
		t.Fatal("no retransmissions under 20% loss")
	}
	t.Logf("retransmissions: %d", v.conn.Retransmissions)
}

func TestDuplicateExecutionSuppressed(t *testing.T) {
	// Under loss, a retransmitted FETCH_ADD must not execute twice: the
	// replay cache answers duplicates. Each op adds exactly 1, so the
	// final counter equals the number of issued ops.
	v := newEnv(t, model.SoftwarePRISM, func(p *model.Params) {
		p.LossRate = 0.3
		p.RetransmitTimeout = 30 * time.Microsecond
	})
	const n = 100
	v.run(t, func(p *sim.Proc) {
		one := make([]byte, 8)
		one[0] = 1
		for i := 0; i < n; i++ {
			op := wire.Op{Code: wire.OpFetchAdd, RKey: v.reg.Key, Target: v.reg.Base, Data: one}
			res := v.conn.Issue(p, op)
			if res[0].Status != wire.StatusOK {
				t.Errorf("fetch-add %d: %v", i, res[0].Status)
			}
		}
	})
	got, _ := v.srv.Space().ReadU64(v.reg.Key, v.reg.Base)
	if got != n {
		t.Fatalf("counter = %d after %d increments (duplicates executed or lost)", got, n)
	}
	if v.conn.Retransmissions == 0 {
		t.Fatal("test exercised no retransmissions")
	}
}

func TestRecycleBufferWaitsForQuiesce(t *testing.T) {
	v := newEnv(t, model.SoftwarePRISM, nil)
	fl := alloc.NewFreeList(1, 64, v.reg.Key)
	fl.Post(v.reg.Base + 4096)
	v.srv.AddFreeList(fl)
	v.run(t, func(p *sim.Proc) {
		res := v.conn.Issue(p, prism.Allocate(1, []byte("x")))
		if res[0].Status != wire.StatusOK {
			t.Errorf("allocate: %v", res[0].Status)
			return
		}
		if fl.Len() != 0 {
			t.Error("free list should be empty")
		}
		// Release with no ops in flight: available after quiesce (which is
		// immediate here).
		v.srv.RecycleBuffer(1, res[0].Addr)
		if fl.Len() != 1 {
			t.Error("recycled buffer not reposted after quiesce")
		}
	})
}

func TestConnTempBuffersDistinct(t *testing.T) {
	v := newEnv(t, model.SoftwarePRISM, nil)
	c2 := v.cli.Connect(v.srv)
	if v.conn.TempAddr == c2.TempAddr {
		t.Fatal("connections share a temp buffer")
	}
	if v.conn.TempKey != c2.TempKey {
		t.Fatal("temp buffers under different keys")
	}
}

func TestThroughputBoundedByLineRate(t *testing.T) {
	// Many clients reading 512 B: server response bandwidth should cap
	// near 40 Gb/s with the paper's frame overhead.
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(7)
	net := fabric.New(e, p)
	srv := NewServer(net, "srv", model.SoftwarePRISM)
	reg, _ := srv.Space().Register(1 << 20)
	srv.SetConnTempKey(reg.Key)

	const clients = 64
	var completed int64
	for i := 0; i < clients; i++ {
		cli := NewClient(net, "cli")
		conn := cli.Connect(srv)
		e.Go("load", func(pr *sim.Proc) {
			for {
				if pr.Now() > sim.Time(2*time.Millisecond) {
					return
				}
				conn.Issue(pr, prism.Read(reg.Key, reg.Base, 512))
				completed++
			}
		})
	}
	e.RunUntil(sim.Time(3 * time.Millisecond))
	e.Stop()
	// Line rate at 40 Gb/s with ~658 B per response message ≈ 7.6 M/s;
	// in 2 ms that's ~15k responses. Check we're within [50%, 110%].
	perSec := float64(completed) / 0.002
	if perSec < 3.5e6 || perSec > 9e6 {
		t.Fatalf("read throughput %.2f M/s, expected line-rate-bound ~5-9 M/s", perSec/1e6)
	}
	t.Logf("read throughput: %.2f M ops/s", perSec/1e6)
}

func TestTracerRecordsChainExecution(t *testing.T) {
	v := newEnv(t, model.SoftwarePRISM, nil)
	ring := NewTraceRing(16)
	v.srv.SetTracer(ring.Record)
	v.run(t, func(p *sim.Proc) {
		// A failing CAS followed by a conditional write: trace must show
		// CAS_FAILED then NOT_EXECUTED.
		seed := make([]byte, 8)
		prism.PutBE64(seed, 0, 10)
		v.conn.Issue(p, prism.Write(v.reg.Key, v.reg.Base, seed))
		stale := make([]byte, 8)
		prism.PutBE64(stale, 0, 5)
		v.conn.Issue(p,
			prism.CAS(v.reg.Key, v.reg.Base, wire.CASGt, stale, nil, nil),
			prism.Conditional(prism.Write(v.reg.Key, v.reg.Base+64, []byte("nope"))),
		)
	})
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("traced %d events, want 3: %v", len(evs), evs)
	}
	if evs[0].Code != wire.OpWrite || evs[0].Status != wire.StatusOK {
		t.Fatalf("ev0: %v", evs[0])
	}
	if evs[1].Code != wire.OpCAS || evs[1].Status != wire.StatusCASFailed {
		t.Fatalf("ev1: %v", evs[1])
	}
	if evs[2].Code != wire.OpWrite || evs[2].Status != wire.StatusNotExecuted || evs[2].OpIdx != 1 {
		t.Fatalf("ev2: %v", evs[2])
	}
	// Times are non-decreasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("trace times decrease: %v", evs)
		}
	}
}

func TestTraceRingWraps(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(TraceEvent{Seq: uint64(i)})
	}
	evs := ring.Events()
	if len(evs) != 4 || ring.Len() != 4 {
		t.Fatalf("ring kept %d events", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("ring order: %v", evs)
		}
	}
}

func TestRecvCreditsRNR(t *testing.T) {
	v := newEnv(t, model.HardwareRDMA, nil)
	v.srv.SetRecvCredits(2)
	v.srv.SetRPCHandler(func(payload []byte) ([]byte, time.Duration) {
		return []byte{0}, 50 * time.Microsecond // slow handler holds the buffer
	})
	// Fire 6 concurrent RPCs from separate connections (one conn would
	// serialize them and never exhaust the queue).
	var futs []*sim.Future[[]wire.Result]
	conns := make([]*Conn, 6)
	for i := range conns {
		conns[i] = v.cli.Connect(v.srv)
	}
	v.e.Go("blast", func(p *sim.Proc) {
		for _, c := range conns {
			futs = append(futs, c.IssueAsync([]wire.Op{prism.Send([]byte{1})}))
		}
		for _, f := range futs {
			f.Wait(p)
		}
	})
	v.e.Run()
	ok, rnr := 0, 0
	for _, f := range futs {
		switch f.Value()[0].Status {
		case wire.StatusOK:
			ok++
		case wire.StatusRNR:
			rnr++
		}
	}
	if ok < 2 || rnr == 0 {
		t.Fatalf("credits=2: ok=%d rnr=%d; want >=2 served and some RNR", ok, rnr)
	}
	// Credits replenish: a later RPC succeeds.
	v.e.Go("later", func(p *sim.Proc) {
		res := conns[0].Issue(p, prism.Send([]byte{2}))
		if res[0].Status != wire.StatusOK {
			t.Errorf("post-drain RPC: %v", res[0].Status)
		}
	})
	v.e.Run()
}

func TestOnNICTempCapacity(t *testing.T) {
	// On the projected hardware NIC, the first 256KB/256B = 1024
	// connections get on-NIC temp buffers; later connections' chain
	// redirects pay an extra PCIe round trip (§4.2's connection-scaling
	// analysis).
	v := newEnv(t, model.ProjectedHardwarePRISM, nil)
	fl := alloc.NewFreeList(1, 64, v.reg.Key)
	bufReg, err := v.srv.Space().RegisterShared(v.reg.Key, 64*4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		fl.Post(bufReg.Base + memory.Addr(i*64))
	}
	v.srv.AddFreeList(fl)

	measure := func(conn *Conn) sim.Duration {
		var rtt sim.Duration
		v.e.Go("m", func(p *sim.Proc) {
			// Warm, then measure a redirected ALLOCATE.
			conn.Issue(p, prism.RedirectTo(prism.Allocate(1, []byte("x")), conn.TempKey, conn.TempAddr))
			start := p.Now()
			conn.Issue(p, prism.RedirectTo(prism.Allocate(1, []byte("x")), conn.TempKey, conn.TempAddr))
			rtt = p.Now().Sub(start)
		})
		v.e.Run()
		return rtt
	}

	early := measure(v.conn) // connection id 0: on-NIC
	// Burn connection ids up to the on-NIC capacity.
	var late *Conn
	for i := 0; i < OnNICMemoryBytes/ConnTempSize; i++ {
		late = v.cli.Connect(v.srv)
	}
	lateRTT := measure(late)
	diff := lateRTT - early
	p := model.Default()
	if diff < p.PCIeRTT*8/10 || diff > p.PCIeRTT*12/10 {
		t.Fatalf("host-resident temp penalty %v, want ≈ one PCIe RTT (%v); early=%v late=%v",
			diff, p.PCIeRTT, early, lateRTT)
	}
}

func TestChainsInterleaveAcrossConnections(t *testing.T) {
	// Fidelity property (§3.5): a chain is NOT atomic — ops from other
	// connections may execute between its steps. Two clients run 3-op
	// chains concurrently; the trace must show at least one interleaving
	// (conn A's ops split by a conn B op).
	v := newEnv(t, model.SoftwarePRISM, nil)
	ring := NewTraceRing(256)
	v.srv.SetTracer(ring.Record)
	c2 := v.cli.Connect(v.srv)
	mkChain := func(conn *Conn, base memory.Addr) []wire.Op {
		return []wire.Op{
			prism.Write(v.reg.Key, base, []byte("aaaaaaaa")),
			prism.Write(v.reg.Key, base+8, []byte("bbbbbbbb")),
			prism.Write(v.reg.Key, base+16, []byte("cccccccc")),
		}
	}
	v.e.Go("a", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			v.conn.Issue(p, mkChain(v.conn, v.reg.Base)...)
		}
	})
	v.e.Go("b", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			c2.Issue(p, mkChain(c2, v.reg.Base+64)...)
		}
	})
	v.e.Run()
	evs := ring.Events()
	interleaved := false
	for i := 1; i < len(evs)-1; i++ {
		if evs[i].Conn != evs[i-1].Conn && evs[i-1].Conn == evs[i+1].Conn && evs[i-1].Seq == evs[i+1].Seq {
			interleaved = true
			break
		}
	}
	if !interleaved {
		t.Fatal("no cross-connection interleaving inside any chain — concurrency model too coarse")
	}
}

func TestSameConnectionRequestsSerialize(t *testing.T) {
	// RC semantics: two requests pipelined on ONE connection must not
	// interleave their ops — request N completes before N+1 starts.
	v := newEnv(t, model.SoftwarePRISM, nil)
	ring := NewTraceRing(256)
	v.srv.SetTracer(ring.Record)
	v.e.Go("a", func(p *sim.Proc) {
		var futs []*sim.Future[[]wire.Result]
		for i := 0; i < 5; i++ {
			futs = append(futs, v.conn.IssueAsync([]wire.Op{
				prism.Write(v.reg.Key, v.reg.Base, []byte("xxxxxxxx")),
				prism.Write(v.reg.Key, v.reg.Base+8, []byte("yyyyyyyy")),
			}))
		}
		for _, f := range futs {
			f.Wait(p)
		}
	})
	v.e.Run()
	evs := ring.Events()
	if len(evs) != 10 {
		t.Fatalf("traced %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq < evs[i-1].Seq {
			t.Fatalf("requests on one connection executed out of order: %v", evs)
		}
		if evs[i].Seq == evs[i-1].Seq && evs[i].OpIdx != evs[i-1].OpIdx+1 {
			t.Fatalf("ops within a request out of order: %v", evs)
		}
	}
}

// TestArenaRecycleUnderRetransmission is the regression for epoch-stamped
// transport pooling: request and response objects are recycled even when
// the link drops packets, so stale duplicates of a recycled object's
// previous incarnation may still be in flight when it is repopulated. The
// epoch stamp (snapshotted into the fabric Tag at send time) makes both
// endpoints drop such datagrams. Every op here writes a distinct payload
// and immediately reads it back, so any cross-wiring of a recycled
// response to the wrong future shows up as a data mismatch; the stat
// assertions prove pooling actually cycled under loss rather than being
// quietly disabled.
func TestArenaRecycleUnderRetransmission(t *testing.T) {
	v := newEnv(t, model.SoftwarePRISM, func(p *model.Params) {
		p.LossRate = 0.3
		p.RetransmitTimeout = 30 * time.Microsecond
	})
	const n = 200
	v.run(t, func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < n; i++ {
			for b := range buf {
				buf[b] = byte(i + b)
			}
			addr := v.reg.Base + memory.Addr(8*(i%64))
			res := v.conn.Issue(p, prism.Write(v.reg.Key, addr, buf))
			if res[0].Status != wire.StatusOK {
				t.Errorf("write %d: %v", i, res[0].Status)
			}
			res = v.conn.Issue(p, prism.Read(v.reg.Key, addr, 8))
			if res[0].Status != wire.StatusOK {
				t.Errorf("read %d: %v", i, res[0].Status)
				continue
			}
			for b, got := range res[0].Data {
				if got != byte(i+b) {
					t.Fatalf("read %d returned stale/foreign data %x at byte %d (want %x)",
						i, got, b, byte(i+b))
				}
			}
		}
	})
	if v.conn.Retransmissions == 0 {
		t.Fatal("test exercised no retransmissions")
	}
	if v.srv.RespReused == 0 {
		t.Fatal("response arena never recycled under loss (pooling disabled?)")
	}
	if v.conn.win.Pooled() == 0 {
		t.Fatal("request pool empty after drain: requests not recycled under loss")
	}
	t.Logf("retransmissions=%d respReused=%d reqPool=%d",
		v.conn.Retransmissions, v.srv.RespReused, v.conn.win.Pooled())
}
