package rdma

import (
	"testing"
	"time"

	"prism/internal/fabric"
	"prism/internal/model"
	"prism/internal/prism"
	"prism/internal/sim"
	"prism/internal/wire"
)

// TestQPCacheLRU: unit-level check of the LRU — hits refresh recency,
// misses evict the least recently used entry, warm counts neither.
func TestQPCacheLRU(t *testing.T) {
	c := newQPCache(2)
	c.warm(1)
	c.warm(2)
	if c.hits != 0 || c.misses != 0 || c.evictions != 0 {
		t.Fatalf("warm counted: %d/%d/%d", c.hits, c.misses, c.evictions)
	}
	if !c.touch(1) { // hit; order now [1, 2]
		t.Fatal("warmed conn 1 not resident")
	}
	if c.touch(3) { // miss; evicts 2
		t.Fatal("conn 3 hit before first touch")
	}
	if c.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions)
	}
	if c.touch(2) { // 2 was evicted
		t.Fatal("evicted conn 2 still resident")
	}
	if !c.touch(3) || !c.touch(2) {
		t.Fatal("recent entries not resident")
	}
	if c.hits != 3 || c.misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 3/2", c.hits, c.misses)
	}
	// warm over capacity also evicts.
	c.warm(9)
	if c.evictions != 3 { // touch(2)'s miss evicted too
		t.Fatalf("evictions = %d, want 3", c.evictions)
	}
}

// qpWorkload connects nConns queue pairs to one server and round-robins
// nRounds small READs across them from a single closed-loop process,
// returning the total virtual time and the server.
func qpWorkload(t *testing.T, nConns, nRounds int, mut func(*model.Params)) (time.Duration, *Server) {
	t.Helper()
	p := model.Default().WithNetwork(model.Direct)
	if mut != nil {
		mut(&p)
	}
	e := sim.NewEngine(1)
	net := fabric.New(e, p)
	srv := NewServer(net, "srv", model.HardwareRDMA)
	reg, err := srv.Space().Register(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(net, "cli")
	conns := make([]*Conn, nConns)
	for i := range conns {
		conns[i] = cli.Connect(srv)
	}
	var total time.Duration
	e.Go("client", func(p *sim.Proc) {
		start := p.Now()
		for r := 0; r < nRounds; r++ {
			for _, conn := range conns {
				res := conn.Issue(p, prism.Read(reg.Key, reg.Base, 8))
				if res[0].Status != wire.StatusOK {
					t.Errorf("read status %v", res[0].Status)
					return
				}
			}
		}
		total = p.Now().Sub(start)
	})
	e.Run()
	return total, srv
}

// TestQPCacheDisabledByDefault: Default() params leave the model off —
// no counters move, and enabling a cache larger than the connection
// count does not change a single timestamp (prewarm at connect means
// within-capacity workloads are bit-identical to the disabled model).
func TestQPCacheDisabledByDefault(t *testing.T) {
	off, srv := qpWorkload(t, 8, 4, nil)
	if h, m, ev := srv.QPCacheCounters(); h != 0 || m != 0 || ev != 0 {
		t.Fatalf("counters moved with model disabled: %d/%d/%d", h, m, ev)
	}
	fits, srv2 := qpWorkload(t, 8, 4, func(p *model.Params) {
		p.HWQPCacheEntries = 16
		p.HWQPMissPenalty = p.PCIeRTT
	})
	if fits != off {
		t.Fatalf("within-capacity run took %v, disabled-model run %v; want identical", fits, off)
	}
	if _, m, _ := srv2.QPCacheCounters(); m != 0 {
		t.Fatalf("within-capacity workload missed %d times", m)
	}
}

// TestQPCacheThrashSlowsRoundRobin: with more connections than cache
// entries, the strict round-robin is the worst case — every touch
// misses, every request pays the fetch penalty, and the run is
// measurably slower than within capacity. The counters surface through
// the server and through WorldStats.
func TestQPCacheThrashSlowsRoundRobin(t *testing.T) {
	const conns, rounds = 8, 8
	fits, _ := qpWorkload(t, conns, rounds, func(p *model.Params) {
		p.HWQPCacheEntries = conns
		p.HWQPMissPenalty = p.PCIeRTT
	})
	thrash, srv := qpWorkload(t, conns, rounds, func(p *model.Params) {
		p.HWQPCacheEntries = conns / 2
		p.HWQPMissPenalty = p.PCIeRTT
	})
	h, m, ev := srv.QPCacheCounters()
	if m == 0 || ev == 0 {
		t.Fatalf("thrashing run: hits=%d misses=%d evictions=%d; want misses and evictions", h, m, ev)
	}
	// Request + response side both touch: 2 accesses per op.
	if want := int64(2 * conns * rounds); h+m != want {
		t.Fatalf("hits+misses = %d, want %d touches", h+m, want)
	}
	// Every op pays at least one PCIe fetch beyond the fitting run.
	minExtra := time.Duration(conns*rounds) * model.Default().PCIeRTT
	if thrash < fits+minExtra {
		t.Fatalf("thrash run %v not slower than fitting run %v by >= %v", thrash, fits, minExtra)
	}
	ws := srv.Engine().World().Stats()
	if ws.ConnCacheMisses != m || ws.ConnCacheHits != h || ws.ConnCacheEvictions != ev {
		t.Fatalf("WorldStats counters %d/%d/%d != server counters %d/%d/%d",
			ws.ConnCacheHits, ws.ConnCacheMisses, ws.ConnCacheEvictions, h, m, ev)
	}
}

// TestQPCacheFetchSerializes: concurrent cold arrivals queue on the
// shared context-fetch engine, so simultaneous misses finish strictly
// later than a lone one — the mechanism that caps throughput past the
// cliff rather than adding a flat latency tax.
func TestQPCacheFetchSerializes(t *testing.T) {
	latency := func(nConns int) time.Duration {
		p := model.Default().WithNetwork(model.Direct)
		p.HWQPCacheEntries = 1 // every arrival after the first conn is cold
		p.HWQPMissPenalty = p.PCIeRTT
		e := sim.NewEngine(1)
		net := fabric.New(e, p)
		srv := NewServer(net, "srv", model.HardwareRDMA)
		reg, err := srv.Space().Register(1 << 16)
		if err != nil {
			t.Fatal(err)
		}
		var worst time.Duration
		for i := 0; i < nConns; i++ {
			cli := NewClient(net, "cli")
			conn := cli.Connect(srv)
			e.Go("client", func(p *sim.Proc) {
				start := p.Now()
				conn.Issue(p, prism.Read(reg.Key, reg.Base, 8))
				if d := p.Now().Sub(start); d > worst {
					worst = d
				}
			})
		}
		e.Run()
		return worst
	}
	lone := latency(1)
	burst := latency(6)
	// Six simultaneous cold fetches serialize: the last one waits for
	// five fetch slots beyond what a lone miss pays.
	if min := lone + 4*model.Default().PCIeRTT; burst < min {
		t.Fatalf("burst worst-case %v, lone %v; want >= %v (fetch engine must serialize)", burst, lone, min)
	}
}
