package check

import (
	"testing"

	"prism/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n * 1000) }

func TestEmptyHistoryOK(t *testing.T) {
	h := &RegisterHistory{}
	if err := h.CheckLinearizable(0); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialHistoryOK(t *testing.T) {
	h := &RegisterHistory{}
	h.Add(RegisterOp{IsWrite: true, Tag: 1, Invoke: us(0), Respond: us(10), Client: 1})
	h.Add(RegisterOp{Tag: 1, Invoke: us(20), Respond: us(30), Client: 2})
	h.Add(RegisterOp{IsWrite: true, Tag: 2, Invoke: us(40), Respond: us(50), Client: 1})
	h.Add(RegisterOp{Tag: 2, Invoke: us(60), Respond: us(70), Client: 2})
	if err := h.CheckLinearizable(0); err != nil {
		t.Fatal(err)
	}
}

func TestStaleReadDetected(t *testing.T) {
	h := &RegisterHistory{}
	h.Add(RegisterOp{IsWrite: true, Tag: 1, Invoke: us(0), Respond: us(10), Client: 1})
	h.Add(RegisterOp{IsWrite: true, Tag: 2, Invoke: us(20), Respond: us(30), Client: 1})
	// Read after write(2) completed but returns tag 1: stale.
	h.Add(RegisterOp{Tag: 1, Invoke: us(40), Respond: us(50), Client: 2})
	if err := h.CheckLinearizable(0); err == nil {
		t.Fatal("stale read not detected")
	}
}

func TestReadFromFutureDetected(t *testing.T) {
	h := &RegisterHistory{}
	// Read returns tag 5, but the write producing tag 5 starts later.
	h.Add(RegisterOp{Tag: 5, Invoke: us(0), Respond: us(10), Client: 2})
	h.Add(RegisterOp{IsWrite: true, Tag: 5, Invoke: us(20), Respond: us(30), Client: 1})
	if err := h.CheckLinearizable(0); err == nil {
		t.Fatal("read-from-future not detected")
	}
}

func TestPhantomReadDetected(t *testing.T) {
	h := &RegisterHistory{}
	h.Add(RegisterOp{Tag: 9, Invoke: us(0), Respond: us(10), Client: 2})
	if err := h.CheckLinearizable(0); err == nil {
		t.Fatal("read of never-written tag not detected")
	}
}

func TestDuplicateWriteTagsDetected(t *testing.T) {
	h := &RegisterHistory{}
	h.Add(RegisterOp{IsWrite: true, Tag: 3, Invoke: us(0), Respond: us(10), Client: 1})
	h.Add(RegisterOp{IsWrite: true, Tag: 3, Invoke: us(20), Respond: us(30), Client: 2})
	if err := h.CheckLinearizable(0); err == nil {
		t.Fatal("duplicate write tags not detected")
	}
}

func TestWriteOrderViolationDetected(t *testing.T) {
	h := &RegisterHistory{}
	h.Add(RegisterOp{IsWrite: true, Tag: 5, Invoke: us(0), Respond: us(10), Client: 1})
	// Later (real-time) write uses a smaller tag: violates write order.
	h.Add(RegisterOp{IsWrite: true, Tag: 4, Invoke: us(20), Respond: us(30), Client: 2})
	if err := h.CheckLinearizable(0); err == nil {
		t.Fatal("write order violation not detected")
	}
}

func TestConcurrentReadsMayDisagree(t *testing.T) {
	// Two overlapping reads around a concurrent write may return old and
	// new values in either order without violating linearizability.
	h := &RegisterHistory{}
	h.Add(RegisterOp{IsWrite: true, Tag: 1, Invoke: us(0), Respond: us(10), Client: 1})
	h.Add(RegisterOp{IsWrite: true, Tag: 2, Invoke: us(20), Respond: us(60), Client: 1})
	h.Add(RegisterOp{Tag: 2, Invoke: us(25), Respond: us(35), Client: 2}) // sees new early
	h.Add(RegisterOp{Tag: 1, Invoke: us(30), Respond: us(55), Client: 3}) // overlaps the write: old OK
	if err := h.CheckLinearizable(0); err != nil {
		t.Fatalf("valid concurrent history rejected: %v", err)
	}
}

func TestConcurrentReadRealTimeOrderEnforced(t *testing.T) {
	// But once a read returning tag 2 COMPLETES, a read invoked strictly
	// later must not return tag 1.
	h := &RegisterHistory{}
	h.Add(RegisterOp{IsWrite: true, Tag: 1, Invoke: us(0), Respond: us(10), Client: 1})
	h.Add(RegisterOp{IsWrite: true, Tag: 2, Invoke: us(20), Respond: us(90), Client: 1})
	h.Add(RegisterOp{Tag: 2, Invoke: us(25), Respond: us(35), Client: 2})
	h.Add(RegisterOp{Tag: 1, Invoke: us(40), Respond: us(50), Client: 3}) // new-old inversion
	if err := h.CheckLinearizable(0); err == nil {
		t.Fatal("new-old read inversion not detected")
	}
}

func TestInitialTagReadsOK(t *testing.T) {
	h := &RegisterHistory{}
	h.Add(RegisterOp{Tag: 7, Invoke: us(0), Respond: us(10), Client: 1})
	if err := h.CheckLinearizable(7); err != nil {
		t.Fatalf("initial-tag read rejected: %v", err)
	}
}

func TestMultiRegisterIsolation(t *testing.T) {
	m := NewMultiRegisterHistory()
	m.Add(1, RegisterOp{IsWrite: true, Tag: 1, Invoke: us(0), Respond: us(10), Client: 1})
	m.Add(2, RegisterOp{IsWrite: true, Tag: 1, Invoke: us(0), Respond: us(10), Client: 2})
	// Same tags on different registers are fine.
	if err := m.Check(0); err != nil {
		t.Fatal(err)
	}
	if m.Ops() != 2 {
		t.Fatalf("ops = %d", m.Ops())
	}
	// A violation in one register is reported.
	m.Add(2, RegisterOp{Tag: 99, Invoke: us(20), Respond: us(30), Client: 3})
	if err := m.Check(0); err == nil {
		t.Fatal("per-register violation not detected")
	}
}
