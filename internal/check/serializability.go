package check

import (
	"fmt"
	"sort"
)

// CommittedTx is one committed transaction as observed by a client:
// its commit timestamp, the version each read observed, and the keys it
// wrote. Timestamp-ordered OCC (Meerkat/PRISM-TX style) promises that
// committed transactions serialize in timestamp order; FaRM promises
// serializability in lock order, which its version counters also expose.
type CommittedTx struct {
	TS       uint64
	Reads    map[int64]uint64 // key -> version observed
	Writes   map[int64]uint64 // key -> version installed (usually TS)
	ClientID int
}

// CheckSerializable replays committed transactions in timestamp order and
// verifies that every read observed exactly the version installed by the
// latest earlier writer of that key (or the preload version). This is
// view-serializability in the equivalence order the protocol claims, which
// is what both protocols guarantee.
func CheckSerializable(txs []CommittedTx, initialVersion uint64) error {
	sorted := make([]CommittedTx, len(txs))
	copy(sorted, txs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].TS == sorted[i-1].TS {
			return fmt.Errorf("check: transactions from clients %d and %d share timestamp %d",
				sorted[i-1].ClientID, sorted[i].ClientID, sorted[i].TS)
		}
	}
	// Versions installed by committed transactions, per key. A read of a
	// version outside this set is a "phantom" version: PRISM-TX's abort
	// rule bumps C without installing a value, acting as a committed
	// no-op write at the aborted timestamp. Such reads are legal iff the
	// phantom version is newer than the latest real write the replay has
	// seen (the value is unchanged by no-ops), and they advance the
	// expected version like a write would.
	realWrites := make(map[int64]map[uint64]bool)
	for _, tx := range sorted {
		for key, ver := range tx.Writes {
			m, ok := realWrites[key]
			if !ok {
				m = make(map[uint64]bool)
				realWrites[key] = m
			}
			m[ver] = true
		}
	}
	last := make(map[int64]uint64)
	for _, tx := range sorted {
		for key, rc := range tx.Reads {
			want, ok := last[key]
			if !ok {
				want = initialVersion
			}
			if rc == want {
				continue
			}
			if !realWrites[key][rc] && rc > want {
				// Phantom no-op write (abort-time C bump) newer than the
				// last real write: value-equivalent; advance the clock.
				last[key] = rc
				continue
			}
			return fmt.Errorf("check: tx %d (client %d) read key %d at version %d; serial order requires %d",
				tx.TS, tx.ClientID, key, rc, want)
		}
		for key, ver := range tx.Writes {
			last[key] = ver
		}
	}
	return nil
}

// CheckConflictSerializable verifies the committed transactions are
// conflict-serializable in SOME order (not necessarily timestamp order —
// FaRM serializes in lock order). It reconstructs each key's version
// chain from the read-version -> written-version edges, rejects lost
// updates (two committed writers consuming the same version), phantom
// reads (observing a version nobody installed), and finally checks the
// cross-key dependency graph for cycles.
func CheckConflictSerializable(txs []CommittedTx, initialVersion uint64) error {
	// writerOf[key][version] = index of the tx that installed it.
	writerOf := make(map[int64]map[uint64]int)
	for i, tx := range txs {
		for key, ver := range tx.Writes {
			m, ok := writerOf[key]
			if !ok {
				m = make(map[uint64]int)
				writerOf[key] = m
			}
			if prev, dup := m[ver]; dup {
				return fmt.Errorf("check: txs %d and %d both installed version %d of key %d", prev, i, ver, key)
			}
			m[ver] = i
		}
	}
	// Per-key chains: each committed writer consumes the version it read.
	// nextOf[key][version] = tx that overwrote it.
	nextOf := make(map[int64]map[uint64]int)
	for i, tx := range txs {
		for key := range tx.Writes {
			rv, ok := tx.Reads[key]
			if !ok {
				// Blind write: no chain edge (allowed).
				continue
			}
			m, ok := nextOf[key]
			if !ok {
				m = make(map[uint64]int)
				nextOf[key] = m
			}
			if prev, dup := m[rv]; dup {
				return fmt.Errorf("check: lost update on key %d: txs %d and %d both overwrote version %d",
					key, prev, i, rv)
			}
			m[rv] = i
		}
	}
	// Edges: for each read of (key, v):
	//   writer(v) -> reader (wr dependency)
	//   reader -> overwriter(v) (rw anti-dependency)
	// and for each write consuming v: writer(v) -> overwriter (ww).
	adj := make([][]int, len(txs))
	addEdge := func(a, b int) {
		if a != b {
			adj[a] = append(adj[a], b)
		}
	}
	for i, tx := range txs {
		for key, rv := range tx.Reads {
			if rv != initialVersion {
				w, ok := writerOf[key][rv]
				if !ok {
					return fmt.Errorf("check: tx %d read version %d of key %d that no committed tx installed", i, rv, key)
				}
				addEdge(w, i)
			}
			if over, ok := nextOf[key][rv]; ok {
				addEdge(i, over)
			}
		}
	}
	// Cycle detection (iterative DFS, colors).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(txs))
	var stack []int
	for s := range txs {
		if color[s] != white {
			continue
		}
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			if color[n] == white {
				color[n] = gray
				for _, m := range adj[n] {
					if color[m] == gray {
						return fmt.Errorf("check: dependency cycle involving txs %d and %d", n, m)
					}
					if color[m] == white {
						stack = append(stack, m)
					}
				}
			} else {
				color[n] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}
