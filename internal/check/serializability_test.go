package check

import (
	"strings"
	"testing"
)

func tx(ts uint64, client int, reads, writes map[int64]uint64) CommittedTx {
	return CommittedTx{TS: ts, ClientID: client, Reads: reads, Writes: writes}
}

func TestSerializableEmptyAndSingle(t *testing.T) {
	if err := CheckSerializable(nil, 0); err != nil {
		t.Fatal(err)
	}
	txs := []CommittedTx{tx(1, 1, map[int64]uint64{5: 0}, map[int64]uint64{5: 1})}
	if err := CheckSerializable(txs, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSerializableChain(t *testing.T) {
	txs := []CommittedTx{
		tx(3, 2, map[int64]uint64{7: 1}, map[int64]uint64{7: 3}),
		tx(1, 1, map[int64]uint64{7: 0}, map[int64]uint64{7: 1}),
		tx(5, 1, map[int64]uint64{7: 3}, map[int64]uint64{7: 5}),
	}
	if err := CheckSerializable(txs, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSerializableDetectsStaleRead(t *testing.T) {
	txs := []CommittedTx{
		tx(1, 1, nil, map[int64]uint64{7: 1}),
		tx(2, 2, nil, map[int64]uint64{7: 2}),
		// Reads version 1 at TS 3, but version 2 committed at TS 2.
		tx(3, 3, map[int64]uint64{7: 1}, nil),
	}
	if err := CheckSerializable(txs, 0); err == nil {
		t.Fatal("stale read not detected")
	}
}

func TestSerializableDetectsDuplicateTS(t *testing.T) {
	txs := []CommittedTx{
		tx(5, 1, nil, map[int64]uint64{1: 5}),
		tx(5, 2, nil, map[int64]uint64{2: 5}),
	}
	if err := CheckSerializable(txs, 0); err == nil || !strings.Contains(err.Error(), "share timestamp") {
		t.Fatalf("duplicate TS: %v", err)
	}
}

func TestSerializableAcceptsPhantomBump(t *testing.T) {
	// An abort-time C bump acts as a committed no-op write: a later read
	// may observe a version no committed transaction installed, as long
	// as it is newer than the last real write.
	txs := []CommittedTx{
		tx(1, 1, map[int64]uint64{7: 0}, map[int64]uint64{7: 1}),
		tx(5, 2, map[int64]uint64{7: 3}, map[int64]uint64{7: 5}), // 3 is a phantom bump > 1
		tx(7, 3, map[int64]uint64{7: 5}, nil),
	}
	if err := CheckSerializable(txs, 0); err != nil {
		t.Fatalf("phantom bump rejected: %v", err)
	}
}

func TestSerializableRejectsStalePhantom(t *testing.T) {
	txs := []CommittedTx{
		tx(1, 1, map[int64]uint64{7: 0}, map[int64]uint64{7: 1}),
		tx(2, 2, map[int64]uint64{7: 0}, map[int64]uint64{7: 2}), // wait: reads 0 after 1 committed
	}
	if err := CheckSerializable(txs, 0); err == nil {
		t.Fatal("read of overwritten version not detected")
	}
}

// --- conflict serializability ---

func TestConflictSerializableChain(t *testing.T) {
	// Lock-order serializable but NOT timestamp-order: TS 5 ran before
	// TS 3 (FaRM's client clocks are uncoordinated).
	txs := []CommittedTx{
		tx(5, 1, map[int64]uint64{7: 0}, map[int64]uint64{7: 5}),
		tx(3, 2, map[int64]uint64{7: 5}, map[int64]uint64{7: 3}),
	}
	if err := CheckConflictSerializable(txs, 0); err != nil {
		t.Fatalf("lock-order chain rejected: %v", err)
	}
	// The TS-order oracle would reject this same history.
	if err := CheckSerializable(txs, 0); err == nil {
		t.Fatal("TS-order oracle unexpectedly accepted a non-TS-order history")
	}
}

func TestConflictSerializableDetectsLostUpdate(t *testing.T) {
	txs := []CommittedTx{
		tx(1, 1, map[int64]uint64{7: 0}, map[int64]uint64{7: 1}),
		tx(2, 2, map[int64]uint64{7: 0}, map[int64]uint64{7: 2}), // also consumed version 0
	}
	if err := CheckConflictSerializable(txs, 0); err == nil || !strings.Contains(err.Error(), "lost update") {
		t.Fatalf("lost update: %v", err)
	}
}

func TestConflictSerializableDetectsDuplicateInstall(t *testing.T) {
	txs := []CommittedTx{
		tx(1, 1, nil, map[int64]uint64{7: 9}),
		tx(2, 2, nil, map[int64]uint64{7: 9}),
	}
	if err := CheckConflictSerializable(txs, 0); err == nil {
		t.Fatal("duplicate version install not detected")
	}
}

func TestConflictSerializableDetectsPhantomRead(t *testing.T) {
	txs := []CommittedTx{
		tx(2, 1, map[int64]uint64{7: 99}, nil),
	}
	if err := CheckConflictSerializable(txs, 0); err == nil {
		t.Fatal("phantom read not detected")
	}
}

func TestConflictSerializableDetectsCycle(t *testing.T) {
	// Write skew across two keys: T1 reads x0 writes y1; T2 reads y0
	// writes x2. Each read precedes the other's write (rw edges both
	// ways) — a cycle, not serializable.
	txs := []CommittedTx{
		tx(1, 1, map[int64]uint64{1: 0}, map[int64]uint64{2: 11}),
		tx(2, 2, map[int64]uint64{2: 0}, map[int64]uint64{1: 12}),
	}
	// Add readers that pin the rw anti-dependencies: T1 read version 0 of
	// key 1 which T2 overwrote; T2 read version 0 of key 2 which T1
	// overwrote. For the overwrite edge to exist the overwriter must have
	// READ the version it replaced (our protocols are RMW), so model them
	// as RMW:
	txs = []CommittedTx{
		tx(1, 1, map[int64]uint64{1: 0, 2: 0}, map[int64]uint64{2: 11}),
		tx(2, 2, map[int64]uint64{2: 0, 1: 0}, map[int64]uint64{1: 12}),
	}
	if err := CheckConflictSerializable(txs, 0); err == nil {
		t.Fatal("write-skew cycle not detected")
	}
}

func TestConflictSerializableAcceptsDisjointKeys(t *testing.T) {
	txs := []CommittedTx{
		tx(2, 1, map[int64]uint64{1: 0}, map[int64]uint64{1: 2}),
		tx(1, 2, map[int64]uint64{2: 0}, map[int64]uint64{2: 1}),
		tx(3, 1, map[int64]uint64{1: 2, 2: 1}, nil),
	}
	if err := CheckConflictSerializable(txs, 0); err != nil {
		t.Fatalf("disjoint-key history rejected: %v", err)
	}
}

func TestConflictSerializableBlindWrites(t *testing.T) {
	// Blind writes (no read of the consumed version) form no chain edge
	// and are accepted.
	txs := []CommittedTx{
		tx(1, 1, nil, map[int64]uint64{7: 1}),
		tx(2, 2, nil, map[int64]uint64{7: 2}),
		tx(3, 3, map[int64]uint64{7: 2}, nil),
	}
	if err := CheckConflictSerializable(txs, 0); err != nil {
		t.Fatalf("blind writes rejected: %v", err)
	}
}
