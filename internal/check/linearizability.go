// Package check provides correctness oracles for the reproduced protocols:
// an atomic-register linearizability checker for the replicated block
// store and a serializability checker for the transaction protocol.
package check

import (
	"fmt"
	"sort"

	"prism/internal/sim"
)

// RegisterOp is one completed operation on a single register (block),
// annotated with the version tag it wrote or observed. Tags must totally
// order written versions (unique per write), which both ABD variants
// guarantee by construction.
type RegisterOp struct {
	IsWrite bool
	Tag     uint64 // version written (writes) or observed (reads)
	Invoke  sim.Time
	Respond sim.Time
	Client  int
}

// RegisterHistory accumulates operations on one register.
type RegisterHistory struct {
	ops []RegisterOp
}

// Add records a completed operation.
func (h *RegisterHistory) Add(op RegisterOp) { h.ops = append(h.ops, op) }

// Len returns the number of recorded operations.
func (h *RegisterHistory) Len() int { return len(h.ops) }

// CheckLinearizable verifies the history is linearizable as an atomic
// (MWMR) register, using the tag annotations. With tag-ordered unique
// writes, the classical atomicity conditions are necessary and sufficient:
//
//	(1) uniqueness: no two writes share a tag;
//	(2) no read from the future: a read's tag was produced by a write
//	    that was invoked before the read responded (or is the initial tag);
//	(3) write->read real-time order: a read invoked after a write with tag
//	    t responded must return tag >= t;
//	(4) read->read real-time order: reads ordered in real time return
//	    monotonically non-decreasing tags;
//	(5) write->write real-time order: writes ordered in real time have
//	    increasing tags.
//
// initialTag is the register's tag before any write (version zero).
func (h *RegisterHistory) CheckLinearizable(initialTag uint64) error {
	ops := make([]RegisterOp, len(h.ops))
	copy(ops, h.ops)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	writesByTag := make(map[uint64]RegisterOp)
	for _, op := range ops {
		if !op.IsWrite {
			continue
		}
		if prev, dup := writesByTag[op.Tag]; dup {
			return fmt.Errorf("check: writes by clients %d and %d share tag %d", prev.Client, op.Client, op.Tag)
		}
		writesByTag[op.Tag] = op
	}

	// (2) reads must not observe tags from writes invoked after they
	// responded, nor tags never written.
	for _, op := range ops {
		if op.IsWrite || op.Tag == initialTag {
			continue
		}
		w, ok := writesByTag[op.Tag]
		if !ok {
			return fmt.Errorf("check: read by client %d observed tag %d that no write produced", op.Client, op.Tag)
		}
		if w.Invoke > op.Respond {
			return fmt.Errorf("check: read by client %d (resp %v) observed tag %d written later (inv %v)",
				op.Client, op.Respond, op.Tag, w.Invoke)
		}
	}

	// (3)+(4)+(5): scan by response order and track the minimum tag any
	// later-invoked operation may observe/produce.
	// For every pair (a, b) with a.Respond < b.Invoke:
	//   a write  -> b read:  b.Tag >= a.Tag
	//   a read   -> b read:  b.Tag >= a.Tag
	//   a write  -> b write: b.Tag >  a.Tag
	//   a read   -> b write: b.Tag >  a.Tag (b's tag exceeds what a saw)
	// Track the max completed tag efficiently with an event sweep.
	type event struct {
		at      sim.Time
		seq     int
		isStart bool
		op      RegisterOp
	}
	var events []event
	for i, op := range ops {
		events = append(events, event{at: op.Invoke, seq: i, isStart: true, op: op})
		events = append(events, event{at: op.Respond, seq: i, isStart: false, op: op})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Starts after ends at the same instant: an op responding at t and
		// another invoked at t are not real-time ordered, so process ends
		// first only when strictly earlier. To be conservative (fewer
		// false alarms), process starts before ends at ties.
		return events[i].isStart && !events[j].isStart
	})
	maxDoneTag := initialTag
	for _, ev := range events {
		if ev.isStart {
			if ev.op.IsWrite {
				if ev.op.Tag <= maxDoneTag {
					return fmt.Errorf("check: write by client %d used tag %d <= completed tag %d",
						ev.op.Client, ev.op.Tag, maxDoneTag)
				}
			} else if ev.op.Tag < maxDoneTag {
				return fmt.Errorf("check: read by client %d returned stale tag %d < completed tag %d",
					ev.op.Client, ev.op.Tag, maxDoneTag)
			}
		} else if ev.op.Tag > maxDoneTag {
			maxDoneTag = ev.op.Tag
		}
	}
	return nil
}

// MultiRegisterHistory tracks one history per register.
type MultiRegisterHistory struct {
	regs map[int64]*RegisterHistory
}

// NewMultiRegisterHistory returns an empty multi-register history.
func NewMultiRegisterHistory() *MultiRegisterHistory {
	return &MultiRegisterHistory{regs: make(map[int64]*RegisterHistory)}
}

// Add records an operation on register reg.
func (m *MultiRegisterHistory) Add(reg int64, op RegisterOp) {
	h, ok := m.regs[reg]
	if !ok {
		h = &RegisterHistory{}
		m.regs[reg] = h
	}
	h.Add(op)
}

// Check validates every register's history.
func (m *MultiRegisterHistory) Check(initialTag uint64) error {
	for reg, h := range m.regs {
		if err := h.CheckLinearizable(initialTag); err != nil {
			return fmt.Errorf("register %d: %w", reg, err)
		}
	}
	return nil
}

// Ops returns the total number of recorded operations.
func (m *MultiRegisterHistory) Ops() int {
	n := 0
	for _, h := range m.regs {
		n += h.Len()
	}
	return n
}
