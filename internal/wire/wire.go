// Package wire defines the message formats exchanged between client and
// server NICs: classic RDMA verbs, the PRISM extensions (§3, Table 1), and
// the five extra header flags the paper adds to the RDMA BTH (§4.2).
//
// Messages encode to real byte strings (encoding/binary, little-endian).
// The encoded sizes drive the simulator's bandwidth accounting, so the
// throughput ceilings in the reproduced figures come from actual message
// sizes rather than assumed constants.
package wire

import (
	"fmt"

	"prism/internal/memory"
)

// OpCode identifies a remote operation.
type OpCode uint8

// Operation codes. Send/Receive is the two-sided path used by the RPC
// layer; the rest are one-sided.
const (
	OpInvalid OpCode = iota
	OpRead
	OpWrite
	OpCAS        // enhanced compare-and-swap (§3.3), single data argument + masks
	OpClassicCAS // legacy 8-byte CAS with separate expect/desired operands
	OpFetchAdd   // classic fetch-and-add
	OpAllocate   // PRISM ALLOCATE (§3.2)
	OpSend       // two-sided send
	OpChase      // bounded server-side pointer/probe chase (§17)
	OpScan       // ranged multi-key read with byte budget + cursor (§17)
)

func (o OpCode) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpCAS:
		return "CAS"
	case OpClassicCAS:
		return "CLASSIC_CAS"
	case OpFetchAdd:
		return "FETCH_ADD"
	case OpAllocate:
		return "ALLOCATE"
	case OpSend:
		return "SEND"
	case OpChase:
		return "CHASE"
	case OpScan:
		return "SCAN"
	default:
		return fmt.Sprintf("OpCode(%d)", uint8(o))
	}
}

// Flags are the five PRISM BTH flags (§4.2): three for indirection (target
// indirect, data indirect, bounded target) and two for chaining
// (conditional, redirect).
type Flags uint8

// PRISM header flags.
const (
	FlagTargetIndirect Flags = 1 << iota // target address is a pointer to the real target
	FlagDataIndirect                     // data argument is a server-side pointer to the source data
	FlagBounded                          // target is a <ptr,bound> struct; length is clamped to bound
	FlagConditional                      // execute only if the previous op on this connection succeeded
	FlagRedirect                         // write output to RedirectTo instead of returning it
)

// Has reports whether all bits in f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// CASMode selects the comparison operator of the enhanced CAS (§3.3).
type CASMode uint8

// Comparison modes. EQ is the classic bitwise equality; GT/LT compare the
// masked operands as little-endian unsigned integers, supporting the
// versioned-update pattern.
const (
	CASEq CASMode = iota
	CASGt
	CASLt
)

func (m CASMode) String() string {
	switch m {
	case CASEq:
		return "EQ"
	case CASGt:
		return "GT"
	case CASLt:
		return "LT"
	default:
		return fmt.Sprintf("CASMode(%d)", uint8(m))
	}
}

// MaxCASBytes is the widest enhanced-CAS operand (§3.3, Mellanox extended
// atomics support up to 32 bytes).
const MaxCASBytes = 32

// Op is one remote operation; a request carries a chain of them.
type Op struct {
	Code  OpCode
	Flags Flags
	RKey  memory.RKey
	// Target is the target address (or the address of the pointer to it if
	// FlagTargetIndirect, or of a <ptr,bound> if also FlagBounded).
	Target memory.Addr
	// Len is the client-requested length for READ and bounded WRITEs.
	Len uint64
	// Data is inline payload for WRITE/CAS/SEND/ALLOCATE. For
	// FlagDataIndirect it is replaced by an 8-byte server-side pointer.
	Data []byte
	// Mode, CompareMask, SwapMask configure the enhanced CAS. Masks have
	// the same length as Data (<= MaxCASBytes).
	Mode        CASMode
	CompareMask []byte
	SwapMask    []byte
	// FreeList selects the free-list queue pair for ALLOCATE.
	FreeList uint32
	// RedirectTo receives the op's output when FlagRedirect is set.
	RedirectTo memory.Addr
}

// Status is the per-op completion status.
type Status uint8

// Completion statuses. CASFailed and NotExecuted are not transport errors:
// they mean the comparison failed, or a conditional op was skipped because
// its predecessor was unsuccessful.
const (
	StatusOK Status = iota
	StatusCASFailed
	StatusNotExecuted
	StatusNAKAccess   // rkey/bounds/unregistered/null violations
	StatusRNR         // receiver not ready: free list empty / no recv buffer
	StatusUnsupported // op not supported by this NIC deployment
	StatusNotFound    // CHASE terminated on a nil pointer / empty slot without matching
	StatusStepLimit   // CHASE exhausted MaxSteps; Addr carries the resumption cursor
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusCASFailed:
		return "CAS_FAILED"
	case StatusNotExecuted:
		return "NOT_EXECUTED"
	case StatusNAKAccess:
		return "NAK_ACCESS"
	case StatusRNR:
		return "RNR"
	case StatusUnsupported:
		return "UNSUPPORTED"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusStepLimit:
		return "STEP_LIMIT"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// OK reports whether the op executed successfully (for chaining purposes,
// §3.4: NAKs, errors, and failed CASes are unsuccessful).
func (s Status) OK() bool { return s == StatusOK }

// Result is the per-op outcome returned to the client (unless redirected).
type Result struct {
	Status Status
	// Data is the READ payload or the previous value of a CAS target.
	Data []byte
	// Addr is the buffer address returned by ALLOCATE, the address of the
	// matched node for CHASE, or the resumption cursor for SCAN and a
	// step-limited CHASE.
	Addr memory.Addr
}

// Request is one client->server message carrying a chain of ops.
type Request struct {
	Conn uint64 // connection (queue pair) identifier
	Seq  uint64 // per-connection sequence number
	// Epoch counts reuses of this (pooled) request object. The transport
	// stamps each transmission with the sender's current epoch so a
	// receiver can discard a datagram whose payload object was recycled
	// and repopulated while the datagram was in flight (possible only
	// when the fabric drops or delays messages).
	Epoch uint32
	Ops   []Op
}

// Response is the server->client completion message.
type Response struct {
	Conn uint64 // echoes the request's queue pair, for client demux
	Seq  uint64
	// Epoch counts reuses of this (pooled) response object; see
	// Request.Epoch.
	Epoch   uint32
	Results []Result
}
