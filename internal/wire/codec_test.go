package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prism/internal/memory"
)

func sampleResponse() *Response {
	return &Response{
		Conn:  7,
		Seq:   42,
		Epoch: 3,
		Results: []Result{
			{Status: StatusOK, Data: []byte("value bytes")},
			{Status: StatusCASFailed, Data: bytes.Repeat([]byte{1}, 24)},
			{Status: StatusNotExecuted},
			{Status: StatusRNR},
			{Status: StatusOK, Addr: 0xbeef},
			// CHASE/SCAN terminations: Addr is the resumption cursor.
			{Status: StatusNotFound, Addr: 0x1c0},
			{Status: StatusStepLimit, Addr: 17},
		},
	}
}

// Property: decode(encode(x)) == x for arbitrary multi-op responses,
// including error results carrying no payload — the response-side mirror
// of TestQuickRequestRoundtrip.
func TestQuickResponseRoundtrip(t *testing.T) {
	f := func(conn, seq uint64, epoch uint32, statuses []uint8, addr uint64, data []byte) bool {
		if len(statuses) > 8 {
			statuses = statuses[:8]
		}
		resp := &Response{Conn: conn, Seq: seq, Epoch: epoch, Results: []Result{}}
		for i, s := range statuses {
			res := Result{Status: Status(s % 6)}
			if res.Status == StatusOK {
				res.Addr = memory.Addr(addr + uint64(i))
				if len(data) > 0 {
					res.Data = data
				}
			}
			resp.Results = append(resp.Results, res)
		}
		b := EncodeResponse(resp)
		got, err := DecodeResponse(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(resp, got) && ResponseWireSize(resp) == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

// Truncating an encoded message at any byte offset must fail decoding —
// no prefix of a valid message is itself valid.
func TestDecodeTruncatedEveryOffset(t *testing.T) {
	reqBytes := EncodeRequest(sampleRequest())
	for cut := 0; cut < len(reqBytes); cut++ {
		if _, err := DecodeRequest(reqBytes[:cut]); err == nil {
			t.Fatalf("request decode of %d-byte prefix succeeded", cut)
		}
	}
	respBytes := EncodeResponse(sampleResponse())
	for cut := 0; cut < len(respBytes); cut++ {
		if _, err := DecodeResponse(respBytes[:cut]); err == nil {
			t.Fatalf("response decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestResponseDecodeTrailingGarbage(t *testing.T) {
	b := append(EncodeResponse(sampleResponse()), 0x00)
	if _, err := DecodeResponse(b); err == nil {
		t.Fatal("decode with trailing garbage succeeded")
	}
}

func TestResponseDecodeHugeCountRejected(t *testing.T) {
	var b []byte
	b = putU64(b, 1)
	b = putU64(b, 1)
	b = putU32(b, 0)
	b = putU32(b, 1<<30)
	if _, err := DecodeResponse(b); err == nil {
		t.Fatal("absurd result count accepted")
	}
}

// Alias decoding must agree field-for-field with copying decoding, borrow
// the input buffer for payloads, and reuse the destination's op storage.
func TestAliasDecodeRequest(t *testing.T) {
	req := sampleRequest()
	b := EncodeRequest(req)
	var alias Request
	if err := DecodeRequestAlias(&alias, b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, &alias) {
		t.Fatalf("alias decode mismatch:\n in: %+v\nout: %+v", req, &alias)
	}
	// Payloads are views into b, not copies.
	for i := range alias.Ops {
		d := alias.Ops[i].Data
		if len(d) == 0 {
			continue
		}
		if !sliceWithin(d, b) {
			t.Fatalf("op %d Data does not alias the input buffer", i)
		}
		// Capacity-clamped: appending to the view must not scribble on b.
		if cap(d) != len(d) {
			t.Fatalf("op %d Data view has slack capacity %d > %d", i, cap(d), len(d))
		}
	}
	// Second decode into the same struct reuses Ops storage.
	prev := &alias.Ops[0]
	if err := DecodeRequestAlias(&alias, b); err != nil {
		t.Fatal(err)
	}
	if &alias.Ops[0] != prev {
		t.Fatal("alias decode reallocated Ops despite sufficient capacity")
	}
}

func TestAliasDecodeResponse(t *testing.T) {
	resp := sampleResponse()
	b := EncodeResponse(resp)
	var alias Response
	if err := DecodeResponseAlias(&alias, b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, &alias) {
		t.Fatalf("alias decode mismatch:\n in: %+v\nout: %+v", resp, &alias)
	}
	for i := range alias.Results {
		d := alias.Results[i].Data
		if len(d) > 0 && !sliceWithin(d, b) {
			t.Fatalf("result %d Data does not alias the input buffer", i)
		}
	}
	prev := &alias.Results[0]
	if err := DecodeResponseAlias(&alias, b); err != nil {
		t.Fatal(err)
	}
	if &alias.Results[0] != prev {
		t.Fatal("alias decode reallocated Results despite sufficient capacity")
	}
}

// AppendRequest/AppendResponse extend the destination rather than
// overwrite it, and produce the same bytes as the Encode forms.
func TestAppendExtendsDst(t *testing.T) {
	req, resp := sampleRequest(), sampleResponse()
	prefix := []byte{0xAA, 0xBB}
	gotReq := AppendRequest(append([]byte(nil), prefix...), req)
	if !bytes.Equal(gotReq[:2], prefix) || !bytes.Equal(gotReq[2:], EncodeRequest(req)) {
		t.Fatal("AppendRequest did not extend dst with the canonical encoding")
	}
	gotResp := AppendResponse(append([]byte(nil), prefix...), resp)
	if !bytes.Equal(gotResp[:2], prefix) || !bytes.Equal(gotResp[2:], EncodeResponse(resp)) {
		t.Fatal("AppendResponse did not extend dst with the canonical encoding")
	}
}

// sliceWithin reports whether s's backing memory lies inside b.
func sliceWithin(s, b []byte) bool {
	if len(s) == 0 || len(b) == 0 {
		return false
	}
	for i := range b {
		if &b[i] == &s[0] {
			return true
		}
	}
	return false
}

// FuzzDecodeRequest checks that request decoding never panics and that any
// successfully decoded message re-encodes to exactly the input bytes (the
// codec is canonical).
func FuzzDecodeRequest(f *testing.F) {
	seed := EncodeRequest(sampleRequest())
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(append(append([]byte(nil), seed...), 0xFF))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeRequest(b)
		if err != nil {
			return
		}
		if got := EncodeRequest(req); !bytes.Equal(got, b) {
			t.Fatalf("re-encode differs from input:\n in: %x\nout: %x", b, got)
		}
		var alias Request
		if err := DecodeRequestAlias(&alias, b); err != nil {
			t.Fatalf("alias decode failed where copy decode succeeded: %v", err)
		}
		if !reflect.DeepEqual(req, &alias) {
			t.Fatal("alias and copy decodes disagree")
		}
	})
}

// FuzzDecodeResponse is the response-side mirror of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	seed := EncodeResponse(sampleResponse())
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(append(append([]byte(nil), seed...), 0x00))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := DecodeResponse(b)
		if err != nil {
			return
		}
		if got := EncodeResponse(resp); !bytes.Equal(got, b) {
			t.Fatalf("re-encode differs from input:\n in: %x\nout: %x", b, got)
		}
		var alias Response
		if err := DecodeResponseAlias(&alias, b); err != nil {
			t.Fatalf("alias decode failed where copy decode succeeded: %v", err)
		}
		if !reflect.DeepEqual(resp, &alias) {
			t.Fatal("alias and copy decodes disagree")
		}
	})
}
