package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prism/internal/memory"
)

func sampleRequest() *Request {
	return &Request{
		Conn: 7,
		Seq:  42,
		Ops: []Op{
			{
				Code:   OpRead,
				Flags:  FlagTargetIndirect | FlagBounded,
				RKey:   3,
				Target: 0x1000,
				Len:    512,
			},
			{
				Code:       OpAllocate,
				Flags:      FlagConditional | FlagRedirect,
				Data:       []byte("payload"),
				FreeList:   2,
				RedirectTo: 0x2000,
			},
			{
				Code:        OpCAS,
				Mode:        CASGt,
				RKey:        3,
				Target:      0x3000,
				Data:        bytes.Repeat([]byte{0xFF}, 16),
				CompareMask: bytes.Repeat([]byte{0xFF}, 16),
				SwapMask:    bytes.Repeat([]byte{0x0F}, 16),
			},
			{
				// CHASE: a 32-byte program header plus an 8-byte match
				// operand rides Data; the predicate reuses Mode/CompareMask.
				Code:        OpChase,
				RKey:        3,
				Target:      0x4000,
				Len:         256,
				Mode:        CASEq,
				Data:        append(bytes.Repeat([]byte{0xA5}, 32), bytes.Repeat([]byte{0x42}, 8)...),
				CompareMask: bytes.Repeat([]byte{0xFF}, 8),
			},
			{
				// SCAN: header only (no match operand), byte budget in Len.
				Code:   OpScan,
				RKey:   3,
				Target: 0x5000,
				Len:    4096,
				Data:   bytes.Repeat([]byte{0x5A}, 32),
			},
		},
	}
}

func TestRequestRoundtrip(t *testing.T) {
	req := sampleRequest()
	b := EncodeRequest(req)
	got, err := DecodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("roundtrip mismatch:\n in: %+v\nout: %+v", req, got)
	}
}

func TestRequestWireSizeMatchesEncoding(t *testing.T) {
	req := sampleRequest()
	if got, want := RequestWireSize(req), len(EncodeRequest(req)); got != want {
		t.Fatalf("RequestWireSize = %d, encoded length = %d", got, want)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	resp := &Response{
		Seq: 42,
		Results: []Result{
			{Status: StatusOK, Data: []byte("value")},
			{Status: StatusCASFailed, Data: bytes.Repeat([]byte{1}, 16)},
			{Status: StatusNotExecuted},
			{Status: StatusOK, Addr: 0xbeef},
		},
	}
	b := EncodeResponse(resp)
	got, err := DecodeResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("roundtrip mismatch:\n in: %+v\nout: %+v", resp, got)
	}
	if ResponseWireSize(resp) != len(b) {
		t.Fatalf("ResponseWireSize = %d, encoded = %d", ResponseWireSize(resp), len(b))
	}
}

func TestDecodeTruncated(t *testing.T) {
	b := EncodeRequest(sampleRequest())
	for cut := 0; cut < len(b); cut += 3 {
		if _, err := DecodeRequest(b[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	b := append(EncodeRequest(sampleRequest()), 0xFF)
	if _, err := DecodeRequest(b); err == nil {
		t.Fatal("decode with trailing garbage succeeded")
	}
}

func TestDecodeHugeChainRejected(t *testing.T) {
	var b []byte
	b = putU64(b, 1)
	b = putU64(b, 1)
	b = putU32(b, 1<<30)
	if _, err := DecodeRequest(b); err == nil {
		t.Fatal("absurd op count accepted")
	}
}

// Property: decode(encode(x)) == x for arbitrary single-op requests.
func TestQuickRequestRoundtrip(t *testing.T) {
	f := func(conn, seq uint64, code uint8, flags uint8, rkey uint32, target uint64, ln uint16, data []byte, freeList uint32, redirect uint64) bool {
		req := &Request{
			Conn: conn,
			Seq:  seq,
			Ops: []Op{{
				Code:       OpCode(code%7 + 1),
				Flags:      Flags(flags) & (FlagTargetIndirect | FlagDataIndirect | FlagBounded | FlagConditional | FlagRedirect),
				RKey:       memory.RKey(rkey),
				Target:     memory.Addr(target),
				Len:        uint64(ln),
				Data:       data,
				FreeList:   freeList,
				RedirectTo: memory.Addr(redirect),
			}},
		}
		if len(req.Ops[0].Data) == 0 {
			req.Ops[0].Data = nil
		}
		b := EncodeRequest(req)
		got, err := DecodeRequest(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(req, got) && RequestWireSize(req) == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-ish property: decoding random bytes never panics.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = DecodeRequest(b)
		_, _ = DecodeResponse(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsHas(t *testing.T) {
	f := FlagTargetIndirect | FlagConditional
	if !f.Has(FlagTargetIndirect) || !f.Has(FlagConditional) {
		t.Fatal("Has missed set flags")
	}
	if f.Has(FlagRedirect) {
		t.Fatal("Has reported unset flag")
	}
	if f.Has(FlagTargetIndirect | FlagRedirect) {
		t.Fatal("Has must require all bits")
	}
}

func TestStatusOK(t *testing.T) {
	if !StatusOK.OK() {
		t.Fatal("StatusOK not OK")
	}
	for _, s := range []Status{StatusCASFailed, StatusNotExecuted, StatusNAKAccess, StatusRNR, StatusUnsupported} {
		if s.OK() {
			t.Fatalf("%v reported OK", s)
		}
	}
}

func TestStringers(t *testing.T) {
	if OpRead.String() != "READ" || OpAllocate.String() != "ALLOCATE" {
		t.Fatal("OpCode stringer wrong")
	}
	if CASGt.String() != "GT" {
		t.Fatal("CASMode stringer wrong")
	}
	if StatusRNR.String() != "RNR" {
		t.Fatal("Status stringer wrong")
	}
}
