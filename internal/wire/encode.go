package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"prism/internal/memory"
)

// Decode errors.
var (
	ErrShortMessage = errors.New("wire: truncated message")
	ErrBadMessage   = errors.New("wire: malformed message")
)

const maxInline = 1 << 20 // sanity cap on inline payload during decode

func putU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func putU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func putBytes(b []byte, p []byte) []byte {
	b = putU32(b, uint32(len(p)))
	return append(b, p...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.b) {
		r.err = ErrShortMessage
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = ErrShortMessage
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = ErrShortMessage
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > maxInline || r.off+int(n) > len(r.b) {
		r.err = ErrShortMessage
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += int(n)
	return out
}

// EncodeRequest serializes a request. The layout is fixed-width headers
// plus length-prefixed byte strings; field order matches decode.
func EncodeRequest(req *Request) []byte {
	b := make([]byte, 0, 64+inlineLen(req))
	b = putU64(b, req.Conn)
	b = putU64(b, req.Seq)
	b = putU32(b, req.Epoch)
	b = putU32(b, uint32(len(req.Ops)))
	for i := range req.Ops {
		op := &req.Ops[i]
		b = append(b, byte(op.Code), byte(op.Flags), byte(op.Mode))
		b = putU32(b, uint32(op.RKey))
		b = putU64(b, uint64(op.Target))
		b = putU64(b, op.Len)
		b = putBytes(b, op.Data)
		b = putBytes(b, op.CompareMask)
		b = putBytes(b, op.SwapMask)
		b = putU32(b, op.FreeList)
		b = putU64(b, uint64(op.RedirectTo))
	}
	return b
}

func inlineLen(req *Request) int {
	n := 0
	for i := range req.Ops {
		// per-op fixed bytes: code+flags+mode (3) + rkey (4) + target (8) +
		// len (8) + three 4-byte length prefixes + freelist (4) + redirect (8)
		n += len(req.Ops[i].Data) + len(req.Ops[i].CompareMask) + len(req.Ops[i].SwapMask) + 47
	}
	return n
}

// DecodeRequest parses a request encoded by EncodeRequest.
func DecodeRequest(b []byte) (*Request, error) {
	r := &reader{b: b}
	req := &Request{Conn: r.u64(), Seq: r.u64(), Epoch: r.u32()}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if n > 64 {
		return nil, fmt.Errorf("%w: chain of %d ops", ErrBadMessage, n)
	}
	req.Ops = make([]Op, n)
	for i := range req.Ops {
		op := &req.Ops[i]
		op.Code = OpCode(r.u8())
		op.Flags = Flags(r.u8())
		op.Mode = CASMode(r.u8())
		op.RKey = memory.RKey(r.u32())
		op.Target = memory.Addr(r.u64())
		op.Len = r.u64()
		op.Data = r.bytes()
		op.CompareMask = r.bytes()
		op.SwapMask = r.bytes()
		op.FreeList = r.u32()
		op.RedirectTo = memory.Addr(r.u64())
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(b)-r.off)
	}
	return req, nil
}

// EncodeResponse serializes a response.
func EncodeResponse(resp *Response) []byte {
	b := make([]byte, 0, 32)
	b = putU64(b, resp.Conn)
	b = putU64(b, resp.Seq)
	b = putU32(b, resp.Epoch)
	b = putU32(b, uint32(len(resp.Results)))
	for i := range resp.Results {
		res := &resp.Results[i]
		b = append(b, byte(res.Status))
		b = putU64(b, uint64(res.Addr))
		b = putBytes(b, res.Data)
	}
	return b
}

// DecodeResponse parses a response encoded by EncodeResponse.
func DecodeResponse(b []byte) (*Response, error) {
	r := &reader{b: b}
	resp := &Response{Conn: r.u64(), Seq: r.u64(), Epoch: r.u32()}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if n > 64 {
		return nil, fmt.Errorf("%w: %d results", ErrBadMessage, n)
	}
	resp.Results = make([]Result, n)
	for i := range resp.Results {
		res := &resp.Results[i]
		res.Status = Status(r.u8())
		res.Addr = memory.Addr(r.u64())
		res.Data = r.bytes()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(b)-r.off)
	}
	return resp, nil
}

// RequestWireSize returns the encoded size of req without materializing the
// encoding (used on hot paths for bandwidth accounting).
func RequestWireSize(req *Request) int {
	return 24 + inlineLen(req)
}

// ResponseWireSize returns the encoded size of resp.
func ResponseWireSize(resp *Response) int {
	n := 24
	for i := range resp.Results {
		n += 1 + 8 + 4 + len(resp.Results[i].Data)
	}
	return n
}
