package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"prism/internal/memory"
)

// Decode errors.
var (
	ErrShortMessage = errors.New("wire: truncated message")
	ErrBadMessage   = errors.New("wire: malformed message")
)

const maxInline = 1 << 20 // sanity cap on inline payload during decode

func putU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func putU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func putBytes(b []byte, p []byte) []byte {
	b = putU32(b, uint32(len(p)))
	return append(b, p...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.b) {
		r.err = ErrShortMessage
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = ErrShortMessage
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = ErrShortMessage
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// bytes decodes a length-prefixed byte string. alias=false returns a
// fresh copy; alias=true returns a view borrowing the input buffer
// (capacity-clamped so appends cannot scribble past it). Either way a
// zero-length string decodes to nil.
func (r *reader) bytes(alias bool) []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > maxInline || r.off+int(n) > len(r.b) {
		r.err = ErrShortMessage
		return nil
	}
	if n == 0 {
		return nil
	}
	var out []byte
	if alias {
		out = r.b[r.off : r.off+int(n) : r.off+int(n)]
	} else {
		out = make([]byte, n)
		copy(out, r.b[r.off:])
	}
	r.off += int(n)
	return out
}

// AppendRequest appends req's serialization to dst and returns the
// extended buffer (append-style, so callers bring their own scratch; the
// encoded length is RequestWireSize). The layout is fixed-width headers
// plus length-prefixed byte strings; field order matches decode.
func AppendRequest(dst []byte, req *Request) []byte {
	b := putU64(dst, req.Conn)
	b = putU64(b, req.Seq)
	b = putU32(b, req.Epoch)
	b = putU32(b, uint32(len(req.Ops)))
	for i := range req.Ops {
		op := &req.Ops[i]
		b = append(b, byte(op.Code), byte(op.Flags), byte(op.Mode))
		b = putU32(b, uint32(op.RKey))
		b = putU64(b, uint64(op.Target))
		b = putU64(b, op.Len)
		b = putBytes(b, op.Data)
		b = putBytes(b, op.CompareMask)
		b = putBytes(b, op.SwapMask)
		b = putU32(b, op.FreeList)
		b = putU64(b, uint64(op.RedirectTo))
	}
	return b
}

// EncodeRequest serializes a request into a fresh buffer.
func EncodeRequest(req *Request) []byte {
	return AppendRequest(make([]byte, 0, 24+inlineLen(req)), req)
}

func inlineLen(req *Request) int {
	n := 0
	for i := range req.Ops {
		// per-op fixed bytes: code+flags+mode (3) + rkey (4) + target (8) +
		// len (8) + three 4-byte length prefixes + freelist (4) + redirect (8)
		n += len(req.Ops[i].Data) + len(req.Ops[i].CompareMask) + len(req.Ops[i].SwapMask) + 47
	}
	return n
}

// decodeRequestInto parses b into req, reusing req.Ops' capacity. With
// alias set, Data/CompareMask/SwapMask are views borrowing b.
func decodeRequestInto(req *Request, b []byte, alias bool) error {
	r := &reader{b: b}
	req.Conn, req.Seq, req.Epoch = r.u64(), r.u64(), r.u32()
	n := r.u32()
	if r.err != nil {
		return r.err
	}
	if n > 64 {
		return fmt.Errorf("%w: chain of %d ops", ErrBadMessage, n)
	}
	if req.Ops == nil || uint32(cap(req.Ops)) < n {
		req.Ops = make([]Op, n)
	} else {
		req.Ops = req.Ops[:n]
	}
	for i := range req.Ops {
		op := &req.Ops[i]
		op.Code = OpCode(r.u8())
		op.Flags = Flags(r.u8())
		op.Mode = CASMode(r.u8())
		op.RKey = memory.RKey(r.u32())
		op.Target = memory.Addr(r.u64())
		op.Len = r.u64()
		op.Data = r.bytes(alias)
		op.CompareMask = r.bytes(alias)
		op.SwapMask = r.bytes(alias)
		op.FreeList = r.u32()
		op.RedirectTo = memory.Addr(r.u64())
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(b)-r.off)
	}
	return nil
}

// DecodeRequest parses a request encoded by EncodeRequest. All payload
// fields are fresh copies, independent of b.
func DecodeRequest(b []byte) (*Request, error) {
	req := &Request{}
	if err := decodeRequestInto(req, b, false); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeRequestAlias parses b into req without copying payloads: each
// op's Data/CompareMask/SwapMask alias b, and req.Ops reuses its prior
// capacity. The views are valid only while b's backing memory is — for
// transport buffers, until the owning arena slot or pooled object is
// recycled (its epoch bumps, see Request.Epoch). Callers that retain a
// payload across that lifetime must copy it out.
func DecodeRequestAlias(req *Request, b []byte) error {
	return decodeRequestInto(req, b, true)
}

// AppendResponse appends resp's serialization to dst and returns the
// extended buffer (the encoded length is ResponseWireSize).
func AppendResponse(dst []byte, resp *Response) []byte {
	b := putU64(dst, resp.Conn)
	b = putU64(b, resp.Seq)
	b = putU32(b, resp.Epoch)
	b = putU32(b, uint32(len(resp.Results)))
	for i := range resp.Results {
		res := &resp.Results[i]
		b = append(b, byte(res.Status))
		b = putU64(b, uint64(res.Addr))
		b = putBytes(b, res.Data)
	}
	return b
}

// EncodeResponse serializes a response into a fresh buffer.
func EncodeResponse(resp *Response) []byte {
	return AppendResponse(make([]byte, 0, ResponseWireSize(resp)), resp)
}

// decodeResponseInto parses b into resp, reusing resp.Results' capacity.
// With alias set, result Data fields are views borrowing b.
func decodeResponseInto(resp *Response, b []byte, alias bool) error {
	r := &reader{b: b}
	resp.Conn, resp.Seq, resp.Epoch = r.u64(), r.u64(), r.u32()
	n := r.u32()
	if r.err != nil {
		return r.err
	}
	if n > 64 {
		return fmt.Errorf("%w: %d results", ErrBadMessage, n)
	}
	if resp.Results == nil || uint32(cap(resp.Results)) < n {
		resp.Results = make([]Result, n)
	} else {
		resp.Results = resp.Results[:n]
	}
	for i := range resp.Results {
		res := &resp.Results[i]
		res.Status = Status(r.u8())
		res.Addr = memory.Addr(r.u64())
		res.Data = r.bytes(alias)
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(b)-r.off)
	}
	return nil
}

// DecodeResponse parses a response encoded by EncodeResponse. All result
// payloads are fresh copies, independent of b.
func DecodeResponse(b []byte) (*Response, error) {
	resp := &Response{}
	if err := decodeResponseInto(resp, b, false); err != nil {
		return nil, err
	}
	return resp, nil
}

// DecodeResponseAlias parses b into resp without copying payloads: each
// result's Data aliases b, and resp.Results reuses its prior capacity.
// The same lifetime rule as DecodeRequestAlias applies: the views die
// when b's owner (arena slot / pooled object) recycles it.
func DecodeResponseAlias(resp *Response, b []byte) error {
	return decodeResponseInto(resp, b, true)
}

// RequestWireSize returns the encoded size of req without materializing the
// encoding (used on hot paths for bandwidth accounting).
func RequestWireSize(req *Request) int {
	return 24 + inlineLen(req)
}

// ResponseWireSize returns the encoded size of resp.
func ResponseWireSize(resp *Response) int {
	n := 24
	for i := range resp.Results {
		n += 1 + 8 + 4 + len(resp.Results[i].Data)
	}
	return n
}
