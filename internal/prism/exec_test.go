package prism

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"prism/internal/alloc"
	"prism/internal/memory"
	"prism/internal/wire"
)

// testEnv builds an executor with one data region and one free list.
func testEnv(t *testing.T) (*Executor, *memory.Region) {
	t.Helper()
	space := memory.NewSpace()
	region, err := space.Register(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	return NewExecutor(space), region
}

func mustOK(t *testing.T, res wire.Result) wire.Result {
	t.Helper()
	if res.Status != wire.StatusOK {
		t.Fatalf("status = %v, want OK", res.Status)
	}
	return res
}

func TestDirectReadWrite(t *testing.T) {
	x, r := testEnv(t)
	op := Write(r.Key, r.Base+64, []byte("hello"))
	mustOK(t, first(x.Exec(&op)))
	rd := Read(r.Key, r.Base+64, 5)
	res := mustOK(t, first(x.Exec(&rd)))
	if string(res.Data) != "hello" {
		t.Fatalf("read %q", res.Data)
	}
}

func first(r wire.Result, _ OpMeta) wire.Result { return r }

func TestIndirectRead(t *testing.T) {
	x, r := testEnv(t)
	// value at base+256, pointer to it at base+0
	val := []byte("indirect value")
	w := Write(r.Key, r.Base+256, val)
	mustOK(t, first(x.Exec(&w)))
	if err := x.Space.WriteU64(r.Key, r.Base, uint64(r.Base+256)); err != nil {
		t.Fatal(err)
	}
	rd := ReadIndirect(r.Key, r.Base, uint64(len(val)))
	res, meta := x.Exec(&rd)
	mustOK(t, res)
	if string(res.Data) != string(val) {
		t.Fatalf("read %q", res.Data)
	}
	if meta.Indirections != 1 || meta.HostAccesses != 2 {
		t.Fatalf("meta = %+v", meta)
	}
	if !meta.PRISMOnly {
		t.Fatal("indirect read not flagged as PRISM-only")
	}
}

func TestBoundedReadClampsLength(t *testing.T) {
	x, r := testEnv(t)
	w := Write(r.Key, r.Base+256, []byte("0123456789"))
	mustOK(t, first(x.Exec(&w)))
	if err := x.Space.WriteBoundedPtr(r.Key, r.Base, memory.BoundedPtr{Ptr: r.Base + 256, Bound: 4}); err != nil {
		t.Fatal(err)
	}
	rd := ReadBounded(r.Key, r.Base, 512) // client over-asks; bound clamps
	res := mustOK(t, first(x.Exec(&rd)))
	if string(res.Data) != "0123" {
		t.Fatalf("bounded read %q", res.Data)
	}
	// A shorter client length wins over the bound.
	rd2 := ReadBounded(r.Key, r.Base, 2)
	res2 := mustOK(t, first(x.Exec(&rd2)))
	if string(res2.Data) != "01" {
		t.Fatalf("short bounded read %q", res2.Data)
	}
}

func TestIndirectReadNullPointerNAK(t *testing.T) {
	x, r := testEnv(t)
	rd := ReadIndirect(r.Key, r.Base+8, 8) // pointer cell is zero
	res, _ := x.Exec(&rd)
	if res.Status != wire.StatusNAKAccess {
		t.Fatalf("status = %v, want NAK", res.Status)
	}
}

func TestIndirectReadWrongRKeyTarget(t *testing.T) {
	x, r := testEnv(t)
	other, err := x.Space.Register(256)
	if err != nil {
		t.Fatal(err)
	}
	// Pointer in r targets memory in another region (different rkey):
	// rejected per §3.1's protection rule.
	if err := x.Space.WriteU64(r.Key, r.Base, uint64(other.Base)); err != nil {
		t.Fatal(err)
	}
	rd := ReadIndirect(r.Key, r.Base, 8)
	res, _ := x.Exec(&rd)
	if res.Status != wire.StatusNAKAccess {
		t.Fatalf("cross-region indirect read: %v", res.Status)
	}
}

func TestRedirectedRead(t *testing.T) {
	x, r := testEnv(t)
	w := Write(r.Key, r.Base+256, []byte("payload"))
	mustOK(t, first(x.Exec(&w)))
	rd := RedirectTo(Read(r.Key, r.Base+256, 7), r.Key, r.Base+512)
	res := mustOK(t, first(x.Exec(&rd)))
	if len(res.Data) != 0 {
		t.Fatalf("redirected read returned data %q", res.Data)
	}
	got, _ := x.Space.Read(r.Key, r.Base+512, 7)
	if string(got) != "payload" {
		t.Fatalf("redirect target holds %q", got)
	}
}

func TestWriteIndirect(t *testing.T) {
	x, r := testEnv(t)
	if err := x.Space.WriteU64(r.Key, r.Base, uint64(r.Base+256)); err != nil {
		t.Fatal(err)
	}
	w := WriteIndirect(r.Key, r.Base, []byte("via ptr"))
	mustOK(t, first(x.Exec(&w)))
	got, _ := x.Space.Read(r.Key, r.Base+256, 7)
	if string(got) != "via ptr" {
		t.Fatalf("indirect write landed %q", got)
	}
}

func TestWriteDataIndirect(t *testing.T) {
	x, r := testEnv(t)
	src := Write(r.Key, r.Base+256, []byte("source bytes"))
	mustOK(t, first(x.Exec(&src)))
	var ptr [8]byte
	binary.LittleEndian.PutUint64(ptr[:], uint64(r.Base+256))
	op := wire.Op{
		Code: wire.OpWrite, RKey: r.Key, Target: r.Base + 512,
		Data: ptr[:], Len: 12, Flags: wire.FlagDataIndirect,
	}
	mustOK(t, first(x.Exec(&op)))
	got, _ := x.Space.Read(r.Key, r.Base+512, 12)
	if string(got) != "source bytes" {
		t.Fatalf("data-indirect write landed %q", got)
	}
}

func TestAllocatePopsFIFOAndWrites(t *testing.T) {
	x, r := testEnv(t)
	fl := alloc.NewFreeList(1, 64, r.Key)
	fl.Post(r.Base + 1024)
	fl.Post(r.Base + 2048)
	x.FreeLists[1] = fl
	op := Allocate(1, []byte("first"))
	res := mustOK(t, first(x.Exec(&op)))
	if res.Addr != r.Base+1024 {
		t.Fatalf("allocated %#x", res.Addr)
	}
	got, _ := x.Space.Read(r.Key, res.Addr, 5)
	if string(got) != "first" {
		t.Fatalf("buffer holds %q", got)
	}
	op2 := Allocate(1, []byte("second"))
	res2 := mustOK(t, first(x.Exec(&op2)))
	if res2.Addr != r.Base+2048 {
		t.Fatalf("second allocation %#x", res2.Addr)
	}
}

func TestAllocateEmptyRNR(t *testing.T) {
	x, r := testEnv(t)
	x.FreeLists[1] = alloc.NewFreeList(1, 64, r.Key)
	op := Allocate(1, []byte("x"))
	res, _ := x.Exec(&op)
	if res.Status != wire.StatusRNR {
		t.Fatalf("empty free list: %v", res.Status)
	}
}

func TestAllocateOversizedRejectedWithoutPopping(t *testing.T) {
	x, r := testEnv(t)
	fl := alloc.NewFreeList(1, 4, r.Key)
	fl.Post(r.Base + 1024)
	x.FreeLists[1] = fl
	op := Allocate(1, []byte("too big for buffer"))
	res, _ := x.Exec(&op)
	if res.Status != wire.StatusNAKAccess {
		t.Fatalf("oversized allocate: %v", res.Status)
	}
	if fl.Len() != 1 {
		t.Fatal("oversized allocate consumed a buffer")
	}
}

func TestAllocateRedirectWritesAddress(t *testing.T) {
	x, r := testEnv(t)
	fl := alloc.NewFreeList(1, 64, r.Key)
	fl.Post(r.Base + 1024)
	x.FreeLists[1] = fl
	op := RedirectTo(Allocate(1, []byte("v")), r.Key, r.Base+128)
	res := mustOK(t, first(x.Exec(&op)))
	if res.Addr != r.Base+1024 {
		t.Fatalf("allocate result %#x", res.Addr)
	}
	got, _ := x.Space.ReadU64(r.Key, r.Base+128)
	if memory.Addr(got) != r.Base+1024 {
		t.Fatalf("redirect target holds %#x", got)
	}
}

func TestUnknownFreeList(t *testing.T) {
	x, _ := testEnv(t)
	op := Allocate(99, []byte("x"))
	res, _ := x.Exec(&op)
	if res.Status != wire.StatusNAKAccess {
		t.Fatalf("unknown free list: %v", res.Status)
	}
}

// --- Enhanced CAS ---

func TestCASEqualityFullWidth(t *testing.T) {
	x, r := testEnv(t)
	cur := []byte("AAAABBBB")
	w := Write(r.Key, r.Base, cur)
	mustOK(t, first(x.Exec(&w)))
	// Matching compare swaps.
	op := CAS(r.Key, r.Base, wire.CASEq, []byte("AAAABBBB"), nil, nil)
	res := mustOK(t, first(x.Exec(&op)))
	if !bytes.Equal(res.Data, cur) {
		t.Fatalf("previous value %q", res.Data)
	}
	// Swap installed data.
	got, _ := x.Space.Read(r.Key, r.Base, 8)
	if !bytes.Equal(got, []byte("AAAABBBB")) {
		t.Fatalf("target after CAS: %q", got)
	}
	// Mismatch fails and leaves target unchanged, returning the value.
	op2 := CAS(r.Key, r.Base, wire.CASEq, []byte("XXXXYYYY"), nil, nil)
	res2, _ := x.Exec(&op2)
	if res2.Status != wire.StatusCASFailed {
		t.Fatalf("mismatched CAS: %v", res2.Status)
	}
	if !bytes.Equal(res2.Data, cur) {
		t.Fatalf("failed CAS previous value %q", res2.Data)
	}
}

func TestCASSeparateCompareAndSwapFields(t *testing.T) {
	// Compare one field, swap another (§3.3): target = [tag(8)|addr(8)].
	x, r := testEnv(t)
	target := make([]byte, 16)
	PutBE64(target, 0, 5)      // tag = 5
	PutBE64(target, 8, 0x1111) // addr
	w := Write(r.Key, r.Base, target)
	mustOK(t, first(x.Exec(&w)))

	data := make([]byte, 16)
	PutBE64(data, 0, 7)      // new tag
	PutBE64(data, 8, 0x2222) // new addr
	// GT on the tag field, swap both fields.
	op := CAS(r.Key, r.Base, wire.CASGt, data, FieldMask(16, 0, 8), FullMask(16))
	res := mustOK(t, first(x.Exec(&op)))
	if BE64(res.Data, 0) != 5 || BE64(res.Data, 8) != 0x1111 {
		t.Fatalf("previous value tag=%d addr=%#x", BE64(res.Data, 0), BE64(res.Data, 8))
	}
	got, _ := x.Space.Read(r.Key, r.Base, 16)
	if BE64(got, 0) != 7 || BE64(got, 8) != 0x2222 {
		t.Fatalf("after CAS tag=%d addr=%#x", BE64(got, 0), BE64(got, 8))
	}

	// A smaller tag must fail (GT), leaving the target untouched.
	data2 := make([]byte, 16)
	PutBE64(data2, 0, 6)
	PutBE64(data2, 8, 0x3333)
	op2 := CAS(r.Key, r.Base, wire.CASGt, data2, FieldMask(16, 0, 8), FullMask(16))
	res2, _ := x.Exec(&op2)
	if res2.Status != wire.StatusCASFailed {
		t.Fatalf("stale tag CAS: %v", res2.Status)
	}
	got2, _ := x.Space.Read(r.Key, r.Base, 16)
	if BE64(got2, 0) != 7 || BE64(got2, 8) != 0x2222 {
		t.Fatal("failed CAS modified target")
	}
}

func TestCASPartialSwapPreservesUnmaskedBytes(t *testing.T) {
	x, r := testEnv(t)
	target := make([]byte, 16)
	PutBE64(target, 0, 1)
	PutBE64(target, 8, 0xAAAA)
	w := Write(r.Key, r.Base, target)
	mustOK(t, first(x.Exec(&w)))
	data := make([]byte, 16)
	PutBE64(data, 0, 9)
	PutBE64(data, 8, 0xBBBB)
	// Swap only the tag field; addr must survive.
	op := CAS(r.Key, r.Base, wire.CASGt, data, FieldMask(16, 0, 8), FieldMask(16, 0, 8))
	mustOK(t, first(x.Exec(&op)))
	got, _ := x.Space.Read(r.Key, r.Base, 16)
	if BE64(got, 0) != 9 || BE64(got, 8) != 0xAAAA {
		t.Fatalf("after partial swap tag=%d addr=%#x", BE64(got, 0), BE64(got, 8))
	}
}

func TestCASLessThan(t *testing.T) {
	x, r := testEnv(t)
	target := make([]byte, 8)
	PutBE64(target, 0, 100)
	w := Write(r.Key, r.Base, target)
	mustOK(t, first(x.Exec(&w)))
	data := make([]byte, 8)
	PutBE64(data, 0, 50)
	op := CAS(r.Key, r.Base, wire.CASLt, data, nil, nil)
	mustOK(t, first(x.Exec(&op)))
	got, _ := x.Space.Read(r.Key, r.Base, 8)
	if BE64(got, 0) != 50 {
		t.Fatalf("after LT CAS: %d", BE64(got, 0))
	}
}

func TestCASIndirectData(t *testing.T) {
	// The PRISM-RS pattern: operand lives in a server-side tmp buffer.
	x, r := testEnv(t)
	target := make([]byte, 16)
	PutBE64(target, 0, 3)
	PutBE64(target, 8, 0x1111)
	w := Write(r.Key, r.Base, target)
	mustOK(t, first(x.Exec(&w)))

	tmpAddr := r.Base + 512
	tmp := make([]byte, 16)
	PutBE64(tmp, 0, 4)
	PutBE64(tmp, 8, 0x2222)
	w2 := Write(r.Key, tmpAddr, tmp)
	mustOK(t, first(x.Exec(&w2)))

	op := CASIndirectData(r.Key, r.Base, wire.CASGt, tmpAddr, FieldMask(16, 0, 8), FullMask(16))
	res, meta := x.Exec(&op)
	mustOK(t, res)
	if meta.Indirections != 1 {
		t.Fatalf("meta %+v", meta)
	}
	got, _ := x.Space.Read(r.Key, r.Base, 16)
	if BE64(got, 0) != 4 || BE64(got, 8) != 0x2222 {
		t.Fatalf("after indirect-data CAS tag=%d addr=%#x", BE64(got, 0), BE64(got, 8))
	}
}

func TestCASIndirectTarget(t *testing.T) {
	x, r := testEnv(t)
	realTarget := r.Base + 256
	if err := x.Space.WriteU64(r.Key, r.Base, uint64(realTarget)); err != nil {
		t.Fatal(err)
	}
	old := make([]byte, 8)
	PutBE64(old, 0, 10)
	w := Write(r.Key, realTarget, old)
	mustOK(t, first(x.Exec(&w)))
	data := make([]byte, 8)
	PutBE64(data, 0, 11)
	op := CAS(r.Key, r.Base, wire.CASGt, data, nil, nil)
	op.Flags |= wire.FlagTargetIndirect
	mustOK(t, first(x.Exec(&op)))
	got, _ := x.Space.Read(r.Key, realTarget, 8)
	if BE64(got, 0) != 11 {
		t.Fatalf("indirect-target CAS result %d", BE64(got, 0))
	}
}

func TestCASWidthLimit(t *testing.T) {
	x, r := testEnv(t)
	data := make([]byte, 40)
	op := CAS(r.Key, r.Base, wire.CASEq, data, nil, nil)
	res, _ := x.Exec(&op)
	if res.Status != wire.StatusNAKAccess {
		t.Fatalf("40-byte CAS: %v", res.Status)
	}
}

func TestCASClassicSubsetDetection(t *testing.T) {
	x, r := testEnv(t)
	// 8-byte EQ full-mask CAS is the classic subset.
	w := Write(r.Key, r.Base, make([]byte, 8))
	mustOK(t, first(x.Exec(&w)))
	op := CAS(r.Key, r.Base, wire.CASEq, make([]byte, 8), nil, nil)
	_, meta := x.Exec(&op)
	if meta.PRISMOnly {
		t.Fatal("classic-subset CAS flagged PRISM-only")
	}
	op2 := CAS(r.Key, r.Base, wire.CASGt, make([]byte, 8), nil, nil)
	_, meta2 := x.Exec(&op2)
	if !meta2.PRISMOnly {
		t.Fatal("GT CAS not flagged PRISM-only")
	}
	op3 := CAS(r.Key, r.Base, wire.CASEq, make([]byte, 16), nil, nil)
	if _, meta3 := x.Exec(&op3); !meta3.PRISMOnly {
		t.Fatal("16-byte CAS not flagged PRISM-only")
	}
}

func TestClassicCAS(t *testing.T) {
	x, r := testEnv(t)
	if err := x.Space.WriteU64(r.Key, r.Base, 5); err != nil {
		t.Fatal(err)
	}
	op := ClassicCAS(r.Key, r.Base, 5, 9)
	res, meta := x.Exec(&op)
	mustOK(t, res)
	if meta.PRISMOnly {
		t.Fatal("classic CAS flagged PRISM-only")
	}
	if binary.LittleEndian.Uint64(res.Data) != 5 {
		t.Fatalf("previous = %d", binary.LittleEndian.Uint64(res.Data))
	}
	v, _ := x.Space.ReadU64(r.Key, r.Base)
	if v != 9 {
		t.Fatalf("after classic CAS: %d", v)
	}
	// Expect mismatch fails.
	op2 := ClassicCAS(r.Key, r.Base, 5, 1)
	res2, _ := x.Exec(&op2)
	if res2.Status != wire.StatusCASFailed {
		t.Fatalf("mismatch: %v", res2.Status)
	}
	if v, _ := x.Space.ReadU64(r.Key, r.Base); v != 9 {
		t.Fatal("failed classic CAS modified target")
	}
}

func TestFetchAdd(t *testing.T) {
	x, r := testEnv(t)
	if err := x.Space.WriteU64(r.Key, r.Base, 41); err != nil {
		t.Fatal(err)
	}
	var add [8]byte
	binary.LittleEndian.PutUint64(add[:], 1)
	op := wire.Op{Code: wire.OpFetchAdd, RKey: r.Key, Target: r.Base, Data: add[:]}
	res := mustOK(t, first(x.Exec(&op)))
	if binary.LittleEndian.Uint64(res.Data) != 41 {
		t.Fatalf("fetch-add previous %d", binary.LittleEndian.Uint64(res.Data))
	}
	if v, _ := x.Space.ReadU64(r.Key, r.Base); v != 42 {
		t.Fatalf("after fetch-add: %d", v)
	}
}

func TestUnsupportedOpcode(t *testing.T) {
	x, _ := testEnv(t)
	op := wire.Op{Code: wire.OpCode(99)}
	res, _ := x.Exec(&op)
	if res.Status != wire.StatusUnsupported {
		t.Fatalf("bogus opcode: %v", res.Status)
	}
}

// Property: a GT CAS sequence with strictly increasing tags always applies,
// and the stored tag equals the max tag ever offered, regardless of order.
func TestQuickCASGtMonotonic(t *testing.T) {
	f := func(tags []uint16) bool {
		if len(tags) == 0 {
			return true
		}
		space := memory.NewSpace()
		r, _ := space.Register(64)
		x := NewExecutor(space)
		zero := make([]byte, 8)
		w := Write(r.Key, r.Base, zero)
		x.Exec(&w)
		var max uint64
		for _, tg := range tags {
			v := uint64(tg) + 1
			data := make([]byte, 8)
			PutBE64(data, 0, v)
			op := CAS(r.Key, r.Base, wire.CASGt, data, nil, nil)
			res, _ := x.Exec(&op)
			shouldApply := v > max
			if shouldApply != (res.Status == wire.StatusOK) {
				return false
			}
			if v > max {
				max = v
			}
		}
		got, _ := space.Read(r.Key, r.Base, 8)
		return BE64(got, 0) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

// Property: masked swap never alters bytes outside the swap mask, and the
// comparison only depends on bytes inside the compare mask.
func TestQuickMaskAlgebra(t *testing.T) {
	f := func(cur, data [16]byte, cmaskBits, smaskBits uint16) bool {
		cmask := make([]byte, 16)
		smask := make([]byte, 16)
		for i := 0; i < 16; i++ {
			if cmaskBits&(1<<(i%16)) != 0 && i < 16 {
				cmask[i] = 0xFF
			}
			if smaskBits&(1<<(i%16)) != 0 {
				smask[i] = 0xFF
			}
		}
		space := memory.NewSpace()
		r, _ := space.Register(64)
		x := NewExecutor(space)
		w := Write(r.Key, r.Base, cur[:])
		x.Exec(&w)
		op := CAS(r.Key, r.Base, wire.CASEq, data[:], cmask, smask)
		res, _ := x.Exec(&op)
		after, _ := space.Read(r.Key, r.Base, 16)
		if res.Status == wire.StatusOK {
			for i := 0; i < 16; i++ {
				want := cur[i]
				if smask[i] == 0xFF {
					want = data[i]
				}
				if after[i] != want {
					return false
				}
			}
		} else {
			if !bytes.Equal(after, cur[:]) {
				return false
			}
		}
		// Comparison result must equal manual masked equality.
		eq := true
		for i := 0; i < 16; i++ {
			if cur[i]&cmask[i] != data[i]&cmask[i] {
				eq = false
			}
		}
		return eq == (res.Status == wire.StatusOK)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBoundedClampsLength(t *testing.T) {
	x, r := testEnv(t)
	// Target is a <ptr,bound> with a 4-byte bound; an 8-byte write clamps.
	if err := x.Space.WriteBoundedPtr(r.Key, r.Base, memory.BoundedPtr{Ptr: r.Base + 256, Bound: 4}); err != nil {
		t.Fatal(err)
	}
	marker := Write(r.Key, r.Base+256, []byte("ZZZZZZZZ"))
	mustOK(t, first(x.Exec(&marker)))
	op := Write(r.Key, r.Base, []byte("abcdefgh"))
	op.Flags |= wire.FlagBounded
	mustOK(t, first(x.Exec(&op)))
	got, _ := x.Space.Read(r.Key, r.Base+256, 8)
	if string(got) != "abcdZZZZ" {
		t.Fatalf("bounded write result %q", got)
	}
}

func TestCASIndirectTargetAndData(t *testing.T) {
	// Both arguments indirect at once (§3.3 allows either or both).
	x, r := testEnv(t)
	realTarget := r.Base + 256
	seed := make([]byte, 8)
	PutBE64(seed, 0, 5)
	w := Write(r.Key, realTarget, seed)
	mustOK(t, first(x.Exec(&w)))
	if err := x.Space.WriteU64(r.Key, r.Base, uint64(realTarget)); err != nil {
		t.Fatal(err)
	}
	dataSrc := r.Base + 512
	data := make([]byte, 8)
	PutBE64(data, 0, 9)
	w2 := Write(r.Key, dataSrc, data)
	mustOK(t, first(x.Exec(&w2)))

	op := CASIndirectData(r.Key, r.Base, wire.CASGt, dataSrc, nil, nil)
	op.Flags |= wire.FlagTargetIndirect
	res, meta := x.Exec(&op)
	mustOK(t, res)
	if meta.Indirections != 2 {
		t.Fatalf("indirections = %d", meta.Indirections)
	}
	got, _ := x.Space.Read(r.Key, realTarget, 8)
	if BE64(got, 0) != 9 {
		t.Fatalf("double-indirect CAS result %d", BE64(got, 0))
	}
}

func TestFetchAddIndirect(t *testing.T) {
	x, r := testEnv(t)
	if err := x.Space.WriteU64(r.Key, r.Base, uint64(r.Base+128)); err != nil {
		t.Fatal(err)
	}
	if err := x.Space.WriteU64(r.Key, r.Base+128, 100); err != nil {
		t.Fatal(err)
	}
	var add [8]byte
	add[0] = 5
	op := wire.Op{Code: wire.OpFetchAdd, RKey: r.Key, Target: r.Base, Data: add[:], Flags: wire.FlagTargetIndirect}
	mustOK(t, first(x.Exec(&op)))
	if v, _ := x.Space.ReadU64(r.Key, r.Base+128); v != 105 {
		t.Fatalf("indirect fetch-add: %d", v)
	}
}

// Property: CASGt(data) succeeds exactly when CASLt with swapped operand
// roles would: data > cur  <=>  cur < data.
func TestQuickCASGtLtDuality(t *testing.T) {
	f := func(cur, data [8]byte) bool {
		mk := func(mode wire.CASMode, target, operand [8]byte) bool {
			space := memory.NewSpace()
			r, _ := space.Register(64)
			x := NewExecutor(space)
			w := Write(r.Key, r.Base, target[:])
			x.Exec(&w)
			op := CAS(r.Key, r.Base, mode, operand[:], nil, nil)
			res, _ := x.Exec(&op)
			return res.Status == wire.StatusOK
		}
		gt := mk(wire.CASGt, cur, data) // data > cur
		lt := mk(wire.CASLt, data, cur) // cur < data (same relation)
		return gt == lt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

func TestChainDepthLimitOnWire(t *testing.T) {
	// The wire format caps chains at 64 ops; longer chains fail to decode.
	ops := make([]wire.Op, 65)
	for i := range ops {
		ops[i] = wire.Op{Code: wire.OpRead, Len: 8}
	}
	req := &wire.Request{Conn: 1, Seq: 1, Ops: ops}
	b := wire.EncodeRequest(req)
	if _, err := wire.DecodeRequest(b); err == nil {
		t.Fatal("65-op chain decoded")
	}
}
