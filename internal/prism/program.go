package prism

import (
	"encoding/binary"
	"errors"

	"prism/internal/memory"
	"prism/internal/wire"
)

// Verb programs (§17): bounded, loop-capable server-side programs that
// collapse k dependent round trips into one request. Two shapes:
//
//   - CHASE follows a pointer/probe sequence up to MaxSteps, evaluating a
//     per-step match predicate with the enhanced-CAS mask machinery
//     (compareMasked), and terminates on match, nil pointer, or the step
//     bound. A step-limited chase returns a resumption cursor so the
//     client can continue where the program stopped.
//   - SCAN walks a slot range in address order, appending every non-empty
//     entry to one length-prefixed result buffer until a byte budget or
//     the range end, returning the next slot index as a cursor.
//
// Both are single wire ops: the program rides the op's Data field as a
// fixed header followed by the match operand, the predicate reuses
// Mode/CompareMask, and the budget rides Len. Each program executes
// under the same per-primitive atomicity as every other verb — the loop
// runs server-side without interleaving, which is strictly stronger than
// the k-round-trip client loop it replaces (§3.5 discussion in
// DESIGN.md §17).

// Program kinds.
const (
	// ProgChaseList follows an 8-byte little-endian next pointer at
	// NextOff within each node; Target addresses the head pointer cell.
	ProgChaseList = 0
	// ProgChaseProbe walks slots of Stride bytes from a table base
	// (Target), reading the <ptr,bound> at NextOff within each slot and
	// wrapping the index modulo NSlots — the linear-probe shape.
	ProgChaseProbe = 1
)

// Program bounds. MaxChaseSteps caps the loop of a single CHASE op;
// MaxScanBudget caps the result bytes of a single SCAN op. Both keep a
// program's NIC occupancy bounded (§17): longer walks resume by cursor.
const (
	MaxChaseSteps = 64
	MaxScanBudget = 1 << 16
)

// ProgHeaderLen is the fixed encoded size of a Program, preceding the
// match operand in the op's Data field.
const ProgHeaderLen = 32

// Program is the decoded verb-program header.
type Program struct {
	Kind     uint8  // ProgChaseList or ProgChaseProbe
	MaxSteps uint8  // loop bound, 1..MaxChaseSteps (CHASE); unused by SCAN
	MatchOff uint16 // offset of the matched field within a node/entry
	MatchLen uint16 // width of the match operand (0 for SCAN)
	NextOff  uint16 // offset of the next pointer (list) / <ptr,bound> (probe)
	Stride   uint64 // slot size in bytes (probe/scan)
	StartIdx uint64 // starting slot index (probe/scan)
	NSlots   uint64 // table slot count (probe: wrap modulo; scan: range end)
}

// AppendProgram appends the canonical header encoding of p, then the
// match operand, to b (little-endian throughout, like every pointer
// field on the wire).
func AppendProgram(b []byte, p *Program, match []byte) []byte {
	b = append(b, p.Kind, p.MaxSteps)
	b = binary.LittleEndian.AppendUint16(b, p.MatchOff)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(match)))
	b = binary.LittleEndian.AppendUint16(b, p.NextOff)
	b = binary.LittleEndian.AppendUint64(b, p.Stride)
	b = binary.LittleEndian.AppendUint64(b, p.StartIdx)
	b = binary.LittleEndian.AppendUint64(b, p.NSlots)
	return append(b, match...)
}

// parseProgram decodes a program header and its trailing match operand
// from an op's Data field. The match slice aliases data.
func parseProgram(data []byte) (Program, []byte, error) {
	var p Program
	if len(data) < ProgHeaderLen {
		return p, nil, errors.New("prism: short program header")
	}
	p.Kind = data[0]
	p.MaxSteps = data[1]
	p.MatchOff = binary.LittleEndian.Uint16(data[2:])
	p.MatchLen = binary.LittleEndian.Uint16(data[4:])
	p.NextOff = binary.LittleEndian.Uint16(data[6:])
	p.Stride = binary.LittleEndian.Uint64(data[8:])
	p.StartIdx = binary.LittleEndian.Uint64(data[16:])
	p.NSlots = binary.LittleEndian.Uint64(data[24:])
	match := data[ProgHeaderLen:]
	if len(match) != int(p.MatchLen) {
		return p, nil, errors.New("prism: program match operand length mismatch")
	}
	return p, match, nil
}

// DecodeProgram decodes a program header and its trailing match operand
// from an op's Data field — the tooling-side twin of AppendProgram. The
// match slice aliases data.
func DecodeProgram(data []byte) (Program, []byte, error) {
	return parseProgram(data)
}

// Chase builds a CHASE op over an encoded program (AppendProgram). The
// predicate compares the node field at MatchOff against the program's
// match operand under mode and mask (nil mask = all bits); maxLen caps
// the payload returned from the matched node.
func Chase(key memory.RKey, target memory.Addr, prog []byte, mode wire.CASMode, mask []byte, maxLen uint64) wire.Op {
	return wire.Op{
		Code:        wire.OpChase,
		RKey:        key,
		Target:      target,
		Len:         maxLen,
		Data:        prog,
		Mode:        mode,
		CompareMask: mask,
	}
}

// Scan builds a SCAN op over an encoded program: slots
// [StartIdx, NSlots) of Stride bytes from base, the <ptr,bound> at
// NextOff within each slot, budget result bytes.
func Scan(key memory.RKey, base memory.Addr, prog []byte, budget uint64) wire.Op {
	return wire.Op{Code: wire.OpScan, RKey: key, Target: base, Len: budget, Data: prog}
}

// execChase runs the bounded pointer/probe loop entirely server-side.
// Per step it performs one pointer fetch (an indirection, like a bounded
// READ's) plus one match-field access, so the deployment cost models
// charge it per executed step through OpMeta (Steps, HostAccesses,
// Indirections) — a program is never cheaper than the honest sum of its
// memory traffic, only cheaper in round trips.
func (x *Executor) execChase(op *wire.Op, meta *OpMeta) (wire.Result, error) {
	p, match, err := parseProgram(op.Data)
	if err != nil {
		return wire.Result{}, err
	}
	if p.MaxSteps == 0 || p.MaxSteps > MaxChaseSteps {
		return wire.Result{}, errors.New("prism: chase step bound out of range")
	}
	if p.MatchLen == 0 || p.MatchLen > wire.MaxCASBytes {
		return wire.Result{}, errors.New("prism: chase match width out of range")
	}
	if len(op.CompareMask) != 0 && len(op.CompareMask) != int(p.MatchLen) {
		return wire.Result{}, errors.New("prism: chase mask width mismatch")
	}
	switch p.Kind {
	case ProgChaseList:
		return x.chaseList(op, &p, match, meta)
	case ProgChaseProbe:
		if p.Stride == 0 || p.NSlots == 0 || p.StartIdx >= p.NSlots {
			return wire.Result{}, errors.New("prism: bad probe geometry")
		}
		return x.chaseProbe(op, &p, match, meta)
	default:
		return wire.Result{}, errors.New("prism: unknown program kind")
	}
}

// chaseList: cur addresses a pointer cell; each step loads the pointer,
// tests the pointee's match field, and either returns the node or
// advances cur to the node's next-pointer cell.
func (x *Executor) chaseList(op *wire.Op, p *Program, match []byte, meta *OpMeta) (wire.Result, error) {
	cur := op.Target
	for step := uint8(0); step < p.MaxSteps; step++ {
		ptr, err := x.Space.ReadU64(op.RKey, cur)
		if err != nil {
			return wire.Result{}, err
		}
		meta.Steps++
		meta.HostAccesses++
		meta.Indirections++
		if ptr == 0 {
			return wire.Result{Status: wire.StatusNotFound, Addr: cur}, nil
		}
		node := memory.Addr(ptr)
		field, err := x.Space.Peek(op.RKey, node+memory.Addr(p.MatchOff), uint64(p.MatchLen))
		if err != nil {
			return wire.Result{}, err
		}
		meta.HostAccesses++
		if compareMasked(op.Mode, field, match, op.CompareMask) {
			data, err := x.chasePayload(op, node, op.Len)
			if err != nil {
				return wire.Result{}, err
			}
			meta.HostAccesses++
			return wire.Result{Status: wire.StatusOK, Addr: node, Data: data}, nil
		}
		cur = node + memory.Addr(p.NextOff)
	}
	// Step bound exhausted: Addr is the pointer cell to resume from.
	return wire.Result{Status: wire.StatusStepLimit, Addr: cur}, nil
}

// chaseProbe: the linear-probe shape. Each step reads the <ptr,bound> of
// slot (StartIdx+step) mod NSlots; an empty slot ends the probe sequence
// (NotFound, like the client-side probe loop it replaces), a matching
// entry returns min(Len, bound) bytes of it.
func (x *Executor) chaseProbe(op *wire.Op, p *Program, match []byte, meta *OpMeta) (wire.Result, error) {
	idx := p.StartIdx
	for step := uint8(0); step < p.MaxSteps; step++ {
		slot := op.Target + memory.Addr(idx*p.Stride+uint64(p.NextOff))
		bp, err := x.Space.ReadBoundedPtr(op.RKey, slot)
		if err != nil {
			return wire.Result{}, err
		}
		meta.Steps++
		meta.HostAccesses++
		meta.Indirections++
		if bp.Ptr == 0 {
			return wire.Result{Status: wire.StatusNotFound, Addr: memory.Addr(idx)}, nil
		}
		field, err := x.Space.Peek(op.RKey, bp.Ptr+memory.Addr(p.MatchOff), uint64(p.MatchLen))
		if err != nil {
			return wire.Result{}, err
		}
		meta.HostAccesses++
		if compareMasked(op.Mode, field, match, op.CompareMask) {
			length := op.Len
			if bp.Bound < length {
				length = bp.Bound
			}
			data, err := x.chasePayload(op, bp.Ptr, length)
			if err != nil {
				return wire.Result{}, err
			}
			meta.HostAccesses++
			return wire.Result{Status: wire.StatusOK, Addr: bp.Ptr, Data: data}, nil
		}
		idx++
		if idx >= p.NSlots {
			idx = 0
		}
	}
	// Step bound exhausted: Addr is the slot index to resume from.
	return wire.Result{Status: wire.StatusStepLimit, Addr: memory.Addr(idx)}, nil
}

// chasePayload copies length bytes of the matched node into a response
// buffer (arena-carved under a transport, like execRead's payload).
func (x *Executor) chasePayload(op *wire.Op, node memory.Addr, length uint64) ([]byte, error) {
	data := x.resultAlloc(length)
	if err := x.Space.ReadInto(data, op.RKey, node); err != nil {
		return nil, err
	}
	return data, nil
}

// execScan walks slots [StartIdx, NSlots) in order, packing every
// non-empty entry as [len u32 | entry bytes] into one budget-bounded
// result buffer. Addr returns the next unvisited slot index — equal to
// NSlots when the range completed — so a client resumes by re-issuing
// with StartIdx = cursor. Always StatusOK, even for an empty window.
func (x *Executor) execScan(op *wire.Op, meta *OpMeta) (wire.Result, error) {
	p, _, err := parseProgram(op.Data)
	if err != nil {
		return wire.Result{}, err
	}
	if p.MatchLen != 0 {
		return wire.Result{}, errors.New("prism: scan takes no match operand")
	}
	if p.Stride == 0 || p.NSlots == 0 || p.StartIdx > p.NSlots {
		return wire.Result{}, errors.New("prism: bad scan geometry")
	}
	budget := op.Len
	if budget == 0 || budget > MaxScanBudget {
		return wire.Result{}, errors.New("prism: scan budget out of range")
	}
	// One budget-sized carving, sliced down to the packed length: the scan
	// cannot know its result size before walking, and a second carving per
	// entry would fragment the arena.
	out := x.resultAlloc(budget)
	used := uint64(0)
	idx := p.StartIdx
	for ; idx < p.NSlots; idx++ {
		slot := op.Target + memory.Addr(idx*p.Stride+uint64(p.NextOff))
		bp, err := x.Space.ReadBoundedPtr(op.RKey, slot)
		if err != nil {
			return wire.Result{}, err
		}
		meta.Steps++
		meta.HostAccesses++
		meta.Indirections++
		if bp.Ptr == 0 {
			continue
		}
		need := 4 + bp.Bound
		if used+need > budget {
			if used == 0 {
				return wire.Result{}, errors.New("prism: scan entry exceeds byte budget")
			}
			break // cursor = this idx; the entry goes in the next window
		}
		binary.LittleEndian.PutUint32(out[used:], uint32(bp.Bound))
		if err := x.Space.ReadInto(out[used+4:used+need], op.RKey, bp.Ptr); err != nil {
			return wire.Result{}, err
		}
		meta.HostAccesses++
		used += need
	}
	return wire.Result{Status: wire.StatusOK, Addr: memory.Addr(idx), Data: out[:used]}, nil
}

// ScanEntries iterates the packed [len u32 | bytes] records of a SCAN
// result, calling visit for each entry view (valid only during the
// call). It returns an error on a torn record.
func ScanEntries(data []byte, visit func(entry []byte) error) error {
	for len(data) > 0 {
		if len(data) < 4 {
			return errors.New("prism: torn scan record")
		}
		n := binary.LittleEndian.Uint32(data)
		if uint64(len(data)) < 4+uint64(n) {
			return errors.New("prism: torn scan record")
		}
		if err := visit(data[4 : 4+n]); err != nil {
			return err
		}
		data = data[4+n:]
	}
	return nil
}
