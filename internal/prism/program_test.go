package prism

import (
	"bytes"
	"testing"

	"prism/internal/memory"
	"prism/internal/wire"
)

// buildList lays out a singly-linked list in r: a head pointer cell at
// r.Base, then nodes of [next(8,LE) | key(8,BE) | payload(8)] at 64-byte
// spacing. Returns the node addresses.
func buildList(t *testing.T, x *Executor, r *memory.Region, keys []uint64) []memory.Addr {
	t.Helper()
	nodes := make([]memory.Addr, len(keys))
	for i := range keys {
		nodes[i] = r.Base + memory.Addr(64*(i+1))
	}
	for i, key := range keys {
		node := make([]byte, 24)
		if i+1 < len(keys) {
			PutLE64(node, 0, uint64(nodes[i+1]))
		}
		PutBE64(node, 8, key)
		PutLE64(node, 16, 0xA0A0A0A0A0A0A0A0+key)
		if err := x.Space.Write(r.Key, nodes[i], node); err != nil {
			t.Fatal(err)
		}
	}
	head := uint64(0)
	if len(nodes) > 0 {
		head = uint64(nodes[0])
	}
	if err := x.Space.WriteU64(r.Key, r.Base, head); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func chaseListOp(r *memory.Region, maxSteps uint8, key uint64) wire.Op {
	var match [8]byte
	PutBE64(match[:], 0, key)
	p := Program{Kind: ProgChaseList, MaxSteps: maxSteps, MatchOff: 8, NextOff: 0}
	prog := AppendProgram(nil, &p, match[:])
	return Chase(r.Key, r.Base, prog, wire.CASEq, nil, 24)
}

func TestChaseListFindsDeepNode(t *testing.T) {
	x, r := testEnv(t)
	keys := []uint64{100, 101, 102, 103, 104}
	nodes := buildList(t, x, r, keys)
	for i, key := range keys {
		op := chaseListOp(r, 8, key)
		res, meta := x.Exec(&op)
		mustOK(t, res)
		if res.Addr != nodes[i] {
			t.Fatalf("key %d: matched node %#x, want %#x", key, res.Addr, nodes[i])
		}
		if got := BE64(res.Data, 8); got != key {
			t.Fatalf("key %d: node holds %d", key, got)
		}
		if meta.Steps != i+1 {
			t.Fatalf("key %d: %d steps, want %d", key, meta.Steps, i+1)
		}
	}
}

func TestChaseListNilTerminates(t *testing.T) {
	x, r := testEnv(t)
	buildList(t, x, r, []uint64{100, 101})
	op := chaseListOp(r, 8, 999)
	res, meta := x.Exec(&op)
	if res.Status != wire.StatusNotFound {
		t.Fatalf("status = %v, want NOT_FOUND", res.Status)
	}
	if meta.Steps != 3 {
		// Two real nodes plus the nil-pointer load that ended the walk.
		t.Fatalf("steps = %d, want 3", meta.Steps)
	}
}

func TestChaseListStepLimitResumes(t *testing.T) {
	x, r := testEnv(t)
	keys := []uint64{100, 101, 102, 103, 104, 105}
	nodes := buildList(t, x, r, keys)
	op := chaseListOp(r, 2, 105)
	res, meta := x.Exec(&op)
	if res.Status != wire.StatusStepLimit {
		t.Fatalf("status = %v, want STEP_LIMIT", res.Status)
	}
	if meta.Steps != 2 {
		t.Fatalf("steps = %d", meta.Steps)
	}
	// The cursor is the next-pointer cell of the last visited node:
	// resuming from it must finish the walk with no revisits.
	if res.Addr != nodes[1]+0 {
		t.Fatalf("cursor = %#x, want %#x", res.Addr, nodes[1])
	}
	var match [8]byte
	PutBE64(match[:], 0, 105)
	p := Program{Kind: ProgChaseList, MaxSteps: 8, MatchOff: 8, NextOff: 0}
	resume := Chase(r.Key, res.Addr, AppendProgram(nil, &p, match[:]), wire.CASEq, nil, 24)
	res2, meta2 := x.Exec(&resume)
	mustOK(t, res2)
	if res2.Addr != nodes[5] {
		t.Fatalf("resumed to %#x, want %#x", res2.Addr, nodes[5])
	}
	if meta.Steps+meta2.Steps != len(keys) {
		t.Fatalf("total steps %d, want %d", meta.Steps+meta2.Steps, len(keys))
	}
}

func TestChaseRejectsBadPrograms(t *testing.T) {
	x, r := testEnv(t)
	buildList(t, x, r, []uint64{1})
	var match [8]byte
	bad := []wire.Op{
		// Zero step bound.
		Chase(r.Key, r.Base, AppendProgram(nil, &Program{Kind: ProgChaseList, MatchOff: 8}, match[:]), wire.CASEq, nil, 24),
		// Step bound above the cap.
		Chase(r.Key, r.Base, AppendProgram(nil, &Program{Kind: ProgChaseList, MaxSteps: MaxChaseSteps + 1, MatchOff: 8}, match[:]), wire.CASEq, nil, 24),
		// No match operand.
		Chase(r.Key, r.Base, AppendProgram(nil, &Program{Kind: ProgChaseList, MaxSteps: 4}, nil), wire.CASEq, nil, 24),
		// Unknown kind.
		Chase(r.Key, r.Base, AppendProgram(nil, &Program{Kind: 7, MaxSteps: 4}, match[:]), wire.CASEq, nil, 24),
		// Probe geometry: zero stride.
		Chase(r.Key, r.Base, AppendProgram(nil, &Program{Kind: ProgChaseProbe, MaxSteps: 4, NSlots: 8}, match[:]), wire.CASEq, nil, 24),
		// Mask width mismatch.
		Chase(r.Key, r.Base, AppendProgram(nil, &Program{Kind: ProgChaseList, MaxSteps: 4}, match[:]), wire.CASEq, []byte{0xFF}, 24),
		// Truncated header.
		{Code: wire.OpChase, RKey: r.Key, Target: r.Base, Len: 24, Data: []byte{1, 2, 3}},
	}
	for i, op := range bad {
		res, _ := x.Exec(&op)
		if res.Status != wire.StatusNAKAccess {
			t.Fatalf("bad program %d: status %v, want NAK_ACCESS", i, res.Status)
		}
	}
}

// buildTable lays out a probe table of 32-byte slots: [pad(8) |
// ptr(8,LE) | bound(8,LE) | pad(8)], entries of [key(8,BE) | value].
func buildTable(t *testing.T, x *Executor, r *memory.Region, nSlots int, entries map[int]uint64) {
	t.Helper()
	entryBase := r.Base + memory.Addr(32*nSlots)
	i := 0
	for slot, key := range entries {
		addr := entryBase + memory.Addr(64*i)
		entry := make([]byte, 16)
		PutBE64(entry, 0, key)
		PutLE64(entry, 8, 0xB0B0+key)
		if err := x.Space.Write(r.Key, addr, entry); err != nil {
			t.Fatal(err)
		}
		if err := x.Space.WriteBoundedPtr(r.Key, r.Base+memory.Addr(32*slot+8),
			memory.BoundedPtr{Ptr: addr, Bound: 16}); err != nil {
			t.Fatal(err)
		}
		i++
	}
}

func chaseProbeOp(r *memory.Region, start uint64, nSlots int, maxSteps uint8, key uint64) wire.Op {
	var match [8]byte
	PutBE64(match[:], 0, key)
	p := Program{
		Kind:     ProgChaseProbe,
		MaxSteps: maxSteps,
		MatchOff: 0,
		NextOff:  8,
		Stride:   32,
		StartIdx: start,
		NSlots:   uint64(nSlots),
	}
	return Chase(r.Key, r.Base, AppendProgram(nil, &p, match[:]), wire.CASEq, nil, 64)
}

func TestChaseProbeWalksAndWraps(t *testing.T) {
	x, r := testEnv(t)
	// Slots 6,7,0 occupied; key 42 lives at slot 0, probed from 6.
	buildTable(t, x, r, 8, map[int]uint64{6: 40, 7: 41, 0: 42})
	op := chaseProbeOp(r, 6, 8, 8, 42)
	res, meta := x.Exec(&op)
	mustOK(t, res)
	if got := BE64(res.Data, 0); got != 42 {
		t.Fatalf("matched entry key %d", got)
	}
	if meta.Steps != 3 {
		t.Fatalf("steps = %d, want 3 (6→7→wrap→0)", meta.Steps)
	}
	if len(res.Data) != 16 {
		t.Fatalf("payload %d bytes, want bound-clamped 16", len(res.Data))
	}
}

func TestChaseProbeEmptySlotIsNotFound(t *testing.T) {
	x, r := testEnv(t)
	buildTable(t, x, r, 8, map[int]uint64{2: 7})
	op := chaseProbeOp(r, 2, 8, 8, 99)
	res, _ := x.Exec(&op)
	if res.Status != wire.StatusNotFound {
		t.Fatalf("status = %v, want NOT_FOUND", res.Status)
	}
	if res.Addr != 3 {
		t.Fatalf("cursor = %d, want the empty slot index 3", res.Addr)
	}
}

func TestChaseProbeStepLimitCursor(t *testing.T) {
	x, r := testEnv(t)
	buildTable(t, x, r, 8, map[int]uint64{0: 10, 1: 11, 2: 12, 3: 13})
	op := chaseProbeOp(r, 0, 8, 2, 13)
	res, _ := x.Exec(&op)
	if res.Status != wire.StatusStepLimit {
		t.Fatalf("status = %v, want STEP_LIMIT", res.Status)
	}
	if res.Addr != 2 {
		t.Fatalf("cursor = %d, want 2", res.Addr)
	}
	// Resume and find it.
	op2 := chaseProbeOp(r, uint64(res.Addr), 8, 8, 13)
	res2, _ := x.Exec(&op2)
	mustOK(t, res2)
	if got := BE64(res2.Data, 0); got != 13 {
		t.Fatalf("resumed to key %d", got)
	}
}

func scanOp(r *memory.Region, start, nSlots uint64, budget uint64) wire.Op {
	p := Program{NextOff: 8, Stride: 32, StartIdx: start, NSlots: nSlots}
	return Scan(r.Key, r.Base, AppendProgram(nil, &p, nil), budget)
}

func TestScanPacksNonEmptySlots(t *testing.T) {
	x, r := testEnv(t)
	buildTable(t, x, r, 8, map[int]uint64{1: 21, 3: 23, 6: 26})
	op := scanOp(r, 0, 8, 4096)
	res, meta := x.Exec(&op)
	mustOK(t, res)
	if res.Addr != 8 {
		t.Fatalf("cursor = %d, want 8 (range complete)", res.Addr)
	}
	if meta.Steps != 8 {
		t.Fatalf("steps = %d, want 8 slots visited", meta.Steps)
	}
	var keys []uint64
	if err := ScanEntries(res.Data, func(e []byte) error {
		keys = append(keys, BE64(e, 0))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{21, 23, 26}
	if len(keys) != len(want) {
		t.Fatalf("scanned keys %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scanned keys %v, want %v (address order)", keys, want)
		}
	}
}

func TestScanBudgetCursorResumes(t *testing.T) {
	x, r := testEnv(t)
	buildTable(t, x, r, 8, map[int]uint64{0: 20, 1: 21, 2: 22, 3: 23})
	// Each packed record is 4+16 bytes; a 45-byte budget fits two.
	var keys []uint64
	cursor := uint64(0)
	rounds := 0
	for cursor < 8 {
		op := scanOp(r, cursor, 8, 45)
		res, _ := x.Exec(&op)
		mustOK(t, res)
		if err := ScanEntries(res.Data, func(e []byte) error {
			keys = append(keys, BE64(e, 0))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if uint64(res.Addr) <= cursor {
			t.Fatalf("cursor did not advance: %d -> %d", cursor, res.Addr)
		}
		cursor = uint64(res.Addr)
		rounds++
	}
	if rounds != 2 {
		// Two records per window; the empty tail costs no budget, so the
		// second window runs through to the range end.
		t.Fatalf("windows = %d, want 2", rounds)
	}
	want := []uint64{20, 21, 22, 23}
	if len(keys) != len(want) {
		t.Fatalf("scanned %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scanned %v, want %v", keys, want)
		}
	}
}

func TestScanRejectsBadPrograms(t *testing.T) {
	x, r := testEnv(t)
	buildTable(t, x, r, 8, map[int]uint64{0: 20})
	var match [8]byte
	bad := []wire.Op{
		// Match operand on a scan.
		Scan(r.Key, r.Base, AppendProgram(nil, &Program{NextOff: 8, Stride: 32, NSlots: 8}, match[:]), 4096),
		// Zero budget.
		Scan(r.Key, r.Base, AppendProgram(nil, &Program{NextOff: 8, Stride: 32, NSlots: 8}, nil), 0),
		// Budget above the cap.
		Scan(r.Key, r.Base, AppendProgram(nil, &Program{NextOff: 8, Stride: 32, NSlots: 8}, nil), MaxScanBudget+1),
		// First entry exceeds the budget.
		Scan(r.Key, r.Base, AppendProgram(nil, &Program{NextOff: 8, Stride: 32, NSlots: 8}, nil), 10),
		// Zero stride.
		Scan(r.Key, r.Base, AppendProgram(nil, &Program{NextOff: 8, NSlots: 8}, nil), 4096),
	}
	for i, op := range bad {
		res, _ := x.Exec(&op)
		if res.Status != wire.StatusNAKAccess {
			t.Fatalf("bad scan %d: status %v, want NAK_ACCESS", i, res.Status)
		}
	}
}

func TestProgramRoundtrip(t *testing.T) {
	p := Program{Kind: ProgChaseProbe, MaxSteps: 17, MatchOff: 8, NextOff: 16,
		Stride: 48, StartIdx: 5, NSlots: 1024}
	match := []byte{1, 2, 3, 4}
	enc := AppendProgram(nil, &p, match)
	if len(enc) != ProgHeaderLen+len(match) {
		t.Fatalf("encoded %d bytes", len(enc))
	}
	got, m, err := parseProgram(enc)
	if err != nil {
		t.Fatal(err)
	}
	p.MatchLen = uint16(len(match)) // AppendProgram derives it
	if got != p {
		t.Fatalf("roundtrip %+v, want %+v", got, p)
	}
	if !bytes.Equal(m, match) {
		t.Fatalf("match %v", m)
	}
}

// A CHASE on classic hardware RDMA must be refused, like every other
// PRISM-only op: programs are a NIC capability, not a wire trick.
func TestChaseIsPRISMOnly(t *testing.T) {
	x, r := testEnv(t)
	buildList(t, x, r, []uint64{1})
	op := chaseListOp(r, 4, 1)
	_, meta := x.Exec(&op)
	if !meta.PRISMOnly {
		t.Fatal("CHASE not flagged PRISM-only")
	}
	sc := Scan(r.Key, r.Base, AppendProgram(nil, &Program{NextOff: 8, Stride: 32, NSlots: 8}, nil), 64)
	_, meta = x.Exec(&sc)
	if !meta.PRISMOnly {
		t.Fatal("SCAN not flagged PRISM-only")
	}
}
