// Package prism implements the semantics of the PRISM primitives (§3,
// Table 1): indirect reads and writes with bounded pointers, free-list
// allocation, the enhanced masked/arithmetic compare-and-swap, and the
// chaining rules (conditional execution and output redirection). The
// Executor applies one operation to a server's memory; the transport layer
// (package rdma) sequences chains, applies deployment cost models, and
// moves bytes.
//
// Design notes kept from the paper:
//   - Each primitive is atomic with respect to other primitives; a chain
//     is NOT atomic as a whole — other clients' operations may interleave
//     between its steps (§3.3, §3.5).
//   - Dereferencing an indirect CAS argument is not guaranteed atomic with
//     the CAS itself (§3.3).
//   - Indirect operations reuse RDMA's protection model: both the pointer
//     and its target must lie in regions registered under the same rkey
//     (§3.1).
//   - Enhanced CAS compares the masked operands as big-endian unsigned
//     integers (network byte order, as Mellanox extended atomics do), so
//     multi-field layouts put the most significant field first; the
//     applications' tag|addr layouts rely on this.
package prism

import (
	"errors"

	"prism/internal/alloc"
	"prism/internal/memory"
	"prism/internal/model"
	"prism/internal/wire"
)

// Executor applies PRISM operations to one server's memory.
//
// Concurrency: the dispatch table is immutable package state, so any
// number of executors run concurrently — but one Executor is
// single-goroutine (casScratch and ReadAlloc are per-call scratch), and
// the Space and free lists it touches are not goroutine-safe. Servers
// with concurrent connections give each connection its own Executor
// over the shared Space/FreeLists and hold Space.Guard across each
// ExecInto call: per-primitive locking is exactly the paper's atomicity
// contract (each primitive atomic, chains not atomic as a whole — §3.3,
// §3.5). The simulator executes every op for a server on that server's
// event domain and needs neither.
type Executor struct {
	Space     *memory.Space
	FreeLists map[uint32]*alloc.FreeList

	// ReadAlloc, when set, returns the n-byte destination buffer for READ
	// payload copies — and for every other result payload that rides the
	// response (CAS/FETCH_ADD previous values). The transport installs it
	// around Exec to carve response payloads out of a connection-owned
	// arena instead of the heap; the buffer's contents are overwritten in
	// full.
	ReadAlloc func(n uint64) []byte

	// casScratch is the executor-owned staging buffer for the swapped-in
	// CAS value; it is fully consumed within one ExecInto call.
	casScratch [wire.MaxCASBytes]byte
}

// NewExecutor returns an executor over space with no free lists.
func NewExecutor(space *memory.Space) *Executor {
	return &Executor{Space: space, FreeLists: make(map[uint32]*alloc.FreeList)}
}

// OpMeta describes an executed op for deployment cost accounting.
type OpMeta struct {
	Class model.OpClass
	// HostAccesses counts distinct host-memory accesses the op performed
	// (pointer fetches, payload reads/writes, atomics). Drives the
	// BlueField cost model.
	HostAccesses int
	// Indirections counts pointer dereferences beyond a direct access
	// (target indirection, data indirection, redirects to host memory).
	// Drives the projected-hardware PCIe cost model.
	Indirections int
	// PRISMOnly reports whether the op needs PRISM extensions (any flag,
	// enhanced CAS features, or ALLOCATE) — i.e. a stock RDMA NIC would
	// reject it.
	PRISMOnly bool
	// RedirectUsed reports that the op wrote its output to a redirect
	// target (costed differently when temp buffers are in host memory).
	RedirectUsed bool
	// Steps counts the loop iterations a verb program (CHASE/SCAN)
	// executed. Zero for every non-program op; drives the per-step
	// program-engine cost and the steps_executed telemetry.
	Steps int
}

// resolveTarget applies target indirection and bound clamping (§3.1),
// returning the effective address and length.
func (x *Executor) resolveTarget(op *wire.Op, length uint64, meta *OpMeta) (memory.Addr, uint64, error) {
	addr := op.Target
	switch {
	case op.Flags.Has(wire.FlagBounded):
		// Target is (or points to) a <ptr,bound> struct.
		bp, err := x.Space.ReadBoundedPtr(op.RKey, addr)
		if err != nil {
			return 0, 0, err
		}
		meta.HostAccesses++
		meta.Indirections++
		if bp.Ptr == 0 {
			return 0, 0, memory.ErrNullPointer
		}
		if bp.Bound < length {
			length = bp.Bound
		}
		return bp.Ptr, length, nil
	case op.Flags.Has(wire.FlagTargetIndirect):
		p, err := x.Space.ReadU64(op.RKey, addr)
		if err != nil {
			return 0, 0, err
		}
		meta.HostAccesses++
		meta.Indirections++
		if p == 0 {
			return 0, 0, memory.ErrNullPointer
		}
		return memory.Addr(p), length, nil
	default:
		return addr, length, nil
	}
}

// resolveData applies data indirection: when set, the wire Data field is an
// 8-byte little-endian server pointer and the true source bytes (of size
// length) are loaded from it.
func (x *Executor) resolveData(op *wire.Op, length uint64, meta *OpMeta) ([]byte, error) {
	if !op.Flags.Has(wire.FlagDataIndirect) {
		return op.Data, nil
	}
	if len(op.Data) != 8 {
		return nil, errors.New("prism: indirect data argument must be an 8-byte pointer")
	}
	p := memory.Addr(leU64(op.Data))
	// Zero-copy: the source bytes are consumed within this op (written or
	// compared immediately), never retained.
	src, err := x.Space.Peek(op.RKey, p, length)
	if err != nil {
		return nil, err
	}
	meta.HostAccesses++
	meta.Indirections++
	return src, nil
}

// execEntry is one opcode's dispatch-table row: the semantics function,
// the cost class for deployment accounting, and whether the opcode itself
// (independent of flags) requires PRISM extensions.
type execEntry struct {
	fn        func(*Executor, *wire.Op, *OpMeta) (wire.Result, error)
	class     model.OpClass
	prismOnly bool
}

// execTable dispatches opcodes without a per-op switch. Unlisted opcodes
// (OpInvalid, OpSend — two-sided dispatch is the transport's job) resolve
// to StatusUnsupported.
var execTable = [...]execEntry{
	wire.OpRead:       {fn: (*Executor).execRead, class: model.OpRead},
	wire.OpWrite:      {fn: (*Executor).execWrite, class: model.OpWrite},
	wire.OpCAS:        {fn: (*Executor).execCAS, class: model.OpCAS},
	wire.OpClassicCAS: {fn: (*Executor).execClassicCAS, class: model.OpCAS},
	wire.OpFetchAdd:   {fn: (*Executor).execFetchAdd, class: model.OpCAS},
	wire.OpAllocate:   {fn: (*Executor).execAllocate, class: model.OpAllocate, prismOnly: true},
	wire.OpChase:      {fn: (*Executor).execChase, class: model.OpProgram, prismOnly: true},
	wire.OpScan:       {fn: (*Executor).execScan, class: model.OpProgram, prismOnly: true},
}

// Exec applies op to the server's memory, returning the wire result and
// cost metadata. Conditional-flag handling (skipping) is the transport's
// job; Exec always executes.
func (x *Executor) Exec(op *wire.Op) (wire.Result, OpMeta) {
	var res wire.Result
	var meta OpMeta
	x.ExecInto(op, &res, &meta)
	return res, meta
}

// ExecInto is the allocation-free form of Exec: the result is resolved
// directly into *res (typically a response's results slot) and the cost
// metadata into *meta, both fully overwritten.
func (x *Executor) ExecInto(op *wire.Op, res *wire.Result, meta *OpMeta) {
	*meta = OpMeta{PRISMOnly: op.Flags != 0}
	if int(op.Code) >= len(execTable) || execTable[op.Code].fn == nil {
		*res = wire.Result{Status: wire.StatusUnsupported}
		return
	}
	ent := &execTable[op.Code]
	meta.Class = ent.class
	if ent.prismOnly {
		meta.PRISMOnly = true
	}
	r, err := ent.fn(x, op, meta)
	if err != nil {
		if errors.Is(err, alloc.ErrEmpty) {
			*res = wire.Result{Status: wire.StatusRNR}
			return
		}
		*res = wire.Result{Status: wire.StatusNAKAccess}
		return
	}
	*res = r
}

// resultAlloc returns an n-byte buffer for a result payload that rides
// the response: arena-carved when the transport installed ReadAlloc,
// heap-allocated otherwise.
func (x *Executor) resultAlloc(n uint64) []byte {
	if x.ReadAlloc != nil {
		return x.ReadAlloc(n)
	}
	return make([]byte, n)
}

func (x *Executor) execRead(op *wire.Op, meta *OpMeta) (wire.Result, error) {
	addr, length, err := x.resolveTarget(op, op.Len, meta)
	if err != nil {
		return wire.Result{}, err
	}
	if op.Flags.Has(wire.FlagRedirect) {
		// Redirected reads copy region-to-region on the spot; the bytes are
		// not retained, so a zero-copy view suffices (copy is memmove-safe
		// even for overlapping source and target).
		data, err := x.Space.Peek(op.RKey, addr, length)
		if err != nil {
			return wire.Result{}, err
		}
		meta.HostAccesses++
		if err := x.Space.Write(op.RKey, op.RedirectTo, data); err != nil {
			return wire.Result{}, err
		}
		meta.HostAccesses++
		meta.RedirectUsed = true
		return wire.Result{Status: wire.StatusOK}, nil
	}
	// The result rides the response message until delivery, so it must be a
	// stable copy, not a view.
	var data []byte
	if x.ReadAlloc != nil {
		data = x.ReadAlloc(length)
		if err := x.Space.ReadInto(data, op.RKey, addr); err != nil {
			return wire.Result{}, err
		}
	} else {
		var err error
		data, err = x.Space.Read(op.RKey, addr, length)
		if err != nil {
			return wire.Result{}, err
		}
	}
	meta.HostAccesses++
	return wire.Result{Status: wire.StatusOK, Data: data}, nil
}

func (x *Executor) execWrite(op *wire.Op, meta *OpMeta) (wire.Result, error) {
	length := uint64(len(op.Data))
	if op.Flags.Has(wire.FlagDataIndirect) {
		length = op.Len
	}
	addr, length, err := x.resolveTarget(op, length, meta)
	if err != nil {
		return wire.Result{}, err
	}
	src, err := x.resolveData(op, length, meta)
	if err != nil {
		return wire.Result{}, err
	}
	if uint64(len(src)) > length {
		src = src[:length]
	}
	if err := x.Space.Write(op.RKey, addr, src); err != nil {
		return wire.Result{}, err
	}
	meta.HostAccesses++
	return wire.Result{Status: wire.StatusOK}, nil
}

func (x *Executor) execAllocate(op *wire.Op, meta *OpMeta) (wire.Result, error) {
	fl, ok := x.FreeLists[op.FreeList]
	if !ok {
		return wire.Result{}, errors.New("prism: no such free list")
	}
	if uint64(len(op.Data)) > fl.BufSize {
		return wire.Result{}, errors.New("prism: data exceeds free-list buffer size")
	}
	buf, err := fl.Pop()
	if err != nil {
		return wire.Result{}, err // alloc.ErrEmpty -> RNR
	}
	if err := x.Space.Write(fl.Key, buf, op.Data); err != nil {
		// Registration bug server-side; put the buffer back.
		fl.Post(buf)
		return wire.Result{}, err
	}
	meta.HostAccesses++
	if op.Flags.Has(wire.FlagRedirect) {
		if err := x.Space.WriteU64(op.RKey, op.RedirectTo, uint64(buf)); err != nil {
			fl.Post(buf)
			return wire.Result{}, err
		}
		meta.HostAccesses++
		meta.RedirectUsed = true
		return wire.Result{Status: wire.StatusOK, Addr: buf}, nil
	}
	return wire.Result{Status: wire.StatusOK, Addr: buf}, nil
}

func (x *Executor) execCAS(op *wire.Op, meta *OpMeta) (wire.Result, error) {
	width := uint64(len(op.CompareMask))
	if width == 0 {
		width = uint64(len(op.Data))
	}
	if width == 0 || width > wire.MaxCASBytes {
		return wire.Result{}, errors.New("prism: bad CAS width")
	}
	if len(op.SwapMask) != 0 && uint64(len(op.SwapMask)) != width {
		return wire.Result{}, errors.New("prism: mask widths differ")
	}
	// Classic-RDMA subset detection: 8-byte, equality, full-or-absent
	// masks, no flags. Anything else needs PRISM.
	if op.Mode != wire.CASEq || width != 8 || !maskFull(op.CompareMask) || !maskFull(op.SwapMask) {
		meta.PRISMOnly = true
	}

	addr, _, err := x.resolveTarget(op, width, meta)
	if err != nil {
		return wire.Result{}, err
	}
	data, err := x.resolveData(op, width, meta)
	if err != nil {
		return wire.Result{}, err
	}
	if uint64(len(data)) != width {
		return wire.Result{}, errors.New("prism: CAS data width mismatch")
	}
	cur, err := x.Space.Peek(op.RKey, addr, width)
	if err != nil {
		return wire.Result{}, err
	}
	meta.HostAccesses++ // the atomic read-modify-write

	// prev is retained (it rides the response), so it must be a copy taken
	// before the swap mutates the cell cur aliases.
	prev := x.resultAlloc(width)
	copy(prev, cur)

	ok := compareMasked(op.Mode, cur, data, op.CompareMask)
	if !ok {
		return wire.Result{Status: wire.StatusCASFailed, Data: prev}, nil
	}
	next := x.casScratch[:width]
	swapMaskedInto(next, cur, data, op.SwapMask)
	if err := x.Space.Write(op.RKey, addr, next); err != nil {
		return wire.Result{}, err
	}
	return wire.Result{Status: wire.StatusOK, Data: prev}, nil
}

// execClassicCAS is the legacy RDMA atomic: 8 bytes, separate expect and
// desired operands carried as Data = expect(8)|desired(8), little-endian
// (the legacy verb predates the extended-atomics byte-order conventions).
func (x *Executor) execClassicCAS(op *wire.Op, meta *OpMeta) (wire.Result, error) {
	if len(op.Data) != 16 {
		return wire.Result{}, errors.New("prism: classic CAS needs expect|desired operands")
	}
	addr, _, err := x.resolveTarget(op, 8, meta)
	if err != nil {
		return wire.Result{}, err
	}
	cur, err := x.Space.ReadU64(op.RKey, addr)
	if err != nil {
		return wire.Result{}, err
	}
	meta.HostAccesses++
	prev := x.resultAlloc(8)
	putLEU64(prev, cur)
	if cur != leU64(op.Data[:8]) {
		return wire.Result{Status: wire.StatusCASFailed, Data: prev}, nil
	}
	if err := x.Space.WriteU64(op.RKey, addr, leU64(op.Data[8:])); err != nil {
		return wire.Result{}, err
	}
	return wire.Result{Status: wire.StatusOK, Data: prev}, nil
}

func (x *Executor) execFetchAdd(op *wire.Op, meta *OpMeta) (wire.Result, error) {
	if len(op.Data) != 8 {
		return wire.Result{}, errors.New("prism: FETCH_ADD needs an 8-byte addend")
	}
	addr, _, err := x.resolveTarget(op, 8, meta)
	if err != nil {
		return wire.Result{}, err
	}
	cur, err := x.Space.ReadU64(op.RKey, addr)
	if err != nil {
		return wire.Result{}, err
	}
	meta.HostAccesses++
	if err := x.Space.WriteU64(op.RKey, addr, cur+leU64(op.Data)); err != nil {
		return wire.Result{}, err
	}
	prev := x.resultAlloc(8)
	putLEU64(prev, cur)
	return wire.Result{Status: wire.StatusOK, Data: prev}, nil
}

// compareMasked evaluates (cur & mask) mode (data & mask), treating the
// masked byte strings as big-endian unsigned integers. A nil mask means
// all bits. It compares masked bytes in place, without allocating.
func compareMasked(mode wire.CASMode, cur, data, mask []byte) bool {
	// c compares data vs cur: the CAS semantics compare the supplied data
	// against the current value — CASGt succeeds when data > *target.
	c := 0
	for i := range data {
		m := byte(0xFF)
		if mask != nil {
			m = mask[i]
		}
		d, u := data[i]&m, cur[i]&m
		if d != u {
			if d > u {
				c = 1
			} else {
				c = -1
			}
			break
		}
	}
	switch mode {
	case wire.CASEq:
		return c == 0
	case wire.CASGt:
		return c > 0
	case wire.CASLt:
		return c < 0
	default:
		return false
	}
}

// swapMaskedInto writes (cur & ~mask) | (data & mask) to out. A nil mask
// means all bits (full swap).
func swapMaskedInto(out, cur, data, mask []byte) {
	for i := range out {
		m := byte(0xFF)
		if mask != nil {
			m = mask[i]
		}
		out[i] = cur[i]&^m | data[i]&m
	}
}

func maskFull(mask []byte) bool {
	for _, b := range mask {
		if b != 0xFF {
			return false
		}
	}
	return true
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putLEU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
