package prism

import (
	"encoding/binary"

	"prism/internal/memory"
	"prism/internal/wire"
)

// Op constructors: thin, readable builders for the wire operations used by
// the applications. They keep flag/byte-layout details in one place.

// Read builds a direct READ of length bytes at addr.
func Read(key memory.RKey, addr memory.Addr, length uint64) wire.Op {
	return wire.Op{Code: wire.OpRead, RKey: key, Target: addr, Len: length}
}

// ReadIndirect builds a READ through the 8-byte pointer stored at addr.
func ReadIndirect(key memory.RKey, addr memory.Addr, length uint64) wire.Op {
	op := Read(key, addr, length)
	op.Flags |= wire.FlagTargetIndirect
	return op
}

// ReadBounded builds a READ through the <ptr,bound> struct stored at addr,
// returning at most min(length, bound) bytes (§3.1 variable-length reads).
func ReadBounded(key memory.RKey, addr memory.Addr, length uint64) wire.Op {
	op := Read(key, addr, length)
	op.Flags |= wire.FlagBounded
	return op
}

// Write builds a direct WRITE of data to addr.
func Write(key memory.RKey, addr memory.Addr, data []byte) wire.Op {
	return wire.Op{Code: wire.OpWrite, RKey: key, Target: addr, Data: data}
}

// WriteIndirect builds a WRITE through the 8-byte pointer stored at addr.
func WriteIndirect(key memory.RKey, addr memory.Addr, data []byte) wire.Op {
	op := Write(key, addr, data)
	op.Flags |= wire.FlagTargetIndirect
	return op
}

// Allocate builds an ALLOCATE of data from the given free list (§3.2).
func Allocate(freeList uint32, data []byte) wire.Op {
	return wire.Op{Code: wire.OpAllocate, FreeList: freeList, Data: data}
}

// CAS builds an enhanced compare-and-swap (§3.3) over width len(data)
// bytes. Nil masks mean "all bits". Operands are compared as big-endian
// unsigned integers.
func CAS(key memory.RKey, addr memory.Addr, mode wire.CASMode, data, compareMask, swapMask []byte) wire.Op {
	return wire.Op{
		Code:        wire.OpCAS,
		Mode:        mode,
		RKey:        key,
		Target:      addr,
		Data:        data,
		CompareMask: compareMask,
		SwapMask:    swapMask,
	}
}

// CASIndirectData marks the CAS data argument as a server-side pointer:
// the true operand is loaded from dataPtr at execution time (§3.3). width
// is the operand width, carried by the masks.
func CASIndirectData(key memory.RKey, addr memory.Addr, mode wire.CASMode, dataPtr memory.Addr, compareMask, swapMask []byte) wire.Op {
	var ptr [8]byte
	binary.LittleEndian.PutUint64(ptr[:], uint64(dataPtr))
	op := CAS(key, addr, mode, ptr[:], compareMask, swapMask)
	op.Flags |= wire.FlagDataIndirect
	return op
}

// CASIndirectDataBuf is CASIndirectData with caller-provided scratch for
// the 8-byte pointer operand, for zero-allocation hot paths. The scratch
// must stay untouched until the response arrives.
func CASIndirectDataBuf(buf *[8]byte, key memory.RKey, addr memory.Addr, mode wire.CASMode, dataPtr memory.Addr, compareMask, swapMask []byte) wire.Op {
	binary.LittleEndian.PutUint64(buf[:], uint64(dataPtr))
	op := CAS(key, addr, mode, buf[:], compareMask, swapMask)
	op.Flags |= wire.FlagDataIndirect
	return op
}

// ClassicCAS builds the legacy RDMA 8-byte CAS with separate expect and
// desired operands (little-endian, as the legacy verb). Available on stock
// RDMA NICs; the baselines' lock protocols use it.
func ClassicCAS(key memory.RKey, addr memory.Addr, expect, desired uint64) wire.Op {
	data := make([]byte, 16)
	binary.LittleEndian.PutUint64(data[:8], expect)
	binary.LittleEndian.PutUint64(data[8:], desired)
	return wire.Op{Code: wire.OpClassicCAS, RKey: key, Target: addr, Data: data}
}

// ClassicCASBuf is ClassicCAS with caller-provided scratch for the
// 16-byte operand pair, for zero-allocation hot paths. The scratch must
// stay untouched until the response arrives.
func ClassicCASBuf(buf *[16]byte, key memory.RKey, addr memory.Addr, expect, desired uint64) wire.Op {
	binary.LittleEndian.PutUint64(buf[:8], expect)
	binary.LittleEndian.PutUint64(buf[8:], desired)
	return wire.Op{Code: wire.OpClassicCAS, RKey: key, Target: addr, Data: buf[:]}
}

// Send builds a two-sided SEND carrying payload (dispatched to the
// server's RPC handler).
func Send(payload []byte) wire.Op {
	return wire.Op{Code: wire.OpSend, Data: payload}
}

// Conditional marks op to execute only if the previous op in the chain
// succeeded (§3.4).
func Conditional(op wire.Op) wire.Op {
	op.Flags |= wire.FlagConditional
	return op
}

// RedirectTo routes op's output (READ data or ALLOCATE address) to a
// server-side address instead of the response (§3.4). The redirect target
// is validated under op.RKey — for ops that otherwise carry no rkey (e.g.
// ALLOCATE), set key to the region protecting the redirect target, which
// for chains is usually the connection's temporary buffer.
func RedirectTo(op wire.Op, key memory.RKey, addr memory.Addr) wire.Op {
	op.Flags |= wire.FlagRedirect
	op.RKey = key
	op.RedirectTo = addr
	return op
}

// Mask builders for multi-field CAS layouts.

// FieldMask returns a width-byte mask with 0xFF over [off, off+n).
func FieldMask(width, off, n int) []byte {
	m := make([]byte, width)
	for i := off; i < off+n; i++ {
		m[i] = 0xFF
	}
	return m
}

// FullMask returns a width-byte all-ones mask.
func FullMask(width int) []byte { return FieldMask(width, 0, width) }

// Byte-order conventions (documented once, relied on everywhere):
//
//   - Fields that participate in CAS *comparison* (tags, timestamps) are
//     stored big-endian, because the enhanced CAS compares masked operands
//     as big-endian unsigned integers (network order, like Mellanox
//     extended atomics).
//   - Pointer fields (addresses dereferenced by indirect operations, and
//     the output of ALLOCATE redirects) are little-endian, the hardware
//     pointer format. CAS may still *swap* them — a swap moves bytes
//     verbatim, so byte order is irrelevant as long as the compare mask
//     excludes pointer fields.

// PutLE64 stores v little-endian at b[off:off+8] (pointer fields).
func PutLE64(b []byte, off int, v uint64) {
	binary.LittleEndian.PutUint64(b[off:off+8], v)
}

// LE64 loads the little-endian u64 at b[off:off+8] (pointer fields).
func LE64(b []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(b[off : off+8])
}

// Big-endian field helpers: enhanced-CAS operands compare as big-endian
// unsigned integers, so multi-field structures store fields big-endian
// with the most significant field first.

// PutBE64 stores v big-endian at b[off:off+8].
func PutBE64(b []byte, off int, v uint64) {
	binary.BigEndian.PutUint64(b[off:off+8], v)
}

// BE64 loads the big-endian u64 at b[off:off+8].
func BE64(b []byte, off int) uint64 {
	return binary.BigEndian.Uint64(b[off : off+8])
}
