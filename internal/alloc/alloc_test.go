package alloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"prism/internal/memory"
)

func TestFreeListFIFO(t *testing.T) {
	f := NewFreeList(1, 512, 7)
	for _, a := range []memory.Addr{0x1000, 0x2000, 0x3000} {
		f.Post(a)
	}
	for _, want := range []memory.Addr{0x1000, 0x2000, 0x3000} {
		got, err := f.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("popped %#x, want %#x", got, want)
		}
	}
	if _, err := f.Pop(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty pop: %v", err)
	}
}

func TestRecycleNotImmediatelyAvailable(t *testing.T) {
	f := NewFreeList(1, 512, 7)
	f.Recycle(0x1000)
	if f.Len() != 0 {
		t.Fatal("recycled buffer available before quiesce")
	}
	if f.Pending() != 1 {
		t.Fatalf("pending = %d", f.Pending())
	}
	f.repostAll()
	if f.Len() != 1 {
		t.Fatal("repostAll did not post")
	}
}

func TestQuiescerImmediateWhenIdle(t *testing.T) {
	q := NewQuiescer()
	ran := false
	q.AfterQuiesce(func() { ran = true })
	if !ran {
		t.Fatal("idle quiescer delayed flush")
	}
}

func TestQuiescerWaitsForInFlight(t *testing.T) {
	q := NewQuiescer()
	a := q.OpStart()
	b := q.OpStart()
	ran := false
	q.AfterQuiesce(func() { ran = true })

	// A later op must not delay the flush.
	c := q.OpStart()

	q.OpEnd(a)
	if ran {
		t.Fatal("flush ran with op b still in flight")
	}
	q.OpEnd(b)
	if !ran {
		t.Fatal("flush did not run after pre-flush ops drained")
	}
	q.OpEnd(c)
}

func TestQuiescerLaterOpDoesNotBlock(t *testing.T) {
	q := NewQuiescer()
	a := q.OpStart()
	ran := false
	q.AfterQuiesce(func() { ran = true })
	q.OpStart() // never ends
	q.OpEnd(a)
	if !ran {
		t.Fatal("flush blocked by op that started after it")
	}
}

func TestQuiescerMultipleWaitsOrdered(t *testing.T) {
	q := NewQuiescer()
	a := q.OpStart()
	var order []int
	q.AfterQuiesce(func() { order = append(order, 1) })
	b := q.OpStart()
	q.AfterQuiesce(func() { order = append(order, 2) })
	q.OpEnd(a)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after first drain: %v", order)
	}
	q.OpEnd(b)
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("after second drain: %v", order)
	}
}

func TestQuiescerDoubleEndPanics(t *testing.T) {
	q := NewQuiescer()
	id := q.OpStart()
	q.OpEnd(id)
	defer func() {
		if recover() == nil {
			t.Fatal("double OpEnd did not panic")
		}
	}()
	q.OpEnd(id)
}

func TestSizeClasses(t *testing.T) {
	cs := SizeClasses(64, 4096)
	want := []uint64{64, 128, 256, 512, 1024, 2048, 4096}
	if len(cs) != len(want) {
		t.Fatalf("classes %v", cs)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("classes %v, want %v", cs, want)
		}
	}
	// Non-power-of-two bounds round sensibly.
	cs = SizeClasses(100, 1000)
	want = []uint64{128, 256, 512, 1024}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("classes %v, want %v", cs, want)
		}
	}
}

func TestClassFor(t *testing.T) {
	cs := SizeClasses(64, 4096)
	for _, tc := range []struct {
		n    uint64
		want uint64
	}{{1, 64}, {64, 64}, {65, 128}, {512, 512}, {513, 1024}, {4096, 4096}} {
		i, err := ClassFor(cs, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if cs[i] != tc.want {
			t.Fatalf("ClassFor(%d) -> %d, want %d", tc.n, cs[i], tc.want)
		}
	}
	if _, err := ClassFor(cs, 4097); err == nil {
		t.Fatal("oversized request accepted")
	}
}

// Property: power-of-two classing wastes less than 2x space.
func TestQuickSizeClassOverheadBound(t *testing.T) {
	cs := SizeClasses(1, 1<<20)
	f := func(n uint32) bool {
		sz := uint64(n)%(1<<20) + 1
		i, err := ClassFor(cs, sz)
		if err != nil {
			return false
		}
		return cs[i] >= sz && cs[i] < 2*sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the quiescer never runs a flush while an older op is in
// flight, and always runs it once those drain — modeled against a naive
// reference implementation over a random schedule.
func TestQuickQuiescerSafety(t *testing.T) {
	f := func(script []byte) bool {
		q := NewQuiescer()
		type flush struct {
			horizon uint64 // ids below this started before the flush
			ran     *bool
		}
		var live []uint64
		var nextID uint64
		var flushes []flush
		for _, b := range script {
			switch b % 3 {
			case 0:
				live = append(live, q.OpStart())
				nextID++
			case 1:
				if len(live) > 0 {
					i := int(b/3) % len(live)
					q.OpEnd(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 2:
				ran := new(bool)
				q.AfterQuiesce(func() { *ran = true })
				flushes = append(flushes, flush{horizon: nextID, ran: ran})
			}
			// Invariant: a flush has run iff no op live at flush time is
			// still live. An op is "live at flush time" exactly when its id
			// is >= the smallest live id recorded then and it started
			// before the flush — since ids are issued in order, checking
			// ids below the flush's OpStart horizon suffices; the recorded
			// barrier is the min live id at flush time, so any still-live
			// op with id >= barrier that predates the flush blocks it.
			for _, fl := range flushes {
				blocked := false
				for _, id := range live {
					if id < fl.horizon {
						blocked = true
					}
				}
				if blocked && *fl.ran {
					return false // ran too early
				}
				if !blocked && !*fl.ran {
					return false // never ran after drain
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}
