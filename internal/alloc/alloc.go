// Package alloc implements PRISM's free-list buffer allocation (§3.2).
//
// A server-side process carves buffers out of a registered region and
// posts them to a free list, which the paper represents as an RDMA queue
// pair. The NIC data plane pops the head buffer to satisfy an ALLOCATE.
// Reposting a recycled buffer is only safe once every NIC operation that
// was in flight when the buffer was retired has completed; the Quiescer
// type implements that synchronization (the paper notes NICs already have
// an equivalent reader/writer mechanism for CAS processing).
package alloc

import (
	"errors"
	"fmt"

	"prism/internal/memory"
)

// ErrEmpty is returned when an ALLOCATE finds the free list empty; the NIC
// surfaces it to the client as an RNR NAK.
var ErrEmpty = errors.New("alloc: free list empty")

// FreeList is a queue of equal-sized registered buffers.
type FreeList struct {
	ID      uint32
	BufSize uint64
	Key     memory.RKey
	// queue of buffer base addresses; head at index 0.
	bufs []memory.Addr
	// pending holds buffers awaiting quiesce before repost.
	pending []memory.Addr
}

// NewFreeList returns an empty free list whose buffers live in regions
// protected by key and hold bufSize bytes each.
func NewFreeList(id uint32, bufSize uint64, key memory.RKey) *FreeList {
	if bufSize == 0 {
		panic("alloc: zero buffer size")
	}
	return &FreeList{ID: id, BufSize: bufSize, Key: key}
}

// Post appends a fresh (never used remotely) buffer to the list. For
// recycled buffers use Recycle + Quiescer instead.
func (f *FreeList) Post(addr memory.Addr) {
	f.bufs = append(f.bufs, addr)
}

// Clone returns an independent copy of the list, for a server instantiated
// from a forked memory space: buffer addresses are layout positions, so
// they remain valid in any fork of the space they were carved from.
func (f *FreeList) Clone() *FreeList {
	nf := &FreeList{ID: f.ID, BufSize: f.BufSize, Key: f.Key}
	nf.bufs = append([]memory.Addr(nil), f.bufs...)
	nf.pending = append([]memory.Addr(nil), f.pending...)
	return nf
}

// Pop removes and returns the head buffer.
func (f *FreeList) Pop() (memory.Addr, error) {
	if len(f.bufs) == 0 {
		return 0, ErrEmpty
	}
	a := f.bufs[0]
	f.bufs = f.bufs[1:]
	return a, nil
}

// Len reports the number of available buffers.
func (f *FreeList) Len() int { return len(f.bufs) }

// Tracked reports every buffer currently owned by the list: available plus
// pending-repost. Used by garbage-collection-style reclamation scans to
// tell leaked buffers from free ones.
func (f *FreeList) Tracked() map[memory.Addr]bool {
	m := make(map[memory.Addr]bool, len(f.bufs)+len(f.pending))
	for _, a := range f.bufs {
		m[a] = true
	}
	for _, a := range f.pending {
		m[a] = true
	}
	return m
}

// Pending reports buffers retired but not yet reposted.
func (f *FreeList) Pending() int { return len(f.pending) }

// Recycle records a retired buffer; it becomes available again only after
// the owning Quiescer observes that all operations concurrent with the
// retirement have drained.
func (f *FreeList) Recycle(addr memory.Addr) {
	f.pending = append(f.pending, addr)
}

// repostAll moves all pending buffers back onto the queue.
func (f *FreeList) repostAll() {
	f.bufs = append(f.bufs, f.pending...)
	f.pending = f.pending[:0]
}

// FlushWhenQuiet reposts the currently pending buffers once q observes
// that all in-flight operations have drained.
func (f *FreeList) FlushWhenQuiet(q *Quiescer) {
	n := len(f.pending)
	if n == 0 {
		return
	}
	stale := f.pending[:n:n]
	f.pending = f.pending[n:]
	q.AfterQuiesce(func() {
		f.bufs = append(f.bufs, stale...)
	})
}

// Quiescer tracks in-flight NIC operations so recycled buffers are only
// reposted once every operation that might still hold a pointer to them
// has completed (§3.2's correctness requirement for buffer reuse).
//
// It is an epoch scheme: OpStart/OpEnd bracket every NIC op. A Flush call
// stamps the current epoch; once all ops started in or before that epoch
// finish, the flush's callback runs.
type Quiescer struct {
	inFlight map[uint64]struct{}
	nextOp   uint64
	waits    []quiesceWait
}

type quiesceWait struct {
	barrier uint64 // all ops with id < barrier must finish
	fn      func()
}

// NewQuiescer returns an idle quiescer.
func NewQuiescer() *Quiescer {
	return &Quiescer{inFlight: make(map[uint64]struct{})}
}

// OpStart registers an in-flight operation and returns its token.
func (q *Quiescer) OpStart() uint64 {
	id := q.nextOp
	q.nextOp++
	q.inFlight[id] = struct{}{}
	return id
}

// OpEnd retires the operation with the given token.
func (q *Quiescer) OpEnd(id uint64) {
	if _, ok := q.inFlight[id]; !ok {
		panic(fmt.Sprintf("alloc: OpEnd(%d) without matching OpStart", id))
	}
	delete(q.inFlight, id)
	q.advance()
}

// AfterQuiesce schedules fn to run once every operation currently in
// flight has completed. Operations starting later do not delay fn.
func (q *Quiescer) AfterQuiesce(fn func()) {
	q.waits = append(q.waits, quiesceWait{barrier: q.nextOp, fn: fn})
	q.advance()
}

// InFlight reports the number of outstanding operations.
func (q *Quiescer) InFlight() int { return len(q.inFlight) }

func (q *Quiescer) advance() {
	for len(q.waits) > 0 {
		w := q.waits[0]
		if q.oldest() < w.barrier {
			return
		}
		q.waits = q.waits[1:]
		w.fn()
	}
}

// oldest returns the smallest in-flight op id, or nextOp if none.
func (q *Quiescer) oldest() uint64 {
	min := q.nextOp
	for id := range q.inFlight {
		if id < min {
			min = id
		}
	}
	return min
}

// SizeClasses returns power-of-two buffer sizes covering [minSize, maxSize]
// (§3.2: powers of two bound space overhead at 2x).
func SizeClasses(minSize, maxSize uint64) []uint64 {
	if minSize == 0 || maxSize < minSize {
		panic("alloc: bad size class range")
	}
	var out []uint64
	s := uint64(1)
	for s < minSize {
		s <<= 1
	}
	for ; s < maxSize; s <<= 1 {
		out = append(out, s)
	}
	out = append(out, s)
	return out
}

// ClassFor returns the index of the smallest class in classes (ascending)
// that fits n bytes.
func ClassFor(classes []uint64, n uint64) (int, error) {
	for i, c := range classes {
		if n <= c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("alloc: %d bytes exceeds largest class %d", n, classes[len(classes)-1])
}
