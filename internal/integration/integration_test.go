// Package integration runs whole-cluster scenarios across packages:
// applications on lossy networks, alternate NIC deployments, datacenter
// latency profiles, and cross-application interference — the situations a
// production deployment of PRISM would face beyond the paper's clean
// testbed.
package integration

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"prism/internal/abd"
	"prism/internal/check"
	"prism/internal/fabric"
	"prism/internal/kv"
	"prism/internal/model"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/tx"
)

// TestKVUnderPacketLoss drives PRISM-KV over a fabric dropping 5% of
// messages: the NIC reliability layer (retransmit + replay) must make the
// store behave exactly as on a clean network.
func TestKVUnderPacketLoss(t *testing.T) {
	p := model.Default().WithNetwork(model.Rack)
	p.LossRate = 0.05
	p.RetransmitTimeout = 50 * time.Microsecond
	e := sim.NewEngine(41)
	net := fabric.New(e, p)
	nic := rdma.NewServer(net, "kv", model.SoftwarePRISM)
	srv, err := kv.NewServer(nic, kv.DefaultOptions(64, 128))
	if err != nil {
		t.Fatal(err)
	}
	cli := rdma.NewClient(net, "cli")
	conn := cli.Connect(srv.NIC())
	c := kv.NewClient(conn, srv.Meta(), 1)
	modelMap := map[int64]string{}
	e.Go("t", func(pr *sim.Proc) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 300; i++ {
			k := rng.Int63n(32)
			if rng.Intn(2) == 0 && modelMap[k] != "" {
				got, err := c.Get(pr, k)
				if err != nil || string(got) != modelMap[k] {
					t.Errorf("op %d: get %d = %q (%v), want %q", i, k, got, err, modelMap[k])
					return
				}
			} else {
				v := fmt.Sprintf("v%d-%d", k, i)
				if err := c.Put(pr, k, []byte(v)); err != nil {
					t.Errorf("op %d: put: %v", i, err)
					return
				}
				modelMap[k] = v
			}
		}
	})
	e.Run()
	if conn.Retransmissions == 0 {
		t.Fatal("5% loss produced no retransmissions — loss path not exercised")
	}
	t.Logf("retransmissions: %d", conn.Retransmissions)
}

// TestABDLinearizableUnderLoss checks the replicated store's
// linearizability oracle still passes when the fabric drops messages.
func TestABDLinearizableUnderLoss(t *testing.T) {
	p := model.Default().WithNetwork(model.Rack)
	p.LossRate = 0.03
	p.RetransmitTimeout = 50 * time.Microsecond
	e := sim.NewEngine(43)
	net := fabric.New(e, p)
	var replicas []*abd.Replica
	for i := 0; i < 3; i++ {
		nic := rdma.NewServer(net, fmt.Sprintf("rep-%d", i), model.SoftwarePRISM)
		r, err := abd.NewReplica(nic, abd.ReplicaOptions{NBlocks: 2, BlockSize: 16, ExtraBuffers: 4096})
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
	}
	machine := rdma.NewClient(net, "cli")
	hist := check.NewMultiRegisterHistory()
	for i := 0; i < 4; i++ {
		id := uint16(i + 1)
		conns := make([]*rdma.Conn, 3)
		metas := make([]abd.Meta, 3)
		for j, r := range replicas {
			conns[j] = machine.Connect(r.NIC())
			metas[j] = r.Meta()
		}
		c := abd.NewClient(id, conns, metas)
		rng := rand.New(rand.NewSource(int64(id)))
		e.Go(fmt.Sprintf("c%d", id), func(pr *sim.Proc) {
			for n := 0; n < 30; n++ {
				block := int64(rng.Intn(2))
				invoke := pr.Now()
				if rng.Intn(2) == 0 {
					tag, _, err := c.GetT(pr, block)
					if err != nil {
						t.Errorf("get: %v", err)
						return
					}
					hist.Add(block, check.RegisterOp{Tag: uint64(tag), Invoke: invoke, Respond: pr.Now(), Client: int(id)})
				} else {
					val := make([]byte, 16)
					rng.Read(val)
					tag, err := c.PutT(pr, block, val)
					if err != nil {
						t.Errorf("put: %v", err)
						return
					}
					hist.Add(block, check.RegisterOp{IsWrite: true, Tag: uint64(tag), Invoke: invoke, Respond: pr.Now(), Client: int(id)})
				}
			}
		})
	}
	e.Run()
	if err := hist.Check(uint64(abd.MakeTag(1, 0))); err != nil {
		t.Fatalf("linearizability under loss: %v", err)
	}
}

// TestTXSerializableUnderLoss runs PRISM-TX transactions under loss and
// validates the committed history with both oracles.
func TestTXSerializableUnderLoss(t *testing.T) {
	p := model.Default().WithNetwork(model.Rack)
	p.LossRate = 0.03
	p.RetransmitTimeout = 50 * time.Microsecond
	e := sim.NewEngine(47)
	net := fabric.New(e, p)
	nic := rdma.NewServer(net, "shard", model.SoftwarePRISM)
	shard, err := tx.NewShard(nic, tx.ShardOptions{NSlots: 4, MaxValue: 32, ExtraBuffers: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 2; k++ {
		if err := shard.Load(k, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	machine := rdma.NewClient(net, "cli")
	var committed []check.CommittedTx
	for i := 0; i < 4; i++ {
		id := uint16(i + 1)
		c := tx.NewClient(id, []*rdma.Conn{machine.Connect(shard.NIC())}, []tx.Meta{shard.Meta()})
		rng := rand.New(rand.NewSource(int64(id) * 3))
		e.Go(fmt.Sprintf("c%d", id), func(pr *sim.Proc) {
			for n := 0; n < 25; n++ {
				key := int64(rng.Intn(2))
				for attempts := 0; attempts < 50; attempts++ {
					txn := c.Begin()
					old, err := txn.Read(pr, key)
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					rc := readVersion(txn, key)
					nv := append([]byte(nil), old...)
					nv[0]++
					txn.Write(key, nv)
					ts, err := txn.Commit(pr)
					if errors.Is(err, tx.ErrAborted) {
						continue
					}
					if err != nil {
						t.Errorf("commit: %v", err)
						return
					}
					committed = append(committed, check.CommittedTx{
						TS:       uint64(ts),
						Reads:    map[int64]uint64{key: uint64(rc)},
						Writes:   map[int64]uint64{key: uint64(ts)},
						ClientID: int(id),
					})
					break
				}
			}
		})
	}
	e.Run()
	if len(committed) < 50 {
		t.Fatalf("only %d transactions committed", len(committed))
	}
	if err := check.CheckSerializable(committed, uint64(tx.InitialVersion)); err != nil {
		t.Fatalf("serializability under loss: %v", err)
	}
}

// readVersion exposes the version a transaction observed (test helper via
// the tx package's exported surface: re-reading from the read set).
func readVersion(txn *tx.Tx, key int64) tx.Timestamp {
	return txn.ReadVersion(key)
}

// TestKVOnProjectedHardware runs PRISM-KV on the projected-hardware
// deployment: everything works, ~2 µs faster per GET than the software
// stack.
func TestKVOnProjectedHardware(t *testing.T) {
	lat := func(d model.Deployment) time.Duration {
		p := model.Default().WithNetwork(model.Rack)
		e := sim.NewEngine(53)
		net := fabric.New(e, p)
		nic := rdma.NewServer(net, "kv", d)
		srv, err := kv.NewServer(nic, kv.DefaultOptions(32, 64))
		if err != nil {
			t.Fatal(err)
		}
		srv.Load(1, []byte("hw"))
		c := kv.NewClient(rdma.NewClient(net, "cli").Connect(srv.NIC()), srv.Meta(), 1)
		var rtt time.Duration
		e.Go("t", func(pr *sim.Proc) {
			start := pr.Now()
			if v, err := c.Get(pr, 1); err != nil || string(v) != "hw" {
				t.Errorf("get: %q %v", v, err)
			}
			rtt = time.Duration(pr.Now().Sub(start))
		})
		e.Run()
		return rtt
	}
	hw := lat(model.ProjectedHardwarePRISM)
	sw := lat(model.SoftwarePRISM)
	if hw >= sw {
		t.Fatalf("projected hardware GET %v not faster than software %v", hw, sw)
	}
	if diff := sw - hw; diff < time.Microsecond || diff > 3*time.Microsecond {
		t.Fatalf("hardware advantage %v, want ≈2µs (§6.2)", diff)
	}
}

// TestKVAtDatacenterScale: the PRISM advantage grows at datacenter
// latency; a GET still completes in ~1 RTT + stack overhead.
func TestKVAtDatacenterScale(t *testing.T) {
	p := model.Default().WithNetwork(model.Datacenter)
	e := sim.NewEngine(59)
	net := fabric.New(e, p)
	nic := rdma.NewServer(net, "kv", model.SoftwarePRISM)
	srv, err := kv.NewServer(nic, kv.DefaultOptions(32, 512))
	if err != nil {
		t.Fatal(err)
	}
	srv.Load(1, make([]byte, 512))
	c := kv.NewClient(rdma.NewClient(net, "cli").Connect(srv.NIC()), srv.Meta(), 1)
	e.Go("t", func(pr *sim.Proc) {
		start := pr.Now()
		if _, err := c.Get(pr, 1); err != nil {
			t.Error(err)
			return
		}
		rtt := time.Duration(pr.Now().Sub(start))
		// One 24 µs round trip + ~3 µs stack, not two round trips.
		if rtt < 26*time.Microsecond || rtt > 36*time.Microsecond {
			t.Errorf("datacenter GET %v, want ≈29-30µs (one round trip)", rtt)
		}
	})
	e.Run()
}

// TestMixedTenants runs PRISM-KV and PRISM-TX servers on the same fabric
// with concurrent clients: no interference beyond shared bandwidth, and
// both remain correct.
func TestMixedTenants(t *testing.T) {
	p := model.Default().WithNetwork(model.Rack)
	e := sim.NewEngine(61)
	net := fabric.New(e, p)

	kvNIC := rdma.NewServer(net, "kv", model.SoftwarePRISM)
	kvSrv, err := kv.NewServer(kvNIC, kv.DefaultOptions(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	txNIC := rdma.NewServer(net, "tx", model.SoftwarePRISM)
	txSrv, err := tx.NewShard(txNIC, tx.ShardOptions{NSlots: 16, MaxValue: 64, ExtraBuffers: 256})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 8; k++ {
		if err := txSrv.Load(k, make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	machine := rdma.NewClient(net, "cli")
	kvC := kv.NewClient(machine.Connect(kvSrv.NIC()), kvSrv.Meta(), 1)
	txC := tx.NewClient(2, []*rdma.Conn{machine.Connect(txSrv.NIC())}, []tx.Meta{txSrv.Meta()})

	e.Go("kv-tenant", func(pr *sim.Proc) {
		for i := 0; i < 100; i++ {
			k := int64(i % 16)
			if err := kvC.Put(pr, k, []byte(fmt.Sprintf("t%d", i))); err != nil {
				t.Errorf("kv put: %v", err)
				return
			}
			if v, err := kvC.Get(pr, k); err != nil || !bytes.HasPrefix(v, []byte("t")) {
				t.Errorf("kv get: %q %v", v, err)
				return
			}
		}
	})
	e.Go("tx-tenant", func(pr *sim.Proc) {
		for i := 0; i < 100; i++ {
			for {
				txn := txC.Begin()
				old, err := txn.Read(pr, int64(i%8))
				if err != nil {
					t.Errorf("tx read: %v", err)
					return
				}
				nv := append([]byte(nil), old...)
				nv[0]++
				txn.Write(int64(i%8), nv)
				if _, err := txn.Commit(pr); err == nil {
					break
				}
			}
		}
	})
	e.Run()
}
