package abd

import (
	"encoding/binary"
	"fmt"
	"time"

	"prism/internal/alloc"
	"prism/internal/memory"
	"prism/internal/prism"
	"prism/internal/rdma"
	"prism/internal/sim"
	"prism/internal/wire"
)

const rpcFree byte = 1

// ReplicaOptions sizes a PRISM-RS replica.
type ReplicaOptions struct {
	NBlocks   int64
	BlockSize int
	// ExtraBuffers beyond one per block, absorbing in-flight updates that
	// await reclamation.
	ExtraBuffers int
	// VariableSize enables §7.3's variable-size extension: metadata
	// entries gain a bound field, GETs return only the stored bytes, and
	// PUTs accept any length up to BlockSize.
	VariableSize bool
}

// Replica is one PRISM-RS storage node. After initialization its CPU only
// recycles buffers; all protocol steps are remote one-sided operations.
type Replica struct {
	rs   *rdma.Server
	meta Meta
}

// NewReplica provisions a replica: metadata array, one initial buffer per
// block (tag (1,0), zero value), and a free list for out-of-place writes.
func NewReplica(rs *rdma.Server, opts ReplicaOptions) (*Replica, error) {
	space := rs.Space()
	meta := Meta{
		NBlocks:   opts.NBlocks,
		BlockSize: opts.BlockSize,
		FreeList:  1,
		Variable:  opts.VariableSize,
	}
	metaRegion, err := space.Register(uint64(opts.NBlocks) * uint64(meta.entrySize()))
	if err != nil {
		return nil, fmt.Errorf("abd: metadata region: %w", err)
	}
	meta.Key = metaRegion.Key
	meta.MetaBase = metaRegion.Base
	bufSize := meta.bufSize()
	total := uint64(opts.NBlocks) + uint64(opts.ExtraBuffers)
	bufRegion, err := space.RegisterShared(metaRegion.Key, bufSize*total)
	if err != nil {
		return nil, fmt.Errorf("abd: buffer region: %w", err)
	}
	fl := alloc.NewFreeList(meta.FreeList, bufSize, metaRegion.Key)

	// Initialize every block with tag (1,0) and a zero value, installing
	// the first total-NBlocks buffers; the rest go on the free list.
	initTag := MakeTag(1, 0)
	for b := int64(0); b < opts.NBlocks; b++ {
		bufAddr := bufRegion.Base + memory.Addr(uint64(b)*bufSize)
		img := make([]byte, bufSize)
		prism.PutBE64(img, 0, uint64(initTag))
		if err := space.Write(meta.Key, bufAddr, img); err != nil {
			return nil, err
		}
		entry := make([]byte, meta.entrySize())
		prism.PutBE64(entry, 0, uint64(initTag))
		prism.PutLE64(entry, 8, uint64(bufAddr))
		if meta.Variable {
			// The bound covers the whole [tag|value] buffer image so a
			// bounded indirect READ returns both.
			prism.PutLE64(entry, 16, bufSize)
		}
		if err := space.Write(meta.Key, meta.entryAddr(b), entry); err != nil {
			return nil, err
		}
	}
	for i := uint64(opts.NBlocks); i < total; i++ {
		fl.Post(bufRegion.Base + memory.Addr(i*bufSize))
	}
	rs.AddFreeList(fl)
	rs.SetConnTempKey(meta.Key)

	r := &Replica{rs: rs, meta: meta}
	rs.SetRPCHandler(r.handleRPC)
	return r, nil
}

// Meta returns the control-plane description.
func (r *Replica) Meta() Meta { return r.meta }

// NIC returns the transport server.
func (r *Replica) NIC() *rdma.Server { return r.rs }

func (r *Replica) handleRPC(payload []byte) ([]byte, time.Duration) {
	if len(payload) == 0 || payload[0] != rpcFree {
		return nil, 0
	}
	rest := payload[1:]
	n := 0
	for len(rest) >= 8 {
		addr := memory.Addr(binary.LittleEndian.Uint64(rest))
		r.rs.RecycleBuffer(r.meta.FreeList, addr)
		rest = rest[8:]
		n++
	}
	return []byte{0}, time.Duration(n) * 100 * time.Nanosecond
}

// Client executes the PRISM-RS protocol against a replica group. Each
// closed-loop client owns one Client (one connection per replica).
type Client struct {
	id    uint16
	conns []*rdma.Conn
	metas []Meta
	f     int // tolerated failures; quorum = f+1

	// SkipWriteBackIfAgreed enables the classic ABD read optimization:
	// when all f+1 read-phase tags agree, the GET's write-back phase is
	// skipped. Off by default to match the paper's protocol.
	SkipWriteBackIfAgreed bool

	// lastReadAgreed records whether the previous read phase saw
	// unanimous tags (consulted by the write-back optimization).
	lastReadAgreed bool

	// tmpSlot rotates each connection's temp-buffer slot per chain. The
	// ABD client proceeds after f+1 write-phase acks, so a straggler
	// chain may still be live on a connection when the next operation
	// issues its chain there; rotating slots (matched to the transport's
	// send window) keeps their redirect targets disjoint.
	tmpSlot []int

	// ctrl, when set, carries reclamation RPCs on dedicated control
	// connections so they never queue behind data-path chains on the RC
	// queue pair (requests on one QP execute in order).
	ctrl []*rdma.Conn

	// Reclamation batching per replica.
	frees     [][]byte
	FreeBatch int

	// Cached CAS masks per replica (entry-size dependent). Read-only after
	// construction, so safe to share with in-flight straggler chains.
	tagMasks  [][]byte
	fullMasks [][]byte

	// Reusable storage for the quorum phases' future slices. Only the
	// slice headers are recycled — the futures themselves stay fresh per
	// call, because a straggler replica completes its future long after
	// the quorum returned.
	readFuts  []*sim.Future[readReply]
	writeFuts []*sim.Future[int]

	// Stats
	WriteBacksSkipped int64
	CASLost           int64 // installs superseded by a newer tag
}

// NewClient builds a client over one connection per replica (2f+1 total).
func NewClient(id uint16, conns []*rdma.Conn, metas []Meta) *Client {
	if len(conns) != len(metas) || len(conns) == 0 || len(conns)%2 == 0 {
		panic("abd: need an odd number of replicas with matching metadata")
	}
	c := &Client{
		id:        id,
		conns:     conns,
		metas:     metas,
		f:         (len(conns) - 1) / 2,
		frees:     make([][]byte, len(conns)),
		tmpSlot:   make([]int, len(conns)),
		FreeBatch: 16,
		tagMasks:  make([][]byte, len(conns)),
		fullMasks: make([][]byte, len(conns)),
		readFuts:  make([]*sim.Future[readReply], len(conns)),
		writeFuts: make([]*sim.Future[int], len(conns)),
	}
	for i := range metas {
		es := int(metas[i].entrySize())
		c.tagMasks[i] = prism.FieldMask(es, 0, 8)
		c.fullMasks[i] = prism.FullMask(es)
	}
	return c
}

type readReply struct {
	replica int
	tag     Tag
	value   []byte
	ok      bool
	status  wire.Status
}

// readPhase performs the ABD read phase: an indirect READ of the block's
// buffer at every replica; first f+1 replies win.
func (c *Client) readPhase(p *sim.Proc, block int64) (Tag, []byte, error) {
	futs := c.readFuts
	for i := range c.conns {
		i := i
		m := &c.metas[i]
		// Fixed-size blocks dereference a plain pointer; variable-size
		// blocks (§7.3 extension) dereference the <addr,bound> pair so the
		// reply carries only the stored bytes.
		op := prism.ReadIndirect(m.Key, m.entryAddr(block)+8, m.bufSize())
		if m.Variable {
			op = prism.ReadBounded(m.Key, m.entryAddr(block)+8, m.bufSize())
		}
		ops := c.conns[i].Ops(1)
		ops[0] = op
		f := c.conns[i].IssueAsync(ops)
		// Bound to the connection's domain: the completion below runs there.
		rf := sim.NewFuture[readReply](c.conns[i].Engine())
		futs[i] = rf
		f.OnComplete(func(res []wire.Result) {
			rep := readReply{replica: i}
			rep.status = res[0].Status
			if res[0].Status == wire.StatusOK && len(res[0].Data) >= 8 {
				rep.ok = true
				rep.tag = Tag(prism.BE64(res[0].Data, 0))
				rep.value = res[0].Data[8:]
			}
			rf.Complete(rep)
		})
	}
	replies := sim.WaitQuorum(p, c.f+1, futs)
	var maxTag Tag
	var maxVal []byte
	agreed := true
	for _, rep := range replies {
		if !rep.ok {
			return 0, nil, fmt.Errorf("abd: read phase failed at replica %d (status %v)", rep.replica, rep.status)
		}
		if rep.tag != replies[0].tag {
			agreed = false
		}
		if rep.tag > maxTag {
			maxTag = rep.tag
			maxVal = rep.value
		}
	}
	c.lastReadAgreed = agreed
	return maxTag, maxVal, nil
}

// writePhase propagates tag/value to all replicas with the §7.3 chain and
// waits for f+1 CAS acknowledgments.
func (c *Client) writePhase(p *sim.Proc, block int64, tag Tag, value []byte) error {
	if c.metas[0].Variable {
		if len(value) > c.metas[0].BlockSize {
			return ErrTooLarge
		}
	} else if len(value) != c.metas[0].BlockSize {
		return fmt.Errorf("abd: value size %d, want %d", len(value), c.metas[0].BlockSize)
	}
	const slots = rdma.ConnTempSize / rdma.TempSlotSize
	futs := c.writeFuts
	for i := range c.conns {
		i := i
		m := &c.metas[i]
		conn := c.conns[i]
		tmp := conn.TempAddr + memory.Addr(c.tmpSlot[i]*rdma.TempSlotSize)
		c.tmpSlot[i] = (c.tmpSlot[i] + 1) % slots
		entrySize := int(m.entrySize())

		// img and pre are deliberately fresh per chain: the client moves on
		// after f+1 acks, so a straggler replica's chain may still be in
		// flight referencing them when the next operation starts.
		img := make([]byte, 8+len(value))
		prism.PutBE64(img, 0, uint64(tag))
		copy(img[8:], value)

		// tmp mirrors the metadata entry: [tag | addr(redirected) (| bound)].
		pre := make([]byte, entrySize)
		prism.PutBE64(pre, 0, uint64(tag))
		if m.Variable {
			prism.PutLE64(pre, 16, uint64(len(img)))
		}

		ops := conn.Ops(3)
		// 1. WRITE the tag (and bound, in variable mode) to tmp.
		ops[0] = prism.Write(conn.TempKey, tmp, pre)
		// 2. ALLOCATE the new version, redirecting its address to
		//    tmp+8 (immediately after the tag).
		ops[1] = prism.Conditional(prism.RedirectTo(prism.Allocate(m.FreeList, img), conn.TempKey, tmp+8))
		// 3. CAS_GT the metadata entry against *tmp.
		ops[2] = prism.Conditional(prism.CASIndirectData(m.Key, m.entryAddr(block), wire.CASGt, tmp,
			c.tagMasks[i], c.fullMasks[i]))
		f := conn.IssueAsync(ops)
		// Bound to the connection's domain: the completion below runs there.
		rf := sim.NewFuture[int](conn.Engine())
		futs[i] = rf
		f.OnComplete(func(res []wire.Result) {
			okAck := 0
			switch {
			case res[2].Status == wire.StatusOK:
				okAck = 1
				// Old version retired.
				old := prism.LE64(res[2].Data, 8)
				if old != 0 {
					c.retire(i, memory.Addr(old))
				}
			case res[2].Status == wire.StatusCASFailed:
				// Replica already stores a newer tag: counts as an ack
				// (the newer value subsumes ours), but our allocated
				// buffer is orphaned — retire it.
				okAck = 1
				c.CASLost++
				if res[1].Status == wire.StatusOK {
					c.retire(i, res[1].Addr)
				}
			case res[1].Status == wire.StatusRNR:
				okAck = 0 // replica out of buffers; not an ack
			}
			rf.Complete(okAck)
		})
	}
	acks := sim.WaitQuorum(p, c.f+1, futs)
	good := 0
	for _, a := range acks {
		good += a
	}
	if good < c.f+1 {
		// Collect stragglers? The protocol only needs f+1; a failed chain
		// among the first f+1 repliers is rare (RNR). Treat as an error.
		return fmt.Errorf("abd: write phase acked by %d < %d replicas", good, c.f+1)
	}
	c.maybeFlushFrees(p)
	return nil
}

// Get performs a linearizable read: ABD read phase, then write-back of the
// maximum version (§7.1) so later reads cannot observe an older value.
func (c *Client) Get(p *sim.Proc, block int64) ([]byte, error) {
	_, val, err := c.GetT(p, block)
	return val, err
}

// GetT is Get, also returning the version tag observed (for oracles).
func (c *Client) GetT(p *sim.Proc, block int64) (Tag, []byte, error) {
	if block < 0 || block >= c.metas[0].NBlocks {
		return 0, nil, ErrBadBlock
	}
	tag, val, err := c.readPhase(p, block)
	if err != nil {
		return 0, nil, err
	}
	if c.SkipWriteBackIfAgreed && c.lastReadAgreed {
		c.WriteBacksSkipped++
		return tag, val, nil
	}
	if err := c.writePhase(p, block, tag, val); err != nil {
		return 0, nil, err
	}
	return tag, val, nil
}

// Put performs a linearizable write: read phase to learn the maximum tag,
// then propagation of the new value at a strictly larger tag.
func (c *Client) Put(p *sim.Proc, block int64, value []byte) error {
	_, err := c.PutT(p, block, value)
	return err
}

// PutT is Put, also returning the tag the write was installed at.
func (c *Client) PutT(p *sim.Proc, block int64, value []byte) (Tag, error) {
	if block < 0 || block >= c.metas[0].NBlocks {
		return 0, ErrBadBlock
	}
	maxTag, _, err := c.readPhase(p, block)
	if err != nil {
		return 0, err
	}
	tag := maxTag.Next(c.id)
	return tag, c.writePhase(p, block, tag, value)
}

func (c *Client) retire(replica int, addr memory.Addr) {
	var rec [8]byte
	binary.LittleEndian.PutUint64(rec[:], uint64(addr))
	c.frees[replica] = append(c.frees[replica], rec[:]...)
}

func (c *Client) maybeFlushFrees(p *sim.Proc) {
	for i, pending := range c.frees {
		if len(pending)/8 >= c.FreeBatch {
			c.flushReplicaFrees(i)
		}
	}
}

// UseControlConns routes reclamation RPCs over dedicated connections (one
// per replica, same order as the data connections).
func (c *Client) UseControlConns(ctrl []*rdma.Conn) {
	if len(ctrl) != len(c.conns) {
		panic("abd: control connections must match replicas")
	}
	c.ctrl = ctrl
}

func (c *Client) flushReplicaFrees(i int) {
	if len(c.frees[i]) == 0 {
		return
	}
	// The payload is copied out of the batch buffer because the RPC is
	// fire-and-forget: the buffer refills while it may still be in flight.
	payload := append([]byte{rpcFree}, c.frees[i]...)
	c.frees[i] = c.frees[i][:0]
	conn := c.conns[i]
	if c.ctrl != nil {
		conn = c.ctrl[i]
	}
	ops := conn.Ops(1)
	ops[0] = prism.Send(payload)
	conn.IssueAsync(ops)
}

// FlushFrees sends all pending reclamation batches.
func (c *Client) FlushFrees() {
	for i := range c.frees {
		c.flushReplicaFrees(i)
	}
}
