// Package abd implements the paper's replicated block store case study
// (§7): PRISM-RS, a multi-writer ABD register protocol [4, 25] built
// entirely from PRISM one-sided operations, and ABDLOCK, the baseline
// that mediates replica access with RDMA locks in the style of DrTM [44].
//
// PRISM-RS replica layout (§7.3, Figure 5):
//
//	metadata[i] = [ tag (8, big-endian) | addr (8, little-endian) ]
//	buffer      = [ tag (8, big-endian) | value (blockSize) ]
//
// The tag is intentionally duplicated: an indirect READ of metadata[i].addr
// returns tag and value atomically (they are written once into a fresh
// buffer and never modified), and the enhanced CAS orders installs by
// comparing the metadata tag with CAS_GT while swapping both fields.
package abd

import (
	"errors"
	"fmt"

	"prism/internal/memory"
)

// Tag orders versions: a logical timestamp plus the writer's client id,
// compared lexicographically — exactly the (ts, id) pair of multi-writer
// ABD. Packed as ts<<16 | id so that big-endian byte comparison of the
// packed value matches lexicographic order on (ts, id).
type Tag uint64

// MakeTag packs a logical timestamp and client id.
func MakeTag(ts uint64, client uint16) Tag {
	if ts >= 1<<48 {
		panic("abd: timestamp overflow")
	}
	return Tag(ts<<16 | uint64(client))
}

// TS returns the logical timestamp.
func (t Tag) TS() uint64 { return uint64(t) >> 16 }

// Client returns the writer id.
func (t Tag) Client() uint16 { return uint16(t) }

// Next returns a tag with timestamp ts+1 owned by client.
func (t Tag) Next(client uint16) Tag { return MakeTag(t.TS()+1, client) }

func (t Tag) String() string { return fmt.Sprintf("(%d,%d)", t.TS(), t.Client()) }

// metaSize is the per-block metadata entry size for fixed-size blocks:
// [tag|addr]. Variable-size blocks (§7.3's extension) add a bound field —
// [tag|addr|bound] — making the <addr,bound> pair at offset 8 directly
// consumable by a bounded indirect READ, exactly as in PRISM-KV.
const (
	metaSize         = 16
	metaSizeVariable = 24
)

// Errors.
var (
	ErrBadBlock = errors.New("abd: block index out of range")
	ErrTooLarge = errors.New("abd: value exceeds the block size limit")
)

// Meta describes a PRISM-RS replica to clients.
type Meta struct {
	Key      memory.RKey
	MetaBase memory.Addr
	NBlocks  int64
	// BlockSize is the block size (fixed mode) or the maximum value size
	// (variable mode).
	BlockSize int
	FreeList  uint32
	// Variable selects variable-size blocks: metadata entries carry a
	// bound and GETs return only the stored bytes.
	Variable bool
}

func (m *Meta) entrySize() int64 {
	if m.Variable {
		return metaSizeVariable
	}
	return metaSize
}

func (m *Meta) entryAddr(block int64) memory.Addr {
	return m.MetaBase + memory.Addr(block*m.entrySize())
}

// bufSize is the buffer bytes for one (maximum-size) block version.
func (m *Meta) bufSize() uint64 { return uint64(8 + m.BlockSize) }
